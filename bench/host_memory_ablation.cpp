// Ablation: pinned vs pageable host memory (§3.3.1 assumes ~12-13 GB/s
// *pinned* transfers). With pageable buffers the link halves and the
// overlap thresholds (m > 4 R_g/R_m) double. Interestingly the recursive
// *ratio* shrinks slightly: once BOTH algorithms are fully movement-bound,
// the advantage converges to the data-movement ratio (~1.15-1.4, Table 3)
// instead of the in-core GEMM-rate ratio (~2, Table 1) — recursion's two
// benefits bind in different regimes.
#include <iostream>

#include "bench/bench_util.hpp"
#include "qr/factorize.hpp"
#include "report/table.hpp"

namespace {

using namespace rocqr;

qr::QrStats run(bool recursive, bool pinned) {
  auto dev = bench::paper_device();
  dev.set_host_memory_pinned(pinned);
  auto a = sim::HostMutRef::phantom(131072, 131072);
  auto r = sim::HostMutRef::phantom(131072, 131072);
  return recursive
             ? qr::factorize(qr::QrProblem{
                 {&dev}, a, r, qr::Algorithm::Recursive,
                 bench::recursive_options(16384)})
             : qr::factorize(qr::QrProblem{
                 {&dev}, a, r, qr::Algorithm::Blocking,
                 bench::blocking_baseline(16384)});
}

} // namespace

int main() {
  bench::section(
      "Host memory ablation — pinned (13 GB/s) vs pageable (6.5 GB/s), "
      "131072^2, b=16384, 32 GB");

  report::Table t("", {"host memory", "blocking", "recursive", "speedup"});
  for (const bool pinned : {true, false}) {
    const qr::QrStats blk = run(false, pinned);
    const qr::QrStats rec = run(true, pinned);
    t.add_row({pinned ? "pinned" : "pageable",
               bench::secs(blk.total_seconds), bench::secs(rec.total_seconds),
               format_fixed(blk.total_seconds / rec.total_seconds, 2) + "x"});
  }
  std::cout << t.render();
  std::cout
      << "\nBoth algorithms slow down markedly on pageable memory (use pinned\n"
         "buffers!). The speedup ratio moves from the GEMM-rate-bound regime\n"
         "toward the data-movement-bound regime, where it is governed by the\n"
         "smaller Table-3 movement ratio rather than Table-1's 2x rate gap.\n";
  return 0;
}
