// Reproduces Table 2: out-of-core outer product (C -= A·B) behaviour,
// recursive tiling (131072 x 65536 x 65536, row slab 8192) vs blocking
// tiling (131072 x 16384 x 114688, 16384^2 C tiles), plus the §4.1.2
// ablation (extra C working space on/off) and the §5.1.2 ideal bound.
//
// --explain-plan appends the plan each engine built, including its lowered
// task-graph form (node counts per stage, edge and fence-edge counts);
// --explain-plan=dot appends the lowered graphs as Graphviz digraphs.
#include <iostream>
#include <string>

#include "bench/bench_util.hpp"
#include "ooc/gemm_engines.hpp"
#include "ooc/operand.hpp"
#include "report/paper.hpp"
#include "report/table.hpp"

int main(int argc, char** argv) {
  using namespace rocqr;
  using bench::paper_device;
  namespace paper = report::paper;
  bool explain = false;
  bool explain_dot = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg == "--explain-plan") explain = true;
    if (arg == "--explain-plan=dot") explain = explain_dot = true;
  }

  bench::section("Table 2 — outer product (A2 -= Q1*R12) OOC GEMM behaviour");

  struct Run {
    ooc::OocGemmStats stats;
    ooc::PlanLog plan_log;
    double total_s = 0;
    double rate = 0;
  };

  const auto run_recursive = [&](bool synchronous, bool staging) {
    auto dev = paper_device();
    // B = R12 (65536^2) is resident, produced by the preceding inner product.
    auto b = dev.allocate(65536, 65536, sim::StoragePrecision::FP16);
    ooc::OocGemmOptions opts;
    opts.blocksize = 8192;
    opts.synchronous = synchronous;
    opts.staging_buffer = staging;
    Run r;
    opts.plan_log = &r.plan_log;
    r.stats = ooc::outer_product_recursive(
        dev, ooc::Operand::on_host(sim::HostConstRef::phantom(131072, 65536)),
        ooc::Operand::on_device(b),
        sim::HostConstRef::phantom(131072, 65536),
        sim::HostMutRef::phantom(131072, 65536), opts);
    dev.synchronize();
    r.total_s = dev.makespan();
    r.rate = static_cast<double>(r.stats.summary.flops) / r.total_s;
    dev.free(b);
    return r;
  };

  const auto run_blocking = [&](bool synchronous) {
    auto dev = paper_device();
    // Both tall-skinny factors resident (paper §3.3.2).
    auto a = dev.allocate(131072, 16384, sim::StoragePrecision::FP16);
    auto b = dev.allocate(16384, 114688, sim::StoragePrecision::FP16);
    ooc::OocGemmOptions opts;
    opts.blocksize = 16384;
    opts.tile_cols = 16384;
    opts.synchronous = synchronous;
    opts.staging_buffer = false; // conventional baseline: single C tile buffer
    Run r;
    opts.plan_log = &r.plan_log;
    r.stats = ooc::outer_product_blocking(
        dev, ooc::Operand::on_device(a), ooc::Operand::on_device(b),
        sim::HostConstRef::phantom(131072, 114688),
        sim::HostMutRef::phantom(131072, 114688), opts);
    dev.synchronize();
    r.total_s = dev.makespan();
    r.rate = static_cast<double>(r.stats.summary.flops) / r.total_s;
    dev.free(a);
    dev.free(b);
    return r;
  };

  const Run rec_sync = run_recursive(true, true);
  const Run rec_async = run_recursive(false, true);
  const Run rec_nostage = run_recursive(false, false);
  const Run blk_sync = run_blocking(true);
  const Run blk_async = run_blocking(false);

  using P = paper::OuterProduct;
  report::Table t("Single-block and total costs, measured vs paper:",
                  {"quantity", "recursive", "blocking"});
  t.add_row({"host to device (per block)",
             bench::vs_paper_ms(rec_async.stats.slab_h2d_seconds, P::recursive_h2d_s),
             bench::vs_paper_ms(blk_async.stats.slab_h2d_seconds, P::blocking_h2d_s)});
  t.add_row({"GEMM (per block)",
             bench::vs_paper_ms(rec_async.stats.slab_gemm_seconds, P::recursive_gemm_s),
             bench::vs_paper_ms(blk_async.stats.slab_gemm_seconds, P::blocking_gemm_s)});
  t.add_row({"device to host (per block)",
             bench::vs_paper_ms(rec_async.stats.slab_d2h_seconds, P::recursive_d2h_s),
             bench::vs_paper_ms(blk_async.stats.slab_d2h_seconds, P::blocking_d2h_s)});
  t.add_row({"in-core rate",
             bench::vs_paper_tf(rec_async.stats.steady_gemm_rate, P::recursive_incore_flops),
             bench::vs_paper_tf(blk_async.stats.steady_gemm_rate, P::blocking_incore_flops)});
  t.add_rule();
  t.add_row({"synchronous total",
             bench::vs_paper_s(rec_sync.total_s, P::recursive_sync_s),
             bench::vs_paper_s(blk_sync.total_s, P::blocking_sync_s)});
  t.add_row({"synchronous rate",
             bench::vs_paper_tf(rec_sync.rate, P::recursive_sync_flops),
             bench::tflops(blk_sync.rate) + "  (paper 34.7 TF)"});
  t.add_row({"asynchronous total",
             bench::vs_paper_s(rec_async.total_s, P::recursive_async_s),
             bench::secs(blk_async.total_s) + "  (paper 11.3 s*)"});
  t.add_row({"asynchronous rate",
             bench::vs_paper_tf(rec_async.rate, P::recursive_async_flops),
             bench::tflops(blk_async.rate)});
  std::cout << t.render();

  std::cout << "\n(*) The paper prints blocking async 11286 ms — larger than its own\n"
               "synchronous 5119 ms and identical to Table 1's entry; almost\n"
               "certainly a copy-paste slip. Our self-consistent value is shown.\n";

  // §5.1.2 ideal-bound check: async ≈ first move-in + sum(gemm) + last
  // move-out for the recursive outer product.
  const double ideal = rec_async.stats.slab_h2d_seconds +
                       16.0 * rec_async.stats.slab_gemm_seconds +
                       rec_async.stats.slab_d2h_seconds;
  std::cout << "\nIdeal bound (first move-in + GEMMs + last move-out): "
            << bench::vs_paper_s(ideal, paper::OuterProduct::recursive_ideal_s)
            << "\nmeasured async " << bench::secs(rec_async.total_s)
            << " — gap " << bench::ms(rec_async.total_s - ideal) << "\n";

  bench::section("Ablation — §4.1.2 extra C working space (recursive outer)");
  report::Table t2("", {"variant", "total", "vs optimized"});
  t2.add_row({"extra working space (4.1.2)", bench::secs(rec_async.total_s),
              "1.00x"});
  t2.add_row({"single C buffer", bench::secs(rec_nostage.total_s),
              format_fixed(rec_nostage.total_s / rec_async.total_s, 2) + "x"});
  std::cout << t2.render();

  if (explain && explain_dot) {
    bench::section("Lowered task graphs (--explain-plan=dot)");
    std::cout << rec_sync.plan_log.dot << rec_async.plan_log.dot
              << rec_nostage.plan_log.dot << blk_sync.plan_log.dot
              << blk_async.plan_log.dot;
  } else if (explain) {
    bench::section("Pipeline plans (--explain-plan)");
    std::cout << "recursive sync:      " << rec_sync.stats.plan
              << "recursive async:     " << rec_async.stats.plan
              << "recursive no-stage:  " << rec_nostage.stats.plan
              << "blocking sync:       " << blk_sync.stats.plan
              << "blocking async:      " << blk_async.stats.plan;
  }
  return 0;
}
