// The in-core precursor result (HPDC'20, cited as [24] and summarized in
// §3.1.3): even with no data movement at all, recursive CGS QR beats
// blocked CGS QR on TensorCore because its GEMMs are larger. This bench
// evaluates both algorithms' exact GEMM plans under the calibrated rate
// model for an in-core (fits-on-device) problem.
#include <iostream>

#include "bench/bench_util.hpp"
#include "qr/gemm_plan.hpp"
#include "report/table.hpp"
#include "sim/perf_model.hpp"

int main() {
  using namespace rocqr;

  bench::section(
      "In-core recursion study — GEMM-plan time of blocked vs recursive CGS "
      "QR (no data movement; rates from the V100 model)");

  sim::PerfModel model(sim::DeviceSpec::v100_32gb());

  report::Table t("", {"matrix", "blocksize", "blocked GEMMs", "recursive",
                       "speedup", "largest GEMM (rec)", "largest (blk)"});
  struct Case {
    index_t m, n, b;
  };
  const Case cases[] = {{32768, 32768, 2048},
                        {32768, 32768, 512},
                        {65536, 32768, 1024},
                        {16384, 16384, 256}};
  for (const Case& c : cases) {
    const auto blocked = qr::blocked_qr_gemm_plan(c.m, c.n, c.b);
    const auto recursive = qr::recursive_qr_gemm_plan(c.m, c.n, c.b);
    const double tb =
        qr::plan_seconds(blocked, model, blas::GemmPrecision::FP16_FP32);
    const double tr =
        qr::plan_seconds(recursive, model, blas::GemmPrecision::FP16_FP32);
    flops_t big_rec = 0;
    for (const auto& g : recursive) big_rec = std::max(big_rec, g.flops());
    flops_t big_blk = 0;
    for (const auto& g : blocked) big_blk = std::max(big_blk, g.flops());
    t.add_row({format_shape(c.m, c.n), std::to_string(c.b),
               format_seconds(tb), format_seconds(tr),
               format_fixed(tb / tr, 2) + "x",
               format_fixed(static_cast<double>(big_rec) / 1e12, 2) + " Tflop",
               format_fixed(static_cast<double>(big_blk) / 1e12, 2) + " Tflop"});
  }
  std::cout << t.render();
  std::cout
      << "\nBoth plans perform identical total flops (tested); the recursive\n"
         "plan concentrates them in a handful of huge square-ish GEMMs while\n"
         "the blocked plan is a long sequence of fixed panel-width kernels —\n"
         "the in-core seed of the paper's out-of-core argument.\n";
  return 0;
}
