// §6 outlook: the recursive-vs-blocking speedup across device generations
// and across a memory-capacity sweep — "the higher the ratio computation
// speed / memory capacity, the more advantageous recursive vs blocking".
#include <iostream>

#include "bench/bench_util.hpp"
#include "qr/factorize.hpp"
#include "report/table.hpp"

namespace {

using namespace rocqr;

struct Outcome {
  double blocking = 0;
  double recursive = 0;
  bool ok = false;
};

Outcome run_pair(const sim::DeviceSpec& spec, index_t blocksize,
                 bool calibrate) {
  Outcome out;
  try {
    for (const bool recursive : {false, true}) {
      sim::Device dev(spec, sim::ExecutionMode::Phantom);
      if (calibrate) dev.model().install_paper_calibration();
      auto a = sim::HostMutRef::phantom(131072, 131072);
      auto r = sim::HostMutRef::phantom(131072, 131072);
      const qr::QrOptions opts = recursive
                                     ? bench::recursive_options(blocksize)
                                     : bench::blocking_baseline(blocksize);
      const qr::QrStats stats =
          recursive ? qr::factorize(
              qr::QrProblem{{&dev}, a, r, qr::Algorithm::Recursive, opts})
                    : qr::factorize(qr::QrProblem{
                        {&dev}, a, r, qr::Algorithm::Blocking, opts});
      (recursive ? out.recursive : out.blocking) = stats.total_seconds;
    }
    out.ok = true;
  } catch (const DeviceOutOfMemory&) {
    out.ok = false;
  }
  return out;
}

} // namespace

int main() {
  bench::section("§6 — memory-capacity sweep on the V100 model (131072^2)");
  {
    report::Table t("", {"capacity", "blocksize", "blocking", "recursive",
                         "speedup"});
    struct Point {
      bytes_t capacity;
      index_t blocksize;
    };
    const Point points[] = {{32LL << 30, 16384}, {24LL << 30, 16384},
                            {16LL << 30, 8192},  {12LL << 30, 8192},
                            {10LL << 30, 4096},  {8LL << 30, 4096}};
    for (const Point& p : points) {
      sim::DeviceSpec spec = sim::DeviceSpec::v100_32gb();
      spec.memory_capacity = p.capacity;
      const Outcome out = run_pair(spec, p.blocksize, true);
      t.add_row({format_bytes(p.capacity), std::to_string(p.blocksize),
                 out.ok ? bench::secs(out.blocking) : "OOM",
                 out.ok ? bench::secs(out.recursive) : "OOM",
                 out.ok ? format_fixed(out.blocking / out.recursive, 2) + "x"
                        : "-"});
    }
    std::cout << t.render();
    std::cout << "\nThe speedup grows monotonically as capacity shrinks — the\n"
                 "paper's central scaling claim (§5.3, §6).\n";
  }

  bench::section("§6 — accelerator generations (smooth rate model)");
  {
    report::Table t("", {"device", "TC peak", "link", "blocksize", "blocking",
                         "recursive", "speedup"});
    struct Config {
      sim::DeviceSpec spec;
      index_t blocksize;
    };
    const Config configs[] = {{sim::DeviceSpec::v100_32gb(), 16384},
                              {sim::DeviceSpec::v100_16gb(), 8192},
                              {sim::DeviceSpec::a100_40gb(), 16384},
                              {sim::DeviceSpec::rtx3080_10gb(), 4096}};
    for (const Config& cfg : configs) {
      const Outcome out = run_pair(cfg.spec, cfg.blocksize, false);
      t.add_row({cfg.spec.name,
                 bench::tflops(cfg.spec.tc_peak_flops),
                 format_bytes(static_cast<bytes_t>(cfg.spec.h2d_bytes_per_s)) +
                     "/s",
                 std::to_string(cfg.blocksize),
                 out.ok ? bench::secs(out.blocking) : "OOM",
                 out.ok ? bench::secs(out.recursive) : "OOM",
                 out.ok ? format_fixed(out.blocking / out.recursive, 2) + "x"
                        : "-"});
    }
    std::cout << t.render();
    std::cout << "\nA100-class compute and consumer-class memory both widen the\n"
                 "gap, as §6 predicts for post-V100 hardware.\n";
  }
  return 0;
}
