// Tiled CGS on the TaskGraph executor vs the bulk-synchronous drivers.
//
// The tiled driver's DAG interleaves panel k+1's factorization with panel
// k's trailing updates (lookahead), so the compute engine never drains
// between panels the way the recursive driver's level barriers force it
// to. This bench sweeps paper-scale shapes on the calibrated phantom V100
// and reports tiled vs the recursive CGS driver (the paper's algorithm)
// and the conventional blocking baseline at the same blocksize.
//
// Writes the sweep as JSON (committed as BENCH_tiled_qr.json) to the path
// given as argv[1], or ./BENCH_tiled_qr.json by default.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "qr/factorize.hpp"
#include "report/table.hpp"

namespace {

using namespace rocqr;

struct Config {
  index_t m;
  index_t n;
  index_t b;
};

struct Point {
  Config cfg{};
  double tiled_seconds = 0;
  double recursive_seconds = 0;
  double blocking_seconds = 0;
  double speedup_vs_recursive = 0;
  double speedup_vs_blocking = 0;
};

double run(index_t m, index_t n, index_t b, qr::Algorithm alg) {
  sim::Device dev = bench::paper_device();
  qr::QrOptions opts = alg == qr::Algorithm::Blocking
                           ? bench::blocking_baseline(b)
                           : bench::recursive_options(b);
  qr::QrProblem p{{&dev}, sim::HostMutRef::phantom(m, n),
                  sim::HostMutRef::phantom(n, n), alg, opts};
  return qr::factorize(p).total_seconds;
}

} // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : std::string("BENCH_tiled_qr.json");

  bench::section(
      "Tiled QR lookahead — task-graph DAG vs bulk-synchronous drivers");

  const std::vector<Config> configs = {
      {131072, 8192, 4096},
      {131072, 16384, 8192},
      {262144, 16384, 8192},
      {131072, 32768, 8192},
  };

  report::Table t("", {"matrix", "b", "tiled (DAG)", "recursive", "blocking",
                       "vs recursive", "vs blocking"});
  std::vector<Point> sweep;
  for (const Config& c : configs) {
    Point p;
    p.cfg = c;
    p.tiled_seconds = run(c.m, c.n, c.b, qr::Algorithm::Tiled);
    p.recursive_seconds = run(c.m, c.n, c.b, qr::Algorithm::Recursive);
    p.blocking_seconds = run(c.m, c.n, c.b, qr::Algorithm::Blocking);
    p.speedup_vs_recursive = p.recursive_seconds / p.tiled_seconds;
    p.speedup_vs_blocking = p.blocking_seconds / p.tiled_seconds;
    sweep.push_back(p);
    t.add_row({std::to_string(c.m) + "x" + std::to_string(c.n),
               std::to_string(c.b), bench::secs(p.tiled_seconds),
               bench::secs(p.recursive_seconds),
               bench::secs(p.blocking_seconds),
               format_fixed(p.speedup_vs_recursive, 2) + "x",
               format_fixed(p.speedup_vs_blocking, 2) + "x"});
  }
  std::cout << t.render();

  std::ofstream os(out_path);
  if (!os) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  os << "{\n  \"bench\": \"tiled_qr_lookahead\",\n"
     << "  \"device\": \"V100-PCIe-32GB (phantom, paper calibration)\",\n"
     << "  \"sweep\": [\n";
  for (size_t i = 0; i < sweep.size(); ++i) {
    const Point& p = sweep[i];
    os << "    {\"m\": " << p.cfg.m << ", \"n\": " << p.cfg.n
       << ", \"blocksize\": " << p.cfg.b
       << ", \"tiled_seconds\": " << format_fixed(p.tiled_seconds, 6)
       << ", \"recursive_seconds\": " << format_fixed(p.recursive_seconds, 6)
       << ", \"blocking_seconds\": " << format_fixed(p.blocking_seconds, 6)
       << ", \"speedup_vs_recursive\": "
       << format_fixed(p.speedup_vs_recursive, 4)
       << ", \"speedup_vs_blocking\": "
       << format_fixed(p.speedup_vs_blocking, 4) << "}"
       << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  std::cout << "\nwrote " << out_path << "\n";
  return 0;
}
