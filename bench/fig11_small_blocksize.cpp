// Reproduces Fig 11: the blocking outer product once the QR blocksize drops
// to 8192 (small-memory regime) — per-tile costs 347/170/326 ms mean the
// GEMM can no longer hide the movement, no matter how the tiles are sized.
#include <iostream>

#include "bench/bench_util.hpp"
#include "ooc/gemm_engines.hpp"
#include "ooc/operand.hpp"
#include "report/paper.hpp"
#include "report/table.hpp"

int main() {
  using namespace rocqr;
  namespace paper = report::paper;

  bench::section(
      "Fig 11 — blocking outer product at QR blocksize 8192 "
      "(131072 x 8192 x 131072, 32768^2 C tiles, 16 GB device)");

  auto dev = bench::paper_device(16LL << 30);
  auto a = dev.allocate(131072, 8192, sim::StoragePrecision::FP16);
  auto b = dev.allocate(8192, 131072, sim::StoragePrecision::FP16);
  ooc::OocGemmOptions opts;
  opts.blocksize = 32768;
  opts.tile_cols = 32768;
  opts.staging_buffer = false; // no room for a second 4 GiB tile buffer
  const auto stats = ooc::outer_product_blocking(
      dev, ooc::Operand::on_device(a), ooc::Operand::on_device(b),
      sim::HostConstRef::phantom(131072, 131072),
      sim::HostMutRef::phantom(131072, 131072), opts);
  dev.synchronize();

  using P = paper::Fig11;
  report::Table t("Per-tile costs, measured vs paper:",
                  {"step", "measured (paper)"});
  t.add_row({"move-in (C tile)",
             bench::vs_paper_ms(stats.slab_h2d_seconds, P::h2d_s)});
  t.add_row({"GEMM", bench::vs_paper_ms(stats.slab_gemm_seconds, P::gemm_s)});
  t.add_row({"move-out (C tile)",
             bench::vs_paper_ms(stats.slab_d2h_seconds, P::d2h_s)});
  std::cout << t.render();

  std::cout << "\ntotal " << bench::secs(dev.makespan()) << " for "
            << stats.steps << " tiles; GEMM busy only "
            << bench::secs(dev.trace().busy_seconds(sim::Resource::Compute))
            << " — data movement dominates (k = 8192 < the ~15000 the\n"
               "paper's §3.3.2 analysis requires for overlap)\n\n";
  std::cout << dev.trace().render_gantt(110);

  dev.free(a);
  dev.free(b);
  return 0;
}
