// Reproduces Table 3: total data-movement time of the full 131072^2 OOC QR
// at blocksize 16384, recursive vs blocking, plus the measured byte volumes
// against the §3.2 analytic model.
#include <fstream>
#include <iostream>
#include <string>

#include "bench/bench_util.hpp"
#include "common/telemetry.hpp"
#include "ooc/movement_model.hpp"
#include "qr/factorize.hpp"
#include "report/paper.hpp"
#include "report/table.hpp"
#include "sim/trace_export.hpp"

namespace {

std::string arg_value(int argc, char** argv, const std::string& prefix) {
  for (int i = 1; i < argc; ++i) {
    const std::string t = argv[i];
    if (t.rfind(prefix, 0) == 0) return t.substr(prefix.size());
  }
  return {};
}

} // namespace

int main(int argc, char** argv) {
  using namespace rocqr;
  namespace paper = report::paper;

  const std::string trace_path = arg_value(argc, argv, "--trace-json=");
  const std::string metrics_path = arg_value(argc, argv, "--metrics-json=");

  bench::section("Table 3 — data movement of the full 131072^2 QR, b=16384");

  const index_t n = 131072;
  const index_t b = 16384;

  // The recursive run's trace (the paper's headline configuration) is the
  // one exported when --trace-json= is given.
  const auto run = [&](bool recursive) {
    auto dev = bench::paper_device();
    auto a = sim::HostMutRef::phantom(n, n);
    auto r = sim::HostMutRef::phantom(n, n);
    const qr::QrStats stats =
        recursive
            ? qr::factorize(qr::QrProblem{
                {&dev}, a, r, qr::Algorithm::Recursive,
                bench::recursive_options(b)})
            : qr::factorize(qr::QrProblem{
                {&dev}, a, r, qr::Algorithm::Blocking,
                bench::blocking_baseline(b)});
    if (recursive && !trace_path.empty()) {
      std::ofstream os(trace_path);
      sim::write_chrome_trace(os, dev.trace(), &telemetry::SpanLog::global());
      std::cout << "chrome trace written to " << trace_path << "\n";
    }
    return stats;
  };
  const qr::QrStats rec = run(true);
  const qr::QrStats blk = run(false);
  if (!metrics_path.empty()) {
    std::ofstream os(metrics_path);
    telemetry::MetricsRegistry::global().write_json(os);
    std::cout << "metrics snapshot written to " << metrics_path << "\n";
  }

  using P = paper::QrMovement;
  report::Table t("Engine busy time (and bytes moved), measured vs paper:",
                  {"direction", "recursive", "blocking"});
  t.add_row({"host to device",
             bench::vs_paper_s(rec.h2d_seconds, P::recursive_h2d_s),
             bench::vs_paper_s(blk.h2d_seconds, P::blocking_h2d_s)});
  t.add_row({"device to host",
             bench::vs_paper_s(rec.d2h_seconds, P::recursive_d2h_s),
             bench::vs_paper_s(blk.d2h_seconds, P::blocking_d2h_s)});
  t.add_rule();
  t.add_row({"H2D volume", format_bytes(rec.bytes_h2d),
             format_bytes(blk.bytes_h2d)});
  t.add_row({"D2H volume", format_bytes(rec.bytes_d2h),
             format_bytes(blk.bytes_d2h)});
  std::cout << t.render();

  bench::section("§3.2 analytic no-reuse model vs measured volume");
  report::Table t2("", {"quantity", "analytic (no reuse)", "measured"});
  t2.add_row({"recursive H2D",
              format_bytes(static_cast<bytes_t>(
                  ooc::recursive_h2d_words_sum(n, n, b) * 4)),
              format_bytes(rec.bytes_h2d)});
  t2.add_row({"recursive D2H",
              format_bytes(static_cast<bytes_t>(
                  ooc::recursive_d2h_words(n, n, b) * 4)),
              format_bytes(rec.bytes_d2h)});
  t2.add_row({"blocking H2D",
              format_bytes(static_cast<bytes_t>(
                  ooc::blocking_h2d_words(n, n, b) * 4)),
              format_bytes(blk.bytes_h2d)});
  t2.add_row({"blocking D2H",
              format_bytes(static_cast<bytes_t>(
                  ooc::blocking_d2h_words(n, n, b) * 4)),
              format_bytes(blk.bytes_d2h)});
  std::cout << t2.render();
  std::cout
      << "\nThe recursive algorithm moves less in both directions (Table 3's\n"
         "claim). Blocking measures below its model thanks to resident-operand\n"
         "reuse; recursive measures slightly above the paper's printed sum\n"
         "because that sum iterates to log2(k)-1 and so under-counts one\n"
         "recursion level — first-principles volume is mn + 3*2mn = 7mn = 448\n"
         "GiB at k=8, exactly what the simulator counts.\n";
  return 0;
}
