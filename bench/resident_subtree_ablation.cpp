// Ablation of our resident-subtree extension (§4.2's first optimization
// taken to its conclusion): when a whole recursion subtree fits on the
// device, factor it there — no intermediate host round-trips for its
// panels, inner products or trailing updates.
#include <iostream>

#include "bench/bench_util.hpp"
#include "ooc/movement_model.hpp"
#include "qr/factorize.hpp"
#include "report/table.hpp"

namespace {

using namespace rocqr;

qr::QrStats run(bytes_t capacity, index_t b, bool resident) {
  auto dev = bench::paper_device(capacity);
  auto a = sim::HostMutRef::phantom(131072, 131072);
  auto r = sim::HostMutRef::phantom(131072, 131072);
  qr::QrOptions opts = bench::recursive_options(b);
  opts.resident_subtrees = resident;
  return qr::factorize(
      qr::QrProblem{{&dev}, a, r, qr::Algorithm::Recursive, opts});
}

} // namespace

int main() {
  bench::section(
      "Resident-subtree ablation — recursive OOC QR of 131072^2");

  report::Table t("", {"configuration", "variant", "H2D", "D2H", "total"});
  struct Point {
    const char* label;
    bytes_t capacity;
    index_t b;
  };
  const Point points[] = {{"32 GB, b=16384", 32LL << 30, 16384},
                          {"16 GB, b=8192", 16LL << 30, 8192}};
  for (const Point& p : points) {
    const qr::QrStats streamed = run(p.capacity, p.b, false);
    const qr::QrStats resident = run(p.capacity, p.b, true);
    t.add_row({p.label, "streamed levels (paper)",
               format_bytes(streamed.bytes_h2d),
               format_bytes(streamed.bytes_d2h),
               bench::secs(streamed.total_seconds)});
    t.add_row({"", "resident subtrees (ours)",
               format_bytes(resident.bytes_h2d),
               format_bytes(resident.bytes_d2h),
               bench::secs(resident.total_seconds)});
  }
  std::cout << t.render();

  const double paper_sum =
      ooc::recursive_h2d_words_sum(131072, 131072, 16384) * 4 / (1LL << 30);
  std::cout << "\nThe paper's §3.2 no-reuse sum predicts "
            << format_fixed(paper_sum, 0)
            << " GiB H2D; keeping the small subtrees resident gets the\n"
               "measured volume below even that bound — the deep levels'\n"
               "streaming (which the paper's own Table 3 shows it paid)\n"
               "disappears entirely.\n";
  return 0;
}
