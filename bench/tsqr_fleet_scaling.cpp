// Fleet-wide out-of-core TSQR scaling: one huge tall-skinny factorization
// split across 1/2/4/8 phantom V100s (qr::factorize, Algorithm::Tsqr), with
// dedicated PCIe lanes vs one shared root complex. The single-device
// recursive CGS driver at the same shape is the baseline — the fleet wins
// when the leaf factorizations overlap in simulated time and the
// R-reduction tree plus reconstruction sweep cost less than the saved leaf
// time.
//
// Two fleet trajectories are swept: the DAG-overlapped schedule (tree pairs
// fire as soon as both child R factors reach the host, the default without
// a checkpoint sink) and the bulk-synchronous schedule every checkpointed
// run uses (each leaf drains fully before the tree starts — PR 6's flow,
// kept as the committed comparison trajectory).
//
// Writes the sweep as JSON (committed as BENCH_tsqr.json) to the path
// given as argv[1], or ./BENCH_tsqr.json by default.
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "qr/factorize.hpp"
#include "report/table.hpp"

namespace {

using namespace rocqr;

constexpr index_t kM = 262144;
constexpr index_t kN = 8192;
constexpr index_t kB = 8192;

/// Swallows checkpoints: installs the sink-present (bulk-synchronous)
/// schedule without writing anything.
struct DiscardSink final : qr::CheckpointSink {
  void write(const qr::Checkpoint&) override {}
};

qr::QrOptions bench_options() {
  qr::QrOptions opts;
  opts.blocksize = kB;
  return opts;
}

double run_fleet(int gpus, bool shared_link, bool bulk_synchronous) {
  auto link = shared_link ? std::make_shared<sim::SharedHostLink>() : nullptr;
  std::vector<std::unique_ptr<sim::Device>> owned;
  std::vector<sim::Device*> devices;
  for (int i = 0; i < gpus; ++i) {
    owned.push_back(std::make_unique<sim::Device>(
        sim::DeviceSpec::v100_32gb(), sim::ExecutionMode::Phantom, link));
    owned.back()->model().install_paper_calibration();
    devices.push_back(owned.back().get());
  }
  DiscardSink sink;
  qr::QrProblem p{devices, sim::HostMutRef::phantom(kM, kN),
                  sim::HostMutRef::phantom(kN, kN), qr::Algorithm::Tsqr,
                  bench_options()};
  if (bulk_synchronous) p.options.checkpoint_sink = &sink;
  return qr::factorize(p).total_seconds;
}

struct SweepPoint {
  int gpus = 0;
  double dedicated_seconds = 0;
  double shared_seconds = 0;
  double dedicated_speedup = 0;
  double shared_speedup = 0;
};

std::vector<SweepPoint> run_sweep(double base, bool bulk_synchronous,
                                  report::Table& t) {
  std::vector<SweepPoint> sweep;
  for (const int g : {1, 2, 4, 8}) {
    SweepPoint p;
    p.gpus = g;
    p.dedicated_seconds = run_fleet(g, false, bulk_synchronous);
    p.shared_seconds = run_fleet(g, true, bulk_synchronous);
    p.dedicated_speedup = base / p.dedicated_seconds;
    p.shared_speedup = base / p.shared_seconds;
    sweep.push_back(p);
    t.add_row({std::to_string(g), bench::secs(p.dedicated_seconds),
               format_fixed(p.dedicated_speedup, 2) + "x",
               bench::secs(p.shared_seconds),
               format_fixed(p.shared_speedup, 2) + "x"});
  }
  return sweep;
}

void write_sweep(std::ostream& os, const std::vector<SweepPoint>& sweep) {
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    os << "    {\"gpus\": " << p.gpus << ", \"dedicated_seconds\": "
       << format_fixed(p.dedicated_seconds, 6) << ", \"dedicated_speedup\": "
       << format_fixed(p.dedicated_speedup, 4) << ", \"shared_seconds\": "
       << format_fixed(p.shared_seconds, 6) << ", \"shared_speedup\": "
       << format_fixed(p.shared_speedup, 4) << "}"
       << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
}

} // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : std::string("BENCH_tsqr.json");

  bench::section("Fleet TSQR scaling — 262144x8192, b=8192, phantom V100s");

  // Baseline: the single-device recursive CGS driver at the same shape.
  sim::Device solo = bench::paper_device();
  qr::QrProblem baseline{{&solo}, sim::HostMutRef::phantom(kM, kN),
                         sim::HostMutRef::phantom(kN, kN),
                         qr::Algorithm::Recursive, bench_options()};
  const double base = qr::factorize(baseline).total_seconds;
  std::cout << "single-device recursive CGS baseline: " << bench::secs(base)
            << "\n";

  std::cout << "\nDAG-overlapped schedule (tree fires on child R arrival):\n";
  report::Table t("", {"GPUs", "dedicated links", "speedup", "shared link",
                       "speedup"});
  const std::vector<SweepPoint> dag = run_sweep(base, false, t);
  std::cout << t.render();

  std::cout << "\nbulk-synchronous schedule (leaf barriers, PR 6 flow):\n";
  report::Table tb("", {"GPUs", "dedicated links", "speedup", "shared link",
                        "speedup"});
  const std::vector<SweepPoint> bulk = run_sweep(base, true, tb);
  std::cout << tb.render();

  std::ofstream os(out_path);
  if (!os) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  os << "{\n  \"bench\": \"tsqr_fleet_scaling\",\n"
     << "  \"device\": \"V100-PCIe-32GB (phantom, paper calibration)\",\n"
     << "  \"matrix\": {\"m\": " << kM << ", \"n\": " << kN
     << ", \"blocksize\": " << kB << "},\n"
     << "  \"recursive_baseline_seconds\": " << format_fixed(base, 6) << ",\n"
     << "  \"sweep\": [\n";
  write_sweep(os, dag);
  os << "  ],\n  \"bulk_synchronous_sweep\": [\n";
  write_sweep(os, bulk);
  os << "  ]\n}\n";
  std::cout << "\nwrote " << out_path << "\n";
  return 0;
}
