// Fleet-wide out-of-core TSQR scaling: one huge tall-skinny factorization
// split across 1/2/4/8 phantom V100s (qr::tsqr_ooc_qr), with dedicated
// PCIe lanes vs one shared root complex. The single-device recursive CGS
// driver at the same shape is the baseline — the fleet wins when the leaf
// factorizations overlap in simulated time and the R-reduction tree plus
// reconstruction sweep cost less than the saved leaf time.
//
// Writes the sweep as JSON (committed as BENCH_tsqr.json) to the path
// given as argv[1], or ./BENCH_tsqr.json by default.
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "qr/recursive_qr.hpp"
#include "qr/tsqr_ooc.hpp"
#include "report/table.hpp"

namespace {

using namespace rocqr;

constexpr index_t kM = 262144;
constexpr index_t kN = 8192;
constexpr index_t kB = 8192;

qr::QrOptions bench_options() {
  qr::QrOptions opts;
  opts.blocksize = kB;
  return opts;
}

double run_fleet(int gpus, bool shared_link) {
  auto link = shared_link ? std::make_shared<sim::SharedHostLink>() : nullptr;
  std::vector<std::unique_ptr<sim::Device>> owned;
  std::vector<sim::Device*> devices;
  for (int i = 0; i < gpus; ++i) {
    owned.push_back(std::make_unique<sim::Device>(
        sim::DeviceSpec::v100_32gb(), sim::ExecutionMode::Phantom, link));
    owned.back()->model().install_paper_calibration();
    devices.push_back(owned.back().get());
  }
  auto a = sim::HostMutRef::phantom(kM, kN);
  auto r = sim::HostMutRef::phantom(kN, kN);
  return qr::tsqr_ooc_qr(devices, a, r, bench_options()).total_seconds;
}

struct SweepPoint {
  int gpus = 0;
  double dedicated_seconds = 0;
  double shared_seconds = 0;
  double dedicated_speedup = 0;
  double shared_speedup = 0;
};

} // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : std::string("BENCH_tsqr.json");

  bench::section("Fleet TSQR scaling — 262144x8192, b=8192, phantom V100s");

  // Baseline: the single-device recursive CGS driver at the same shape.
  sim::Device solo = bench::paper_device();
  auto a = sim::HostMutRef::phantom(kM, kN);
  auto r = sim::HostMutRef::phantom(kN, kN);
  const double base =
      qr::recursive_ooc_qr(solo, a, r, bench_options()).total_seconds;
  std::cout << "single-device recursive CGS baseline: " << bench::secs(base)
            << "\n";

  report::Table t("", {"GPUs", "dedicated links", "speedup", "shared link",
                       "speedup"});
  std::vector<SweepPoint> sweep;
  for (const int g : {1, 2, 4, 8}) {
    SweepPoint p;
    p.gpus = g;
    p.dedicated_seconds = run_fleet(g, false);
    p.shared_seconds = run_fleet(g, true);
    p.dedicated_speedup = base / p.dedicated_seconds;
    p.shared_speedup = base / p.shared_seconds;
    sweep.push_back(p);
    t.add_row({std::to_string(g), bench::secs(p.dedicated_seconds),
               format_fixed(p.dedicated_speedup, 2) + "x",
               bench::secs(p.shared_seconds),
               format_fixed(p.shared_speedup, 2) + "x"});
  }
  std::cout << t.render();

  std::ofstream os(out_path);
  if (!os) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  os << "{\n  \"bench\": \"tsqr_fleet_scaling\",\n"
     << "  \"device\": \"V100-PCIe-32GB (phantom, paper calibration)\",\n"
     << "  \"matrix\": {\"m\": " << kM << ", \"n\": " << kN
     << ", \"blocksize\": " << kB << "},\n"
     << "  \"recursive_baseline_seconds\": " << format_fixed(base, 6) << ",\n"
     << "  \"sweep\": [\n";
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    os << "    {\"gpus\": " << p.gpus << ", \"dedicated_seconds\": "
       << format_fixed(p.dedicated_seconds, 6) << ", \"dedicated_speedup\": "
       << format_fixed(p.dedicated_speedup, 4) << ", \"shared_seconds\": "
       << format_fixed(p.shared_seconds, 6) << ", \"shared_speedup\": "
       << format_fixed(p.shared_speedup, 4) << "}"
       << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  std::cout << "\nwrote " << out_path << "\n";
  return 0;
}
