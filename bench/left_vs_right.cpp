// Three formulations, one design space: left-looking (SOLAR/disk-era,
// minimal movement, skinny GEMMs), right-looking blocking (the paper's
// baseline: streamed trailing updates, fixed-shape GEMMs), and the paper's
// recursive algorithm (small movement AND large GEMMs). Across boundaries.
#include <iostream>

#include "bench/bench_util.hpp"
#include "qr/factorize.hpp"
#include "report/table.hpp"

namespace {

using namespace rocqr;

struct Case {
  sim::DeviceSpec spec;
  index_t n;
  index_t b;
  bool calibrate;
};

qr::QrStats run(const Case& c, int formulation) {
  sim::Device dev(c.spec, sim::ExecutionMode::Phantom);
  if (c.calibrate) dev.model().install_paper_calibration();
  auto a = sim::HostMutRef::phantom(c.n, c.n);
  auto r = sim::HostMutRef::phantom(c.n, c.n);
  switch (formulation) {
    case 0: return qr::factorize(qr::QrProblem{
        {&dev}, a, r, qr::Algorithm::LeftLooking, bench::recursive_options(c.b)
        });
    case 1: return qr::factorize(qr::QrProblem{
        {&dev}, a, r, qr::Algorithm::Blocking, bench::blocking_baseline(c.b)});
    default: return qr::factorize(qr::QrProblem{
        {&dev}, a, r, qr::Algorithm::Recursive, bench::recursive_options(c.b)});
  }
}

} // namespace

int main() {
  bench::section("Left-looking vs right-looking vs recursive OOC QR");

  const Case cases[] = {
      {sim::DeviceSpec::disk_cpu_1996(), 8192, 512, false},
      {sim::DeviceSpec::v100_32gb(), 131072, 16384, true},
      {sim::DeviceSpec::v100_16gb(), 131072, 8192, true},
  };
  report::Table t("", {"boundary", "left-looking", "right-looking (blk)",
                       "recursive", "LL H2D", "RL H2D", "rec H2D"});
  for (const Case& c : cases) {
    const qr::QrStats ll = run(c, 0);
    const qr::QrStats rl = run(c, 1);
    const qr::QrStats rec = run(c, 2);
    t.add_row({c.spec.name, bench::secs(ll.total_seconds),
               bench::secs(rl.total_seconds), bench::secs(rec.total_seconds),
               format_bytes(ll.bytes_h2d), format_bytes(rl.bytes_h2d),
               format_bytes(rec.bytes_h2d)});
  }
  std::cout << t.render();
  std::cout
      << "\nLeft-looking minimizes movement (the trailing matrix is written\n"
         "once) and was the right call in the disk era. On TensorCore its\n"
         "movement edge still beats the right-looking baseline, but its\n"
         "skinny GEMMs leave performance behind the recursive algorithm,\n"
         "which is the only point in this space with small movement AND\n"
         "near-peak GEMM shapes — the paper's contribution, triangulated.\n";
  return 0;
}
