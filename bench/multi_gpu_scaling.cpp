// Multi-GPU scaling of the out-of-core outer product — the §2.2 context
// (cuBLASXt / BLASX are multi-GPU OOC BLAS3 libraries). C row-blocks are
// partitioned across devices; the decisive variable is whether the devices
// share one PCIe root (transfers serialize) or own dedicated lanes.
#include <iostream>
#include <memory>
#include <vector>

#include "bench/bench_util.hpp"
#include "ooc/multi_gpu.hpp"
#include "qr/factorize.hpp"
#include "report/table.hpp"

namespace {

using namespace rocqr;

double run(int gpus, bool shared_link) {
  auto link = shared_link ? std::make_shared<sim::SharedHostLink>() : nullptr;
  std::vector<std::unique_ptr<sim::Device>> owned;
  std::vector<sim::Device*> devices;
  for (int i = 0; i < gpus; ++i) {
    owned.push_back(std::make_unique<sim::Device>(
        sim::DeviceSpec::v100_32gb(), sim::ExecutionMode::Phantom, link));
    owned.back()->model().install_paper_calibration();
    devices.push_back(owned.back().get());
  }
  ooc::OocGemmOptions opts;
  opts.blocksize = 8192;
  return ooc::multi_gpu_outer_product(
             devices, sim::HostConstRef::phantom(131072, 65536),
             sim::HostConstRef::phantom(65536, 65536),
             sim::HostConstRef::phantom(131072, 65536),
             sim::HostMutRef::phantom(131072, 65536), opts)
      .makespan;
}

} // namespace

int main() {
  bench::section(
      "Multi-GPU scaling — outer product 131072x65536x65536, V100s");

  const double base = run(1, false);
  report::Table t("", {"GPUs", "dedicated links", "speedup", "shared link",
                       "speedup"});
  for (const int g : {1, 2, 4}) {
    const double dedicated = run(g, false);
    const double shared = run(g, true);
    t.add_row({std::to_string(g), bench::secs(dedicated),
               format_fixed(base / dedicated, 2) + "x", bench::secs(shared),
               format_fixed(base / shared, 2) + "x"});
  }
  std::cout << t.render();

  bench::section("Multi-GPU blocking QR — 131072^2, b=16384, dedicated lanes");
  {
    const auto run_qr = [&](int gpus) {
      std::vector<std::unique_ptr<sim::Device>> owned;
      std::vector<sim::Device*> devices;
      for (int i = 0; i < gpus; ++i) {
        owned.push_back(std::make_unique<sim::Device>(
            sim::DeviceSpec::v100_32gb(), sim::ExecutionMode::Phantom));
        owned.back()->model().install_paper_calibration();
        devices.push_back(owned.back().get());
      }
      qr::QrOptions opts;
      opts.blocksize = 16384;
      auto a = sim::HostMutRef::phantom(131072, 131072);
      auto r = sim::HostMutRef::phantom(131072, 131072);
      return qr::factorize(qr::QrProblem{
          devices, a, r, qr::Algorithm::MultiGpu, opts}).total_seconds;
    };
    const double qr1 = run_qr(1);
    report::Table tq("", {"GPUs", "total", "speedup"});
    for (const int g : {1, 2, 4}) {
      const double tgpu = run_qr(g);
      tq.add_row({std::to_string(g), bench::secs(tgpu),
                  format_fixed(qr1 / tgpu, 2) + "x"});
    }
    std::cout << tq.render();
    std::cout << "QR scales sub-linearly: panels stay serial on device 0 and\n"
                 "every device re-streams the panel (replication) — Amdahl\n"
                 "plus communication, the classic multi-GPU factorization\n"
                 "story. Punchline: ONE V100 running the paper's recursive\n"
                 "algorithm (74.8 s, fig12_15) beats TWO V100s running the\n"
                 "blocking algorithm — algorithm before hardware.\n";
  }
  std::cout
      << "\nWith dedicated PCIe lanes the row-partitioned GEMM scales almost\n"
         "linearly (each device keeps its own compute-bound pipeline). On a\n"
         "single shared link the serialized transfers — including a\n"
         "replicated B per device — swallow the gain: the regime that makes\n"
         "multi-GPU OOC scheduling (BLASX, cuBLASXt) genuinely hard, and a\n"
         "second, orthogonal argument for the paper's movement-frugal\n"
         "recursive formulations.\n";
  return 0;
}
