// google-benchmark microbenchmarks of the host substrate: GEMM paths,
// triangular solve, the Gram-Schmidt family, and fp16 conversion. These
// measure the *real* kernels (not the simulator) and mostly matter for
// keeping the Real-mode test suite fast.
#include <benchmark/benchmark.h>

#include "blas/gemm.hpp"
#include "blas/transform.hpp"
#include "blas/trsm.hpp"
#include "common/half.hpp"
#include "la/generate.hpp"
#include "qr/incore.hpp"

namespace {

using namespace rocqr;

void BM_GemmFp32(benchmark::State& state) {
  const index_t n = state.range(0);
  la::Matrix a = la::random_uniform(n, n, 1);
  la::Matrix b = la::random_uniform(n, n, 2);
  la::Matrix c(n, n);
  for (auto _ : state) {
    blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, n, n, n, 1.0f, a.data(),
               n, b.data(), n, 0.0f, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * blas::gemm_flops(n, n, n));
}
BENCHMARK(BM_GemmFp32)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmFp16Fp32(benchmark::State& state) {
  const index_t n = state.range(0);
  la::Matrix a = la::random_uniform(n, n, 1);
  la::Matrix b = la::random_uniform(n, n, 2);
  la::Matrix c(n, n);
  for (auto _ : state) {
    blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, n, n, n, 1.0f, a.data(),
               n, b.data(), n, 0.0f, c.data(), n,
               blas::GemmPrecision::FP16_FP32);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * blas::gemm_flops(n, n, n));
}
BENCHMARK(BM_GemmFp16Fp32)->Arg(64)->Arg(128)->Arg(256);

// Blocked kernel vs the seed pack-everything baseline at sizes where the
// packed operands no longer fit in cache. These two benchmarks are the
// committed host-kernel trajectory (BENCH_gemm_baseline.json): the blocked
// kernel must stay >= 1.5x the baseline at 1024-2048 square fp32.
void BM_GemmBlocked(benchmark::State& state) {
  const index_t n = state.range(0);
  la::Matrix a = la::random_uniform(n, n, 1);
  la::Matrix b = la::random_uniform(n, n, 2);
  la::Matrix c(n, n);
  for (auto _ : state) {
    blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, n, n, n, 1.0f, a.data(),
               n, b.data(), n, 0.0f, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * blas::gemm_flops(n, n, n));
}
BENCHMARK(BM_GemmBlocked)->Arg(1024)->Arg(2048)->Unit(benchmark::kMillisecond);

void BM_GemmBaseline(benchmark::State& state) {
  const index_t n = state.range(0);
  la::Matrix a = la::random_uniform(n, n, 1);
  la::Matrix b = la::random_uniform(n, n, 2);
  la::Matrix c(n, n);
  for (auto _ : state) {
    blas::gemm_baseline(blas::Op::NoTrans, blas::Op::NoTrans, n, n, n, 1.0f,
                        a.data(), n, b.data(), n, 0.0f, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * blas::gemm_flops(n, n, n));
}
BENCHMARK(BM_GemmBaseline)->Arg(1024)->Arg(2048)->Unit(benchmark::kMillisecond);

// Steady-state gemm must run out of the thread-local pack buffers without
// allocating: one warm-up call sizes them, then the allocation counter may
// not move for the rest of the benchmark.
void BM_GemmPackSteadyState(benchmark::State& state) {
  const index_t n = 256;
  la::Matrix a = la::random_uniform(n, n, 1);
  la::Matrix b = la::random_uniform(n, n, 2);
  la::Matrix c(n, n);
  blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, n, n, n, 1.0f, a.data(), n,
             b.data(), n, 0.0f, c.data(), n);
  const std::int64_t warm = blas::gemm_pack_allocations();
  for (auto _ : state) {
    blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, n, n, n, 1.0f, a.data(),
               n, b.data(), n, 0.0f, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  if (blas::gemm_pack_allocations() != warm) {
    state.SkipWithError("gemm pack buffers reallocated in steady state");
  }
  state.SetItemsProcessed(state.iterations() * blas::gemm_flops(n, n, n));
}
BENCHMARK(BM_GemmPackSteadyState);

void BM_GemmTransA(benchmark::State& state) {
  const index_t n = state.range(0);
  la::Matrix a = la::random_uniform(n, n, 1);
  la::Matrix b = la::random_uniform(n, n, 2);
  la::Matrix c(n, n);
  for (auto _ : state) {
    blas::gemm(blas::Op::Trans, blas::Op::NoTrans, n, n, n, 1.0f, a.data(), n,
               b.data(), n, 0.0f, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * blas::gemm_flops(n, n, n));
}
BENCHMARK(BM_GemmTransA)->Arg(128);

void BM_TrsmRightUpper(benchmark::State& state) {
  const index_t n = state.range(0);
  la::Matrix r = la::random_uniform(n, n, 3);
  for (index_t j = 0; j < n; ++j) r(j, j) += 4.0f;
  la::Matrix b0 = la::random_uniform(4 * n, n, 4);
  la::Matrix b(4 * n, n);
  for (auto _ : state) {
    blas::copy_matrix(4 * n, n, b0.data(), b0.ld(), b.data(), b.ld());
    blas::trsm_right_upper(4 * n, n, r.data(), r.ld(), b.data(), b.ld());
    benchmark::DoNotOptimize(b.data());
  }
}
BENCHMARK(BM_TrsmRightUpper)->Arg(64)->Arg(128);

template <qr::QrFactors (*Fn)(la::ConstMatrixView)>
void BM_QrVariant(benchmark::State& state) {
  const index_t n = state.range(0);
  la::Matrix a = la::random_normal(4 * n, n, 5);
  for (auto _ : state) {
    qr::QrFactors f = Fn(a.view());
    benchmark::DoNotOptimize(f.q.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * (4 * n) * n * n);
}
BENCHMARK(BM_QrVariant<qr::cgs>)->Arg(32)->Arg(64)->Name("BM_QrCgs");
BENCHMARK(BM_QrVariant<qr::mgs>)->Arg(32)->Arg(64)->Name("BM_QrMgs");
BENCHMARK(BM_QrVariant<qr::cgs2>)->Arg(32)->Arg(64)->Name("BM_QrCgs2");
BENCHMARK(BM_QrVariant<qr::cholesky_qr2>)
    ->Arg(32)
    ->Arg(64)
    ->Name("BM_QrCholeskyQr2");

void BM_QrTsqr(benchmark::State& state) {
  const index_t n = state.range(0);
  la::Matrix a = la::random_normal(4 * n, n, 8);
  for (auto _ : state) {
    qr::QrFactors f = qr::tsqr(a.view(), n);
    benchmark::DoNotOptimize(f.q.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * (4 * n) * n * n);
}
BENCHMARK(BM_QrTsqr)->Arg(32)->Arg(64);

void BM_QrRecursive(benchmark::State& state) {
  const index_t n = state.range(0);
  la::Matrix a = la::random_normal(4 * n, n, 6);
  for (auto _ : state) {
    qr::QrFactors f = qr::recursive_cgs(a.view(), 32);
    benchmark::DoNotOptimize(f.q.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * (4 * n) * n * n);
}
BENCHMARK(BM_QrRecursive)->Arg(64)->Arg(128);

void BM_HalfRoundTrip(benchmark::State& state) {
  la::Matrix a = la::random_uniform(256, 256, 7);
  for (auto _ : state) {
    blas::round_to_half(256, 256, a.data(), a.ld());
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(state.iterations() * 256 * 256);
}
BENCHMARK(BM_HalfRoundTrip);

} // namespace

BENCHMARK_MAIN();
