// Reproduces Table 4: GEMM / panel time split of the full QR for
// 65536 x 65536 and 262144 x 65536 at blocksize 8192, and the quoted
// overall speedups (1.5x and 1.7x).
#include <iostream>

#include "bench/bench_util.hpp"
#include "qr/factorize.hpp"
#include "report/paper.hpp"
#include "report/table.hpp"

int main() {
  using namespace rocqr;
  namespace paper = report::paper;

  bench::section("Table 4 — GEMMs/panel split at blocksize 8192");

  const auto run = [&](bool recursive, index_t m, index_t n) {
    auto dev = bench::paper_device();
    auto a = sim::HostMutRef::phantom(m, n);
    auto r = sim::HostMutRef::phantom(n, n);
    return recursive ? qr::factorize(qr::QrProblem{
        {&dev}, a, r, qr::Algorithm::Recursive, bench::recursive_options(8192)})
                     : qr::factorize(qr::QrProblem{
                         {&dev}, a, r, qr::Algorithm::Blocking,
                         bench::blocking_baseline(8192)});
  };

  using P = paper::QrSizes;
  struct Case {
    index_t m, n;
    double paper_rec_gemms, paper_blk_gemms, paper_panel, paper_speedup;
  };
  const Case cases[] = {
      {65536, 65536, P::s65536_recursive_gemms_s, P::s65536_blocking_gemms_s,
       P::s65536_panel_s, P::s65536_speedup},
      {262144, 65536, P::s262144_recursive_gemms_s,
       P::s262144_blocking_gemms_s, P::s262144_panel_s, P::s262144_speedup},
  };

  for (const Case& c : cases) {
    const qr::QrStats rec = run(true, c.m, c.n);
    const qr::QrStats blk = run(false, c.m, c.n);

    report::Table t("Matrix " + format_shape(c.m, c.n) + ":",
                    {"partition", "recursive", "blocking"});
    // "GEMMs" in the paper's accounting = everything that is not the panel:
    // the trailing-update phase including its (partially hidden) movement.
    const double rec_gemms = rec.total_seconds - rec.panel_seconds;
    const double blk_gemms = blk.total_seconds - blk.panel_seconds;
    t.add_row({"GEMMs (incl. exposed movement)",
               bench::vs_paper_s(rec_gemms, c.paper_rec_gemms),
               bench::vs_paper_s(blk_gemms, c.paper_blk_gemms)});
    t.add_row({"panel", bench::vs_paper_s(rec.panel_seconds, c.paper_panel),
               bench::vs_paper_s(blk.panel_seconds, c.paper_panel)});
    t.add_row({"total", bench::secs(rec.total_seconds),
               bench::secs(blk.total_seconds)});
    std::cout << t.render();
    std::cout << "overall speedup: "
              << format_fixed(blk.total_seconds / rec.total_seconds, 2)
              << "x  (paper ~" << format_fixed(c.paper_speedup, 1) << "x)\n";
  }

  std::cout << "\nAs in the paper, panel time is identical across algorithms\n"
               "(same in-core solver); the gap is entirely in the GEMMs, and\n"
               "the taller 262144-row case favours recursion more.\n";
  return 0;
}
