// Out-of-core randomized SVD cost profile — the theme of the paper's
// reference [15] ("reducing the amount of out-of-core data access for
// GPU-accelerated randomized SVD"): at paper scale the algorithm is pure
// streaming, and its cost is the number of passes over A.
#include <iostream>

#include "bench/bench_util.hpp"
#include "report/table.hpp"
#include "svd/ooc_rsvd.hpp"

int main() {
  using namespace rocqr;

  bench::section(
      "OOC randomized SVD of 131072^2 (64 GiB), rank 32 + oversample 8");

  const double a_gib = 131072.0 * 131072.0 * 4.0 / (1LL << 30);
  report::Table t("", {"power iterations", "passes over A", "H2D moved",
                       "D2H moved", "simulated time"});
  for (const int q : {0, 1, 2, 3}) {
    auto dev = bench::paper_device();
    svd::RsvdOptions opts;
    opts.rank = 32;
    opts.oversample = 8;
    opts.power_iterations = q;
    opts.blocksize = 16384;
    const svd::RsvdResult r = svd::ooc_randomized_svd(
        dev, sim::HostConstRef::phantom(131072, 131072), opts);
    t.add_row({std::to_string(q), std::to_string(2 + 2 * q),
               format_bytes(r.bytes_h2d), format_bytes(r.bytes_d2h),
               bench::secs(r.seconds)});
  }
  std::cout << t.render();
  std::cout << "\n(A itself is " << format_fixed(a_gib, 0)
            << " GiB; everything resident is O((m+n)*l).)\n\n"
            << "Each power iteration costs exactly two more streaming passes\n"
               "— the data-access budget [15] optimizes. For comparison, the\n"
               "full recursive OOC QR of the same matrix moves 448 GiB and\n"
               "takes ~75 s: a rank-32 spectral sketch costs a fraction of\n"
               "one factorization.\n";
  return 0;
}
