// Reproduces Figs 12-15: full out-of-core QR timelines of the 131072^2
// factorization — blocking vs recursive at blocksize 16384 (32 GB, Figs
// 12/13) and at blocksize 8192 with the device limited to 16 GB (Figs
// 14/15), plus the ~15% QR-level-optimization ablation quoted in §5.2.
#include <fstream>
#include <iostream>
#include <string>

#include "bench/bench_util.hpp"
#include "common/telemetry.hpp"
#include "qr/checkpoint.hpp"
#include "qr/factorize.hpp"
#include "report/paper.hpp"
#include "report/table.hpp"
#include "sim/faults.hpp"
#include "sim/trace_export.hpp"

namespace {

std::string arg_value(int argc, char** argv, const std::string& prefix) {
  for (int i = 1; i < argc; ++i) {
    const std::string t = argv[i];
    if (t.rfind(prefix, 0) == 0) return t.substr(prefix.size());
  }
  return {};
}

bool has_flag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == flag) return true;
  }
  return false;
}

} // namespace

int main(int argc, char** argv) {
  using namespace rocqr;
  namespace paper = report::paper;

  // --trace-json=FILE exports the Fig 13 timeline (recursive, 32 GB) as a
  // Chrome/Perfetto trace; --metrics-json=FILE snapshots the registry at exit.
  // Fault-tolerance knobs (docs/FAULTS.md): --faults=SPEC installs a seeded
  // fault plan on every device, --abft turns on the GEMM checksums, and
  // --checkpoint=FILE attaches a checkpoint sink to the Fig 13 run — the
  // recovery machinery's modeled-time overhead then shows up directly in the
  // timelines. All three default off, leaving the paper numbers untouched.
  const std::string trace_path = arg_value(argc, argv, "--trace-json=");
  const std::string metrics_path = arg_value(argc, argv, "--metrics-json=");
  const std::string faults_spec = arg_value(argc, argv, "--faults=");
  const std::string checkpoint_path = arg_value(argc, argv, "--checkpoint=");
  const bool abft = has_flag(argc, argv, "--abft");

  const index_t n = 131072;

  bool exported_trace = false;
  bool checkpointed = false;
  qr::FileCheckpointSink checkpoint_sink(checkpoint_path);
  const auto run = [&](bool recursive, bytes_t capacity, index_t b,
                       bool qr_level_opt, bool show_timeline,
                       const char* title) {
    auto dev = bench::paper_device(capacity);
    if (!faults_spec.empty()) {
      dev.install_faults(sim::FaultPlan::parse(faults_spec));
    }
    auto a = sim::HostMutRef::phantom(n, n);
    auto r = sim::HostMutRef::phantom(n, n);
    qr::QrOptions opts = recursive ? bench::recursive_options(b)
                                   : bench::blocking_baseline(b);
    opts.qr_level_opt = qr_level_opt;
    opts.abft = abft;
    // The checkpoint rider attaches to the first recursive timeline (Fig 13).
    if (recursive && show_timeline && !checkpointed &&
        !checkpoint_path.empty()) {
      checkpointed = true;
      opts.checkpoint_sink = &checkpoint_sink;
    }
    const bool export_this =
        recursive && show_timeline && !exported_trace && !trace_path.empty();
    // Span cursors index this run's device trace; drop spans accumulated by
    // earlier runs so the export only carries this timeline's phases.
    if (export_this) telemetry::SpanLog::global().clear();
    const qr::QrStats stats =
        recursive ? qr::factorize(
            qr::QrProblem{{&dev}, a, r, qr::Algorithm::Recursive, opts})
                  : qr::factorize(qr::QrProblem{
                      {&dev}, a, r, qr::Algorithm::Blocking, opts});
    if (show_timeline) {
      bench::section(title);
      std::cout << "total " << bench::secs(stats.total_seconds) << "  (panel "
                << bench::secs(stats.panel_seconds) << ", gemm "
                << bench::secs(stats.gemm_seconds) << ", sustained "
                << bench::tflops(stats.sustained_flops_per_s()) << ")\n\n"
                << dev.trace().render_gantt(110);
    }
    if (export_this) {
      exported_trace = true;
      std::ofstream os(trace_path);
      sim::write_chrome_trace(os, dev.trace(), &telemetry::SpanLog::global());
      std::cout << "chrome trace written to " << trace_path << "\n";
    }
    return stats;
  };

  const qr::QrStats fig12 =
      run(false, 32LL << 30, 16384, true, true,
          "Fig 12 — blocking OOC QR, b=16384, 32 GB");
  const qr::QrStats fig13 =
      run(true, 32LL << 30, 16384, true, true,
          "Fig 13 — recursive OOC QR, b=16384, 32 GB");
  const qr::QrStats fig14 =
      run(false, 16LL << 30, 8192, true, true,
          "Fig 14 — blocking OOC QR, b=8192, 16 GB");
  const qr::QrStats fig15 =
      run(true, 16LL << 30, 8192, true, true,
          "Fig 15 — recursive OOC QR, b=8192, 16 GB");

  bench::section("Headline speedups (§5.3)");
  report::Table t("", {"configuration", "blocking", "recursive", "speedup",
                       "paper"});
  t.add_row({"32 GB, b=16384", bench::secs(fig12.total_seconds),
             bench::secs(fig13.total_seconds),
             format_fixed(fig12.total_seconds / fig13.total_seconds, 2) + "x",
             "~1.25x"});
  t.add_row({"16 GB, b=8192", bench::secs(fig14.total_seconds),
             bench::secs(fig15.total_seconds),
             format_fixed(fig14.total_seconds / fig15.total_seconds, 2) + "x",
             "~2.0x"});
  std::cout << t.render();

  std::cout << "recursive sustained rate at 32 GB: "
            << format_fixed(100.0 * fig13.sustained_flops_per_s() /
                                sim::DeviceSpec::v100_32gb().tc_peak_flops,
                            1)
            << "% of TensorCore peak (paper: ~45%)\n";

  bench::section("Ablation — QR-level optimization (§4.2, quoted ~15%)");
  report::Table t2("", {"algorithm", "opt on", "opt off", "gain"});
  for (const bool recursive : {false, true}) {
    const qr::QrStats on =
        run(recursive, 32LL << 30, 16384, true, false, "");
    const qr::QrStats off =
        run(recursive, 32LL << 30, 16384, false, false, "");
    t2.add_row({recursive ? "recursive" : "blocking",
                bench::secs(on.total_seconds), bench::secs(off.total_seconds),
                format_fixed(100.0 * (off.total_seconds / on.total_seconds -
                                      1.0),
                             1) +
                    "%"});
  }
  std::cout << t2.render();
  if (!metrics_path.empty()) {
    std::ofstream os(metrics_path);
    telemetry::MetricsRegistry::global().write_json(os);
    std::cout << "metrics snapshot written to " << metrics_path << "\n";
  }
  return 0;
}
