// Why recursion wins, quantified from the schedule itself: the distribution
// of GEMM work over achieved rates in the full 131072^2 factorization.
// The recursive algorithm concentrates its flops in few, large, near-peak
// GEMMs; the blocking algorithm spreads the same flops over many fixed-shape
// GEMMs that are slow (inner, tall-skinny TN) or movement-bound (outer).
#include <iostream>
#include <vector>

#include "bench/bench_util.hpp"
#include "qr/factorize.hpp"
#include "report/table.hpp"
#include "sim/trace.hpp"

namespace {

using namespace rocqr;

struct Profile {
  // Buckets by achieved in-core rate (TFLOP/s).
  double flops_below_60 = 0;
  double flops_60_to_90 = 0;
  double flops_above_90 = 0;
  double gemm_seconds = 0;
  int gemm_count = 0;
  double total_flops = 0;
};

Profile profile_run(bool recursive) {
  auto dev = bench::paper_device();
  auto a = sim::HostMutRef::phantom(131072, 131072);
  auto r = sim::HostMutRef::phantom(131072, 131072);
  if (recursive) {
    qr::factorize(qr::QrProblem{
        {&dev}, a, r, qr::Algorithm::Recursive, bench::recursive_options(16384)
        });
  } else {
    qr::factorize(qr::QrProblem{
        {&dev}, a, r, qr::Algorithm::Blocking, bench::blocking_baseline(16384)
        });
  }
  Profile p;
  for (const auto& e : dev.trace().events()) {
    if (e.kind != sim::OpKind::Gemm) continue;
    const double dur = e.end - e.start;
    const double rate = static_cast<double>(e.flops) / dur;
    const double f = static_cast<double>(e.flops);
    if (rate < 60e12) {
      p.flops_below_60 += f;
    } else if (rate < 90e12) {
      p.flops_60_to_90 += f;
    } else {
      p.flops_above_90 += f;
    }
    p.gemm_seconds += dur;
    ++p.gemm_count;
    p.total_flops += f;
  }
  return p;
}

std::string pct(double part, double whole) {
  return format_fixed(100.0 * part / whole, 1) + "%";
}

} // namespace

int main() {
  bench::section(
      "GEMM shape profile — where the flops run (131072^2, b=16384)");

  const Profile rec = profile_run(true);
  const Profile blk = profile_run(false);

  report::Table t("Fraction of GEMM flops by achieved in-core rate:",
                  {"bucket", "recursive", "blocking"});
  t.add_row({"  < 60 TFLOP/s", pct(rec.flops_below_60, rec.total_flops),
             pct(blk.flops_below_60, blk.total_flops)});
  t.add_row({"60 - 90 TFLOP/s", pct(rec.flops_60_to_90, rec.total_flops),
             pct(blk.flops_60_to_90, blk.total_flops)});
  t.add_row({"  > 90 TFLOP/s", pct(rec.flops_above_90, rec.total_flops),
             pct(blk.flops_above_90, blk.total_flops)});
  t.add_rule();
  t.add_row({"GEMM kernel count", std::to_string(rec.gemm_count),
             std::to_string(blk.gemm_count)});
  t.add_row({"total GEMM busy", bench::secs(rec.gemm_seconds),
             bench::secs(blk.gemm_seconds)});
  t.add_row({"mean in-core rate",
             bench::tflops(rec.total_flops / rec.gemm_seconds),
             bench::tflops(blk.total_flops / blk.gemm_seconds)});
  std::cout << t.render();

  std::cout
      << "\nBoth algorithms execute the same ~2n^3 update flops; the paper's\n"
         "§3.1.3 claim is visible directly: recursion runs most of them in\n"
         "near-peak GEMMs, blocking runs ALL of them in fixed-shape kernels\n"
         "capped by the tall-skinny TensorCore penalty (§5.1.1).\n";
  return 0;
}
