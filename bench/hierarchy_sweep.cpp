// The abstract's generalization, executed: "out-of-core applications
// including disk-memory and CPU-GPU processing" share one fast/slow memory
// boundary, and the recursive-vs-blocking question is the same question at
// every boundary. This bench runs the identical QR drivers against a 1996
// disk-CPU workstation, a modern NVMe-CPU node, and the GPU configurations,
// and reports where recursion starts to matter.
#include <iostream>

#include "bench/bench_util.hpp"
#include "qr/factorize.hpp"
#include "report/table.hpp"

namespace {

using namespace rocqr;

struct Setup {
  sim::DeviceSpec spec;
  index_t n;         // square matrix size ~2-4x the fast tier
  index_t blocksize;
  bool calibrate;    // install V100 measured rates
};

double run(const Setup& s, bool recursive) {
  sim::Device dev(s.spec, sim::ExecutionMode::Phantom);
  if (s.calibrate) dev.model().install_paper_calibration();
  auto a = sim::HostMutRef::phantom(s.n, s.n);
  auto r = sim::HostMutRef::phantom(s.n, s.n);
  const qr::QrOptions opts = recursive ? bench::recursive_options(s.blocksize)
                                       : bench::blocking_baseline(s.blocksize);
  return (recursive ? qr::factorize(
      qr::QrProblem{{&dev}, a, r, qr::Algorithm::Recursive, opts})
                    : qr::factorize(qr::QrProblem{
                        {&dev}, a, r, qr::Algorithm::Blocking, opts}))
      .total_seconds;
}

} // namespace

int main() {
  bench::section(
      "One boundary, three eras — OOC QR of a matrix ~2-4x the fast tier");

  const Setup setups[] = {
      {sim::DeviceSpec::disk_cpu_1996(), 8192, 512, false},
      {sim::DeviceSpec::nvme_cpu_node(), 262144, 16384, false},
      {sim::DeviceSpec::v100_32gb(), 131072, 16384, true},
      {sim::DeviceSpec::v100_16gb(), 131072, 8192, true},
      {sim::DeviceSpec::a100_40gb(), 131072, 16384, false},
  };

  report::Table t("", {"boundary", "matrix", "blocking", "recursive",
                       "speedup"});
  for (const Setup& s : setups) {
    const double blk = run(s, false);
    const double rec = run(s, true);
    t.add_row({s.spec.name, format_shape(s.n, s.n), bench::secs(blk),
               bench::secs(rec), format_fixed(blk / rec, 2) + "x"});
  }
  std::cout << t.render();
  std::cout
      << "\nOn the 1996 disk-CPU node recursion's gain is the modest\n"
         "movement-volume effect (~1.3x) — matching §2.4's remark that\n"
         "recursive algorithms historically brought \"rather small\" gains\n"
         "because blocking alone reached near peak. Matrix accelerators add\n"
         "the shape effect on top (fixed-width GEMMs run at half rate), and\n"
         "shrinking relative memory adds the overlap effect; stacked, they\n"
         "produce the 1.5-2x of the TensorCore rows — the paper's thesis\n"
         "restated across thirty years of hardware.\n";
  return 0;
}
