// Open-loop arrival throughput of the batched small-QR serving path
// (docs/SERVING.md "Batched small-QR coalescing").
//
// A flood of same-shape small "blocking" jobs arrives open-loop — job i's
// arrival gate opens after i/4 fleet panel units, regardless of how fast
// the fleet drains — so the ready queue outgrows the device and the
// dispatcher's coalescer has real batches to fuse. The fleet is ONE
// device: the win measured here is the per-round latency amortization
// itself (small jobs pay a fixed ~10us link turnaround / ~8us kernel
// launch per op, and fusing K jobs pays each once instead of K times),
// not multi-device load balancing — which a trailing fused batch would
// actually worsen by parking K jobs on one device while another idles.
// Each mix runs the same arrival schedule at max_fused_jobs 1 (fusion
// off), 4 and 8, and reports
// fleet makespan, jobs/sec and the EXACT p50/p95/p99 simulated queue wait
// from FleetReport (nearest-rank over the per-dispatch record — not the
// power-of-two-bucket telemetry histogram, whose tails are off by up to
// 2x). Everything is phantom-mode and simulated-clock, so the numbers are
// deterministic: CI diffs them against the committed baseline
// (BENCH_qr_openloop.json) with tools/bench_diff and fails loudly on a
// throughput regression.
//
// Writes the sweep as JSON to argv[1], or ./BENCH_qr_openloop.json.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/telemetry.hpp"
#include "report/table.hpp"
#include "serve/scheduler.hpp"

namespace {

using namespace rocqr;

/// One job mix: `count` copies of an m x n "blocking" job at `blocksize`.
/// Shapes must match for jobs to fuse, so the mixed scenario below splits
/// into two shape classes and only fuses within each.
struct MixPart {
  int count = 0;
  index_t m = 0;
  index_t n = 0;
  index_t blocksize = 0;
};

struct Mix {
  std::string name;
  std::vector<MixPart> parts;
};

struct Point {
  int max_fused = 1;
  int jobs = 0;
  double makespan_seconds = 0;
  double jobs_per_second = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

Point run_mix(const Mix& mix, int devices, int max_fused) {
  // The registry is process-global; reset per point so no sweep point
  // inherits the previous one's counters or histogram samples.
  telemetry::MetricsRegistry::global().reset();
  serve::ServeConfig cfg;
  cfg.devices = devices;
  cfg.max_fused_jobs = max_fused;
  serve::Scheduler sched(cfg);

  int id = 0;
  for (const MixPart& part : mix.parts) {
    for (int i = 0; i < part.count; ++i, ++id) {
      serve::JobSpec job;
      job.name = "job" + std::to_string(id);
      job.m = part.m;
      job.n = part.n;
      job.algorithm = "blocking";
      job.blocksize = part.blocksize;
      // Open-loop arrival: the gate is a function of the job's index
      // alone (4 arrivals per fleet panel unit), not of service progress.
      job.arrival_after_units = static_cast<index_t>(id / 4);
      const serve::AdmissionDecision d = sched.submit(job);
      if (!d.admitted) {
        std::cerr << job.name << " rejected: " << d.reason << "\n";
        std::exit(1);
      }
    }
  }

  const serve::FleetReport rep = sched.run();
  if (rep.jobs_completed != id) {
    std::cerr << mix.name << ": only " << rep.jobs_completed << "/" << id
              << " jobs completed\n";
    std::exit(1);
  }
  Point p;
  p.max_fused = max_fused;
  p.jobs = id;
  p.makespan_seconds = rep.makespan_seconds;
  p.jobs_per_second =
      rep.makespan_seconds > 0 ? id / rep.makespan_seconds : 0;
  p.p50 = rep.queue_wait_p50;
  p.p95 = rep.queue_wait_p95;
  p.p99 = rep.queue_wait_p99;
  return p;
}

std::string us(double seconds) {
  return format_fixed(seconds * 1e6, 0) + " us";
}

} // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : std::string("BENCH_qr_openloop.json");
  const int devices = 1;

  // Small panel-rich jobs: at m=2048, b=64 one trailing-update transfer
  // moves ~0.5 MiB (~40us on the paper link), so the fixed ~10us per-op
  // latency is a large fraction and fusion has something to amortize.
  const std::vector<Mix> mixes = {
      {"uniform_small", {{24, 2048, 512, 64}}},
      {"mixed_shapes", {{12, 2048, 512, 64}, {12, 4096, 1024, 128}}},
  };

  std::ofstream os(out_path);
  if (!os) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  os << "{\n  \"bench\": \"qr_service_openloop\",\n"
     << "  \"device\": \"V100-PCIe-32GB (phantom, paper calibration)\",\n"
     << "  \"devices\": " << devices << ",\n"
     << "  \"arrivals_per_unit\": 4,\n"
     << "  \"mixes\": [\n";

  for (size_t mi = 0; mi < mixes.size(); ++mi) {
    const Mix& mix = mixes[mi];
    bench::section("QR service open-loop — mix " + mix.name + ", " +
                   std::to_string(devices) + " phantom V100s");
    report::Table t("", {"max_fused", "jobs", "makespan", "jobs/sec",
                         "wait p50", "wait p95", "wait p99"});
    std::vector<Point> sweep;
    for (const int max_fused : {1, 4, 8}) {
      const Point p = run_mix(mix, devices, max_fused);
      sweep.push_back(p);
      t.add_row({std::to_string(p.max_fused), std::to_string(p.jobs),
                 bench::ms(p.makespan_seconds),
                 format_fixed(p.jobs_per_second, 1), us(p.p50), us(p.p95),
                 us(p.p99)});
    }
    std::cout << t.render();

    os << "    {\"mix\": \"" << mix.name << "\", \"jobs\": "
       << sweep.front().jobs << ", \"sweep\": [\n";
    for (size_t i = 0; i < sweep.size(); ++i) {
      const Point& p = sweep[i];
      os << "      {\"max_fused_jobs\": " << p.max_fused
         << ", \"makespan_seconds\": " << format_fixed(p.makespan_seconds, 6)
         << ", \"jobs_per_second\": " << format_fixed(p.jobs_per_second, 3)
         << ", \"queue_wait_p50_seconds\": " << format_fixed(p.p50, 6)
         << ", \"queue_wait_p95_seconds\": " << format_fixed(p.p95, 6)
         << ", \"queue_wait_p99_seconds\": " << format_fixed(p.p99, 6)
         << "}" << (i + 1 < sweep.size() ? "," : "") << "\n";
    }
    os << "    ]}" << (mi + 1 < mixes.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  std::cout << "\nwrote " << out_path << "\n";
  return 0;
}
