// Regenerates the §3.2 analysis: data-movement volume of both algorithms as
// a function of the panel count k, showing the O(k) vs O(log k) separation.
#include <iostream>

#include "bench/bench_util.hpp"
#include "ooc/movement_model.hpp"
#include "report/table.hpp"

int main() {
  using namespace rocqr;

  bench::section("§3.2 — analytic data movement vs panel count (m=n=131072)");

  const index_t n = 131072;
  report::Table t("Volumes in units of the matrix size (mn words):",
                  {"b", "k", "blocking H2D", "recursive H2D", "ratio",
                   "blocking D2H", "recursive D2H"});
  const double mn = static_cast<double>(n) * static_cast<double>(n);
  for (index_t b : {65536, 32768, 16384, 8192, 4096, 2048}) {
    const index_t k = ooc::panel_count(n, b);
    const double bh = ooc::blocking_h2d_words(n, n, b) / mn;
    const double rh = ooc::recursive_h2d_words(n, n, b) / mn;
    const double bd = ooc::blocking_d2h_words(n, n, b) / mn;
    const double rd = ooc::recursive_d2h_words(n, n, b) / mn;
    t.add_row({std::to_string(b), std::to_string(k), format_fixed(bh, 1),
               format_fixed(rh, 1), format_fixed(bh / rh, 2) + "x",
               format_fixed(bd, 1), format_fixed(rd, 1)});
  }
  std::cout << t.render();

  std::cout
      << "\nBlocking grows linearly with k ((k+2)mn + ...) while recursive\n"
         "grows with log2(k), so the gap widens as the blocksize shrinks —\n"
         "the paper's argument for why small-memory devices favour recursion.\n";

  bench::section("Internal consistency: closed forms vs per-iteration sums");
  report::Table t2("", {"quantity", "closed form", "per-iteration sum",
                        "relative gap"});
  const index_t b = 16384;
  const auto row = [&](const char* name, double cf, double sum) {
    t2.add_row({name, format_fixed(cf / mn, 3), format_fixed(sum / mn, 3),
                format_fixed(100.0 * (cf / sum - 1.0), 1) + "%"});
  };
  row("blocking H2D", ooc::blocking_h2d_words(n, n, b),
      ooc::blocking_h2d_words_sum(n, n, b));
  row("blocking D2H", ooc::blocking_d2h_words(n, n, b),
      ooc::blocking_d2h_words_sum(n, n, b));
  row("recursive H2D", ooc::recursive_h2d_words(n, n, b),
      ooc::recursive_h2d_words_sum(n, n, b));
  row("recursive D2H", ooc::recursive_d2h_words(n, n, b),
      ooc::recursive_d2h_words_sum(n, n, b));
  std::cout << t2.render();
  std::cout << "\nThe blocking closed forms match their sums exactly; the paper's\n"
               "printed recursive H2D closed form does not simplify from its own\n"
               "level sum (a typo-level inconsistency documented in DESIGN.md).\n";
  return 0;
}
