// §6 future work, realized: out-of-core LU and Cholesky, recursive vs
// blocking, at paper scale. The paper argues "the trailing matrix update in
// LU factorization is also of outer product form, and the recursive
// algorithm can definitely help this kind of GEMMs" — this bench measures
// that claim on the same calibrated V100 model as the QR experiments.
#include <iostream>

#include "bench/bench_util.hpp"
#include "lu/ooc_cholesky.hpp"
#include "lu/ooc_lu.hpp"
#include "report/table.hpp"

namespace {

using namespace rocqr;

lu::FactorStats run(bool recursive, bool cholesky, bytes_t capacity,
                    index_t n, index_t blocksize) {
  auto dev = bench::paper_device(capacity);
  auto a = sim::HostMutRef::phantom(n, n);
  lu::FactorOptions opts;
  opts.blocksize = blocksize;
  if (!recursive) opts.staging_buffer = false; // conventional baseline
  return cholesky ? (recursive ? lu::recursive_ooc_cholesky(dev, a, opts)
                               : lu::blocking_ooc_cholesky(dev, a, opts))
                  : (recursive ? lu::recursive_ooc_lu(dev, a, opts)
                               : lu::blocking_ooc_lu(dev, a, opts));
}

void compare(const char* title, bool cholesky) {
  bench::section(title);
  report::Table t("", {"configuration", "blocking", "recursive", "speedup"});
  struct Point {
    const char* label;
    bytes_t capacity;
    index_t n;
    index_t blocksize;
  };
  const Point points[] = {
      {"65536^2, 32 GB, b=16384", 32LL << 30, 65536, 16384},
      {"65536^2, 16 GB, b=8192", 16LL << 30, 65536, 8192},
      {"131072^2, 32 GB, b=16384", 32LL << 30, 131072, 16384},
      {"131072^2, 16 GB, b=8192", 16LL << 30, 131072, 8192},
  };
  for (const Point& p : points) {
    const double blk = run(false, cholesky, p.capacity, p.n, p.blocksize)
                           .total_seconds;
    const double rec = run(true, cholesky, p.capacity, p.n, p.blocksize)
                           .total_seconds;
    t.add_row({p.label, bench::secs(blk), bench::secs(rec),
               format_fixed(blk / rec, 2) + "x"});
  }
  std::cout << t.render();
}

} // namespace

int main() {
  compare("Future work — out-of-core LU (no pivoting), recursive vs blocking",
          false);
  std::cout << "\nThe LU trailing update A22 -= L21*U12 is the same outer-\n"
               "product form as QR's; recursion keeps it large and\n"
               "compute-bound while the blocking baseline is movement-bound.\n";
  compare("Future work — out-of-core Cholesky, recursive vs blocking", true);
  std::cout << "\nThe Cholesky update A22 -= R12'*R12 is the transposed outer\n"
               "product (streamed with outer_opa = Trans); the same recursion\n"
               "argument applies, with U12/R12 panels running through the\n"
               "out-of-core triangular solver.\n";
  return 0;
}
