// Blocksize sensitivity — the paper's conclusion in one sweep: "the GEMMs
// in conventional blocking QR ... cannot run at peak ... due to the fixed
// blocksize, while the GEMMs in recursive QR factorization [are]
// insensitive to the blocksize". Full 131072^2 QR across b, both devices.
#include <iostream>

#include "bench/bench_util.hpp"
#include "qr/factorize.hpp"
#include "report/table.hpp"

namespace {

using namespace rocqr;

double run(bool recursive, bytes_t capacity, index_t b) {
  auto dev = bench::paper_device(capacity);
  auto a = sim::HostMutRef::phantom(131072, 131072);
  auto r = sim::HostMutRef::phantom(131072, 131072);
  const qr::QrStats stats =
      recursive
          ? qr::factorize(qr::QrProblem{
              {&dev}, a, r, qr::Algorithm::Recursive,
              bench::recursive_options(b)})
          : qr::factorize(qr::QrProblem{
              {&dev}, a, r, qr::Algorithm::Blocking, bench::blocking_baseline(b)
              });
  return stats.total_seconds;
}

void sweep(const char* title, bytes_t capacity, std::vector<index_t> sizes) {
  bench::section(title);
  report::Table t("", {"blocksize", "blocking", "recursive", "speedup"});
  for (const index_t b : sizes) {
    try {
      const double blk = run(false, capacity, b);
      const double rec = run(true, capacity, b);
      t.add_row({std::to_string(b), bench::secs(blk), bench::secs(rec),
                 format_fixed(blk / rec, 2) + "x"});
    } catch (const DeviceOutOfMemory&) {
      t.add_row({std::to_string(b), "OOM", "OOM", "-"});
    }
  }
  std::cout << t.render();
}

} // namespace

int main() {
  sweep("Blocksize sweep — 131072^2 QR on 32 GB", 32LL << 30,
        {32768, 16384, 8192, 4096, 2048});
  sweep("Blocksize sweep — 131072^2 QR on 16 GB", 16LL << 30,
        {16384, 8192, 4096, 2048});
  std::cout
      << "\nBlocking QR degrades steadily as b shrinks (its GEMMs are pinned\n"
         "to the panel shape and become movement-bound); recursive QR's\n"
         "dominant GEMMs keep their level-determined sizes, so its total\n"
         "moves only with the panel count — the §6 conclusion.\n";
  return 0;
}
