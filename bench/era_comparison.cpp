// The §1 argument across computing eras: out-of-core viability is governed
// by the ratio of compute speed R2 to memory-hierarchy speed sqrt(M)·R1
// (Ballard et al.'s communication lower bound). This bench evaluates that
// ratio for historical and current configurations, plus the simulated
// end-to-end QR where the model applies.
#include <cmath>
#include <iostream>

#include "bench/bench_util.hpp"
#include "report/table.hpp"

int main() {
  using namespace rocqr;

  bench::section(
      "§1 — compute vs data-movement balance across out-of-core eras");

  struct Era {
    const char* label;
    double r2_flops;       // compute rate
    double r1_bytes_per_s; // link to the backing store
    double fast_mem_bytes; // capacity of the fast tier
  };
  // Representative configurations; the first two are the §2.1/§2.2
  // heritage, the rest are the paper's present and outlook.
  const Era eras[] = {
      {"1996 disk<->CPU (SOLAR)", 0.5e9, 10e6, 256e6},
      {"2008 CPU<->GPU (GPGPU, PCIe2)", 0.5e12, 6e9, 1e9},
      {"2016 CPU<->GPU (BLASX, PCIe3)", 5e12, 12e9, 12e9},
      {"2021 TensorCore V100 (this paper)", 112e12, 13e9, 32e9},
      {"2021+ TensorCore A100 (§6)", 312e12, 24e9, 40e9},
  };

  report::Table t("", {"era", "R2 (flop/s)", "R1 (B/s)",
                       "sqrt(M)*R1 (flop-equiv)", "R2 / (sqrt(M)*R1)"});
  for (const Era& e : eras) {
    const double words = e.fast_mem_bytes / 4.0;
    const double smr1 = std::sqrt(words) * (e.r1_bytes_per_s / 4.0);
    t.add_row({e.label, format_fixed(e.r2_flops / 1e12, 3) + " T",
               format_fixed(e.r1_bytes_per_s / 1e9, 1) + " G",
               format_fixed(smr1 / 1e12, 1) + " T",
               format_fixed(e.r2_flops / smr1, 2)});
  }
  std::cout << t.render();
  std::cout
      << "\nThe last column is the paper's §1 ratio: computation time over\n"
         "the communication-optimal data-movement time. Below ~1, blocking\n"
         "algorithms hide movement easily; near or above 1 (the TensorCore\n"
         "rows) even communication-OPTIMAL algorithms spend comparable time\n"
         "moving data — suboptimal ones (fixed-blocksize blocking) drown.\n"
         "That crossing is exactly why this paper exists.\n";
  return 0;
}
