// Reproduces Table 1: out-of-core inner product (C = AᵀB) behaviour,
// recursive tiling (65536 x 131072 x 65536, k-slab 16384) vs blocking
// tiling (16384 x 131072 x 114688, n-slab 16384), synchronous vs pipelined.
//
// --explain-plan appends the plan each engine built, including its lowered
// task-graph form (node counts per stage, edge and fence-edge counts);
// --explain-plan=dot appends the lowered graphs as Graphviz digraphs.
#include <iostream>
#include <string>

#include "bench/bench_util.hpp"
#include "ooc/gemm_engines.hpp"
#include "ooc/operand.hpp"
#include "report/paper.hpp"
#include "report/table.hpp"

int main(int argc, char** argv) {
  using namespace rocqr;
  using bench::paper_device;
  namespace paper = report::paper;
  bool explain = false;
  bool explain_dot = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg == "--explain-plan") explain = true;
    if (arg == "--explain-plan=dot") explain = explain_dot = true;
  }

  bench::section("Table 1 — inner product (R12 = Q1'A2) OOC GEMM behaviour");

  struct Run {
    ooc::OocGemmStats stats;
    ooc::PlanLog plan_log;
    double total_s = 0;
    double rate = 0;
  };

  const auto run_recursive = [&](bool synchronous) {
    auto dev = paper_device();
    ooc::OocGemmOptions opts;
    opts.blocksize = 16384;
    opts.synchronous = synchronous;
    Run r;
    opts.plan_log = &r.plan_log;
    r.stats = ooc::inner_product_recursive(
        dev, ooc::Operand::on_host(sim::HostConstRef::phantom(131072, 65536)),
        ooc::Operand::on_host(sim::HostConstRef::phantom(131072, 65536)),
        sim::HostMutRef::phantom(65536, 65536), opts);
    dev.synchronize();
    r.total_s = dev.makespan();
    r.rate = static_cast<double>(r.stats.summary.flops) / r.total_s;
    return r;
  };

  const auto run_blocking = [&](bool synchronous) {
    auto dev = paper_device();
    // The 131072 x 16384 panel Q is already resident (left there by the
    // panel factorization), as in the paper's blocking QR.
    auto q = dev.allocate(131072, 16384, sim::StoragePrecision::FP16);
    ooc::OocGemmOptions opts;
    opts.blocksize = 16384;
    opts.synchronous = synchronous;
    Run r;
    opts.plan_log = &r.plan_log;
    r.stats = ooc::inner_product_blocking(
        dev, ooc::Operand::on_device(q),
        ooc::Operand::on_host(sim::HostConstRef::phantom(131072, 114688)),
        sim::HostMutRef::phantom(16384, 114688), opts);
    dev.synchronize();
    r.total_s = dev.makespan();
    r.rate = static_cast<double>(r.stats.summary.flops) / r.total_s;
    dev.free(q);
    return r;
  };

  const Run rec_sync = run_recursive(true);
  const Run rec_async = run_recursive(false);
  const Run blk_sync = run_blocking(true);
  const Run blk_async = run_blocking(false);

  using P = paper::InnerProduct;
  report::Table t("Single-block and total costs, measured vs paper:",
                  {"quantity", "recursive", "blocking"});
  t.add_row({"host to device (per block)",
             bench::vs_paper_ms(rec_async.stats.slab_h2d_seconds, P::recursive_h2d_s),
             bench::vs_paper_ms(blk_async.stats.slab_h2d_seconds, P::blocking_h2d_s)});
  t.add_row({"GEMM (per block)",
             bench::vs_paper_ms(rec_async.stats.slab_gemm_seconds, P::recursive_gemm_s),
             bench::vs_paper_ms(blk_async.stats.slab_gemm_seconds, P::blocking_gemm_s)});
  t.add_row({"device to host",
             bench::vs_paper_ms(rec_async.stats.slab_d2h_seconds, P::recursive_d2h_s),
             bench::vs_paper_ms(blk_async.stats.slab_d2h_seconds, P::blocking_d2h_s)});
  t.add_row({"in-core rate",
             bench::vs_paper_tf(rec_async.stats.steady_gemm_rate, P::recursive_incore_flops),
             bench::vs_paper_tf(blk_async.stats.steady_gemm_rate, P::blocking_incore_flops)});
  t.add_rule();
  t.add_row({"synchronous total",
             bench::vs_paper_s(rec_sync.total_s, P::recursive_sync_s),
             bench::vs_paper_s(blk_sync.total_s, P::blocking_sync_s)});
  t.add_row({"synchronous rate",
             bench::vs_paper_tf(rec_sync.rate, P::recursive_sync_flops),
             bench::vs_paper_tf(blk_sync.rate, P::blocking_sync_flops)});
  t.add_row({"asynchronous total",
             bench::vs_paper_s(rec_async.total_s, P::recursive_async_s),
             bench::vs_paper_s(blk_async.total_s, P::blocking_async_s)});
  t.add_row({"asynchronous rate",
             bench::vs_paper_tf(rec_async.rate, P::recursive_async_flops),
             bench::vs_paper_tf(blk_async.rate, P::blocking_async_flops)});
  std::cout << t.render();

  std::cout << "\nKey observation (paper §5.1.1): the blocking in-core GEMM is the\n"
               "tall-skinny 16384x16384x131072 shape and runs far below peak\n"
               "(~52 TFLOP/s) while the recursive GEMM runs near peak (~100).\n";

  if (explain && explain_dot) {
    bench::section("Lowered task graphs (--explain-plan=dot)");
    std::cout << rec_sync.plan_log.dot << rec_async.plan_log.dot
              << blk_sync.plan_log.dot << blk_async.plan_log.dot;
  } else if (explain) {
    bench::section("Pipeline plans (--explain-plan)");
    std::cout << "recursive sync:  " << rec_sync.stats.plan
              << "recursive async: " << rec_async.stats.plan
              << "blocking sync:   " << blk_sync.stats.plan
              << "blocking async:  " << blk_async.stats.plan;
  }
  return 0;
}
