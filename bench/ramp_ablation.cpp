// §4.1.3 ablation: the blocksize ramp-up on the largest inner product
// (the paper measures 85 -> 87 TFLOP/s from this trick) and a sweep of the
// ramp's starting width.
#include <iostream>

#include "bench/bench_util.hpp"
#include "ooc/gemm_engines.hpp"
#include "ooc/operand.hpp"
#include "report/paper.hpp"
#include "report/table.hpp"

int main() {
  using namespace rocqr;
  namespace paper = report::paper;

  bench::section(
      "§4.1.3 — blocksize ramp-up on the largest inner product "
      "(65536 x 131072 x 65536, steady slab 16384)");

  const flops_t flops = 2LL * 65536 * 131072 * 65536;
  const auto run = [&](bool ramp, index_t ramp_start) {
    auto dev = bench::paper_device();
    ooc::OocGemmOptions opts;
    opts.blocksize = 16384;
    opts.ramp_up = ramp;
    opts.ramp_start = ramp_start;
    ooc::inner_product_recursive(
        dev, ooc::Operand::on_host(sim::HostConstRef::phantom(131072, 65536)),
        ooc::Operand::on_host(sim::HostConstRef::phantom(131072, 65536)),
        sim::HostMutRef::phantom(65536, 65536), opts);
    dev.synchronize();
    return dev.makespan();
  };

  const double base = run(false, 2048);
  report::Table t("", {"schedule", "total", "effective rate", "vs no ramp"});
  t.add_row({"no ramp (16384 from the start)", bench::secs(base),
             bench::tflops(static_cast<double>(flops) / base), "1.000x"});
  for (index_t start : {1024, 2048, 4096, 8192}) {
    const double s = run(true, start);
    t.add_row({"ramp from " + std::to_string(start), bench::secs(s),
               bench::tflops(static_cast<double>(flops) / s),
               format_fixed(base / s, 3) + "x"});
  }
  std::cout << t.render();

  std::cout << "\nPaper's measurement for this trick: "
            << bench::tflops(paper::Headline::ramp_before_flops) << " -> "
            << bench::tflops(paper::Headline::ramp_after_flops)
            << " (~2.4% on the largest inner product).\n"
            << "The gain comes from hiding part of the first move-in; too\n"
            << "small a start trades it back through less efficient early\n"
            << "GEMMs, so the curve has an interior optimum.\n";
  return 0;
}
