// Multi-job QR service throughput on a phantom 4-device fleet
// (docs/SERVING.md): scale the batch size and measure fleet makespan,
// throughput and speedup over running the same jobs serially on one
// device. The serial baseline is the sum of the admission predictions —
// exact in Phantom mode — so the speedup isolates what the scheduler's
// list dispatch buys, with no measurement noise.
//
// A second scenario measures DAG multi-tenancy: a batch of tall-skinny
// "tiled" jobs run once with exclusive device ownership
// (max_colocated_jobs = 1) and once colocated two-per-device as a single
// task graph (max_colocated_jobs = 2), where one job's transfers overlap
// another's computes on the shared three-stream schedule.
//
// Writes the sweep as JSON (committed as BENCH_qr_service.json) to the
// path given as argv[1], or ./BENCH_qr_service.json by default.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/telemetry.hpp"
#include "report/table.hpp"
#include "serve/scheduler.hpp"

namespace {

using namespace rocqr;

struct SweepPoint {
  int jobs = 0;
  double serial_seconds = 0; ///< sum of single-job predictions
  double makespan_seconds = 0;
  double jobs_per_hour = 0;
  double speedup = 0;
};

SweepPoint run_batch(int jobs, int devices) {
  // The registry is process-global: without a reset each sweep point would
  // inherit the previous points' counters and histogram samples, skewing
  // every cross-run metric (queue-wait quantiles most visibly).
  telemetry::MetricsRegistry::global().reset();
  serve::ServeConfig cfg;
  cfg.devices = devices;
  serve::Scheduler sched(cfg);

  const char* algos[] = {"recursive", "blocking", "left"};
  double serial = 0;
  for (int i = 0; i < jobs; ++i) {
    serve::JobSpec job;
    job.name = "job" + std::to_string(i);
    job.m = 32768;
    job.n = 32768;
    job.algorithm = algos[i % 3];
    job.blocksize = 4096;
    job.priority = i % 4;
    const serve::AdmissionDecision d = sched.submit(job);
    if (!d.admitted) {
      std::cerr << job.name << " rejected: " << d.reason << "\n";
      std::exit(1);
    }
    serial += d.predicted_seconds;
  }

  const serve::FleetReport rep = sched.run();
  SweepPoint p;
  p.jobs = jobs;
  p.serial_seconds = serial;
  p.makespan_seconds = rep.makespan_seconds;
  p.jobs_per_hour =
      rep.makespan_seconds > 0 ? 3600.0 * jobs / rep.makespan_seconds : 0;
  p.speedup =
      rep.makespan_seconds > 0 ? serial / rep.makespan_seconds : 0;
  return p;
}

struct ColocationPoint {
  int jobs = 0;
  double exclusive_makespan = 0;
  double colocated_makespan = 0;
  double speedup = 0;
};

double run_tiled_batch(int jobs, int devices, int max_colocated) {
  telemetry::MetricsRegistry::global().reset(); // one registry per point
  serve::ServeConfig cfg;
  cfg.devices = devices;
  cfg.max_colocated_jobs = max_colocated;
  serve::Scheduler sched(cfg);
  for (int i = 0; i < jobs; ++i) {
    serve::JobSpec job;
    job.name = "tiled" + std::to_string(i);
    job.m = 131072;
    job.n = 8192;
    job.algorithm = "tiled";
    job.blocksize = 4096;
    const serve::AdmissionDecision d = sched.submit(job);
    if (!d.admitted) {
      std::cerr << job.name << " rejected: " << d.reason << "\n";
      std::exit(1);
    }
  }
  return sched.run().makespan_seconds;
}

ColocationPoint run_colocation(int jobs, int devices) {
  ColocationPoint p;
  p.jobs = jobs;
  p.exclusive_makespan = run_tiled_batch(jobs, devices, 1);
  p.colocated_makespan = run_tiled_batch(jobs, devices, 2);
  p.speedup = p.colocated_makespan > 0
                  ? p.exclusive_makespan / p.colocated_makespan
                  : 0;
  return p;
}

} // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : std::string("BENCH_qr_service.json");
  const int devices = 4;

  bench::section(
      "QR service throughput — 32768^2 jobs, b=4096, 4 phantom V100s");
  report::Table t("", {"jobs", "serial (1 dev)", "fleet makespan",
                       "jobs/hour", "speedup"});
  std::vector<SweepPoint> sweep;
  for (const int jobs : {1, 2, 4, 8, 16}) {
    const SweepPoint p = run_batch(jobs, devices);
    sweep.push_back(p);
    t.add_row({std::to_string(p.jobs), bench::secs(p.serial_seconds),
               bench::secs(p.makespan_seconds),
               format_fixed(p.jobs_per_hour, 1),
               format_fixed(p.speedup, 2) + "x"});
  }
  std::cout << t.render();

  bench::section(
      "DAG multi-tenancy — 131072x8192 tiled jobs, b=4096, colocate 2/dev");
  report::Table tc("", {"jobs", "exclusive", "colocated", "speedup"});
  std::vector<ColocationPoint> coloc;
  for (const int jobs : {4, 8, 16}) {
    const ColocationPoint p = run_colocation(jobs, devices);
    coloc.push_back(p);
    tc.add_row({std::to_string(p.jobs), bench::secs(p.exclusive_makespan),
                bench::secs(p.colocated_makespan),
                format_fixed(p.speedup, 2) + "x"});
  }
  std::cout << tc.render();

  std::ofstream os(out_path);
  if (!os) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  os << "{\n  \"bench\": \"qr_service_throughput\",\n"
     << "  \"device\": \"V100-PCIe-32GB (phantom, paper calibration)\",\n"
     << "  \"devices\": " << devices << ",\n"
     << "  \"job\": {\"m\": 32768, \"n\": 32768, \"blocksize\": 4096},\n"
     << "  \"sweep\": [\n";
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    os << "    {\"jobs\": " << p.jobs << ", \"serial_seconds\": "
       << format_fixed(p.serial_seconds, 6) << ", \"makespan_seconds\": "
       << format_fixed(p.makespan_seconds, 6) << ", \"jobs_per_hour\": "
       << format_fixed(p.jobs_per_hour, 3) << ", \"speedup\": "
       << format_fixed(p.speedup, 4) << "}"
       << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
  os << "  ],\n"
     << "  \"tiled_colocation\": {\n"
     << "    \"job\": {\"m\": 131072, \"n\": 8192, \"blocksize\": 4096},\n"
     << "    \"max_colocated_jobs\": 2,\n    \"sweep\": [\n";
  for (size_t i = 0; i < coloc.size(); ++i) {
    const ColocationPoint& p = coloc[i];
    os << "      {\"jobs\": " << p.jobs << ", \"exclusive_makespan_seconds\": "
       << format_fixed(p.exclusive_makespan, 6)
       << ", \"colocated_makespan_seconds\": "
       << format_fixed(p.colocated_makespan, 6) << ", \"speedup\": "
       << format_fixed(p.speedup, 4) << "}"
       << (i + 1 < coloc.size() ? "," : "") << "\n";
  }
  os << "    ]\n  }\n}\n";
  std::cout << "\nwrote " << out_path << "\n";
  return 0;
}
