// Shared helpers for the paper-reproduction benchmark harness.
//
// Every bench binary regenerates one table or figure of the paper's §5 on
// the calibrated V100 simulator (Phantom mode — schedules at full paper
// scale) and prints the measured values next to the published ones.
#pragma once

#include <iostream>
#include <string>

#include "common/strings.hpp"
#include "qr/options.hpp"
#include "sim/device.hpp"

namespace rocqr::bench {

/// The paper's testbed, calibrated: V100-PCIe with the measured GEMM rates
/// of Tables 1/2 installed as exact-shape overrides.
inline sim::Device paper_device(bytes_t capacity_override = 0) {
  sim::DeviceSpec spec = sim::DeviceSpec::v100_32gb();
  if (capacity_override > 0) spec.memory_capacity = capacity_override;
  sim::Device dev(spec, sim::ExecutionMode::Phantom);
  dev.model().install_paper_calibration();
  return dev;
}

inline void section(const std::string& title) {
  std::cout << "\n================================================================\n"
            << title << "\n"
            << "================================================================\n";
}

inline std::string ms(double seconds) {
  return format_fixed(seconds * 1e3, 0) + " ms";
}

inline std::string secs(double seconds) {
  return format_fixed(seconds, 1) + " s";
}

inline std::string tflops(double flops_per_s) {
  return format_fixed(flops_per_s / 1e12, 1) + " TF";
}

/// "measured (paper X)" cell.
inline std::string vs_paper_ms(double measured_s, double paper_s) {
  return ms(measured_s) + "  (paper " + ms(paper_s) + ")";
}
inline std::string vs_paper_s(double measured_s, double paper_s) {
  return secs(measured_s) + "  (paper " + secs(paper_s) + ")";
}
inline std::string vs_paper_tf(double measured, double paper) {
  return tflops(measured) + "  (paper " + tflops(paper) + ")";
}

/// The conventional blocking baseline (see DESIGN.md): no §4.1.2 extra C
/// working space, no ramp — those are the paper's contributions.
inline qr::QrOptions blocking_baseline(index_t blocksize) {
  qr::QrOptions opts;
  opts.blocksize = blocksize;
  opts.staging_buffer = false;
  return opts;
}

/// The paper's recursive implementation as measured: its Table-3 movement
/// (37.9 s H2D) matches streaming every level, so the resident-subtree
/// refinement — which cuts another ~130 GiB — was evidently not in their
/// runs. The faithful benches disable it; bench/resident_subtree_ablation
/// measures it separately.
inline qr::QrOptions recursive_options(index_t blocksize) {
  qr::QrOptions opts;
  opts.blocksize = blocksize;
  opts.resident_subtrees = false;
  return opts;
}

} // namespace rocqr::bench
