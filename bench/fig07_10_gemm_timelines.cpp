// Reproduces Figs 7-10: per-engine timelines of the four largest OOC GEMMs
// in the 131072^2 factorization (inner/outer x blocking/recursive).
//
// --explain-plan additionally prints the plan each engine built (buffer
// pools, fences, ramp) and its lowered task-graph form (node counts per
// stage, edge and fence-edge counts) above its timeline; --explain-plan=dot
// dumps the lowered graphs as Graphviz digraphs instead.
#include <iostream>
#include <string>

#include "bench/bench_util.hpp"
#include "ooc/gemm_engines.hpp"
#include "ooc/operand.hpp"
#include "sim/device.hpp"

int main(int argc, char** argv) {
  using namespace rocqr;
  bool explain = false;
  bool explain_dot = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg == "--explain-plan") explain = true;
    if (arg == "--explain-plan=dot") explain = explain_dot = true;
  }
  ooc::PlanLog plan_log;
  const auto show_plan = [&](const ooc::OocGemmStats& stats) {
    if (!explain) return;
    if (explain_dot) {
      std::cout << plan_log.dot;
    } else {
      std::cout << stats.plan;
    }
    plan_log = ooc::PlanLog{};
  };

  bench::section(
      "Fig 7 — max inner product in BLOCKING QR (16384x131072x114688, "
      "slab 16384)");
  {
    auto dev = bench::paper_device();
    auto q = dev.allocate(131072, 16384, sim::StoragePrecision::FP16);
    ooc::OocGemmOptions opts;
    opts.blocksize = 16384;
    opts.plan_log = &plan_log;
    const auto stats = ooc::inner_product_blocking(
        dev, ooc::Operand::on_device(q),
        ooc::Operand::on_host(sim::HostConstRef::phantom(131072, 114688)),
        sim::HostMutRef::phantom(16384, 114688), opts);
    dev.synchronize();
    show_plan(stats);
    std::cout << dev.trace().render_gantt(110);
  }

  bench::section(
      "Fig 8 — max inner product in RECURSIVE QR (65536x131072x65536, "
      "k-slab 16384)");
  {
    auto dev = bench::paper_device();
    ooc::OocGemmOptions opts;
    opts.blocksize = 16384;
    opts.plan_log = &plan_log;
    const auto stats = ooc::inner_product_recursive(
        dev, ooc::Operand::on_host(sim::HostConstRef::phantom(131072, 65536)),
        ooc::Operand::on_host(sim::HostConstRef::phantom(131072, 65536)),
        sim::HostMutRef::phantom(65536, 65536), opts);
    dev.synchronize();
    show_plan(stats);
    std::cout << dev.trace().render_gantt(110);
  }

  bench::section(
      "Fig 9 — max outer product in BLOCKING QR (131072x16384x114688, "
      "16384^2 tiles)");
  {
    auto dev = bench::paper_device();
    auto a = dev.allocate(131072, 16384, sim::StoragePrecision::FP16);
    auto b = dev.allocate(16384, 114688, sim::StoragePrecision::FP16);
    ooc::OocGemmOptions opts;
    opts.blocksize = 16384;
    opts.tile_cols = 16384;
    opts.staging_buffer = false; // conventional baseline
    opts.plan_log = &plan_log;
    const auto stats = ooc::outer_product_blocking(
        dev, ooc::Operand::on_device(a), ooc::Operand::on_device(b),
        sim::HostConstRef::phantom(131072, 114688),
        sim::HostMutRef::phantom(131072, 114688), opts);
    dev.synchronize();
    show_plan(stats);
    std::cout << dev.trace().render_gantt(110);
  }

  bench::section(
      "Fig 10 — max outer product in RECURSIVE QR (131072x65536x65536, "
      "row slab 8192)");
  {
    auto dev = bench::paper_device();
    auto b = dev.allocate(65536, 65536, sim::StoragePrecision::FP16);
    ooc::OocGemmOptions opts;
    opts.blocksize = 8192;
    opts.plan_log = &plan_log;
    const auto stats = ooc::outer_product_recursive(
        dev, ooc::Operand::on_host(sim::HostConstRef::phantom(131072, 65536)),
        ooc::Operand::on_device(b),
        sim::HostConstRef::phantom(131072, 65536),
        sim::HostMutRef::phantom(131072, 65536), opts);
    dev.synchronize();
    show_plan(stats);
    std::cout << dev.trace().render_gantt(110);
  }

  std::cout << "\nReading the figures: in both recursive GEMMs (Figs 8/10) the\n"
               "compute lane is solid — movement is hidden. The blocking inner\n"
               "product (Fig 7) also overlaps, but its GEMM runs at half rate;\n"
               "the blocking outer product's exposed movement appears once the\n"
               "blocksize shrinks (see fig11_small_blocksize).\n";
  return 0;
}
