file(REMOVE_RECURSE
  "CMakeFiles/qr_left_looking_test.dir/qr_left_looking_test.cpp.o"
  "CMakeFiles/qr_left_looking_test.dir/qr_left_looking_test.cpp.o.d"
  "qr_left_looking_test"
  "qr_left_looking_test.pdb"
  "qr_left_looking_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qr_left_looking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
