# Empty compiler generated dependencies file for qr_left_looking_test.
# This may be replaced when dependencies are built.
