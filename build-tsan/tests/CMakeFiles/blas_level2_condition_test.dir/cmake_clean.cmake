file(REMOVE_RECURSE
  "CMakeFiles/blas_level2_condition_test.dir/blas_level2_condition_test.cpp.o"
  "CMakeFiles/blas_level2_condition_test.dir/blas_level2_condition_test.cpp.o.d"
  "blas_level2_condition_test"
  "blas_level2_condition_test.pdb"
  "blas_level2_condition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blas_level2_condition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
