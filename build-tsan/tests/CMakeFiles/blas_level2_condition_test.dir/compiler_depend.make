# Empty compiler generated dependencies file for blas_level2_condition_test.
# This may be replaced when dependencies are built.
