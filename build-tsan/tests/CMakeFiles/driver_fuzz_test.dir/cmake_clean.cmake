file(REMOVE_RECURSE
  "CMakeFiles/driver_fuzz_test.dir/driver_fuzz_test.cpp.o"
  "CMakeFiles/driver_fuzz_test.dir/driver_fuzz_test.cpp.o.d"
  "driver_fuzz_test"
  "driver_fuzz_test.pdb"
  "driver_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/driver_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
