# Empty compiler generated dependencies file for driver_fuzz_test.
# This may be replaced when dependencies are built.
