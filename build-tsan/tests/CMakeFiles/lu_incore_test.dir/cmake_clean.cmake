file(REMOVE_RECURSE
  "CMakeFiles/lu_incore_test.dir/lu_incore_test.cpp.o"
  "CMakeFiles/lu_incore_test.dir/lu_incore_test.cpp.o.d"
  "lu_incore_test"
  "lu_incore_test.pdb"
  "lu_incore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lu_incore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
