# Empty dependencies file for lu_incore_test.
# This may be replaced when dependencies are built.
