# Empty compiler generated dependencies file for lu_ooc_test.
# This may be replaced when dependencies are built.
