file(REMOVE_RECURSE
  "CMakeFiles/lu_ooc_test.dir/lu_ooc_test.cpp.o"
  "CMakeFiles/lu_ooc_test.dir/lu_ooc_test.cpp.o.d"
  "lu_ooc_test"
  "lu_ooc_test.pdb"
  "lu_ooc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lu_ooc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
