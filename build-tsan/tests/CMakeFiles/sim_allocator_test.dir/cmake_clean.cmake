file(REMOVE_RECURSE
  "CMakeFiles/sim_allocator_test.dir/sim_allocator_test.cpp.o"
  "CMakeFiles/sim_allocator_test.dir/sim_allocator_test.cpp.o.d"
  "sim_allocator_test"
  "sim_allocator_test.pdb"
  "sim_allocator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_allocator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
