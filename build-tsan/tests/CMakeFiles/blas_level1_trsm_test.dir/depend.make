# Empty dependencies file for blas_level1_trsm_test.
# This may be replaced when dependencies are built.
