file(REMOVE_RECURSE
  "CMakeFiles/blas_level1_trsm_test.dir/blas_level1_trsm_test.cpp.o"
  "CMakeFiles/blas_level1_trsm_test.dir/blas_level1_trsm_test.cpp.o.d"
  "blas_level1_trsm_test"
  "blas_level1_trsm_test.pdb"
  "blas_level1_trsm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blas_level1_trsm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
