# Empty dependencies file for ooc_slab_test.
# This may be replaced when dependencies are built.
