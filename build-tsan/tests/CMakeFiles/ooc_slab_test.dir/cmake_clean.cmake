file(REMOVE_RECURSE
  "CMakeFiles/ooc_slab_test.dir/ooc_slab_test.cpp.o"
  "CMakeFiles/ooc_slab_test.dir/ooc_slab_test.cpp.o.d"
  "ooc_slab_test"
  "ooc_slab_test.pdb"
  "ooc_slab_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ooc_slab_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
