# Empty dependencies file for qr_autotune_refine_test.
# This may be replaced when dependencies are built.
