file(REMOVE_RECURSE
  "CMakeFiles/qr_autotune_refine_test.dir/qr_autotune_refine_test.cpp.o"
  "CMakeFiles/qr_autotune_refine_test.dir/qr_autotune_refine_test.cpp.o.d"
  "qr_autotune_refine_test"
  "qr_autotune_refine_test.pdb"
  "qr_autotune_refine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qr_autotune_refine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
