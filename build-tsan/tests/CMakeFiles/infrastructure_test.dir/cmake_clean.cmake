file(REMOVE_RECURSE
  "CMakeFiles/infrastructure_test.dir/infrastructure_test.cpp.o"
  "CMakeFiles/infrastructure_test.dir/infrastructure_test.cpp.o.d"
  "infrastructure_test"
  "infrastructure_test.pdb"
  "infrastructure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infrastructure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
