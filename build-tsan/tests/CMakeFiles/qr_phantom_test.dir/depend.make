# Empty dependencies file for qr_phantom_test.
# This may be replaced when dependencies are built.
