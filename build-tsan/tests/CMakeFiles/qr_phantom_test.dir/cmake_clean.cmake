file(REMOVE_RECURSE
  "CMakeFiles/qr_phantom_test.dir/qr_phantom_test.cpp.o"
  "CMakeFiles/qr_phantom_test.dir/qr_phantom_test.cpp.o.d"
  "qr_phantom_test"
  "qr_phantom_test.pdb"
  "qr_phantom_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qr_phantom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
