file(REMOVE_RECURSE
  "CMakeFiles/qr_incore_test.dir/qr_incore_test.cpp.o"
  "CMakeFiles/qr_incore_test.dir/qr_incore_test.cpp.o.d"
  "qr_incore_test"
  "qr_incore_test.pdb"
  "qr_incore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qr_incore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
