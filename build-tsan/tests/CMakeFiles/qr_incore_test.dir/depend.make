# Empty dependencies file for qr_incore_test.
# This may be replaced when dependencies are built.
