# Empty dependencies file for ooc_gemm_general_test.
# This may be replaced when dependencies are built.
