file(REMOVE_RECURSE
  "CMakeFiles/ooc_gemm_general_test.dir/ooc_gemm_general_test.cpp.o"
  "CMakeFiles/ooc_gemm_general_test.dir/ooc_gemm_general_test.cpp.o.d"
  "ooc_gemm_general_test"
  "ooc_gemm_general_test.pdb"
  "ooc_gemm_general_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ooc_gemm_general_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
