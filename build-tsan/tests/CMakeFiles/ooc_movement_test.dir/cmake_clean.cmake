file(REMOVE_RECURSE
  "CMakeFiles/ooc_movement_test.dir/ooc_movement_test.cpp.o"
  "CMakeFiles/ooc_movement_test.dir/ooc_movement_test.cpp.o.d"
  "ooc_movement_test"
  "ooc_movement_test.pdb"
  "ooc_movement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ooc_movement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
