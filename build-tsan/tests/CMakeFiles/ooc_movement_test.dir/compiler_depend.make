# Empty compiler generated dependencies file for ooc_movement_test.
# This may be replaced when dependencies are built.
