file(REMOVE_RECURSE
  "CMakeFiles/blas_gemm_test.dir/blas_gemm_test.cpp.o"
  "CMakeFiles/blas_gemm_test.dir/blas_gemm_test.cpp.o.d"
  "blas_gemm_test"
  "blas_gemm_test.pdb"
  "blas_gemm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blas_gemm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
