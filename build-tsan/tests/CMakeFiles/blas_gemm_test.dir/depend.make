# Empty dependencies file for blas_gemm_test.
# This may be replaced when dependencies are built.
