file(REMOVE_RECURSE
  "CMakeFiles/sim_perf_model_test.dir/sim_perf_model_test.cpp.o"
  "CMakeFiles/sim_perf_model_test.dir/sim_perf_model_test.cpp.o.d"
  "sim_perf_model_test"
  "sim_perf_model_test.pdb"
  "sim_perf_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_perf_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
