file(REMOVE_RECURSE
  "CMakeFiles/svd_test.dir/svd_test.cpp.o"
  "CMakeFiles/svd_test.dir/svd_test.cpp.o.d"
  "svd_test"
  "svd_test.pdb"
  "svd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
