# Empty compiler generated dependencies file for phantom_real_equivalence_test.
# This may be replaced when dependencies are built.
