file(REMOVE_RECURSE
  "CMakeFiles/phantom_real_equivalence_test.dir/phantom_real_equivalence_test.cpp.o"
  "CMakeFiles/phantom_real_equivalence_test.dir/phantom_real_equivalence_test.cpp.o.d"
  "phantom_real_equivalence_test"
  "phantom_real_equivalence_test.pdb"
  "phantom_real_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phantom_real_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
