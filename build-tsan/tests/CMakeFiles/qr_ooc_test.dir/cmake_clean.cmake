file(REMOVE_RECURSE
  "CMakeFiles/qr_ooc_test.dir/qr_ooc_test.cpp.o"
  "CMakeFiles/qr_ooc_test.dir/qr_ooc_test.cpp.o.d"
  "qr_ooc_test"
  "qr_ooc_test.pdb"
  "qr_ooc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qr_ooc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
