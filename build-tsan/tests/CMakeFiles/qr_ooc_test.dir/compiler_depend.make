# Empty compiler generated dependencies file for qr_ooc_test.
# This may be replaced when dependencies are built.
