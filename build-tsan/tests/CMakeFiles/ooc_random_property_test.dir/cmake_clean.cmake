file(REMOVE_RECURSE
  "CMakeFiles/ooc_random_property_test.dir/ooc_random_property_test.cpp.o"
  "CMakeFiles/ooc_random_property_test.dir/ooc_random_property_test.cpp.o.d"
  "ooc_random_property_test"
  "ooc_random_property_test.pdb"
  "ooc_random_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ooc_random_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
