# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ooc_random_property_test.
