# Empty dependencies file for ooc_random_property_test.
# This may be replaced when dependencies are built.
