# Empty dependencies file for sim_device_test.
# This may be replaced when dependencies are built.
