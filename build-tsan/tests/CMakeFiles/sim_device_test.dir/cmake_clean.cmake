file(REMOVE_RECURSE
  "CMakeFiles/sim_device_test.dir/sim_device_test.cpp.o"
  "CMakeFiles/sim_device_test.dir/sim_device_test.cpp.o.d"
  "sim_device_test"
  "sim_device_test.pdb"
  "sim_device_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
