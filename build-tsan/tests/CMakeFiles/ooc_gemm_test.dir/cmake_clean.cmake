file(REMOVE_RECURSE
  "CMakeFiles/ooc_gemm_test.dir/ooc_gemm_test.cpp.o"
  "CMakeFiles/ooc_gemm_test.dir/ooc_gemm_test.cpp.o.d"
  "ooc_gemm_test"
  "ooc_gemm_test.pdb"
  "ooc_gemm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ooc_gemm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
