# Empty compiler generated dependencies file for ooc_gemm_test.
# This may be replaced when dependencies are built.
