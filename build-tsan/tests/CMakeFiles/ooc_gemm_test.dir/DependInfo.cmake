
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ooc_gemm_test.cpp" "tests/CMakeFiles/ooc_gemm_test.dir/ooc_gemm_test.cpp.o" "gcc" "tests/CMakeFiles/ooc_gemm_test.dir/ooc_gemm_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/svd/CMakeFiles/rocqr_svd.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/lu/CMakeFiles/rocqr_lu.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/qr/CMakeFiles/rocqr_qr.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ooc/CMakeFiles/rocqr_ooc.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/rocqr_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/la/CMakeFiles/rocqr_la.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/blas/CMakeFiles/rocqr_blas.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/rocqr_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/report/CMakeFiles/rocqr_report.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
