file(REMOVE_RECURSE
  "CMakeFiles/common_util_test.dir/common_util_test.cpp.o"
  "CMakeFiles/common_util_test.dir/common_util_test.cpp.o.d"
  "common_util_test"
  "common_util_test.pdb"
  "common_util_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
