# Empty compiler generated dependencies file for ooc_solve_scoped_test.
# This may be replaced when dependencies are built.
