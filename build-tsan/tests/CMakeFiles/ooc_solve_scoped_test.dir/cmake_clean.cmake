file(REMOVE_RECURSE
  "CMakeFiles/ooc_solve_scoped_test.dir/ooc_solve_scoped_test.cpp.o"
  "CMakeFiles/ooc_solve_scoped_test.dir/ooc_solve_scoped_test.cpp.o.d"
  "ooc_solve_scoped_test"
  "ooc_solve_scoped_test.pdb"
  "ooc_solve_scoped_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ooc_solve_scoped_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
