
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/la/cholesky.cpp" "src/la/CMakeFiles/rocqr_la.dir/cholesky.cpp.o" "gcc" "src/la/CMakeFiles/rocqr_la.dir/cholesky.cpp.o.d"
  "/root/repo/src/la/condition.cpp" "src/la/CMakeFiles/rocqr_la.dir/condition.cpp.o" "gcc" "src/la/CMakeFiles/rocqr_la.dir/condition.cpp.o.d"
  "/root/repo/src/la/generate.cpp" "src/la/CMakeFiles/rocqr_la.dir/generate.cpp.o" "gcc" "src/la/CMakeFiles/rocqr_la.dir/generate.cpp.o.d"
  "/root/repo/src/la/matrix.cpp" "src/la/CMakeFiles/rocqr_la.dir/matrix.cpp.o" "gcc" "src/la/CMakeFiles/rocqr_la.dir/matrix.cpp.o.d"
  "/root/repo/src/la/norms.cpp" "src/la/CMakeFiles/rocqr_la.dir/norms.cpp.o" "gcc" "src/la/CMakeFiles/rocqr_la.dir/norms.cpp.o.d"
  "/root/repo/src/la/svd_jacobi.cpp" "src/la/CMakeFiles/rocqr_la.dir/svd_jacobi.cpp.o" "gcc" "src/la/CMakeFiles/rocqr_la.dir/svd_jacobi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/rocqr_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/blas/CMakeFiles/rocqr_blas.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
