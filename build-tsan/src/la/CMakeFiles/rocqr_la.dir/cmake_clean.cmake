file(REMOVE_RECURSE
  "CMakeFiles/rocqr_la.dir/cholesky.cpp.o"
  "CMakeFiles/rocqr_la.dir/cholesky.cpp.o.d"
  "CMakeFiles/rocqr_la.dir/condition.cpp.o"
  "CMakeFiles/rocqr_la.dir/condition.cpp.o.d"
  "CMakeFiles/rocqr_la.dir/generate.cpp.o"
  "CMakeFiles/rocqr_la.dir/generate.cpp.o.d"
  "CMakeFiles/rocqr_la.dir/matrix.cpp.o"
  "CMakeFiles/rocqr_la.dir/matrix.cpp.o.d"
  "CMakeFiles/rocqr_la.dir/norms.cpp.o"
  "CMakeFiles/rocqr_la.dir/norms.cpp.o.d"
  "CMakeFiles/rocqr_la.dir/svd_jacobi.cpp.o"
  "CMakeFiles/rocqr_la.dir/svd_jacobi.cpp.o.d"
  "librocqr_la.a"
  "librocqr_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rocqr_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
