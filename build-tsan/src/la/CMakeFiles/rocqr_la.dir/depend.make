# Empty dependencies file for rocqr_la.
# This may be replaced when dependencies are built.
