file(REMOVE_RECURSE
  "librocqr_la.a"
)
