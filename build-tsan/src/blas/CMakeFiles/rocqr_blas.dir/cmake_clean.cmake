file(REMOVE_RECURSE
  "CMakeFiles/rocqr_blas.dir/gemm.cpp.o"
  "CMakeFiles/rocqr_blas.dir/gemm.cpp.o.d"
  "CMakeFiles/rocqr_blas.dir/level1.cpp.o"
  "CMakeFiles/rocqr_blas.dir/level1.cpp.o.d"
  "CMakeFiles/rocqr_blas.dir/level2.cpp.o"
  "CMakeFiles/rocqr_blas.dir/level2.cpp.o.d"
  "CMakeFiles/rocqr_blas.dir/transform.cpp.o"
  "CMakeFiles/rocqr_blas.dir/transform.cpp.o.d"
  "CMakeFiles/rocqr_blas.dir/trsm.cpp.o"
  "CMakeFiles/rocqr_blas.dir/trsm.cpp.o.d"
  "librocqr_blas.a"
  "librocqr_blas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rocqr_blas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
