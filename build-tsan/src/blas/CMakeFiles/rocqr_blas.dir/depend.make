# Empty dependencies file for rocqr_blas.
# This may be replaced when dependencies are built.
