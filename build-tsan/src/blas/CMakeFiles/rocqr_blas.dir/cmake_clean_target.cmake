file(REMOVE_RECURSE
  "librocqr_blas.a"
)
