# Empty dependencies file for rocqr_sim.
# This may be replaced when dependencies are built.
