
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/device.cpp" "src/sim/CMakeFiles/rocqr_sim.dir/device.cpp.o" "gcc" "src/sim/CMakeFiles/rocqr_sim.dir/device.cpp.o.d"
  "/root/repo/src/sim/memory.cpp" "src/sim/CMakeFiles/rocqr_sim.dir/memory.cpp.o" "gcc" "src/sim/CMakeFiles/rocqr_sim.dir/memory.cpp.o.d"
  "/root/repo/src/sim/perf_model.cpp" "src/sim/CMakeFiles/rocqr_sim.dir/perf_model.cpp.o" "gcc" "src/sim/CMakeFiles/rocqr_sim.dir/perf_model.cpp.o.d"
  "/root/repo/src/sim/spec.cpp" "src/sim/CMakeFiles/rocqr_sim.dir/spec.cpp.o" "gcc" "src/sim/CMakeFiles/rocqr_sim.dir/spec.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/rocqr_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/rocqr_sim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/rocqr_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/blas/CMakeFiles/rocqr_blas.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/la/CMakeFiles/rocqr_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
