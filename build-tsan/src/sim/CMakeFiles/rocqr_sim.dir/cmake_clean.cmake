file(REMOVE_RECURSE
  "CMakeFiles/rocqr_sim.dir/device.cpp.o"
  "CMakeFiles/rocqr_sim.dir/device.cpp.o.d"
  "CMakeFiles/rocqr_sim.dir/memory.cpp.o"
  "CMakeFiles/rocqr_sim.dir/memory.cpp.o.d"
  "CMakeFiles/rocqr_sim.dir/perf_model.cpp.o"
  "CMakeFiles/rocqr_sim.dir/perf_model.cpp.o.d"
  "CMakeFiles/rocqr_sim.dir/spec.cpp.o"
  "CMakeFiles/rocqr_sim.dir/spec.cpp.o.d"
  "CMakeFiles/rocqr_sim.dir/trace.cpp.o"
  "CMakeFiles/rocqr_sim.dir/trace.cpp.o.d"
  "librocqr_sim.a"
  "librocqr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rocqr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
