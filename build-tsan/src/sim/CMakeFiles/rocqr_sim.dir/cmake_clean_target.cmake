file(REMOVE_RECURSE
  "librocqr_sim.a"
)
