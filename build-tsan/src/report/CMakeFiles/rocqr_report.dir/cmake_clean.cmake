file(REMOVE_RECURSE
  "CMakeFiles/rocqr_report.dir/table.cpp.o"
  "CMakeFiles/rocqr_report.dir/table.cpp.o.d"
  "librocqr_report.a"
  "librocqr_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rocqr_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
