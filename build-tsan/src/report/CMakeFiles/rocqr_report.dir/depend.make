# Empty dependencies file for rocqr_report.
# This may be replaced when dependencies are built.
