file(REMOVE_RECURSE
  "librocqr_report.a"
)
