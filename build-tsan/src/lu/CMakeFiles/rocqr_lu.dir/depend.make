# Empty dependencies file for rocqr_lu.
# This may be replaced when dependencies are built.
