file(REMOVE_RECURSE
  "CMakeFiles/rocqr_lu.dir/incore.cpp.o"
  "CMakeFiles/rocqr_lu.dir/incore.cpp.o.d"
  "CMakeFiles/rocqr_lu.dir/ooc_cholesky.cpp.o"
  "CMakeFiles/rocqr_lu.dir/ooc_cholesky.cpp.o.d"
  "CMakeFiles/rocqr_lu.dir/ooc_lu.cpp.o"
  "CMakeFiles/rocqr_lu.dir/ooc_lu.cpp.o.d"
  "librocqr_lu.a"
  "librocqr_lu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rocqr_lu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
