file(REMOVE_RECURSE
  "librocqr_lu.a"
)
