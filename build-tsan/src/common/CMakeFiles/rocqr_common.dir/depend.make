# Empty dependencies file for rocqr_common.
# This may be replaced when dependencies are built.
