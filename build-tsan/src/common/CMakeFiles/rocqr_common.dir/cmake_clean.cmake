file(REMOVE_RECURSE
  "CMakeFiles/rocqr_common.dir/error.cpp.o"
  "CMakeFiles/rocqr_common.dir/error.cpp.o.d"
  "CMakeFiles/rocqr_common.dir/half.cpp.o"
  "CMakeFiles/rocqr_common.dir/half.cpp.o.d"
  "CMakeFiles/rocqr_common.dir/rng.cpp.o"
  "CMakeFiles/rocqr_common.dir/rng.cpp.o.d"
  "CMakeFiles/rocqr_common.dir/strings.cpp.o"
  "CMakeFiles/rocqr_common.dir/strings.cpp.o.d"
  "CMakeFiles/rocqr_common.dir/thread_pool.cpp.o"
  "CMakeFiles/rocqr_common.dir/thread_pool.cpp.o.d"
  "librocqr_common.a"
  "librocqr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rocqr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
