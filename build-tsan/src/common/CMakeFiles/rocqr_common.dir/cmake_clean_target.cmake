file(REMOVE_RECURSE
  "librocqr_common.a"
)
