file(REMOVE_RECURSE
  "CMakeFiles/rocqr_qr.dir/autotune.cpp.o"
  "CMakeFiles/rocqr_qr.dir/autotune.cpp.o.d"
  "CMakeFiles/rocqr_qr.dir/blocking_qr.cpp.o"
  "CMakeFiles/rocqr_qr.dir/blocking_qr.cpp.o.d"
  "CMakeFiles/rocqr_qr.dir/driver_util.cpp.o"
  "CMakeFiles/rocqr_qr.dir/driver_util.cpp.o.d"
  "CMakeFiles/rocqr_qr.dir/gemm_plan.cpp.o"
  "CMakeFiles/rocqr_qr.dir/gemm_plan.cpp.o.d"
  "CMakeFiles/rocqr_qr.dir/host_tracker.cpp.o"
  "CMakeFiles/rocqr_qr.dir/host_tracker.cpp.o.d"
  "CMakeFiles/rocqr_qr.dir/incore.cpp.o"
  "CMakeFiles/rocqr_qr.dir/incore.cpp.o.d"
  "CMakeFiles/rocqr_qr.dir/left_looking_qr.cpp.o"
  "CMakeFiles/rocqr_qr.dir/left_looking_qr.cpp.o.d"
  "CMakeFiles/rocqr_qr.dir/multi_gpu_qr.cpp.o"
  "CMakeFiles/rocqr_qr.dir/multi_gpu_qr.cpp.o.d"
  "CMakeFiles/rocqr_qr.dir/ooc_solve.cpp.o"
  "CMakeFiles/rocqr_qr.dir/ooc_solve.cpp.o.d"
  "CMakeFiles/rocqr_qr.dir/options.cpp.o"
  "CMakeFiles/rocqr_qr.dir/options.cpp.o.d"
  "CMakeFiles/rocqr_qr.dir/panel.cpp.o"
  "CMakeFiles/rocqr_qr.dir/panel.cpp.o.d"
  "CMakeFiles/rocqr_qr.dir/recursive_qr.cpp.o"
  "CMakeFiles/rocqr_qr.dir/recursive_qr.cpp.o.d"
  "CMakeFiles/rocqr_qr.dir/refine.cpp.o"
  "CMakeFiles/rocqr_qr.dir/refine.cpp.o.d"
  "librocqr_qr.a"
  "librocqr_qr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rocqr_qr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
