
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qr/autotune.cpp" "src/qr/CMakeFiles/rocqr_qr.dir/autotune.cpp.o" "gcc" "src/qr/CMakeFiles/rocqr_qr.dir/autotune.cpp.o.d"
  "/root/repo/src/qr/blocking_qr.cpp" "src/qr/CMakeFiles/rocqr_qr.dir/blocking_qr.cpp.o" "gcc" "src/qr/CMakeFiles/rocqr_qr.dir/blocking_qr.cpp.o.d"
  "/root/repo/src/qr/driver_util.cpp" "src/qr/CMakeFiles/rocqr_qr.dir/driver_util.cpp.o" "gcc" "src/qr/CMakeFiles/rocqr_qr.dir/driver_util.cpp.o.d"
  "/root/repo/src/qr/gemm_plan.cpp" "src/qr/CMakeFiles/rocqr_qr.dir/gemm_plan.cpp.o" "gcc" "src/qr/CMakeFiles/rocqr_qr.dir/gemm_plan.cpp.o.d"
  "/root/repo/src/qr/host_tracker.cpp" "src/qr/CMakeFiles/rocqr_qr.dir/host_tracker.cpp.o" "gcc" "src/qr/CMakeFiles/rocqr_qr.dir/host_tracker.cpp.o.d"
  "/root/repo/src/qr/incore.cpp" "src/qr/CMakeFiles/rocqr_qr.dir/incore.cpp.o" "gcc" "src/qr/CMakeFiles/rocqr_qr.dir/incore.cpp.o.d"
  "/root/repo/src/qr/left_looking_qr.cpp" "src/qr/CMakeFiles/rocqr_qr.dir/left_looking_qr.cpp.o" "gcc" "src/qr/CMakeFiles/rocqr_qr.dir/left_looking_qr.cpp.o.d"
  "/root/repo/src/qr/multi_gpu_qr.cpp" "src/qr/CMakeFiles/rocqr_qr.dir/multi_gpu_qr.cpp.o" "gcc" "src/qr/CMakeFiles/rocqr_qr.dir/multi_gpu_qr.cpp.o.d"
  "/root/repo/src/qr/ooc_solve.cpp" "src/qr/CMakeFiles/rocqr_qr.dir/ooc_solve.cpp.o" "gcc" "src/qr/CMakeFiles/rocqr_qr.dir/ooc_solve.cpp.o.d"
  "/root/repo/src/qr/options.cpp" "src/qr/CMakeFiles/rocqr_qr.dir/options.cpp.o" "gcc" "src/qr/CMakeFiles/rocqr_qr.dir/options.cpp.o.d"
  "/root/repo/src/qr/panel.cpp" "src/qr/CMakeFiles/rocqr_qr.dir/panel.cpp.o" "gcc" "src/qr/CMakeFiles/rocqr_qr.dir/panel.cpp.o.d"
  "/root/repo/src/qr/recursive_qr.cpp" "src/qr/CMakeFiles/rocqr_qr.dir/recursive_qr.cpp.o" "gcc" "src/qr/CMakeFiles/rocqr_qr.dir/recursive_qr.cpp.o.d"
  "/root/repo/src/qr/refine.cpp" "src/qr/CMakeFiles/rocqr_qr.dir/refine.cpp.o" "gcc" "src/qr/CMakeFiles/rocqr_qr.dir/refine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/rocqr_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/blas/CMakeFiles/rocqr_blas.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/la/CMakeFiles/rocqr_la.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/rocqr_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ooc/CMakeFiles/rocqr_ooc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
