# Empty dependencies file for rocqr_qr.
# This may be replaced when dependencies are built.
