file(REMOVE_RECURSE
  "librocqr_qr.a"
)
