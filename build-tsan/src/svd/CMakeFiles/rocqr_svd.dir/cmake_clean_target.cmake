file(REMOVE_RECURSE
  "librocqr_svd.a"
)
