# Empty dependencies file for rocqr_svd.
# This may be replaced when dependencies are built.
