file(REMOVE_RECURSE
  "CMakeFiles/rocqr_svd.dir/ooc_rsvd.cpp.o"
  "CMakeFiles/rocqr_svd.dir/ooc_rsvd.cpp.o.d"
  "librocqr_svd.a"
  "librocqr_svd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rocqr_svd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
