file(REMOVE_RECURSE
  "librocqr_ooc.a"
)
