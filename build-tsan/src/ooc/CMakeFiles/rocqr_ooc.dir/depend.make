# Empty dependencies file for rocqr_ooc.
# This may be replaced when dependencies are built.
