
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ooc/inner_product.cpp" "src/ooc/CMakeFiles/rocqr_ooc.dir/inner_product.cpp.o" "gcc" "src/ooc/CMakeFiles/rocqr_ooc.dir/inner_product.cpp.o.d"
  "/root/repo/src/ooc/movement_model.cpp" "src/ooc/CMakeFiles/rocqr_ooc.dir/movement_model.cpp.o" "gcc" "src/ooc/CMakeFiles/rocqr_ooc.dir/movement_model.cpp.o.d"
  "/root/repo/src/ooc/multi_gpu.cpp" "src/ooc/CMakeFiles/rocqr_ooc.dir/multi_gpu.cpp.o" "gcc" "src/ooc/CMakeFiles/rocqr_ooc.dir/multi_gpu.cpp.o.d"
  "/root/repo/src/ooc/ooc_gemm.cpp" "src/ooc/CMakeFiles/rocqr_ooc.dir/ooc_gemm.cpp.o" "gcc" "src/ooc/CMakeFiles/rocqr_ooc.dir/ooc_gemm.cpp.o.d"
  "/root/repo/src/ooc/outer_product.cpp" "src/ooc/CMakeFiles/rocqr_ooc.dir/outer_product.cpp.o" "gcc" "src/ooc/CMakeFiles/rocqr_ooc.dir/outer_product.cpp.o.d"
  "/root/repo/src/ooc/slab_schedule.cpp" "src/ooc/CMakeFiles/rocqr_ooc.dir/slab_schedule.cpp.o" "gcc" "src/ooc/CMakeFiles/rocqr_ooc.dir/slab_schedule.cpp.o.d"
  "/root/repo/src/ooc/trsm_engine.cpp" "src/ooc/CMakeFiles/rocqr_ooc.dir/trsm_engine.cpp.o" "gcc" "src/ooc/CMakeFiles/rocqr_ooc.dir/trsm_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/rocqr_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/blas/CMakeFiles/rocqr_blas.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/la/CMakeFiles/rocqr_la.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/rocqr_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
