file(REMOVE_RECURSE
  "CMakeFiles/rocqr_ooc.dir/inner_product.cpp.o"
  "CMakeFiles/rocqr_ooc.dir/inner_product.cpp.o.d"
  "CMakeFiles/rocqr_ooc.dir/movement_model.cpp.o"
  "CMakeFiles/rocqr_ooc.dir/movement_model.cpp.o.d"
  "CMakeFiles/rocqr_ooc.dir/multi_gpu.cpp.o"
  "CMakeFiles/rocqr_ooc.dir/multi_gpu.cpp.o.d"
  "CMakeFiles/rocqr_ooc.dir/ooc_gemm.cpp.o"
  "CMakeFiles/rocqr_ooc.dir/ooc_gemm.cpp.o.d"
  "CMakeFiles/rocqr_ooc.dir/outer_product.cpp.o"
  "CMakeFiles/rocqr_ooc.dir/outer_product.cpp.o.d"
  "CMakeFiles/rocqr_ooc.dir/slab_schedule.cpp.o"
  "CMakeFiles/rocqr_ooc.dir/slab_schedule.cpp.o.d"
  "CMakeFiles/rocqr_ooc.dir/trsm_engine.cpp.o"
  "CMakeFiles/rocqr_ooc.dir/trsm_engine.cpp.o.d"
  "librocqr_ooc.a"
  "librocqr_ooc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rocqr_ooc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
