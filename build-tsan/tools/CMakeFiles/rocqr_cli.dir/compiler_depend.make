# Empty compiler generated dependencies file for rocqr_cli.
# This may be replaced when dependencies are built.
