file(REMOVE_RECURSE
  "CMakeFiles/rocqr_cli.dir/rocqr_cli.cpp.o"
  "CMakeFiles/rocqr_cli.dir/rocqr_cli.cpp.o.d"
  "rocqr_cli"
  "rocqr_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rocqr_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
