# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build-tsan/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_specs "/root/repo/build-tsan/tools/rocqr_cli" "specs")
set_tests_properties(cli_specs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_qr "/root/repo/build-tsan/tools/rocqr_cli" "qr" "--n" "65536" "--blocksize" "8192")
set_tests_properties(cli_qr PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_qr_blocking "/root/repo/build-tsan/tools/rocqr_cli" "qr" "--algo" "blocking" "--n" "65536" "--blocksize" "8192" "--device" "v100-16" "--timeline")
set_tests_properties(cli_qr_blocking PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_lu "/root/repo/build-tsan/tools/rocqr_cli" "lu" "--n" "65536" "--blocksize" "8192")
set_tests_properties(cli_lu PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_chol "/root/repo/build-tsan/tools/rocqr_cli" "chol" "--n" "65536" "--blocksize" "8192" "--pageable")
set_tests_properties(cli_chol PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_tune "/root/repo/build-tsan/tools/rocqr_cli" "tune" "--n" "32768" "--device" "rtx3080")
set_tests_properties(cli_tune PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_trace_export "/root/repo/build-tsan/tools/rocqr_cli" "qr" "--n" "32768" "--blocksize" "4096" "--csv" "/root/repo/build-tsan/cli_trace.csv" "--chrome" "/root/repo/build-tsan/cli_trace.json")
set_tests_properties(cli_trace_export PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_help "/root/repo/build-tsan/tools/rocqr_cli" "help")
set_tests_properties(cli_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_device "/root/repo/build-tsan/tools/rocqr_cli" "qr" "--device" "nope")
set_tests_properties(cli_bad_device PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
