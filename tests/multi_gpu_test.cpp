// Multi-GPU OOC GEMM and the shared-PCIe-link model.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <utility>

#include "blas/gemm.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "ooc/multi_gpu.hpp"
#include "qr/factorize.hpp"
#include "qr/multi_gpu_qr.hpp"
#include "ooc/operand.hpp"
#include "sim/device.hpp"

namespace rocqr::ooc {
namespace {

using blas::GemmPrecision;
using blas::Op;
using sim::Device;
using sim::ExecutionMode;

sim::DeviceSpec test_spec() {
  sim::DeviceSpec s = sim::DeviceSpec::v100_32gb();
  s.memory_capacity = 256LL << 20;
  return s;
}

TEST(SharedHostLink, SerializesTransfersAcrossDevices) {
  auto link = std::make_shared<sim::SharedHostLink>();
  Device d0(test_spec(), ExecutionMode::Phantom, link);
  Device d1(test_spec(), ExecutionMode::Phantom, link);
  auto m0 = d0.allocate(2048, 2048);
  auto m1 = d1.allocate(2048, 2048);
  sim::Stream s0 = d0.create_stream();
  sim::Stream s1 = d1.create_stream();
  d0.copy_h2d(m0, sim::HostConstRef::phantom(2048, 2048), s0);
  d1.copy_h2d(m1, sim::HostConstRef::phantom(2048, 2048), s1);
  // The second device's upload queues behind the first on the shared link.
  const auto& e0 = d0.trace().events().front();
  const auto& e1 = d1.trace().events().front();
  EXPECT_GE(e1.start, e0.end);

  // Dedicated links: both start at time zero.
  Device i0(test_spec(), ExecutionMode::Phantom);
  Device i1(test_spec(), ExecutionMode::Phantom);
  auto n0 = i0.allocate(2048, 2048);
  auto n1 = i1.allocate(2048, 2048);
  sim::Stream t0 = i0.create_stream();
  sim::Stream t1 = i1.create_stream();
  i0.copy_h2d(n0, sim::HostConstRef::phantom(2048, 2048), t0);
  i1.copy_h2d(n1, sim::HostConstRef::phantom(2048, 2048), t1);
  EXPECT_DOUBLE_EQ(i0.trace().events().front().start, 0.0);
  EXPECT_DOUBLE_EQ(i1.trace().events().front().start, 0.0);
  // Compute engines are never shared.
  EXPECT_DOUBLE_EQ(e0.start, 0.0);
}

TEST(MultiGpu, TwoDevicesMatchHostGemm) {
  const index_t m = 160;
  const index_t k = 32;
  const index_t n = 48;
  la::Matrix a = la::random_uniform(m, k, 1);
  la::Matrix b = la::random_uniform(k, n, 2);
  la::Matrix c0 = la::random_uniform(m, n, 3);
  la::Matrix c = la::materialize(c0.view());

  Device d0(test_spec(), ExecutionMode::Real);
  Device d1(test_spec(), ExecutionMode::Real);
  OocGemmOptions opts;
  opts.blocksize = 16;
  opts.precision = GemmPrecision::FP32;
  const auto result = multi_gpu_outer_product(
      {&d0, &d1}, a.view(), b.view(), sim::as_const(c.view()), c.view(),
      opts);

  la::Matrix expected = la::materialize(c0.view());
  blas::gemm(Op::NoTrans, Op::NoTrans, m, n, k, -1.0f, a.data(), a.ld(),
             b.data(), b.ld(), 1.0f, expected.data(), expected.ld());
  EXPECT_LT(la::relative_difference(c.view(), expected.view()), 1e-4);
  EXPECT_EQ(result.per_device.size(), 2u);
  EXPECT_GT(result.makespan, 0.0);
  // Both devices did real work.
  EXPECT_GT(d0.trace().total_flops(), 0);
  EXPECT_GT(d1.trace().total_flops(), 0);
}

TEST(MultiGpu, SingleDeviceDegeneratesToPlainEngine) {
  const index_t m = 96;
  const index_t k = 16;
  const index_t n = 32;
  la::Matrix a = la::random_uniform(m, k, 4);
  la::Matrix b = la::random_uniform(k, n, 5);
  la::Matrix c0 = la::random_uniform(m, n, 6);

  la::Matrix c_multi = la::materialize(c0.view());
  Device d(test_spec(), ExecutionMode::Real);
  OocGemmOptions opts;
  opts.blocksize = 16;
  opts.precision = GemmPrecision::FP32;
  multi_gpu_outer_product({&d}, a.view(), b.view(),
                          sim::as_const(c_multi.view()), c_multi.view(), opts);

  la::Matrix c_single = la::materialize(c0.view());
  Device d2(test_spec(), ExecutionMode::Real);
  outer_product_recursive(d2, Operand::on_host(a.view()),
                          Operand::on_host(b.view()),
                          sim::as_const(c_single.view()), c_single.view(),
                          opts);
  d2.synchronize();
  EXPECT_EQ(la::relative_difference(c_multi.view(), c_single.view()), 0.0);
}

TEST(MultiGpu, DedicatedLinksScaleComputeBoundWork) {
  // Compute-bound shape: 2 GPUs with dedicated links ~ 2x; with one shared
  // link the movement serializes and scaling degrades.
  const auto run = [&](int gpus, bool shared) {
    auto link = shared ? std::make_shared<sim::SharedHostLink>() : nullptr;
    std::vector<std::unique_ptr<Device>> owned;
    std::vector<Device*> devs;
    for (int i = 0; i < gpus; ++i) {
      owned.push_back(std::make_unique<Device>(sim::DeviceSpec::v100_32gb(),
                                               ExecutionMode::Phantom, link));
      owned.back()->model().install_paper_calibration();
      devs.push_back(owned.back().get());
    }
    OocGemmOptions opts;
    opts.blocksize = 8192;
    const auto result = multi_gpu_outer_product(
        devs, sim::HostConstRef::phantom(131072, 65536),
        sim::HostConstRef::phantom(65536, 65536),
        sim::HostConstRef::phantom(131072, 65536),
        sim::HostMutRef::phantom(131072, 65536), opts);
    return result.makespan;
  };
  const double one = run(1, false);
  const double two_dedicated = run(2, false);
  const double two_shared = run(2, true);
  EXPECT_LT(two_dedicated, 0.62 * one); // near-linear scaling
  EXPECT_GT(two_shared, two_dedicated); // PCIe contention costs something
  // The honest multi-GPU OOC result: on ONE shared link, the serialized
  // transfers (A + C + a replicated B per device) exceed the halved compute,
  // so the second GPU buys almost nothing — the scheduling problem BLASX
  // (§2.2) exists to attack.
  EXPECT_GT(two_shared, 0.85 * one);
  EXPECT_LT(two_shared, 1.2 * one);
}

TEST(MultiGpu, SharedLinkRealModeStaysCorrect) {
  // PCIe contention changes the schedule, never the numerics.
  const index_t m = 128;
  const index_t k = 24;
  const index_t n = 40;
  la::Matrix a = la::random_uniform(m, k, 61);
  la::Matrix b = la::random_uniform(k, n, 62);
  la::Matrix c0 = la::random_uniform(m, n, 63);
  la::Matrix c = la::materialize(c0.view());

  auto link = std::make_shared<sim::SharedHostLink>();
  Device d0(test_spec(), ExecutionMode::Real, link);
  Device d1(test_spec(), ExecutionMode::Real, link);
  OocGemmOptions opts;
  opts.blocksize = 16;
  opts.precision = GemmPrecision::FP32;
  multi_gpu_outer_product({&d0, &d1}, a.view(), b.view(),
                          sim::as_const(c.view()), c.view(), opts);

  la::Matrix expected = la::materialize(c0.view());
  blas::gemm(Op::NoTrans, Op::NoTrans, m, n, k, -1.0f, a.data(), a.ld(),
             b.data(), b.ld(), 1.0f, expected.data(), expected.ld());
  EXPECT_LT(la::relative_difference(c.view(), expected.view()), 1e-4);
  // Contention is visible in the schedule: combined H2D busy equals the
  // serialized sum (the shared link never overlaps transfers).
  std::vector<std::pair<sim_time_t, sim_time_t>> intervals;
  for (const Device* dev : {&d0, &d1}) {
    for (const auto& e : dev->trace().events()) {
      if (e.resource == sim::Resource::H2D) {
        intervals.push_back({e.start, e.end});
      }
    }
  }
  std::sort(intervals.begin(), intervals.end());
  for (size_t i = 1; i < intervals.size(); ++i) {
    EXPECT_GE(intervals[i].first, intervals[i - 1].second - 1e-12)
        << "shared H2D link double-booked";
  }
}

TEST(MultiGpuQr, TwoDevicesMatchSingleDeviceFactorization) {
  const index_t m = 160;
  const index_t n = 96;
  la::Matrix a = la::random_normal(m, n, 71);

  qr::QrOptions opts;
  opts.blocksize = 32;
  opts.panel_base = 8;
  opts.precision = GemmPrecision::FP32;

  Device d0(test_spec(), ExecutionMode::Real);
  Device d1(test_spec(), ExecutionMode::Real);
  la::Matrix q2 = la::materialize(a.view());
  la::Matrix r2(n, n);
  const qr::QrStats stats =
      qr::factorize(qr::QrProblem{
          {&d0, &d1}, q2.view(), r2.view(), qr::Algorithm::MultiGpu, opts});

  Device single(test_spec(), ExecutionMode::Real);
  la::Matrix q1 = la::materialize(a.view());
  la::Matrix r1(n, n);
  qr::factorize(qr::QrProblem{
      {&single}, q1.view(), r1.view(), qr::Algorithm::MultiGpu, opts});

  // Same arithmetic, same results; both valid factorizations.
  EXPECT_LT(la::relative_difference(q2.view(), q1.view()), 1e-5);
  EXPECT_LT(la::relative_difference(r2.view(), r1.view()), 1e-5);
  EXPECT_LT(la::qr_residual(a.view(), q2.view(), r2.view()), 1e-4);
  EXPECT_TRUE(la::is_upper_triangular(r2.view()));
  EXPECT_GT(stats.panels, 0);
  EXPECT_EQ(d0.live_allocations(), 0);
  EXPECT_EQ(d1.live_allocations(), 0);
}

TEST(MultiGpuQr, DedicatedLinksSpeedUpTheTrailingUpdates) {
  const auto run = [&](int gpus) {
    std::vector<std::unique_ptr<Device>> owned;
    std::vector<Device*> devs;
    for (int i = 0; i < gpus; ++i) {
      owned.push_back(std::make_unique<Device>(sim::DeviceSpec::v100_32gb(),
                                               ExecutionMode::Phantom));
      owned.back()->model().install_paper_calibration();
      devs.push_back(owned.back().get());
    }
    qr::QrOptions opts;
    opts.blocksize = 16384;
    auto a = sim::HostMutRef::phantom(131072, 131072);
    auto r = sim::HostMutRef::phantom(131072, 131072);
    return qr::factorize(
        qr::QrProblem{devs, a, r, qr::Algorithm::MultiGpu, opts}).total_seconds;
  };
  const double one = run(1);
  const double two = run(2);
  // Panels stay serial on device 0 (Amdahl), updates halve: clearly faster
  // but below 2x.
  EXPECT_LT(two, 0.85 * one);
  EXPECT_GT(two, 0.5 * one);
}

TEST(MultiGpu, CombineDeviceStatsWindows) {
  auto window = [](double first, double last, int events) {
    qr::QrStats s;
    s.first_start = first;
    s.last_end = last;
    s.total_seconds = last - first;
    s.events = events;
    return s;
  };

  // Overlapping [1,5] + disjoint [7,9]: the fleet wall clock is the global
  // span 1..9, not the sum of per-device spans.
  qr::QrStats a = window(1.0, 5.0, 3);
  a.compute_seconds = 2.0;
  a.bytes_h2d = 100;
  a.flops = 10;
  a.panels = 2;
  a.peak_device_bytes = 500;
  qr::QrStats b = window(2.0, 4.0, 2);
  b.compute_seconds = 1.5;
  b.bytes_h2d = 50;
  b.flops = 4;
  b.panels = 1;
  b.peak_device_bytes = 900;
  qr::QrStats c = window(7.0, 9.0, 1);
  c.h2d_seconds = 0.5;
  c.bytes_d2h = 25;

  const qr::QrStats fleet = qr::combine_device_stats({a, b, c});
  EXPECT_DOUBLE_EQ(fleet.first_start, 1.0);
  EXPECT_DOUBLE_EQ(fleet.last_end, 9.0);
  EXPECT_DOUBLE_EQ(fleet.total_seconds, 8.0);
  EXPECT_DOUBLE_EQ(fleet.compute_seconds, 3.5);
  EXPECT_DOUBLE_EQ(fleet.h2d_seconds, 0.5);
  EXPECT_EQ(fleet.bytes_h2d, 150);
  EXPECT_EQ(fleet.bytes_d2h, 25);
  EXPECT_EQ(fleet.flops, 14);
  EXPECT_EQ(fleet.panels, 3);
  EXPECT_EQ(fleet.events, 6);
  EXPECT_EQ(fleet.peak_device_bytes, 900);
}

TEST(MultiGpu, CombineDeviceStatsIgnoresIdleWindowsForSpan) {
  // An idle device's zero-initialized window (events == 0) must not drag
  // first_start to 0; its sums and peak still count.
  qr::QrStats busy;
  busy.first_start = 3.0;
  busy.last_end = 5.0;
  busy.total_seconds = 2.0;
  busy.events = 4;
  busy.flops = 7;
  qr::QrStats idle; // all zero, events == 0
  idle.peak_device_bytes = 1234;
  idle.bytes_h2d = 11;

  const qr::QrStats fleet = qr::combine_device_stats({idle, busy});
  EXPECT_DOUBLE_EQ(fleet.first_start, 3.0);
  EXPECT_DOUBLE_EQ(fleet.last_end, 5.0);
  EXPECT_DOUBLE_EQ(fleet.total_seconds, 2.0);
  EXPECT_EQ(fleet.flops, 7);
  EXPECT_EQ(fleet.bytes_h2d, 11);
  EXPECT_EQ(fleet.peak_device_bytes, 1234);
}

TEST(MultiGpu, CombineDeviceStatsAllEmpty) {
  const qr::QrStats fleet =
      qr::combine_device_stats({qr::QrStats{}, qr::QrStats{}});
  EXPECT_DOUBLE_EQ(fleet.total_seconds, 0.0);
  EXPECT_DOUBLE_EQ(fleet.first_start, 0.0);
  EXPECT_DOUBLE_EQ(fleet.last_end, 0.0);
  EXPECT_EQ(fleet.events, 0);
}

TEST(MultiGpu, RejectsBadConfigurations) {
  Device d(test_spec(), ExecutionMode::Phantom);
  OocGemmOptions opts;
  EXPECT_THROW(multi_gpu_outer_product({}, sim::HostConstRef::phantom(8, 4),
                                       sim::HostConstRef::phantom(4, 8),
                                       sim::HostConstRef::phantom(8, 8),
                                       sim::HostMutRef::phantom(8, 8), opts),
               InvalidArgument);
  EXPECT_THROW(
      multi_gpu_outer_product({&d}, sim::HostConstRef::phantom(8, 4),
                              sim::HostConstRef::phantom(5, 8),
                              sim::HostConstRef::phantom(8, 8),
                              sim::HostMutRef::phantom(8, 8), opts),
      InvalidArgument);
}

} // namespace
} // namespace rocqr::ooc
