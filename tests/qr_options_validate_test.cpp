// QrOptions::validate(): every documented domain violation throws
// InvalidArgument, both directly and at the entry of each QR driver.
#include <gtest/gtest.h>

#include <functional>

#include "common/error.hpp"
#include "qr/factorize.hpp"
#include "qr/options.hpp"
#include "sim/device.hpp"

namespace rocqr::qr {
namespace {

QrOptions small_valid() {
  QrOptions opts;
  opts.blocksize = 256;
  opts.ramp_start = 64;
  return opts;
}

TEST(QrOptionsValidate, DefaultsAreValid) {
  EXPECT_NO_THROW(QrOptions{}.validate());
  EXPECT_NO_THROW(small_valid().validate());
}

TEST(QrOptionsValidate, RejectsNonPositiveBlocksize) {
  QrOptions opts = small_valid();
  opts.blocksize = 0;
  EXPECT_THROW(opts.validate(), InvalidArgument);
  opts.blocksize = -16;
  EXPECT_THROW(opts.validate(), InvalidArgument);
}

TEST(QrOptionsValidate, RampKnobsAreIgnoredWhileRampUpIsOff) {
  QrOptions opts = small_valid();
  opts.ramp_up = false;
  opts.ramp_start = opts.blocksize + 1; // the CLI default for small b
  EXPECT_NO_THROW(opts.validate());
}

TEST(QrOptionsValidate, RejectsRampStartOutOfRange) {
  QrOptions opts = small_valid();
  opts.ramp_up = true;
  opts.ramp_start = 0;
  EXPECT_THROW(opts.validate(), InvalidArgument);
  opts.ramp_start = opts.blocksize + 1;
  EXPECT_THROW(opts.validate(), InvalidArgument);
  opts.ramp_start = opts.blocksize; // boundary is allowed
  EXPECT_NO_THROW(opts.validate());
}

TEST(QrOptionsValidate, RejectsMemoryBudgetOutsideUnitInterval) {
  QrOptions opts = small_valid();
  opts.memory_budget_fraction = 0.0;
  EXPECT_THROW(opts.validate(), InvalidArgument);
  opts.memory_budget_fraction = -0.25;
  EXPECT_THROW(opts.validate(), InvalidArgument);
  opts.memory_budget_fraction = 1.5;
  EXPECT_THROW(opts.validate(), InvalidArgument);
  opts.memory_budget_fraction = 1.0; // boundary is allowed
  EXPECT_NO_THROW(opts.validate());
}

TEST(QrOptionsValidate, RejectsBadPipelineAndPanelKnobs) {
  QrOptions opts = small_valid();
  opts.pipeline_depth = 0;
  EXPECT_THROW(opts.validate(), InvalidArgument);

  opts = small_valid();
  opts.panel_base = 0;
  EXPECT_THROW(opts.validate(), InvalidArgument);

  opts = small_valid();
  opts.outer_tile_rows = -1;
  EXPECT_THROW(opts.validate(), InvalidArgument);

  opts = small_valid();
  opts.outer_tile_cols = -1;
  EXPECT_THROW(opts.validate(), InvalidArgument);

  opts = small_valid();
  opts.inner_c_panel = -1;
  EXPECT_THROW(opts.validate(), InvalidArgument);
}

// Every driver must reject a bad configuration at its API boundary, before
// any scheduling work happens.
class QrDriverValidation
    : public ::testing::TestWithParam<
          std::function<QrStats(sim::Device&, sim::HostMutRef,
                                sim::HostMutRef, const QrOptions&)>> {};

TEST_P(QrDriverValidation, RejectsInvalidOptionsOnEntry) {
  sim::Device dev(sim::DeviceSpec::v100_32gb(), sim::ExecutionMode::Phantom);
  const index_t n = 2048;
  const auto& driver = GetParam();

  QrOptions opts = small_valid();
  opts.blocksize = 0;
  EXPECT_THROW(driver(dev, sim::HostMutRef::phantom(n, n),
                      sim::HostMutRef::phantom(n, n), opts),
               InvalidArgument);

  opts = small_valid();
  opts.ramp_up = true;
  opts.ramp_start = opts.blocksize + 1;
  EXPECT_THROW(driver(dev, sim::HostMutRef::phantom(n, n),
                      sim::HostMutRef::phantom(n, n), opts),
               InvalidArgument);

  opts = small_valid();
  opts.memory_budget_fraction = 2.0;
  EXPECT_THROW(driver(dev, sim::HostMutRef::phantom(n, n),
                      sim::HostMutRef::phantom(n, n), opts),
               InvalidArgument);

  // Sanity: the same driver accepts the valid baseline.
  opts = small_valid();
  EXPECT_NO_THROW(driver(dev, sim::HostMutRef::phantom(n, n),
                         sim::HostMutRef::phantom(n, n), opts));
}

INSTANTIATE_TEST_SUITE_P(
    AllDrivers, QrDriverValidation,
    ::testing::Values(
        [](sim::Device& dev, sim::HostMutRef a, sim::HostMutRef r,
           const QrOptions& opts) { return factorize(
               QrProblem{{&dev}, a, r, Algorithm::Blocking, opts}); },
        [](sim::Device& dev, sim::HostMutRef a, sim::HostMutRef r,
           const QrOptions& opts) { return factorize(
               QrProblem{{&dev}, a, r, Algorithm::Recursive, opts}); },
        [](sim::Device& dev, sim::HostMutRef a, sim::HostMutRef r,
           const QrOptions& opts) {
          return factorize(
              QrProblem{{&dev}, a, r, Algorithm::LeftLooking, opts});
        }),
    [](const auto& param_info) {
      return param_info.index == 0   ? "blocking"
             : param_info.index == 1 ? "recursive"
                                     : "left_looking";
    });

} // namespace
} // namespace rocqr::qr
