// Level-1 ops, triangular solves, syrk, and layout transforms.
#include <gtest/gtest.h>

#include <cmath>

#include "blas/gemm.hpp"
#include "blas/level1.hpp"
#include "blas/transform.hpp"
#include "blas/trsm.hpp"
#include "common/error.hpp"
#include "common/half.hpp"
#include "la/generate.hpp"
#include "la/matrix.hpp"
#include "la/norms.hpp"

namespace rocqr {
namespace {

TEST(Level1, AxpyContiguousAndStrided) {
  float x[6] = {1, 2, 3, 4, 5, 6};
  float y[6] = {0, 0, 0, 0, 0, 0};
  blas::axpy(6, 2.0f, x, 1, y, 1);
  for (int i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(y[i], 2.0f * x[i]);
  float y2[6] = {0, 0, 0, 0, 0, 0};
  blas::axpy(3, 1.0f, x, 2, y2, 2); // x[0], x[2], x[4] into y2[0], y2[2], y2[4]
  EXPECT_FLOAT_EQ(y2[0], 1.0f);
  EXPECT_FLOAT_EQ(y2[2], 3.0f);
  EXPECT_FLOAT_EQ(y2[4], 5.0f);
  EXPECT_FLOAT_EQ(y2[1], 0.0f);
}

TEST(Level1, AxpyAlphaZeroIsNoop) {
  float x[2] = {1, 2};
  float y[2] = {7, 8};
  blas::axpy(2, 0.0f, x, 1, y, 1);
  EXPECT_FLOAT_EQ(y[0], 7.0f);
  EXPECT_FLOAT_EQ(y[1], 8.0f);
}

TEST(Level1, Scal) {
  float x[4] = {1, -2, 3, -4};
  blas::scal(4, -0.5f, x, 1);
  EXPECT_FLOAT_EQ(x[0], -0.5f);
  EXPECT_FLOAT_EQ(x[3], 2.0f);
}

TEST(Level1, DotMatchesManualSum) {
  float x[3] = {1, 2, 3};
  float y[3] = {4, 5, 6};
  EXPECT_DOUBLE_EQ(blas::dot(3, x, 1, y, 1), 32.0);
  EXPECT_DOUBLE_EQ(blas::dot(0, x, 1, y, 1), 0.0);
}

TEST(Level1, Nrm2BasicAndScaled) {
  float x[4] = {3, 4, 0, 0};
  EXPECT_NEAR(blas::nrm2(4, x, 1), 5.0, 1e-12);
  // Values that would overflow a naive sum of squares in fp32/fp64.
  float big[2] = {3e18f, 4e18f};
  EXPECT_NEAR(blas::nrm2(2, big, 1), 5e18, 5e18 * 1e-6);
  float tiny[2] = {3e-30f, 4e-30f};
  EXPECT_NEAR(blas::nrm2(2, tiny, 1) / 5e-30, 1.0, 1e-5);
  EXPECT_DOUBLE_EQ(blas::nrm2(0, x, 1), 0.0);
}

TEST(Trsm, RightUpperSolvesXRequalsB) {
  const index_t m = 7;
  const index_t n = 5;
  la::Matrix r = la::random_uniform(n, n, 1);
  for (index_t j = 0; j < n; ++j) {
    r(j, j) = 2.0f + std::fabs(r(j, j)); // well away from zero
    for (index_t i = j + 1; i < n; ++i) r(i, j) = 0.0f;
  }
  la::Matrix x_true = la::random_uniform(m, n, 2);
  la::Matrix b(m, n);
  blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, m, n, n, 1.0f,
             x_true.data(), x_true.ld(), r.data(), r.ld(), 0.0f, b.data(),
             b.ld());
  blas::trsm_right_upper(m, n, r.data(), r.ld(), b.data(), b.ld());
  EXPECT_LT(la::relative_difference(b.view(), x_true.view()), 1e-5);
}

TEST(Trsm, LeftUpperSolvesRXequalsB) {
  const index_t m = 6;
  const index_t n = 4;
  la::Matrix r = la::random_uniform(m, m, 3);
  for (index_t j = 0; j < m; ++j) {
    r(j, j) = 2.0f + std::fabs(r(j, j));
    for (index_t i = j + 1; i < m; ++i) r(i, j) = 0.0f;
  }
  la::Matrix x_true = la::random_uniform(m, n, 4);
  la::Matrix b(m, n);
  blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, m, n, m, 1.0f, r.data(),
             r.ld(), x_true.data(), x_true.ld(), 0.0f, b.data(), b.ld());
  blas::trsm_left_upper(m, n, r.data(), r.ld(), b.data(), b.ld());
  EXPECT_LT(la::relative_difference(b.view(), x_true.view()), 1e-5);
}

TEST(Trsm, RightUpperBlockedPathMatchesTruth) {
  // n > 64 crosses into the blocked path (gemm trailing updates between
  // diagonal-block solves); the solve must still recover X to fp32 accuracy.
  const index_t m = 40;
  const index_t n = 150;
  la::Matrix r = la::random_uniform(n, n, 11);
  for (index_t j = 0; j < n; ++j) {
    r(j, j) = 2.0f + std::fabs(r(j, j));
    for (index_t i = j + 1; i < n; ++i) r(i, j) = 0.0f;
    // Keep off-diagonal mass small so the triangle stays well conditioned.
    for (index_t i = 0; i < j; ++i) r(i, j) *= 0.1f;
  }
  la::Matrix x_true = la::random_uniform(m, n, 12);
  la::Matrix b(m, n);
  blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, m, n, n, 1.0f,
             x_true.data(), x_true.ld(), r.data(), r.ld(), 0.0f, b.data(),
             b.ld());
  blas::trsm_right_upper(m, n, r.data(), r.ld(), b.data(), b.ld());
  EXPECT_LT(la::relative_difference(b.view(), x_true.view()), 1e-4);
}

TEST(Trsm, LeftSolvesMatchAcrossRhsCounts) {
  // The left solves parallelize over right-hand sides; each column's math is
  // untouched, so solving many rhs at once must equal solving one at a time.
  const index_t m = 48;
  const index_t n = 96; // big enough to cross the pool threshold with m*m*n
  la::Matrix r = la::random_uniform(m, m, 13);
  for (index_t j = 0; j < m; ++j) {
    r(j, j) = 2.0f + std::fabs(r(j, j));
    for (index_t i = j + 1; i < m; ++i) r(i, j) = 0.0f;
  }
  la::Matrix b0 = la::random_uniform(m, n, 14);
  la::Matrix batch = la::materialize(b0.view());
  blas::trsm_left_upper(m, n, r.data(), r.ld(), batch.data(), batch.ld());
  for (index_t j = 0; j < n; ++j) {
    la::Matrix single(m, 1);
    for (index_t i = 0; i < m; ++i) single(i, 0) = b0(i, j);
    blas::trsm_left_upper(m, 1, r.data(), r.ld(), single.data(), single.ld());
    for (index_t i = 0; i < m; ++i) {
      ASSERT_EQ(batch(i, j), single(i, 0)) << "i=" << i << " j=" << j;
    }
  }
}

TEST(Trsm, ThrowsOnSingularDiagonal) {
  la::Matrix r(2, 2);
  r(0, 0) = 1.0f;
  r(1, 1) = 0.0f;
  la::Matrix b = la::random_uniform(3, 2, 5);
  EXPECT_THROW(blas::trsm_right_upper(3, 2, r.data(), r.ld(), b.data(),
                                      b.ld()),
               InvalidArgument);
  la::Matrix b2 = la::random_uniform(2, 3, 6);
  EXPECT_THROW(blas::trsm_left_upper(2, 3, r.data(), r.ld(), b2.data(),
                                     b2.ld()),
               InvalidArgument);
}

TEST(Syrk, UpperTriangleMatchesGemm) {
  const index_t n = 6;
  const index_t k = 9;
  la::Matrix a = la::random_uniform(k, n, 7);
  la::Matrix c_syrk(n, n);
  blas::syrk_upper_t(n, k, 1.0f, a.data(), a.ld(), 0.0f, c_syrk.data(),
                     c_syrk.ld());
  la::Matrix c_gemm(n, n);
  blas::gemm(blas::Op::Trans, blas::Op::NoTrans, n, n, k, 1.0f, a.data(),
             a.ld(), a.data(), a.ld(), 0.0f, c_gemm.data(), c_gemm.ld());
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i <= j; ++i) {
      EXPECT_NEAR(c_syrk(i, j), c_gemm(i, j), 1e-5) << i << "," << j;
    }
  }
}

TEST(Transform, CopyMatrixRespectsLeadingDims) {
  la::Matrix src = la::random_uniform(5, 4, 8);
  la::Matrix dst(8, 6);
  blas::copy_matrix(3, 2, &src(1, 1), src.ld(), &dst(2, 3), dst.ld());
  for (index_t j = 0; j < 2; ++j) {
    for (index_t i = 0; i < 3; ++i) {
      EXPECT_FLOAT_EQ(dst(2 + i, 3 + j), src(1 + i, 1 + j));
    }
  }
  EXPECT_FLOAT_EQ(dst(0, 0), 0.0f); // untouched
}

TEST(Transform, TransposeOutOfPlace) {
  la::Matrix a = la::random_uniform(4, 7, 9);
  la::Matrix t(7, 4);
  blas::transpose(4, 7, a.data(), a.ld(), t.data(), t.ld());
  for (index_t j = 0; j < 7; ++j) {
    for (index_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(t(j, i), a(i, j));
  }
}

TEST(Transform, RoundToHalfIsIdempotent) {
  la::Matrix a = la::random_uniform(6, 6, 10);
  la::Matrix once = la::materialize(a.view());
  blas::round_to_half(6, 6, once.data(), once.ld());
  la::Matrix twice = la::materialize(once.view());
  blas::round_to_half(6, 6, twice.data(), twice.ld());
  for (index_t j = 0; j < 6; ++j) {
    for (index_t i = 0; i < 6; ++i) {
      EXPECT_EQ(once(i, j), twice(i, j));
      EXPECT_EQ(once(i, j), float(half(a(i, j))));
    }
  }
}

TEST(Transform, FillAndZeroLowerTriangle) {
  la::Matrix a(4, 3);
  blas::fill(4, 3, 7.0f, a.data(), a.ld());
  EXPECT_FLOAT_EQ(a(3, 2), 7.0f);
  blas::zero_lower_triangle(4, 3, a.data(), a.ld());
  EXPECT_FLOAT_EQ(a(0, 0), 7.0f);
  EXPECT_FLOAT_EQ(a(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(a(1, 1), 7.0f);
  EXPECT_FLOAT_EQ(a(3, 2), 0.0f);
  EXPECT_FLOAT_EQ(a(2, 2), 7.0f);
}

} // namespace
} // namespace rocqr
