// Trace container: counters, summaries, overlap ratio, rendering, CSV.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "sim/trace.hpp"

namespace rocqr::sim {
namespace {

TraceEvent make_event(std::int64_t id, OpKind kind, Resource res,
                      sim_time_t start, sim_time_t end, bytes_t bytes = 0,
                      flops_t flops = 0) {
  TraceEvent e;
  e.id = id;
  e.name = "op" + std::to_string(id);
  e.kind = kind;
  e.resource = res;
  e.stream = 0;
  e.start = start;
  e.end = end;
  e.bytes = bytes;
  e.flops = flops;
  return e;
}

TEST(Trace, CountersAccumulatePerDirection) {
  Trace t;
  t.add(make_event(0, OpKind::CopyH2D, Resource::H2D, 0, 1, 100));
  t.add(make_event(1, OpKind::CopyD2H, Resource::D2H, 0, 1, 40));
  t.add(make_event(2, OpKind::CopyD2D, Resource::Compute, 1, 1.1, 7));
  t.add(make_event(3, OpKind::Gemm, Resource::Compute, 1.1, 2, 0, 1000));
  EXPECT_EQ(t.bytes_h2d(), 100);
  EXPECT_EQ(t.bytes_d2h(), 40);
  EXPECT_EQ(t.bytes_d2d(), 7);
  EXPECT_EQ(t.total_flops(), 1000);
  EXPECT_EQ(t.size(), 4u);
  t.clear();
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.bytes_h2d(), 0);
}

TEST(Trace, MakespanAndBusy) {
  Trace t;
  EXPECT_DOUBLE_EQ(t.makespan(), 0.0);
  t.add(make_event(0, OpKind::CopyH2D, Resource::H2D, 0, 2));
  t.add(make_event(1, OpKind::Gemm, Resource::Compute, 1, 5));
  t.add(make_event(2, OpKind::CopyH2D, Resource::H2D, 2, 3));
  EXPECT_DOUBLE_EQ(t.makespan(), 5.0);
  EXPECT_DOUBLE_EQ(t.busy_seconds(Resource::H2D), 3.0);
  EXPECT_DOUBLE_EQ(t.busy_seconds(Resource::Compute), 4.0);
  EXPECT_DOUBLE_EQ(t.busy_seconds(Resource::D2H), 0.0);
}

TEST(Trace, OverlapRatioBounds) {
  Trace t;
  // Fully overlapped: copies hidden under one long gemm.
  t.add(make_event(0, OpKind::Gemm, Resource::Compute, 0, 10));
  t.add(make_event(1, OpKind::CopyH2D, Resource::H2D, 0, 4));
  t.add(make_event(2, OpKind::CopyD2H, Resource::D2H, 5, 8));
  EXPECT_DOUBLE_EQ(t.overlap_ratio(), 1.0);

  Trace s;
  // Fully serialized: copy then gemm, nothing hidden.
  s.add(make_event(0, OpKind::CopyH2D, Resource::H2D, 0, 4));
  s.add(make_event(1, OpKind::Gemm, Resource::Compute, 4, 10));
  EXPECT_DOUBLE_EQ(s.overlap_ratio(), 0.0);

  Trace empty;
  EXPECT_DOUBLE_EQ(empty.overlap_ratio(), 1.0);
}

TEST(Trace, RejectsNegativeDuration) {
  Trace t;
  EXPECT_THROW(t.add(make_event(0, OpKind::Gemm, Resource::Compute, 2, 1)),
               InvalidArgument);
}

TEST(Trace, SummarizeWindow) {
  Trace t;
  t.add(make_event(0, OpKind::CopyH2D, Resource::H2D, 0, 1, 10));
  t.add(make_event(1, OpKind::Gemm, Resource::Compute, 1, 3, 0, 500));
  t.add(make_event(2, OpKind::CopyD2H, Resource::D2H, 3, 4, 20));
  t.add(make_event(3, OpKind::Gemm, Resource::Compute, 4, 9, 0, 700));

  const TraceSummary all = summarize(t);
  EXPECT_EQ(all.events, 4);
  EXPECT_DOUBLE_EQ(all.span(), 9.0);
  EXPECT_EQ(all.bytes_h2d, 10);
  EXPECT_EQ(all.bytes_d2h, 20);
  EXPECT_EQ(all.flops, 1200);
  EXPECT_DOUBLE_EQ(all.compute_seconds, 7.0);

  const TraceSummary tail = summarize(t, 2);
  EXPECT_EQ(tail.events, 2);
  EXPECT_DOUBLE_EQ(tail.first_start, 3.0);
  EXPECT_DOUBLE_EQ(tail.last_end, 9.0);
  EXPECT_EQ(tail.bytes_h2d, 0);
  EXPECT_EQ(tail.flops, 700);

  const TraceSummary window = summarize(t, 1, 3);
  EXPECT_EQ(window.events, 2);
  EXPECT_DOUBLE_EQ(window.span(), 3.0);

  const TraceSummary none = summarize(t, 4);
  EXPECT_EQ(none.events, 0);
  EXPECT_DOUBLE_EQ(none.span(), 0.0);
}

TEST(Trace, GanttRenderShowsLanesAndStats) {
  Trace t;
  t.add(make_event(0, OpKind::CopyH2D, Resource::H2D, 0, 1, 10));
  t.add(make_event(1, OpKind::Gemm, Resource::Compute, 1, 3));
  t.add(make_event(2, OpKind::Panel, Resource::Compute, 3, 4));
  t.add(make_event(3, OpKind::CopyD2H, Resource::D2H, 3, 4, 5));
  const std::string g = t.render_gantt(60);
  EXPECT_NE(g.find("H2D"), std::string::npos);
  EXPECT_NE(g.find("Compute"), std::string::npos);
  EXPECT_NE(g.find("D2H"), std::string::npos);
  EXPECT_NE(g.find('G'), std::string::npos);
  EXPECT_NE(g.find('P'), std::string::npos);
  EXPECT_NE(g.find("makespan"), std::string::npos);
  EXPECT_THROW(t.render_gantt(2), InvalidArgument);
  Trace empty;
  EXPECT_NE(empty.render_gantt(50).find("empty"), std::string::npos);
}

TEST(Trace, CsvHasHeaderAndRows) {
  Trace t;
  t.add(make_event(0, OpKind::CopyH2D, Resource::H2D, 0, 1.5, 10));
  t.add(make_event(1, OpKind::Gemm, Resource::Compute, 1.5, 2, 0, 99));
  std::ostringstream os;
  t.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("id,name,kind,resource,stream,start,end,bytes,flops"),
            std::string::npos);
  EXPECT_NE(csv.find("copy_h2d"), std::string::npos);
  EXPECT_NE(csv.find("gemm"), std::string::npos);
  EXPECT_NE(csv.find("99"), std::string::npos);
}

TEST(Trace, EnumNames) {
  EXPECT_STREQ(to_string(Resource::H2D), "H2D");
  EXPECT_STREQ(to_string(Resource::Compute), "Compute");
  EXPECT_STREQ(to_string(Resource::D2H), "D2H");
  EXPECT_STREQ(to_string(OpKind::Panel), "panel_qr");
  EXPECT_STREQ(to_string(OpKind::CopyD2D), "copy_d2d");
}

} // namespace
} // namespace rocqr::sim
