// The four OOC GEMM engines: numerics against host BLAS (Real mode),
// movement accounting, pipelining properties, and the §4.1 optimizations.
#include <gtest/gtest.h>

#include "leak_check.hpp"

#include <algorithm>
#include <cmath>
#include <tuple>

#include "blas/gemm.hpp"
#include "common/error.hpp"
#include "common/telemetry.hpp"
#include "la/generate.hpp"
#include "la/matrix.hpp"
#include "la/norms.hpp"
#include "ooc/gemm_engines.hpp"
#include "ooc/operand.hpp"
#include "sim/device.hpp"

namespace rocqr::ooc {
namespace {

using blas::GemmPrecision;
using blas::Op;
using sim::Device;
using sim::DeviceMatrix;
using sim::ExecutionMode;

sim::DeviceSpec test_spec(bytes_t capacity = 256LL << 20) {
  sim::DeviceSpec s = sim::DeviceSpec::v100_32gb();
  s.memory_capacity = capacity;
  return s;
}

la::Matrix host_inner_reference(const la::Matrix& a, const la::Matrix& b,
                                GemmPrecision prec) {
  la::Matrix c(a.cols(), b.cols());
  blas::gemm(Op::Trans, Op::NoTrans, a.cols(), b.cols(), a.rows(), 1.0f,
             a.data(), a.ld(), b.data(), b.ld(), 0.0f, c.data(), c.ld(), prec);
  return c;
}

double tolerance(GemmPrecision prec, index_t k) {
  // fp16-input GEMMs round both operands; accumulation is fp32 in both the
  // engine and the reference, but slab splits change summation order.
  return prec == GemmPrecision::FP32
             ? 1e-5 * std::sqrt(static_cast<double>(k))
             : 2e-3 * std::sqrt(static_cast<double>(k));
}

// --- Inner product ----------------------------------------------------------

class InnerRecursiveTest
    : public ::testing::TestWithParam<
          std::tuple<index_t /*blocksize*/, int /*depth*/, bool /*ramp*/,
                     GemmPrecision>> {};

TEST_P(InnerRecursiveTest, MatchesHostGemm) {
  const auto [bs, depth, ramp, prec] = GetParam();
  const index_t k = 200;
  const index_t m = 48;
  const index_t n = 72;
  la::Matrix a = la::random_uniform(k, m, 1);
  la::Matrix b = la::random_uniform(k, n, 2);
  la::Matrix c(m, n);

  Device dev(test_spec(), ExecutionMode::Real);
  OocGemmOptions opts;
  opts.blocksize = bs;
  opts.pipeline_depth = depth;
  opts.ramp_up = ramp;
  opts.ramp_start = std::min<index_t>(16, bs);
  opts.precision = prec;
  const auto stats =
      inner_product_recursive(dev, Operand::on_host(a.view()),
                              Operand::on_host(b.view()), c.view(), opts);
  dev.synchronize();

  la::Matrix expected = host_inner_reference(a, b, prec);
  EXPECT_LT(la::relative_difference(c.view(), expected.view()),
            tolerance(prec, k));
  EXPECT_EQ(stats.summary.bytes_h2d, (k * m + k * n) * 4);
  EXPECT_EQ(stats.summary.bytes_d2h, m * n * 4);
  EXPECT_GT(stats.steps, 0);
  EXPECT_EQ(dev.live_allocations(), 0); // engine cleaned up
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InnerRecursiveTest,
    ::testing::Combine(::testing::Values<index_t>(16, 64, 200, 512),
                       ::testing::Values(1, 2, 3),
                       ::testing::Values(false, true),
                       ::testing::Values(GemmPrecision::FP32,
                                         GemmPrecision::FP16_FP32)));

TEST(InnerRecursive, KeepCReturnsResidentAccumulator) {
  const index_t k = 128;
  const index_t m = 32;
  const index_t n = 40;
  la::Matrix a = la::random_uniform(k, m, 3);
  la::Matrix b = la::random_uniform(k, n, 4);
  la::Matrix c(m, n);
  Device dev(test_spec(), ExecutionMode::Real);
  OocGemmOptions opts;
  opts.blocksize = 32;
  opts.precision = GemmPrecision::FP32;
  DeviceMatrix kept;
  inner_product_recursive(dev, Operand::on_host(a.view()),
                          Operand::on_host(b.view()), c.view(), opts, &kept);
  dev.synchronize();
  ASSERT_TRUE(kept.valid());
  la::Matrix resident = dev.download(kept);
  EXPECT_EQ(la::relative_difference(resident.view(), c.view()), 0.0);
  dev.free(kept);
  EXPECT_EQ(dev.live_allocations(), 0);
}

TEST(InnerRecursive, CPanelSplitMatchesAndRestreamsA) {
  const index_t k = 160;
  const index_t m = 40;
  const index_t n = 80;
  la::Matrix a = la::random_uniform(k, m, 5);
  la::Matrix b = la::random_uniform(k, n, 6);
  la::Matrix c(m, n);
  Device dev(test_spec(), ExecutionMode::Real);
  OocGemmOptions opts;
  opts.blocksize = 64;
  opts.c_panel_cols = 20; // 4 panels
  opts.precision = GemmPrecision::FP32;
  const auto stats =
      inner_product_recursive(dev, Operand::on_host(a.view()),
                              Operand::on_host(b.view()), c.view(), opts);
  dev.synchronize();
  la::Matrix expected = host_inner_reference(a, b, GemmPrecision::FP32);
  EXPECT_LT(la::relative_difference(c.view(), expected.view()), 1e-4);
  // A re-streamed once per C panel; B exactly once.
  EXPECT_EQ(stats.summary.bytes_h2d, (4 * k * m + k * n) * 4);
  EXPECT_EQ(stats.output_ready.size(), 4u);
  // keep_c is incompatible with a split accumulator.
  DeviceMatrix kept;
  EXPECT_THROW(inner_product_recursive(dev, Operand::on_host(a.view()),
                                       Operand::on_host(b.view()), c.view(),
                                       opts, &kept),
               InvalidArgument);
}

TEST(InnerRecursive, AsyncBeatsSynchronous) {
  // Phantom mode at paper-like proportions: the pipelined schedule must be
  // substantially faster than the fully synchronized one (Table 1).
  const auto run = [&](bool synchronous) {
    Device dev(sim::DeviceSpec::v100_32gb(), ExecutionMode::Phantom);
    dev.model().install_paper_calibration();
    OocGemmOptions opts;
    opts.blocksize = 16384;
    opts.synchronous = synchronous;
    inner_product_recursive(
        dev, Operand::on_host(sim::HostConstRef::phantom(131072, 65536)),
        Operand::on_host(sim::HostConstRef::phantom(131072, 65536)),
        sim::HostMutRef::phantom(65536, 65536), opts);
    dev.synchronize();
    return dev.makespan();
  };
  const double sync = run(true);
  const double async = run(false);
  EXPECT_LT(async, 0.80 * sync);
  // Table 1 anchors: ~18.2 s sync, ~12.9 s async (±15%).
  EXPECT_NEAR(sync, 18.183, 18.183 * 0.15);
  EXPECT_NEAR(async, 12.932, 12.932 * 0.15);
}

TEST(PrefetchCounters, ResolveThroughRegistryAfterReset) {
  // Regression: count_slab_prefetch used to cache Counter* in function-local
  // statics. A MetricsRegistry reset between runs then left later engines
  // incrementing through the stale pointers while fresh registry lookups (a
  // snapshot, a new exporter) saw different objects. The counters must be
  // re-resolved per call so a run after reset() accounts from zero.
  auto& reg = telemetry::MetricsRegistry::global();
  const auto run_engine = [&]() {
    Device dev(sim::DeviceSpec::v100_32gb(), ExecutionMode::Phantom);
    OocGemmOptions opts;
    opts.blocksize = 256;
    opts.pipeline_depth = 2;
    // m = 4 slabs of 256: the first `depth` steps miss, the rest hit.
    inner_product_recursive(
        dev, Operand::on_host(sim::HostConstRef::phantom(1024, 64)),
        Operand::on_host(sim::HostConstRef::phantom(1024, 32)),
        sim::HostMutRef::phantom(64, 32), opts);
    dev.synchronize();
  };
  run_engine(); // interns the counters with some nonzero value
  reg.reset();
  run_engine();
  EXPECT_EQ(reg.counter("ooc.slab_prefetch_misses").value(), 2);
  EXPECT_EQ(reg.counter("ooc.slab_prefetch_hits").value(), 2);
}

class InnerBlockingTest
    : public ::testing::TestWithParam<std::tuple<index_t, bool /*resident*/,
                                                 GemmPrecision>> {};

TEST_P(InnerBlockingTest, MatchesHostGemm) {
  const auto [bs, resident, prec] = GetParam();
  const index_t k = 150;
  const index_t m = 24;
  const index_t n = 90;
  la::Matrix a = la::random_uniform(k, m, 7);
  la::Matrix b = la::random_uniform(k, n, 8);
  la::Matrix c(m, n);

  Device dev(test_spec(), ExecutionMode::Real);
  OocGemmOptions opts;
  opts.blocksize = bs;
  opts.precision = prec;

  DeviceMatrix a_dev;
  if (resident) {
    a_dev = dev.allocate(k, m);
    dev.upload(a_dev, a.view());
  }
  const Operand a_op =
      resident ? Operand::on_device(a_dev) : Operand::on_host(a.view());
  const auto stats =
      inner_product_blocking(dev, a_op, Operand::on_host(b.view()), c.view(),
                             opts);
  dev.synchronize();

  la::Matrix expected = host_inner_reference(a, b, prec);
  EXPECT_LT(la::relative_difference(c.view(), expected.view()),
            tolerance(prec, k));
  // B streamed once; A moved only when not resident.
  const bytes_t expected_h2d = (k * n + (resident ? 0 : k * m)) * 4;
  EXPECT_EQ(stats.summary.bytes_h2d, expected_h2d);
  EXPECT_EQ(stats.summary.bytes_d2h, m * n * 4);
  if (resident) dev.free(a_dev);
  EXPECT_EQ(dev.live_allocations(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InnerBlockingTest,
    ::testing::Combine(::testing::Values<index_t>(16, 30, 128),
                       ::testing::Bool(),
                       ::testing::Values(GemmPrecision::FP32,
                                         GemmPrecision::FP16_FP32)));

TEST(InnerBlocking, KeepCHoldsFullResult) {
  const index_t k = 100;
  const index_t m = 20;
  const index_t n = 60;
  la::Matrix a = la::random_uniform(k, m, 9);
  la::Matrix b = la::random_uniform(k, n, 10);
  la::Matrix c(m, n);
  Device dev(test_spec(), ExecutionMode::Real);
  OocGemmOptions opts;
  opts.blocksize = 16;
  opts.precision = GemmPrecision::FP32;
  DeviceMatrix kept;
  inner_product_blocking(dev, Operand::on_host(a.view()),
                         Operand::on_host(b.view()), c.view(), opts, &kept);
  dev.synchronize();
  ASSERT_TRUE(kept.valid());
  la::Matrix resident = dev.download(kept);
  EXPECT_EQ(la::relative_difference(resident.view(), c.view()), 0.0);
  dev.free(kept);
}

// --- Outer product ----------------------------------------------------------

la::Matrix host_outer_reference(const la::Matrix& c0, const la::Matrix& a,
                                const la::Matrix& b, GemmPrecision prec) {
  la::Matrix c = la::materialize(c0.view());
  blas::gemm(Op::NoTrans, Op::NoTrans, a.rows(), b.cols(), a.cols(), -1.0f,
             a.data(), a.ld(), b.data(), b.ld(), 1.0f, c.data(), c.ld(), prec);
  return c;
}

class OuterRecursiveTest
    : public ::testing::TestWithParam<
          std::tuple<index_t, bool /*staging*/, bool /*resident B*/,
                     GemmPrecision>> {};

TEST_P(OuterRecursiveTest, MatchesHostGemm) {
  const auto [bs, staging, resident, prec] = GetParam();
  const index_t m = 180;
  const index_t k = 40;
  const index_t n = 52;
  la::Matrix a = la::random_uniform(m, k, 11);
  la::Matrix b = la::random_uniform(k, n, 12);
  la::Matrix c0 = la::random_uniform(m, n, 13);
  la::Matrix c = la::materialize(c0.view());

  Device dev(test_spec(), ExecutionMode::Real);
  OocGemmOptions opts;
  opts.blocksize = bs;
  opts.staging_buffer = staging;
  opts.precision = prec;

  DeviceMatrix b_dev;
  if (resident) {
    b_dev = dev.allocate(k, n);
    dev.upload(b_dev, b.view());
  }
  const Operand b_op =
      resident ? Operand::on_device(b_dev) : Operand::on_host(b.view());
  const auto stats = outer_product_recursive(
      dev, Operand::on_host(a.view()), b_op, sim::as_const(c.view()),
      c.view(), opts);
  dev.synchronize();

  la::Matrix expected = host_outer_reference(c0, a, b, prec);
  EXPECT_LT(la::relative_difference(c.view(), expected.view()),
            tolerance(prec, k));
  // A and C stream once each in; B only when not resident; C streams out.
  const bytes_t expected_h2d = (m * k + m * n + (resident ? 0 : k * n)) * 4;
  EXPECT_EQ(stats.summary.bytes_h2d, expected_h2d);
  EXPECT_EQ(stats.summary.bytes_d2h, m * n * 4);
  // The staging optimization is pure buffer rotation: no PCIe or on-device
  // copies beyond the one-in/one-out minimum in either mode.
  EXPECT_EQ(stats.summary.bytes_d2d, 0);
  // Row-slab region events tile the full height.
  index_t covered = 0;
  for (const auto& re : stats.output_ready) {
    EXPECT_EQ(re.rows.offset, covered);
    covered += re.rows.width;
  }
  EXPECT_EQ(covered, m);
  if (resident) dev.free(b_dev);
  EXPECT_EQ(dev.live_allocations(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OuterRecursiveTest,
    ::testing::Combine(::testing::Values<index_t>(16, 60, 256),
                       ::testing::Bool(), ::testing::Bool(),
                       ::testing::Values(GemmPrecision::FP32,
                                         GemmPrecision::FP16_FP32)));

TEST(OuterRecursive, StagingBufferImprovesOverlap) {
  // Phantom run at Table 2's recursive shape: with the staging buffer the
  // C move-in no longer serializes behind the move-out (§4.1.2).
  const auto run = [&](bool staging) {
    Device dev(sim::DeviceSpec::v100_32gb(), ExecutionMode::Phantom);
    dev.model().install_paper_calibration();
    OocGemmOptions opts;
    opts.blocksize = 8192;
    opts.staging_buffer = staging;
    outer_product_recursive(
        dev, Operand::on_host(sim::HostConstRef::phantom(131072, 65536)),
        Operand::on_host(sim::HostConstRef::phantom(65536, 65536)),
        sim::HostConstRef::phantom(131072, 65536),
        sim::HostMutRef::phantom(131072, 65536), opts);
    dev.synchronize();
    return dev.makespan();
  };
  EXPECT_LT(run(true), run(false));
}

TEST(OuterRecursive, PaperShapeTimesMatchTable2) {
  Device dev(sim::DeviceSpec::v100_32gb(), ExecutionMode::Phantom);
  dev.model().install_paper_calibration();
  OocGemmOptions opts;
  opts.blocksize = 8192;
  DeviceMatrix b_dev = dev.allocate(65536, 65536, sim::StoragePrecision::FP16);
  const auto stats = outer_product_recursive(
      dev, Operand::on_host(sim::HostConstRef::phantom(131072, 65536)),
      Operand::on_device(b_dev), sim::HostConstRef::phantom(131072, 65536),
      sim::HostMutRef::phantom(131072, 65536), opts);
  dev.synchronize();
  // Single-slab costs from Table 2: 347 / 654 / 163 ms.
  EXPECT_NEAR(stats.slab_h2d_seconds, 0.347, 0.347 * 0.1);
  EXPECT_NEAR(stats.slab_gemm_seconds, 0.654, 0.654 * 0.05);
  EXPECT_NEAR(stats.slab_d2h_seconds, 0.163, 0.163 * 0.1);
  // Async total ~11.5 s (paper measured 11.517, ideal bound 10.974).
  EXPECT_NEAR(dev.makespan(), 11.5, 11.5 * 0.1);
  dev.free(b_dev);
}

class OuterBlockingTest
    : public ::testing::TestWithParam<
          std::tuple<std::tuple<index_t, index_t> /*tiles*/, bool /*staging*/,
                     GemmPrecision>> {};

TEST_P(OuterBlockingTest, MatchesHostGemm) {
  const auto [tiles, staging, prec] = GetParam();
  const auto [b1, b2] = tiles;
  const index_t m = 130;
  const index_t k = 30;
  const index_t n = 88;
  la::Matrix a = la::random_uniform(m, k, 14);
  la::Matrix b = la::random_uniform(k, n, 15);
  la::Matrix c0 = la::random_uniform(m, n, 16);
  la::Matrix c = la::materialize(c0.view());

  Device dev(test_spec(), ExecutionMode::Real);
  OocGemmOptions opts;
  opts.blocksize = b1;
  opts.tile_cols = b2;
  opts.staging_buffer = staging;
  opts.precision = prec;
  const auto stats = outer_product_blocking(
      dev, Operand::on_host(a.view()), Operand::on_host(b.view()),
      sim::as_const(c.view()), c.view(), opts);
  dev.synchronize();

  la::Matrix expected = host_outer_reference(c0, a, b, prec);
  EXPECT_LT(la::relative_difference(c.view(), expected.view()),
            tolerance(prec, k));
  // A, B in once; C tiles in and out exactly once.
  EXPECT_EQ(stats.summary.bytes_h2d, (m * k + k * n + m * n) * 4);
  EXPECT_EQ(stats.summary.bytes_d2h, m * n * 4);
  const index_t row_tiles = (m + b1 - 1) / b1;
  const index_t col_tiles = (n + b2 - 1) / b2;
  EXPECT_EQ(stats.steps, row_tiles * col_tiles);
  EXPECT_EQ(dev.live_allocations(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OuterBlockingTest,
    ::testing::Combine(
        ::testing::Values(std::tuple<index_t, index_t>{32, 32},
                          std::tuple<index_t, index_t>{64, 16},
                          std::tuple<index_t, index_t>{300, 300}),
        ::testing::Bool(),
        ::testing::Values(GemmPrecision::FP32, GemmPrecision::FP16_FP32)));

TEST(OuterBlocking, ResidentOperandsWithReadyEvents) {
  // Both factors produced on-device (as the blocking QR driver does):
  // consumers must respect the producer's ready event.
  const index_t m = 64;
  const index_t k = 16;
  const index_t n = 48;
  la::Matrix a = la::random_uniform(m, k, 17);
  la::Matrix b = la::random_uniform(k, n, 18);
  la::Matrix c0 = la::random_uniform(m, n, 19);
  la::Matrix c = la::materialize(c0.view());

  Device dev(test_spec(), ExecutionMode::Real);
  sim::Stream producer = dev.create_stream();
  DeviceMatrix a_dev = dev.allocate(m, k);
  DeviceMatrix b_dev = dev.allocate(k, n);
  dev.copy_h2d(a_dev, a.view(), producer);
  dev.copy_h2d(b_dev, b.view(), producer);
  sim::Event ready = dev.create_event();
  dev.record_event(ready, producer);

  OocGemmOptions opts;
  opts.blocksize = 32;
  opts.tile_cols = 24;
  opts.precision = GemmPrecision::FP32;
  outer_product_blocking(dev, Operand::on_device(a_dev, ready),
                         Operand::on_device(b_dev, ready),
                         sim::as_const(c.view()), c.view(), opts);
  dev.synchronize();
  la::Matrix expected = host_outer_reference(c0, a, b, GemmPrecision::FP32);
  EXPECT_LT(la::relative_difference(c.view(), expected.view()), 1e-4);
  // The first gemm must not start before the producer's uploads finished.
  const auto& events = dev.trace().events();
  sim_time_t upload_end = 0;
  sim_time_t first_gemm = -1;
  for (const auto& e : events) {
    if (e.stream == producer.id && e.kind == sim::OpKind::CopyH2D) {
      upload_end = std::max(upload_end, e.end);
    }
    if (e.kind == sim::OpKind::Gemm && first_gemm < 0) first_gemm = e.start;
  }
  EXPECT_GE(first_gemm, upload_end);
  dev.free(a_dev);
  dev.free(b_dev);
}

TEST(OuterBlocking, HostInputReadyDelaysFirstMoveIn) {
  Device dev(test_spec(), ExecutionMode::Phantom);
  // A long-running op on another stream, whose completion gates the engine.
  sim::Stream other = dev.create_stream();
  dev.custom_compute(other, 5.0, 0, sim::OpKind::Custom, "long op");
  sim::Event gate = dev.create_event();
  dev.record_event(gate, other);

  OocGemmOptions opts;
  opts.blocksize = 512;
  opts.host_input_ready = {gate};
  outer_product_blocking(
      dev, Operand::on_host(sim::HostConstRef::phantom(1024, 256)),
      Operand::on_host(sim::HostConstRef::phantom(256, 1024)),
      sim::HostConstRef::phantom(1024, 1024),
      sim::HostMutRef::phantom(1024, 1024), opts);
  dev.synchronize();
  for (const auto& e : dev.trace().events()) {
    if (e.kind == sim::OpKind::CopyH2D) {
      EXPECT_GE(e.start, 5.0);
    }
  }
}

TEST(Engines, StreamedRegionWaitsAreFineGrained) {
  // Two writer halves of the B operand finishing far apart: with region
  // events the first B slab streams right after the early half; a coarse
  // done-event would stall everything until t=9.
  Device dev(test_spec(), ExecutionMode::Phantom);
  sim::Stream writer = dev.create_stream();
  dev.custom_compute(writer, 1.0, 0, sim::OpKind::Custom, "early half");
  sim::Event early = dev.create_event();
  dev.record_event(early, writer);
  dev.custom_compute(writer, 8.0, 0, sim::OpKind::Custom, "late half");
  sim::Event late = dev.create_event();
  dev.record_event(late, writer);

  const index_t k = 512;
  const index_t m = 64;
  const index_t n = 256;
  auto a_dev = dev.allocate(k, m);
  OocGemmOptions opts;
  opts.blocksize = 64;
  opts.streamed_input_regions = {
      {Slab{0, k}, Slab{0, n / 2}, early},
      {Slab{0, k}, Slab{n / 2, n / 2}, late},
  };
  const size_t before = dev.trace().size();
  inner_product_blocking(dev, Operand::on_device(a_dev),
                         Operand::on_host(sim::HostConstRef::phantom(k, n)),
                         sim::HostMutRef::phantom(m, n), opts);
  dev.synchronize();

  double first_b_start = 1e30;
  double late_cols_start = 1e30;
  const auto& events = dev.trace().events();
  for (size_t i = before; i < events.size(); ++i) {
    if (events[i].kind != sim::OpKind::CopyH2D) continue;
    first_b_start = std::min(first_b_start, events[i].start);
    if (events[i].name == "h2d B[2]") late_cols_start = events[i].start;
  }
  EXPECT_GE(first_b_start, 1.0);  // waits the early half
  EXPECT_LT(first_b_start, 9.0);  // but NOT the late half
  EXPECT_GE(late_cols_start, 9.0); // slabs in the late half do wait
  dev.free(a_dev);
}

TEST(Engines, RejectShapeMismatches) {
  Device dev(test_spec(), ExecutionMode::Phantom);
  OocGemmOptions opts;
  opts.blocksize = 16;
  // Inner: k mismatch.
  EXPECT_THROW(
      inner_product_recursive(
          dev, Operand::on_host(sim::HostConstRef::phantom(100, 10)),
          Operand::on_host(sim::HostConstRef::phantom(90, 10)),
          sim::HostMutRef::phantom(10, 10), opts),
      InvalidArgument);
  // Inner: wrong C shape.
  EXPECT_THROW(
      inner_product_blocking(
          dev, Operand::on_host(sim::HostConstRef::phantom(100, 10)),
          Operand::on_host(sim::HostConstRef::phantom(100, 12)),
          sim::HostMutRef::phantom(10, 10), opts),
      InvalidArgument);
  // Outer: C shape mismatch.
  EXPECT_THROW(
      outer_product_recursive(
          dev, Operand::on_host(sim::HostConstRef::phantom(64, 8)),
          Operand::on_host(sim::HostConstRef::phantom(8, 16)),
          sim::HostConstRef::phantom(64, 16),
          sim::HostMutRef::phantom(64, 15), opts),
      InvalidArgument);
}

TEST(Engines, DeviceTooSmallThrowsOom) {
  Device dev(test_spec(1 << 16), ExecutionMode::Phantom); // 64 KiB device
  OocGemmOptions opts;
  opts.blocksize = 64;
  EXPECT_THROW(
      inner_product_recursive(
          dev, Operand::on_host(sim::HostConstRef::phantom(512, 256)),
          Operand::on_host(sim::HostConstRef::phantom(512, 256)),
          sim::HostMutRef::phantom(256, 256), opts),
      DeviceOutOfMemory);
}

} // namespace
} // namespace rocqr::ooc
