// Panel-level checkpoint/restart: kill a factorization mid-run with an
// injected fatal fault, resume from the last checkpoint on a fresh device,
// and require the resumed result to be bit-identical to an uninterrupted
// run — for every single-device OOC QR driver (blocking, left-looking,
// recursive, tiled) and every kill point that left a checkpoint behind.
// Plus serialization round-trips and checkpoint cadence.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "la/generate.hpp"
#include "leak_check.hpp"
#include "qr/checkpoint.hpp"
#include "qr/factorize.hpp"
#include "sim/device.hpp"
#include "sim/faults.hpp"

namespace rocqr {
namespace {

using sim::Device;
using sim::ExecutionMode;
using sim::FaultPlan;

sim::DeviceSpec test_spec() {
  sim::DeviceSpec s = sim::DeviceSpec::v100_32gb();
  s.memory_capacity = 64LL << 20;
  return s;
}

qr::QrStats run_driver(const std::string& driver, Device& dev,
                       sim::HostMutRef a, sim::HostMutRef r,
                       const qr::QrOptions& opts) {
  const qr::Algorithm alg = *qr::parse_algorithm(driver);
  return qr::factorize(qr::QrProblem{{&dev}, a, r, alg, opts});
}

bool bitwise_equal(const la::Matrix& x, const la::Matrix& y) {
  for (index_t j = 0; j < x.cols(); ++j) {
    for (index_t i = 0; i < x.rows(); ++i) {
      if (x(i, j) != y(i, j)) return false;
    }
  }
  return true;
}

/// Runs `driver` to completion fault-free, then re-runs it once per possible
/// H2D kill point with a 1-attempt transfer budget, resuming every run that
/// left a checkpoint and requiring the resumed factorization to match the
/// uninterrupted one bit for bit. Returns how many kills were resumed.
int kill_and_resume_sweep(const std::string& driver, index_t m, index_t n,
                          const qr::QrOptions& opts) {
  la::Matrix a0 = la::random_normal(m, n, 31);

  // Uninterrupted reference. The p=0 plan never fires but its injector
  // counts operations, giving the total H2D op count to aim the kills at.
  la::Matrix q_ref = la::materialize(a0.view());
  la::Matrix r_ref(n, n);
  Device ref_dev(test_spec(), ExecutionMode::Real);
  ref_dev.install_faults(FaultPlan::parse("h2d:transient:p=0"));
  run_driver(driver, ref_dev, q_ref.view(), r_ref.view(), opts);
  const std::int64_t total_h2d =
      ref_dev.fault_injector()->ops_seen(sim::FaultSite::H2D);
  EXPECT_GT(total_h2d, 2) << driver;

  int resumed = 0;
  for (std::int64_t kill = 2; kill < total_h2d; ++kill) {
    qr::MemoryCheckpointSink sink;
    qr::QrOptions kill_opts = opts;
    kill_opts.checkpoint_sink = &sink;
    kill_opts.checkpoint_every = 1;
    kill_opts.transfer_max_attempts = 1;
    la::Matrix q_killed = la::materialize(a0.view());
    la::Matrix r_killed(n, n);
    Device kill_dev(test_spec(), ExecutionMode::Real);
    kill_dev.install_faults(
        FaultPlan::parse("h2d:transient:op=" + std::to_string(kill)));
    EXPECT_THROW(run_driver(driver, kill_dev, q_killed.view(),
                            r_killed.view(), kill_opts),
                 FaultBudgetExhausted)
        << driver << " kill " << kill;
    if (!sink.has_checkpoint()) continue; // killed before the first unit
    const qr::Checkpoint& cp = sink.last();
    EXPECT_EQ(cp.driver, driver);
    EXPECT_GT(cp.units_done, 0);

    // Resume on a fresh device with fresh host buffers: the checkpoint alone
    // must reconstruct the uninterrupted factorization bit for bit.
    la::Matrix q_res(m, n);
    la::Matrix r_res(n, n);
    Device res_dev(test_spec(), ExecutionMode::Real);
    qr::resume(qr::QrProblem{
        {&res_dev}, q_res.view(), r_res.view(), qr::Algorithm::Recursive, opts
        }, cp);
    EXPECT_TRUE(bitwise_equal(q_res, q_ref)) << driver << " kill " << kill;
    EXPECT_TRUE(bitwise_equal(r_res, r_ref)) << driver << " kill " << kill;
    ++resumed;
  }
  return resumed;
}

qr::QrOptions base_options() {
  qr::QrOptions opts;
  opts.blocksize = 24;
  opts.panel_base = 8;
  opts.precision = blas::GemmPrecision::FP32;
  return opts;
}

TEST(KillAndResume, BlockingDriver) {
  EXPECT_GE(kill_and_resume_sweep("blocking", 96, 72, base_options()), 1);
}

TEST(KillAndResume, LeftLookingDriver) {
  EXPECT_GE(kill_and_resume_sweep("left", 96, 72, base_options()), 1);
}

TEST(KillAndResume, RecursiveDriverPanelLeaves) {
  // Panels as recursion leaves: exercises the node-update replay gating.
  qr::QrOptions opts = base_options();
  opts.resident_subtrees = false;
  EXPECT_GE(kill_and_resume_sweep("recursive", 96, 72, opts), 1);
}

TEST(KillAndResume, TiledDriver) {
  // Tiled CGS on the TaskGraph executor: kill points land inside the
  // interleaved panel/update schedule, so a resumed run proves the DAG
  // replays its completed prefix deterministically.
  qr::QrOptions opts = base_options();
  opts.blocksize = 16;
  EXPECT_GE(kill_and_resume_sweep("tiled", 96, 64, opts), 1);
}

TEST(KillAndResume, RecursiveDriverResidentSubtrees) {
  // n > 4b so the top level recurses while each half becomes one resident
  // subtree leaf: exercises subtree units in the replay.
  qr::QrOptions opts = base_options();
  opts.blocksize = 16;
  EXPECT_GE(kill_and_resume_sweep("recursive", 112, 96, opts), 1);
}

TEST(CheckpointSerialization, RoundTripsThroughStream) {
  qr::Checkpoint cp;
  cp.driver = "recursive";
  cp.m = 6;
  cp.n = 4;
  cp.blocksize = 2;
  cp.columns_done = 2;
  cp.units_done = 3;
  cp.a.resize(24);
  cp.r.resize(16);
  for (size_t i = 0; i < cp.a.size(); ++i) cp.a[i] = 0.5f * static_cast<float>(i);
  for (size_t i = 0; i < cp.r.size(); ++i) cp.r[i] = -1.25f * static_cast<float>(i);

  std::stringstream ss;
  qr::write_checkpoint(ss, cp);
  const qr::Checkpoint back = qr::read_checkpoint(ss);
  EXPECT_EQ(back.driver, cp.driver);
  EXPECT_EQ(back.m, cp.m);
  EXPECT_EQ(back.n, cp.n);
  EXPECT_EQ(back.blocksize, cp.blocksize);
  EXPECT_EQ(back.columns_done, cp.columns_done);
  EXPECT_EQ(back.units_done, cp.units_done);
  EXPECT_EQ(back.a, cp.a);
  EXPECT_EQ(back.r, cp.r);
}

TEST(CheckpointSerialization, RejectsMalformedStreams) {
  {
    std::stringstream ss("not a checkpoint at all");
    EXPECT_THROW(qr::read_checkpoint(ss), InvalidArgument);
  }
  {
    std::stringstream ss("rocqr-checkpoint v1\nblocking\n"); // truncated
    EXPECT_THROW(qr::read_checkpoint(ss), InvalidArgument);
  }
  {
    // Header promises a payload the stream does not deliver.
    std::stringstream ss("rocqr-checkpoint v1\nblocking\n4 4 2 2 1 16 16\n");
    EXPECT_THROW(qr::read_checkpoint(ss), InvalidArgument);
  }
}

TEST(CheckpointSerialization, DetectsFlippedPayloadByte) {
  // The v2 header carries a CRC-32 over the float payload: a single byte
  // silently corrupted at rest (bit rot, torn write) must be rejected
  // instead of resuming from garbage numerics.
  qr::Checkpoint cp;
  cp.driver = "recursive";
  cp.m = 8;
  cp.n = 4;
  cp.blocksize = 2;
  cp.columns_done = 2;
  cp.units_done = 1;
  cp.a.resize(32);
  cp.r.resize(16);
  for (size_t i = 0; i < cp.a.size(); ++i) cp.a[i] = 0.25f * static_cast<float>(i) - 3.0f;
  for (size_t i = 0; i < cp.r.size(); ++i) cp.r[i] = 2.0f * static_cast<float>(i);

  std::stringstream clean;
  qr::write_checkpoint(clean, cp);
  std::string bytes = clean.str();

  // Uncorrupted bytes still load (guards against the test flipping a byte
  // that was never covered by the CRC in the first place).
  {
    std::stringstream ss(bytes);
    EXPECT_NO_THROW(qr::read_checkpoint(ss));
  }

  // Flip one byte in the middle of the binary payload (well past the text
  // header, which ends at the third newline).
  size_t header_end = 0;
  for (int nl = 0; nl < 3; ++nl) header_end = bytes.find('\n', header_end) + 1;
  ASSERT_LT(header_end, bytes.size());
  const size_t victim = header_end + (bytes.size() - header_end) / 2;
  bytes[victim] = static_cast<char>(bytes[victim] ^ 0x5A);
  {
    std::stringstream ss(bytes);
    try {
      qr::read_checkpoint(ss);
      FAIL() << "corrupted checkpoint was accepted";
    } catch (const InvalidArgument& e) {
      EXPECT_NE(std::string(e.what()).find("CRC mismatch"), std::string::npos)
          << e.what();
    }
  }

  // Truncated payload is also rejected, not zero-filled.
  {
    std::stringstream ss(clean.str().substr(0, clean.str().size() - 7));
    EXPECT_THROW(qr::read_checkpoint(ss), InvalidArgument);
  }
}

TEST(CheckpointSerialization, FileSinkRoundTrip) {
  qr::Checkpoint cp;
  cp.driver = "blocking";
  cp.m = 3;
  cp.n = 2;
  cp.blocksize = 1;
  cp.columns_done = 1;
  cp.units_done = 1;
  cp.a = {1.0f, 2.0f, 3.0f, 4.0f, 5.0f, 6.0f};
  cp.r = {7.0f, 8.0f, 9.0f, 10.0f};

  const std::string path = "checkpoint_restart_test.ckpt";
  qr::FileCheckpointSink file_sink(path);
  file_sink.write(cp);
  const qr::Checkpoint back = qr::load_checkpoint_file(path);
  EXPECT_EQ(back.driver, cp.driver);
  EXPECT_EQ(back.a, cp.a);
  EXPECT_EQ(back.r, cp.r);
  std::remove(path.c_str());
}

TEST(CheckpointAtomicity, FailedWriteKeepsPreviousCheckpoint) {
  // FileCheckpointSink serializes to a ".tmp" sidecar and renames into
  // place: a write that dies partway must leave the previous good
  // checkpoint untouched (the old trunc-in-place sink destroyed it).
  qr::Checkpoint cp1;
  cp1.driver = "blocking";
  cp1.m = 3;
  cp1.n = 2;
  cp1.blocksize = 1;
  cp1.columns_done = 1;
  cp1.units_done = 1;
  cp1.a = {1.0f, 2.0f, 3.0f, 4.0f, 5.0f, 6.0f};
  cp1.r = {7.0f, 8.0f, 9.0f, 10.0f};

  const std::string path = "checkpoint_atomic_test.ckpt";
  const std::string tmp = path + ".tmp";
  qr::FileCheckpointSink sink(path);
  sink.write(cp1);
  EXPECT_FALSE(std::filesystem::exists(tmp)); // renamed, not copied

  // Crash the next write mid-checkpoint: a directory squatting on the
  // sidecar path makes serialization fail before the rename.
  std::filesystem::create_directory(tmp);
  qr::Checkpoint cp2 = cp1;
  cp2.columns_done = 2;
  cp2.units_done = 2;
  cp2.a[0] = -42.0f;
  EXPECT_THROW(sink.write(cp2), InvalidArgument);

  const qr::Checkpoint back = qr::load_checkpoint_file(path);
  EXPECT_EQ(back.units_done, cp1.units_done);
  EXPECT_EQ(back.a, cp1.a);
  EXPECT_EQ(back.r, cp1.r);

  // Once the obstruction clears, the sink recovers on the next write.
  std::filesystem::remove_all(tmp);
  sink.write(cp2);
  EXPECT_EQ(qr::load_checkpoint_file(path).units_done, cp2.units_done);
  EXPECT_FALSE(std::filesystem::exists(tmp));
  std::remove(path.c_str());
}

/// Delegates to a FileCheckpointSink but sabotages write number `fail_at`
/// by squatting on the ".tmp" sidecar — simulating a crash mid-checkpoint.
class SabotagedFileSink : public qr::CheckpointSink {
 public:
  SabotagedFileSink(std::string path, int fail_at)
      : inner_(path), path_(std::move(path)), fail_at_(fail_at) {}
  void write(const qr::Checkpoint& cp) override {
    if (++writes_ == fail_at_) {
      std::filesystem::create_directory(path_ + ".tmp");
    }
    inner_.write(cp);
  }

 private:
  qr::FileCheckpointSink inner_;
  std::string path_;
  int fail_at_;
  int writes_ = 0;
};

TEST(CheckpointAtomicity, RunKilledMidCheckpointStillResumesBitIdentical) {
  // End-to-end chaos: a recursive run checkpointing to a file dies during
  // its second checkpoint write. The file must still hold the first
  // checkpoint, and resuming from it must reproduce the uninterrupted
  // factorization bit for bit.
  const index_t m = 96;
  const index_t n = 72;
  qr::QrOptions opts = base_options();
  opts.resident_subtrees = false; // panels as leaves: one unit per panel

  la::Matrix a0 = la::random_normal(m, n, 77);
  la::Matrix q_ref = la::materialize(a0.view());
  la::Matrix r_ref(n, n);
  Device ref_dev(test_spec(), ExecutionMode::Real);
  qr::factorize(qr::QrProblem{
      {&ref_dev}, q_ref.view(), r_ref.view(), qr::Algorithm::Recursive, opts});

  const std::string path = "checkpoint_chaos_test.ckpt";
  const std::string tmp = path + ".tmp";
  SabotagedFileSink sink(path, 2);
  qr::QrOptions killed_opts = opts;
  killed_opts.checkpoint_sink = &sink;
  la::Matrix q_killed = la::materialize(a0.view());
  la::Matrix r_killed(n, n);
  Device killed_dev(test_spec(), ExecutionMode::Real);
  EXPECT_THROW(qr::factorize(qr::QrProblem{
      {&killed_dev}, q_killed.view(), r_killed.view(),
      qr::Algorithm::Recursive, killed_opts}),
               InvalidArgument);

  const qr::Checkpoint cp = qr::load_checkpoint_file(path);
  EXPECT_EQ(cp.driver, "recursive");
  EXPECT_EQ(cp.units_done, 1); // the write of unit 2 was the crash

  la::Matrix q_res(m, n);
  la::Matrix r_res(n, n);
  Device res_dev(test_spec(), ExecutionMode::Real);
  qr::resume(qr::QrProblem{
      {&res_dev}, q_res.view(), r_res.view(), qr::Algorithm::Recursive, opts
      }, cp);
  EXPECT_TRUE(bitwise_equal(q_res, q_ref));
  EXPECT_TRUE(bitwise_equal(r_res, r_ref));

  std::filesystem::remove_all(tmp);
  std::remove(path.c_str());
}

TEST(CheckpointCadence, EveryNWritesOnlyOnCadence) {
  const index_t m = 96;
  const index_t n = 72; // 3 panels at b=24: units 1, 2, 3
  la::Matrix a = la::random_normal(m, n, 32);
  la::Matrix r(n, n);

  qr::MemoryCheckpointSink sink;
  qr::QrOptions opts = base_options();
  opts.checkpoint_sink = &sink;
  opts.checkpoint_every = 2;
  Device dev(test_spec(), ExecutionMode::Real);
  la::Matrix q = la::materialize(a.view());
  qr::factorize(
      qr::QrProblem{{&dev}, q.view(), r.view(), qr::Algorithm::Blocking, opts});
  EXPECT_EQ(sink.count(), 1); // only unit 2 is on the cadence
  EXPECT_EQ(sink.last().units_done, 2);

  telemetry::Counter& written =
      telemetry::MetricsRegistry::global().counter("checkpoints_written");
  written.reset();
  opts.checkpoint_every = 1;
  Device dev2(test_spec(), ExecutionMode::Real);
  la::Matrix q2 = la::materialize(a.view());
  la::Matrix r2(n, n);
  qr::factorize(qr::QrProblem{
      {&dev2}, q2.view(), r2.view(), qr::Algorithm::Blocking, opts});
  EXPECT_EQ(written.value(), 3);
}

TEST(CheckpointPhantom, PhantomRunCheckpointsAndResumes) {
  const index_t n = 4096; // 4 blocking panels at b=1024
  qr::MemoryCheckpointSink sink;
  qr::QrOptions opts;
  opts.blocksize = 1024;
  opts.checkpoint_sink = &sink;
  opts.checkpoint_every = 3; // last write mid-run, at unit 3 of 4
  Device dev(sim::DeviceSpec::v100_32gb(), ExecutionMode::Phantom);
  auto a = sim::HostMutRef::phantom(n, n);
  auto r = sim::HostMutRef::phantom(n, n);
  qr::factorize(qr::QrProblem{{&dev}, a, r, qr::Algorithm::Blocking, opts});
  ASSERT_TRUE(sink.has_checkpoint());
  EXPECT_EQ(sink.last().units_done, 3);
  EXPECT_TRUE(sink.last().a.empty()); // no payload in Phantom mode

  // A phantom resume replays the remaining schedule without host data.
  Device dev2(sim::DeviceSpec::v100_32gb(), ExecutionMode::Phantom);
  opts.checkpoint_sink = nullptr;
  const qr::QrStats stats = qr::resume(qr::QrProblem{
      {&dev2}, a, r, qr::Algorithm::Recursive, opts}, sink.last());
  EXPECT_GT(stats.total_seconds, 0.0);
}

TEST(CheckpointResume, RejectsMismatchedShapeOrBlocksize) {
  qr::Checkpoint cp;
  cp.driver = "blocking";
  cp.m = 8;
  cp.n = 8;
  cp.blocksize = 4;
  cp.units_done = 1;
  Device dev(test_spec(), ExecutionMode::Phantom);
  auto a = sim::HostMutRef::phantom(8, 8);
  auto r = sim::HostMutRef::phantom(8, 8);

  qr::QrOptions opts;
  opts.blocksize = 2; // != checkpointed blocksize: unit numbering differs
  EXPECT_THROW(qr::resume(qr::QrProblem{
      {&dev}, a, r, qr::Algorithm::Recursive, opts}, cp), InvalidArgument);

  opts.blocksize = 4;
  auto bad = sim::HostMutRef::phantom(4, 4);
  EXPECT_THROW(qr::resume(qr::QrProblem{
      {&dev}, bad, r, qr::Algorithm::Recursive, opts}, cp), InvalidArgument);

  cp.driver = "no-such-driver";
  EXPECT_THROW(qr::resume(qr::QrProblem{
      {&dev}, a, r, qr::Algorithm::Recursive, opts}, cp), InvalidArgument);
}

} // namespace
} // namespace rocqr
