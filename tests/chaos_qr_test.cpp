// Seeded chaos over the fault-tolerant paths: transient transfer faults
// against the retry/backoff machinery, injected and genuine OOM against slab
// degradation, and compute corruption against the opt-in ABFT checksums.
// Every run either completes with verified numerics or fails with the one
// documented exception for its fault class — nothing crashes, nothing leaks.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "blas/gemm.hpp"
#include "common/error.hpp"
#include "common/telemetry.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "leak_check.hpp"
#include "ooc/gemm_engines.hpp"
#include "ooc/operand.hpp"
#include "qr/factorize.hpp"
#include "qr/incore.hpp"
#include "sim/device.hpp"
#include "sim/faults.hpp"

namespace rocqr {
namespace {

using blas::GemmPrecision;
using blas::Op;
using ooc::Operand;
using sim::Device;
using sim::ExecutionMode;
using sim::FaultPlan;

sim::DeviceSpec chaos_spec(bytes_t capacity = 64LL << 20) {
  sim::DeviceSpec s = sim::DeviceSpec::v100_32gb();
  s.memory_capacity = capacity;
  return s;
}

telemetry::Counter& counter(const char* name) {
  return telemetry::MetricsRegistry::global().counter(name);
}

qr::QrOptions chaos_qr_options() {
  qr::QrOptions opts;
  opts.blocksize = 24;
  opts.panel_base = 8;
  opts.precision = GemmPrecision::FP32;
  return opts;
}

struct QrRun {
  la::Matrix q;
  la::Matrix r;
};

QrRun run_qr(bool recursive, const la::Matrix& a, const qr::QrOptions& opts,
             const std::string& faults, bytes_t capacity = 64LL << 20) {
  Device dev(chaos_spec(capacity), ExecutionMode::Real);
  if (!faults.empty()) dev.install_faults(FaultPlan::parse(faults));
  QrRun out{la::materialize(a.view()), la::Matrix(a.cols(), a.cols())};
  if (recursive) {
    qr::factorize(qr::QrProblem{
        {&dev}, out.q.view(), out.r.view(), qr::Algorithm::Recursive, opts});
  } else {
    qr::factorize(qr::QrProblem{
        {&dev}, out.q.view(), out.r.view(), qr::Algorithm::Blocking, opts});
  }
  EXPECT_EQ(dev.live_allocations(), 0);
  return out;
}

bool bitwise_equal(const la::Matrix& x, const la::Matrix& y) {
  if (x.rows() != y.rows() || x.cols() != y.cols()) return false;
  for (index_t j = 0; j < x.cols(); ++j) {
    for (index_t i = 0; i < x.rows(); ++i) {
      if (x(i, j) != y(i, j)) return false;
    }
  }
  return true;
}

// --- Non-finite output guard (QrOptions::check_finite) ----------------------

TEST(ChaosFinite, OverflowedDiagonalDetectedOnlyWhenGuardEnabled) {
  telemetry::Counter& detected = counter("qr.nonfinite_detected");
  detected.reset();
  const index_t m = 96, n = 48;
  la::Matrix a0 = la::random_normal(m, n, 77);
  // First column of huge-but-finite floats: its norm (~3e39) is finite in
  // the double accumulator but casts to +inf on the float R diagonal, while
  // Q stays finite — the classic silent poisoning check_finite exists for.
  // (A NaN in the input is NOT silent: Gram-Schmidt's norm>0 guard trips.)
  for (index_t i = 0; i < m; ++i)
    a0(i, 0) = (i % 2 == 0 ? 3.0e38f : -3.0e38f);

  // Guard off (the default): the inf sails through silently.
  {
    Device dev(chaos_spec(), ExecutionMode::Real);
    la::Matrix q = la::materialize(a0.view());
    la::Matrix r(n, n);
    qr::QrOptions opts = chaos_qr_options();
    EXPECT_NO_THROW(qr::factorize(qr::QrProblem{
        {&dev}, q.view(), r.view(), qr::Algorithm::Recursive, opts}));
    EXPECT_EQ(detected.value(), 0);
    EXPECT_EQ(dev.live_allocations(), 0);
  }

  // Guard on: NumericalError naming the option, counter bumped, no leaks.
  {
    Device dev(chaos_spec(), ExecutionMode::Real);
    la::Matrix q = la::materialize(a0.view());
    la::Matrix r(n, n);
    qr::QrOptions opts = chaos_qr_options();
    opts.check_finite = true;
    try {
      qr::factorize(qr::QrProblem{
          {&dev}, q.view(), r.view(), qr::Algorithm::Recursive, opts});
      FAIL() << "check_finite accepted a non-finite factorization";
    } catch (const NumericalError& e) {
      EXPECT_NE(std::string(e.what()).find("check_finite"), std::string::npos)
          << e.what();
    }
    EXPECT_GE(detected.value(), 1);
    EXPECT_EQ(dev.live_allocations(), 0);
  }

  // A clean input with the guard on is not a false positive.
  {
    Device dev(chaos_spec(), ExecutionMode::Real);
    la::Matrix a1 = la::random_normal(m, n, 78);
    la::Matrix q = la::materialize(a1.view());
    la::Matrix r(n, n);
    qr::QrOptions opts = chaos_qr_options();
    opts.check_finite = true;
    EXPECT_NO_THROW(qr::factorize(qr::QrProblem{
        {&dev}, q.view(), r.view(), qr::Algorithm::Recursive, opts}));
    EXPECT_EQ(dev.live_allocations(), 0);
  }
}

// --- Transient transfer faults vs retry/backoff -----------------------------

TEST(ChaosTransient, SweepCompletesBitIdenticalOrExhaustsBudget) {
  const index_t m = 96;
  const index_t n = 72;
  la::Matrix a = la::random_normal(m, n, 11);
  const qr::QrOptions opts = chaos_qr_options();

  for (const bool recursive : {false, true}) {
    const QrRun clean = run_qr(recursive, a, opts, "");
    counter("transfer_retries").reset();
    int completed = 0;
    for (int seed = 1; seed <= 6; ++seed) {
      const std::string plan = "h2d:transient:p=0.1;d2h:transient:p=0.05;"
                               "seed=" +
                               std::to_string(seed);
      try {
        const QrRun chaotic = run_qr(recursive, a, opts, plan);
        // A retried copy re-runs the identical transfer, so a completed
        // chaotic run must reproduce the fault-free factorization exactly.
        EXPECT_TRUE(bitwise_equal(chaotic.q, clean.q))
            << "seed " << seed << " recursive " << recursive;
        EXPECT_TRUE(bitwise_equal(chaotic.r, clean.r))
            << "seed " << seed << " recursive " << recursive;
        ++completed;
      } catch (const FaultBudgetExhausted&) {
        // p=0.1 can legitimately beat 4 attempts somewhere in a long run.
      }
    }
    EXPECT_GE(completed, 1) << "recursive " << recursive;
    EXPECT_GT(counter("transfer_retries").value(), 0)
        << "recursive " << recursive;
  }
}

TEST(ChaosTransient, SingleAttemptBudgetFailsFast) {
  const index_t m = 64;
  const index_t n = 48;
  la::Matrix a = la::random_normal(m, n, 12);
  qr::QrOptions opts = chaos_qr_options();
  opts.transfer_max_attempts = 1;
  EXPECT_THROW(run_qr(false, a, opts, "h2d:transient:p=1"),
               FaultBudgetExhausted);
}

// --- OOM vs slab degradation ------------------------------------------------

TEST(ChaosOom, InjectedOomSweepDegradesOrPropagates) {
  const index_t m = 96;
  const index_t n = 72;
  la::Matrix a = la::random_normal(m, n, 13);
  const qr::QrFactors ref = qr::householder(a.view());
  const qr::QrOptions opts = chaos_qr_options();

  int completed = 0;
  for (const bool recursive : {false, true}) {
    for (const int after : {0, 2, 5, 9, 14}) {
      const std::string plan =
          "alloc:oom:after=" + std::to_string(after);
      try {
        const QrRun chaotic = run_qr(recursive, a, opts, plan);
        // The fault hit an engine allocation: the engine re-planned with a
        // halved slab and the factorization still has to be right (summation
        // order changed, so residual check instead of bitwise).
        EXPECT_LT(la::relative_difference(chaotic.q.view(), ref.q.view()),
                  2e-3)
            << "after " << after << " recursive " << recursive;
        EXPECT_LT(la::qr_residual(a.view(), chaotic.q.view(),
                                  chaotic.r.view()),
                  1e-4)
            << "after " << after << " recursive " << recursive;
        ++completed;
      } catch (const DeviceOutOfMemory&) {
        // The fault hit a driver-level allocation (panel, R block): those do
        // not degrade — the documented outcome is propagation.
      }
    }
  }
  EXPECT_GE(completed, 1);
}

TEST(ChaosOom, GenuineCapacityPressureDegradesEngineSlabs) {
  const index_t k = 4096;
  const index_t m = 64;
  const index_t n = 64;
  la::Matrix a = la::random_uniform(k, m, 14);
  la::Matrix b = la::random_uniform(k, n, 15);
  la::Matrix c(m, n);

  counter("slab_degradations").reset();
  // blocksize 4096 fp32 slabs need ~(4096*64*4)*2 bytes plus C; a 1 MiB
  // device cannot hold that, so the engine must halve its way down.
  Device dev(chaos_spec(1LL << 20), ExecutionMode::Real);
  ooc::OocGemmOptions opts;
  opts.blocksize = 4096;
  opts.precision = GemmPrecision::FP32;
  ooc::inner_product_recursive(dev, Operand::on_host(a.view()),
                               Operand::on_host(b.view()), c.view(), opts);
  dev.synchronize();
  EXPECT_GT(counter("slab_degradations").value(), 0);
  EXPECT_EQ(dev.live_allocations(), 0);

  la::Matrix expected(m, n);
  blas::gemm(Op::Trans, Op::NoTrans, m, n, k, 1.0f, a.data(), a.ld(),
             b.data(), b.ld(), 0.0f, expected.data(), expected.ld(),
             GemmPrecision::FP32);
  EXPECT_LT(la::relative_difference(c.view(), expected.view()), 1e-4);
}

TEST(ChaosOom, DegradationDisabledPropagates) {
  const index_t k = 4096;
  la::Matrix a = la::random_uniform(k, 64, 16);
  la::Matrix b = la::random_uniform(k, 64, 17);
  la::Matrix c(64, 64);
  Device dev(chaos_spec(1LL << 20), ExecutionMode::Real);
  ooc::OocGemmOptions opts;
  opts.blocksize = 4096;
  opts.precision = GemmPrecision::FP32;
  opts.degrade_on_oom = false;
  EXPECT_THROW(
      ooc::inner_product_recursive(dev, Operand::on_host(a.view()),
                                   Operand::on_host(b.view()), c.view(), opts),
      DeviceOutOfMemory);
}

// --- Compute corruption vs ABFT ---------------------------------------------

TEST(ChaosAbft, EngineRecomputesCorruptedSlab) {
  const index_t k = 256;
  const index_t m = 48;
  const index_t n = 56;
  la::Matrix a = la::random_uniform(k, m, 18);
  la::Matrix b = la::random_uniform(k, n, 19);

  const auto run = [&](const std::string& faults, bool abft) {
    Device dev(chaos_spec(), ExecutionMode::Real);
    if (!faults.empty()) dev.install_faults(FaultPlan::parse(faults));
    la::Matrix c(m, n);
    ooc::OocGemmOptions opts;
    opts.blocksize = 64;
    opts.precision = GemmPrecision::FP32;
    opts.abft = abft;
    ooc::inner_product_recursive(dev, Operand::on_host(a.view()),
                                 Operand::on_host(b.view()), c.view(), opts);
    dev.synchronize();
    EXPECT_EQ(dev.live_allocations(), 0);
    return c;
  };

  const la::Matrix clean = run("", false);
  counter("abft_recomputes").reset();
  const la::Matrix repaired = run("compute:corrupt:op=2", true);
  EXPECT_GT(counter("abft_recomputes").value(), 0);
  // The recompute re-runs the identical slab GEMM, so the repaired result is
  // exactly the fault-free one.
  EXPECT_TRUE(bitwise_equal(repaired, clean));

  // Sanity: without ABFT the same corruption reaches the output.
  const la::Matrix unprotected = run("compute:corrupt:op=2", false);
  EXPECT_FALSE(bitwise_equal(unprotected, clean));
}

TEST(ChaosAbft, PersistentCorruptionExhaustsRecomputesAndThrows) {
  const index_t k = 128;
  la::Matrix a = la::random_uniform(k, 32, 20);
  la::Matrix b = la::random_uniform(k, 32, 21);
  la::Matrix c(32, 32);
  Device dev(chaos_spec(), ExecutionMode::Real);
  dev.install_faults(FaultPlan::parse("compute:corrupt:p=1"));
  ooc::OocGemmOptions opts;
  opts.blocksize = 64;
  opts.precision = GemmPrecision::FP32;
  opts.abft = true;
  EXPECT_THROW(
      ooc::inner_product_recursive(dev, Operand::on_host(a.view()),
                                   Operand::on_host(b.view()), c.view(), opts),
      NumericalError);
}

TEST(ChaosAbft, BlockingQrSurvivesComputeCorruption) {
  const index_t m = 96;
  const index_t n = 72;
  la::Matrix a = la::random_normal(m, n, 22);
  qr::QrOptions opts = chaos_qr_options();
  opts.abft = true;

  const QrRun clean = run_qr(false, a, opts, "");
  counter("abft_recomputes").reset();
  // Device GEMM ordinals count every gemm on the device; ops 4/9/15 land in
  // the trailing-update engines for this shape. ABFT catches and repairs
  // whichever of them run through checked_gemm.
  const QrRun repaired =
      run_qr(false, a, opts, "compute:corrupt:op=4;compute:corrupt:op=9");
  EXPECT_GT(counter("abft_recomputes").value(), 0);
  EXPECT_TRUE(bitwise_equal(repaired.q, clean.q));
  EXPECT_TRUE(bitwise_equal(repaired.r, clean.r));
}

} // namespace
} // namespace rocqr
