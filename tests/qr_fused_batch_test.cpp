// Batched small-QR fusion through qr::detail::run_fused_batch: K
// same-shape "blocking" jobs lowered to ONE node program of block-diagonal
// batched operations (one batched move-in / panel kernel / GEMM pair /
// move-out per fused round). Pins the fused-vs-solo bitwise numerics
// contract, the latency-amortization makespan win, the even per-job stats
// split, checkpoint-boundary preemption with bit-identical solo resume,
// resume INTO a new fusion, and the fusion-contract rejections.
#include <gtest/gtest.h>

#include "leak_check.hpp"

#include <stdexcept>
#include <vector>

#include "common/error.hpp"
#include "la/generate.hpp"
#include "qr/checkpoint.hpp"
#include "qr/factorize.hpp"
#include "qr/tiled_qr.hpp"
#include "sim/device.hpp"

namespace rocqr {
namespace {

using sim::Device;
using sim::ExecutionMode;

sim::DeviceSpec test_spec(bytes_t capacity = 512LL << 20) {
  sim::DeviceSpec s = sim::DeviceSpec::v100_32gb();
  s.memory_capacity = capacity;
  return s;
}

qr::QrOptions base_options(index_t blocksize) {
  qr::QrOptions opts;
  opts.blocksize = blocksize;
  opts.panel_base = 8;
  opts.precision = blas::GemmPrecision::FP32;
  return opts;
}

bool bitwise_equal(const la::Matrix& x, const la::Matrix& y) {
  for (index_t j = 0; j < x.cols(); ++j) {
    for (index_t i = 0; i < x.rows(); ++i) {
      if (x(i, j) != y(i, j)) return false;
    }
  }
  return true;
}

struct SoloRun {
  la::Matrix q;
  la::Matrix r;
};

/// Uninterrupted single-job reference through the public driver API.
SoloRun run_solo(const la::Matrix& a, const qr::QrOptions& opts) {
  Device dev(test_spec(), ExecutionMode::Real);
  SoloRun run{la::materialize(a.view()), la::Matrix(a.cols(), a.cols())};
  qr::QrProblem p{{&dev}, run.q.view(), run.r.view(),
                  qr::Algorithm::Blocking, opts};
  qr::factorize(p);
  return run;
}

TEST(FusedBatch, SingleJobFusedBatchMatchesSoloBitwise) {
  // The degenerate K=1 fusion issues batched ops of one entry each; the
  // per-entry bodies are the solo bodies, so the result is the solo result
  // bit for bit — not approximately.
  const index_t m = 96, n = 48;
  la::Matrix a = la::random_normal(m, n, 401);
  const qr::QrOptions opts = base_options(16);
  const SoloRun ref = run_solo(a, opts);

  la::Matrix q = la::materialize(a.view());
  la::Matrix r(n, n);
  Device dev(test_spec(), ExecutionMode::Real);
  qr::detail::run_fused_batch(
      dev, {qr::detail::BatchJob{"blocking", q.view(), r.view(), opts,
                                 "j0."}});
  EXPECT_TRUE(bitwise_equal(q, ref.q));
  EXPECT_TRUE(bitwise_equal(r, ref.r));
}

TEST(FusedBatch, FusionDoesNotPerturbAnyJobsNumerics) {
  // The tentpole contract: three same-shape jobs with different payloads
  // fused into block-diagonal batched ops each land exactly on their solo
  // result — the fused bodies run the identical per-entry arithmetic in
  // entry order, and the jobs' buffers are disjoint.
  const index_t m = 96, n = 64;
  la::Matrix a0 = la::random_normal(m, n, 411);
  la::Matrix a1 = la::random_normal(m, n, 412);
  la::Matrix a2 = la::random_normal(m, n, 413);
  const qr::QrOptions opts = base_options(16);
  const SoloRun ref0 = run_solo(a0, opts);
  const SoloRun ref1 = run_solo(a1, opts);
  const SoloRun ref2 = run_solo(a2, opts);

  la::Matrix q0 = la::materialize(a0.view()), r0(n, n);
  la::Matrix q1 = la::materialize(a1.view()), r1(n, n);
  la::Matrix q2 = la::materialize(a2.view()), r2(n, n);
  Device dev(test_spec(), ExecutionMode::Real);
  const std::vector<qr::QrStats> stats = qr::detail::run_fused_batch(
      dev,
      {qr::detail::BatchJob{"blocking", q0.view(), r0.view(), opts, "j0."},
       qr::detail::BatchJob{"blocking", q1.view(), r1.view(), opts, "j1."},
       qr::detail::BatchJob{"blocking", q2.view(), r2.view(), opts,
                            "j2."}});
  EXPECT_EQ(dev.live_allocations(), 0);

  EXPECT_TRUE(bitwise_equal(q0, ref0.q));
  EXPECT_TRUE(bitwise_equal(r0, ref0.r));
  EXPECT_TRUE(bitwise_equal(q1, ref1.q));
  EXPECT_TRUE(bitwise_equal(r1, ref1.r));
  EXPECT_TRUE(bitwise_equal(q2, ref2.q));
  EXPECT_TRUE(bitwise_equal(r2, ref2.r));

  // Even 1/K attribution: identical jobs, identical shares.
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_EQ(stats[0].flops, stats[1].flops);
  EXPECT_EQ(stats[1].flops, stats[2].flops);
  EXPECT_EQ(stats[0].bytes_h2d, stats[1].bytes_h2d);
  for (const qr::QrStats& s : stats) {
    EXPECT_GT(s.bytes_h2d, 0);
    EXPECT_GT(s.total_seconds, 0.0);
  }
}

TEST(FusedBatch, FusionBeatsSerialSmallJobs) {
  // The point of fusing: one fused round pays each fixed per-op latency
  // (link turnaround, kernel launch) once instead of once per job, so the
  // fused makespan is strictly below running the same K jobs back to back
  // on the same device.
  qr::QrOptions opts;
  opts.blocksize = 64;
  const index_t m = 2048, n = 512;
  const int k = 4;

  double serial = 0;
  for (int i = 0; i < k; ++i) {
    Device dev(sim::DeviceSpec::v100_32gb(), ExecutionMode::Phantom);
    auto a = sim::HostMutRef::phantom(m, n);
    auto r = sim::HostMutRef::phantom(n, n);
    qr::detail::run_fused_batch(
        dev, {qr::detail::BatchJob{"blocking", a, r, opts, ""}});
    dev.synchronize();
    serial += dev.makespan();
  }

  Device dev(sim::DeviceSpec::v100_32gb(), ExecutionMode::Phantom);
  std::vector<qr::detail::BatchJob> jobs;
  for (int i = 0; i < k; ++i) {
    jobs.push_back(qr::detail::BatchJob{
        "blocking", sim::HostMutRef::phantom(m, n),
        sim::HostMutRef::phantom(n, n), opts,
        "j" + std::to_string(i) + "."});
  }
  qr::detail::run_fused_batch(dev, jobs);
  dev.synchronize();
  EXPECT_LT(dev.makespan(), serial);
}

/// Models serve::Scheduler's preemption: the sink that raises out of the
/// driver at a checkpoint boundary, after the snapshot has been taken.
struct PreemptAfter : qr::CheckpointSink {
  explicit PreemptAfter(int limit) : limit_(limit) {}
  void write(const qr::Checkpoint& cp) override {
    last = cp;
    if (++count >= limit_) throw std::runtime_error("preempted");
  }
  qr::Checkpoint last;
  int count = 0;

 private:
  int limit_;
};

struct KeepAll : qr::CheckpointSink {
  void write(const qr::Checkpoint& cp) override { last = cp; }
  qr::Checkpoint last;
};

TEST(FusedBatch, PreemptAtFusedRoundBoundaryResumesSoloBitIdentical) {
  // A member preempted out of a fused batch carries the solo "blocking"
  // checkpoint tag: resuming it solo through qr::resume lands on the
  // uninterrupted solo result bit for bit — the fused prefix and the solo
  // suffix compose exactly.
  const index_t m = 96, n = 64;
  la::Matrix a0 = la::random_normal(m, n, 421);
  la::Matrix a1 = la::random_normal(m, n, 422);
  const qr::QrOptions opts = base_options(16);
  const SoloRun ref = run_solo(a0, opts);

  PreemptAfter sink(2); // two fused rounds land, preempt at the second
  qr::QrOptions cp_opts = opts;
  cp_opts.checkpoint_sink = &sink;
  la::Matrix q0 = la::materialize(a0.view()), r0(n, n);
  la::Matrix q1 = la::materialize(a1.view()), r1(n, n);
  {
    Device dev(test_spec(), ExecutionMode::Real);
    EXPECT_THROW(
        qr::detail::run_fused_batch(
            dev,
            {qr::detail::BatchJob{"blocking", q0.view(), r0.view(), cp_opts,
                                  "j0."},
             qr::detail::BatchJob{"blocking", q1.view(), r1.view(), opts,
                                  "j1."}}),
        std::runtime_error);
  }
  ASSERT_EQ(sink.count, 2);
  EXPECT_EQ(sink.last.driver, "blocking");
  EXPECT_EQ(sink.last.units_done, 2);

  la::Matrix q_res(m, n), r_res(n, n);
  Device dev(test_spec(), ExecutionMode::Real);
  qr::QrProblem p{{&dev}, q_res.view(), r_res.view(),
                  qr::Algorithm::Blocking, opts};
  qr::resume(p, sink.last);
  EXPECT_TRUE(bitwise_equal(q_res, ref.q));
  EXPECT_TRUE(bitwise_equal(r_res, ref.r));
}

TEST(FusedBatch, PreemptedMembersResumeIntoNewFusionBitIdentical) {
  // The other direction of the serve flow: both members checkpoint at the
  // same fused round (the members advance in lockstep), so after the
  // preemption they re-fuse with resume_units set and finish exactly where
  // their solo runs would have.
  const index_t m = 96, n = 64;
  la::Matrix a0 = la::random_normal(m, n, 431);
  la::Matrix a1 = la::random_normal(m, n, 432);
  const qr::QrOptions opts = base_options(16);
  const SoloRun ref0 = run_solo(a0, opts);
  const SoloRun ref1 = run_solo(a1, opts);

  // The thrower is the LAST member, so every member's round-2 checkpoint
  // has already been written when the unwind starts.
  KeepAll keep;
  PreemptAfter thrower(2);
  qr::QrOptions opts0 = opts;
  opts0.checkpoint_sink = &keep;
  qr::QrOptions opts1 = opts;
  opts1.checkpoint_sink = &thrower;
  la::Matrix q0 = la::materialize(a0.view()), r0(n, n);
  la::Matrix q1 = la::materialize(a1.view()), r1(n, n);
  {
    Device dev(test_spec(), ExecutionMode::Real);
    EXPECT_THROW(
        qr::detail::run_fused_batch(
            dev,
            {qr::detail::BatchJob{"blocking", q0.view(), r0.view(), opts0,
                                  "j0."},
             qr::detail::BatchJob{"blocking", q1.view(), r1.view(), opts1,
                                  "j1."}}),
        std::runtime_error);
  }
  ASSERT_EQ(keep.last.units_done, 2);
  ASSERT_EQ(thrower.last.units_done, 2);

  // Restore both host prefixes exactly as serve does, then re-fuse.
  const auto restore = [m, n](la::Matrix& q, la::Matrix& r,
                              const qr::Checkpoint& cp) {
    for (index_t j = 0; j < n; ++j) {
      for (index_t i = 0; i < m; ++i) {
        q(i, j) = cp.a[static_cast<size_t>(i) + static_cast<size_t>(j) * m];
      }
    }
    for (index_t j = 0; j < n; ++j) {
      for (index_t i = 0; i < n; ++i) {
        r(i, j) = cp.r[static_cast<size_t>(i) + static_cast<size_t>(j) * n];
      }
    }
  };
  restore(q0, r0, keep.last);
  restore(q1, r1, thrower.last);
  qr::QrOptions res_opts = opts;
  res_opts.resume_units = 2;
  Device dev(test_spec(), ExecutionMode::Real);
  qr::detail::run_fused_batch(
      dev,
      {qr::detail::BatchJob{"blocking", q0.view(), r0.view(), res_opts,
                            "j0."},
       qr::detail::BatchJob{"blocking", q1.view(), r1.view(), res_opts,
                            "j1."}});
  EXPECT_TRUE(bitwise_equal(q0, ref0.q));
  EXPECT_TRUE(bitwise_equal(r0, ref0.r));
  EXPECT_TRUE(bitwise_equal(q1, ref1.q));
  EXPECT_TRUE(bitwise_equal(r1, ref1.r));
}

TEST(FusedBatch, RejectsContractViolations) {
  Device dev(test_spec(), ExecutionMode::Phantom);
  auto a = sim::HostMutRef::phantom(64, 32);
  auto r = sim::HostMutRef::phantom(32, 32);
  const qr::QrOptions opts = base_options(16);

  // Only "blocking" jobs lower to the fused node program.
  EXPECT_THROW(
      qr::detail::run_fused_batch(
          dev, {qr::detail::BatchJob{"tiled", a, r, opts, ""}}),
      InvalidArgument);

  // Fused jobs share one block-diagonal panel: shapes must match.
  auto a2 = sim::HostMutRef::phantom(64, 48);
  auto r2 = sim::HostMutRef::phantom(48, 48);
  EXPECT_THROW(
      qr::detail::run_fused_batch(
          dev, {qr::detail::BatchJob{"blocking", a, r, opts, "j0."},
                qr::detail::BatchJob{"blocking", a2, r2, opts, "j1."}}),
      InvalidArgument);

  // One batched GEMM per round: blocksize and precision must agree.
  qr::QrOptions other_b = opts;
  other_b.blocksize = 8;
  EXPECT_THROW(
      qr::detail::run_fused_batch(
          dev, {qr::detail::BatchJob{"blocking", a, r, opts, "j0."},
                qr::detail::BatchJob{"blocking", a, r, other_b, "j1."}}),
      InvalidArgument);
  qr::QrOptions fp16 = opts;
  fp16.precision = blas::GemmPrecision::FP16_FP32;
  EXPECT_THROW(
      qr::detail::run_fused_batch(
          dev, {qr::detail::BatchJob{"blocking", a, r, opts, "j0."},
                qr::detail::BatchJob{"blocking", a, r, fp16, "j1."}}),
      InvalidArgument);

  // The batched GEMM carries no per-job checksum: abft jobs cannot fuse.
  qr::QrOptions abft = opts;
  abft.abft = true;
  EXPECT_THROW(
      qr::detail::run_fused_batch(
          dev, {qr::detail::BatchJob{"blocking", a, r, abft, ""}}),
      InvalidArgument);

  // Lockstep rounds: every member resumes from the same unit.
  qr::QrOptions resumed = opts;
  resumed.resume_units = 1;
  EXPECT_THROW(
      qr::detail::run_fused_batch(
          dev, {qr::detail::BatchJob{"blocking", a, r, opts, "j0."},
                qr::detail::BatchJob{"blocking", a, r, resumed, "j1."}}),
      InvalidArgument);
}

} // namespace
} // namespace rocqr
