// Paper-scale schedule validation in Phantom mode: the full 131072^2 runs
// of §5.2 execute in milliseconds here because only the schedule is
// computed. These tests pin the paper's headline claims.
#include <gtest/gtest.h>

#include "ooc/gemm_engines.hpp"
#include "ooc/movement_model.hpp"
#include "ooc/operand.hpp"
#include "qr/factorize.hpp"
#include "sim/device.hpp"

namespace rocqr::qr {
namespace {

using sim::Device;
using sim::ExecutionMode;

QrStats run(bool recursive, const sim::DeviceSpec& spec, index_t m, index_t n,
            const QrOptions& opts) {
  Device dev(spec, ExecutionMode::Phantom);
  dev.model().install_paper_calibration();
  sim::HostMutRef a = sim::HostMutRef::phantom(m, n);
  sim::HostMutRef r = sim::HostMutRef::phantom(n, n);
  QrStats stats = recursive ? factorize(
      QrProblem{{&dev}, a, r, Algorithm::Recursive, opts})
                            : factorize(QrProblem{
                                {&dev}, a, r, Algorithm::Blocking, opts});
  EXPECT_EQ(dev.live_allocations(), 0);
  EXPECT_LE(dev.memory_peak(), spec.memory_capacity);
  return stats;
}

QrOptions paper_options(index_t blocksize) {
  QrOptions opts;
  opts.blocksize = blocksize;
  // Match the paper's measured configuration (its Table-3 movement shows
  // every level streamed); the resident-subtree extension is asserted
  // separately below.
  opts.resident_subtrees = false;
  return opts;
}

/// The paper's conventional blocking baseline: no §4.1.2 extra C working
/// space (Fig 11 shows its tile move-in/GEMM/move-out fully serialized) and
/// no §4.1.3 ramp — those are this paper's contributions, applied to the
/// recursive implementation.
QrOptions blocking_options(index_t blocksize) {
  QrOptions opts;
  opts.blocksize = blocksize;
  opts.staging_buffer = false;
  return opts;
}

TEST(PhantomQr, RecursiveBeatsBlockingAt32GB) {
  // §5.3: "around 1.25x faster ... on GPUs with larger device memory".
  const auto spec = sim::DeviceSpec::v100_32gb();
  const QrStats rec = run(true, spec, 131072, 131072, paper_options(16384));
  const QrStats blk = run(false, spec, 131072, 131072, blocking_options(16384));
  const double speedup = blk.total_seconds / rec.total_seconds;
  EXPECT_GT(speedup, 1.1);
  EXPECT_LT(speedup, 1.6);
}

TEST(PhantomQr, RecursiveNearlyTwiceAsFastAt16GB) {
  // §5.3: "around 2x faster than blocking QR when the memory is small"
  // (16 GB limit, blocksize 8192 — Figs 14/15).
  const auto spec = sim::DeviceSpec::v100_16gb();
  const QrStats rec = run(true, spec, 131072, 131072, paper_options(8192));
  const QrStats blk = run(false, spec, 131072, 131072, blocking_options(8192));
  const double speedup = blk.total_seconds / rec.total_seconds;
  EXPECT_GT(speedup, 1.5);
  EXPECT_LT(speedup, 2.6);
}

TEST(PhantomQr, SpeedupGrowsAsMemoryShrinks) {
  // The paper's summary claim: "the higher the ratio computation
  // speed/memory capacity is, the more advantageous recursive vs blocking".
  const double s32 =
      run(false, sim::DeviceSpec::v100_32gb(), 131072, 131072,
          blocking_options(16384))
          .total_seconds /
      run(true, sim::DeviceSpec::v100_32gb(), 131072, 131072,
          paper_options(16384))
          .total_seconds;
  const double s16 =
      run(false, sim::DeviceSpec::v100_16gb(), 131072, 131072,
          blocking_options(8192))
          .total_seconds /
      run(true, sim::DeviceSpec::v100_16gb(), 131072, 131072,
          paper_options(8192))
          .total_seconds;
  EXPECT_GT(s16, s32);
}

TEST(PhantomQr, RecursiveMovesFewerBytes) {
  // Table 3's direction: both H2D and D2H volumes are smaller for the
  // recursive algorithm at b=16384.
  const auto spec = sim::DeviceSpec::v100_32gb();
  const QrStats rec = run(true, spec, 131072, 131072, paper_options(16384));
  const QrStats blk = run(false, spec, 131072, 131072, blocking_options(16384));
  EXPECT_LT(rec.bytes_h2d, blk.bytes_h2d);
  EXPECT_LT(rec.bytes_d2h, blk.bytes_d2h);
  // Table 3 anchors at 13 GB/s: recursive 37.9 s vs blocking 47.2 s H2D.
  // Allow a generous band — the analytic model is itself approximate.
  EXPECT_NEAR(rec.h2d_seconds, 37.9, 37.9 * 0.35);
  EXPECT_NEAR(blk.h2d_seconds, 47.2, 47.2 * 0.35);
}

TEST(PhantomQr, QrLevelOptimizationGivesMeasurableSpeedup) {
  // §5.2: "the QR-level optimization helps the two factorization gain
  // around 15% speedup" — accept 5-30%.
  const auto spec = sim::DeviceSpec::v100_32gb();
  for (const bool recursive : {false, true}) {
    QrOptions on = paper_options(16384);
    QrOptions off = paper_options(16384);
    off.qr_level_opt = false;
    const double t_on = run(recursive, spec, 131072, 131072, on).total_seconds;
    const double t_off =
        run(recursive, spec, 131072, 131072, off).total_seconds;
    EXPECT_GT(t_off / t_on, 1.04) << "recursive=" << recursive;
    EXPECT_LT(t_off / t_on, 1.35) << "recursive=" << recursive;
  }
}

TEST(PhantomQr, RecursiveReaches45PercentOfTensorCorePeak) {
  // §1: "achieve around 45% of TensorCore peak performance" at 131072^2.
  const auto spec = sim::DeviceSpec::v100_32gb();
  const QrStats rec = run(true, spec, 131072, 131072, paper_options(16384));
  const double fraction = rec.sustained_flops_per_s() / spec.tc_peak_flops;
  EXPECT_GT(fraction, 0.35);
  EXPECT_LT(fraction, 0.60);
}

TEST(PhantomQr, BlockingInsensitiveRecursiveRobustToBlocksize) {
  // §5.2: at blocksize 8192 blocking QR degrades badly while recursive
  // "doesn't change much" (still 32 GB).
  const auto spec = sim::DeviceSpec::v100_32gb();
  const double rec16 =
      run(true, spec, 131072, 131072, paper_options(16384)).total_seconds;
  const double rec8 =
      run(true, spec, 131072, 131072, paper_options(8192)).total_seconds;
  const double blk16 =
      run(false, spec, 131072, 131072, blocking_options(16384)).total_seconds;
  const double blk8 =
      run(false, spec, 131072, 131072, blocking_options(8192)).total_seconds;
  EXPECT_LT(rec8 / rec16, 1.25);       // recursive barely moves
  EXPECT_GT(blk8 / blk16, rec8 / rec16); // blocking degrades more
}

TEST(PhantomQr, Table4ShapesShowExpectedSpeedups) {
  // 65536^2 -> ~1.5x, 262144x65536 -> ~1.7x at b=8192 (§5.2, Table 4).
  const auto spec = sim::DeviceSpec::v100_32gb();
  {
    const QrStats rec = run(true, spec, 65536, 65536, paper_options(8192));
    const QrStats blk = run(false, spec, 65536, 65536, blocking_options(8192));
    const double speedup = blk.total_seconds / rec.total_seconds;
    EXPECT_GT(speedup, 1.2);
    EXPECT_LT(speedup, 2.0);
    // Panel time identical across algorithms (same in-core solver).
    EXPECT_NEAR(rec.panel_seconds, blk.panel_seconds,
                0.01 * blk.panel_seconds);
    // Table 4 anchor: ~2.7 s of panel work.
    EXPECT_NEAR(rec.panel_seconds, 2.7, 2.7 * 0.15);
  }
  {
    const QrStats rec = run(true, spec, 262144, 65536, paper_options(8192));
    const QrStats blk = run(false, spec, 262144, 65536, blocking_options(8192));
    const double speedup = blk.total_seconds / rec.total_seconds;
    EXPECT_GT(speedup, 1.3);
    EXPECT_LT(speedup, 2.2);
    EXPECT_NEAR(rec.panel_seconds, 9.0, 9.0 * 0.15);
  }
}

TEST(PhantomQr, MeasuredMovementTracksAnalyticModel) {
  // The drivers' counted H2D volume should be the same order as §3.2's
  // no-reuse model — below it (residency reuse) but not wildly different.
  const auto spec = sim::DeviceSpec::v100_32gb();
  const index_t n = 131072;
  const index_t b = 16384;
  const QrStats rec = run(true, spec, n, n, paper_options(b));
  const QrStats blk = run(false, spec, n, n, paper_options(b));
  const double rec_model = ooc::recursive_h2d_words_sum(n, n, b) * 4;
  const double blk_model = ooc::blocking_h2d_words(n, n, b) * 4;
  EXPECT_GT(rec.bytes_h2d, 0.3 * rec_model);
  EXPECT_LT(rec.bytes_h2d, 1.7 * rec_model);
  EXPECT_GT(blk.bytes_h2d, 0.3 * blk_model);
  EXPECT_LT(blk.bytes_h2d, 1.2 * blk_model);
}

TEST(PhantomQr, RampUpImprovesTheLargestInnerProduct) {
  // §4.1.3: starting with small slabs hides part of the first move-in; the
  // paper measures 85 -> 87 TFLOP/s on the 65536x131072x65536 inner product.
  // (End-to-end the ramp also slows the compute-bound steady state slightly,
  // so the claim is pinned where the paper makes it: on the largest GEMM.)
  const auto run_inner = [&](bool ramp) {
    Device dev(sim::DeviceSpec::v100_32gb(), ExecutionMode::Phantom);
    dev.model().install_paper_calibration();
    ooc::OocGemmOptions opts;
    opts.blocksize = 16384;
    opts.ramp_up = ramp;
    ooc::inner_product_recursive(
        dev, ooc::Operand::on_host(sim::HostConstRef::phantom(131072, 65536)),
        ooc::Operand::on_host(sim::HostConstRef::phantom(131072, 65536)),
        sim::HostMutRef::phantom(65536, 65536), opts);
    dev.synchronize();
    return dev.makespan();
  };
  const double with_ramp = run_inner(true);
  const double without = run_inner(false);
  EXPECT_LT(with_ramp, without);
  // Effect size: a few percent, as in the paper (85 -> 87 TFLOP/s ~ 2.4%).
  EXPECT_GT(without / with_ramp, 1.005);
  EXPECT_LT(without / with_ramp, 1.15);
}

TEST(PhantomQr, ResidentSubtreesCutMovementFurther) {
  // Our extension of §4.2's first optimization: factoring small subtrees
  // entirely resident removes their intermediate host round-trips. The
  // measured H2D volume drops below even the paper's own §3.2 sum.
  const auto spec = sim::DeviceSpec::v100_32gb();
  QrOptions streamed = paper_options(16384);
  QrOptions resident = paper_options(16384);
  resident.resident_subtrees = true;
  const QrStats base = run(true, spec, 131072, 131072, streamed);
  const QrStats opt = run(true, spec, 131072, 131072, resident);
  EXPECT_LT(opt.bytes_h2d, 0.8 * base.bytes_h2d);
  EXPECT_LT(opt.bytes_d2h, base.bytes_d2h);
  EXPECT_LT(opt.total_seconds, base.total_seconds);
  const double paper_sum_bytes =
      ooc::recursive_h2d_words_sum(131072, 131072, 16384) * 4;
  EXPECT_LT(static_cast<double>(opt.bytes_h2d), paper_sum_bytes);
}

TEST(PhantomQr, RectangularAndOddSizes) {
  // Non-power-of-two panel counts and a trailing short panel must schedule
  // without violating capacity or dependencies.
  const auto spec = sim::DeviceSpec::v100_32gb();
  for (const bool recursive : {false, true}) {
    const QrStats s =
        run(recursive, spec, 100000, 50000, paper_options(8192));
    EXPECT_GT(s.total_seconds, 0.0);
    EXPECT_EQ(s.panels, (50000 + 8191) / 8192);
  }
}

} // namespace
} // namespace rocqr::qr
