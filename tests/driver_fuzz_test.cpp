// Randomized end-to-end fuzzing of the factorization drivers in Real mode:
// random shapes, blocksizes and option combinations, every run checked
// against an exact reference. The broad safety net over the whole stack.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "lu/incore.hpp"
#include "lu/ooc_cholesky.hpp"
#include "lu/ooc_lu.hpp"
#include "qr/blocking_qr.hpp"
#include "qr/incore.hpp"
#include "qr/left_looking_qr.hpp"
#include "qr/recursive_qr.hpp"
#include "sim/device.hpp"

namespace rocqr {
namespace {

using sim::Device;
using sim::ExecutionMode;

sim::DeviceSpec fuzz_spec(Rng& rng) {
  sim::DeviceSpec s = sim::DeviceSpec::v100_32gb();
  // Capacities from roomy down to tight enough to trigger the planners'
  // split paths.
  s.memory_capacity = (1LL << 20) << rng.below(6); // 1..32 MiB
  return s;
}

TEST(DriverFuzz, QrDriversAgainstHouseholder) {
  for (std::uint64_t seed = 1; seed <= 36; ++seed) {
    Rng rng(seed);
    const index_t n = 16 + rng.below(120);
    const index_t m = n + rng.below(160);
    la::Matrix a = la::random_normal(m, n, seed * 7);
    const qr::QrFactors ref = qr::householder(a.view());

    qr::QrOptions opts;
    opts.blocksize = 8 + rng.below(72);
    opts.panel_base = 4 + rng.below(12);
    opts.precision = blas::GemmPrecision::FP32;
    opts.qr_level_opt = rng.below(2) == 0;
    opts.staging_buffer = rng.below(2) == 0;
    opts.ramp_up = rng.below(3) == 0;
    opts.ramp_start = 4;
    opts.pipeline_depth = 1 + static_cast<int>(rng.below(3));

    const int which = static_cast<int>(rng.below(3));
    Device dev(fuzz_spec(rng), ExecutionMode::Real);
    la::Matrix q = la::materialize(a.view());
    la::Matrix r(n, n);
    try {
      switch (which) {
        case 0: qr::recursive_ooc_qr(dev, q.view(), r.view(), opts); break;
        case 1: qr::blocking_ooc_qr(dev, q.view(), r.view(), opts); break;
        default: qr::left_looking_ooc_qr(dev, q.view(), r.view(), opts); break;
      }
    } catch (const DeviceOutOfMemory&) {
      continue; // tight random capacity: a legitimate outcome
    }
    ASSERT_LT(la::relative_difference(q.view(), ref.q.view()), 2e-3)
        << "seed " << seed << " driver " << which;
    ASSERT_LT(la::relative_difference(r.view(), ref.r.view()), 2e-3)
        << "seed " << seed << " driver " << which;
    ASSERT_LT(la::qr_residual(a.view(), q.view(), r.view()), 1e-4)
        << "seed " << seed << " driver " << which;
    ASSERT_EQ(dev.live_allocations(), 0) << "seed " << seed;
  }
}

TEST(DriverFuzz, LuAndCholeskyAgainstIncore) {
  for (std::uint64_t seed = 1; seed <= 36; ++seed) {
    Rng rng(seed + 50);
    const index_t n = 16 + rng.below(100);
    lu::FactorOptions opts;
    opts.blocksize = 8 + rng.below(48);
    opts.panel_base = 4 + rng.below(12);
    opts.precision = blas::GemmPrecision::FP32;
    opts.staging_buffer = rng.below(2) == 0;
    opts.overlap = rng.below(2) == 0;
    opts.pipeline_depth = 1 + static_cast<int>(rng.below(3));

    const bool recursive = rng.below(2) == 0;
    const bool cholesky = rng.below(2) == 0;
    Device dev(fuzz_spec(rng), ExecutionMode::Real);
    if (cholesky) {
      la::Matrix a = la::random_spd(n, seed * 11);
      la::Matrix reference = la::materialize(a.view());
      lu::cholesky_recursive(reference.view(), 8);
      try {
        if (recursive) {
          lu::recursive_ooc_cholesky(dev, a.view(), opts);
        } else {
          lu::blocking_ooc_cholesky(dev, a.view(), opts);
        }
      } catch (const DeviceOutOfMemory&) {
        continue;
      }
      double worst = 0.0;
      for (index_t j = 0; j < n; ++j) {
        for (index_t i = 0; i <= j; ++i) {
          worst = std::max(
              worst, std::fabs(static_cast<double>(a(i, j)) -
                               static_cast<double>(reference(i, j))));
        }
      }
      ASSERT_LT(worst, 1e-2) << "seed " << seed;
    } else {
      la::Matrix a = la::random_diagonally_dominant(n, seed * 13);
      la::Matrix reference = la::materialize(a.view());
      lu::lu_nopiv_recursive(reference.view(), 8);
      try {
        if (recursive) {
          lu::recursive_ooc_lu(dev, a.view(), opts);
        } else {
          lu::blocking_ooc_lu(dev, a.view(), opts);
        }
      } catch (const DeviceOutOfMemory&) {
        continue;
      }
      ASSERT_LT(la::relative_difference(a.view(), reference.view()), 1e-3)
          << "seed " << seed;
    }
    ASSERT_EQ(dev.live_allocations(), 0) << "seed " << seed;
  }
}

} // namespace
} // namespace rocqr
