// Randomized end-to-end fuzzing of the factorization drivers in Real mode:
// random shapes, blocksizes and option combinations, every run checked
// against an exact reference. The broad safety net over the whole stack.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "lu/incore.hpp"
#include "lu/ooc_cholesky.hpp"
#include "lu/ooc_lu.hpp"
#include "qr/factorize.hpp"
#include "qr/incore.hpp"
#include "sim/device.hpp"
#include "sim/faults.hpp"

namespace rocqr {
namespace {

using sim::Device;
using sim::ExecutionMode;

sim::DeviceSpec fuzz_spec(Rng& rng) {
  sim::DeviceSpec s = sim::DeviceSpec::v100_32gb();
  // Capacities from roomy down to tight enough to trigger the planners'
  // split paths.
  s.memory_capacity = (1LL << 20) << rng.below(6); // 1..32 MiB
  return s;
}

TEST(DriverFuzz, QrDriversAgainstHouseholder) {
  for (std::uint64_t seed = 1; seed <= 36; ++seed) {
    Rng rng(seed);
    const index_t n = 16 + rng.below(120);
    const index_t m = n + rng.below(160);
    la::Matrix a = la::random_normal(m, n, seed * 7);
    const qr::QrFactors ref = qr::householder(a.view());

    qr::QrOptions opts;
    opts.blocksize = 8 + rng.below(72);
    opts.panel_base = 4 + rng.below(12);
    opts.precision = blas::GemmPrecision::FP32;
    opts.qr_level_opt = rng.below(2) == 0;
    opts.staging_buffer = rng.below(2) == 0;
    opts.ramp_up = rng.below(3) == 0;
    opts.ramp_start = 4;
    opts.pipeline_depth = 1 + static_cast<int>(rng.below(3));

    const int which = static_cast<int>(rng.below(3));
    Device dev(fuzz_spec(rng), ExecutionMode::Real);
    la::Matrix q = la::materialize(a.view());
    la::Matrix r(n, n);
    try {
      switch (which) {
        case 0: qr::factorize(qr::QrProblem{
            {&dev}, q.view(), r.view(), qr::Algorithm::Recursive, opts}); break;
        case 1: qr::factorize(qr::QrProblem{
            {&dev}, q.view(), r.view(), qr::Algorithm::Blocking, opts}); break;
        default: qr::factorize(qr::QrProblem{
            {&dev}, q.view(), r.view(), qr::Algorithm::LeftLooking, opts
            }); break;
      }
    } catch (const DeviceOutOfMemory&) {
      continue; // tight random capacity: a legitimate outcome
    }
    ASSERT_LT(la::relative_difference(q.view(), ref.q.view()), 2e-3)
        << "seed " << seed << " driver " << which;
    ASSERT_LT(la::relative_difference(r.view(), ref.r.view()), 2e-3)
        << "seed " << seed << " driver " << which;
    ASSERT_LT(la::qr_residual(a.view(), q.view(), r.view()), 1e-4)
        << "seed " << seed << " driver " << which;
    ASSERT_EQ(dev.live_allocations(), 0) << "seed " << seed;
  }
}

TEST(DriverFuzz, LuAndCholeskyAgainstIncore) {
  for (std::uint64_t seed = 1; seed <= 36; ++seed) {
    Rng rng(seed + 50);
    const index_t n = 16 + rng.below(100);
    lu::FactorOptions opts;
    opts.blocksize = 8 + rng.below(48);
    opts.panel_base = 4 + rng.below(12);
    opts.precision = blas::GemmPrecision::FP32;
    opts.staging_buffer = rng.below(2) == 0;
    opts.overlap = rng.below(2) == 0;
    opts.pipeline_depth = 1 + static_cast<int>(rng.below(3));

    const bool recursive = rng.below(2) == 0;
    const bool cholesky = rng.below(2) == 0;
    Device dev(fuzz_spec(rng), ExecutionMode::Real);
    if (cholesky) {
      la::Matrix a = la::random_spd(n, seed * 11);
      la::Matrix reference = la::materialize(a.view());
      lu::cholesky_recursive(reference.view(), 8);
      try {
        if (recursive) {
          lu::recursive_ooc_cholesky(dev, a.view(), opts);
        } else {
          lu::blocking_ooc_cholesky(dev, a.view(), opts);
        }
      } catch (const DeviceOutOfMemory&) {
        continue;
      }
      double worst = 0.0;
      for (index_t j = 0; j < n; ++j) {
        for (index_t i = 0; i <= j; ++i) {
          worst = std::max(
              worst, std::fabs(static_cast<double>(a(i, j)) -
                               static_cast<double>(reference(i, j))));
        }
      }
      ASSERT_LT(worst, 1e-2) << "seed " << seed;
    } else {
      la::Matrix a = la::random_diagonally_dominant(n, seed * 13);
      la::Matrix reference = la::materialize(a.view());
      lu::lu_nopiv_recursive(reference.view(), 8);
      try {
        if (recursive) {
          lu::recursive_ooc_lu(dev, a.view(), opts);
        } else {
          lu::blocking_ooc_lu(dev, a.view(), opts);
        }
      } catch (const DeviceOutOfMemory&) {
        continue;
      }
      ASSERT_LT(la::relative_difference(a.view(), reference.view()), 1e-3)
          << "seed " << seed;
    }
    ASSERT_EQ(dev.live_allocations(), 0) << "seed " << seed;
  }
}

/// Random fault plan built from valid clauses. Sets `has_corrupt` when a
/// compute-corruption clause is included (those silently perturb results
/// unless ABFT is on, so the caller must skip numerical verification).
std::string random_fault_spec(Rng& rng, bool* has_corrupt) {
  static const char* kSiteKind[] = {"h2d:transient", "d2h:transient",
                                    "alloc:oom", "compute:corrupt"};
  *has_corrupt = false;
  std::string spec;
  const int clauses = 1 + static_cast<int>(rng.below(3));
  for (int i = 0; i < clauses; ++i) {
    const int which = static_cast<int>(rng.below(4));
    if (which == 3) *has_corrupt = true;
    std::string clause = kSiteKind[which];
    switch (rng.below(3)) {
      case 0:
        clause += ":p=0.0" + std::to_string(1 + rng.below(9));
        break;
      case 1:
        clause += ":op=" + std::to_string(1 + rng.below(40));
        break;
      default:
        clause += ":after=" + std::to_string(rng.below(40)) +
                  ",count=" + std::to_string(1 + rng.below(3));
        break;
    }
    spec += clause + ";";
  }
  spec += "seed=" + std::to_string(1 + rng.below(1000));
  return spec;
}

TEST(DriverFuzz, QrDriversUnderRandomFaultPlans) {
  for (std::uint64_t seed = 1; seed <= 48; ++seed) {
    Rng rng(seed + 100);
    const index_t n = 16 + rng.below(80);
    const index_t m = n + rng.below(120);
    la::Matrix a = la::random_normal(m, n, seed * 17);
    const qr::QrFactors ref = qr::householder(a.view());

    qr::QrOptions opts;
    opts.blocksize = 8 + rng.below(56);
    opts.panel_base = 4 + rng.below(12);
    opts.precision = blas::GemmPrecision::FP32;
    opts.qr_level_opt = rng.below(2) == 0;
    opts.abft = rng.below(3) == 0;
    opts.transfer_max_attempts = 1 + static_cast<int>(rng.below(4));

    bool has_corrupt = false;
    const std::string spec = random_fault_spec(rng, &has_corrupt);
    const int which = static_cast<int>(rng.below(3));
    Device dev(fuzz_spec(rng), ExecutionMode::Real);
    dev.install_faults(sim::FaultPlan::parse(spec));
    la::Matrix q = la::materialize(a.view());
    la::Matrix r(n, n);
    try {
      switch (which) {
        case 0: qr::factorize(qr::QrProblem{
            {&dev}, q.view(), r.view(), qr::Algorithm::Recursive, opts}); break;
        case 1: qr::factorize(qr::QrProblem{
            {&dev}, q.view(), r.view(), qr::Algorithm::Blocking, opts}); break;
        default: qr::factorize(qr::QrProblem{
            {&dev}, q.view(), r.view(), qr::Algorithm::LeftLooking, opts
            }); break;
      }
    } catch (const DeviceOutOfMemory&) {
      continue; // driver-level allocation hit (injected or genuine)
    } catch (const FaultBudgetExhausted&) {
      continue; // transient faults beat the retry budget
    } catch (const NumericalError&) {
      continue; // ABFT recompute budget beaten by persistent corruption
    }
    // Any other exception escaping is a test failure (gtest reports it).
    ASSERT_EQ(dev.live_allocations(), 0) << "seed " << seed;
    if (has_corrupt && !opts.abft) continue; // silently perturbed by design
    ASSERT_LT(la::relative_difference(q.view(), ref.q.view()), 2e-3)
        << "seed " << seed << " driver " << which << " spec " << spec;
    ASSERT_LT(la::qr_residual(a.view(), q.view(), r.view()), 1e-4)
        << "seed " << seed << " driver " << which << " spec " << spec;
  }
}

TEST(FaultSpecFuzz, ParseGarbageNeverCrashes) {
  static const char kChars[] = "h2d:aloc;computrsient=p.,0123456789 xyz-";
  for (std::uint64_t seed = 1; seed <= 500; ++seed) {
    Rng rng(seed + 900);
    std::string s;
    const size_t len = rng.below(40);
    for (size_t i = 0; i < len; ++i) {
      s.push_back(kChars[rng.below(sizeof(kChars) - 1)]);
    }
    try {
      const sim::FaultPlan plan = sim::FaultPlan::parse(s);
      // Whatever parsed must round-trip through its canonical form.
      const sim::FaultPlan again = sim::FaultPlan::parse(plan.to_string());
      EXPECT_EQ(plan.to_string(), again.to_string()) << s;
    } catch (const InvalidArgument&) {
      // The documented rejection path; anything else escaping is a crash.
    }
  }
}

} // namespace
} // namespace rocqr
