// Out-of-core LU and Cholesky (the §6 future-work extension) plus their
// substrates: the out-of-core triangular solve and the column-wise /
// transposed outer-product engines.
#include <gtest/gtest.h>

#include "leak_check.hpp"

#include <algorithm>
#include <cmath>
#include <tuple>

#include "blas/transform.hpp"
#include "blas/trsm.hpp"
#include "common/error.hpp"
#include "la/cholesky.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "lu/incore.hpp"
#include "lu/ooc_cholesky.hpp"
#include "lu/ooc_lu.hpp"
#include "ooc/gemm_engines.hpp"
#include "ooc/operand.hpp"
#include "ooc/trsm_engine.hpp"
#include "sim/device.hpp"

namespace rocqr::lu {
namespace {

using blas::GemmPrecision;
using ooc::Operand;
using sim::Device;
using sim::ExecutionMode;

sim::DeviceSpec test_spec(bytes_t capacity = 512LL << 20) {
  sim::DeviceSpec s = sim::DeviceSpec::v100_32gb();
  s.memory_capacity = capacity;
  return s;
}

// --- Column-wise and transposed outer-product engines -----------------------

TEST(OuterColwise, MatchesHostGemm) {
  const index_t m = 60;
  const index_t k = 24;
  const index_t n = 150;
  la::Matrix a = la::random_uniform(m, k, 1);
  la::Matrix b = la::random_uniform(k, n, 2);
  la::Matrix c0 = la::random_uniform(m, n, 3);
  la::Matrix c = la::materialize(c0.view());

  Device dev(test_spec(), ExecutionMode::Real);
  ooc::OocGemmOptions opts;
  opts.blocksize = 40;
  opts.precision = GemmPrecision::FP32;
  const auto stats = ooc::outer_product_colwise(
      dev, Operand::on_host(a.view()), Operand::on_host(b.view()),
      sim::as_const(c.view()), c.view(), opts);
  dev.synchronize();

  la::Matrix expected = la::materialize(c0.view());
  blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, m, n, k, -1.0f, a.data(),
             a.ld(), b.data(), b.ld(), 1.0f, expected.data(), expected.ld());
  EXPECT_LT(la::relative_difference(c.view(), expected.view()), 1e-4);
  // A once; B and C column slabs once each.
  EXPECT_EQ(stats.summary.bytes_h2d, (m * k + k * n + m * n) * 4);
  EXPECT_EQ(stats.summary.bytes_d2h, m * n * 4);
  EXPECT_EQ(dev.live_allocations(), 0);
}

TEST(OuterColwise, TransposedAOperand) {
  const index_t m = 40;
  const index_t k = 20;
  const index_t n = 90;
  la::Matrix a = la::random_uniform(k, m, 4); // stored k x m, used as Aᵀ
  la::Matrix b = la::random_uniform(k, n, 5);
  la::Matrix c0 = la::random_uniform(m, n, 6);
  la::Matrix c = la::materialize(c0.view());

  Device dev(test_spec(), ExecutionMode::Real);
  ooc::OocGemmOptions opts;
  opts.blocksize = 32;
  opts.precision = GemmPrecision::FP32;
  opts.outer_opa = blas::Op::Trans;
  ooc::outer_product_colwise(dev, Operand::on_host(a.view()),
                             Operand::on_host(b.view()),
                             sim::as_const(c.view()), c.view(), opts);
  dev.synchronize();

  la::Matrix expected = la::materialize(c0.view());
  blas::gemm(blas::Op::Trans, blas::Op::NoTrans, m, n, k, -1.0f, a.data(),
             a.ld(), b.data(), b.ld(), 1.0f, expected.data(), expected.ld());
  EXPECT_LT(la::relative_difference(c.view(), expected.view()), 1e-4);
}

TEST(OuterRowwise, TransposedAOperand) {
  // outer_product_recursive with opts.outer_opa = Trans (the Cholesky
  // trailing-update shape): A stored k x m, streamed in column slabs.
  const index_t m = 120;
  const index_t k = 30;
  const index_t n = 45;
  la::Matrix a = la::random_uniform(k, m, 7);
  la::Matrix b = la::random_uniform(k, n, 8);
  la::Matrix c0 = la::random_uniform(m, n, 9);
  la::Matrix c = la::materialize(c0.view());

  Device dev(test_spec(), ExecutionMode::Real);
  ooc::OocGemmOptions opts;
  opts.blocksize = 32;
  opts.precision = GemmPrecision::FP32;
  opts.outer_opa = blas::Op::Trans;
  ooc::outer_product_recursive(dev, Operand::on_host(a.view()),
                               Operand::on_host(b.view()),
                               sim::as_const(c.view()), c.view(), opts);
  dev.synchronize();

  la::Matrix expected = la::materialize(c0.view());
  blas::gemm(blas::Op::Trans, blas::Op::NoTrans, m, n, k, -1.0f, a.data(),
             a.ld(), b.data(), b.ld(), 1.0f, expected.data(), expected.ld());
  EXPECT_LT(la::relative_difference(c.view(), expected.view()), 1e-4);
}

TEST(OuterBlocking, SubBlockResidentOperand) {
  // Operand::on_device with a sub-block ref (the LU panel's L21 part).
  const index_t m = 48;
  const index_t k = 16;
  const index_t n = 40;
  la::Matrix combined = la::random_uniform(m + k, k, 10); // L11 over L21
  la::Matrix b = la::random_uniform(k, n, 11);
  la::Matrix c0 = la::random_uniform(m, n, 12);
  la::Matrix c = la::materialize(c0.view());

  Device dev(test_spec(), ExecutionMode::Real);
  auto dcomb = dev.allocate(m + k, k);
  dev.upload(dcomb, combined.view());
  auto db = dev.allocate(k, n);
  dev.upload(db, b.view());

  ooc::OocGemmOptions opts;
  opts.blocksize = 20;
  opts.precision = GemmPrecision::FP32;
  ooc::outer_product_blocking(
      dev, Operand::on_device(sim::DeviceMatrixRef(dcomb, k, 0, m, k)),
      Operand::on_device(db), sim::as_const(c.view()), c.view(), opts);
  dev.synchronize();

  la::Matrix expected = la::materialize(c0.view());
  blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, m, n, k, -1.0f,
             &combined(k, 0), combined.ld(), b.data(), b.ld(), 1.0f,
             expected.data(), expected.ld());
  EXPECT_LT(la::relative_difference(c.view(), expected.view()), 1e-4);
  dev.free(dcomb);
  dev.free(db);
}

// --- Out-of-core triangular solve -------------------------------------------

class OocTrsmTest
    : public ::testing::TestWithParam<std::tuple<index_t /*n*/, index_t /*nrhs*/,
                                                 index_t /*blocksize*/>> {};

TEST_P(OocTrsmTest, LowerUnitSolve) {
  const auto [n, nrhs, bs] = GetParam();
  // Unit lower triangle from a diagonally dominant LU.
  la::Matrix t = la::random_diagonally_dominant(n, 21);
  lu_nopiv_unblocked(t.view());
  la::Matrix x_true = la::random_uniform(n, nrhs, 22);
  la::Matrix b(n, nrhs);
  // b = L x: forward multiply.
  for (index_t j = 0; j < nrhs; ++j) {
    for (index_t i = 0; i < n; ++i) {
      double acc = x_true(i, j);
      for (index_t p = 0; p < i; ++p) {
        acc += static_cast<double>(t(i, p)) * static_cast<double>(x_true(p, j));
      }
      b(i, j) = static_cast<float>(acc);
    }
  }

  Device dev(test_spec(), ExecutionMode::Real);
  ooc::OocGemmOptions opts;
  opts.blocksize = bs;
  opts.precision = GemmPrecision::FP32;
  ooc::ooc_trsm(dev, ooc::TriSolveKind::LowerUnit, t.view(),
                sim::as_const(b.view()), b.view(), opts);
  dev.synchronize();
  EXPECT_LT(la::relative_difference(b.view(), x_true.view()), 1e-4);
  EXPECT_EQ(dev.live_allocations(), 0);
}

TEST_P(OocTrsmTest, UpperTransSolve) {
  const auto [n, nrhs, bs] = GetParam();
  la::Matrix spd = la::random_spd(n, 23);
  la::Matrix r = la::materialize(spd.view());
  la::cholesky_upper(r.view());
  la::Matrix x_true = la::random_uniform(n, nrhs, 24);
  la::Matrix b(n, nrhs);
  // b = Rᵀ x.
  for (index_t j = 0; j < nrhs; ++j) {
    for (index_t i = 0; i < n; ++i) {
      double acc = 0.0;
      for (index_t p = 0; p <= i; ++p) {
        acc += static_cast<double>(r(p, i)) * static_cast<double>(x_true(p, j));
      }
      b(i, j) = static_cast<float>(acc);
    }
  }

  Device dev(test_spec(), ExecutionMode::Real);
  ooc::OocGemmOptions opts;
  opts.blocksize = bs;
  opts.precision = GemmPrecision::FP32;
  ooc::ooc_trsm(dev, ooc::TriSolveKind::UpperTrans, r.view(),
                sim::as_const(b.view()), b.view(), opts);
  dev.synchronize();
  EXPECT_LT(la::relative_difference(b.view(), x_true.view()), 1e-4);
}

TEST_P(OocTrsmTest, UpperBackSubstitution) {
  const auto [n, nrhs, bs] = GetParam();
  la::Matrix u = la::random_diagonally_dominant(n, 25);
  blas::zero_lower_triangle(n, n, u.data(), u.ld());
  la::Matrix x_true = la::random_uniform(n, nrhs, 26);
  la::Matrix b(n, nrhs);
  blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, n, nrhs, n, 1.0f, u.data(),
             u.ld(), x_true.data(), x_true.ld(), 0.0f, b.data(), b.ld());

  Device dev(test_spec(), ExecutionMode::Real);
  ooc::OocGemmOptions opts;
  opts.blocksize = bs;
  opts.precision = GemmPrecision::FP32;
  ooc::ooc_trsm(dev, ooc::TriSolveKind::Upper, u.view(),
                sim::as_const(b.view()), b.view(), opts);
  dev.synchronize();
  EXPECT_LT(la::relative_difference(b.view(), x_true.view()), 1e-4);
  EXPECT_EQ(dev.live_allocations(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OocTrsmTest,
    ::testing::Combine(::testing::Values<index_t>(8, 33, 64, 100),
                       ::testing::Values<index_t>(1, 17, 64),
                       ::testing::Values<index_t>(8, 16, 64)));

TEST(OocTrsm, LuThenTwoSolvesRecoversSolution) {
  // The ooc_solver example's pipeline as a test: OOC LU, then forward and
  // back substitution out of core.
  const index_t n = 96;
  const index_t nrhs = 5;
  la::Matrix a = la::random_diagonally_dominant(n, 27);
  la::Matrix x_true = la::random_uniform(n, nrhs, 28);
  la::Matrix b(n, nrhs);
  blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, n, nrhs, n, 1.0f, a.data(),
             a.ld(), x_true.data(), x_true.ld(), 0.0f, b.data(), b.ld());

  Device dev(test_spec(), ExecutionMode::Real);
  FactorOptions fopts;
  fopts.blocksize = 32;
  fopts.precision = GemmPrecision::FP32;
  fopts.panel_base = 8;
  recursive_ooc_lu(dev, a.view(), fopts);

  ooc::OocGemmOptions topts;
  topts.blocksize = 32;
  topts.precision = GemmPrecision::FP32;
  ooc::ooc_trsm(dev, ooc::TriSolveKind::LowerUnit, a.view(),
                sim::as_const(b.view()), b.view(), topts);
  ooc::ooc_trsm(dev, ooc::TriSolveKind::Upper, a.view(),
                sim::as_const(b.view()), b.view(), topts);
  dev.synchronize();
  EXPECT_LT(la::relative_difference(b.view(), x_true.view()), 1e-4);
}

TEST(OocTrsm, RejectsBadShapesAndNonAliasedBuffers) {
  Device dev(test_spec(), ExecutionMode::Real);
  la::Matrix t = la::random_diagonally_dominant(8, 1);
  la::Matrix b = la::random_uniform(8, 4, 2);
  la::Matrix other = la::random_uniform(8, 4, 3);
  ooc::OocGemmOptions opts;
  opts.blocksize = 4;
  EXPECT_THROW(ooc::ooc_trsm(dev, ooc::TriSolveKind::LowerUnit,
                             la::ConstMatrixView(t.data(), 8, 7, 8),
                             sim::as_const(b.view()), b.view(), opts),
               InvalidArgument);
  EXPECT_THROW(ooc::ooc_trsm(dev, ooc::TriSolveKind::LowerUnit, t.view(),
                             sim::as_const(other.view()), b.view(), opts),
               InvalidArgument);
}

// --- Out-of-core LU ----------------------------------------------------------

class OocLuTest : public ::testing::TestWithParam<
                      std::tuple<bool /*recursive*/,
                                 std::tuple<index_t, index_t>, index_t>> {};

TEST_P(OocLuTest, FactorsCorrectly) {
  const auto [recursive, shape, bs] = GetParam();
  const auto [m, n] = shape;
  la::Matrix a = la::random_uniform(m, n, 41);
  for (index_t j = 0; j < n; ++j) a(j, j) += static_cast<float>(n) + 2.0f;
  la::Matrix original = la::materialize(a.view());

  Device dev(test_spec(), ExecutionMode::Real);
  FactorOptions opts;
  opts.blocksize = bs;
  opts.precision = GemmPrecision::FP32;
  opts.panel_base = 8;
  const FactorStats stats = recursive ? recursive_ooc_lu(dev, a.view(), opts)
                                      : blocking_ooc_lu(dev, a.view(), opts);
  EXPECT_LT(lu_residual(original.view(), a.view()), 1e-4)
      << "recursive=" << recursive << " bs=" << bs;
  EXPECT_GT(stats.total_seconds, 0.0);
  EXPECT_GT(stats.panels, 0);
  EXPECT_EQ(dev.live_allocations(), 0);
  EXPECT_LE(dev.memory_peak(), dev.memory_capacity());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OocLuTest,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(std::tuple<index_t, index_t>{48, 48},
                                         std::tuple<index_t, index_t>{100, 64},
                                         std::tuple<index_t, index_t>{96, 33}),
                       ::testing::Values<index_t>(16, 32)));

TEST(OocLu, MatchesIncoreFactorization) {
  la::Matrix a = la::random_diagonally_dominant(96, 51);
  la::Matrix incore = la::materialize(a.view());
  lu_nopiv_recursive(incore.view(), 8);

  Device dev(test_spec(), ExecutionMode::Real);
  FactorOptions opts;
  opts.blocksize = 32;
  opts.precision = GemmPrecision::FP32;
  opts.panel_base = 8;
  la::Matrix ooc_a = la::materialize(a.view());
  recursive_ooc_lu(dev, ooc_a.view(), opts);
  EXPECT_LT(la::relative_difference(ooc_a.view(), incore.view()), 1e-4);
}

TEST(OocLu, OverlapOffIsSlowerNotDifferent) {
  la::Matrix a = la::random_diagonally_dominant(80, 52);
  const auto run = [&](bool overlap) {
    Device dev(test_spec(), ExecutionMode::Real);
    FactorOptions opts;
    opts.blocksize = 16;
    opts.precision = GemmPrecision::FP32;
    opts.panel_base = 8;
    opts.overlap = overlap;
    la::Matrix work = la::materialize(a.view());
    const FactorStats stats = blocking_ooc_lu(dev, work.view(), opts);
    return std::make_pair(stats.total_seconds, std::move(work));
  };
  auto [t_on, m_on] = run(true);
  auto [t_off, m_off] = run(false);
  EXPECT_LE(t_on, t_off);
  EXPECT_EQ(la::relative_difference(m_on.view(), m_off.view()), 0.0);
}

// --- Out-of-core Cholesky -----------------------------------------------------

class OocCholeskyTest
    : public ::testing::TestWithParam<std::tuple<bool, index_t, index_t>> {};

TEST_P(OocCholeskyTest, FactorsSpdMatrix) {
  const auto [recursive, n, bs] = GetParam();
  la::Matrix a = la::random_spd(n, 61);
  la::Matrix original = la::materialize(a.view());

  Device dev(test_spec(), ExecutionMode::Real);
  FactorOptions opts;
  opts.blocksize = bs;
  opts.precision = GemmPrecision::FP32;
  opts.panel_base = 8;
  const FactorStats stats = recursive
                                ? recursive_ooc_cholesky(dev, a.view(), opts)
                                : blocking_ooc_cholesky(dev, a.view(), opts);
  EXPECT_LT(cholesky_residual(original.view(), a.view()), 1e-4)
      << "recursive=" << recursive << " n=" << n << " bs=" << bs;
  EXPECT_GT(stats.total_seconds, 0.0);
  EXPECT_EQ(dev.live_allocations(), 0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, OocCholeskyTest,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Values<index_t>(32, 75,
                                                                       128),
                                            ::testing::Values<index_t>(16,
                                                                       32)));

TEST(OocCholesky, MatchesIncoreUpperTriangle) {
  const index_t n = 96;
  la::Matrix a = la::random_spd(n, 62);
  la::Matrix incore = la::materialize(a.view());
  cholesky_recursive(incore.view(), 8);

  Device dev(test_spec(), ExecutionMode::Real);
  FactorOptions opts;
  opts.blocksize = 32;
  opts.precision = GemmPrecision::FP32;
  opts.panel_base = 8;
  la::Matrix ooc_a = la::materialize(a.view());
  recursive_ooc_cholesky(dev, ooc_a.view(), opts);
  // Only the upper triangle is specified.
  double worst = 0.0;
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i <= j; ++i) {
      worst = std::max(worst, std::fabs(static_cast<double>(ooc_a(i, j)) -
                                        static_cast<double>(incore(i, j))));
    }
  }
  EXPECT_LT(worst, 1e-3);
}

TEST(OuterBlocking, UpperTriangleTileFilter) {
  // Symmetric-update mode: only upper-triangle tiles are touched; the
  // upper triangle of the result is exact, movement drops by ~half.
  const index_t n = 96;
  const index_t k = 24;
  la::Matrix a = la::random_uniform(k, n, 81); // used as Aᵀ (Cholesky shape)
  la::Matrix c0 = la::random_uniform(n, n, 82);
  la::Matrix c = la::materialize(c0.view());

  Device dev(test_spec(), ExecutionMode::Real);
  ooc::OocGemmOptions opts;
  opts.blocksize = 32;
  opts.tile_cols = 32;
  opts.precision = GemmPrecision::FP32;
  opts.outer_opa = blas::Op::Trans;
  opts.upper_triangle_tiles_only = true;
  const auto stats = ooc::outer_product_blocking(
      dev, Operand::on_host(a.view()), Operand::on_host(a.view()),
      sim::as_const(c.view()), c.view(), opts);
  dev.synchronize();

  la::Matrix expected = la::materialize(c0.view());
  blas::gemm(blas::Op::Trans, blas::Op::NoTrans, n, n, k, -1.0f, a.data(),
             a.ld(), a.data(), a.ld(), 1.0f, expected.data(), expected.ld());
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i <= j; ++i) {
      EXPECT_NEAR(c(i, j), expected(i, j), 1e-4) << i << "," << j;
    }
  }
  // Strictly-below-diagonal tiles untouched.
  EXPECT_FLOAT_EQ(c(n - 1, 0), c0(n - 1, 0));
  // 3x3 tile grid: 6 upper tiles instead of 9.
  EXPECT_EQ(stats.steps, 6);
}

TEST(OuterRecursive, UpperTrapezoidSlabs) {
  // Trapezoid streaming: each row slab touches only columns at or right of
  // its diagonal block; the strict lower triangle stays untouched.
  const index_t n = 96;
  const index_t k = 20;
  la::Matrix a = la::random_uniform(k, n, 91); // used transposed
  la::Matrix c0 = la::random_uniform(n, n, 92);
  la::Matrix c = la::materialize(c0.view());

  Device dev(test_spec(), ExecutionMode::Real);
  ooc::OocGemmOptions opts;
  opts.blocksize = 32;
  opts.precision = GemmPrecision::FP32;
  opts.outer_opa = blas::Op::Trans;
  opts.upper_trapezoid_slabs = true;
  const auto stats = ooc::outer_product_recursive(
      dev, Operand::on_host(a.view()), Operand::on_host(a.view()),
      sim::as_const(c.view()), c.view(), opts);
  dev.synchronize();

  la::Matrix expected = la::materialize(c0.view());
  blas::gemm(blas::Op::Trans, blas::Op::NoTrans, n, n, k, -1.0f, a.data(),
             a.ld(), a.data(), a.ld(), 1.0f, expected.data(), expected.ld());
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i <= j; ++i) {
      EXPECT_NEAR(c(i, j), expected(i, j), 1e-4) << i << "," << j;
    }
  }
  EXPECT_FLOAT_EQ(c(n - 1, 0), c0(n - 1, 0)); // lower triangle untouched
  // C traffic is the trapezoid ((96+64+32)*32 columns-by-rows), not n^2.
  const bytes_t trapezoid = (96 + 64 + 32) * 32 * 4;
  EXPECT_EQ(stats.summary.bytes_d2h, trapezoid);
  // Rectangular C must be rejected in this mode.
  la::Matrix rect(n, n + 8);
  EXPECT_THROW(ooc::outer_product_recursive(
                   dev, Operand::on_host(a.view()),
                   Operand::on_host(sim::HostConstRef::phantom(k, n + 8)),
                   sim::as_const(rect.view()), rect.view(), opts),
               InvalidArgument);
}

TEST(OocCholesky, TriangularFilterReducesBlockingMovement) {
  const auto run_bytes = [&](bool filter_expected) {
    sim::Device dev(sim::DeviceSpec::v100_32gb(), ExecutionMode::Phantom);
    dev.model().install_paper_calibration();
    auto a = sim::HostMutRef::phantom(65536, 65536);
    FactorOptions opts;
    opts.blocksize = 8192;
    const FactorStats stats = blocking_ooc_cholesky(dev, a, opts);
    (void)filter_expected;
    return stats;
  };
  const FactorStats stats = run_bytes(true);
  // Full-square updates would stream the whole trailing square in+out
  // (~2x the triangle); with the filter the H2D volume stays below what a
  // full-square schedule would need.
  const double full_square_lower_bound = 7.0 * 65536.0 * 65536.0 * 4.0;
  EXPECT_LT(static_cast<double>(stats.bytes_h2d), full_square_lower_bound);
}

TEST(OocFactor, PhantomScaleRecursiveBeatsBlocking) {
  // The §6 claim, measured: at paper scale and small memory, the recursive
  // LU/Cholesky drivers beat the blocking ones thanks to their larger,
  // better-overlapped trailing updates.
  const auto run = [&](bool recursive, bool cholesky) {
    sim::Device dev(sim::DeviceSpec::v100_16gb(), ExecutionMode::Phantom);
    dev.model().install_paper_calibration();
    auto a = sim::HostMutRef::phantom(65536, 65536);
    FactorOptions opts;
    opts.blocksize = 8192;
    if (!recursive) opts.staging_buffer = false; // conventional baseline
    const FactorStats stats =
        cholesky ? (recursive ? recursive_ooc_cholesky(dev, a, opts)
                              : blocking_ooc_cholesky(dev, a, opts))
                 : (recursive ? recursive_ooc_lu(dev, a, opts)
                              : blocking_ooc_lu(dev, a, opts));
    EXPECT_LE(dev.memory_peak(), dev.memory_capacity());
    return stats.total_seconds;
  };
  const double lu_speedup = run(false, false) / run(true, false);
  EXPECT_GT(lu_speedup, 1.1);
  const double chol_speedup = run(false, true) / run(true, true);
  EXPECT_GT(chol_speedup, 1.1);
}

} // namespace
} // namespace rocqr::lu
