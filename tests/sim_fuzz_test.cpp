// Schedule fuzzing: random operation sequences with random stream and event
// wiring, checked against the simulator's fundamental invariants. Runs many
// seeds; any violation pins a scheduling bug no hand-written case found.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "blas/gemm.hpp"
#include "common/rng.hpp"
#include "sim/device.hpp"

namespace rocqr::sim {
namespace {

struct FuzzOutcome {
  std::vector<TraceEvent> events;
  sim_time_t final_makespan = 0;
};

FuzzOutcome run_random_schedule(std::uint64_t seed) {
  Rng rng(seed);
  DeviceSpec spec = DeviceSpec::v100_32gb();
  spec.memory_capacity = 512LL << 20;
  Device dev(spec, ExecutionMode::Phantom);

  const int n_streams = 2 + static_cast<int>(rng.below(4));
  std::vector<Stream> streams;
  for (int i = 0; i < n_streams; ++i) streams.push_back(dev.create_stream());

  std::vector<DeviceMatrix> mats;
  for (int i = 0; i < 4; ++i) {
    const index_t dim = 256 << rng.below(3);
    mats.push_back(dev.allocate(dim, dim));
  }
  std::vector<Event> recorded;

  const int ops = 60 + static_cast<int>(rng.below(60));
  for (int i = 0; i < ops; ++i) {
    Stream s = streams[static_cast<size_t>(rng.below(n_streams))];
    DeviceMatrix& m = mats[static_cast<size_t>(rng.below(4))];
    switch (rng.below(7)) {
      case 0:
        dev.copy_h2d(m, HostConstRef::phantom(m.rows(), m.cols()), s);
        break;
      case 1: {
        auto out = HostMutRef::phantom(m.rows(), m.cols());
        dev.copy_d2h(out, m, s);
        break;
      }
      case 2: {
        DeviceMatrix& src = mats[static_cast<size_t>(rng.below(4))];
        if (src.rows() == m.rows() && src.cols() == m.cols() &&
            src.id() != m.id()) {
          dev.copy_d2d(m, src, s);
        }
        break;
      }
      case 3:
        dev.gemm(blas::Op::NoTrans, blas::Op::NoTrans, 1.0f, m, m, 0.0f, m,
                 blas::GemmPrecision::FP16_FP32, s);
        break;
      case 4: {
        Event e = dev.create_event();
        dev.record_event(e, s);
        recorded.push_back(e);
        break;
      }
      case 5:
        if (!recorded.empty()) {
          dev.wait_event(
              s, recorded[static_cast<size_t>(rng.below(
                     static_cast<index_t>(recorded.size())))]);
        }
        break;
      case 6:
        if (rng.below(4) == 0) dev.synchronize(s);
        break;
    }
  }
  dev.synchronize();
  return FuzzOutcome{dev.trace().events(), dev.makespan()};
}

TEST(SimFuzz, InvariantsHoldAcrossRandomSchedules) {
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    const FuzzOutcome out = run_random_schedule(seed);

    // 1. Per-engine intervals never overlap.
    std::map<Resource, std::vector<std::pair<sim_time_t, sim_time_t>>> lanes;
    for (const auto& e : out.events) {
      EXPECT_GE(e.end, e.start) << "seed " << seed;
      lanes[e.resource].push_back({e.start, e.end});
    }
    for (auto& [res, iv] : lanes) {
      std::sort(iv.begin(), iv.end());
      for (size_t i = 1; i < iv.size(); ++i) {
        ASSERT_GE(iv[i].first, iv[i - 1].second)
            << "engine " << to_string(res) << " double-booked, seed " << seed;
      }
    }

    // 2. Program order per stream: ops on one stream never run out of order.
    std::map<int, sim_time_t> stream_clock;
    for (const auto& e : out.events) {
      auto [it, inserted] = stream_clock.try_emplace(e.stream, e.end);
      if (!inserted) {
        ASSERT_GE(e.start, it->second - 1e-12)
            << "stream " << e.stream << " reordered, seed " << seed;
        it->second = e.end;
      }
    }

    // 3. Makespan equals the latest event end.
    sim_time_t latest = 0;
    for (const auto& e : out.events) latest = std::max(latest, e.end);
    EXPECT_DOUBLE_EQ(out.final_makespan, latest) << "seed " << seed;
  }
}

TEST(SimFuzz, SchedulesAreDeterministic) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const FuzzOutcome a = run_random_schedule(seed);
    const FuzzOutcome b = run_random_schedule(seed);
    ASSERT_EQ(a.events.size(), b.events.size());
    for (size_t i = 0; i < a.events.size(); ++i) {
      EXPECT_DOUBLE_EQ(a.events[i].start, b.events[i].start);
      EXPECT_DOUBLE_EQ(a.events[i].end, b.events[i].end);
    }
  }
}

} // namespace
} // namespace rocqr::sim
