// Fleet failover in the QR service (docs/SERVING.md "Fleet failover & load
// shedding"): a fatal fault kills a device permanently, the scheduler
// declares it dead and migrates its jobs from their latest checkpoints onto
// the survivors, a TSQR gang re-plans on the shrunken fleet bit-identically,
// the simulated-clock watchdog catches hangs without a thrown error, and
// deadline jobs that no longer fit the surviving capacity are load-shed
// (JobState::Shed) instead of failed.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "la/generate.hpp"
#include "la/norms.hpp"
#include "leak_check.hpp"
#include "qr/factorize.hpp"
#include "qr/incore.hpp"
#include "serve/scheduler.hpp"
#include "sim/device.hpp"

namespace rocqr {
namespace {

using serve::AdmissionDecision;
using serve::FleetReport;
using serve::JobReport;
using serve::JobSpec;
using serve::JobState;
using serve::Scheduler;
using serve::ServeConfig;
using sim::Device;
using sim::ExecutionMode;

bool bitwise_equal(const la::Matrix& x, const la::Matrix& y) {
  for (index_t j = 0; j < x.cols(); ++j) {
    for (index_t i = 0; i < x.rows(); ++i) {
      if (x(i, j) != y(i, j)) return false;
    }
  }
  return true;
}

qr::QrOptions real_base(index_t blocksize) {
  qr::QrOptions opts;
  opts.blocksize = blocksize;
  opts.panel_base = 8;
  opts.precision = blas::GemmPrecision::FP32;
  return opts;
}

TEST(ServeFailover, GangSurvivesHardDeviceLossBitIdentical) {
  // The acceptance scenario: 1 of 4 Real devices dies mid-TSQR on a fatal
  // compute fault. m = 3n gives 3 leaves whether planned on 4 devices or on
  // the 3 survivors, so the migrated gang must reproduce a clean 3-device
  // run bit for bit (numerics depend on the leaf partition, never on the
  // device mapping).
  constexpr index_t kM = 144;
  constexpr index_t kN = 48;
  constexpr index_t kB = 24;

  ServeConfig cfg;
  cfg.devices = 4;
  cfg.mode = ExecutionMode::Real;
  cfg.device_faults = {"", "compute:fatal:after=1", "", ""};
  Scheduler sched(cfg);

  la::Matrix gang_a = la::random_normal(kM, kN, 81);
  la::Matrix gang_a0 = la::materialize(gang_a.view());
  la::Matrix gang_r(kN, kN);
  JobSpec gang;
  gang.name = "gang";
  gang.algorithm = "tsqr";
  gang.m = kM;
  gang.n = kN;
  gang.blocksize = kB;
  gang.precision = blas::GemmPrecision::FP32;
  gang.options = real_base(kB);
  gang.a = gang_a.view();
  gang.r = gang_r.view();
  const AdmissionDecision d = sched.submit(gang);
  ASSERT_TRUE(d.admitted) << d.reason;

  const FleetReport rep = sched.run();
  const JobReport& j = rep.jobs.at(static_cast<size_t>(d.job_id));
  ASSERT_EQ(j.state, JobState::Completed) << j.failure;
  EXPECT_EQ(rep.devices_lost, 1);
  EXPECT_GE(rep.jobs_migrated, 1);
  EXPECT_GE(j.migrations, 1);
  EXPECT_EQ(j.retries, 0); // migration is not charged as a retry
  EXPECT_EQ(rep.jobs_failed, 0);
  EXPECT_EQ(rep.jobs_shed, 0);
  ASSERT_EQ(rep.device_health.size(), 4u);
  EXPECT_EQ(rep.device_health[1], "dead");
  EXPECT_EQ(rep.device_health[0], "healthy");
  EXPECT_EQ(rep.device_health[2], "healthy");
  EXPECT_EQ(rep.device_health[3], "healthy");

  // Clean 3-device reference at the same 3-leaf layout.
  la::Matrix q_ref = la::materialize(gang_a0.view());
  la::Matrix r_ref(kN, kN);
  std::vector<std::unique_ptr<Device>> fleet;
  std::vector<Device*> ptrs;
  for (int i = 0; i < 3; ++i) {
    fleet.push_back(std::make_unique<Device>(cfg.spec, ExecutionMode::Real));
    fleet.back()->model().install_paper_calibration();
    ptrs.push_back(fleet.back().get());
  }
  qr::factorize(qr::QrProblem{ptrs, q_ref.view(), r_ref.view(),
                              qr::Algorithm::Tsqr, real_base(kB)});
  EXPECT_TRUE(bitwise_equal(gang_r, r_ref));
  EXPECT_TRUE(bitwise_equal(gang_a, q_ref));

  // The dead device's RAII unwind must not leak (free stays usable after a
  // fatal fault); the survivors drained naturally.
  for (const auto& dev : sched.devices()) {
    EXPECT_EQ(dev->live_allocations(), 0u);
  }
}

TEST(ServeFailover, SoloJobsMigrateOffDeadDevice) {
  constexpr index_t kM = 96;
  constexpr index_t kN = 72;
  constexpr index_t kB = 24;
  constexpr int kJobs = 4;

  ServeConfig cfg;
  cfg.devices = 2;
  cfg.mode = ExecutionMode::Real;
  // A 96x72 Real-mode attempt stages its input in a single H2D op, so
  // after=1 kills device 0 at the upload of the *second* job it touches.
  cfg.device_faults = {"h2d:fatal:after=1", ""};
  Scheduler sched(cfg);

  std::vector<la::Matrix> as;
  std::vector<la::Matrix> rs;
  as.reserve(kJobs);
  rs.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    as.push_back(la::random_normal(kM, kN, 900 + i));
    rs.emplace_back(kN, kN);
    JobSpec job;
    job.name = "solo" + std::to_string(i);
    job.m = kM;
    job.n = kN;
    job.blocksize = kB;
    job.precision = blas::GemmPrecision::FP32;
    job.options = real_base(kB);
    job.a = as.back().view();
    job.r = rs.back().view();
    ASSERT_TRUE(sched.submit(job).admitted);
  }

  const FleetReport rep = sched.run();
  EXPECT_EQ(rep.jobs_completed, kJobs);
  EXPECT_EQ(rep.jobs_failed, 0);
  EXPECT_EQ(rep.devices_lost, 1);
  EXPECT_GE(rep.jobs_migrated, 1);
  ASSERT_EQ(rep.device_health.size(), 2u);
  EXPECT_EQ(rep.device_health[0], "dead");
  EXPECT_EQ(rep.device_health[1], "healthy");

  int migrated_jobs = 0;
  for (const JobReport& j : rep.jobs) {
    EXPECT_EQ(j.state, JobState::Completed) << j.name << ": " << j.failure;
    if (j.migrations > 0) {
      ++migrated_jobs;
      // Device loss is not the job's fault: no retry budget consumed.
      EXPECT_EQ(j.retries, 0) << j.name;
    }
  }
  EXPECT_GE(migrated_jobs, 1);

  // Checkpoint-driven migration resumes bit-identically, so every output
  // matches an uninterrupted solo run on a clean device.
  for (int i = 0; i < kJobs; ++i) {
    la::Matrix q_ref = la::random_normal(kM, kN, 900 + i);
    la::Matrix r_ref(kN, kN);
    Device solo(cfg.spec, ExecutionMode::Real);
    solo.model().install_paper_calibration();
    qr::factorize(qr::QrProblem{{&solo}, q_ref.view(), r_ref.view(),
                                qr::Algorithm::Recursive, real_base(kB)});
    EXPECT_TRUE(bitwise_equal(as[static_cast<size_t>(i)], q_ref)) << i;
    EXPECT_TRUE(bitwise_equal(rs[static_cast<size_t>(i)], r_ref)) << i;
  }

  for (const auto& dev : sched.devices()) {
    EXPECT_EQ(dev->live_allocations(), 0u);
  }
}

TEST(ServeFailover, WatchdogStrandsFleetWhenEveryDeviceHangs) {
  // A watchdog timeout below any realistic op duration trips at the first
  // checkpoint of every attempt — no error is ever *thrown*, the devices
  // are declared dead purely on the simulated-clock scan. With the whole
  // fleet gone the outstanding jobs must fail, not hang.
  ServeConfig cfg;
  cfg.devices = 2;
  cfg.watchdog_timeout = 1e-12;
  cfg.device_failure_threshold = 1;
  Scheduler sched(cfg);

  for (int i = 0; i < 2; ++i) {
    JobSpec job;
    job.name = "hung" + std::to_string(i);
    job.m = job.n = 32768;
    job.blocksize = 8192;
    ASSERT_TRUE(sched.submit(job).admitted);
  }

  const FleetReport rep = sched.run();
  EXPECT_EQ(rep.devices_lost, 2);
  EXPECT_EQ(rep.jobs_completed, 0);
  EXPECT_EQ(rep.jobs_failed, 2);
  for (const std::string& h : rep.device_health) EXPECT_EQ(h, "dead");
  for (const JobReport& j : rep.jobs) {
    EXPECT_EQ(j.state, JobState::Failed) << j.name;
    EXPECT_FALSE(j.failure.empty()) << j.name;
  }
}

TEST(ServeFailover, SuspectDeviceRecoversOnSuccess) {
  // One watchdog strike below the threshold marks the device Suspect; a
  // later clean attempt on it must clear the strike back to Healthy and
  // the fleet completes everything without losing a device.
  ServeConfig cfg;
  cfg.devices = 1;
  cfg.mode = ExecutionMode::Real;
  // A single transient H2D fault with no in-driver retries: the first
  // attempt fails at its one staging upload (one strike), the scheduler
  // retries from the pristine unit-0 checkpoint and succeeds.
  cfg.device_faults = {"h2d:transient:op=1"};
  Scheduler sched(cfg);

  la::Matrix a = la::random_normal(96, 72, 55);
  la::Matrix r(72, 72);
  JobSpec job;
  job.name = "flaky";
  job.m = 96;
  job.n = 72;
  job.blocksize = 24;
  job.precision = blas::GemmPrecision::FP32;
  job.options = real_base(24);
  job.options.transfer_max_attempts = 1;
  job.a = a.view();
  job.r = r.view();
  ASSERT_TRUE(sched.submit(job).admitted);

  const FleetReport rep = sched.run();
  EXPECT_EQ(rep.jobs_completed, 1);
  EXPECT_EQ(rep.devices_lost, 0);
  EXPECT_EQ(rep.jobs_migrated, 0);
  EXPECT_GE(rep.job_retries, 1);
  ASSERT_EQ(rep.device_health.size(), 1u);
  EXPECT_EQ(rep.device_health[0], "healthy");
}

TEST(ServeFailover, DeadlineGangIsShedAfterFleetShrink) {
  // Phantom gang with a deadline that fits the 4-device quote but not the
  // 3-device one: when a device dies mid-run, the re-quote against the
  // survivors can no longer make the deadline and the job is load-shed —
  // a distinct terminal state, not a failure.
  JobSpec gang;
  gang.name = "deadline-gang";
  gang.algorithm = "tsqr";
  gang.m = 262144;
  gang.n = 8192;
  gang.blocksize = 8192;

  double quote[2] = {0, 0}; // [0] = 4 devices, [1] = 3 devices
  for (int probe = 0; probe < 2; ++probe) {
    ServeConfig pcfg;
    pcfg.devices = 4 - probe;
    Scheduler psched(pcfg);
    const AdmissionDecision pd = psched.submit(gang);
    ASSERT_TRUE(pd.admitted) << pd.reason;
    quote[probe] = pd.predicted_seconds;
  }
  ASSERT_GT(quote[1], quote[0]); // fewer devices -> slower gang

  ServeConfig cfg;
  cfg.devices = 4;
  cfg.device_faults = {"compute:fatal:after=5", "", "", ""};
  Scheduler sched(cfg);
  gang.deadline_seconds = 0.5 * (quote[0] + quote[1]);
  const AdmissionDecision d = sched.submit(gang);
  ASSERT_TRUE(d.admitted) << d.reason;

  const FleetReport rep = sched.run();
  const JobReport& j = rep.jobs.at(static_cast<size_t>(d.job_id));
  EXPECT_EQ(j.state, JobState::Shed) << j.failure;
  EXPECT_NE(j.failure.find("load-shed"), std::string::npos) << j.failure;
  EXPECT_EQ(rep.jobs_shed, 1);
  EXPECT_EQ(rep.jobs_failed, 0);
  EXPECT_EQ(rep.jobs_completed, 0);
  EXPECT_EQ(rep.devices_lost, 1);
  EXPECT_EQ(rep.device_health[0], "dead");
}

} // namespace
} // namespace rocqr
