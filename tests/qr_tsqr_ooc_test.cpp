// Fleet-wide out-of-core TSQR (qr::tsqr_ooc_qr): numerical agreement with
// the in-core references, the single-device degenerate case, odd fleets
// (pass-through nodes), the fleet-memory capacity unlock (a matrix bigger
// than any one device's budget), the multi-device speedup over the
// single-device recursive driver, and leaf-granular kill-and-resume that
// reproduces the uninterrupted result bit for bit.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "leak_check.hpp"
#include "qr/checkpoint.hpp"
#include "qr/factorize.hpp"
#include "qr/incore.hpp"
#include "qr/tsqr_ooc.hpp"
#include "sim/device.hpp"
#include "sim/faults.hpp"

namespace rocqr {
namespace {

using sim::Device;
using sim::ExecutionMode;
using sim::FaultPlan;

sim::DeviceSpec small_spec(bytes_t capacity) {
  sim::DeviceSpec s = sim::DeviceSpec::v100_32gb();
  s.memory_capacity = capacity;
  return s;
}

struct Fleet {
  std::vector<std::unique_ptr<Device>> owned;
  std::vector<Device*> ptrs;
};

Fleet make_fleet(int n, const sim::DeviceSpec& spec, ExecutionMode mode,
                 bool shared_link = false) {
  Fleet f;
  auto link = shared_link ? std::make_shared<sim::SharedHostLink>()
                          : std::shared_ptr<sim::SharedHostLink>();
  for (int i = 0; i < n; ++i) {
    f.owned.push_back(std::make_unique<Device>(spec, mode, link));
    f.ptrs.push_back(f.owned.back().get());
  }
  return f;
}

bool bitwise_equal(const la::Matrix& x, const la::Matrix& y) {
  for (index_t j = 0; j < x.cols(); ++j) {
    for (index_t i = 0; i < x.rows(); ++i) {
      if (x(i, j) != y(i, j)) return false;
    }
  }
  return true;
}

qr::QrOptions base_options() {
  qr::QrOptions opts;
  opts.blocksize = 24;
  opts.panel_base = 8;
  opts.precision = blas::GemmPrecision::FP32;
  return opts;
}

TEST(TsqrOoc, MatchesHouseholderReference) {
  // 4 Real devices, 4 leaves: leaf CGS factorizations, two reduction
  // levels, full coefficient reconstruction. Both tsqr_ooc_qr and the
  // references pin diag(R) > 0, so Q and R are comparable directly.
  const index_t m = 512;
  const index_t n = 32;
  la::Matrix a0 = la::random_normal(m, n, 11);
  la::Matrix q = la::materialize(a0.view());
  la::Matrix r(n, n);
  Fleet fleet = make_fleet(4, small_spec(64LL << 20), ExecutionMode::Real);
  const qr::QrStats stats =
      qr::factorize(qr::QrProblem{
          fleet.ptrs, q.view(), r.view(), qr::Algorithm::Tsqr, base_options()});
  EXPECT_GT(stats.events, 0);

  const qr::QrFactors ref = qr::householder(a0.view());
  EXPECT_LT(la::relative_difference(r.view(), ref.r.view()), 1e-4);
  EXPECT_LT(la::relative_difference(q.view(), ref.q.view()), 1e-4);
  EXPECT_LT(la::qr_residual(a0.view(), q.view(), r.view()), 1e-5);
  EXPECT_LT(la::orthogonality_error(q.view()), 1e-4);
  for (index_t j = 0; j < n; ++j) EXPECT_GT(r(j, j), 0.0f) << j;

  // And against the in-core tsqr with the same 4-leaf partition.
  const qr::QrFactors incore = qr::tsqr(a0.view(), m / 4);
  EXPECT_LT(la::relative_difference(r.view(), incore.r.view()), 1e-4);
  EXPECT_LT(la::relative_difference(q.view(), incore.q.view()), 1e-4);
}

TEST(TsqrOoc, SingleDeviceDegeneratesToRecursiveDriver) {
  // One device -> one leaf -> no tree, no reconstruction: bit-identical to
  // running the recursive OOC driver directly.
  const index_t m = 128;
  const index_t n = 48;
  la::Matrix a0 = la::random_normal(m, n, 13);
  const qr::QrOptions opts = base_options();

  la::Matrix q1 = la::materialize(a0.view());
  la::Matrix r1(n, n);
  Fleet fleet = make_fleet(1, small_spec(64LL << 20), ExecutionMode::Real);
  qr::factorize(qr::QrProblem{
      fleet.ptrs, q1.view(), r1.view(), qr::Algorithm::Tsqr, opts});

  la::Matrix q2 = la::materialize(a0.view());
  la::Matrix r2(n, n);
  Device solo(small_spec(64LL << 20), ExecutionMode::Real);
  qr::factorize(qr::QrProblem{
      {&solo}, q2.view(), r2.view(), qr::Algorithm::Recursive, opts});

  EXPECT_TRUE(bitwise_equal(q1, q2));
  EXPECT_TRUE(bitwise_equal(r1, r2));
}

TEST(TsqrOoc, OddFleetExercisesPassThroughNodes) {
  // 3 devices -> 3 leaves: level 0 merges one pair and passes the third
  // leaf through; its coefficient must flow back down unchanged.
  const index_t m = 360;
  const index_t n = 24;
  la::Matrix a0 = la::random_normal(m, n, 17);
  la::Matrix q = la::materialize(a0.view());
  la::Matrix r(n, n);
  Fleet fleet = make_fleet(3, small_spec(64LL << 20), ExecutionMode::Real);
  qr::factorize(qr::QrProblem{
      fleet.ptrs, q.view(), r.view(), qr::Algorithm::Tsqr, base_options()});

  const qr::QrFactors ref = qr::householder(a0.view());
  EXPECT_LT(la::relative_difference(r.view(), ref.r.view()), 1e-4);
  EXPECT_LT(la::relative_difference(q.view(), ref.q.view()), 1e-4);
  EXPECT_LT(la::qr_residual(a0.view(), q.view(), r.view()), 1e-5);
}

TEST(TsqrOoc, ShortFleetUsesFewerLeavesThanDevices) {
  // m/n = 2 < 4 devices: only 2 leaves run (each must keep >= n rows);
  // the result is still a valid factorization.
  const index_t m = 64;
  const index_t n = 32;
  EXPECT_EQ(qr::detail::tsqr_leaf_count(m, n, 4), 2);
  la::Matrix a0 = la::random_normal(m, n, 19);
  la::Matrix q = la::materialize(a0.view());
  la::Matrix r(n, n);
  Fleet fleet = make_fleet(4, small_spec(64LL << 20), ExecutionMode::Real);
  qr::QrOptions opts = base_options();
  opts.blocksize = 16;
  qr::factorize(
      qr::QrProblem{fleet.ptrs, q.view(), r.view(), qr::Algorithm::Tsqr, opts});
  EXPECT_LT(la::qr_residual(a0.view(), q.view(), r.view()), 1e-5);
  EXPECT_LT(la::orthogonality_error(q.view()), 1e-4);
}

TEST(TsqrOoc, FourDevicesFactorMatrixExceedingOneDeviceBudget) {
  // The capacity unlock: A is 384 KiB against a 256 KiB device budget —
  // no single device could even hold the matrix — but each of the 4 row
  // blocks streams within its own device's memory.
  const index_t m = 2048;
  const index_t n = 48;
  const bytes_t capacity = 256LL << 10;
  ASSERT_GT(static_cast<bytes_t>(m) * n * sizeof(float), capacity);

  la::Matrix a0 = la::random_normal(m, n, 23);
  la::Matrix q = la::materialize(a0.view());
  la::Matrix r(n, n);
  Fleet fleet = make_fleet(4, small_spec(capacity), ExecutionMode::Real);
  qr::QrOptions opts = base_options();
  opts.blocksize = 16;
  const qr::QrStats stats =
      qr::factorize(qr::QrProblem{
          fleet.ptrs, q.view(), r.view(), qr::Algorithm::Tsqr, opts});
  EXPECT_LE(stats.peak_device_bytes, capacity);

  const qr::QrFactors ref = qr::householder(a0.view());
  EXPECT_LT(la::relative_difference(r.view(), ref.r.view()), 1e-3);
  EXPECT_LT(la::qr_residual(a0.view(), q.view(), r.view()), 1e-5);
  EXPECT_LT(la::orthogonality_error(q.view()), 1e-4);
}

TEST(TsqrOoc, FourDeviceMakespanBeatsSingleDeviceRecursive) {
  // Paper-scale phantom comparison: splitting the tall matrix over 4
  // devices must beat one device running the recursive driver on the whole
  // thing, despite the reduction tree and the extra Q-reconstruction GEMMs.
  const index_t m = 131072;
  const index_t n = 4096;
  qr::QrOptions opts;
  opts.blocksize = 4096;
  auto a = sim::HostMutRef::phantom(m, n);
  auto r = sim::HostMutRef::phantom(n, n);

  Fleet fleet =
      make_fleet(4, sim::DeviceSpec::v100_32gb(), ExecutionMode::Phantom);
  for (Device* dev : fleet.ptrs) dev->model().install_paper_calibration();
  const qr::QrStats fleet_stats = qr::factorize(
      qr::QrProblem{fleet.ptrs, a, r, qr::Algorithm::Tsqr, opts});

  Device solo(sim::DeviceSpec::v100_32gb(), ExecutionMode::Phantom);
  solo.model().install_paper_calibration();
  const qr::QrStats solo_stats = qr::factorize(
      qr::QrProblem{{&solo}, a, r, qr::Algorithm::Recursive, opts});

  EXPECT_GT(fleet_stats.total_seconds, 0);
  EXPECT_LT(fleet_stats.total_seconds, solo_stats.total_seconds);
}

TEST(TsqrOoc, SharedLinkCostsMoreThanPrivateLinks) {
  const index_t m = 131072;
  const index_t n = 4096;
  qr::QrOptions opts;
  opts.blocksize = 4096;
  auto a = sim::HostMutRef::phantom(m, n);
  auto r = sim::HostMutRef::phantom(n, n);

  double seconds[2] = {0, 0};
  for (int shared = 0; shared < 2; ++shared) {
    Fleet fleet = make_fleet(4, sim::DeviceSpec::v100_32gb(),
                             ExecutionMode::Phantom, shared == 1);
    for (Device* dev : fleet.ptrs) dev->model().install_paper_calibration();
    seconds[shared] = qr::factorize(qr::QrProblem{
        fleet.ptrs, a, r, qr::Algorithm::Tsqr, opts}).total_seconds;
  }
  EXPECT_GT(seconds[1], seconds[0]);
}

TEST(TsqrOoc, RejectsBadShapes) {
  Fleet fleet = make_fleet(2, small_spec(64LL << 20), ExecutionMode::Phantom);
  auto wide = sim::HostMutRef::phantom(4, 8);
  auto r8 = sim::HostMutRef::phantom(8, 8);
  EXPECT_THROW(qr::factorize(
      qr::QrProblem{fleet.ptrs, wide, r8, qr::Algorithm::Tsqr, base_options()}),
               InvalidArgument);
  auto a = sim::HostMutRef::phantom(64, 8);
  auto bad_r = sim::HostMutRef::phantom(4, 8);
  EXPECT_THROW(qr::factorize(
      qr::QrProblem{fleet.ptrs, a, bad_r, qr::Algorithm::Tsqr, base_options()}),
               InvalidArgument);
  EXPECT_THROW(
      qr::factorize(qr::QrProblem{
          std::vector<Device*>{}, a, r8, qr::Algorithm::Tsqr, base_options()}),
      InvalidArgument);
}

/// Kills the fleet run at every H2D operation on device `fault_dev` that
/// leaves a checkpoint behind, resumes each on a fresh fleet, and requires
/// the resumed factorization to match the uninterrupted one bit for bit.
int kill_and_resume_sweep(int devices, int fault_dev, index_t m, index_t n,
                          const qr::QrOptions& opts) {
  la::Matrix a0 = la::random_normal(m, n, 31);

  la::Matrix q_ref = la::materialize(a0.view());
  la::Matrix r_ref(n, n);
  Fleet ref_fleet =
      make_fleet(devices, small_spec(64LL << 20), ExecutionMode::Real);
  ref_fleet.ptrs[static_cast<size_t>(fault_dev)]->install_faults(
      FaultPlan::parse("h2d:transient:p=0"));
  qr::factorize(qr::QrProblem{
      ref_fleet.ptrs, q_ref.view(), r_ref.view(), qr::Algorithm::Tsqr, opts});
  const std::int64_t total_h2d =
      ref_fleet.ptrs[static_cast<size_t>(fault_dev)]
          ->fault_injector()
          ->ops_seen(sim::FaultSite::H2D);
  EXPECT_GT(total_h2d, 2);

  int resumed = 0;
  for (std::int64_t kill = 2; kill < total_h2d; ++kill) {
    qr::MemoryCheckpointSink sink;
    qr::QrOptions kill_opts = opts;
    kill_opts.checkpoint_sink = &sink;
    kill_opts.checkpoint_every = 1;
    kill_opts.transfer_max_attempts = 1;
    la::Matrix q_killed = la::materialize(a0.view());
    la::Matrix r_killed(n, n);
    Fleet kill_fleet =
        make_fleet(devices, small_spec(64LL << 20), ExecutionMode::Real);
    kill_fleet.ptrs[static_cast<size_t>(fault_dev)]->install_faults(
        FaultPlan::parse("h2d:transient:op=" + std::to_string(kill)));
    EXPECT_THROW(qr::factorize(qr::QrProblem{
        kill_fleet.ptrs, q_killed.view(), r_killed.view(), qr::Algorithm::Tsqr,
        kill_opts}),
                 FaultBudgetExhausted)
        << "kill " << kill;
    if (!sink.has_checkpoint()) continue; // killed before the first leaf
    const qr::Checkpoint& cp = sink.last();
    EXPECT_EQ(cp.driver, "tsqr");
    EXPECT_GT(cp.units_done, 0);

    la::Matrix q_res(m, n);
    la::Matrix r_res(n, n);
    Fleet res_fleet =
        make_fleet(devices, small_spec(64LL << 20), ExecutionMode::Real);
    qr::resume(qr::QrProblem{
        res_fleet.ptrs, q_res.view(), r_res.view(), qr::Algorithm::Recursive,
        opts}, cp);
    EXPECT_TRUE(bitwise_equal(q_res, q_ref)) << "kill " << kill;
    EXPECT_TRUE(bitwise_equal(r_res, r_ref)) << "kill " << kill;
    ++resumed;
  }
  return resumed;
}

TEST(TsqrKillAndResume, LeafCheckpointsResumeBitIdentical) {
  // Kills on device 0 hit leaf 0's factorization, the reduction-tree
  // transfers, and the reconstruction sweep; every checkpoint left behind
  // must resume to the uninterrupted bits.
  EXPECT_GE(kill_and_resume_sweep(4, 0, 384, 48, base_options()), 1);
}

TEST(TsqrKillAndResume, LateLeafKillSkipsCompletedLeaves) {
  // Kills on the last device: the sink then holds checkpoints with several
  // completed leaves, so the resume exercises the skip path (and an odd
  // 3-leaf fleet adds a pass-through node on top).
  EXPECT_GE(kill_and_resume_sweep(3, 2, 288, 48, base_options()), 1);
}

TEST(TsqrKillAndResume, ShrunkFleetResumesBitIdentical) {
  // Hard device loss: a fatal compute fault on device 3 kills the 4-device
  // run with DeviceLost, and the checkpoint left behind resumes on a fleet
  // of only 3 devices. The checkpoint pins the 4-leaf partition, so the
  // dead device's leaves re-host round-robin onto the survivors and the
  // result still matches the uninterrupted 4-device bits.
  const index_t m = 384;
  const index_t n = 48;
  const qr::QrOptions opts = base_options();
  la::Matrix a0 = la::random_normal(m, n, 37);

  la::Matrix q_ref = la::materialize(a0.view());
  la::Matrix r_ref(n, n);
  Fleet ref_fleet =
      make_fleet(4, small_spec(64LL << 20), ExecutionMode::Real);
  qr::factorize(qr::QrProblem{
      ref_fleet.ptrs, q_ref.view(), r_ref.view(), qr::Algorithm::Tsqr, opts});

  qr::MemoryCheckpointSink sink;
  qr::QrOptions kill_opts = opts;
  kill_opts.checkpoint_sink = &sink;
  kill_opts.checkpoint_every = 1;
  la::Matrix q_killed = la::materialize(a0.view());
  la::Matrix r_killed(n, n);
  Fleet kill_fleet =
      make_fleet(4, small_spec(64LL << 20), ExecutionMode::Real);
  kill_fleet.ptrs[3]->install_faults(
      FaultPlan::parse("compute:fatal:after=1"));
  EXPECT_THROW(
      qr::factorize(qr::QrProblem{kill_fleet.ptrs, q_killed.view(),
                                  r_killed.view(), qr::Algorithm::Tsqr,
                                  kill_opts}),
      DeviceLost);
  EXPECT_TRUE(kill_fleet.ptrs[3]->dead());
  ASSERT_TRUE(sink.has_checkpoint());
  const qr::Checkpoint& cp = sink.last();
  EXPECT_EQ(cp.driver, "tsqr");
  EXPECT_EQ(cp.leaves, 4);
  EXPECT_LT(cp.units_done, cp.leaves);

  // The unwind after the fatal fault must not leak device memory: free
  // stays usable on a dead device.
  for (Device* dev : kill_fleet.ptrs) {
    EXPECT_EQ(dev->live_allocations(), 0u);
  }

  la::Matrix q_res(m, n);
  la::Matrix r_res(n, n);
  Fleet res_fleet =
      make_fleet(3, small_spec(64LL << 20), ExecutionMode::Real);
  qr::resume(qr::QrProblem{res_fleet.ptrs, q_res.view(), r_res.view(),
                           qr::Algorithm::Recursive, opts},
             cp);
  EXPECT_TRUE(bitwise_equal(q_res, q_ref));
  EXPECT_TRUE(bitwise_equal(r_res, r_ref));
}

TEST(TsqrCheckpoint, TsqrRoundTripsThroughStream) {
  qr::Checkpoint cp;
  cp.driver = "tsqr";
  cp.m = 8;
  cp.n = 2;
  cp.blocksize = 2;
  cp.columns_done = 0;
  cp.units_done = 2;
  cp.a.resize(16, 1.5f);
  cp.r.resize(12, -2.0f); // 3 leaves * 2x2 stacked workspace
  std::stringstream ss;
  qr::write_checkpoint(ss, cp);
  const qr::Checkpoint back = qr::read_checkpoint(ss);
  EXPECT_EQ(back.driver, "tsqr");
  EXPECT_EQ(back.r, cp.r);

  // An R payload that is not a whole number of n x n slots is rejected.
  qr::Checkpoint bad = cp;
  bad.r.resize(13);
  std::stringstream ss2;
  qr::write_checkpoint(ss2, bad);
  EXPECT_THROW(qr::read_checkpoint(ss2), InvalidArgument);
}

} // namespace
} // namespace rocqr
