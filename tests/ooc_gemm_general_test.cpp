// The general ooc_gemm facade: all transpose combinations, arbitrary
// alpha/beta (including the write-only beta == 0 path), dispatch choices.
#include <gtest/gtest.h>

#include "leak_check.hpp"

#include <tuple>

#include "blas/gemm.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "ooc/ooc_gemm.hpp"
#include "sim/device.hpp"

namespace rocqr::ooc {
namespace {

using blas::GemmPrecision;
using blas::Op;
using sim::Device;
using sim::ExecutionMode;

sim::DeviceSpec test_spec() {
  sim::DeviceSpec s = sim::DeviceSpec::v100_32gb();
  s.memory_capacity = 256LL << 20;
  return s;
}

la::Matrix stored(Op op, index_t rows_op, index_t cols_op,
                  std::uint64_t seed) {
  return op == Op::NoTrans ? la::random_uniform(rows_op, cols_op, seed)
                           : la::random_uniform(cols_op, rows_op, seed);
}

class GeneralOocGemmTest
    : public ::testing::TestWithParam<
          std::tuple<Op, Op, std::tuple<float, float>>> {};

TEST_P(GeneralOocGemmTest, MatchesHostGemm) {
  const auto [opa, opb, scalars] = GetParam();
  const auto [alpha, beta] = scalars;
  const index_t m = 72;
  const index_t n = 56;
  const index_t k = 40;
  la::Matrix a = stored(opa, m, k, 1);
  la::Matrix b = stored(opb, k, n, 2);
  la::Matrix c0 = la::random_uniform(m, n, 3);
  la::Matrix c = la::materialize(c0.view());

  Device dev(test_spec(), ExecutionMode::Real);
  OocGemmOptions opts;
  opts.blocksize = 24;
  opts.precision = GemmPrecision::FP32;
  GemmProblem p;
  p.opa = opa;
  p.opb = opb;
  p.alpha = alpha;
  p.beta = beta;
  p.a = a.view();
  p.b = b.view();
  p.c_in = sim::as_const(c.view());
  p.c_out = c.view();
  const auto stats = ooc_gemm(dev, p, opts);
  dev.synchronize();

  la::Matrix expected = la::materialize(c0.view());
  blas::gemm(opa, opb, m, n, k, alpha, a.data(), a.ld(), b.data(), b.ld(),
             beta, expected.data(), expected.ld());
  EXPECT_LT(la::relative_difference(c.view(), expected.view()), 1e-4);
  EXPECT_EQ(dev.live_allocations(), 0);
  // beta == 0 must not move C in at all.
  const bytes_t c_bytes = m * n * 4;
  if (beta == 0.0f) {
    EXPECT_LT(stats.summary.bytes_h2d,
              c_bytes + (m * k + k * n) * 4 + 1);
  } else {
    EXPECT_GE(stats.summary.bytes_h2d, c_bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GeneralOocGemmTest,
    ::testing::Combine(::testing::Values(Op::NoTrans, Op::Trans),
                       ::testing::Values(Op::NoTrans, Op::Trans),
                       ::testing::Values(std::tuple<float, float>{1.0f, 0.0f},
                                         std::tuple<float, float>{-1.0f, 1.0f},
                                         std::tuple<float, float>{2.5f,
                                                                  -0.5f})));

TEST(GeneralOocGemm, WriteOnlyOutputAcceptsNullCIn) {
  const index_t n = 48;
  la::Matrix a = la::random_uniform(n, n, 4);
  la::Matrix b = la::random_uniform(n, n, 5);
  la::Matrix c(n, n);
  Device dev(test_spec(), ExecutionMode::Real);
  OocGemmOptions opts;
  opts.blocksize = 16;
  opts.precision = GemmPrecision::FP32;
  GemmProblem p;
  p.a = a.view();
  p.b = b.view();
  p.c_out = c.view();
  ooc_gemm(dev, p, opts);
  dev.synchronize();
  la::Matrix expected(n, n);
  blas::gemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0f, a.data(), a.ld(),
             b.data(), b.ld(), 0.0f, expected.data(), expected.ld());
  EXPECT_LT(la::relative_difference(c.view(), expected.view()), 1e-4);
}

GemmProblem phantom_update(index_t m, index_t n, index_t k) {
  GemmProblem p;
  p.alpha = -1.0f;
  p.beta = 1.0f;
  p.a = sim::HostConstRef::phantom(m, k);
  p.b = sim::HostConstRef::phantom(k, n);
  p.c_in = sim::HostConstRef::phantom(m, n);
  p.c_out = sim::HostMutRef::phantom(m, n);
  return p;
}

TEST(GeneralOocGemm, DispatchKeepsSmallerFactorResident) {
  // Tall A (streamed), small B (resident): row-wise path -> C row slabs.
  Device dev(test_spec(), ExecutionMode::Phantom);
  OocGemmOptions opts;
  opts.blocksize = 64;
  const auto tall = ooc_gemm(dev, phantom_update(1024, 96, 64), opts);
  EXPECT_FALSE(tall.output_ready.empty());
  EXPECT_EQ(tall.output_ready.front().cols.width, 96); // full-width row slabs

  // Small A (resident), wide B (streamed): column-wise path -> C col slabs.
  const auto wide = ooc_gemm(dev, phantom_update(96, 1024, 64), opts);
  EXPECT_EQ(wide.output_ready.front().rows.width, 96); // full-height col slabs
}

TEST(GeneralOocGemm, RejectsMismatchedShapes) {
  Device dev(test_spec(), ExecutionMode::Phantom);
  GemmProblem bad_inner;
  bad_inner.a = sim::HostConstRef::phantom(8, 4);
  bad_inner.b = sim::HostConstRef::phantom(5, 8);
  bad_inner.c_out = sim::HostMutRef::phantom(8, 8);
  EXPECT_THROW(ooc_gemm(dev, bad_inner), InvalidArgument);

  GemmProblem bad_c_in = phantom_update(8, 8, 4);
  bad_c_in.alpha = 1.0f;
  bad_c_in.c_in = sim::HostConstRef::phantom(7, 8);
  EXPECT_THROW(ooc_gemm(dev, bad_c_in), InvalidArgument);
}

} // namespace
} // namespace rocqr::ooc
