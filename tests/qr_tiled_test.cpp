// Tiled CGS QR on the TaskGraph executor: numerics against the in-core
// reference, DAG-lookahead schedule assertions, colocated-batch stats
// attribution, and the kill-every-unit bit-identical resume sweep.
#include <gtest/gtest.h>

#include "leak_check.hpp"

#include <string>
#include <vector>

#include "common/error.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "qr/checkpoint.hpp"
#include "qr/factorize.hpp"
#include "qr/tiled_qr.hpp"
#include "sim/device.hpp"
#include "sim/faults.hpp"

namespace rocqr {
namespace {

using sim::Device;
using sim::ExecutionMode;
using sim::FaultPlan;

sim::DeviceSpec test_spec(bytes_t capacity = 512LL << 20) {
  sim::DeviceSpec s = sim::DeviceSpec::v100_32gb();
  s.memory_capacity = capacity;
  return s;
}

qr::QrOptions base_options(index_t blocksize) {
  qr::QrOptions opts;
  opts.blocksize = blocksize;
  opts.panel_base = 8;
  opts.precision = blas::GemmPrecision::FP32;
  return opts;
}

bool bitwise_equal(const la::Matrix& x, const la::Matrix& y) {
  for (index_t j = 0; j < x.cols(); ++j) {
    for (index_t i = 0; i < x.rows(); ++i) {
      if (x(i, j) != y(i, j)) return false;
    }
  }
  return true;
}

struct TiledRun {
  la::Matrix q;
  la::Matrix r;
  qr::QrStats stats;
};

TiledRun run_tiled(const la::Matrix& a, const qr::QrOptions& opts) {
  Device dev(test_spec(), ExecutionMode::Real);
  TiledRun run{la::materialize(a.view()), la::Matrix(a.cols(), a.cols()), {}};
  qr::QrProblem p{{&dev}, run.q.view(), run.r.view(), qr::Algorithm::Tiled,
                  opts};
  run.stats = qr::factorize(p);
  EXPECT_EQ(dev.live_allocations(), 0);
  EXPECT_LE(dev.memory_peak(), dev.memory_capacity());
  return run;
}

void expect_valid_qr(const la::Matrix& a, const TiledRun& run, double tol) {
  EXPECT_LT(la::qr_residual(a.view(), run.q.view(), run.r.view()), tol);
  EXPECT_TRUE(la::is_upper_triangular(run.r.view()));
  for (index_t j = 0; j < run.r.cols(); ++j) EXPECT_GT(run.r(j, j), 0.0f);
  EXPECT_LT(la::orthogonality_error(run.q.view()), 100 * tol);
}

class TiledQrSweep
    : public ::testing::TestWithParam<
          std::tuple<std::tuple<index_t, index_t>, index_t /*blocksize*/>> {};

TEST_P(TiledQrSweep, FactorsCorrectly) {
  const auto [shape, blocksize] = GetParam();
  const auto [m, n] = shape;
  la::Matrix a = la::random_normal(m, n, 2000 + m + n);
  const TiledRun run = run_tiled(a, base_options(blocksize));
  expect_valid_qr(a, run, 1e-4);
  EXPECT_GT(run.stats.total_seconds, 0.0);
  const index_t tiles = (n + blocksize - 1) / blocksize;
  EXPECT_EQ(run.stats.panels, tiles);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TiledQrSweep,
    ::testing::Combine(
        ::testing::Values(std::tuple<index_t, index_t>{64, 64},
                          std::tuple<index_t, index_t>{96, 48},
                          std::tuple<index_t, index_t>{200, 120},
                          std::tuple<index_t, index_t>{160, 100}),
        ::testing::Values<index_t>(16, 24, 64)));

TEST(TiledQr, SingleTileReducesToOnePanel) {
  la::Matrix a = la::random_normal(80, 32, 7);
  const TiledRun run = run_tiled(a, base_options(64)); // b > n: one tile
  expect_valid_qr(a, run, 1e-4);
  EXPECT_EQ(run.stats.panels, 1);
}

TEST(TiledQr, LookaheadFactorsNextPanelBeforeFarUpdatesDrain) {
  // 4 tiles in Phantom mode: the factorization of tile k+1 must be enqueued
  // on the compute engine before step k's far-tile updates — i.e. panel 2's
  // compute starts no later than the last far update of step 0 ends.
  Device dev(sim::DeviceSpec::v100_32gb(), ExecutionMode::Phantom);
  auto a = sim::HostMutRef::phantom(1 << 16, 1 << 14);
  auto r = sim::HostMutRef::phantom(1 << 14, 1 << 14);
  qr::QrOptions opts;
  opts.blocksize = 1 << 12; // 4 tiles
  qr::QrProblem p{{&dev}, a, r, qr::Algorithm::Tiled, opts};
  qr::factorize(p);

  const auto& events = dev.trace().events();
  sim_time_t second_panel_start = -1;
  sim_time_t last_far_update_end = -1; // "gemm upd 0,3" of step 0
  int panels_seen = 0;
  for (const auto& e : events) {
    if (e.kind == sim::OpKind::Panel && ++panels_seen == 2) {
      second_panel_start = e.start;
    }
    if (e.name.rfind("gemm upd 0,3", 0) == 0) last_far_update_end = e.end;
  }
  ASSERT_GE(second_panel_start, 0.0);
  ASSERT_GE(last_far_update_end, 0.0);
  EXPECT_LT(second_panel_start, last_far_update_end);
}

TEST(TiledQr, ColocatedBatchAttributesStatsPerJob) {
  // Two different-size jobs share one device and one graph; the label
  // prefix must split the trace so each job sees its own panel count and
  // both see forward progress.
  const index_t m0 = 96, n0 = 48, m1 = 64, n1 = 64;
  la::Matrix a0 = la::random_normal(m0, n0, 51);
  la::Matrix a1 = la::random_normal(m1, n1, 52);
  la::Matrix q0 = la::materialize(a0.view());
  la::Matrix q1 = la::materialize(a1.view());
  la::Matrix r0(n0, n0), r1(n1, n1);

  Device dev(test_spec(), ExecutionMode::Real);
  qr::QrOptions opts = base_options(16);
  const std::vector<qr::QrStats> stats = qr::detail::run_batch(
      dev,
      {qr::detail::BatchJob{"tiled", q0.view(), r0.view(), opts, "j0."},
       qr::detail::BatchJob{"tiled", q1.view(), r1.view(), opts, "j1."}});

  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].panels, 3); // 48 cols at b=16
  EXPECT_EQ(stats[1].panels, 4); // 64 cols at b=16
  EXPECT_GT(stats[0].bytes_h2d, 0);
  EXPECT_GT(stats[1].bytes_h2d, 0);

  // Both factorizations are numerically intact despite the interleaving.
  EXPECT_LT(la::qr_residual(a0.view(), q0.view(), r0.view()), 1e-4);
  EXPECT_LT(la::qr_residual(a1.view(), q1.view(), r1.view()), 1e-4);
  EXPECT_TRUE(la::is_upper_triangular(r0.view()));
  EXPECT_TRUE(la::is_upper_triangular(r1.view()));
}

TEST(TiledQr, BatchInterleavesJobsOnTheComputeEngine) {
  // With equal priorities the scheduler round-robins ready nodes by id, so
  // some of job 1's compute work must land before job 0's last compute.
  Device dev(sim::DeviceSpec::v100_32gb(), ExecutionMode::Phantom);
  qr::QrOptions opts;
  opts.blocksize = 1 << 12;
  auto a0 = sim::HostMutRef::phantom(1 << 15, 1 << 14);
  auto r0 = sim::HostMutRef::phantom(1 << 14, 1 << 14);
  auto a1 = sim::HostMutRef::phantom(1 << 15, 1 << 14);
  auto r1 = sim::HostMutRef::phantom(1 << 14, 1 << 14);
  qr::detail::run_batch(
      dev, {qr::detail::BatchJob{"tiled", a0, r0, opts, "j0."},
            qr::detail::BatchJob{"tiled", a1, r1, opts, "j1."}});

  const auto& events = dev.trace().events();
  size_t first_j1_compute = 0, last_j0_compute = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i].resource != sim::Resource::Compute) continue;
    if (events[i].name.rfind("j1.", 0) == 0 && first_j1_compute == 0) {
      first_j1_compute = i;
    }
    if (events[i].name.rfind("j0.", 0) == 0) last_j0_compute = i;
  }
  EXPECT_GT(first_j1_compute, 0u);
  EXPECT_LT(first_j1_compute, last_j0_compute);
}

TEST(TiledQr, CheckpointsEveryUnitWithSink) {
  const index_t m = 96, n = 72; // 3 tiles at b=24
  la::Matrix a = la::random_normal(m, n, 61);
  la::Matrix q = la::materialize(a.view());
  la::Matrix r(n, n);
  qr::MemoryCheckpointSink sink;
  qr::QrOptions opts = base_options(24);
  opts.checkpoint_sink = &sink;
  Device dev(test_spec(), ExecutionMode::Real);
  qr::QrProblem p{{&dev}, q.view(), r.view(), qr::Algorithm::Tiled, opts};
  qr::factorize(p);
  EXPECT_EQ(sink.count(), 3);
  EXPECT_EQ(sink.last().driver, "tiled");
  EXPECT_EQ(sink.last().units_done, 3);
  EXPECT_EQ(sink.last().columns_done, n);
}

TEST(TiledQr, KillEveryUnitResumesBitIdentical) {
  const index_t m = 96, n = 72;
  const qr::QrOptions opts = base_options(24);
  la::Matrix a0 = la::random_normal(m, n, 71);

  // Uninterrupted reference; its fault injector counts H2D ops for the kill
  // sweep.
  la::Matrix q_ref = la::materialize(a0.view());
  la::Matrix r_ref(n, n);
  Device ref_dev(test_spec(), ExecutionMode::Real);
  ref_dev.install_faults(FaultPlan::parse("h2d:transient:p=0"));
  {
    qr::QrProblem p{{&ref_dev}, q_ref.view(), r_ref.view(),
                    qr::Algorithm::Tiled, opts};
    qr::factorize(p);
  }
  const std::int64_t total_h2d =
      ref_dev.fault_injector()->ops_seen(sim::FaultSite::H2D);
  ASSERT_GT(total_h2d, 2);

  int resumed = 0;
  for (std::int64_t kill = 2; kill < total_h2d; ++kill) {
    qr::MemoryCheckpointSink sink;
    qr::QrOptions kill_opts = opts;
    kill_opts.checkpoint_sink = &sink;
    kill_opts.transfer_max_attempts = 1;
    la::Matrix q_killed = la::materialize(a0.view());
    la::Matrix r_killed(n, n);
    Device kill_dev(test_spec(), ExecutionMode::Real);
    kill_dev.install_faults(
        FaultPlan::parse("h2d:transient:op=" + std::to_string(kill)));
    qr::QrProblem pk{{&kill_dev}, q_killed.view(), r_killed.view(),
                     qr::Algorithm::Tiled, kill_opts};
    EXPECT_THROW(qr::factorize(pk), FaultBudgetExhausted) << "kill " << kill;
    if (!sink.has_checkpoint()) continue;
    const qr::Checkpoint& cp = sink.last();
    EXPECT_EQ(cp.driver, "tiled");
    EXPECT_GT(cp.units_done, 0);

    la::Matrix q_res(m, n);
    la::Matrix r_res(n, n);
    Device res_dev(test_spec(), ExecutionMode::Real);
    qr::QrProblem pr{{&res_dev}, q_res.view(), r_res.view(),
                     qr::Algorithm::Tiled, opts};
    qr::resume(pr, cp);
    EXPECT_TRUE(bitwise_equal(q_res, q_ref)) << "kill " << kill;
    EXPECT_TRUE(bitwise_equal(r_res, r_ref)) << "kill " << kill;
    ++resumed;
  }
  EXPECT_GE(resumed, 1);
}

TEST(TiledQr, ResumeFromCompleteCheckpointIsANoOp) {
  const index_t m = 64, n = 48;
  la::Matrix a = la::random_normal(m, n, 81);
  la::Matrix q = la::materialize(a.view());
  la::Matrix r(n, n);
  qr::MemoryCheckpointSink sink;
  qr::QrOptions opts = base_options(16);
  opts.checkpoint_sink = &sink;
  Device dev(test_spec(), ExecutionMode::Real);
  qr::QrProblem p{{&dev}, q.view(), r.view(), qr::Algorithm::Tiled, opts};
  qr::factorize(p);
  ASSERT_EQ(sink.last().units_done, 3);

  la::Matrix q2(m, n), r2(n, n);
  Device dev2(test_spec(), ExecutionMode::Real);
  qr::QrProblem p2{{&dev2}, q2.view(), r2.view(), qr::Algorithm::Tiled,
                   base_options(16)};
  qr::resume(p2, sink.last());
  EXPECT_TRUE(bitwise_equal(q2, q));
  EXPECT_TRUE(bitwise_equal(r2, r));
}

TEST(TiledQr, FactorizeValidatesProblem) {
  Device dev(test_spec(), ExecutionMode::Phantom);
  auto a = sim::HostMutRef::phantom(64, 32);
  auto r = sim::HostMutRef::phantom(32, 32);
  // Tiled is single-device.
  Device dev2(test_spec(), ExecutionMode::Phantom);
  qr::QrProblem two{{&dev, &dev2}, a, r, qr::Algorithm::Tiled, {}};
  EXPECT_THROW(qr::factorize(two), InvalidArgument);
  qr::QrProblem none{{}, a, r, qr::Algorithm::Tiled, {}};
  EXPECT_THROW(qr::factorize(none), InvalidArgument);
  // Wide matrices are rejected.
  auto wide = sim::HostMutRef::phantom(16, 32);
  qr::QrProblem bad{{&dev}, wide, r, qr::Algorithm::Tiled, {}};
  EXPECT_THROW(qr::factorize(bad), InvalidArgument);
}

TEST(AlgorithmNames, RoundTripThroughParse) {
  using qr::Algorithm;
  for (Algorithm alg :
       {Algorithm::Blocking, Algorithm::LeftLooking, Algorithm::Recursive,
        Algorithm::MultiGpu, Algorithm::Tsqr, Algorithm::Tiled}) {
    const auto back = qr::parse_algorithm(qr::to_string(alg));
    ASSERT_TRUE(back.has_value()) << qr::to_string(alg);
    EXPECT_EQ(*back, alg);
  }
  EXPECT_FALSE(qr::parse_algorithm("qrqrqr").has_value());
}

} // namespace
} // namespace rocqr
