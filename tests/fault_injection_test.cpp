// The fault-injection subsystem (sim/faults.hpp): spec grammar, injector
// determinism, and the Device entry points that consult the plan.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/telemetry.hpp"
#include "la/generate.hpp"
#include "leak_check.hpp"
#include "ooc/resilience.hpp"
#include "sim/device.hpp"
#include "sim/faults.hpp"
#include "sim/scoped_matrix.hpp"

namespace rocqr {
namespace {

using sim::Device;
using sim::DeviceMatrixRef;
using sim::ExecutionMode;
using sim::FaultKind;
using sim::FaultPlan;
using sim::FaultSite;
using sim::ScopedMatrix;
using sim::StoragePrecision;

sim::DeviceSpec small_spec(bytes_t capacity = 64LL << 20) {
  sim::DeviceSpec s = sim::DeviceSpec::v100_32gb();
  s.memory_capacity = capacity;
  return s;
}

TEST(FaultPlanParse, SingleClauses) {
  const FaultPlan p = FaultPlan::parse("h2d:transient:p=0.25");
  ASSERT_EQ(p.rules.size(), 1u);
  EXPECT_EQ(p.rules[0].site, FaultSite::H2D);
  EXPECT_EQ(p.rules[0].kind, FaultKind::Transient);
  EXPECT_DOUBLE_EQ(p.rules[0].probability, 0.25);
  EXPECT_EQ(p.rules[0].first_op, -1);

  const FaultPlan q = FaultPlan::parse("alloc:oom:after=3");
  ASSERT_EQ(q.rules.size(), 1u);
  EXPECT_EQ(q.rules[0].site, FaultSite::Alloc);
  EXPECT_EQ(q.rules[0].kind, FaultKind::Oom);
  EXPECT_EQ(q.rules[0].first_op, 4); // after=N is sugar for op=N+1

  const FaultPlan r = FaultPlan::parse("compute:corrupt:op=12,count=2");
  ASSERT_EQ(r.rules.size(), 1u);
  EXPECT_EQ(r.rules[0].site, FaultSite::Compute);
  EXPECT_EQ(r.rules[0].kind, FaultKind::Corrupt);
  EXPECT_EQ(r.rules[0].first_op, 12);
  EXPECT_EQ(r.rules[0].count, 2);
}

TEST(FaultPlanParse, MultiClauseAndSeed) {
  const FaultPlan p =
      FaultPlan::parse("h2d:transient:p=0.01;alloc:oom:after=3;seed=42");
  ASSERT_EQ(p.rules.size(), 2u);
  EXPECT_EQ(p.seed, 42u);
}

TEST(FaultPlanParse, RoundTripsThroughToString) {
  for (const char* spec :
       {"h2d:transient:p=0.01;alloc:oom:after=3;compute:corrupt:op=12",
        "d2h:transient:op=2,count=3;seed=7", "h2d:transient:p=1",
        "compute:corrupt:p=0.5,count=4"}) {
    const FaultPlan p = FaultPlan::parse(spec);
    const FaultPlan q = FaultPlan::parse(p.to_string());
    EXPECT_EQ(p.to_string(), q.to_string()) << spec;
    EXPECT_EQ(p.seed, q.seed) << spec;
    ASSERT_EQ(p.rules.size(), q.rules.size()) << spec;
  }
}

TEST(FaultPlanParse, FatalValidAtEverySite) {
  // `fatal` models hard device loss and, unlike oom/corrupt, is meaningful
  // at all four sites.
  for (const char* spec : {"h2d:fatal:op=1", "d2h:fatal:after=2",
                           "alloc:fatal:count=1,op=3", "compute:fatal:p=0.5"}) {
    const FaultPlan p = FaultPlan::parse(spec);
    ASSERT_EQ(p.rules.size(), 1u) << spec;
    EXPECT_EQ(p.rules[0].kind, FaultKind::Fatal) << spec;
    // Round-trips through to_string (spelling stays "fatal").
    const FaultPlan q = FaultPlan::parse(p.to_string());
    EXPECT_EQ(p.to_string(), q.to_string()) << spec;
    EXPECT_NE(p.to_string().find("fatal"), std::string::npos) << spec;
  }
}

TEST(FaultPlanParse, RejectsMalformedSpecs) {
  for (const char* bad :
       {"gpu:transient:p=0.5",    // unknown site
        "h2d:oom:p=0.5",          // kind incompatible with site
        "alloc:transient:op=1",   // kind incompatible with site
        "h2d:transient:p=1.5",    // probability out of range
        "h2d:transient:p=-0.1",   // probability out of range
        "h2d:transient:op=0",     // ordinals are 1-based
        "h2d:transient",          // no trigger at all
        "h2d:transient:p=0.5,op=3", // two triggers
        "h2d:transient:p=abc",    // unparseable number
        "seed=",                  // empty seed
        ":::", "h2d"}) {
    EXPECT_THROW(FaultPlan::parse(bad), InvalidArgument) << bad;
  }
}

TEST(FaultInjector, DeterministicAcrossIdenticalRuns) {
  const FaultPlan plan =
      FaultPlan::parse("h2d:transient:p=0.3;compute:corrupt:p=0.1;seed=99");
  sim::FaultInjector a(plan);
  sim::FaultInjector b(plan);
  for (int i = 0; i < 200; ++i) {
    const FaultSite site = i % 3 == 0 ? FaultSite::Compute : FaultSite::H2D;
    EXPECT_EQ(a.fire(site), b.fire(site)) << "op " << i;
  }
  EXPECT_EQ(a.faults_fired(), b.faults_fired());
  EXPECT_GT(a.faults_fired(), 0); // p=0.3 over ~133 ops: essentially certain
}

TEST(FaultInjector, DeterministicRuleFiresExactWindow) {
  sim::FaultInjector inj(FaultPlan::parse("d2h:transient:op=3,count=2"));
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(inj.fire(FaultSite::D2H));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, true, false, false}));
  EXPECT_EQ(inj.faults_fired(), 2);
}

TEST(DeviceFaults, TransientH2dThrowsTransferError) {
  Device dev(small_spec(), ExecutionMode::Real);
  dev.install_faults(FaultPlan::parse("h2d:transient:op=1"));
  ScopedMatrix m(dev, 8, 8);
  la::Matrix host = la::random_normal(8, 8, 1);
  sim::Stream s = dev.create_stream();
  EXPECT_THROW(dev.copy_h2d(DeviceMatrixRef(m.get()), host.view(), s),
               TransferError);
  // op=1 fired once; the re-enqueue is op 2 and succeeds.
  dev.copy_h2d(DeviceMatrixRef(m.get()), host.view(), s);
  dev.synchronize();
}

TEST(DeviceFaults, AllocOomAfterBudget) {
  Device dev(small_spec(), ExecutionMode::Phantom);
  dev.install_faults(FaultPlan::parse("alloc:oom:after=2"));
  ScopedMatrix a(dev, 16, 16);
  ScopedMatrix b(dev, 16, 16);
  EXPECT_THROW(ScopedMatrix(dev, 16, 16), DeviceOutOfMemory);
  // count defaults to 1 for deterministic rules: the next alloc succeeds.
  ScopedMatrix c(dev, 16, 16);
  EXPECT_EQ(dev.live_allocations(), 3);
}

TEST(DeviceFaults, ComputeCorruptPerturbsOneGemmElement) {
  const index_t n = 8;
  la::Matrix ha = la::random_normal(n, n, 2);
  la::Matrix hb = la::random_normal(n, n, 3);

  const auto run = [&](const char* spec) {
    Device dev(small_spec(), ExecutionMode::Real);
    if (spec != nullptr) dev.install_faults(FaultPlan::parse(spec));
    ScopedMatrix a(dev, n, n);
    ScopedMatrix b(dev, n, n);
    ScopedMatrix c(dev, n, n);
    dev.upload(a.get(), ha.view());
    dev.upload(b.get(), hb.view());
    sim::Stream s = dev.create_stream();
    dev.gemm(blas::Op::NoTrans, blas::Op::NoTrans, 1.0f,
             DeviceMatrixRef(a.get()), DeviceMatrixRef(b.get()), 0.0f,
             DeviceMatrixRef(c.get()), blas::GemmPrecision::FP32, s);
    dev.synchronize();
    return dev.download(c.get());
  };

  const la::Matrix clean = run(nullptr);
  const la::Matrix dirty = run("compute:corrupt:op=1");
  int diffs = 0;
  double worst = 0.0;
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      const double d = std::fabs(static_cast<double>(clean(i, j)) -
                                 static_cast<double>(dirty(i, j)));
      if (d > 0.0) ++diffs;
      worst = std::max(worst, d);
    }
  }
  EXPECT_EQ(diffs, 1);      // exactly one element perturbed
  EXPECT_GT(worst, 1.0e3);  // by an unmistakable amount
}

TEST(DeviceFaults, InjectedCounterTracksFires) {
  telemetry::Counter& injected =
      telemetry::MetricsRegistry::global().counter("faults_injected");
  injected.reset();
  Device dev(small_spec(), ExecutionMode::Phantom);
  dev.install_faults(FaultPlan::parse("h2d:transient:op=1,count=2"));
  ScopedMatrix m(dev, 8, 8);
  sim::Stream s = dev.create_stream();
  const auto h = sim::HostConstRef::phantom(8, 8);
  EXPECT_THROW(dev.copy_h2d(DeviceMatrixRef(m.get()), h, s), TransferError);
  EXPECT_THROW(dev.copy_h2d(DeviceMatrixRef(m.get()), h, s), TransferError);
  dev.copy_h2d(DeviceMatrixRef(m.get()), h, s);
  dev.synchronize();
  EXPECT_EQ(injected.value(), 2);
  ASSERT_NE(dev.fault_injector(), nullptr);
  EXPECT_EQ(dev.fault_injector()->faults_fired(), 2);
}

TEST(DeviceFaults, EmptyPlanRemovesInjection) {
  Device dev(small_spec(), ExecutionMode::Phantom);
  dev.install_faults(FaultPlan::parse("h2d:transient:p=1"));
  ASSERT_NE(dev.fault_injector(), nullptr);
  dev.install_faults(FaultPlan{});
  EXPECT_EQ(dev.fault_injector(), nullptr);
  ScopedMatrix m(dev, 8, 8);
  sim::Stream s = dev.create_stream();
  dev.copy_h2d(DeviceMatrixRef(m.get()), sim::HostConstRef::phantom(8, 8), s);
  dev.synchronize();
}

TEST(DeviceFaults, FatalComputeKillsDeviceAndSubsequentOpsThrow) {
  Device dev(small_spec(), ExecutionMode::Real);
  dev.install_faults(FaultPlan::parse("compute:fatal:op=1"));
  EXPECT_FALSE(dev.dead());
  const index_t n = 8;
  {
    ScopedMatrix a(dev, n, n);
    ScopedMatrix b(dev, n, n);
    ScopedMatrix c(dev, n, n);
    dev.upload(a.get(), la::random_normal(n, n, 4).view());
    dev.upload(b.get(), la::random_normal(n, n, 5).view());
    sim::Stream s = dev.create_stream();
    EXPECT_THROW(dev.gemm(blas::Op::NoTrans, blas::Op::NoTrans, 1.0f,
                          DeviceMatrixRef(a.get()), DeviceMatrixRef(b.get()),
                          0.0f, DeviceMatrixRef(c.get()),
                          blas::GemmPrecision::FP32, s),
                 DeviceLost);
    EXPECT_TRUE(dev.dead());
    // Every subsequent enqueue entry point refuses with DeviceLost; the
    // fault only had count=1, so the refusal comes from dead(), not the plan.
    EXPECT_THROW(dev.copy_h2d(DeviceMatrixRef(a.get()),
                              la::random_normal(n, n, 6).view(), s),
                 DeviceLost);
    EXPECT_THROW(dev.gemm(blas::Op::NoTrans, blas::Op::NoTrans, 1.0f,
                          DeviceMatrixRef(a.get()), DeviceMatrixRef(b.get()),
                          0.0f, DeviceMatrixRef(c.get()),
                          blas::GemmPrecision::FP32, s),
                 DeviceLost);
    EXPECT_THROW((ScopedMatrix(dev, n, n)), DeviceLost);
    // free()/synchronize() stay usable so RAII unwind does not leak
    // (ScopedMatrix destructors run as this scope exits).
    dev.synchronize();
  }
  EXPECT_EQ(dev.live_allocations(), 0);
}

TEST(DeviceFaults, FatalAllocReportsLastFiredKind) {
  Device dev(small_spec(), ExecutionMode::Phantom);
  dev.install_faults(FaultPlan::parse("alloc:fatal:after=1"));
  ScopedMatrix a(dev, 8, 8);
  EXPECT_THROW(ScopedMatrix(dev, 8, 8), DeviceLost);
  ASSERT_NE(dev.fault_injector(), nullptr);
  EXPECT_EQ(dev.fault_injector()->last_fired_kind(), FaultKind::Fatal);
  EXPECT_TRUE(dev.dead());
}

TEST(OomDegradation, HalvesToFloorThenRethrowsOriginal) {
  // A body that never fits: the helper must walk 256 -> 128 -> 64 -> 32,
  // stop at degrade_min_blocksize, and rethrow the body's own exception
  // instead of looping forever or wrapping it.
  Device dev(small_spec(), ExecutionMode::Phantom);
  ooc::OocGemmOptions opts;
  opts.blocksize = 256;
  opts.degrade_min_blocksize = 32;
  int calls = 0;
  std::vector<index_t> tried;
  try {
    ooc::detail::with_oom_degradation(
        dev, opts, [&](const ooc::OocGemmOptions& cur) -> int {
          ++calls;
          tried.push_back(cur.blocksize);
          throw DeviceOutOfMemory("synthetic body OOM");
        });
    FAIL() << "expected DeviceOutOfMemory";
  } catch (const DeviceOutOfMemory& e) {
    EXPECT_STREQ(e.what(), "synthetic body OOM");
  }
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(tried, (std::vector<index_t>{256, 128, 64, 32}));
}

TEST(OomDegradation, AtFloorRethrowsWithoutRetry) {
  Device dev(small_spec(), ExecutionMode::Phantom);
  ooc::OocGemmOptions opts;
  opts.blocksize = 32;
  opts.degrade_min_blocksize = 32;
  int calls = 0;
  EXPECT_THROW(ooc::detail::with_oom_degradation(
                   dev, opts,
                   [&](const ooc::OocGemmOptions&) -> int {
                     ++calls;
                     throw DeviceOutOfMemory("floor");
                   }),
               DeviceOutOfMemory);
  EXPECT_EQ(calls, 1);
}

TEST(OomDegradation, DisabledRethrowsWithoutRetry) {
  Device dev(small_spec(), ExecutionMode::Phantom);
  ooc::OocGemmOptions opts;
  opts.blocksize = 256;
  opts.degrade_on_oom = false;
  int calls = 0;
  EXPECT_THROW(ooc::detail::with_oom_degradation(
                   dev, opts,
                   [&](const ooc::OocGemmOptions&) -> int {
                     ++calls;
                     throw DeviceOutOfMemory("disabled");
                   }),
               DeviceOutOfMemory);
  EXPECT_EQ(calls, 1);
}

TEST(OomDegradation, SucceedsAfterDegradationAndCounts) {
  Device dev(small_spec(), ExecutionMode::Phantom);
  telemetry::Counter& degradations =
      telemetry::MetricsRegistry::global().counter("slab_degradations");
  const std::int64_t before = degradations.value();
  ooc::OocGemmOptions opts;
  opts.blocksize = 256;
  opts.degrade_min_blocksize = 32;
  const index_t got = ooc::detail::with_oom_degradation(
      dev, opts, [&](const ooc::OocGemmOptions& cur) -> index_t {
        if (cur.blocksize > 64) throw DeviceOutOfMemory("still too big");
        return cur.blocksize;
      });
  EXPECT_EQ(got, 64);
  EXPECT_EQ(degradations.value(), before + 2); // 256 -> 128 -> 64
}

TEST(ScopedMatrixLeaks, FailedFreeRecordedOnCounter) {
  telemetry::Counter& leaked =
      rocqr::testing::DeviceLeakCheckEnvironment::counter();
  const std::int64_t before = leaked.value();
  {
    Device dev(small_spec(), ExecutionMode::Phantom);
    ScopedMatrix m(dev, 8, 8);
    sim::DeviceMatrix alias = m.get();
    dev.free(alias); // invalidate the handle behind the RAII wrapper's back
    m.reset();       // the double free must be counted, not thrown
  }
  EXPECT_EQ(leaked.value(), before + 1);
  leaked.reset(); // deliberate leak: keep the global environment check green
}

} // namespace
} // namespace rocqr
