// Jobs-JSON parser hardening: numbers must be consumed whole (no silent
// prefix parsing), out-of-range values must be rejected before any cast
// (the old code hit undefined behavior casting 1e30 to index_t), the
// documented job fields round-trip, and the schema_version envelope is
// enforced (legacy bare arrays parse; newer majors are rejected).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "serve/job.hpp"
#include "serve/jobs_io.hpp"

namespace rocqr {
namespace {

using serve::JobSpec;
using serve::parse_jobs_json;

TEST(JobsJson, ParsesDocumentedFields) {
  const std::vector<JobSpec> jobs = parse_jobs_json(R"([
    {"name": "big", "algorithm": "tsqr", "m": 262144, "n": 16384,
     "blocksize": 8192, "priority": 3, "deadline": 2.5,
     "arrival_after_units": 4},
    {"m": 100, "n": 50}
  ])");
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].name, "big");
  EXPECT_EQ(jobs[0].algorithm, "tsqr");
  EXPECT_EQ(jobs[0].m, 262144);
  EXPECT_EQ(jobs[0].n, 16384);
  EXPECT_EQ(jobs[0].blocksize, 8192);
  EXPECT_EQ(jobs[0].priority, 3);
  EXPECT_DOUBLE_EQ(jobs[0].deadline_seconds, 2.5);
  EXPECT_EQ(jobs[0].arrival_after_units, 4);
  EXPECT_EQ(jobs[1].name, "job1"); // defaulted
}

TEST(JobsJson, AcceptsExponentAndSignForms) {
  const std::vector<JobSpec> jobs = parse_jobs_json(
      R"([{"m": 1e2, "n": 5E1, "deadline": 1.5e-1, "priority": -2}])");
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].m, 100);
  EXPECT_EQ(jobs[0].n, 50);
  EXPECT_DOUBLE_EQ(jobs[0].deadline_seconds, 0.15);
  EXPECT_EQ(jobs[0].priority, -2);
}

TEST(JobsJson, RejectsNumbersWithTrailingGarbage) {
  // std::stod parses a prefix; the parser must reject when the consumed
  // span was not parsed whole ("1.2.3" used to pass silently as 1.2).
  for (const char* bad :
       {"1.2.3", "1e2e3", "1..5", "--3", "3-", "1.2e", "e5", "+-1"}) {
    const std::string text =
        std::string(R"([{"m": 100, "n": 50, "deadline": )") + bad + "}]";
    EXPECT_THROW(parse_jobs_json(text), InvalidArgument) << bad;
  }
}

TEST(JobsJson, RejectsHugeDimensionBeforeCasting) {
  // Regression: 1e30 does not fit index_t; the old code cast first (UB)
  // and range-checked after. Must now throw cleanly.
  EXPECT_THROW(parse_jobs_json(R"([{"m": 1e30, "n": 50}])"), InvalidArgument);
  EXPECT_THROW(parse_jobs_json(R"([{"m": 100, "n": 9.3e18}])"),
               InvalidArgument);
  EXPECT_THROW(parse_jobs_json(R"([{"m": -1, "n": 50}])"), InvalidArgument);
  EXPECT_THROW(parse_jobs_json(R"([{"m": 2.5, "n": 50}])"), InvalidArgument);
}

TEST(JobsJson, ParsesVersionedEnvelope) {
  const std::vector<JobSpec> jobs = parse_jobs_json(
      R"({"schema_version": 2, "jobs": [{"m": 128, "n": 64,
          "algorithm": "tiled"}]})");
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].m, 128);
  EXPECT_EQ(jobs[0].algorithm, "tiled");
  // Older majors still parse; key order does not matter.
  EXPECT_EQ(parse_jobs_json(
                R"({"jobs": [{"m": 8, "n": 4}], "schema_version": 1})")
                .size(),
            1u);
}

TEST(JobsJson, RejectsUnknownSchemaMajorAndBadEnvelope) {
  EXPECT_THROW(
      parse_jobs_json(
          R"({"schema_version": 3, "jobs": [{"m": 8, "n": 4}]})"),
      InvalidArgument);
  EXPECT_THROW(
      parse_jobs_json(
          R"({"schema_version": 0, "jobs": [{"m": 8, "n": 4}]})"),
      InvalidArgument);
  // An envelope without "jobs", or with an unknown top-level key.
  EXPECT_THROW(parse_jobs_json(R"({"schema_version": 2})"), InvalidArgument);
  EXPECT_THROW(
      parse_jobs_json(R"({"tasks": [{"m": 8, "n": 4}]})"), InvalidArgument);
}

TEST(JobsJson, ReportCarriesSchemaVersion) {
  serve::FleetReport rep;
  std::ostringstream os;
  serve::write_fleet_report_json(os, rep);
  EXPECT_NE(os.str().find("\"schema_version\": " +
                          std::to_string(serve::kJobsSchemaVersion)),
            std::string::npos);
}

TEST(JobsJson, RejectsNonPositiveDimensionsAndDeadline) {
  // m/n of 0 used to be admitted and fail deep inside admission; a
  // "deadline": 0 silently meant "no deadline" while looking like an
  // impossible one. All three now fail at parse, naming the job.
  for (const char* bad :
       {R"([{"name": "z", "m": 0, "n": 50}])",
        R"([{"name": "z", "m": 100, "n": 0}])",
        R"([{"name": "z", "m": 100, "n": 50, "deadline": 0}])",
        R"([{"name": "z", "m": 100, "n": 50, "deadline": -2.5}])"}) {
    try {
      parse_jobs_json(bad);
      FAIL() << bad;
    } catch (const InvalidArgument& e) {
      EXPECT_NE(std::string(e.what()).find("non-positive"), std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find("\"z\""), std::string::npos)
          << e.what();
    }
  }
}

TEST(JobsJson, RejectsDuplicateJobNames) {
  // Two jobs named "dup": reports and checkpoint paths key on the name.
  try {
    parse_jobs_json(R"([{"name": "dup", "m": 8, "n": 4},
                        {"m": 16, "n": 8},
                        {"name": "dup", "m": 32, "n": 16}])");
    FAIL() << "duplicate names were accepted";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate job name \"dup\""),
              std::string::npos)
        << e.what();
  }
  // Defaulted names (job0, job1, ...) never collide with each other but do
  // collide with an explicit job named the same way.
  EXPECT_THROW(parse_jobs_json(R"([{"name": "job1", "m": 8, "n": 4},
                                   {"m": 8, "n": 4}])"),
               InvalidArgument);
}

TEST(JobsJson, ReportCarriesFleetHealthFields) {
  serve::FleetReport rep;
  rep.devices = 2;
  rep.devices_lost = 1;
  rep.jobs_migrated = 3;
  rep.jobs_shed = 2;
  rep.device_health = {"dead", "suspect"};
  serve::JobReport jr;
  jr.id = 0;
  jr.name = "moved";
  jr.migrations = 4;
  rep.jobs.push_back(jr);
  std::ostringstream os;
  serve::write_fleet_report_json(os, rep);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"devices_lost\": 1"), std::string::npos) << out;
  EXPECT_NE(out.find("\"jobs_migrated\": 3"), std::string::npos) << out;
  EXPECT_NE(out.find("\"jobs_shed\": 2"), std::string::npos) << out;
  EXPECT_NE(out.find("\"device_health\": [\"dead\", \"suspect\"]"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("\"migrations\": 4"), std::string::npos) << out;
}

TEST(JobsJson, ReportDoublesRoundTripBitExact) {
  // Regression: ostream's default 6 significant digits corrupted every
  // double in the report (0.30000000000000004 went out as "0.3", 1/3 as
  // "0.333333"), so archived reports silently disagreed with the run that
  // produced them. All doubles now print with max_digits10: reparsing the
  // JSON text recovers the original value bit for bit.
  serve::FleetReport rep;
  rep.makespan_seconds = 0.1 + 0.2; // 0.30000000000000004, not 0.3
  rep.queue_wait_p50 = 1.0 / 3.0;
  rep.queue_wait_p95 = 9.866e-5;
  rep.queue_wait_p99 = 123456.78901234567;
  rep.queue_waits = {0.0, 1.0 / 3.0, 2.0 / 7.0};
  serve::JobReport jr;
  jr.id = 0;
  jr.name = "rt";
  jr.queue_wait_seconds = 0.1 + 0.7; // 0.7999999999999999
  jr.stats.total_seconds = 2.0 / 3e7;
  rep.jobs.push_back(jr);

  std::ostringstream os;
  serve::write_fleet_report_json(os, rep);
  const std::string out = os.str();

  const auto reparse = [&out](const std::string& key) {
    const size_t at = out.find("\"" + key + "\": ");
    EXPECT_NE(at, std::string::npos) << key;
    return std::stod(out.substr(at + key.size() + 4));
  };
  EXPECT_EQ(reparse("makespan_seconds"), rep.makespan_seconds);
  EXPECT_EQ(reparse("queue_wait_p50_seconds"), rep.queue_wait_p50);
  EXPECT_EQ(reparse("queue_wait_p95_seconds"), rep.queue_wait_p95);
  EXPECT_EQ(reparse("queue_wait_p99_seconds"), rep.queue_wait_p99);
  EXPECT_EQ(reparse("queue_wait_seconds"), jr.queue_wait_seconds);
  EXPECT_EQ(reparse("total_seconds"), jr.stats.total_seconds);

  const size_t arr = out.find("\"queue_waits_seconds\": [");
  ASSERT_NE(arr, std::string::npos) << out;
  std::istringstream is(out.substr(arr + 24));
  for (size_t i = 0; i < rep.queue_waits.size(); ++i) {
    double v = 0;
    char sep = 0;
    is >> v;
    EXPECT_EQ(v, rep.queue_waits[i]) << "entry " << i;
    is >> sep;
  }
}

TEST(JobsJson, RejectsStructuralGarbage) {
  EXPECT_THROW(parse_jobs_json("[{]"), InvalidArgument);
  EXPECT_THROW(parse_jobs_json(R"([{"m": 4, "n": 2}] trailing)"),
               InvalidArgument);
  EXPECT_THROW(parse_jobs_json(R"([{"n": 2}])"), InvalidArgument); // no m
  EXPECT_THROW(parse_jobs_json(R"([{"m": 4, "n": 2, "wat": 1}])"),
               InvalidArgument);
}

} // namespace
} // namespace rocqr
