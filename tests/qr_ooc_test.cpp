// End-to-end out-of-core QR drivers in Real mode: numerics against in-core
// references across sizes, blocksizes, and every optimization toggle.
#include <gtest/gtest.h>

#include "leak_check.hpp"

#include <tuple>

#include "common/error.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "qr/factorize.hpp"
#include "qr/incore.hpp"
#include "sim/device.hpp"

namespace rocqr::qr {
namespace {

using blas::GemmPrecision;
using sim::Device;
using sim::ExecutionMode;

sim::DeviceSpec test_spec(bytes_t capacity = 512LL << 20) {
  sim::DeviceSpec s = sim::DeviceSpec::v100_32gb();
  s.memory_capacity = capacity;
  return s;
}

struct OocRun {
  la::Matrix q;
  la::Matrix r;
  QrStats stats;
};

OocRun run_driver(bool recursive, const la::Matrix& a, const QrOptions& opts,
                  bytes_t capacity = 512LL << 20) {
  Device dev(test_spec(capacity), ExecutionMode::Real);
  OocRun run{la::materialize(a.view()), la::Matrix(a.cols(), a.cols()), {}};
  run.stats = factorize(QrProblem{
      {&dev}, run.q.view(), run.r.view(),
      recursive ? Algorithm::Recursive : Algorithm::Blocking, opts});
  EXPECT_EQ(dev.live_allocations(), 0);
  EXPECT_LE(dev.memory_peak(), dev.memory_capacity());
  return run;
}

void expect_valid_qr(const la::Matrix& a, const OocRun& run, double tol) {
  EXPECT_LT(la::qr_residual(a.view(), run.q.view(), run.r.view()), tol);
  EXPECT_TRUE(la::is_upper_triangular(run.r.view()));
  for (index_t j = 0; j < run.r.cols(); ++j) EXPECT_GT(run.r(j, j), 0.0f);
  EXPECT_LT(la::orthogonality_error(run.q.view()), 100 * tol);
}

class OocQrSweep
    : public ::testing::TestWithParam<
          std::tuple<bool /*recursive*/, std::tuple<index_t, index_t>,
                     index_t /*blocksize*/, bool /*qr_level_opt*/>> {};

TEST_P(OocQrSweep, FactorsCorrectly) {
  const auto [recursive, shape, blocksize, opt] = GetParam();
  const auto [m, n] = shape;
  la::Matrix a = la::random_normal(m, n, 1000 + m + n);
  QrOptions opts;
  opts.blocksize = blocksize;
  opts.precision = GemmPrecision::FP32;
  opts.panel_base = 8;
  opts.qr_level_opt = opt;
  const OocRun run = run_driver(recursive, a, opts);
  expect_valid_qr(a, run, 1e-4);
  EXPECT_GT(run.stats.total_seconds, 0.0);
  EXPECT_GT(run.stats.panels, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OocQrSweep,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(std::tuple<index_t, index_t>{64, 64},
                                         std::tuple<index_t, index_t>{96, 48},
                                         std::tuple<index_t, index_t>{200, 120},
                                         std::tuple<index_t, index_t>{150, 33}),
                       ::testing::Values<index_t>(16, 32, 64),
                       ::testing::Bool()));

TEST(OocQr, MatchesIncoreReferenceClosely) {
  // With positive-diagonal R the factorization is unique: OOC and in-core
  // runs of the same arithmetic must agree to fp32 rounding accumulation.
  la::Matrix a = la::random_normal(160, 80, 2);
  QrOptions opts;
  opts.blocksize = 32;
  opts.precision = GemmPrecision::FP32;
  opts.panel_base = 8;

  const QrFactors ref = recursive_cgs(a.view(), 8, GemmPrecision::FP32);
  const OocRun rec = run_driver(true, a, opts);
  EXPECT_LT(la::relative_difference(rec.q.view(), ref.q.view()), 1e-4);
  EXPECT_LT(la::relative_difference(rec.r.view(), ref.r.view()), 1e-4);

  const OocRun blk = run_driver(false, a, opts);
  EXPECT_LT(la::relative_difference(blk.q.view(), ref.q.view()), 1e-4);
  EXPECT_LT(la::relative_difference(blk.r.view(), ref.r.view()), 1e-4);
}

TEST(OocQr, OptimizationsDoNotChangeNumerics) {
  la::Matrix a = la::random_normal(128, 64, 3);
  QrOptions base;
  base.blocksize = 16;
  base.precision = GemmPrecision::FP32;
  base.panel_base = 8;

  for (const bool recursive : {false, true}) {
    const OocRun reference = run_driver(recursive, a, base);
    for (int variant = 0; variant < 4; ++variant) {
      QrOptions opts = base;
      opts.qr_level_opt = (variant & 1) != 0;
      opts.staging_buffer = (variant & 2) != 0;
      const OocRun run = run_driver(recursive, a, opts);
      EXPECT_EQ(la::relative_difference(run.q.view(), reference.q.view()), 0.0)
          << "recursive=" << recursive << " variant=" << variant;
      EXPECT_EQ(la::relative_difference(run.r.view(), reference.r.view()), 0.0)
          << "recursive=" << recursive << " variant=" << variant;
    }
  }
}

TEST(OocQr, RampUpPreservesNumerics) {
  la::Matrix a = la::random_normal(200, 64, 4);
  QrOptions opts;
  opts.blocksize = 32;
  opts.precision = GemmPrecision::FP32;
  opts.panel_base = 8;
  opts.ramp_up = true;
  opts.ramp_start = 8;
  const OocRun run = run_driver(true, a, opts);
  expect_valid_qr(a, run, 1e-4);
}

TEST(OocQr, Fp16PipelineStaysAtHalfPrecisionAccuracy) {
  la::Matrix a = la::random_normal(256, 64, 5);
  QrOptions opts;
  opts.blocksize = 16;
  opts.precision = GemmPrecision::FP16_FP32;
  opts.panel_base = 8;
  for (const bool recursive : {false, true}) {
    const OocRun run = run_driver(recursive, a, opts);
    EXPECT_LT(la::qr_residual(a.view(), run.q.view(), run.r.view()), 1e-2)
        << "recursive=" << recursive;
    EXPECT_TRUE(la::is_upper_triangular(run.r.view()));
  }
}

TEST(OocQr, TightMemoryForcesSplitsButStaysCorrect) {
  // A device barely big enough: the recursive driver must fall back to
  // splitting the inner-product accumulator, the blocking driver to small
  // tiles; numerics must be unaffected.
  la::Matrix a = la::random_normal(256, 128, 6);
  QrOptions opts;
  opts.blocksize = 32;
  opts.precision = GemmPrecision::FP32;
  opts.panel_base = 8;
  // Working set: panel 256x32 fp32 = 32 KiB; C 32x96 etc. Budget ~1 MiB
  // forces the planner's small-memory paths at these shapes.
  const OocRun rec = run_driver(true, a, opts, 1 << 20);
  expect_valid_qr(a, rec, 1e-4);
  const OocRun blk = run_driver(false, a, opts, 1 << 20);
  expect_valid_qr(a, blk, 1e-4);
}

TEST(OocQr, SinglePanelMatrix) {
  // n <= blocksize: both drivers degenerate to one panel factorization.
  la::Matrix a = la::random_normal(80, 16, 7);
  QrOptions opts;
  opts.blocksize = 64;
  opts.precision = GemmPrecision::FP32;
  opts.panel_base = 8;
  for (const bool recursive : {false, true}) {
    const OocRun run = run_driver(recursive, a, opts);
    expect_valid_qr(a, run, 1e-5);
    EXPECT_EQ(run.stats.panels, 1);
    EXPECT_DOUBLE_EQ(run.stats.gemm_seconds, 0.0);
  }
}

TEST(OocQr, StatsAreInternallyConsistent) {
  la::Matrix a = la::random_normal(192, 96, 8);
  QrOptions opts;
  opts.blocksize = 32;
  opts.precision = GemmPrecision::FP32;
  opts.panel_base = 8;
  const OocRun run = run_driver(true, a, opts);
  const QrStats& s = run.stats;
  // Engines cannot be busy longer than the makespan.
  EXPECT_LE(s.panel_seconds + s.gemm_seconds + s.d2d_seconds,
            s.total_seconds + 1e-9);
  EXPECT_LE(s.h2d_seconds, s.total_seconds + 1e-9);
  EXPECT_LE(s.d2h_seconds, s.total_seconds + 1e-9);
  EXPECT_GT(s.bytes_h2d, 0);
  EXPECT_GT(s.bytes_d2h, 0);
  EXPECT_GT(s.flops, 0);
  EXPECT_GT(s.peak_device_bytes, 0);
  EXPECT_GT(s.sustained_flops_per_s(), 0.0);
  // Every column moved at least once each way (Q out, A in).
  const bytes_t matrix_bytes = 192 * 96 * 4;
  EXPECT_GE(s.bytes_h2d, matrix_bytes);
  EXPECT_GE(s.bytes_d2h, matrix_bytes);
}

TEST(OocQr, PanelAlgorithmsAllFactorCorrectly) {
  la::Matrix a = la::random_normal(160, 64, 11);
  for (const PanelAlgorithm alg :
       {PanelAlgorithm::RecursiveCgs, PanelAlgorithm::Cgs2,
        PanelAlgorithm::CholeskyQr2}) {
    QrOptions opts;
    opts.blocksize = 32;
    opts.precision = GemmPrecision::FP32;
    opts.panel_base = 8;
    opts.panel_algorithm = alg;
    for (const bool recursive : {false, true}) {
      const OocRun run = run_driver(recursive, a, opts);
      expect_valid_qr(a, run, 1e-4);
    }
  }
}

TEST(OocQr, Cgs2PanelsImproveOrthogonalityOnHardMatrix) {
  // cond ~ 3e3: plain CGS panels lose orthogonality like cond^2 eps;
  // reorthogonalized panels hold near eps.
  la::Matrix a = la::random_with_condition(256, 64, 3e3, 13);
  QrOptions base;
  base.blocksize = 32;
  base.precision = GemmPrecision::FP32;
  base.panel_base = 8;
  QrOptions strong = base;
  strong.panel_algorithm = PanelAlgorithm::Cgs2;
  const OocRun weak = run_driver(true, a, base);
  const OocRun reorth = run_driver(true, a, strong);
  EXPECT_LT(la::orthogonality_error(reorth.q.view()),
            la::orthogonality_error(weak.q.view()));
  // Both still reconstruct A.
  EXPECT_LT(la::qr_residual(a.view(), weak.q.view(), weak.r.view()), 1e-3);
  EXPECT_LT(la::qr_residual(a.view(), reorth.q.view(), reorth.r.view()), 1e-3);
}

TEST(OocQr, StrongerPanelsCostMoreModeledTime) {
  la::Matrix a = la::random_normal(96, 64, 14);
  QrOptions base;
  base.blocksize = 32;
  base.precision = GemmPrecision::FP32;
  base.panel_base = 8;
  QrOptions strong = base;
  strong.panel_algorithm = PanelAlgorithm::CholeskyQr2;
  const OocRun cheap = run_driver(true, a, base);
  const OocRun pricey = run_driver(true, a, strong);
  EXPECT_GT(pricey.stats.panel_seconds, cheap.stats.panel_seconds * 1.5);
}

TEST(OocQr, RejectsBadInputs) {
  Device dev(test_spec(), ExecutionMode::Real);
  la::Matrix a = la::random_normal(10, 20, 9); // wide: invalid
  la::Matrix r(20, 20);
  QrOptions opts;
  EXPECT_THROW(factorize(
      QrProblem{{&dev}, a.view(), r.view(), Algorithm::Blocking, opts}),
               InvalidArgument);
  EXPECT_THROW(factorize(
      QrProblem{{&dev}, a.view(), r.view(), Algorithm::Recursive, opts}),
               InvalidArgument);
  la::Matrix ok = la::random_normal(20, 10, 9);
  la::Matrix bad_r(5, 5);
  EXPECT_THROW(factorize(
      QrProblem{{&dev}, ok.view(), bad_r.view(), Algorithm::Blocking, opts}),
               InvalidArgument);
}

} // namespace
} // namespace rocqr::qr
