# End-to-end schema check for the CLI's --trace-json/--metrics-json exports,
# driven by ctest (see CMakeLists.txt). Runs a small recursive QR in Phantom
# mode, then validates the JSON files with jq.
set(trace "${WORK_DIR}/cli_trace.json")
set(metrics "${WORK_DIR}/cli_metrics.json")

execute_process(
  COMMAND ${ROCQR_CLI} qr --algo recursive --m 4096 --n 4096 --blocksize 512
          --trace-json=${trace} --metrics-json=${metrics}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "rocqr_cli failed (${rc}):\n${out}${err}")
endif()

function(jq_check file expr what)
  execute_process(
    COMMAND ${JQ} -e ${expr} ${file}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "jq check '${what}' failed on ${file}:\n${out}${err}")
  endif()
endfunction()

jq_check(${trace} "." "trace parses as JSON")
jq_check(${trace} ".traceEvents | length > 0" "trace has events")
jq_check(${trace}
  "[.traceEvents[] | select(.ph==\"M\" and .name==\"thread_name\" and .pid==0) | .args.name] | contains([\"H2D\",\"Compute\",\"D2H\"])"
  "engine thread_name tracks present")
jq_check(${trace}
  "[.traceEvents[] | select(.ph==\"X\" and .pid==2)] | length > 0"
  "nested phase spans present")
jq_check(${trace}
  "[.traceEvents[] | select(.ph==\"X\") | .ts] | . == sort"
  "ts nondecreasing")
jq_check(${metrics} "." "metrics parse as JSON")
jq_check(${metrics} ".metrics | has(\"sim.bytes_h2d\")" "metrics registry keys")
