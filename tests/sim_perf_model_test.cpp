// Performance model: copy costs, shape-dependent GEMM rates, the paper
// calibration points, and the panel model's Table-4 anchors.
#include <gtest/gtest.h>

#include "blas/gemm.hpp"
#include "common/error.hpp"
#include "sim/perf_model.hpp"

namespace rocqr::sim {
namespace {

using blas::GemmPrecision;
using blas::Op;

PerfModel paper_model() {
  PerfModel m(DeviceSpec::v100_32gb());
  m.install_paper_calibration();
  return m;
}

TEST(PerfModel, CopyTimeIsLatencyPlusBandwidth) {
  PerfModel m(DeviceSpec::v100_32gb());
  const bytes_t gb = 1LL << 30;
  EXPECT_NEAR(m.h2d_seconds(13 * gb), 1.0737, 0.01); // 13 GiB at 13 GB/s
  EXPECT_NEAR(m.h2d_seconds(0), m.spec().copy_latency_s, 1e-12);
  EXPECT_GT(m.d2h_seconds(gb), 0.05);
  EXPECT_LT(m.d2d_seconds(gb), m.h2d_seconds(gb)); // on-device is much faster
}

TEST(PerfModel, PaperSlabTransferTimes) {
  // Table 1 recursive: one k-slab of A plus one of B (16384 x 65536 fp32
  // each) moves in 693 ms.
  PerfModel m = paper_model();
  const bytes_t slab = 16384LL * 65536 * 4;
  EXPECT_NEAR(m.h2d_seconds(slab) * 2, 0.693, 0.07);
  // Table 1 recursive: C (65536^2 fp32) moves out in 1306 ms.
  EXPECT_NEAR(m.d2h_seconds(65536LL * 65536 * 4), 1.306, 0.13);
  // Table 2 blocking: a 16384^2 fp32 C tile in 86 ms / out 81 ms.
  EXPECT_NEAR(m.d2h_seconds(16384LL * 16384 * 4), 0.081, 0.01);
}

TEST(PerfModel, CalibratedGemmRatesMatchPaper) {
  PerfModel m = paper_model();
  EXPECT_DOUBLE_EQ(
      m.gemm_rate(Op::Trans, 65536, 65536, 16384, GemmPrecision::FP16_FP32),
      99.9e12);
  EXPECT_DOUBLE_EQ(
      m.gemm_rate(Op::Trans, 16384, 16384, 131072, GemmPrecision::FP16_FP32),
      52.6e12);
  EXPECT_DOUBLE_EQ(
      m.gemm_rate(Op::NoTrans, 8192, 65536, 65536, GemmPrecision::FP16_FP32),
      107.6e12);
  EXPECT_DOUBLE_EQ(
      m.gemm_rate(Op::NoTrans, 16384, 16384, 16384, GemmPrecision::FP16_FP32),
      98.8e12);
}

TEST(PerfModel, PaperGemmDurations) {
  PerfModel m = paper_model();
  // Table 1: recursive slab GEMM 1408 ms; blocking slab GEMM 1337 ms.
  EXPECT_NEAR(
      m.gemm_seconds(Op::Trans, 65536, 65536, 16384, GemmPrecision::FP16_FP32),
      1.408, 0.01);
  EXPECT_NEAR(m.gemm_seconds(Op::Trans, 16384, 16384, 131072,
                             GemmPrecision::FP16_FP32),
              1.337, 0.01);
  // Table 2: outer slab 654 ms; blocking tile 89 ms.
  EXPECT_NEAR(m.gemm_seconds(Op::NoTrans, 8192, 65536, 65536,
                             GemmPrecision::FP16_FP32),
              0.654, 0.01);
  EXPECT_NEAR(m.gemm_seconds(Op::NoTrans, 16384, 16384, 16384,
                             GemmPrecision::FP16_FP32),
              0.089, 0.001);
}

TEST(PerfModel, SmoothModelNearCalibrationPoints) {
  // Without overrides the smooth model must land within ~15% of the paper's
  // measured rates — it covers all the shapes the paper did not publish.
  PerfModel m(DeviceSpec::v100_32gb());
  const auto near = [&](Op op, index_t mm, index_t nn, index_t kk,
                        double target, double tol) {
    const double r = m.gemm_rate(op, mm, nn, kk, GemmPrecision::FP16_FP32);
    EXPECT_NEAR(r / target, 1.0, tol)
        << mm << "x" << nn << "x" << kk << " got " << r / 1e12;
  };
  near(Op::Trans, 65536, 65536, 16384, 99.9e12, 0.15);
  near(Op::Trans, 16384, 16384, 131072, 52.6e12, 0.15);
  near(Op::NoTrans, 8192, 65536, 65536, 107.6e12, 0.15);
  near(Op::NoTrans, 16384, 16384, 16384, 98.8e12, 0.15);
}

TEST(PerfModel, TallSkinnyTransposePenalty) {
  PerfModel m(DeviceSpec::v100_32gb());
  // The same output tile gets slower as the reduction dimension grows (TN),
  // the paper's core observation about inner products (§5.1.1).
  const double r1 = m.gemm_rate(Op::Trans, 16384, 16384, 16384,
                                GemmPrecision::FP16_FP32);
  const double r2 = m.gemm_rate(Op::Trans, 16384, 16384, 131072,
                                GemmPrecision::FP16_FP32);
  EXPECT_GT(r1, r2 * 1.5);
  // No such penalty for the NN (outer product) form.
  const double n1 = m.gemm_rate(Op::NoTrans, 16384, 16384, 16384,
                                GemmPrecision::FP16_FP32);
  const double n2 = m.gemm_rate(Op::NoTrans, 16384, 16384, 131072,
                                GemmPrecision::FP16_FP32);
  EXPECT_GT(n2, n1 * 0.95);
}

TEST(PerfModel, RatesAreBelowPeakAndMonotonicInSize) {
  PerfModel m(DeviceSpec::v100_32gb());
  double prev = 0.0;
  for (index_t d = 512; d <= 65536; d *= 2) {
    const double r = m.gemm_rate(Op::NoTrans, d, d, d, GemmPrecision::FP16_FP32);
    EXPECT_LT(r, m.spec().tc_peak_flops);
    EXPECT_GT(r, prev);
    prev = r;
  }
}

TEST(PerfModel, Fp32PathUsesCudaCorePeak) {
  PerfModel m(DeviceSpec::v100_32gb());
  const double tc = m.gemm_rate(Op::NoTrans, 16384, 16384, 16384,
                                GemmPrecision::FP16_FP32);
  const double fp32 = m.gemm_rate(Op::NoTrans, 16384, 16384, 16384,
                                  GemmPrecision::FP32);
  // The paper quotes ~8x on V100 (112 vs 14 TFLOPS).
  EXPECT_NEAR(tc / fp32, 8.0, 0.5);
}

TEST(PerfModel, PanelRatesMatchTable4) {
  PerfModel m = paper_model();
  // 65536 x 8192 panel: 2.7 s / 8 panels; 262144 x 8192: 9.0 s / 8 panels.
  EXPECT_NEAR(m.panel_seconds(65536, 8192), 2.7 / 8, 0.02);
  EXPECT_NEAR(m.panel_seconds(262144, 8192), 9.0 / 8, 0.06);
  EXPECT_NEAR(m.panel_rate(65536, 8192), 26e12, 2e12);
  EXPECT_NEAR(m.panel_rate(262144, 8192), 31e12, 2e12);
}

TEST(PerfModel, OverridesApplyOnlyToExactShapeAndTcPath) {
  PerfModel m(DeviceSpec::v100_32gb());
  const GemmShapeKey key{false, 1024, 1024, 1024};
  m.set_gemm_rate_override(key, 50e12);
  EXPECT_DOUBLE_EQ(
      m.gemm_rate(Op::NoTrans, 1024, 1024, 1024, GemmPrecision::FP16_FP32),
      50e12);
  // A different shape falls back to the smooth model.
  EXPECT_NE(
      m.gemm_rate(Op::NoTrans, 1024, 1024, 2048, GemmPrecision::FP16_FP32),
      50e12);
  // fp32 ignores TC overrides.
  EXPECT_NE(m.gemm_rate(Op::NoTrans, 1024, 1024, 1024, GemmPrecision::FP32),
            50e12);
  // Transpose flag distinguishes keys.
  EXPECT_NE(m.gemm_rate(Op::Trans, 1024, 1024, 1024, GemmPrecision::FP16_FP32),
            50e12);
}

TEST(PerfModel, RejectsInvalidArguments) {
  PerfModel m(DeviceSpec::v100_32gb());
  EXPECT_THROW(m.h2d_seconds(-1), InvalidArgument);
  EXPECT_THROW(m.gemm_rate(Op::NoTrans, 0, 1, 1, GemmPrecision::FP32),
               InvalidArgument);
  EXPECT_THROW(m.panel_rate(0, 1), InvalidArgument);
  EXPECT_THROW(m.set_gemm_rate_override({false, 1, 1, 1}, -1.0),
               InvalidArgument);
  DeviceSpec bad = DeviceSpec::v100_32gb();
  bad.h2d_bytes_per_s = 0;
  EXPECT_THROW(PerfModel{bad}, InvalidArgument);
}

TEST(PerfModel, DevicePresets) {
  EXPECT_EQ(DeviceSpec::v100_32gb().memory_capacity, 32LL << 30);
  EXPECT_EQ(DeviceSpec::v100_16gb().memory_capacity, 16LL << 30);
  EXPECT_GT(DeviceSpec::a100_40gb().tc_peak_flops,
            DeviceSpec::v100_32gb().tc_peak_flops * 2);
  EXPECT_LT(DeviceSpec::rtx3080_10gb().memory_capacity,
            DeviceSpec::v100_16gb().memory_capacity);
  // The non-GPU boundaries (abstract: "disk-memory and CPU-GPU processing").
  const DeviceSpec nvme = DeviceSpec::nvme_cpu_node();
  EXPECT_GT(nvme.memory_capacity, DeviceSpec::v100_32gb().memory_capacity);
  EXPECT_LT(nvme.h2d_bytes_per_s, DeviceSpec::v100_32gb().h2d_bytes_per_s);
  const DeviceSpec old = DeviceSpec::disk_cpu_1996();
  EXPECT_LT(old.tc_peak_flops, 1e10);
  EXPECT_LT(old.h2d_bytes_per_s, 1e8);
  // Every preset builds a valid model with sane sub-peak rates.
  for (const DeviceSpec& s :
       {DeviceSpec::v100_32gb(), DeviceSpec::v100_16gb(),
        DeviceSpec::a100_40gb(), DeviceSpec::rtx3080_10gb(), nvme, old}) {
    PerfModel m(s);
    const double r =
        m.gemm_rate(Op::NoTrans, 8192, 8192, 8192, GemmPrecision::FP16_FP32);
    EXPECT_GT(r, 0.0) << s.name;
    EXPECT_LT(r, s.tc_peak_flops) << s.name;
  }
}

} // namespace
} // namespace rocqr::sim
