// Direct unit tests for the supporting infrastructure: HostWriteTracker,
// the driver planning helpers, Operand, pinned-memory modeling, chrome
// trace export, and the report table renderer.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "la/generate.hpp"
#include "ooc/operand.hpp"
#include "qr/driver_util.hpp"
#include "qr/gemm_plan.hpp"
#include "qr/host_tracker.hpp"
#include "report/table.hpp"
#include "sim/device.hpp"

namespace rocqr {
namespace {

using qr::detail::HostWriteTracker;
using sim::Device;
using sim::ExecutionMode;

sim::DeviceSpec tiny_spec() {
  sim::DeviceSpec s = sim::DeviceSpec::v100_32gb();
  s.memory_capacity = 64LL << 20;
  return s;
}

// --- HostWriteTracker --------------------------------------------------------

TEST(HostWriteTracker, EventsForIntersectingRangesOnly) {
  Device dev(tiny_spec(), ExecutionMode::Phantom);
  HostWriteTracker t(100);
  sim::Stream s = dev.create_stream();
  sim::Event e1 = dev.create_event();
  sim::Event e2 = dev.create_event();
  dev.record_event(e1, s);
  dev.record_event(e2, s);
  t.record(ooc::Slab{0, 30}, e1);
  t.record(ooc::Slab{50, 50}, e2);

  EXPECT_EQ(t.events_for(0, 10).size(), 1u);
  EXPECT_EQ(t.events_for(35, 10).size(), 0u); // gap
  EXPECT_EQ(t.events_for(60, 10).size(), 1u);
  EXPECT_EQ(t.events_for(20, 40).size(), 2u); // spans both
}

TEST(HostWriteTracker, NewWriteSupersedesContainedOld) {
  Device dev(tiny_spec(), ExecutionMode::Phantom);
  HostWriteTracker t(100);
  sim::Stream s = dev.create_stream();
  sim::Event e1 = dev.create_event();
  sim::Event e2 = dev.create_event();
  dev.record_event(e1, s);
  dev.record_event(e2, s);
  t.record(ooc::Slab{10, 20}, e1);
  t.record(ooc::Slab{0, 100}, e2); // covers everything
  EXPECT_EQ(t.events_for(10, 20).size(), 1u);
}

TEST(HostWriteTracker, RegionsForRequiresFullCoverageByLatestWriter) {
  Device dev(tiny_spec(), ExecutionMode::Phantom);
  HostWriteTracker t(200);
  sim::Stream s = dev.create_stream();
  sim::Event e = dev.create_event();
  dev.record_event(e, s);
  std::vector<ooc::RegionEvent> regions = {
      {ooc::Slab{0, 64}, ooc::Slab{100, 50}, e},
      {ooc::Slab{64, 64}, ooc::Slab{100, 50}, e},
  };
  t.record(ooc::Slab{100, 50}, e, regions);

  // Fully covered read: regions returned.
  EXPECT_EQ(t.regions_for(100, 50).size(), 2u);
  EXPECT_EQ(t.regions_for(110, 20).size(), 2u);
  // Read extending past the writer: no fine-grained path.
  EXPECT_TRUE(t.regions_for(90, 30).empty());
  // Writer without regions: empty.
  sim::Event e2 = dev.create_event();
  dev.record_event(e2, s);
  t.record(ooc::Slab{0, 50}, e2);
  EXPECT_TRUE(t.regions_for(0, 10).empty());
}

TEST(HostWriteTracker, RejectsOutOfBounds) {
  HostWriteTracker t(10);
  EXPECT_THROW(t.record(ooc::Slab{5, 10}, sim::Event{}), InvalidArgument);
  EXPECT_THROW(t.record(ooc::Slab{-1, 2}, sim::Event{}), InvalidArgument);
  EXPECT_THROW(HostWriteTracker(0), InvalidArgument);
}

// --- move_in_panel fine-grained chunking -------------------------------------

TEST(MoveInPanel, ChunksByRowRegionsWhenCovered) {
  Device dev(tiny_spec(), ExecutionMode::Phantom);
  sim::Stream writer = dev.create_stream();
  const index_t m = 64;
  const index_t w = 8;

  // A fake previous update: two row-halves finishing at different times.
  dev.custom_compute(writer, 1.0, 0, sim::OpKind::Custom, "fast half");
  sim::Event early = dev.create_event();
  dev.record_event(early, writer);
  dev.custom_compute(writer, 9.0, 0, sim::OpKind::Custom, "slow half");
  sim::Event late = dev.create_event();
  dev.record_event(late, writer);

  HostWriteTracker tracker(32);
  tracker.record(ooc::Slab{0, 32}, late,
                 {{ooc::Slab{0, 32}, ooc::Slab{0, 32}, early},
                  {ooc::Slab{32, 32}, ooc::Slab{0, 32}, late}});

  auto panel = dev.allocate(m, w);
  qr::QrOptions fine;
  fine.qr_level_opt = true; // fine-grained chunking by tracked row regions
  ooc::SlabPipeline pipe(dev, qr::detail::gemm_options(fine));
  ooc::TaskPlan stage;
  stage.move_in = [&](ooc::MoveInCtx& ctx) {
    qr::detail::move_in_panel(ctx, panel, sim::HostConstRef::phantom(m, w),
                              tracker, 0, w, fine);
  };
  pipe.run_task(stage);
  dev.synchronize();
  // Two chunked copies; the first starts right after the early event (t=1),
  // well before the late event (t=10).
  int copies = 0;
  double first_start = 1e30;
  for (const auto& e : dev.trace().events()) {
    if (e.kind == sim::OpKind::CopyH2D) {
      ++copies;
      first_start = std::min(first_start, e.start);
    }
  }
  EXPECT_EQ(copies, 2);
  EXPECT_LT(first_start, 9.0);
  EXPECT_GE(first_start, 1.0);

  // Coarse mode waits for everything.
  Device dev2(tiny_spec(), ExecutionMode::Phantom);
  sim::Stream w2 = dev2.create_stream();
  dev2.custom_compute(w2, 5.0, 0, sim::OpKind::Custom, "writer");
  sim::Event done = dev2.create_event();
  dev2.record_event(done, w2);
  HostWriteTracker tracker2(32);
  tracker2.record(ooc::Slab{0, 32}, done);
  auto panel2 = dev2.allocate(m, w);
  qr::QrOptions coarse;
  coarse.qr_level_opt = false; // coarse: one copy waiting on everything
  ooc::SlabPipeline pipe2(dev2, qr::detail::gemm_options(coarse));
  ooc::TaskPlan stage2;
  stage2.move_in = [&](ooc::MoveInCtx& ctx) {
    qr::detail::move_in_panel(ctx, panel2, sim::HostConstRef::phantom(m, w),
                              tracker2, 0, w, coarse);
  };
  pipe2.run_task(stage2);
  for (const auto& e : dev2.trace().events()) {
    if (e.kind == sim::OpKind::CopyH2D) {
      EXPECT_GE(e.start, 5.0);
    }
  }
}

// --- Planning helpers ---------------------------------------------------------

TEST(Planning, TileEdgeShrinksWithResidents) {
  sim::DeviceSpec s = sim::DeviceSpec::v100_32gb();
  Device dev(s, ExecutionMode::Phantom);
  qr::QrOptions opts;
  const index_t roomy = qr::detail::plan_tile_edge(dev, 0, opts);
  const index_t tight =
      qr::detail::plan_tile_edge(dev, 28LL << 30, opts);
  EXPECT_GT(roomy, tight);
  EXPECT_GE(tight, 32);
  // The paper's configuration: ~16 GiB of residents at b=16384 -> 16384
  // tiles (Table 2's choice).
  EXPECT_EQ(qr::detail::plan_tile_edge(dev, 16LL << 30, opts), 16384);
}

TEST(Planning, GemmOptionsInheritQrKnobs) {
  qr::QrOptions opts;
  opts.blocksize = 1234;
  opts.ramp_up = true;
  opts.ramp_start = 99;
  opts.staging_buffer = false;
  opts.pipeline_depth = 5;
  opts.precision = blas::GemmPrecision::FP32;
  const ooc::OocGemmOptions g = qr::detail::gemm_options(opts);
  EXPECT_EQ(g.blocksize, 1234);
  EXPECT_TRUE(g.ramp_up);
  EXPECT_EQ(g.ramp_start, 99);
  EXPECT_FALSE(g.staging_buffer);
  EXPECT_EQ(g.pipeline_depth, 5);
  EXPECT_EQ(g.precision, blas::GemmPrecision::FP32);
}

// --- Operand -------------------------------------------------------------------

TEST(Operand, HostAndDeviceVariants) {
  Device dev(tiny_spec(), ExecutionMode::Phantom);
  auto m = dev.allocate(10, 6);
  const auto whole = ooc::Operand::on_device(m);
  EXPECT_TRUE(whole.is_resident());
  EXPECT_EQ(whole.rows(), 10);
  EXPECT_EQ(whole.cols(), 6);
  EXPECT_THROW(whole.host(), InvalidArgument);

  const auto block =
      ooc::Operand::on_device(sim::DeviceMatrixRef(m, 2, 1, 4, 3));
  EXPECT_EQ(block.rows(), 4);
  EXPECT_EQ(block.cols(), 3);
  EXPECT_EQ(block.device_ref().row0, 2);

  const auto host = ooc::Operand::on_host(sim::HostConstRef::phantom(7, 8));
  EXPECT_FALSE(host.is_resident());
  EXPECT_EQ(host.rows(), 7);
  EXPECT_THROW(host.device_ref(), InvalidArgument);

  sim::DeviceMatrix invalid;
  EXPECT_THROW(ooc::Operand::on_device(invalid), InvalidArgument);
}

TEST(Operand, HostBlockHelperChecksBounds) {
  la::Matrix m = la::random_uniform(6, 6, 1);
  const auto ref = sim::HostConstRef(m.view());
  const auto blk = ooc::host_block(ref, 1, 2, 3, 4);
  EXPECT_EQ(blk.rows, 3);
  EXPECT_EQ(blk.data, m.data() + 1 + 2 * m.ld());
  EXPECT_THROW(ooc::host_block(ref, 4, 0, 3, 1), InvalidArgument);
  EXPECT_THROW(ooc::host_block(ref, 0, 5, 1, 2), InvalidArgument);
}

// --- Pinned vs pageable host memory ------------------------------------------

TEST(PinnedMemory, PageableTransfersAreSlower) {
  const auto copy_time = [&](bool pinned) {
    Device dev(tiny_spec(), ExecutionMode::Phantom);
    dev.set_host_memory_pinned(pinned);
    auto m = dev.allocate(1024, 1024);
    sim::Stream s = dev.create_stream();
    dev.copy_h2d(m, sim::HostConstRef::phantom(1024, 1024), s);
    auto out = sim::HostMutRef::phantom(1024, 1024);
    dev.copy_d2h(out, m, s);
    dev.synchronize();
    return dev.makespan();
  };
  const double pinned = copy_time(true);
  const double pageable = copy_time(false);
  // Factor 0.5 => exactly twice as slow (up to the fixed latencies).
  EXPECT_NEAR(pageable / pinned, 2.0, 0.01);
  // Compute durations are unaffected.
  Device dev(tiny_spec(), ExecutionMode::Phantom);
  dev.set_host_memory_pinned(false);
  auto m = dev.allocate(256, 256);
  sim::Stream s = dev.create_stream();
  dev.gemm(blas::Op::NoTrans, blas::Op::NoTrans, 1.0f, m, m, 0.0f, m,
           blas::GemmPrecision::FP16_FP32, s);
  const double t_pageable = dev.trace().events().back().end -
                            dev.trace().events().back().start;
  Device dev2(tiny_spec(), ExecutionMode::Phantom);
  auto m2 = dev2.allocate(256, 256);
  sim::Stream s2 = dev2.create_stream();
  dev2.gemm(blas::Op::NoTrans, blas::Op::NoTrans, 1.0f, m2, m2, 0.0f, m2,
            blas::GemmPrecision::FP16_FP32, s2);
  const double t_pinned = dev2.trace().events().back().end -
                          dev2.trace().events().back().start;
  EXPECT_DOUBLE_EQ(t_pageable, t_pinned);
}

// --- Chrome trace export -------------------------------------------------------

TEST(ChromeTrace, EmitsWellFormedEvents) {
  Device dev(tiny_spec(), ExecutionMode::Phantom);
  auto m = dev.allocate(512, 512);
  sim::Stream s = dev.create_stream();
  dev.copy_h2d(m, sim::HostConstRef::phantom(512, 512), s);
  dev.gemm(blas::Op::NoTrans, blas::Op::NoTrans, 1.0f, m, m, 0.0f, m,
           blas::GemmPrecision::FP16_FP32, s);
  std::ostringstream os;
  dev.trace().write_chrome_json(os);
  const std::string json = os.str();
  // Object form of the Chrome tracing format (see sim/trace_export.hpp).
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"gemm\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"copy_h2d\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("\"Compute\""), std::string::npos);
  // Balanced braces (crude well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

// --- In-core GEMM plans --------------------------------------------------------

TEST(GemmPlan, BlockedAndRecursiveDoIdenticalFlops) {
  // Both in-core algorithms perform exactly the same projector flops when
  // the blocksize divides n; only the shape distribution differs.
  for (const auto& [m, n, b] :
       {std::tuple<index_t, index_t, index_t>{1024, 1024, 128},
        std::tuple<index_t, index_t, index_t>{4096, 2048, 256},
        std::tuple<index_t, index_t, index_t>{512, 512, 64}}) {
    const auto blocked = qr::blocked_qr_gemm_plan(m, n, b);
    const auto recursive = qr::recursive_qr_gemm_plan(m, n, b);
    EXPECT_EQ(qr::plan_flops(blocked), qr::plan_flops(recursive))
        << m << "x" << n << " b=" << b;
  }
}

TEST(GemmPlan, ShapesAndCounts) {
  const auto blocked = qr::blocked_qr_gemm_plan(256, 256, 64);
  // 4 panels; the last has no trailing matrix: 3 x (inner + outer).
  ASSERT_EQ(blocked.size(), 6u);
  EXPECT_EQ(blocked[0].opa, blas::Op::Trans);
  EXPECT_EQ(blocked[0].m, 64);
  EXPECT_EQ(blocked[0].n, 192);
  EXPECT_EQ(blocked[0].k, 256);
  EXPECT_EQ(blocked[1].opa, blas::Op::NoTrans);
  EXPECT_EQ(blocked[1].m, 256);
  EXPECT_EQ(blocked[1].k, 64);

  const auto recursive = qr::recursive_qr_gemm_plan(256, 256, 64);
  // Full binary tree over 4 panels: 3 internal nodes x 2 GEMMs.
  ASSERT_EQ(recursive.size(), 6u);
  // The top split produces the largest GEMMs (128-wide).
  flops_t biggest_rec = 0;
  for (const auto& g : recursive) biggest_rec = std::max(biggest_rec, g.flops());
  flops_t biggest_blk = 0;
  for (const auto& g : blocked) biggest_blk = std::max(biggest_blk, g.flops());
  EXPECT_GT(biggest_rec, biggest_blk);
}

TEST(GemmPlan, ModeledRecursiveBeatsBlockedInCore) {
  // §3.1.3 / [24]: bigger GEMMs run faster on TensorCore, so the recursive
  // plan's modeled time is lower at equal flops.
  sim::PerfModel model(sim::DeviceSpec::v100_32gb());
  const auto blocked = qr::blocked_qr_gemm_plan(32768, 32768, 1024);
  const auto recursive = qr::recursive_qr_gemm_plan(32768, 32768, 1024);
  const double tb =
      qr::plan_seconds(blocked, model, blas::GemmPrecision::FP16_FP32);
  const double tr =
      qr::plan_seconds(recursive, model, blas::GemmPrecision::FP16_FP32);
  EXPECT_LT(tr, tb);
}

TEST(GemmPlan, DegenerateAndInvalid) {
  EXPECT_TRUE(qr::blocked_qr_gemm_plan(64, 32, 32).empty() ||
              qr::blocked_qr_gemm_plan(64, 32, 32).size() == 0);
  EXPECT_TRUE(qr::recursive_qr_gemm_plan(64, 32, 32).empty());
  EXPECT_THROW(qr::blocked_qr_gemm_plan(16, 32, 8), InvalidArgument);
  EXPECT_THROW(qr::recursive_qr_gemm_plan(32, 32, 0), InvalidArgument);
}

// --- Report tables --------------------------------------------------------------

TEST(ReportTable, RendersAlignedGrid) {
  report::Table t("Title:", {"col a", "b"});
  t.add_row({"x", "12345678"});
  t.add_rule();
  t.add_row({"longer cell", "y"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Title:"), std::string::npos);
  EXPECT_NE(out.find("| col a"), std::string::npos);
  EXPECT_NE(out.find("| longer cell"), std::string::npos);
  // All lines between rules share the same width.
  std::istringstream is(out);
  std::string line;
  size_t width = 0;
  std::getline(is, line); // title
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width) << line;
  }
  EXPECT_THROW(t.add_row({"only one"}), InvalidArgument);
  EXPECT_THROW(report::Table("", {}), InvalidArgument);
}

TEST(ReportTable, CompareCellFormatsBothValues) {
  const std::string cell = report::compare_cell(1.54, 1.25, "x");
  EXPECT_NE(cell.find("1.5x"), std::string::npos);
  EXPECT_NE(cell.find("paper 1.2x"), std::string::npos);
}

} // namespace
} // namespace rocqr
