// Randomized property testing of the OOC GEMM engines: for random shapes,
// blocksizes and pipeline options, every engine must match the host BLAS
// and clean up after itself. Complements the hand-picked cases in
// ooc_gemm_test with breadth.
#include <gtest/gtest.h>

#include "leak_check.hpp"

#include "blas/gemm.hpp"
#include "common/rng.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "ooc/gemm_engines.hpp"
#include "ooc/ooc_gemm.hpp"
#include "ooc/operand.hpp"
#include "sim/device.hpp"

namespace rocqr::ooc {
namespace {

using blas::GemmPrecision;
using blas::Op;
using sim::Device;
using sim::ExecutionMode;

sim::DeviceSpec test_spec() {
  sim::DeviceSpec s = sim::DeviceSpec::v100_32gb();
  s.memory_capacity = 512LL << 20;
  return s;
}

OocGemmOptions random_options(Rng& rng) {
  OocGemmOptions opts;
  opts.blocksize = 8 + rng.below(120);
  opts.pipeline_depth = 1 + static_cast<int>(rng.below(3));
  opts.staging_buffer = rng.below(2) == 0;
  opts.ramp_up = rng.below(3) == 0;
  opts.ramp_start = 4 + rng.below(opts.blocksize > 4 ? opts.blocksize - 4 : 1);
  opts.precision = GemmPrecision::FP32;
  return opts;
}

TEST(OocRandomProperty, InnerEnginesMatchHost) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed);
    const index_t k = 32 + rng.below(200);
    const index_t m = 8 + rng.below(80);
    const index_t n = 8 + rng.below(80);
    la::Matrix a = la::random_uniform(k, m, seed * 3 + 1);
    la::Matrix b = la::random_uniform(k, n, seed * 3 + 2);
    la::Matrix expected(m, n);
    blas::gemm(Op::Trans, Op::NoTrans, m, n, k, 1.0f, a.data(), a.ld(),
               b.data(), b.ld(), 0.0f, expected.data(), expected.ld());

    Device dev(test_spec(), ExecutionMode::Real);
    OocGemmOptions opts = random_options(rng);
    la::Matrix c(m, n);
    if (rng.below(2) == 0) {
      if (rng.below(2) == 0) {
        opts.c_panel_cols = 1 + rng.below(n);
      }
      inner_product_recursive(dev, Operand::on_host(a.view()),
                              Operand::on_host(b.view()), c.view(), opts);
    } else {
      inner_product_blocking(dev, Operand::on_host(a.view()),
                             Operand::on_host(b.view()), c.view(), opts);
    }
    dev.synchronize();
    ASSERT_LT(la::relative_difference(c.view(), expected.view()), 1e-4)
        << "seed " << seed;
    ASSERT_EQ(dev.live_allocations(), 0) << "seed " << seed;
  }
}

TEST(OocRandomProperty, GeneralGemmMatchesHost) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed + 100);
    const index_t m = 8 + rng.below(100);
    const index_t n = 8 + rng.below(100);
    const index_t k = 8 + rng.below(60);
    const Op opa = rng.below(2) == 0 ? Op::NoTrans : Op::Trans;
    const Op opb = rng.below(2) == 0 ? Op::NoTrans : Op::Trans;
    const float alpha = static_cast<float>(rng.uniform(-2.0, 2.0));
    const float beta =
        rng.below(3) == 0 ? 0.0f : static_cast<float>(rng.uniform(-1.0, 1.0));

    la::Matrix a = opa == Op::NoTrans ? la::random_uniform(m, k, seed * 5 + 1)
                                      : la::random_uniform(k, m, seed * 5 + 1);
    la::Matrix b = opb == Op::NoTrans ? la::random_uniform(k, n, seed * 5 + 2)
                                      : la::random_uniform(n, k, seed * 5 + 2);
    la::Matrix c0 = la::random_uniform(m, n, seed * 5 + 3);
    la::Matrix c = la::materialize(c0.view());
    la::Matrix expected = la::materialize(c0.view());
    blas::gemm(opa, opb, m, n, k, alpha, a.data(), a.ld(), b.data(), b.ld(),
               beta, expected.data(), expected.ld());

    Device dev(test_spec(), ExecutionMode::Real);
    OocGemmOptions opts = random_options(rng);
    GemmProblem p;
    p.opa = opa;
    p.opb = opb;
    p.alpha = alpha;
    p.beta = beta;
    p.a = a.view();
    p.b = b.view();
    p.c_in = sim::as_const(c.view());
    p.c_out = c.view();
    ooc_gemm(dev, p, opts);
    dev.synchronize();
    ASSERT_LT(la::relative_difference(c.view(), expected.view()), 1e-4)
        << "seed " << seed << " opa=" << static_cast<int>(opa)
        << " opb=" << static_cast<int>(opb) << " alpha=" << alpha
        << " beta=" << beta;
    ASSERT_EQ(dev.live_allocations(), 0) << "seed " << seed;
  }
}

TEST(OocRandomProperty, AsyncNeverSlowerThanSynchronous) {
  // Property over random phantom workloads: pipelining can only help.
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    Rng rng(seed + 500);
    const index_t m = 1024 * (1 + rng.below(8));
    const index_t n = 1024 * (1 + rng.below(8));
    const index_t k = 4096 * (1 + rng.below(8));
    const index_t bs = 512 << rng.below(3);
    const auto run = [&](bool synchronous) {
      Device dev(sim::DeviceSpec::v100_32gb(), ExecutionMode::Phantom);
      OocGemmOptions opts;
      opts.blocksize = bs;
      opts.synchronous = synchronous;
      inner_product_recursive(
          dev, Operand::on_host(sim::HostConstRef::phantom(k, m)),
          Operand::on_host(sim::HostConstRef::phantom(k, n)),
          sim::HostMutRef::phantom(m, n), opts);
      dev.synchronize();
      return dev.makespan();
    };
    EXPECT_LE(run(false), run(true) * 1.0000001) << "seed " << seed;
  }
}

} // namespace
} // namespace rocqr::ooc
