// One-sided Jacobi SVD and the out-of-core randomized SVD pipeline.
#include <gtest/gtest.h>

#include <cmath>

#include "blas/gemm.hpp"
#include "common/error.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "la/svd_jacobi.hpp"
#include "svd/ooc_rsvd.hpp"
#include "sim/device.hpp"

namespace rocqr {
namespace {

using sim::Device;
using sim::ExecutionMode;

sim::DeviceSpec test_spec() {
  sim::DeviceSpec s = sim::DeviceSpec::v100_32gb();
  s.memory_capacity = 512LL << 20;
  return s;
}

/// Builds A = U diag(sigma) Vᵀ with known spectrum via the condition-number
/// generator (geometric spectrum in [1/cond, 1]).
la::Matrix known_spectrum(index_t m, index_t n, double cond,
                          std::uint64_t seed) {
  return la::random_with_condition(m, n, cond, seed);
}

TEST(SvdJacobi, RecoversDiagonalSpectrum) {
  la::Matrix a(6, 4);
  const double diag[4] = {5.0, 3.0, 2.0, 0.5};
  for (index_t j = 0; j < 4; ++j) a(j, j) = static_cast<float>(diag[j]);
  const la::SvdResult svd = la::svd_jacobi(a.view());
  for (index_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(svd.sigma[static_cast<size_t>(j)], diag[j], 1e-5);
  }
  EXPECT_LT(la::orthogonality_error(svd.u.view()), 1e-5);
  EXPECT_LT(la::orthogonality_error(svd.v.view()), 1e-5);
}

TEST(SvdJacobi, ReconstructsRandomMatrix) {
  la::Matrix a = la::random_normal(40, 12, 3);
  const la::SvdResult svd = la::svd_jacobi(a.view());
  // Reconstruct U Σ Vᵀ and compare.
  la::Matrix us(40, 12);
  for (index_t j = 0; j < 12; ++j) {
    for (index_t i = 0; i < 40; ++i) {
      us(i, j) = static_cast<float>(static_cast<double>(svd.u(i, j)) *
                                    svd.sigma[static_cast<size_t>(j)]);
    }
  }
  la::Matrix recon(40, 12);
  blas::gemm(blas::Op::NoTrans, blas::Op::Trans, 40, 12, 12, 1.0f, us.data(),
             us.ld(), svd.v.data(), svd.v.ld(), 0.0f, recon.data(),
             recon.ld());
  EXPECT_LT(la::relative_difference(recon.view(), a.view()), 1e-5);
  // Descending order.
  for (size_t j = 1; j < svd.sigma.size(); ++j) {
    EXPECT_GE(svd.sigma[j - 1], svd.sigma[j]);
  }
}

TEST(SvdJacobi, MatchesKnownGeometricSpectrum) {
  const double cond = 100.0;
  la::Matrix a = known_spectrum(80, 10, cond, 5);
  const la::SvdResult svd = la::svd_jacobi(a.view());
  // The generator places sigma_j = cond^(-j/(n-1)).
  for (index_t j = 0; j < 10; ++j) {
    const double expected = std::pow(cond, -static_cast<double>(j) / 9.0);
    EXPECT_NEAR(svd.sigma[static_cast<size_t>(j)] / expected, 1.0, 1e-3)
        << j;
  }
}

TEST(SvdJacobi, RejectsBadInput) {
  la::Matrix wide(3, 5);
  EXPECT_THROW(la::svd_jacobi(wide.view()), InvalidArgument);
  la::Matrix ok(4, 2);
  EXPECT_THROW(la::svd_jacobi(ok.view(), 0), InvalidArgument);
}

TEST(OocRsvd, RecoversLowRankMatrix) {
  // A with a sharply decaying spectrum: rank-8 signal dominates.
  const index_t m = 300;
  const index_t n = 120;
  la::Matrix a = known_spectrum(m, n, 1e4, 7); // geometric decay over n

  Device dev(test_spec(), ExecutionMode::Real);
  svd::RsvdOptions opts;
  opts.rank = 12;
  opts.oversample = 8;
  opts.power_iterations = 2;
  opts.blocksize = 64;
  opts.precision = blas::GemmPrecision::FP32;
  const svd::RsvdResult r = svd::ooc_randomized_svd(dev, a.view(), opts);

  // Leading singular values match the generator's spectrum.
  for (index_t j = 0; j < 6; ++j) {
    const double expected =
        std::pow(1e4, -static_cast<double>(j) / (n - 1.0));
    EXPECT_NEAR(r.sigma[static_cast<size_t>(j)] / expected, 1.0, 0.02) << j;
  }
  // Factors are orthonormal and the truncated product approximates A to
  // about sigma_{rank+1}.
  EXPECT_LT(la::orthogonality_error(r.u.view()), 1e-3);
  EXPECT_LT(la::orthogonality_error(r.v.view()), 1e-3);
  la::Matrix us(m, opts.rank);
  for (index_t j = 0; j < opts.rank; ++j) {
    for (index_t i = 0; i < m; ++i) {
      us(i, j) =
          static_cast<float>(static_cast<double>(r.u(i, j)) *
                             r.sigma[static_cast<size_t>(j)]);
    }
  }
  la::Matrix recon(m, n);
  blas::gemm(blas::Op::NoTrans, blas::Op::Trans, m, n, opts.rank, 1.0f,
             us.data(), us.ld(), r.v.data(), r.v.ld(), 0.0f, recon.data(),
             recon.ld());
  const double tail =
      std::pow(1e4, -static_cast<double>(opts.rank) / (n - 1.0));
  EXPECT_LT(la::relative_difference(recon.view(), a.view()), 5.0 * tail);
  EXPECT_EQ(dev.live_allocations(), 0);
  EXPECT_GT(r.seconds, 0.0);
}

TEST(OocRsvd, PhantomPaperScaleSchedules) {
  // 131072 x 131072 sketch at paper scale: the dominant cost is streaming A
  // (2 + 2q passes); everything resident is O((m+n) l).
  Device dev(sim::DeviceSpec::v100_32gb(), ExecutionMode::Phantom);
  dev.model().install_paper_calibration();
  svd::RsvdOptions opts;
  opts.rank = 32;
  opts.power_iterations = 1;
  opts.blocksize = 16384;
  const svd::RsvdResult r = svd::ooc_randomized_svd(
      dev, sim::HostConstRef::phantom(131072, 131072), opts);
  EXPECT_GT(r.seconds, 0.0);
  // A is 64 GiB; 4 streaming passes ~ 256 GiB plus small factors.
  const double a_bytes = 131072.0 * 131072.0 * 4.0;
  EXPECT_GT(static_cast<double>(r.bytes_h2d), 3.5 * a_bytes);
  EXPECT_LT(static_cast<double>(r.bytes_h2d), 4.8 * a_bytes);
  EXPECT_LE(dev.memory_peak(), dev.memory_capacity());
  EXPECT_EQ(dev.live_allocations(), 0);
}

TEST(OocRsvd, RejectsBadOptions) {
  Device dev(test_spec(), ExecutionMode::Phantom);
  svd::RsvdOptions opts;
  opts.rank = 0;
  EXPECT_THROW(svd::ooc_randomized_svd(
                   dev, sim::HostConstRef::phantom(64, 32), opts),
               InvalidArgument);
  svd::RsvdOptions wide;
  EXPECT_THROW(svd::ooc_randomized_svd(
                   dev, sim::HostConstRef::phantom(16, 32), wide),
               InvalidArgument);
}

} // namespace
} // namespace rocqr
