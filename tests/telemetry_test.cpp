// MetricsRegistry and SpanLog: atomicity under the thread pool, snapshot
// determinism, histogram bucketing, span nesting.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/telemetry.hpp"
#include "common/thread_pool.hpp"

namespace rocqr::telemetry {
namespace {

TEST(MetricsRegistry, CounterIsAtomicUnderParallelFor) {
  auto& reg = MetricsRegistry::global();
  Counter& c = reg.counter("test.atomic_counter");
  c.reset();
  const index_t n = 200000;
  ThreadPool::global().parallel_for(n, [&](index_t i0, index_t i1) {
    for (index_t i = i0; i < i1; ++i) c.increment();
  });
  EXPECT_EQ(c.value(), n);
}

TEST(MetricsRegistry, HistogramIsAtomicUnderParallelFor) {
  auto& reg = MetricsRegistry::global();
  Histogram& h = reg.histogram("test.atomic_histogram");
  h.reset();
  const index_t n = 50000;
  ThreadPool::global().parallel_for(n, [&](index_t i0, index_t i1) {
    for (index_t i = i0; i < i1; ++i) h.observe(7);
  });
  EXPECT_EQ(h.count(), n);
  EXPECT_EQ(h.sum(), 7 * static_cast<std::int64_t>(n));
  EXPECT_EQ(h.bucket(3), n); // 7 has bit width 3: [4, 8)
}

TEST(MetricsRegistry, LookupReturnsStableInternedReference) {
  auto& reg = MetricsRegistry::global();
  Counter& a = reg.counter("test.interned");
  Counter& b = reg.counter("test.interned");
  EXPECT_EQ(&a, &b);
}

TEST(MetricsRegistry, RejectsKindMismatchForExistingName) {
  auto& reg = MetricsRegistry::global();
  reg.counter("test.kind_mismatch");
  EXPECT_THROW(reg.gauge("test.kind_mismatch"), InvalidArgument);
  EXPECT_THROW(reg.histogram("test.kind_mismatch"), InvalidArgument);
}

TEST(MetricsRegistry, SnapshotIsSortedAndDeterministic) {
  auto& reg = MetricsRegistry::global();
  reg.counter("test.snap.b").add(2);
  reg.counter("test.snap.a").add(1);
  reg.gauge("test.snap.c").set(3.5);

  const auto one = reg.snapshot();
  const auto two = reg.snapshot();
  ASSERT_EQ(one.size(), two.size());
  for (size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].name, two[i].name);
    EXPECT_EQ(one[i].value, two[i].value);
    if (i > 0) {
      EXPECT_LT(one[i - 1].name, one[i].name);
    }
  }

  std::ostringstream j1;
  std::ostringstream j2;
  reg.write_json(j1);
  reg.write_json(j2);
  EXPECT_EQ(j1.str(), j2.str());
  EXPECT_NE(j1.str().find("\"test.snap.a\""), std::string::npos);
}

TEST(MetricsRegistry, GaugeRecordMaxKeepsHighWaterMark) {
  auto& reg = MetricsRegistry::global();
  Gauge& g = reg.gauge("test.high_water");
  g.reset();
  g.record_max(4.0);
  g.record_max(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.record_max(9.0);
  EXPECT_DOUBLE_EQ(g.value(), 9.0);
}

TEST(MetricsRegistry, HistogramRejectsNegativeSamples) {
  auto& reg = MetricsRegistry::global();
  EXPECT_THROW(reg.histogram("test.negative").observe(-1), InvalidArgument);
}

TEST(MetricsRegistry, ResetZeroesValuesButKeepsRegistrations) {
  auto& reg = MetricsRegistry::global();
  Counter& c = reg.counter("test.reset_me");
  c.add(42);
  reg.reset();
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(&reg.counter("test.reset_me"), &c);
}

std::uint64_t fake_cursor_value = 0;

TEST(SpanLog, RecordsNestingParentAndDepth) {
  SpanLog log;
  const auto cursor = [] { return fake_cursor_value; };
  {
    fake_cursor_value = 0;
    Span outer("outer", cursor, log);
    fake_cursor_value = 2;
    {
      Span inner("inner", cursor, log);
      fake_cursor_value = 5;
    }
    {
      Span sibling("sibling", cursor, log);
      fake_cursor_value = 9;
    }
  }
  const auto records = log.snapshot();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].name, "outer");
  EXPECT_EQ(records[0].parent, -1);
  EXPECT_EQ(records[0].depth, 0);
  EXPECT_EQ(records[0].begin_cursor, 0u);
  EXPECT_EQ(records[0].end_cursor, 9u);
  EXPECT_FALSE(records[0].open);

  EXPECT_EQ(records[1].name, "inner");
  EXPECT_EQ(records[1].parent, 0);
  EXPECT_EQ(records[1].depth, 1);
  EXPECT_EQ(records[1].begin_cursor, 2u);
  EXPECT_EQ(records[1].end_cursor, 5u);

  EXPECT_EQ(records[2].name, "sibling");
  EXPECT_EQ(records[2].parent, 0);
  EXPECT_EQ(records[2].depth, 1);
  EXPECT_EQ(records[2].begin_cursor, 5u);
}

TEST(SpanLog, ClearRefusesWhileSpanOpen) {
  SpanLog log;
  const auto cursor = [] { return std::uint64_t{0}; };
  {
    Span open_span("open", cursor, log);
    EXPECT_THROW(log.clear(), InvalidArgument);
  }
  log.clear();
  EXPECT_TRUE(log.empty());
}

} // namespace
} // namespace rocqr::telemetry
