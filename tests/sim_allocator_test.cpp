// Device memory allocator: capacity, alignment, coalescing, fragmentation.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/memory.hpp"

namespace rocqr::sim {
namespace {

TEST(Allocator, BasicAllocateFree) {
  DeviceAllocator alloc(1 << 20);
  EXPECT_EQ(alloc.used(), 0);
  EXPECT_EQ(alloc.free_bytes(), 1 << 20);
  const bytes_t off = alloc.allocate(1000);
  EXPECT_EQ(off, 0);
  EXPECT_EQ(alloc.used(), 1024); // rounded to 256-byte alignment
  EXPECT_EQ(alloc.live_allocations(), 1);
  alloc.free(off);
  EXPECT_EQ(alloc.used(), 0);
  EXPECT_EQ(alloc.live_allocations(), 0);
}

TEST(Allocator, AlignmentIs256) {
  DeviceAllocator alloc(1 << 20);
  const bytes_t a = alloc.allocate(1);
  const bytes_t b = alloc.allocate(1);
  EXPECT_EQ(a % 256, 0);
  EXPECT_EQ(b % 256, 0);
  EXPECT_EQ(b - a, 256);
}

TEST(Allocator, ThrowsOnExhaustion) {
  DeviceAllocator alloc(1024);
  alloc.allocate(512);
  EXPECT_THROW(alloc.allocate(1024), DeviceOutOfMemory);
  // Error message should carry diagnostics.
  try {
    alloc.allocate(4096);
    FAIL();
  } catch (const DeviceOutOfMemory& e) {
    EXPECT_NE(std::string(e.what()).find("device OOM"), std::string::npos);
  }
}

TEST(Allocator, PeakTracksHighWaterMark) {
  DeviceAllocator alloc(1 << 20);
  const bytes_t a = alloc.allocate(256 * 10);
  const bytes_t b = alloc.allocate(256 * 20);
  EXPECT_EQ(alloc.peak_used(), 256 * 30);
  alloc.free(a);
  alloc.free(b);
  EXPECT_EQ(alloc.peak_used(), 256 * 30);
  alloc.allocate(256);
  EXPECT_EQ(alloc.peak_used(), 256 * 30); // unchanged
}

TEST(Allocator, CoalescesNeighbours) {
  DeviceAllocator alloc(256 * 8);
  const bytes_t a = alloc.allocate(256);
  const bytes_t b = alloc.allocate(256);
  const bytes_t c = alloc.allocate(256);
  alloc.allocate(256 * 5); // fill the rest
  // Free middle then neighbours; after coalescing a 3-block hole exists.
  alloc.free(b);
  EXPECT_EQ(alloc.largest_free_block(), 256);
  alloc.free(a);
  EXPECT_EQ(alloc.largest_free_block(), 512);
  alloc.free(c);
  EXPECT_EQ(alloc.largest_free_block(), 768);
  EXPECT_NO_THROW(alloc.allocate(768));
}

TEST(Allocator, FragmentationBlocksLargeAllocation) {
  DeviceAllocator alloc(256 * 4);
  const bytes_t a = alloc.allocate(256);
  const bytes_t b = alloc.allocate(256);
  const bytes_t c = alloc.allocate(256);
  const bytes_t d = alloc.allocate(256);
  alloc.free(a);
  alloc.free(c);
  // 512 bytes free but in two non-adjacent 256 holes.
  EXPECT_EQ(alloc.free_bytes(), 512);
  EXPECT_EQ(alloc.largest_free_block(), 256);
  EXPECT_THROW(alloc.allocate(512), DeviceOutOfMemory);
  alloc.free(b);
  alloc.free(d);
  EXPECT_NO_THROW(alloc.allocate(1024));
}

TEST(Allocator, FirstFitReusesEarliestHole) {
  DeviceAllocator alloc(256 * 10);
  const bytes_t a = alloc.allocate(256 * 2);
  alloc.allocate(256);
  alloc.free(a);
  const bytes_t c = alloc.allocate(256);
  EXPECT_EQ(c, a); // first fit lands in the first hole
}

TEST(Allocator, DoubleFreeAndUnknownOffsetThrow) {
  DeviceAllocator alloc(1 << 16);
  const bytes_t a = alloc.allocate(256);
  alloc.free(a);
  EXPECT_THROW(alloc.free(a), ResourceError);
  EXPECT_THROW(alloc.free(12345), ResourceError);
}

TEST(Allocator, RejectsBadArguments) {
  EXPECT_THROW(DeviceAllocator(0), InvalidArgument);
  EXPECT_THROW(DeviceAllocator(-5), InvalidArgument);
  DeviceAllocator alloc(1024);
  EXPECT_THROW(alloc.allocate(0), InvalidArgument);
  EXPECT_THROW(alloc.allocate(-1), InvalidArgument);
}

TEST(Allocator, ManyAllocationsChurn) {
  DeviceAllocator alloc(1 << 20);
  std::vector<bytes_t> offsets;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 100; ++i) {
      offsets.push_back(alloc.allocate(256 * (1 + i % 7)));
    }
    // Free every other allocation, then the rest.
    for (size_t i = 0; i < offsets.size(); i += 2) alloc.free(offsets[i]);
    for (size_t i = 1; i < offsets.size(); i += 2) alloc.free(offsets[i]);
    offsets.clear();
    EXPECT_EQ(alloc.used(), 0);
    EXPECT_EQ(alloc.largest_free_block(), 1 << 20); // fully coalesced
  }
}

} // namespace
} // namespace rocqr::sim
