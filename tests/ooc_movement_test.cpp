// §3.2 analytic data-movement model: the paper's closed forms vs their own
// per-iteration sums, and the blocking-vs-recursive asymptotics.
#include <gtest/gtest.h>

#include "leak_check.hpp"

#include <cmath>

#include "common/error.hpp"
#include "ooc/movement_model.hpp"

namespace rocqr::ooc {
namespace {

TEST(MovementModel, PanelCount) {
  EXPECT_EQ(panel_count(131072, 16384), 8);
  EXPECT_EQ(panel_count(64, 64), 1);
  EXPECT_THROW(panel_count(100, 32), rocqr::InvalidArgument);
  EXPECT_THROW(panel_count(0, 32), rocqr::InvalidArgument);
  EXPECT_THROW(panel_count(32, 0), rocqr::InvalidArgument);
}

TEST(MovementModel, BlockingClosedFormsMatchSums) {
  // The paper's printed closed forms for the blocking algorithm simplify
  // exactly from the per-iteration sums.
  const index_t sizes[][3] = {
      {131072, 131072, 16384}, {65536, 65536, 8192},   {262144, 65536, 8192},
      {131072, 131072, 8192},  {32768, 16384, 4096},   {8192, 8192, 1024},
  };
  for (const auto& s : sizes) {
    const double h2d_sum = blocking_h2d_words_sum(s[0], s[1], s[2]);
    const double h2d_cf = blocking_h2d_words(s[0], s[1], s[2]);
    EXPECT_NEAR(h2d_cf / h2d_sum, 1.0, 1e-12) << s[0] << "x" << s[1];
    const double d2h_sum = blocking_d2h_words_sum(s[0], s[1], s[2]);
    const double d2h_cf = blocking_d2h_words(s[0], s[1], s[2]);
    EXPECT_NEAR(d2h_cf / d2h_sum, 1.0, 1e-12) << s[0] << "x" << s[1];
  }
}

TEST(MovementModel, RecursiveClosedFormNearItsSum) {
  // The paper's recursive closed form does not simplify exactly from its own
  // level sum (a known inconsistency); both must agree within a factor ~2
  // and share the log(k)·mn growth.
  const index_t sizes[][3] = {
      {131072, 131072, 16384}, {65536, 65536, 8192}, {262144, 65536, 8192}};
  for (const auto& s : sizes) {
    const double sum = recursive_h2d_words_sum(s[0], s[1], s[2]);
    const double cf = recursive_h2d_words(s[0], s[1], s[2]);
    EXPECT_GT(cf / sum, 0.5);
    EXPECT_LT(cf / sum, 2.5);
    EXPECT_DOUBLE_EQ(recursive_d2h_words(s[0], s[1], s[2]),
                     recursive_d2h_words_sum(s[0], s[1], s[2]));
  }
}

TEST(MovementModel, RecursiveMovesLessThanBlocking) {
  // The paper's central §3.2 claim: recursive ~ log k, blocking ~ k.
  for (index_t b : {4096, 8192, 16384}) {
    const index_t n = 131072;
    EXPECT_LT(recursive_h2d_words(n, n, b), blocking_h2d_words(n, n, b)) << b;
    EXPECT_LT(recursive_d2h_words(n, n, b), blocking_d2h_words(n, n, b)) << b;
    EXPECT_LT(recursive_h2d_words_sum(n, n, b),
              blocking_h2d_words_sum(n, n, b))
        << b;
  }
}

TEST(MovementModel, GapGrowsWithPanelCount) {
  const index_t n = 131072;
  double prev_ratio = 0.0;
  for (index_t b : {32768, 16384, 8192, 4096, 2048}) {
    const double ratio =
        blocking_h2d_words(n, n, b) / recursive_h2d_words(n, n, b);
    EXPECT_GT(ratio, prev_ratio) << "b=" << b; // more panels => bigger gap
    prev_ratio = ratio;
  }
  EXPECT_GT(prev_ratio, 4.0); // at k=64 the gap is substantial
}

TEST(MovementModel, ScalesLinearlyInRows) {
  // Both models are linear in m for fixed n, b.
  const index_t n = 65536;
  const index_t b = 8192;
  const double b1 = blocking_h2d_words(65536, n, b);
  const double b2 = blocking_h2d_words(131072, n, b);
  const double r1 = recursive_h2d_words(65536, n, b);
  const double r2 = recursive_h2d_words(131072, n, b);
  EXPECT_GT(b2, b1 * 1.8);
  EXPECT_LT(b2, b1 * 2.2);
  EXPECT_GT(r2, r1 * 1.8);
  EXPECT_LT(r2, r1 * 2.2);
}

TEST(MovementModel, PaperScaleSanity) {
  // At the paper's headline size (131072^2, b=16384) the model predicts
  // several hundred gigabytes H2D for both algorithms; with fp32 words at
  // 13 GB/s this is the right order for Table 3's 37.9 s vs 47.2 s.
  const double words_r = recursive_h2d_words(131072, 131072, 16384);
  const double words_b = blocking_h2d_words(131072, 131072, 16384);
  const double secs_r = words_r * 4 / 13e9;
  const double secs_b = words_b * 4 / 13e9;
  EXPECT_GT(secs_r, 20.0);
  EXPECT_LT(secs_r, 70.0);
  EXPECT_GT(secs_b, secs_r);
  EXPECT_LT(secs_b, 120.0);
}

TEST(MovementModel, RecursiveRequiresPowerOfTwoPanels) {
  EXPECT_NO_THROW(recursive_h2d_words(1024, 1024, 128));
  EXPECT_THROW(recursive_h2d_words(1024, 768, 128), rocqr::InvalidArgument);
}

} // namespace
} // namespace rocqr::ooc
