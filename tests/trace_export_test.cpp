// Chrome-trace exporter schema test: the JSON parses, "X" events are emitted
// in nondecreasing ts order, engine tracks never self-overlap, the three
// engine thread_name tracks are present, and phase spans nest.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/telemetry.hpp"
#include "sim/trace.hpp"
#include "sim/trace_export.hpp"

namespace rocqr::sim {
namespace {

// ---------------------------------------------------------------------------
// Minimal validating JSON scanner. Parses the whole document (so malformed
// output fails loudly) and collects every element of the top-level
// "traceEvents" array as a flat map of top-level fields; the raw text of
// scalar values is kept verbatim, nested objects keep their raw JSON.
class JsonScanner {
 public:
  using Event = std::map<std::string, std::string>;

  explicit JsonScanner(std::string text) : s_(std::move(text)) {}

  bool parse() {
    i_ = 0;
    ok_ = true;
    skip_ws();
    value(/*at_root=*/true);
    skip_ws();
    if (i_ != s_.size()) fail("trailing characters");
    return ok_;
  }

  const std::vector<Event>& events() const { return events_; }
  const std::string& error() const { return error_; }

 private:
  void fail(const std::string& what) {
    if (ok_) error_ = what + " at offset " + std::to_string(i_);
    ok_ = false;
  }
  void skip_ws() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\n' ||
                              s_[i_] == '\r' || s_[i_] == '\t')) {
      ++i_;
    }
  }
  bool consume(char c) {
    if (i_ < s_.size() && s_[i_] == c) {
      ++i_;
      return true;
    }
    fail(std::string("expected '") + c + "'");
    return false;
  }

  // Returns the raw text of the value just parsed.
  std::string value(bool at_root = false) {
    if (!ok_ || i_ >= s_.size()) {
      fail("expected value");
      return {};
    }
    const size_t begin = i_;
    switch (s_[i_]) {
      case '{': object(at_root); break;
      case '[': array(/*collect=*/false); break;
      case '"': string_token(); break;
      default: scalar_token(); break;
    }
    return s_.substr(begin, i_ - begin);
  }

  std::string string_token() {
    if (!consume('"')) return {};
    const size_t begin = i_;
    while (i_ < s_.size() && s_[i_] != '"') {
      if (s_[i_] == '\\') {
        ++i_;
        if (i_ >= s_.size()) break;
      }
      ++i_;
    }
    const std::string body = s_.substr(begin, i_ - begin);
    consume('"');
    return body;
  }

  void scalar_token() {
    const size_t begin = i_;
    while (i_ < s_.size() &&
           (std::isalnum(static_cast<unsigned char>(s_[i_])) != 0 ||
            s_[i_] == '-' || s_[i_] == '+' || s_[i_] == '.')) {
      ++i_;
    }
    const std::string t = s_.substr(begin, i_ - begin);
    if (t.empty()) fail("expected scalar");
    if (t == "true" || t == "false" || t == "null") return;
    char* end = nullptr;
    const std::string copy = t;
    std::strtod(copy.c_str(), &end);
    if (end != copy.c_str() + copy.size()) fail("bad number '" + t + "'");
  }

  void object(bool at_root) {
    consume('{');
    skip_ws();
    if (ok_ && i_ < s_.size() && s_[i_] == '}') {
      ++i_;
      return;
    }
    while (ok_) {
      skip_ws();
      const std::string key = string_token();
      skip_ws();
      consume(':');
      skip_ws();
      if (at_root && key == "traceEvents") {
        array(/*collect=*/true);
      } else {
        value();
      }
      skip_ws();
      if (i_ < s_.size() && s_[i_] == ',') {
        ++i_;
        continue;
      }
      consume('}');
      return;
    }
  }

  void array(bool collect) {
    consume('[');
    skip_ws();
    if (ok_ && i_ < s_.size() && s_[i_] == ']') {
      ++i_;
      return;
    }
    while (ok_) {
      skip_ws();
      if (collect) {
        events_.push_back(flat_object());
      } else {
        value();
      }
      skip_ws();
      if (i_ < s_.size() && s_[i_] == ',') {
        ++i_;
        continue;
      }
      consume(']');
      return;
    }
  }

  // One traceEvents element: top-level fields only, nested values raw.
  Event flat_object() {
    Event out;
    consume('{');
    while (ok_) {
      skip_ws();
      const std::string key = string_token();
      skip_ws();
      consume(':');
      skip_ws();
      if (i_ < s_.size() && s_[i_] == '"') {
        out[key] = string_token();
      } else {
        out[key] = value();
      }
      skip_ws();
      if (i_ < s_.size() && s_[i_] == ',') {
        ++i_;
        continue;
      }
      consume('}');
      return out;
    }
    return out;
  }

  std::string s_;
  size_t i_ = 0;
  bool ok_ = true;
  std::string error_;
  std::vector<Event> events_;
};

double num(const JsonScanner::Event& e, const std::string& key) {
  const auto it = e.find(key);
  EXPECT_NE(it, e.end()) << "missing field " << key;
  return it == e.end() ? 0.0 : std::strtod(it->second.c_str(), nullptr);
}

std::string str(const JsonScanner::Event& e, const std::string& key) {
  const auto it = e.find(key);
  return it == e.end() ? std::string() : it->second;
}

TraceEvent make_event(std::int64_t id, const std::string& name, OpKind kind,
                      Resource res, int stream, sim_time_t start,
                      sim_time_t end, bytes_t bytes = 0, flops_t flops = 0) {
  TraceEvent e;
  e.id = id;
  e.name = name;
  e.kind = kind;
  e.resource = res;
  e.stream = stream;
  e.start = start;
  e.end = end;
  e.bytes = bytes;
  e.flops = flops;
  return e;
}

/// A small two-level workload: a root span around everything and a nested
/// panel span around the two compute ops. Span cursors index the trace.
struct Exported {
  Trace trace;
  telemetry::SpanLog log;
  std::string json;
};

void export_sample(Exported& x) {
  const auto cursor = [&x] {
    return static_cast<std::uint64_t>(x.trace.size());
  };
  {
    telemetry::Span root("factor", cursor, x.log);
    x.trace.add(make_event(0, "move-in \"A\"", OpKind::CopyH2D, Resource::H2D,
                           0, 0.0, 1.0, 64));
    {
      telemetry::Span panel("panel j0=0", cursor, x.log);
      x.trace.add(make_event(1, "panel", OpKind::Panel, Resource::Compute, 1,
                             1.0, 2.0, 0, 100));
      x.trace.add(make_event(2, "gemm", OpKind::Gemm, Resource::Compute, 1,
                             2.0, 4.0, 0, 900));
    }
    x.trace.add(make_event(3, "move-out", OpKind::CopyD2H, Resource::D2H, 2,
                           4.0, 5.0, 32));
  }
  std::ostringstream os;
  write_chrome_trace(os, x.trace, &x.log);
  x.json = os.str();
}

TEST(ChromeTraceExport, OutputIsValidJson) {
  Exported x;
  export_sample(x);
  JsonScanner scan(x.json);
  ASSERT_TRUE(scan.parse()) << scan.error() << "\n" << x.json;
  EXPECT_NE(x.json.find("\"displayTimeUnit\""), std::string::npos);
  // 4 ops x 2 tracks + 1 phase-covered pair of spans + metadata entries.
  EXPECT_GE(scan.events().size(), 10u);
}

TEST(ChromeTraceExport, EmptyTraceIsStillValidJson) {
  Trace empty;
  std::ostringstream os;
  write_chrome_trace(os, empty);
  JsonScanner scan(os.str());
  EXPECT_TRUE(scan.parse()) << scan.error() << "\n" << os.str();
}

TEST(ChromeTraceExport, TimestampsAreMonotoneNondecreasing) {
  Exported x;
  export_sample(x);
  JsonScanner scan(x.json);
  ASSERT_TRUE(scan.parse()) << scan.error();
  double last_ts = -1.0;
  int duration_events = 0;
  for (const auto& e : scan.events()) {
    if (str(e, "ph") != "X") continue;
    const double ts = num(e, "ts");
    EXPECT_GE(ts, last_ts);
    EXPECT_GE(num(e, "dur"), 0.0);
    last_ts = ts;
    ++duration_events;
  }
  // 4 engine + 4 stream + 2 phase events.
  EXPECT_EQ(duration_events, 10);
}

TEST(ChromeTraceExport, EngineTracksNeverOverlap) {
  Exported x;
  export_sample(x);
  JsonScanner scan(x.json);
  ASSERT_TRUE(scan.parse()) << scan.error();
  std::map<int, double> track_end; // engine tid -> latest end seen
  for (const auto& e : scan.events()) {
    if (str(e, "ph") != "X" || num(e, "pid") != 0) continue;
    const int tid = static_cast<int>(num(e, "tid"));
    const double ts = num(e, "ts");
    EXPECT_GE(ts, track_end[tid]) << "overlap on engine track " << tid;
    track_end[tid] = ts + num(e, "dur");
  }
  EXPECT_EQ(track_end.size(), 3u); // all three engines saw work
}

TEST(ChromeTraceExport, DeclaresEngineThreadNames) {
  Exported x;
  export_sample(x);
  JsonScanner scan(x.json);
  ASSERT_TRUE(scan.parse()) << scan.error();
  std::vector<std::string> engine_names;
  for (const auto& e : scan.events()) {
    if (str(e, "ph") == "M" && str(e, "name") == "thread_name" &&
        num(e, "pid") == 0) {
      const std::string args = str(e, "args");
      for (const char* lane : {"H2D", "Compute", "D2H"}) {
        if (args.find(lane) != std::string::npos) engine_names.push_back(lane);
      }
    }
  }
  ASSERT_EQ(engine_names.size(), 3u);
  EXPECT_EQ(engine_names[0], "H2D");
  EXPECT_EQ(engine_names[1], "Compute");
  EXPECT_EQ(engine_names[2], "D2H");
}

TEST(ChromeTraceExport, PhaseSpansNestWithinParents) {
  Exported x;
  export_sample(x);
  JsonScanner scan(x.json);
  ASSERT_TRUE(scan.parse()) << scan.error();
  std::map<std::string, std::pair<double, double>> phases;
  for (const auto& e : scan.events()) {
    if (str(e, "ph") != "X" || num(e, "pid") != 2) continue;
    phases[str(e, "name")] = {num(e, "ts"), num(e, "ts") + num(e, "dur")};
  }
  ASSERT_EQ(phases.size(), 2u);
  const auto root = phases.at("factor");
  const auto panel = phases.at("panel j0=0");
  // Root covers all four ops, the panel only the two compute ops.
  EXPECT_DOUBLE_EQ(root.first, 0.0);
  EXPECT_DOUBLE_EQ(root.second, 5e6);
  EXPECT_DOUBLE_EQ(panel.first, 1e6);
  EXPECT_DOUBLE_EQ(panel.second, 4e6);
  EXPECT_GE(panel.first, root.first);
  EXPECT_LE(panel.second, root.second);
}

TEST(ChromeTraceExport, SpansWithoutEventsHaveNoTimelineFootprint) {
  Trace trace;
  telemetry::SpanLog log;
  const auto cursor = [&trace] {
    return static_cast<std::uint64_t>(trace.size());
  };
  { telemetry::Span idle("idle", cursor, log); } // no events enqueued inside
  trace.add(make_event(0, "gemm", OpKind::Gemm, Resource::Compute, 0, 0.0,
                       1.0, 0, 10));
  std::ostringstream os;
  write_chrome_trace(os, trace, &log);
  JsonScanner scan(os.str());
  ASSERT_TRUE(scan.parse()) << scan.error();
  for (const auto& e : scan.events()) {
    EXPECT_NE(str(e, "name"), "idle");
  }
}

} // namespace
} // namespace rocqr::sim
