// Blocksize autotuning (phantom dry runs) and mixed-precision iterative
// refinement.
#include <gtest/gtest.h>

#include <string>

#include "blas/gemm.hpp"
#include "common/error.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "qr/autotune.hpp"
#include "qr/refine.hpp"
#include "sim/device.hpp"

namespace rocqr::qr {
namespace {

TEST(Autotune, FindsFeasibleBlocksizeOn32GB) {
  const TuneResult r =
      tune_blocksize(sim::DeviceSpec::v100_32gb(), 131072, 131072, true);
  EXPECT_GT(r.best_blocksize, 0);
  EXPECT_GT(r.best_seconds, 0.0);
  // The winner must actually be the sweep's feasible minimum.
  for (const TunePoint& p : r.sweep) {
    if (p.fits) {
      EXPECT_LE(r.best_seconds, p.seconds + 1e-12);
    }
  }
  // And large blocksizes that cannot fit are flagged, not silently skipped.
  bool any_oom = false;
  for (const TunePoint& p : r.sweep) any_oom |= !p.fits;
  EXPECT_TRUE(any_oom); // 65536-wide panels exceed 32 GB
}

TEST(Autotune, SmallerMemoryPrefersSmallerBlocks) {
  const TuneResult big =
      tune_blocksize(sim::DeviceSpec::v100_32gb(), 131072, 131072, false);
  const TuneResult small =
      tune_blocksize(sim::DeviceSpec::v100_16gb(), 131072, 131072, false);
  EXPECT_LE(small.best_blocksize, big.best_blocksize);
  // The 16 GB card fits strictly fewer of the large candidates.
  int feasible_big = 0;
  int feasible_small = 0;
  for (const TunePoint& p : big.sweep) feasible_big += p.fits ? 1 : 0;
  for (const TunePoint& p : small.sweep) feasible_small += p.fits ? 1 : 0;
  EXPECT_LT(feasible_small, feasible_big);
}

TEST(Autotune, RecursiveToleratesSmallBlocksBetterThanBlocking) {
  // The paper's robustness claim as a tuning outcome: at 16 GB, recursion's
  // best time degrades far less than blocking's.
  const TuneResult rec32 =
      tune_blocksize(sim::DeviceSpec::v100_32gb(), 131072, 131072, true);
  const TuneResult rec16 =
      tune_blocksize(sim::DeviceSpec::v100_16gb(), 131072, 131072, true);
  const TuneResult blk32 =
      tune_blocksize(sim::DeviceSpec::v100_32gb(), 131072, 131072, false);
  const TuneResult blk16 =
      tune_blocksize(sim::DeviceSpec::v100_16gb(), 131072, 131072, false);
  EXPECT_LT(rec16.best_seconds / rec32.best_seconds,
            blk16.best_seconds / blk32.best_seconds);
}

TEST(Autotune, SmallNReturnsTailCandidate) {
  // n below min_blocksize must not throw or return an empty sweep: the
  // clamped tail candidate b = n is the single (feasible) point.
  const TuneResult r =
      tune_blocksize(sim::DeviceSpec::v100_32gb(), 512, 512, true);
  ASSERT_EQ(r.sweep.size(), 1u);
  EXPECT_EQ(r.sweep[0].blocksize, 512);
  EXPECT_TRUE(r.sweep[0].fits);
  EXPECT_EQ(r.best_blocksize, 512);
  EXPECT_GT(r.best_seconds, 0.0);
  EXPECT_GT(r.best_peak_bytes, 0u);
}

TEST(Autotune, NonPowerOfTwoNIncludesTail) {
  // 1536 is not on the power-of-two ladder from min_blocksize=1024; the
  // sweep must still include the full-width panel b = n as a tail point.
  const TuneResult r =
      tune_blocksize(sim::DeviceSpec::v100_32gb(), 1536, 1536, false);
  ASSERT_EQ(r.sweep.size(), 2u);
  EXPECT_EQ(r.sweep[0].blocksize, 1024);
  EXPECT_EQ(r.sweep[1].blocksize, 1536);
  bool best_in_sweep = false;
  for (const TunePoint& p : r.sweep) {
    EXPECT_TRUE(p.fits);
    best_in_sweep |= p.blocksize == r.best_blocksize;
  }
  EXPECT_TRUE(best_in_sweep);
}

TEST(Autotune, AllOomNamesConstraint) {
  // A device too small for any candidate: the error must name the actual
  // constraint (shape, device, capacity, candidate range), not a generic
  // "allocation failed".
  sim::DeviceSpec tiny = sim::DeviceSpec::v100_32gb();
  tiny.name = "tiny-1MB";
  tiny.memory_capacity = 1 << 20;
  try {
    tune_blocksize(tiny, 65536, 65536, true);
    FAIL() << "expected DeviceOutOfMemory";
  } catch (const DeviceOutOfMemory& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no feasible blocksize"), std::string::npos) << msg;
    EXPECT_NE(msg.find("tiny-1MB"), std::string::npos) << msg;
    EXPECT_NE(msg.find("65536"), std::string::npos) << msg;
  }
}

TEST(Autotune, RejectsBadArguments) {
  EXPECT_THROW(tune_blocksize(sim::DeviceSpec::v100_32gb(), 16, 32, true),
               InvalidArgument);
  EXPECT_THROW(tune_blocksize(sim::DeviceSpec::v100_32gb(), 64, 64, true,
                              QrOptions{}, 128, 64),
               InvalidArgument);
}

TEST(Refine, RecoversFp32AccuracyFromFp16Factorization) {
  const index_t m = 300;
  const index_t n = 60;
  const index_t nrhs = 4;
  la::Matrix a = la::random_with_condition(m, n, 50.0, 31);
  la::Matrix x_true = la::random_uniform(n, nrhs, 32);
  la::Matrix b(m, nrhs);
  blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, m, nrhs, n, 1.0f, a.data(),
             a.ld(), x_true.data(), x_true.ld(), 0.0f, b.data(), b.ld());

  // One sweep (= plain solve through the fp16 factors): visibly inaccurate.
  const RefineResult raw = ls_solve_refined(
      a.view(), b.view(), blas::GemmPrecision::FP16_FP32, 0);
  const double err_raw = la::relative_difference(raw.x.view(), x_true.view());

  // Full refinement: back to fp32-level accuracy.
  const RefineResult refined = ls_solve_refined(
      a.view(), b.view(), blas::GemmPrecision::FP16_FP32, 10, 1e-5);
  const double err_ref =
      la::relative_difference(refined.x.view(), x_true.view());

  EXPECT_GT(err_raw, 1e-4);
  EXPECT_LT(err_ref, 5e-5);
  EXPECT_LT(err_ref, err_raw);
  EXPECT_GT(refined.iterations, 1);
}

TEST(Refine, Fp32FactorizationConvergesImmediately) {
  const index_t m = 200;
  const index_t n = 40;
  la::Matrix a = la::random_normal(m, n, 33);
  la::Matrix x_true = la::random_uniform(n, 1, 34);
  la::Matrix b(m, 1);
  blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, m, 1, n, 1.0f, a.data(),
             a.ld(), x_true.data(), x_true.ld(), 0.0f, b.data(), b.ld());
  const RefineResult r =
      ls_solve_refined(a.view(), b.view(), blas::GemmPrecision::FP32, 10);
  EXPECT_LT(la::relative_difference(r.x.view(), x_true.view()), 1e-4);
  EXPECT_LE(r.iterations, 3);
}

TEST(Refine, InconsistentSystemFindsLeastSquaresSolution) {
  // Overdetermined with noise: the refined solution must satisfy the
  // normal equations (Aᵀr ~ 0) even though |r| stays large.
  const index_t m = 240;
  const index_t n = 30;
  la::Matrix a = la::random_normal(m, n, 35);
  la::Matrix b = la::random_normal(m, 1, 36); // generic rhs, not in range(A)
  const RefineResult r =
      ls_solve_refined(a.view(), b.view(), blas::GemmPrecision::FP16_FP32, 12,
                       1e-4);
  EXPECT_LT(r.final_residual_norm, 1e-2);
}

TEST(Refine, RejectsBadShapes) {
  la::Matrix wide(4, 8);
  la::Matrix b(4, 1);
  EXPECT_THROW(ls_solve_refined(wide.view(), b.view()), InvalidArgument);
  la::Matrix ok = la::random_normal(8, 4, 1);
  la::Matrix bad_b(7, 1);
  EXPECT_THROW(ls_solve_refined(ok.view(), bad_b.view()), InvalidArgument);
}

} // namespace
} // namespace rocqr::qr
