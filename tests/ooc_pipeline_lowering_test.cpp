// SlabPipeline is a lowering layer: a declarative SlabPlan compiles into
// TaskGraph nodes and fence edges, and the executor replays the legacy
// three-stream schedule. This suite pins the lowering contract directly —
// a slab loop produces the *same device timeline* as the hand-built task
// graph it documents itself as compiling to, the fence taxonomy lands on
// the right nodes, and every graph reports its lowered form through
// PlanLog (--explain-plan's single chokepoint).
#include <gtest/gtest.h>

#include "leak_check.hpp"

#include <string>
#include <vector>

#include "ooc/pipeline.hpp"
#include "ooc/task_graph.hpp"
#include "sim/device.hpp"

namespace rocqr {
namespace {

using sim::Device;
using sim::ExecutionMode;

constexpr index_t kB = 4096;
constexpr index_t kSteps = 4;

ooc::OocGemmOptions small_options() {
  ooc::OocGemmOptions opts;
  opts.blocksize = kB;
  return opts;
}

/// The shared loop body: stream a slab into a depth-2 pool, square it into
/// an accumulator, drain the accumulator — op names identical in both the
/// SlabPlan and the hand-built mirror so the traces can be compared.
struct LoopBuffers {
  explicit LoopBuffers(Device& dev)
      : pool{dev.allocate(kB, kB, sim::StoragePrecision::FP32),
             dev.allocate(kB, kB, sim::StoragePrecision::FP32)},
        acc(dev.allocate(kB, kB, sim::StoragePrecision::FP32)) {}
  sim::DeviceMatrix pool[2];
  sim::DeviceMatrix acc;
  sim::HostConstRef in = sim::HostConstRef::phantom(kB, kB);
  sim::HostMutRef out = sim::HostMutRef::phantom(kB, kB);

  void release(Device& dev) {
    dev.free(acc);
    dev.free(pool[1]);
    dev.free(pool[0]);
  }
};

std::vector<sim::TraceEvent> run_via_pipeline(Device& dev) {
  LoopBuffers b(dev);
  {
    ooc::SlabPipeline pipe(dev, small_options());
    ooc::SlabPlan plan;
    plan.label = "eq";
    plan.steps = kSteps;
    plan.input_slots = 2;
    plan.move_in = [&](ooc::MoveInCtx& c, index_t s) {
      c.h2d(sim::DeviceMatrixRef(b.pool[s % 2]), b.in,
            "h2d " + std::to_string(s));
    };
    plan.compute = [&](ooc::ComputeCtx& c, index_t s) {
      c.gemm(blas::Op::NoTrans, blas::Op::NoTrans, 1.0f,
             sim::DeviceMatrixRef(b.pool[s % 2]),
             sim::DeviceMatrixRef(b.pool[s % 2]), 0.0f,
             sim::DeviceMatrixRef(b.acc), "gemm " + std::to_string(s));
    };
    plan.move_out = [&](ooc::MoveOutCtx& c, index_t g) {
      c.d2h(b.out, sim::DeviceMatrixRef(b.acc), "d2h " + std::to_string(g));
    };
    pipe.run(plan);
    EXPECT_NE(pipe.plan_description().find("slab-pipeline eq: 4 step(s)"),
              std::string::npos);
    EXPECT_NE(pipe.plan_description().find("task-graph run:"),
              std::string::npos);
  }
  dev.synchronize();
  b.release(dev);
  return dev.trace().events();
}

std::vector<sim::TraceEvent> run_via_hand_built_graph(Device& dev) {
  LoopBuffers b(dev);
  {
    ooc::TaskGraph g(dev, small_options());
    std::vector<ooc::TaskId> computes;
    for (index_t s = 0; s < kSteps; ++s) {
      // The documented lowering: M1's only dep is the input-pool WAR fence
      // (the compute two steps back), C chains on M1, O on C.
      std::vector<ooc::TaskId> m1_deps;
      if (s >= 2) m1_deps.push_back(computes[static_cast<size_t>(s - 2)]);
      const ooc::TaskId m1 = g.add(
          ooc::TaskStage::MoveIn, "in eq s" + std::to_string(s),
          [&b, s](ooc::TaskCtx& t) {
            t.h2d(sim::DeviceMatrixRef(b.pool[s % 2]), b.in,
                  "h2d " + std::to_string(s));
          },
          std::move(m1_deps));
      const ooc::TaskId c = g.add(
          ooc::TaskStage::Compute, "comp eq s" + std::to_string(s),
          [&b, s](ooc::TaskCtx& t) {
            t.gemm(blas::Op::NoTrans, blas::Op::NoTrans, 1.0f,
                   sim::DeviceMatrixRef(b.pool[s % 2]),
                   sim::DeviceMatrixRef(b.pool[s % 2]), 0.0f,
                   sim::DeviceMatrixRef(b.acc), "gemm " + std::to_string(s));
          },
          {m1});
      computes.push_back(c);
      g.add(
          ooc::TaskStage::MoveOut, "out eq g" + std::to_string(s),
          [&b, s](ooc::TaskCtx& t) {
            t.d2h(b.out, sim::DeviceMatrixRef(b.acc),
                  "d2h " + std::to_string(s));
          },
          {c});
    }
    g.run();
  }
  dev.synchronize();
  b.release(dev);
  return dev.trace().events();
}

TEST(SlabPipelineLowering, LoopLowersToTheDocumentedTaskGraph) {
  // The equivalence pin: the declarative loop and its hand-built task-graph
  // mirror produce identical device timelines — same ops, same order, same
  // start/end times. The lowering adds nothing and reorders nothing.
  Device pipe_dev(sim::DeviceSpec::v100_32gb(), ExecutionMode::Phantom);
  Device graph_dev(sim::DeviceSpec::v100_32gb(), ExecutionMode::Phantom);
  const auto pipe_events = run_via_pipeline(pipe_dev);
  const auto graph_events = run_via_hand_built_graph(graph_dev);

  ASSERT_EQ(pipe_events.size(), graph_events.size());
  for (size_t i = 0; i < pipe_events.size(); ++i) {
    EXPECT_EQ(pipe_events[i].name, graph_events[i].name) << "event " << i;
    EXPECT_EQ(pipe_events[i].start, graph_events[i].start) << "event " << i;
    EXPECT_EQ(pipe_events[i].end, graph_events[i].end) << "event " << i;
  }
}

TEST(SlabPipelineLowering, InputPoolFenceDelaysOverwritingMoveIn) {
  // Depth-2 pool: the move-in of step s reuses the buffer the compute of
  // step s-2 read, so "h2d 2" may not start before "gemm 0" ends.
  Device dev(sim::DeviceSpec::v100_32gb(), ExecutionMode::Phantom);
  const auto events = run_via_pipeline(dev);
  double gemm0_end = -1, h2d2_start = -1;
  for (const auto& e : events) {
    if (e.name == "gemm 0") gemm0_end = e.end;
    if (e.name == "h2d 2") h2d2_start = e.start;
  }
  ASSERT_GE(gemm0_end, 0.0);
  ASSERT_GE(h2d2_start, 0.0);
  EXPECT_GE(h2d2_start, gemm0_end);
}

TEST(SlabPipelineLowering, SynchronousModeSerializesTheLoop) {
  // opts.synchronous inserts full-device ordering between stages; the
  // async pipeline must strictly beat it on the same plan.
  Device async_dev(sim::DeviceSpec::v100_32gb(), ExecutionMode::Phantom);
  run_via_pipeline(async_dev);
  const double async_makespan = async_dev.makespan();

  Device sync_dev(sim::DeviceSpec::v100_32gb(), ExecutionMode::Phantom);
  LoopBuffers b(sync_dev);
  {
    ooc::OocGemmOptions opts = small_options();
    opts.synchronous = true;
    ooc::SlabPipeline pipe(sync_dev, opts);
    ooc::SlabPlan plan;
    plan.label = "eq";
    plan.steps = kSteps;
    plan.input_slots = 2;
    plan.move_in = [&](ooc::MoveInCtx& c, index_t s) {
      c.h2d(sim::DeviceMatrixRef(b.pool[s % 2]), b.in,
            "h2d " + std::to_string(s));
    };
    plan.compute = [&](ooc::ComputeCtx& c, index_t s) {
      c.gemm(blas::Op::NoTrans, blas::Op::NoTrans, 1.0f,
             sim::DeviceMatrixRef(b.pool[s % 2]),
             sim::DeviceMatrixRef(b.pool[s % 2]), 0.0f,
             sim::DeviceMatrixRef(b.acc), "gemm " + std::to_string(s));
    };
    plan.move_out = [&](ooc::MoveOutCtx& c, index_t g) {
      c.d2h(b.out, sim::DeviceMatrixRef(b.acc), "d2h " + std::to_string(g));
    };
    pipe.run(plan);
  }
  sync_dev.synchronize();
  b.release(sync_dev);
  EXPECT_LT(async_makespan, sync_dev.makespan());
}

TEST(SlabPipelineLowering, MoveOutWaitsTheGroupsLastCompute) {
  // steps_per_group = 2: one drain per group, fenced behind the group's
  // *last* compute, not its first.
  Device dev(sim::DeviceSpec::v100_32gb(), ExecutionMode::Phantom);
  LoopBuffers b(dev);
  {
    ooc::SlabPipeline pipe(dev, small_options());
    ooc::SlabPlan plan;
    plan.label = "grp";
    plan.steps = kSteps;
    plan.steps_per_group = 2;
    plan.input_slots = 2;
    plan.move_in = [&](ooc::MoveInCtx& c, index_t s) {
      c.h2d(sim::DeviceMatrixRef(b.pool[s % 2]), b.in,
            "h2d " + std::to_string(s));
    };
    plan.compute = [&](ooc::ComputeCtx& c, index_t s) {
      c.gemm(blas::Op::NoTrans, blas::Op::NoTrans, 1.0f,
             sim::DeviceMatrixRef(b.pool[s % 2]),
             sim::DeviceMatrixRef(b.pool[s % 2]),
             s % 2 == 0 ? 0.0f : 1.0f, sim::DeviceMatrixRef(b.acc),
             "gemm " + std::to_string(s));
    };
    plan.move_out = [&](ooc::MoveOutCtx& c, index_t g) {
      c.d2h(b.out, sim::DeviceMatrixRef(b.acc), "d2h g" + std::to_string(g));
    };
    const ooc::SlabRunResult r = pipe.run(plan);
    EXPECT_EQ(r.compute_done.size(), 4u);
    EXPECT_EQ(r.out_done.size(), 2u);
  }
  dev.synchronize();
  b.release(dev);

  double gemm1_end = -1, d2h0_start = -1;
  for (const auto& e : dev.trace().events()) {
    if (e.name == "gemm 1") gemm1_end = e.end;
    if (e.name == "d2h g0") d2h0_start = e.start;
  }
  ASSERT_GE(gemm1_end, 0.0);
  ASSERT_GE(d2h0_start, 0.0);
  EXPECT_GE(d2h0_start, gemm1_end);
}

TEST(SlabPipelineLowering, RunTaskChainsPresentStages) {
  Device dev(sim::DeviceSpec::v100_32gb(), ExecutionMode::Phantom);
  LoopBuffers b(dev);
  {
    ooc::SlabPipeline pipe(dev, small_options());
    ooc::TaskPlan task;
    task.label = "panel";
    task.move_in = [&](ooc::MoveInCtx& c) {
      c.h2d(sim::DeviceMatrixRef(b.pool[0]), b.in, "h2d panel");
    };
    task.compute = [&](ooc::ComputeCtx& c) {
      c.gemm(blas::Op::NoTrans, blas::Op::NoTrans, 1.0f,
             sim::DeviceMatrixRef(b.pool[0]), sim::DeviceMatrixRef(b.pool[0]),
             0.0f, sim::DeviceMatrixRef(b.acc), "gemm panel");
    };
    task.move_out = [&](ooc::MoveOutCtx& c) {
      c.d2h(b.out, sim::DeviceMatrixRef(b.acc), "d2h panel");
    };
    const ooc::TaskResult r = pipe.run_task(task);
    EXPECT_TRUE(r.moved_in.valid());
    EXPECT_TRUE(r.computed.valid());
    EXPECT_TRUE(r.moved_out.valid());
  }
  dev.synchronize();
  b.release(dev);

  double in_end = -1, comp_start = -1, comp_end = -1, out_start = -1;
  for (const auto& e : dev.trace().events()) {
    if (e.name == "h2d panel") in_end = e.end;
    if (e.name == "gemm panel") comp_start = e.start, comp_end = e.end;
    if (e.name == "d2h panel") out_start = e.start;
  }
  ASSERT_GE(in_end, 0.0);
  EXPECT_GE(comp_start, in_end);
  EXPECT_GE(out_start, comp_end);
}

TEST(SlabPipelineLowering, PlanLogCapturesEveryGraphOnTeardown) {
  ooc::PlanLog log;
  Device dev(sim::DeviceSpec::v100_32gb(), ExecutionMode::Phantom);
  LoopBuffers b(dev);
  {
    ooc::OocGemmOptions opts = small_options();
    opts.plan_log = &log;
    ooc::SlabPipeline pipe(dev, opts, "eq-span");
    ooc::SlabPlan plan;
    plan.label = "eq";
    plan.steps = kSteps;
    plan.input_slots = 2;
    plan.move_in = [&](ooc::MoveInCtx& c, index_t s) {
      c.h2d(sim::DeviceMatrixRef(b.pool[s % 2]), b.in,
            "h2d " + std::to_string(s));
    };
    plan.compute = [&](ooc::ComputeCtx& c, index_t s) {
      c.gemm(blas::Op::NoTrans, blas::Op::NoTrans, 1.0f,
             sim::DeviceMatrixRef(b.pool[s % 2]),
             sim::DeviceMatrixRef(b.pool[s % 2]), 0.0f,
             sim::DeviceMatrixRef(b.acc), "gemm " + std::to_string(s));
    };
    pipe.run(plan);
  }
  dev.synchronize();
  b.release(dev);

  // The flush names the graph, counts its nodes and carries the Graphviz
  // dump with the node labels.
  EXPECT_NE(log.text.find("eq-span: task-graph run: 8 node(s)"),
            std::string::npos)
      << log.text;
  EXPECT_NE(log.dot.find("digraph \"eq-span\""), std::string::npos);
  EXPECT_NE(log.dot.find("in eq s0"), std::string::npos);
  EXPECT_NE(log.dot.find("comp eq s3"), std::string::npos);

  // A graph that built nodes but never ran still reports itself; an empty
  // graph stays silent.
  ooc::PlanLog unrun_log;
  {
    ooc::OocGemmOptions opts = small_options();
    opts.plan_log = &unrun_log;
    ooc::TaskGraph g(dev, opts, "ghost");
    g.add(ooc::TaskStage::MoveIn, "never", nullptr);
  }
  EXPECT_NE(unrun_log.text.find("ghost: built but never run"),
            std::string::npos);

  ooc::PlanLog empty_log;
  {
    ooc::OocGemmOptions opts = small_options();
    opts.plan_log = &empty_log;
    ooc::TaskGraph g(dev, opts, "empty");
  }
  EXPECT_TRUE(empty_log.text.empty());
  EXPECT_TRUE(empty_log.dot.empty());
}

} // namespace
} // namespace rocqr
