# Exit-code and fault-tolerance contract of rocqr_cli (docs/FAULTS.md):
# distinct exit codes per failure class, checkpoint files written and
# resumable. Driven by ctest; patterned on check_trace_json.cmake.

function(expect_exit code what)
  execute_process(
    COMMAND ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL ${code})
    message(FATAL_ERROR
            "${what}: expected exit ${code}, got '${rc}':\n${out}${err}")
  endif()
endfunction()

# 3: configuration error (rejected by QrOptions::validate).
expect_exit(3 "config error"
  ${ROCQR_CLI} qr --algo blocking --m 1024 --n 1024 --blocksize 0)

# 3: malformed fault spec (rejected by FaultPlan::parse).
expect_exit(3 "bad fault spec"
  ${ROCQR_CLI} qr --algo blocking --m 1024 --n 1024 --blocksize 256
  --faults not-a-spec)

# 5: every H2D transfer fails and the bounded retries run out.
expect_exit(5 "fault budget exhausted"
  ${ROCQR_CLI} qr --algo blocking --m 4096 --n 4096 --blocksize 1024
  --faults h2d:transient:p=1)

# 4: a 16384-wide fp32 panel cannot fit a 1 GiB device; the driver-level
# allocation does not degrade, so the OOM surfaces with its own exit code.
expect_exit(4 "device out of memory"
  ${ROCQR_CLI} qr --algo blocking --m 131072 --n 131072 --blocksize 16384
  --capacity-gib 1)

# 0: benign run writes panel checkpoints, and the file restarts cleanly.
set(ckpt "${WORK_DIR}/cli_faults.ckpt")
file(REMOVE ${ckpt})
expect_exit(0 "checkpoint run"
  ${ROCQR_CLI} qr --algo blocking --m 8192 --n 8192 --blocksize 2048
  --checkpoint ${ckpt})
if(NOT EXISTS ${ckpt})
  message(FATAL_ERROR "checkpoint file was not written: ${ckpt}")
endif()
expect_exit(0 "resume run"
  ${ROCQR_CLI} qr --algo blocking --m 8192 --n 8192 --blocksize 2048
  --resume ${ckpt})
file(REMOVE ${ckpt})
