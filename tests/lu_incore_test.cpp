// In-core LU (no pivoting: unblocked/blocked/recursive), partial-pivot
// oracle, solvers, and recursive Cholesky.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/error.hpp"
#include "la/cholesky.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "lu/incore.hpp"

namespace rocqr::lu {
namespace {

using blas::GemmPrecision;

class LuVariantTest
    : public ::testing::TestWithParam<std::tuple<int /*variant*/,
                                                 std::tuple<index_t, index_t>>> {
};

void run_variant(int variant, la::MatrixView a) {
  switch (variant) {
    case 0: lu_nopiv_unblocked(a); break;
    case 1: lu_nopiv_blocked(a, 8); break;
    case 2: lu_nopiv_blocked(a, 13); break;
    case 3: lu_nopiv_recursive(a, 4); break;
    default: FAIL();
  }
}

TEST_P(LuVariantTest, FactorsDiagonallyDominantMatrix) {
  const auto [variant, shape] = GetParam();
  const auto [m, n] = shape;
  // Build a tall diagonally dominant matrix: dominant square on top.
  la::Matrix a = la::random_uniform(m, n, 31);
  for (index_t j = 0; j < n; ++j) a(j, j) += static_cast<float>(n) + 2.0f;
  la::Matrix original = la::materialize(a.view());

  run_variant(variant, a.view());
  EXPECT_LT(lu_residual(original.view(), a.view()), 1e-5)
      << "variant " << variant;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LuVariantTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(std::tuple<index_t, index_t>{1, 1},
                                         std::tuple<index_t, index_t>{16, 16},
                                         std::tuple<index_t, index_t>{50, 50},
                                         std::tuple<index_t, index_t>{80, 40},
                                         std::tuple<index_t, index_t>{65, 33})));

TEST(LuIncore, VariantsAgreeExactlyOnStructure) {
  // The factorization is unique (no pivoting), so all variants agree to
  // fp32 rounding.
  la::Matrix a = la::random_diagonally_dominant(48, 7);
  la::Matrix u1 = la::materialize(a.view());
  la::Matrix u2 = la::materialize(a.view());
  la::Matrix u3 = la::materialize(a.view());
  lu_nopiv_unblocked(u1.view());
  lu_nopiv_blocked(u2.view(), 8);
  lu_nopiv_recursive(u3.view(), 4);
  EXPECT_LT(la::relative_difference(u2.view(), u1.view()), 1e-5);
  EXPECT_LT(la::relative_difference(u3.view(), u1.view()), 1e-5);
}

TEST(LuIncore, ZeroPivotThrows) {
  la::Matrix a(3, 3); // all zeros
  EXPECT_THROW(lu_nopiv_unblocked(a.view()), InvalidArgument);
  la::Matrix wide(2, 3);
  EXPECT_THROW(lu_nopiv_unblocked(wide.view()), InvalidArgument);
  la::Matrix ok = la::random_diagonally_dominant(4, 1);
  EXPECT_THROW(lu_nopiv_blocked(ok.view(), 0), InvalidArgument);
  EXPECT_THROW(lu_nopiv_recursive(ok.view(), 0), InvalidArgument);
}

TEST(LuIncore, PartialPivotingHandlesZeroLeadingPivot) {
  la::Matrix a(3, 3);
  a(0, 0) = 0.0f;
  a(1, 0) = 2.0f;
  a(2, 0) = 1.0f;
  a(0, 1) = 1.0f;
  a(1, 1) = 1.0f;
  a(2, 1) = 3.0f;
  a(0, 2) = 2.0f;
  a(1, 2) = 0.0f;
  a(2, 2) = 1.0f;
  la::Matrix original = la::materialize(a.view());
  std::vector<index_t> perm;
  lu_partial_unblocked(a.view(), perm);
  // Check P A = L U row by row through the permutation.
  la::Matrix permuted(3, 3);
  for (index_t i = 0; i < 3; ++i) {
    for (index_t j = 0; j < 3; ++j) {
      permuted(i, j) = original(perm[static_cast<size_t>(i)], j);
    }
  }
  EXPECT_LT(lu_residual(permuted.view(), a.view()), 1e-6);
}

TEST(LuIncore, PivotingBeatsNoPivotOnHardMatrix) {
  // Small leading pivot: no-pivot LU amplifies error, partial pivoting is
  // stable.
  const index_t n = 24;
  la::Matrix a = la::random_uniform(n, n, 77);
  for (index_t j = 0; j < n; ++j) a(j, j) += 3.0f;
  a(0, 0) = 1e-6f; // nearly-singular leading pivot
  la::Matrix original = la::materialize(a.view());

  la::Matrix nopiv = la::materialize(a.view());
  lu_nopiv_unblocked(nopiv.view());
  const double res_nopiv = lu_residual(original.view(), nopiv.view());

  la::Matrix piv = la::materialize(a.view());
  std::vector<index_t> perm;
  lu_partial_unblocked(piv.view(), perm);
  la::Matrix permuted(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      permuted(i, j) = original(perm[static_cast<size_t>(i)], j);
    }
  }
  const double res_piv = lu_residual(permuted.view(), piv.view());
  EXPECT_LT(res_piv, 1e-5);
  EXPECT_GT(res_nopiv, res_piv);
}

TEST(LuIncore, SolveRecoversKnownSolution) {
  const index_t n = 32;
  la::Matrix a = la::random_diagonally_dominant(n, 9);
  la::Matrix x_true = la::random_uniform(n, 3, 10);
  la::Matrix b(n, 3);
  blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, n, 3, n, 1.0f, a.data(),
             a.ld(), x_true.data(), x_true.ld(), 0.0f, b.data(), b.ld());
  lu_nopiv_recursive(a.view(), 8);
  lu_solve_inplace(a.view(), b.view());
  EXPECT_LT(la::relative_difference(b.view(), x_true.view()), 1e-4);
}

TEST(LuIncore, Fp16UpdatesDegradeGracefully) {
  la::Matrix a = la::random_diagonally_dominant(64, 11);
  la::Matrix original = la::materialize(a.view());
  la::Matrix f16 = la::materialize(a.view());
  lu_nopiv_recursive(a.view(), 8, GemmPrecision::FP32);
  lu_nopiv_recursive(f16.view(), 8, GemmPrecision::FP16_FP32);
  const double res32 = lu_residual(original.view(), a.view());
  const double res16 = lu_residual(original.view(), f16.view());
  EXPECT_LT(res32, 1e-6);
  EXPECT_LT(res16, 5e-3);
  EXPECT_GE(res16, res32);
}

TEST(CholeskyIncore, RecursiveMatchesUnblocked) {
  la::Matrix a = la::random_spd(40, 12);
  la::Matrix r1 = la::materialize(a.view());
  la::cholesky_upper(r1.view());
  la::Matrix r2 = la::materialize(a.view());
  cholesky_recursive(r2.view(), 8);
  EXPECT_LT(la::relative_difference(r2.view(), r1.view()), 1e-5);
  EXPECT_TRUE(la::is_upper_triangular(r2.view()));
  EXPECT_LT(cholesky_residual(a.view(), r2.view()), 1e-5);
}

TEST(CholeskyIncore, RecursiveAcrossSizesAndBases) {
  for (index_t n : {1, 2, 7, 16, 33, 64}) {
    la::Matrix a = la::random_spd(n, 100 + static_cast<std::uint64_t>(n));
    la::Matrix r = la::materialize(a.view());
    cholesky_recursive(r.view(), 4);
    EXPECT_LT(cholesky_residual(a.view(), r.view()), 1e-5) << "n=" << n;
  }
}

TEST(CholeskyIncore, RejectsIndefinite) {
  la::Matrix a = la::identity(4);
  a(2, 2) = -1.0f;
  EXPECT_THROW(cholesky_recursive(a.view(), 2), InvalidArgument);
}

} // namespace
} // namespace rocqr::lu
