// The out-of-core least-squares library operation and the ScopedMatrix
// RAII guard (including OOM exception-safety).
#include <gtest/gtest.h>

#include "leak_check.hpp"

#include "blas/gemm.hpp"
#include "common/error.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "qr/ooc_solve.hpp"
#include "sim/device.hpp"
#include "sim/scoped_matrix.hpp"

namespace rocqr {
namespace {

using sim::Device;
using sim::ExecutionMode;

sim::DeviceSpec test_spec(bytes_t capacity = 512LL << 20) {
  sim::DeviceSpec s = sim::DeviceSpec::v100_32gb();
  s.memory_capacity = capacity;
  return s;
}

TEST(OocLeastSquares, SolvesConsistentSystem) {
  const index_t m = 320;
  const index_t n = 96;
  const index_t nrhs = 3;
  la::Matrix a = la::random_with_condition(m, n, 50.0, 41);
  la::Matrix x_true = la::random_uniform(n, nrhs, 42);
  la::Matrix b(m, nrhs);
  blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, m, nrhs, n, 1.0f, a.data(),
             a.ld(), x_true.data(), x_true.ld(), 0.0f, b.data(), b.ld());

  Device dev(test_spec(), ExecutionMode::Real);
  qr::QrOptions opts;
  opts.blocksize = 32;
  opts.panel_base = 8;
  opts.precision = blas::GemmPrecision::FP32;
  la::Matrix q = la::materialize(a.view());
  la::Matrix r(n, n);
  la::Matrix x(n, nrhs);
  const qr::OocLsStats stats = qr::ooc_least_squares(
      dev, q.view(), r.view(), sim::as_const(b.view()), x.view(), opts);

  EXPECT_LT(la::relative_difference(x.view(), x_true.view()), 1e-3);
  EXPECT_GT(stats.total_seconds, stats.factor.total_seconds * 0.99);
  EXPECT_EQ(dev.live_allocations(), 0);
}

TEST(OocLeastSquares, PhantomScaleSchedules) {
  auto dev = Device(sim::DeviceSpec::v100_32gb(), ExecutionMode::Phantom);
  dev.model().install_paper_calibration();
  qr::QrOptions opts;
  opts.blocksize = 16384;
  auto a = sim::HostMutRef::phantom(131072, 65536);
  auto r = sim::HostMutRef::phantom(65536, 65536);
  auto b = sim::HostConstRef::phantom(131072, 16);
  auto x = sim::HostMutRef::phantom(65536, 16);
  const qr::OocLsStats stats = qr::ooc_least_squares(dev, a, r, b, x, opts);
  EXPECT_GT(stats.total_seconds, stats.factor.total_seconds);
  // The apply/solve tail is small next to the factorization.
  EXPECT_LT(stats.total_seconds, stats.factor.total_seconds * 1.5);
}

TEST(OocLeastSquares, RejectsBadShapes) {
  Device dev(test_spec(), ExecutionMode::Phantom);
  qr::QrOptions opts;
  auto a = sim::HostMutRef::phantom(64, 32);
  auto r = sim::HostMutRef::phantom(32, 32);
  EXPECT_THROW(qr::ooc_least_squares(dev, a, r,
                                     sim::HostConstRef::phantom(63, 2),
                                     sim::HostMutRef::phantom(32, 2), opts),
               InvalidArgument);
  EXPECT_THROW(qr::ooc_least_squares(dev, a, r,
                                     sim::HostConstRef::phantom(64, 2),
                                     sim::HostMutRef::phantom(30, 2), opts),
               InvalidArgument);
}

TEST(ScopedMatrix, FreesOnScopeExit) {
  Device dev(test_spec(), ExecutionMode::Phantom);
  {
    sim::ScopedMatrix m(dev, 64, 64);
    EXPECT_TRUE(m.valid());
    EXPECT_EQ(dev.live_allocations(), 1);
  }
  EXPECT_EQ(dev.live_allocations(), 0);
}

TEST(ScopedMatrix, MoveTransfersOwnership) {
  Device dev(test_spec(), ExecutionMode::Phantom);
  sim::ScopedMatrix a(dev, 32, 32);
  sim::ScopedMatrix b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(dev.live_allocations(), 1);
  sim::ScopedMatrix c(dev, 16, 16);
  c = std::move(b);
  EXPECT_EQ(dev.live_allocations(), 1); // c's old matrix freed by the move
  c.reset();
  EXPECT_EQ(dev.live_allocations(), 0);
}

TEST(ScopedMatrix, ReleaseKeepsAllocationAlive) {
  Device dev(test_spec(), ExecutionMode::Phantom);
  sim::DeviceMatrix raw;
  {
    sim::ScopedMatrix m(dev, 8, 8);
    raw = m.release();
  }
  EXPECT_EQ(dev.live_allocations(), 1);
  dev.free(raw);
  EXPECT_EQ(dev.live_allocations(), 0);
}

TEST(ScopedMatrix, ExceptionSafetyOnMidSequenceOom) {
  // Allocate until OOM inside a scope: everything allocated before the
  // throw is reclaimed automatically.
  Device dev(test_spec(1 << 20), ExecutionMode::Phantom); // 1 MiB
  EXPECT_THROW(
      {
        sim::ScopedMatrix a(dev, 256, 256); // 256 KiB
        sim::ScopedMatrix b(dev, 256, 256);
        sim::ScopedMatrix c(dev, 256, 256);
        sim::ScopedMatrix d(dev, 512, 512); // 1 MiB: throws
      },
      DeviceOutOfMemory);
  EXPECT_EQ(dev.live_allocations(), 0);
  EXPECT_EQ(dev.memory_used(), 0);
}

} // namespace
} // namespace rocqr
