// Rng, ThreadPool, strings, timer, error machinery.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"

namespace rocqr {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.uniform(-3.0, 7.0);
    EXPECT_GE(d, -3.0);
    EXPECT_LT(d, 7.0);
  }
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(11);
  const int n = 50000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(13);
  std::set<index_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const index_t v = rng.below(10);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 10);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u); // all values hit over 1000 draws
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(ThreadPool, CoversFullRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](index_t b, index_t e) {
    for (index_t i = b; i < e; ++i) hits[static_cast<size_t>(i)]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyAndSingleElementRanges) {
  ThreadPool pool(3);
  int calls = 0;
  pool.parallel_for(0, [&](index_t, index_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> total{0};
  pool.parallel_for(1, [&](index_t b, index_t e) {
    total += static_cast<int>(e - b);
  });
  EXPECT_EQ(total.load(), 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](index_t b, index_t) {
                                   if (b >= 0) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool stays usable after an exception round.
  std::atomic<int> total{0};
  pool.parallel_for(50, [&](index_t b, index_t e) {
    total += static_cast<int>(e - b);
  });
  EXPECT_EQ(total.load(), 50);
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> total{0};
  pool.parallel_for(10, [&](index_t b, index_t e) {
    total += static_cast<int>(e - b);
  });
  EXPECT_EQ(total.load(), 10);
}

TEST(ThreadPool, GlobalPoolIsReusable) {
  std::atomic<int> total{0};
  ThreadPool::global().parallel_for(256, [&](index_t b, index_t e) {
    total += static_cast<int>(e - b);
  });
  EXPECT_EQ(total.load(), 256);
}

TEST(ThreadPool, InParallelRegionFlagTracksBodyExecution) {
  EXPECT_FALSE(ThreadPool::in_parallel_region());
  ThreadPool pool(3);
  std::atomic<int> observed{0};
  pool.parallel_for(6, [&](index_t, index_t) {
    if (ThreadPool::in_parallel_region()) ++observed;
  });
  EXPECT_GT(observed.load(), 0); // every executed chunk saw the flag
  EXPECT_FALSE(ThreadPool::in_parallel_region());
}

// Regression: on the seed pool a nested parallel_for re-entered the round
// state (tasks_/pending_/generation_) and deadlocked or corrupted the count.
// Nested calls must degrade to serial execution and still cover the range.
TEST(ThreadPool, NestedParallelForRunsSeriallyAndCompletes) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.parallel_for(8, [&](index_t b, index_t e) {
    for (index_t i = b; i < e; ++i) {
      std::atomic<int> chunks{0};
      pool.parallel_for(100, [&](index_t ib, index_t ie) {
        ++chunks;
        total += static_cast<int>(ie - ib);
      });
      EXPECT_EQ(chunks.load(), 1); // degraded to one serial chunk
    }
  });
  EXPECT_EQ(total.load(), 800);
}

TEST(ThreadPool, DoublyNestedStaysSerial) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.parallel_for(4, [&](index_t b, index_t e) {
    for (index_t i = b; i < e; ++i) {
      pool.parallel_for(4, [&](index_t, index_t) {
        pool.parallel_for(10, [&](index_t ib, index_t ie) {
          total += static_cast<int>(ie - ib);
        });
      });
    }
  });
  EXPECT_EQ(total.load(), 4 * 10);
}

// Regression: two host threads submitting to one pool raced on tasks_ and
// generation_; submissions now serialize, and every element is still
// processed exactly the right number of times.
TEST(ThreadPool, ConcurrentSubmissionsFromTwoHostThreads) {
  ThreadPool pool(4);
  constexpr int kRounds = 200;
  constexpr index_t kN = 500;
  std::atomic<long> total{0};
  auto hammer = [&] {
    for (int it = 0; it < kRounds; ++it) {
      pool.parallel_for(kN, [&](index_t b, index_t e) {
        total += static_cast<long>(e - b);
      });
    }
  };
  std::thread t1(hammer);
  std::thread t2(hammer);
  t1.join();
  t2.join();
  EXPECT_EQ(total.load(), 2L * kRounds * kN);
}

TEST(ThreadPool, SimultaneousCallerAndWorkerExceptions) {
  ThreadPool pool(4);
  // Every chunk throws: the caller's own chunk and all worker chunks race to
  // fail. Exactly one exception must surface and the pool must stay usable.
  EXPECT_THROW(pool.parallel_for(4,
                                 [&](index_t, index_t) {
                                   throw std::runtime_error("all chunks");
                                 }),
               std::runtime_error);
  // Worker-only failure (the caller's chunk [0, chunk) succeeds).
  EXPECT_THROW(pool.parallel_for(4,
                                 [&](index_t b, index_t) {
                                   if (b > 0) throw std::runtime_error("w");
                                 }),
               std::runtime_error);
  std::atomic<int> total{0};
  pool.parallel_for(64, [&](index_t b, index_t e) {
    total += static_cast<int>(e - b);
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, ExceptionInsideNestedCallPropagates) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(3,
                                 [&](index_t, index_t) {
                                   pool.parallel_for(2, [&](index_t, index_t) {
                                     throw std::runtime_error("nested");
                                   });
                                 }),
               std::runtime_error);
  std::atomic<int> total{0};
  pool.parallel_for(9, [&](index_t b, index_t e) {
    total += static_cast<int>(e - b);
  });
  EXPECT_EQ(total.load(), 9);
}

TEST(ThreadPool, ParallelFor2dCoversGridExactlyOnce) {
  ThreadPool pool(4);
  constexpr index_t kM = 37;
  constexpr index_t kN = 23;
  std::vector<std::atomic<int>> hits(kM * kN);
  pool.parallel_for_2d(kM, kN, [&](index_t i0, index_t i1, index_t j0,
                                   index_t j1) {
    EXPECT_TRUE(ThreadPool::in_parallel_region());
    for (index_t j = j0; j < j1; ++j) {
      for (index_t i = i0; i < i1; ++i) {
        hits[static_cast<size_t>(i + j * kM)]++;
      }
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelFor2dDegenerateShapes) {
  ThreadPool pool(3);
  int calls = 0;
  pool.parallel_for_2d(0, 5, [&](index_t, index_t, index_t, index_t) {
    ++calls;
  });
  pool.parallel_for_2d(5, 0, [&](index_t, index_t, index_t, index_t) {
    ++calls;
  });
  EXPECT_EQ(calls, 0);
  std::atomic<int> cells{0};
  pool.parallel_for_2d(1, 1, [&](index_t i0, index_t i1, index_t j0,
                                 index_t j1) {
    cells += static_cast<int>((i1 - i0) * (j1 - j0));
  });
  EXPECT_EQ(cells.load(), 1);
  // Skinny grids must still cover everything.
  std::atomic<int> tall{0};
  pool.parallel_for_2d(97, 1, [&](index_t i0, index_t i1, index_t j0,
                                  index_t j1) {
    tall += static_cast<int>((i1 - i0) * (j1 - j0));
  });
  EXPECT_EQ(tall.load(), 97);
}

TEST(ThreadPool, ParallelFor2dOnPoolOfOneRunsInline) {
  ThreadPool pool(1);
  int calls = 0;
  index_t cells = 0;
  pool.parallel_for_2d(12, 7, [&](index_t i0, index_t i1, index_t j0,
                                  index_t j1) {
    ++calls;
    cells += (i1 - i0) * (j1 - j0);
  });
  EXPECT_EQ(calls, 1); // single inline tile
  EXPECT_EQ(cells, 12 * 7);
}

TEST(ThreadPool, ParallelFor2dNestedRunsSerially) {
  ThreadPool pool(4);
  std::atomic<int> cells{0};
  pool.parallel_for(4, [&](index_t, index_t) {
    pool.parallel_for_2d(6, 5, [&](index_t i0, index_t i1, index_t j0,
                                   index_t j1) {
      EXPECT_EQ(i0, 0); // nested: one tile spanning the whole grid
      EXPECT_EQ(j0, 0);
      cells += static_cast<int>((i1 - i0) * (j1 - j0));
    });
  });
  EXPECT_EQ(cells.load(), 4 * 6 * 5);
}

TEST(Strings, FormatBytes) {
  EXPECT_EQ(format_bytes(12), "12 B");
  EXPECT_EQ(format_bytes(1536), "1.50 KiB");
  EXPECT_EQ(format_bytes(32LL << 30), "32.00 GiB");
}

TEST(Strings, FormatSeconds) {
  EXPECT_EQ(format_seconds(1.408), "1.41 s");
  EXPECT_EQ(format_seconds(0.693), "693.0 ms");
  EXPECT_EQ(format_seconds(12e-6), "12.0 us");
  EXPECT_EQ(format_seconds(3e-9), "3.0 ns");
}

TEST(Strings, FormatFlopsRate) {
  EXPECT_EQ(format_flops_rate(99.9e12), "99.9 TFLOP/s");
  EXPECT_EQ(format_flops_rate(5e9), "5.0 GFLOP/s");
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_left("ab", 5), "   ab");
  EXPECT_EQ(pad_right("ab", 5), "ab   ");
  EXPECT_EQ(pad_left("abcdef", 3), "abcdef");
  EXPECT_EQ(format_shape(65536, 131072), "65536x131072");
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
}

TEST(Timer, MeasuresElapsedTime) {
  WallTimer t;
  const double a = t.seconds();
  EXPECT_GE(a, 0.0);
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + std::sqrt(static_cast<double>(i));
  }
  const double b = t.seconds();
  EXPECT_GE(b, a);
  t.reset();
  EXPECT_LT(t.seconds(), b + 1.0);
}

TEST(Error, CheckMacroThrowsWithContext) {
  try {
    ROCQR_CHECK(1 == 2, "one is not two");
    FAIL() << "expected throw";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("one is not two"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

TEST(Error, HierarchyIsCatchableAsBase) {
  EXPECT_THROW(throw DeviceOutOfMemory("x"), Error);
  EXPECT_THROW(throw ResourceError("x"), Error);
  EXPECT_THROW(throw PhantomDataError("x"), Error);
  EXPECT_THROW(throw InvalidArgument("x"), Error);
}

} // namespace
} // namespace rocqr
