// Rng, ThreadPool, strings, timer, error machinery.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"

namespace rocqr {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.uniform(-3.0, 7.0);
    EXPECT_GE(d, -3.0);
    EXPECT_LT(d, 7.0);
  }
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(11);
  const int n = 50000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(13);
  std::set<index_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const index_t v = rng.below(10);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 10);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u); // all values hit over 1000 draws
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(ThreadPool, CoversFullRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](index_t b, index_t e) {
    for (index_t i = b; i < e; ++i) hits[static_cast<size_t>(i)]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyAndSingleElementRanges) {
  ThreadPool pool(3);
  int calls = 0;
  pool.parallel_for(0, [&](index_t, index_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> total{0};
  pool.parallel_for(1, [&](index_t b, index_t e) {
    total += static_cast<int>(e - b);
  });
  EXPECT_EQ(total.load(), 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](index_t b, index_t) {
                                   if (b >= 0) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool stays usable after an exception round.
  std::atomic<int> total{0};
  pool.parallel_for(50, [&](index_t b, index_t e) {
    total += static_cast<int>(e - b);
  });
  EXPECT_EQ(total.load(), 50);
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> total{0};
  pool.parallel_for(10, [&](index_t b, index_t e) {
    total += static_cast<int>(e - b);
  });
  EXPECT_EQ(total.load(), 10);
}

TEST(ThreadPool, GlobalPoolIsReusable) {
  std::atomic<int> total{0};
  ThreadPool::global().parallel_for(256, [&](index_t b, index_t e) {
    total += static_cast<int>(e - b);
  });
  EXPECT_EQ(total.load(), 256);
}

TEST(Strings, FormatBytes) {
  EXPECT_EQ(format_bytes(12), "12 B");
  EXPECT_EQ(format_bytes(1536), "1.50 KiB");
  EXPECT_EQ(format_bytes(32LL << 30), "32.00 GiB");
}

TEST(Strings, FormatSeconds) {
  EXPECT_EQ(format_seconds(1.408), "1.41 s");
  EXPECT_EQ(format_seconds(0.693), "693.0 ms");
  EXPECT_EQ(format_seconds(12e-6), "12.0 us");
  EXPECT_EQ(format_seconds(3e-9), "3.0 ns");
}

TEST(Strings, FormatFlopsRate) {
  EXPECT_EQ(format_flops_rate(99.9e12), "99.9 TFLOP/s");
  EXPECT_EQ(format_flops_rate(5e9), "5.0 GFLOP/s");
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_left("ab", 5), "   ab");
  EXPECT_EQ(pad_right("ab", 5), "ab   ");
  EXPECT_EQ(pad_left("abcdef", 3), "abcdef");
  EXPECT_EQ(format_shape(65536, 131072), "65536x131072");
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
}

TEST(Timer, MeasuresElapsedTime) {
  WallTimer t;
  const double a = t.seconds();
  EXPECT_GE(a, 0.0);
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + std::sqrt(static_cast<double>(i));
  }
  const double b = t.seconds();
  EXPECT_GE(b, a);
  t.reset();
  EXPECT_LT(t.seconds(), b + 1.0);
}

TEST(Error, CheckMacroThrowsWithContext) {
  try {
    ROCQR_CHECK(1 == 2, "one is not two");
    FAIL() << "expected throw";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("one is not two"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

TEST(Error, HierarchyIsCatchableAsBase) {
  EXPECT_THROW(throw DeviceOutOfMemory("x"), Error);
  EXPECT_THROW(throw ResourceError("x"), Error);
  EXPECT_THROW(throw PhantomDataError("x"), Error);
  EXPECT_THROW(throw InvalidArgument("x"), Error);
}

} // namespace
} // namespace rocqr
