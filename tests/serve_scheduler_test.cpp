// Multi-job QR service scheduler (docs/SERVING.md): phantom admission
// control matches fleet execution, a 4-device fleet drains a batch of
// concurrent jobs, a late high-priority job preempts a running one at a
// checkpoint boundary and the preempted job resumes bit-identical to an
// uninterrupted run, and the fleet report's makespan equals the global
// trace span.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "la/generate.hpp"
#include "leak_check.hpp"
#include "qr/blocking_qr.hpp"
#include "qr/left_looking_qr.hpp"
#include "qr/recursive_qr.hpp"
#include "serve/scheduler.hpp"
#include "sim/device.hpp"

namespace rocqr {
namespace {

using serve::AdmissionDecision;
using serve::FleetReport;
using serve::JobReport;
using serve::JobSpec;
using serve::JobState;
using serve::Scheduler;
using serve::ServeConfig;
using sim::Device;
using sim::ExecutionMode;

qr::QrStats run_driver(const std::string& driver, Device& dev,
                       sim::HostMutRef a, sim::HostMutRef r,
                       const qr::QrOptions& opts) {
  if (driver == "blocking") return qr::blocking_ooc_qr(dev, a, r, opts);
  if (driver == "recursive") return qr::recursive_ooc_qr(dev, a, r, opts);
  return qr::left_looking_ooc_qr(dev, a, r, opts);
}

bool bitwise_equal(const la::Matrix& x, const la::Matrix& y) {
  for (index_t j = 0; j < x.cols(); ++j) {
    for (index_t i = 0; i < x.rows(); ++i) {
      if (x(i, j) != y(i, j)) return false;
    }
  }
  return true;
}

/// Global trace span of the fleet, derived independently of the report.
double fleet_span(const Scheduler& sched) {
  double first = 0;
  double last = 0;
  bool any = false;
  for (const auto& dev : sched.devices()) {
    const qr::QrStats s = qr::stats_from_trace(dev->trace(), 0, 0);
    if (s.events == 0) continue;
    first = any ? std::min(first, s.first_start) : s.first_start;
    last = any ? std::max(last, s.last_end) : s.last_end;
    any = true;
  }
  return last - first;
}

const JobReport& report_for(const FleetReport& rep, int job_id) {
  return rep.jobs.at(static_cast<size_t>(job_id));
}

TEST(ServeAdmission, RejectsInfeasibleJobs) {
  ServeConfig cfg;
  cfg.devices = 1;
  Scheduler sched(cfg);

  JobSpec bad_shape;
  bad_shape.name = "wide";
  bad_shape.m = 64;
  bad_shape.n = 128;
  AdmissionDecision d = sched.submit(bad_shape);
  EXPECT_FALSE(d.admitted);
  EXPECT_NE(d.reason.find("invalid shape"), std::string::npos) << d.reason;

  JobSpec bad_algo;
  bad_algo.name = "mystery";
  bad_algo.m = bad_algo.n = 4096;
  bad_algo.algorithm = "lattice";
  d = sched.submit(bad_algo);
  EXPECT_FALSE(d.admitted);
  EXPECT_NE(d.reason.find("unknown algorithm"), std::string::npos) << d.reason;

  JobSpec late;
  late.name = "late";
  late.m = late.n = 32768;
  late.blocksize = 4096;
  late.deadline_seconds = 1e-9;
  d = sched.submit(late);
  EXPECT_FALSE(d.admitted);
  EXPECT_NE(d.reason.find("deadline"), std::string::npos) << d.reason;

  const FleetReport rep = sched.run();
  EXPECT_EQ(rep.jobs_rejected, 3);
  EXPECT_EQ(rep.jobs_admitted, 0);
  EXPECT_EQ(rep.jobs_completed, 0);
  for (const JobReport& j : rep.jobs) {
    EXPECT_EQ(j.state, JobState::Rejected);
    EXPECT_FALSE(j.failure.empty());
  }
}

TEST(ServeAdmission, MemoryHeadroomPolicyRejects) {
  ServeConfig cfg;
  cfg.devices = 1;
  cfg.admission_memory_fraction = 0.01;
  Scheduler sched(cfg);
  JobSpec job;
  job.name = "hog";
  job.m = job.n = 32768;
  job.blocksize = 8192;
  const AdmissionDecision d = sched.submit(job);
  EXPECT_FALSE(d.admitted);
  EXPECT_NE(d.reason.find("admission budget"), std::string::npos) << d.reason;
  EXPECT_GT(d.predicted_peak_bytes, 0);
}

TEST(ServeScheduler, PredictionMatchesSingleJobExecution) {
  ServeConfig cfg;
  cfg.devices = 1;
  Scheduler sched(cfg);
  JobSpec job;
  job.name = "solo";
  job.m = 65536;
  job.n = 32768;
  job.blocksize = 8192;
  const AdmissionDecision d = sched.submit(job);
  ASSERT_TRUE(d.admitted) << d.reason;
  EXPECT_GT(d.predicted_seconds, 0);
  EXPECT_GT(d.predicted_peak_bytes, 0);

  const FleetReport rep = sched.run();
  const JobReport& j = report_for(rep, d.job_id);
  ASSERT_EQ(j.state, JobState::Completed);
  EXPECT_EQ(j.attempts, 1);
  // The admission dry run IS the schedule the worker executes (same driver,
  // blocksize and checkpoint cadence on an identical phantom device).
  EXPECT_NEAR(j.stats.total_seconds, d.predicted_seconds,
              1e-9 * d.predicted_seconds);
  EXPECT_EQ(j.stats.peak_device_bytes, d.predicted_peak_bytes);
  EXPECT_DOUBLE_EQ(rep.makespan_seconds, fleet_span(sched));
}

TEST(ServeScheduler, PhantomFleetDrainsConcurrentBatch) {
  ServeConfig cfg;
  cfg.devices = 4;
  Scheduler sched(cfg);

  const char* algos[] = {"recursive", "blocking", "left"};
  std::vector<AdmissionDecision> decisions;
  double predicted_sum = 0;
  for (int i = 0; i < 8; ++i) {
    JobSpec job;
    job.name = "batch" + std::to_string(i);
    job.m = 65536;
    job.n = 32768;
    job.algorithm = algos[i % 3];
    job.blocksize = 0; // autotune at admission
    const AdmissionDecision d = sched.submit(job);
    ASSERT_TRUE(d.admitted) << job.name << ": " << d.reason;
    EXPECT_GT(d.blocksize, 0) << job.name;
    predicted_sum += d.predicted_seconds;
    decisions.push_back(d);
  }

  const FleetReport rep = sched.run();
  EXPECT_EQ(rep.jobs_admitted, 8);
  EXPECT_EQ(rep.jobs_completed, 8);
  EXPECT_EQ(rep.jobs_failed, 0);
  for (const AdmissionDecision& d : decisions) {
    const JobReport& j = report_for(rep, d.job_id);
    EXPECT_EQ(j.state, JobState::Completed) << j.name;
    if (j.attempts == 1 && j.preemptions == 0) {
      EXPECT_NEAR(j.stats.total_seconds, d.predicted_seconds,
                  1e-6 * d.predicted_seconds)
          << j.name;
    }
  }
  // 8 equal-priority jobs on 4 devices: the fleet must actually run them
  // concurrently, so the makespan beats the serial sum of predictions...
  EXPECT_LT(rep.makespan_seconds, predicted_sum);
  // ...and equals the global span of the devices' traces.
  EXPECT_DOUBLE_EQ(rep.makespan_seconds, fleet_span(sched));
}

TEST(ServeScheduler, PreemptsAndResumesBitIdentical) {
  constexpr index_t kM = 96;
  constexpr index_t kN = 72;
  constexpr index_t kB = 12;
  constexpr int kLowJobs = 8;

  ServeConfig cfg;
  cfg.devices = 4;
  cfg.mode = ExecutionMode::Real;
  Scheduler sched(cfg);

  qr::QrOptions base;
  base.blocksize = kB;
  base.precision = blas::GemmPrecision::FP32;
  base.panel_base = 8;

  // 8 equal low-priority jobs saturate the 4 devices; panel units are
  // 12-wide, so each job checkpoints 6 times. One high-priority job is
  // gated behind the first 5 fleet units: when it arrives every device is
  // mid-job, forcing a checkpoint-boundary preemption.
  const char* algos[] = {"blocking", "left"};
  std::vector<la::Matrix> as;
  std::vector<la::Matrix> rs;
  as.reserve(kLowJobs + 1);
  rs.reserve(kLowJobs + 1);
  std::vector<AdmissionDecision> decisions;
  for (int i = 0; i < kLowJobs; ++i) {
    as.push_back(la::random_normal(kM, kN, 100 + static_cast<unsigned>(i)));
    rs.emplace_back(kN, kN);
    JobSpec job;
    job.name = "low" + std::to_string(i);
    job.m = kM;
    job.n = kN;
    job.algorithm = algos[i % 2];
    job.blocksize = kB;
    job.precision = blas::GemmPrecision::FP32;
    job.priority = 1;
    job.options = base;
    job.a = as.back().view();
    job.r = rs.back().view();
    const AdmissionDecision d = sched.submit(job);
    ASSERT_TRUE(d.admitted) << job.name << ": " << d.reason;
    decisions.push_back(d);
  }
  as.push_back(la::random_normal(kM, kN, 500));
  rs.emplace_back(kN, kN);
  JobSpec urgent;
  urgent.name = "urgent";
  urgent.m = kM;
  urgent.n = kN;
  urgent.algorithm = "blocking";
  urgent.blocksize = kB;
  urgent.precision = blas::GemmPrecision::FP32;
  urgent.priority = 5;
  urgent.arrival_after_units = 5;
  urgent.options = base;
  urgent.a = as.back().view();
  urgent.r = rs.back().view();
  const AdmissionDecision ud = sched.submit(urgent);
  ASSERT_TRUE(ud.admitted) << ud.reason;
  decisions.push_back(ud);

  const FleetReport rep = sched.run();
  EXPECT_EQ(rep.jobs_admitted, kLowJobs + 1);
  EXPECT_EQ(rep.jobs_completed, kLowJobs + 1);
  EXPECT_EQ(rep.jobs_failed, 0);
  EXPECT_GE(rep.jobs_preempted, 1);
  EXPECT_DOUBLE_EQ(rep.makespan_seconds, fleet_span(sched));

  int preempted_jobs = 0;
  for (const JobReport& j : rep.jobs) {
    EXPECT_EQ(j.state, JobState::Completed) << j.name;
    if (j.preemptions > 0) {
      ++preempted_jobs;
      EXPECT_GE(j.attempts, 2) << j.name;
    }
  }
  EXPECT_GE(preempted_jobs, 1);
  // The urgent job itself was never preempted (nothing outranks it).
  EXPECT_EQ(report_for(rep, ud.job_id).preemptions, 0);

  // Every job's factorization — preempted and resumed or not — must be bit-
  // identical to an uninterrupted clean run of the same driver and options
  // (Real-mode numerics are schedule-independent).
  for (size_t i = 0; i < as.size(); ++i) {
    const JobReport& j = rep.jobs[i];
    const std::uint64_t seed = i < kLowJobs ? 100 + i : 500;
    la::Matrix q_ref = la::random_normal(kM, kN, seed);
    la::Matrix r_ref(kN, kN);
    Device clean(cfg.spec, ExecutionMode::Real);
    clean.model().install_paper_calibration();
    run_driver(j.algorithm, clean, q_ref.view(), r_ref.view(), base);
    EXPECT_TRUE(bitwise_equal(as[i], q_ref)) << j.name;
    EXPECT_TRUE(bitwise_equal(rs[i], r_ref)) << j.name;
  }
}

TEST(ServeScheduler, RunIsSingleShot) {
  ServeConfig cfg;
  Scheduler sched(cfg);
  JobSpec job;
  job.m = job.n = 32768;
  job.blocksize = 4096;
  ASSERT_TRUE(sched.submit(job).admitted);
  sched.run();
  EXPECT_THROW(sched.run(), InvalidArgument);
  EXPECT_THROW(sched.submit(job), InvalidArgument);
}

TEST(ServeScheduler, ConfigValidation) {
  ServeConfig cfg;
  cfg.devices = 0;
  EXPECT_THROW(Scheduler{cfg}, InvalidArgument);
  cfg.devices = 1;
  cfg.checkpoint_every = 0;
  EXPECT_THROW(Scheduler{cfg}, InvalidArgument);
  cfg.checkpoint_every = 1;
  cfg.admission_memory_fraction = 0;
  EXPECT_THROW(Scheduler{cfg}, InvalidArgument);
}

} // namespace
} // namespace rocqr
