// Multi-job QR service scheduler (docs/SERVING.md): phantom admission
// control matches fleet execution, a 4-device fleet drains a batch of
// concurrent jobs, a late high-priority job preempts a running one at a
// checkpoint boundary and the preempted job resumes bit-identical to an
// uninterrupted run, and the fleet report's makespan equals the global
// trace span.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "la/generate.hpp"
#include "leak_check.hpp"
#include "qr/factorize.hpp"
#include "serve/scheduler.hpp"
#include "sim/device.hpp"

namespace rocqr {
namespace {

using serve::AdmissionDecision;
using serve::FleetReport;
using serve::JobReport;
using serve::JobSpec;
using serve::JobState;
using serve::Scheduler;
using serve::ServeConfig;
using sim::Device;
using sim::ExecutionMode;

qr::QrStats run_driver(const std::string& driver, Device& dev,
                       sim::HostMutRef a, sim::HostMutRef r,
                       const qr::QrOptions& opts) {
  return qr::factorize(
      qr::QrProblem{{&dev}, a, r, *qr::parse_algorithm(driver), opts});
}

bool bitwise_equal(const la::Matrix& x, const la::Matrix& y) {
  for (index_t j = 0; j < x.cols(); ++j) {
    for (index_t i = 0; i < x.rows(); ++i) {
      if (x(i, j) != y(i, j)) return false;
    }
  }
  return true;
}

/// Global trace span of the fleet, derived independently of the report.
double fleet_span(const Scheduler& sched) {
  double first = 0;
  double last = 0;
  bool any = false;
  for (const auto& dev : sched.devices()) {
    const qr::QrStats s = qr::stats_from_trace(dev->trace(), 0, 0);
    if (s.events == 0) continue;
    first = any ? std::min(first, s.first_start) : s.first_start;
    last = any ? std::max(last, s.last_end) : s.last_end;
    any = true;
  }
  return last - first;
}

const JobReport& report_for(const FleetReport& rep, int job_id) {
  return rep.jobs.at(static_cast<size_t>(job_id));
}

TEST(ServeAdmission, RejectsInfeasibleJobs) {
  ServeConfig cfg;
  cfg.devices = 1;
  Scheduler sched(cfg);

  JobSpec bad_shape;
  bad_shape.name = "wide";
  bad_shape.m = 64;
  bad_shape.n = 128;
  AdmissionDecision d = sched.submit(bad_shape);
  EXPECT_FALSE(d.admitted);
  EXPECT_NE(d.reason.find("invalid shape"), std::string::npos) << d.reason;

  JobSpec bad_algo;
  bad_algo.name = "mystery";
  bad_algo.m = bad_algo.n = 4096;
  bad_algo.algorithm = "lattice";
  d = sched.submit(bad_algo);
  EXPECT_FALSE(d.admitted);
  EXPECT_NE(d.reason.find("unknown algorithm"), std::string::npos) << d.reason;

  JobSpec late;
  late.name = "late";
  late.m = late.n = 32768;
  late.blocksize = 4096;
  late.deadline_seconds = 1e-9;
  d = sched.submit(late);
  EXPECT_FALSE(d.admitted);
  EXPECT_NE(d.reason.find("deadline"), std::string::npos) << d.reason;

  const FleetReport rep = sched.run();
  EXPECT_EQ(rep.jobs_rejected, 3);
  EXPECT_EQ(rep.jobs_admitted, 0);
  EXPECT_EQ(rep.jobs_completed, 0);
  for (const JobReport& j : rep.jobs) {
    EXPECT_EQ(j.state, JobState::Rejected);
    EXPECT_FALSE(j.failure.empty());
  }
}

TEST(ServeAdmission, MemoryHeadroomPolicyRejects) {
  ServeConfig cfg;
  cfg.devices = 1;
  cfg.admission_memory_fraction = 0.01;
  Scheduler sched(cfg);
  JobSpec job;
  job.name = "hog";
  job.m = job.n = 32768;
  job.blocksize = 8192;
  const AdmissionDecision d = sched.submit(job);
  EXPECT_FALSE(d.admitted);
  EXPECT_NE(d.reason.find("admission budget"), std::string::npos) << d.reason;
  EXPECT_GT(d.predicted_peak_bytes, 0);
}

TEST(ServeScheduler, PredictionMatchesSingleJobExecution) {
  ServeConfig cfg;
  cfg.devices = 1;
  Scheduler sched(cfg);
  JobSpec job;
  job.name = "solo";
  job.m = 65536;
  job.n = 32768;
  job.blocksize = 8192;
  const AdmissionDecision d = sched.submit(job);
  ASSERT_TRUE(d.admitted) << d.reason;
  EXPECT_GT(d.predicted_seconds, 0);
  EXPECT_GT(d.predicted_peak_bytes, 0);

  const FleetReport rep = sched.run();
  const JobReport& j = report_for(rep, d.job_id);
  ASSERT_EQ(j.state, JobState::Completed);
  EXPECT_EQ(j.attempts, 1);
  // The admission dry run IS the schedule the worker executes (same driver,
  // blocksize and checkpoint cadence on an identical phantom device).
  EXPECT_NEAR(j.stats.total_seconds, d.predicted_seconds,
              1e-9 * d.predicted_seconds);
  EXPECT_EQ(j.stats.peak_device_bytes, d.predicted_peak_bytes);
  EXPECT_DOUBLE_EQ(rep.makespan_seconds, fleet_span(sched));
}

TEST(ServeScheduler, PhantomFleetDrainsConcurrentBatch) {
  ServeConfig cfg;
  cfg.devices = 4;
  Scheduler sched(cfg);

  const char* algos[] = {"recursive", "blocking", "left"};
  std::vector<AdmissionDecision> decisions;
  double predicted_sum = 0;
  for (int i = 0; i < 8; ++i) {
    JobSpec job;
    job.name = "batch" + std::to_string(i);
    job.m = 65536;
    job.n = 32768;
    job.algorithm = algos[i % 3];
    job.blocksize = 0; // autotune at admission
    const AdmissionDecision d = sched.submit(job);
    ASSERT_TRUE(d.admitted) << job.name << ": " << d.reason;
    EXPECT_GT(d.blocksize, 0) << job.name;
    predicted_sum += d.predicted_seconds;
    decisions.push_back(d);
  }

  const FleetReport rep = sched.run();
  EXPECT_EQ(rep.jobs_admitted, 8);
  EXPECT_EQ(rep.jobs_completed, 8);
  EXPECT_EQ(rep.jobs_failed, 0);
  for (const AdmissionDecision& d : decisions) {
    const JobReport& j = report_for(rep, d.job_id);
    EXPECT_EQ(j.state, JobState::Completed) << j.name;
    if (j.attempts == 1 && j.preemptions == 0) {
      EXPECT_NEAR(j.stats.total_seconds, d.predicted_seconds,
                  1e-6 * d.predicted_seconds)
          << j.name;
    }
  }
  // 8 equal-priority jobs on 4 devices: the fleet must actually run them
  // concurrently, so the makespan beats the serial sum of predictions...
  EXPECT_LT(rep.makespan_seconds, predicted_sum);
  // ...and equals the global span of the devices' traces.
  EXPECT_DOUBLE_EQ(rep.makespan_seconds, fleet_span(sched));
}

TEST(ServeScheduler, PreemptsAndResumesBitIdentical) {
  constexpr index_t kM = 96;
  constexpr index_t kN = 72;
  constexpr index_t kB = 12;
  constexpr int kLowJobs = 8;

  ServeConfig cfg;
  cfg.devices = 4;
  cfg.mode = ExecutionMode::Real;
  Scheduler sched(cfg);

  qr::QrOptions base;
  base.blocksize = kB;
  base.precision = blas::GemmPrecision::FP32;
  base.panel_base = 8;

  // 8 equal low-priority jobs saturate the 4 devices; panel units are
  // 12-wide, so each job checkpoints 6 times. One high-priority job is
  // gated behind the first 5 fleet units: when it arrives every device is
  // mid-job, forcing a checkpoint-boundary preemption.
  const char* algos[] = {"blocking", "left"};
  std::vector<la::Matrix> as;
  std::vector<la::Matrix> rs;
  as.reserve(kLowJobs + 1);
  rs.reserve(kLowJobs + 1);
  std::vector<AdmissionDecision> decisions;
  for (int i = 0; i < kLowJobs; ++i) {
    as.push_back(la::random_normal(kM, kN, 100 + static_cast<unsigned>(i)));
    rs.emplace_back(kN, kN);
    JobSpec job;
    job.name = "low" + std::to_string(i);
    job.m = kM;
    job.n = kN;
    job.algorithm = algos[i % 2];
    job.blocksize = kB;
    job.precision = blas::GemmPrecision::FP32;
    job.priority = 1;
    job.options = base;
    job.a = as.back().view();
    job.r = rs.back().view();
    const AdmissionDecision d = sched.submit(job);
    ASSERT_TRUE(d.admitted) << job.name << ": " << d.reason;
    decisions.push_back(d);
  }
  as.push_back(la::random_normal(kM, kN, 500));
  rs.emplace_back(kN, kN);
  JobSpec urgent;
  urgent.name = "urgent";
  urgent.m = kM;
  urgent.n = kN;
  urgent.algorithm = "blocking";
  urgent.blocksize = kB;
  urgent.precision = blas::GemmPrecision::FP32;
  urgent.priority = 5;
  urgent.arrival_after_units = 5;
  urgent.options = base;
  urgent.a = as.back().view();
  urgent.r = rs.back().view();
  const AdmissionDecision ud = sched.submit(urgent);
  ASSERT_TRUE(ud.admitted) << ud.reason;
  decisions.push_back(ud);

  const FleetReport rep = sched.run();
  EXPECT_EQ(rep.jobs_admitted, kLowJobs + 1);
  EXPECT_EQ(rep.jobs_completed, kLowJobs + 1);
  EXPECT_EQ(rep.jobs_failed, 0);
  EXPECT_GE(rep.jobs_preempted, 1);
  EXPECT_DOUBLE_EQ(rep.makespan_seconds, fleet_span(sched));

  int preempted_jobs = 0;
  for (const JobReport& j : rep.jobs) {
    EXPECT_EQ(j.state, JobState::Completed) << j.name;
    if (j.preemptions > 0) {
      ++preempted_jobs;
      EXPECT_GE(j.attempts, 2) << j.name;
    }
  }
  EXPECT_GE(preempted_jobs, 1);
  // The urgent job itself was never preempted (nothing outranks it).
  EXPECT_EQ(report_for(rep, ud.job_id).preemptions, 0);

  // Every job's factorization — preempted and resumed or not — must be bit-
  // identical to an uninterrupted clean run of the same driver and options
  // (Real-mode numerics are schedule-independent).
  for (size_t i = 0; i < as.size(); ++i) {
    const JobReport& j = rep.jobs[i];
    const std::uint64_t seed = i < kLowJobs ? 100 + i : 500;
    la::Matrix q_ref = la::random_normal(kM, kN, seed);
    la::Matrix r_ref(kN, kN);
    Device clean(cfg.spec, ExecutionMode::Real);
    clean.model().install_paper_calibration();
    run_driver(j.algorithm, clean, q_ref.view(), r_ref.view(), base);
    EXPECT_TRUE(bitwise_equal(as[i], q_ref)) << j.name;
    EXPECT_TRUE(bitwise_equal(rs[i], r_ref)) << j.name;
  }
}

TEST(ServeColocation, TiledJobsShareOneDeviceAndCutMakespan) {
  // Two tall-skinny tiled jobs on ONE device: exclusively they run back to
  // back; colocated they run as one task graph whose nodes interleave on
  // the three engines, so the makespan beats the serial schedule.
  auto run = [](int max_colocated) {
    ServeConfig cfg;
    cfg.devices = 1;
    cfg.max_colocated_jobs = max_colocated;
    Scheduler sched(cfg);
    for (int i = 0; i < 2; ++i) {
      JobSpec job;
      job.name = "tiled" + std::to_string(i);
      job.m = 131072;
      job.n = 8192;
      job.algorithm = "tiled";
      job.blocksize = 4096;
      EXPECT_TRUE(sched.submit(job).admitted) << job.name;
    }
    return sched.run();
  };

  const FleetReport exclusive = run(1);
  const FleetReport colocated = run(2);
  for (const FleetReport* rep : {&exclusive, &colocated}) {
    EXPECT_EQ(rep->jobs_completed, 2);
    EXPECT_EQ(rep->jobs_failed, 0);
    for (const JobReport& j : rep->jobs) {
      EXPECT_EQ(j.state, JobState::Completed) << j.name;
      EXPECT_GT(j.stats.events, 0) << j.name;
      EXPECT_GT(j.stats.total_seconds, 0) << j.name;
    }
  }
  // Colocated: both jobs dispatch in one attempt each, together.
  for (const JobReport& j : colocated.jobs) EXPECT_EQ(j.attempts, 1);
  EXPECT_LT(colocated.makespan_seconds, exclusive.makespan_seconds);
  // Per-job attribution: the label-filtered stats split the shared trace
  // window without double counting — each job still sees its own panels.
  EXPECT_EQ(colocated.jobs[0].stats.panels, exclusive.jobs[0].stats.panels);
  EXPECT_EQ(colocated.jobs[1].stats.panels, exclusive.jobs[1].stats.panels);
}

TEST(ServeColocation, ColocatedBatchNumericsMatchSoloRuns) {
  constexpr index_t kM = 96;
  constexpr index_t kN = 64;
  constexpr index_t kB = 16;

  ServeConfig cfg;
  cfg.devices = 1;
  cfg.mode = ExecutionMode::Real;
  cfg.max_colocated_jobs = 2;
  Scheduler sched(cfg);

  qr::QrOptions base;
  base.blocksize = kB;
  base.precision = blas::GemmPrecision::FP32;
  base.panel_base = 8;

  std::vector<la::Matrix> as;
  std::vector<la::Matrix> rs;
  for (int i = 0; i < 2; ++i) {
    as.push_back(la::random_normal(kM, kN, 40 + static_cast<unsigned>(i)));
    rs.emplace_back(kN, kN);
    JobSpec job;
    job.name = "co" + std::to_string(i);
    job.m = kM;
    job.n = kN;
    job.algorithm = "tiled";
    job.blocksize = kB;
    job.precision = blas::GemmPrecision::FP32;
    job.options = base;
    job.a = as.back().view();
    job.r = rs.back().view();
    ASSERT_TRUE(sched.submit(job).admitted) << job.name;
  }

  const FleetReport rep = sched.run();
  EXPECT_EQ(rep.jobs_completed, 2);
  for (const JobReport& j : rep.jobs) {
    EXPECT_EQ(j.state, JobState::Completed) << j.name;
    EXPECT_EQ(j.attempts, 1) << j.name;
  }

  // Sharing a task graph must not change either job's numerics: Real-mode
  // results are schedule-independent, so each matches its solo run bitwise.
  for (size_t i = 0; i < as.size(); ++i) {
    la::Matrix q_ref =
        la::random_normal(kM, kN, 40 + static_cast<unsigned>(i));
    la::Matrix r_ref(kN, kN);
    Device clean(cfg.spec, ExecutionMode::Real);
    clean.model().install_paper_calibration();
    run_driver("tiled", clean, q_ref.view(), r_ref.view(), base);
    EXPECT_TRUE(bitwise_equal(as[i], q_ref)) << "job " << i;
    EXPECT_TRUE(bitwise_equal(rs[i], r_ref)) << "job " << i;
  }
}

TEST(ServeColocation, PreemptedBatchResumesBitIdentical) {
  // A colocated tiled batch is preempted mid-graph by an urgent job; every
  // member unwinds at the checkpoint boundary, requeues from its own
  // snapshot and finishes bit-identical to an uninterrupted run.
  constexpr index_t kM = 96;
  constexpr index_t kN = 64;
  constexpr index_t kB = 16;

  ServeConfig cfg;
  cfg.devices = 1;
  cfg.mode = ExecutionMode::Real;
  cfg.max_colocated_jobs = 2;
  Scheduler sched(cfg);

  qr::QrOptions base;
  base.blocksize = kB;
  base.precision = blas::GemmPrecision::FP32;
  base.panel_base = 8;

  std::vector<la::Matrix> as;
  std::vector<la::Matrix> rs;
  for (int i = 0; i < 2; ++i) {
    as.push_back(la::random_normal(kM, kN, 70 + static_cast<unsigned>(i)));
    rs.emplace_back(kN, kN);
    JobSpec job;
    job.name = "low" + std::to_string(i);
    job.m = kM;
    job.n = kN;
    job.algorithm = "tiled";
    job.blocksize = kB;
    job.precision = blas::GemmPrecision::FP32;
    job.priority = 1;
    job.options = base;
    job.a = as.back().view();
    job.r = rs.back().view();
    ASSERT_TRUE(sched.submit(job).admitted) << job.name;
  }
  as.push_back(la::random_normal(kM, kN, 99));
  rs.emplace_back(kN, kN);
  JobSpec urgent;
  urgent.name = "urgent";
  urgent.m = kM;
  urgent.n = kN;
  urgent.algorithm = "blocking";
  urgent.blocksize = kB;
  urgent.precision = blas::GemmPrecision::FP32;
  urgent.priority = 5;
  urgent.arrival_after_units = 2;
  urgent.options = base;
  urgent.a = as.back().view();
  urgent.r = rs.back().view();
  ASSERT_TRUE(sched.submit(urgent).admitted);

  const FleetReport rep = sched.run();
  EXPECT_EQ(rep.jobs_completed, 3);
  EXPECT_EQ(rep.jobs_failed, 0);
  EXPECT_GE(rep.jobs_preempted, 1);
  int preempted = 0;
  for (const JobReport& j : rep.jobs) {
    EXPECT_EQ(j.state, JobState::Completed) << j.name;
    preempted += j.preemptions;
  }
  EXPECT_GE(preempted, 1);

  const char* algos[] = {"tiled", "tiled", "blocking"};
  const std::uint64_t seeds[] = {70, 71, 99};
  for (size_t i = 0; i < as.size(); ++i) {
    la::Matrix q_ref = la::random_normal(kM, kN, seeds[i]);
    la::Matrix r_ref(kN, kN);
    Device clean(cfg.spec, ExecutionMode::Real);
    clean.model().install_paper_calibration();
    run_driver(algos[i], clean, q_ref.view(), r_ref.view(), base);
    EXPECT_TRUE(bitwise_equal(as[i], q_ref)) << "job " << i;
    EXPECT_TRUE(bitwise_equal(rs[i], r_ref)) << "job " << i;
  }
}

TEST(ServeFusion, FusedSmallJobsShareOneDeviceAndCutMakespan) {
  // Four same-shape small blocking jobs on ONE device: exclusively they
  // run back to back, paying every fixed per-op latency (link turnaround,
  // kernel launch) once per job per round; fused they run as one
  // block-diagonal batched node program that pays each latency once per
  // round, so the makespan shrinks.
  auto run = [](int max_fused) {
    ServeConfig cfg;
    cfg.devices = 1;
    cfg.max_fused_jobs = max_fused;
    Scheduler sched(cfg);
    for (int i = 0; i < 4; ++i) {
      JobSpec job;
      job.name = "small" + std::to_string(i);
      job.m = 2048;
      job.n = 512;
      job.algorithm = "blocking";
      job.blocksize = 64;
      EXPECT_TRUE(sched.submit(job).admitted) << job.name;
    }
    return sched.run();
  };

  const FleetReport exclusive = run(1);
  const FleetReport fused = run(4);
  for (const FleetReport* rep : {&exclusive, &fused}) {
    EXPECT_EQ(rep->jobs_completed, 4);
    EXPECT_EQ(rep->jobs_failed, 0);
    for (const JobReport& j : rep->jobs) {
      EXPECT_EQ(j.state, JobState::Completed) << j.name;
      EXPECT_GT(j.stats.total_seconds, 0) << j.name;
    }
  }
  // Fused: all four dispatch together in one attempt each.
  for (const JobReport& j : fused.jobs) EXPECT_EQ(j.attempts, 1);
  EXPECT_LT(fused.makespan_seconds, exclusive.makespan_seconds);
  // One fused round per panel: each member still sees its own panel count.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(fused.jobs[i].stats.panels, exclusive.jobs[i].stats.panels);
  }
}

TEST(ServeFusion, FusedBatchNumericsMatchSoloRuns) {
  // The serving-path form of the tentpole contract: two jobs coalesced by
  // the dispatcher into one fused batch finish bit-identical to clean solo
  // runs — fusion changes the schedule, never the arithmetic.
  constexpr index_t kM = 96;
  constexpr index_t kN = 64;
  constexpr index_t kB = 16;

  ServeConfig cfg;
  cfg.devices = 1;
  cfg.mode = ExecutionMode::Real;
  cfg.max_fused_jobs = 2;
  Scheduler sched(cfg);

  qr::QrOptions base;
  base.blocksize = kB;
  base.precision = blas::GemmPrecision::FP32;
  base.panel_base = 8;

  std::vector<la::Matrix> as;
  std::vector<la::Matrix> rs;
  for (int i = 0; i < 2; ++i) {
    as.push_back(la::random_normal(kM, kN, 60 + static_cast<unsigned>(i)));
    rs.emplace_back(kN, kN);
    JobSpec job;
    job.name = "fuse" + std::to_string(i);
    job.m = kM;
    job.n = kN;
    job.algorithm = "blocking";
    job.blocksize = kB;
    job.precision = blas::GemmPrecision::FP32;
    job.options = base;
    job.a = as.back().view();
    job.r = rs.back().view();
    ASSERT_TRUE(sched.submit(job).admitted) << job.name;
  }

  const FleetReport rep = sched.run();
  EXPECT_EQ(rep.jobs_completed, 2);
  for (const JobReport& j : rep.jobs) {
    EXPECT_EQ(j.state, JobState::Completed) << j.name;
    EXPECT_EQ(j.attempts, 1) << j.name;
  }

  for (size_t i = 0; i < as.size(); ++i) {
    la::Matrix q_ref =
        la::random_normal(kM, kN, 60 + static_cast<unsigned>(i));
    la::Matrix r_ref(kN, kN);
    Device clean(cfg.spec, ExecutionMode::Real);
    clean.model().install_paper_calibration();
    run_driver("blocking", clean, q_ref.view(), r_ref.view(), base);
    EXPECT_TRUE(bitwise_equal(as[i], q_ref)) << "job " << i;
    EXPECT_TRUE(bitwise_equal(rs[i], r_ref)) << "job " << i;
  }
}

TEST(ServeOpenLoop, GatedArrivalsAloneStillDrain) {
  // Every job is behind an arrival gate and nothing is running, so no
  // units will ever complete to open a gate: the scheduler must force the
  // earliest gate (simulating the wait) instead of deadlocking, and the
  // forced job — first onto an idle device — waits zero simulated time.
  ServeConfig cfg;
  cfg.devices = 1;
  Scheduler sched(cfg);
  const index_t gates[] = {7, 3, 11};
  std::vector<AdmissionDecision> decisions;
  for (const index_t gate : gates) {
    JobSpec job;
    job.name = "gate" + std::to_string(gate);
    job.m = job.n = 32768;
    job.blocksize = 4096;
    job.arrival_after_units = gate;
    const AdmissionDecision d = sched.submit(job);
    ASSERT_TRUE(d.admitted) << job.name << ": " << d.reason;
    decisions.push_back(d);
  }

  const FleetReport rep = sched.run();
  EXPECT_EQ(rep.jobs_completed, 3);
  EXPECT_EQ(rep.jobs_failed, 0);
  ASSERT_EQ(rep.queue_waits.size(), 3u);
  // gate 3 is the earliest: it is forced open first and dispatches onto
  // the idle device with zero wait.
  EXPECT_DOUBLE_EQ(report_for(rep, decisions[1].job_id).queue_wait_seconds,
                   0.0);
}

TEST(ServeOpenLoop, StaggeredArrivalsInterleaveWithPreemption) {
  // Open-loop arrivals under contention: four low-priority jobs arrive at
  // gates 0/1/2/3 on ONE device, and an urgent job lands at gate 4 while
  // the device is mid-job — forcing a checkpoint-boundary preemption in
  // the middle of the arrival stream. Everything completes bit-identical,
  // and the queue-wait record stays exact: one entry per dispatch, and the
  // per-job sums equal the fleet record (an episode is counted once, never
  // double-counted across preemption requeues).
  constexpr index_t kM = 96;
  constexpr index_t kN = 72;
  constexpr index_t kB = 12;

  ServeConfig cfg;
  cfg.devices = 1;
  cfg.mode = ExecutionMode::Real;
  Scheduler sched(cfg);

  qr::QrOptions base;
  base.blocksize = kB;
  base.precision = blas::GemmPrecision::FP32;
  base.panel_base = 8;

  std::vector<la::Matrix> as;
  std::vector<la::Matrix> rs;
  for (int i = 0; i < 4; ++i) {
    as.push_back(la::random_normal(kM, kN, 200 + static_cast<unsigned>(i)));
    rs.emplace_back(kN, kN);
    JobSpec job;
    job.name = "low" + std::to_string(i);
    job.m = kM;
    job.n = kN;
    job.algorithm = "blocking";
    job.blocksize = kB;
    job.precision = blas::GemmPrecision::FP32;
    job.priority = 1;
    job.arrival_after_units = static_cast<index_t>(i);
    job.options = base;
    job.a = as.back().view();
    job.r = rs.back().view();
    ASSERT_TRUE(sched.submit(job).admitted) << job.name;
  }
  as.push_back(la::random_normal(kM, kN, 600));
  rs.emplace_back(kN, kN);
  JobSpec urgent;
  urgent.name = "urgent";
  urgent.m = kM;
  urgent.n = kN;
  urgent.algorithm = "blocking";
  urgent.blocksize = kB;
  urgent.precision = blas::GemmPrecision::FP32;
  urgent.priority = 5;
  urgent.arrival_after_units = 4;
  urgent.options = base;
  urgent.a = as.back().view();
  urgent.r = rs.back().view();
  ASSERT_TRUE(sched.submit(urgent).admitted);

  const FleetReport rep = sched.run();
  EXPECT_EQ(rep.jobs_completed, 5);
  EXPECT_EQ(rep.jobs_failed, 0);
  EXPECT_GE(rep.jobs_preempted, 1);

  int total_attempts = 0;
  double jobs_sum = 0;
  for (const JobReport& j : rep.jobs) {
    EXPECT_EQ(j.state, JobState::Completed) << j.name;
    total_attempts += j.attempts;
    jobs_sum += j.queue_wait_seconds;
  }
  EXPECT_EQ(rep.queue_waits.size(), static_cast<size_t>(total_attempts));
  double fleet_sum = 0;
  for (const double w : rep.queue_waits) fleet_sum += w;
  EXPECT_DOUBLE_EQ(jobs_sum, fleet_sum);

  for (size_t i = 0; i < as.size(); ++i) {
    const std::uint64_t seed = i < 4 ? 200 + i : 600;
    la::Matrix q_ref = la::random_normal(kM, kN, seed);
    la::Matrix r_ref(kN, kN);
    Device clean(cfg.spec, ExecutionMode::Real);
    clean.model().install_paper_calibration();
    run_driver("blocking", clean, q_ref.view(), r_ref.view(), base);
    EXPECT_TRUE(bitwise_equal(as[i], q_ref)) << rep.jobs[i].name;
    EXPECT_TRUE(bitwise_equal(rs[i], r_ref)) << rep.jobs[i].name;
  }
}

TEST(ServeQueueWait, SimulatedWaitsAreExactDeterministicAndUnduplicated) {
  // Queue waits are simulated-clock quantities: three identical jobs on
  // one device wait 0, t and 2t where t is one job's service time — and
  // two runs of the same batch report IDENTICAL waits, double for double
  // (wall-clock noise never leaks in). The report's percentiles are
  // nearest-rank over the exact record, not the bucketed histogram.
  auto run = []() {
    ServeConfig cfg;
    cfg.devices = 1;
    Scheduler sched(cfg);
    for (int i = 0; i < 3; ++i) {
      JobSpec job;
      job.name = "q" + std::to_string(i);
      job.m = job.n = 32768;
      job.blocksize = 4096;
      EXPECT_TRUE(sched.submit(job).admitted) << job.name;
    }
    return sched.run();
  };

  const FleetReport a = run();
  const FleetReport b = run();
  ASSERT_EQ(a.queue_waits.size(), 3u); // one entry per dispatch
  EXPECT_EQ(a.queue_waits, b.queue_waits);

  // Per-job sums equal the fleet record: each episode is counted exactly
  // once on both sides.
  double jobs_sum = 0;
  for (const JobReport& j : a.jobs) jobs_sum += j.queue_wait_seconds;
  double fleet_sum = 0;
  for (const double w : a.queue_waits) fleet_sum += w;
  EXPECT_DOUBLE_EQ(jobs_sum, fleet_sum);

  std::vector<double> sorted = a.queue_waits;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_DOUBLE_EQ(sorted[0], 0.0); // first dispatch onto an idle device
  EXPECT_GT(sorted[1], 0.0);
  // Back-to-back identical jobs: the third waits twice the second's wait.
  EXPECT_NEAR(sorted[2], 2 * sorted[1], 1e-9 * sorted[2]);
  // Nearest-rank percentiles over 3 samples: p50 -> rank 2, p95/p99 -> 3.
  EXPECT_DOUBLE_EQ(a.queue_wait_p50, sorted[1]);
  EXPECT_DOUBLE_EQ(a.queue_wait_p95, sorted[2]);
  EXPECT_DOUBLE_EQ(a.queue_wait_p99, sorted[2]);
}

TEST(ServeScheduler, RunIsSingleShot) {
  ServeConfig cfg;
  Scheduler sched(cfg);
  JobSpec job;
  job.m = job.n = 32768;
  job.blocksize = 4096;
  ASSERT_TRUE(sched.submit(job).admitted);
  sched.run();
  EXPECT_THROW(sched.run(), InvalidArgument);
  EXPECT_THROW(sched.submit(job), InvalidArgument);
}

TEST(ServeScheduler, ConfigValidation) {
  ServeConfig cfg;
  cfg.devices = 0;
  EXPECT_THROW(Scheduler{cfg}, InvalidArgument);
  cfg.devices = 1;
  cfg.checkpoint_every = 0;
  EXPECT_THROW(Scheduler{cfg}, InvalidArgument);
  cfg.checkpoint_every = 1;
  cfg.admission_memory_fraction = 0;
  EXPECT_THROW(Scheduler{cfg}, InvalidArgument);
  cfg.admission_memory_fraction = 1.0;
  cfg.max_colocated_jobs = 0;
  EXPECT_THROW(Scheduler{cfg}, InvalidArgument);
  cfg.max_colocated_jobs = 1;
  cfg.max_fused_jobs = 0;
  EXPECT_THROW(Scheduler{cfg}, InvalidArgument);
}

} // namespace
} // namespace rocqr
