// Slab partitioning and the §4.1.3 ramp-up schedule.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "ooc/slab_schedule.hpp"

namespace rocqr::ooc {
namespace {

index_t total_width(const std::vector<Slab>& slabs) {
  index_t sum = 0;
  for (const Slab& s : slabs) sum += s.width;
  return sum;
}

void expect_contiguous(const std::vector<Slab>& slabs) {
  index_t next = 0;
  for (const Slab& s : slabs) {
    EXPECT_EQ(s.offset, next);
    EXPECT_GT(s.width, 0);
    next = s.offset + s.width;
  }
}

TEST(SlabSchedule, EvenPartition) {
  const auto slabs = slab_partition(131072, 16384);
  EXPECT_EQ(slabs.size(), 8u);
  expect_contiguous(slabs);
  EXPECT_EQ(total_width(slabs), 131072);
  for (const Slab& s : slabs) EXPECT_EQ(s.width, 16384);
  EXPECT_EQ(max_slab_width(slabs), 16384);
}

TEST(SlabSchedule, RemainderGoesToLastSlab) {
  const auto slabs = slab_partition(100, 32);
  ASSERT_EQ(slabs.size(), 4u);
  expect_contiguous(slabs);
  EXPECT_EQ(slabs.back().width, 4);
  EXPECT_EQ(total_width(slabs), 100);
}

TEST(SlabSchedule, SingleAndEmpty) {
  EXPECT_EQ(slab_partition(10, 100).size(), 1u);
  EXPECT_TRUE(slab_partition(0, 16).empty());
  EXPECT_EQ(max_slab_width({}), 0);
}

TEST(SlabSchedule, RampUpDoublesToBlocksize) {
  // The paper's example: start at 2048, grow to 8192 (§4.1.3).
  const auto slabs = slab_partition(65536, 8192, true, 2048);
  expect_contiguous(slabs);
  EXPECT_EQ(total_width(slabs), 65536);
  EXPECT_EQ(slabs[0].width, 2048);
  EXPECT_EQ(slabs[1].width, 4096);
  EXPECT_EQ(slabs[2].width, 8192);
  // Steady state at the full blocksize; only the final slab may be short.
  for (size_t i = 3; i + 1 < slabs.size(); ++i) {
    EXPECT_EQ(slabs[i].width, 8192);
  }
  EXPECT_EQ(max_slab_width(slabs), 8192);
}

TEST(SlabSchedule, RampUpMoreStepsThanTotal) {
  // Total smaller than the first ramp step: single truncated slab.
  const auto slabs = slab_partition(1000, 8192, true, 2048);
  ASSERT_EQ(slabs.size(), 1u);
  EXPECT_EQ(slabs[0].width, 1000);
}

TEST(SlabSchedule, RampStartEqualBlocksizeIsPlainPartition) {
  const auto ramp = slab_partition(4096, 1024, true, 1024);
  const auto plain = slab_partition(4096, 1024);
  ASSERT_EQ(ramp.size(), plain.size());
  for (size_t i = 0; i < ramp.size(); ++i) {
    EXPECT_EQ(ramp[i].offset, plain[i].offset);
    EXPECT_EQ(ramp[i].width, plain[i].width);
  }
}

TEST(SlabSchedule, RampCostsMoreSlabsButSameCoverage) {
  const auto ramp = slab_partition(131072, 16384, true, 2048);
  const auto plain = slab_partition(131072, 16384);
  EXPECT_GT(ramp.size(), plain.size());
  EXPECT_EQ(total_width(ramp), total_width(plain));
}

TEST(SlabSchedule, RejectsBadArguments) {
  EXPECT_THROW(slab_partition(-1, 16), rocqr::InvalidArgument);
  EXPECT_THROW(slab_partition(16, 0), rocqr::InvalidArgument);
  EXPECT_THROW(slab_partition(16, 8, true, 0), rocqr::InvalidArgument);
  EXPECT_THROW(slab_partition(16, 8, true, 16), rocqr::InvalidArgument);
}

// --- Edge cases: every partition must tile [0, total) exactly ----------------

TEST(SlabSchedule, EmptyTotalWithRampIsEmpty) {
  EXPECT_TRUE(slab_partition(0, 16, true, 4).empty());
  EXPECT_TRUE(slab_partition(0, 1).empty());
}

TEST(SlabSchedule, BlocksizeLargerThanTotal) {
  const auto slabs = slab_partition(7, 4096);
  ASSERT_EQ(slabs.size(), 1u);
  EXPECT_EQ(slabs[0].offset, 0);
  EXPECT_EQ(slabs[0].width, 7);
  expect_contiguous(slabs);
}

TEST(SlabSchedule, RampStartAboveBlocksizeThrows) {
  EXPECT_THROW(slab_partition(4096, 1024, true, 2048),
               rocqr::InvalidArgument);
}

TEST(SlabSchedule, RampStartNotPowerOfTwoDivisor) {
  // 3 doubles as 3, 6, 12, 24 and then clamps to the 20-wide blocksize:
  // the schedule still tiles [0, total) with no gaps or overlap.
  const auto slabs = slab_partition(100, 20, true, 3);
  expect_contiguous(slabs);
  EXPECT_EQ(total_width(slabs), 100);
  EXPECT_EQ(slabs[0].width, 3);
  EXPECT_EQ(slabs[1].width, 6);
  EXPECT_EQ(slabs[2].width, 12);
  EXPECT_EQ(slabs[3].width, 20); // min(24, blocksize)
  EXPECT_EQ(max_slab_width(slabs), 20);
}

TEST(SlabSchedule, SingleSlabRamp) {
  // Ramp worth of columns never reaches steady state: one truncated slab.
  const auto slabs = slab_partition(2, 16, true, 4);
  ASSERT_EQ(slabs.size(), 1u);
  EXPECT_EQ(slabs[0].offset, 0);
  EXPECT_EQ(slabs[0].width, 2);
  expect_contiguous(slabs);
}

} // namespace
} // namespace rocqr::ooc
