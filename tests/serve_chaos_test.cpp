// Chaos test for the QR service: drive a Real-mode fleet whose devices
// inject transient transfer faults and a mid-run allocation OOM, and
// require every admitted job to complete with a numerically correct
// factorization, no leaked device allocations, and a coherent fleet report.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/telemetry.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "leak_check.hpp"
#include "qr/incore.hpp"
#include "serve/scheduler.hpp"
#include "sim/device.hpp"

namespace rocqr {
namespace {

using serve::AdmissionDecision;
using serve::FleetReport;
using serve::JobReport;
using serve::JobSpec;
using serve::JobState;
using serve::Scheduler;
using serve::ServeConfig;

TEST(ServeChaos, FaultyFleetCompletesEveryJob) {
  constexpr index_t kM = 96;
  constexpr index_t kN = 72;
  constexpr index_t kB = 24;
  constexpr int kJobs = 8;

  telemetry::Counter& faults =
      telemetry::MetricsRegistry::global().counter("faults_injected");
  const std::int64_t faults_before = faults.value();

  ServeConfig cfg;
  cfg.devices = 4;
  cfg.mode = sim::ExecutionMode::Real;
  // Device 0 drops H2D transfers at random (retried inside the drivers);
  // device 2 OOMs an allocation mid-run (absorbed by slab degradation or,
  // failing that, a scheduler retry from the last checkpoint).
  cfg.device_faults = {"h2d:transient:p=0.05;seed=3", "",
                       "alloc:oom:after=6", ""};
  Scheduler sched(cfg);

  qr::QrOptions base;
  base.blocksize = kB;
  base.precision = blas::GemmPrecision::FP32;
  base.panel_base = 8;

  const char* algos[] = {"recursive", "blocking", "left"};
  std::vector<la::Matrix> as;
  std::vector<la::Matrix> rs;
  as.reserve(kJobs);
  rs.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    as.push_back(la::random_normal(kM, kN, 700 + i));
    rs.emplace_back(kN, kN);
    JobSpec job;
    job.name = "chaos" + std::to_string(i);
    job.m = kM;
    job.n = kN;
    job.algorithm = algos[i % 3];
    job.blocksize = kB;
    job.precision = blas::GemmPrecision::FP32;
    job.priority = i % 2;
    job.options = base;
    job.a = as.back().view();
    job.r = rs.back().view();
    const AdmissionDecision d = sched.submit(job);
    ASSERT_TRUE(d.admitted) << job.name << ": " << d.reason;
  }

  const FleetReport rep = sched.run();
  EXPECT_EQ(rep.jobs_admitted, kJobs);
  EXPECT_EQ(rep.jobs_completed, kJobs);
  EXPECT_EQ(rep.jobs_failed, 0);
  EXPECT_DOUBLE_EQ(rep.makespan_seconds, rep.fleet.total_seconds);
  EXPECT_GT(faults.value(), faults_before);

  // Bitwise comparison would be too strong here: an OOM-degraded slab
  // schedule changes the GEMM summation order. Check the factorizations
  // numerically against a dense Householder reference instead.
  for (int i = 0; i < kJobs; ++i) {
    const JobReport& j = rep.jobs[static_cast<size_t>(i)];
    EXPECT_EQ(j.state, JobState::Completed) << j.name;
    la::Matrix a0 = la::random_normal(kM, kN, 700 + i);
    const qr::QrFactors ref = qr::householder(a0.view());
    EXPECT_LT(la::relative_difference(as[static_cast<size_t>(i)].view(),
                                      ref.q.view()),
              2e-3)
        << j.name;
    EXPECT_LT(la::qr_residual(a0.view(), as[static_cast<size_t>(i)].view(),
                              rs[static_cast<size_t>(i)].view()),
              1e-4)
        << j.name;
    EXPECT_LT(la::orthogonality_error(as[static_cast<size_t>(i)].view()),
              1e-3)
        << j.name;
  }

  // Every fleet device drained its allocations (ScopedMatrix leaks are
  // caught suite-wide by leak_check.hpp; live allocations here).
  for (const auto& dev : sched.devices()) {
    EXPECT_EQ(dev->live_allocations(), 0u);
  }
}

} // namespace
} // namespace rocqr
