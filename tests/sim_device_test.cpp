// The simulated device: allocation, streams, events, the scheduling rules
// (FIFO engines, program order, overlap), and Real-mode numerics.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "blas/gemm.hpp"
#include "common/error.hpp"
#include "common/half.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "sim/device.hpp"

namespace rocqr::sim {
namespace {

using blas::GemmPrecision;
using blas::Op;

DeviceSpec tiny_spec() {
  DeviceSpec s = DeviceSpec::v100_32gb();
  s.memory_capacity = 64LL << 20; // 64 MiB, plenty for test matrices
  return s;
}

TEST(Device, AllocateFreeAccounting) {
  Device dev(tiny_spec(), ExecutionMode::Real);
  DeviceMatrix a = dev.allocate(100, 50);
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a.bytes(), 100 * 50 * 4);
  EXPECT_GE(dev.memory_used(), a.bytes());
  DeviceMatrix h = dev.allocate(100, 50, StoragePrecision::FP16);
  EXPECT_EQ(h.bytes(), 100 * 50 * 2);
  dev.free(a);
  dev.free(h);
  EXPECT_EQ(dev.memory_used(), 0);
  EXPECT_FALSE(a.valid()); // handle invalidated
  EXPECT_EQ(dev.live_allocations(), 0);
}

TEST(Device, OutOfMemoryThrows) {
  DeviceSpec s = tiny_spec();
  s.memory_capacity = 1 << 10;
  Device dev(s, ExecutionMode::Phantom);
  EXPECT_THROW(dev.allocate(1024, 1024), DeviceOutOfMemory);
}

TEST(Device, UseAfterFreeThrows) {
  Device dev(tiny_spec(), ExecutionMode::Real);
  DeviceMatrix a = dev.allocate(4, 4);
  DeviceMatrix copy = a; // stale handle
  dev.free(a);
  Stream st = dev.create_stream();
  la::Matrix host(4, 4);
  EXPECT_THROW(dev.copy_h2d(copy, host.view(), st), ResourceError);
  EXPECT_THROW(dev.free(copy), ResourceError);
  EXPECT_THROW(dev.download(copy), ResourceError);
}

TEST(Device, H2dD2hRoundTripReal) {
  Device dev(tiny_spec(), ExecutionMode::Real);
  la::Matrix host = la::random_uniform(20, 12, 1);
  DeviceMatrix d = dev.allocate(20, 12);
  Stream st = dev.create_stream();
  dev.copy_h2d(d, host.view(), st);
  la::Matrix back(20, 12);
  dev.copy_d2h(back.view(), d, st);
  dev.synchronize();
  EXPECT_EQ(la::relative_difference(back.view(), host.view()), 0.0);
}

TEST(Device, Fp16StorageRoundsOnArrival) {
  Device dev(tiny_spec(), ExecutionMode::Real);
  la::Matrix host(2, 2);
  host(0, 0) = 1.0009765625f + 0x1.0p-12f; // not an fp16 value
  DeviceMatrix d = dev.allocate(2, 2, StoragePrecision::FP16);
  Stream st = dev.create_stream();
  dev.copy_h2d(d, host.view(), st);
  la::Matrix back(2, 2);
  dev.copy_d2h(back.view(), d, st);
  EXPECT_EQ(back(0, 0), float(half(host(0, 0))));
  EXPECT_NE(back(0, 0), host(0, 0));
}

TEST(Device, SubBlockTransfers) {
  Device dev(tiny_spec(), ExecutionMode::Real);
  la::Matrix host = la::random_uniform(8, 8, 2);
  DeviceMatrix d = dev.allocate(8, 8);
  Stream st = dev.create_stream();
  dev.copy_h2d(d, host.view(), st);
  // Overwrite an interior block from a different host matrix.
  la::Matrix patch = la::random_uniform(3, 2, 3);
  dev.copy_h2d(DeviceMatrixRef(d, 2, 4, 3, 2), patch.view(), st);
  la::Matrix back(8, 8);
  dev.copy_d2h(back.view(), d, st);
  for (index_t j = 0; j < 8; ++j) {
    for (index_t i = 0; i < 8; ++i) {
      const bool in_patch = i >= 2 && i < 5 && j >= 4 && j < 6;
      EXPECT_FLOAT_EQ(back(i, j),
                      in_patch ? patch(i - 2, j - 4) : host(i, j));
    }
  }
  EXPECT_THROW(dev.copy_h2d(DeviceMatrixRef(d, 6, 0, 3, 1), patch.view(), st),
               InvalidArgument);
}

TEST(Device, GemmRealMatchesHostBlas) {
  Device dev(tiny_spec(), ExecutionMode::Real);
  la::Matrix a = la::random_uniform(16, 8, 1);
  la::Matrix b = la::random_uniform(16, 12, 2);
  DeviceMatrix da = dev.allocate(16, 8);
  DeviceMatrix db = dev.allocate(16, 12);
  DeviceMatrix dc = dev.allocate(8, 12);
  Stream st = dev.create_stream();
  dev.copy_h2d(da, a.view(), st);
  dev.copy_h2d(db, b.view(), st);
  dev.gemm(Op::Trans, Op::NoTrans, 1.0f, da, db, 0.0f, dc,
           GemmPrecision::FP32, st);
  la::Matrix got(8, 12);
  dev.copy_d2h(got.view(), dc, st);

  la::Matrix expected(8, 12);
  blas::gemm(Op::Trans, Op::NoTrans, 8, 12, 16, 1.0f, a.data(), a.ld(),
             b.data(), b.ld(), 0.0f, expected.data(), expected.ld());
  EXPECT_LT(la::relative_difference(got.view(), expected.view()), 1e-6);
}

TEST(Device, GemmValidatesShapes) {
  Device dev(tiny_spec(), ExecutionMode::Phantom);
  DeviceMatrix a = dev.allocate(16, 8);
  DeviceMatrix b = dev.allocate(12, 16); // wrong inner dim for NoTrans
  DeviceMatrix c = dev.allocate(16, 16);
  Stream st = dev.create_stream();
  EXPECT_THROW(dev.gemm(Op::NoTrans, Op::NoTrans, 1.0f, a, b, 0.0f, c,
                        GemmPrecision::FP32, st),
               InvalidArgument);
}

TEST(Device, PhantomModeRejectsDataAccess) {
  Device dev(tiny_spec(), ExecutionMode::Phantom);
  DeviceMatrix d = dev.allocate(4, 4);
  Stream st = dev.create_stream();
  // Phantom host refs are fine in phantom mode.
  dev.copy_h2d(d, HostConstRef::phantom(4, 4), st);
  HostMutRef out = HostMutRef::phantom(4, 4);
  dev.copy_d2h(out, d, st);
  EXPECT_THROW(dev.download(d), PhantomDataError);
  la::Matrix m(4, 4);
  EXPECT_THROW(dev.upload(d, m.view()), PhantomDataError);
}

TEST(Device, RealModeRejectsPhantomRefs) {
  Device dev(tiny_spec(), ExecutionMode::Real);
  DeviceMatrix d = dev.allocate(4, 4);
  Stream st = dev.create_stream();
  EXPECT_THROW(dev.copy_h2d(d, HostConstRef::phantom(4, 4), st),
               PhantomDataError);
  HostMutRef out = HostMutRef::phantom(4, 4);
  EXPECT_THROW(dev.copy_d2h(out, d, st), PhantomDataError);
}

// --- Scheduling semantics ---------------------------------------------------

TEST(Schedule, StreamOrderIsSequential) {
  Device dev(tiny_spec(), ExecutionMode::Phantom);
  Stream st = dev.create_stream();
  DeviceMatrix d = dev.allocate(1024, 1024);
  dev.copy_h2d(d, HostConstRef::phantom(1024, 1024), st);
  dev.gemm(Op::NoTrans, Op::NoTrans, 1.0f, d, d, 0.0f, d,
           GemmPrecision::FP16_FP32, st);
  HostMutRef out = HostMutRef::phantom(1024, 1024);
  dev.copy_d2h(out, d, st);
  const auto& ev = dev.trace().events();
  ASSERT_EQ(ev.size(), 3u);
  EXPECT_GE(ev[1].start, ev[0].end);
  EXPECT_GE(ev[2].start, ev[1].end);
}

TEST(Schedule, IndependentStreamsOverlapAcrossEngines) {
  Device dev(tiny_spec(), ExecutionMode::Phantom);
  Stream s1 = dev.create_stream();
  Stream s2 = dev.create_stream();
  DeviceMatrix a = dev.allocate(1024, 1024);
  DeviceMatrix b = dev.allocate(1024, 1024);
  // Long H2D on s1 and a gemm on s2: different engines, no dependency.
  dev.copy_h2d(a, HostConstRef::phantom(1024, 1024), s1);
  dev.gemm(Op::NoTrans, Op::NoTrans, 1.0f, b, b, 0.0f, b,
           GemmPrecision::FP16_FP32, s2);
  const auto& ev = dev.trace().events();
  EXPECT_DOUBLE_EQ(ev[0].start, 0.0);
  EXPECT_DOUBLE_EQ(ev[1].start, 0.0); // starts concurrently
}

TEST(Schedule, SameEngineSerializesAcrossStreams) {
  Device dev(tiny_spec(), ExecutionMode::Phantom);
  Stream s1 = dev.create_stream();
  Stream s2 = dev.create_stream();
  DeviceMatrix a = dev.allocate(512, 512);
  dev.copy_h2d(a, HostConstRef::phantom(512, 512), s1);
  dev.copy_h2d(a, HostConstRef::phantom(512, 512), s2);
  const auto& ev = dev.trace().events();
  // One H2D link: the second transfer queues behind the first.
  EXPECT_GE(ev[1].start, ev[0].end);
}

TEST(Schedule, EventsCreateCrossStreamDependencies) {
  Device dev(tiny_spec(), ExecutionMode::Phantom);
  Stream s1 = dev.create_stream();
  Stream s2 = dev.create_stream();
  DeviceMatrix a = dev.allocate(2048, 2048);
  DeviceMatrix b = dev.allocate(2048, 2048);
  dev.copy_h2d(a, HostConstRef::phantom(2048, 2048), s1);
  Event e = dev.create_event();
  dev.record_event(e, s1);
  dev.wait_event(s2, e);
  dev.gemm(Op::NoTrans, Op::NoTrans, 1.0f, a, a, 0.0f, b,
           GemmPrecision::FP16_FP32, s2);
  const auto& ev = dev.trace().events();
  EXPECT_GE(ev[1].start, ev[0].end); // gemm waits for the upload
}

TEST(Schedule, WaitBeforeRecordThrows) {
  Device dev(tiny_spec(), ExecutionMode::Phantom);
  Stream st = dev.create_stream();
  Event e = dev.create_event();
  EXPECT_THROW(dev.wait_event(st, e), ResourceError);
  EXPECT_THROW(dev.record_event(Event{}, st), InvalidArgument);
  EXPECT_THROW(dev.record_event(e, Stream{}), InvalidArgument);
}

TEST(Schedule, SynchronizeAdvancesHostClock) {
  Device dev(tiny_spec(), ExecutionMode::Phantom);
  Stream st = dev.create_stream();
  DeviceMatrix a = dev.allocate(4096, 4096);
  dev.copy_h2d(a, HostConstRef::phantom(4096, 4096), st);
  EXPECT_DOUBLE_EQ(dev.now(), 0.0); // async enqueue is free
  dev.synchronize(st);
  EXPECT_GT(dev.now(), 0.0);
  EXPECT_DOUBLE_EQ(dev.now(), dev.makespan());
  // Ops enqueued after a sync start no earlier than the host clock.
  dev.copy_h2d(a, HostConstRef::phantom(4096, 4096), st);
  const auto& ev = dev.trace().events();
  EXPECT_GE(ev[1].start, dev.now());
}

TEST(Schedule, SyncVersusAsyncMakespan) {
  // The canonical pipeline: N x (h2d, gemm). Async should approach
  // max(copy, compute) while sync pays copy + compute, the Tables 1/2
  // "Synchronous vs Asynchronous" contrast.
  const auto run = [&](bool synchronous) {
    Device dev(tiny_spec(), ExecutionMode::Phantom);
    Stream in = dev.create_stream();
    Stream comp = dev.create_stream();
    DeviceMatrix buf[2] = {dev.allocate(1024, 1024),
                           dev.allocate(1024, 1024)};
    DeviceMatrix c = dev.allocate(1024, 1024);
    for (int i = 0; i < 8; ++i) {
      DeviceMatrix& slab = buf[i % 2];
      dev.copy_h2d(slab, HostConstRef::phantom(1024, 1024), in);
      if (synchronous) dev.synchronize();
      Event e = dev.create_event();
      dev.record_event(e, in);
      dev.wait_event(comp, e);
      dev.gemm(Op::NoTrans, Op::NoTrans, 1.0f, slab, slab, 1.0f, c,
               GemmPrecision::FP16_FP32, comp);
      if (synchronous) dev.synchronize();
    }
    dev.synchronize();
    return dev.makespan();
  };
  const sim_time_t sync = run(true);
  const sim_time_t async = run(false);
  EXPECT_LT(async, sync * 0.75);
}

TEST(Schedule, EngineIntervalsNeverOverlap) {
  // Random-ish workload, then verify the fundamental resource invariant.
  Device dev(tiny_spec(), ExecutionMode::Phantom);
  Stream s1 = dev.create_stream();
  Stream s2 = dev.create_stream();
  Stream s3 = dev.create_stream();
  DeviceMatrix m1 = dev.allocate(1500, 1500);
  DeviceMatrix m2 = dev.allocate(1500, 1500);
  HostMutRef out = HostMutRef::phantom(1500, 1500);
  for (int i = 0; i < 20; ++i) {
    Stream st = i % 3 == 0 ? s1 : (i % 3 == 1 ? s2 : s3);
    switch (i % 4) {
      case 0: dev.copy_h2d(m1, HostConstRef::phantom(1500, 1500), st); break;
      case 1:
        dev.gemm(Op::NoTrans, Op::NoTrans, 1.0f, m1, m2, 0.0f, m1,
                 GemmPrecision::FP16_FP32, st);
        break;
      case 2: dev.copy_d2h(out, m2, st); break;
      case 3: dev.copy_d2d(m2, m1, st); break;
    }
  }
  std::map<Resource, std::vector<std::pair<sim_time_t, sim_time_t>>> lanes;
  for (const auto& e : dev.trace().events()) {
    lanes[e.resource].push_back({e.start, e.end});
  }
  for (auto& [res, intervals] : lanes) {
    std::sort(intervals.begin(), intervals.end());
    for (size_t i = 1; i < intervals.size(); ++i) {
      EXPECT_GE(intervals[i].first, intervals[i - 1].second)
          << "engine " << to_string(res) << " double-booked";
    }
  }
}

TEST(Schedule, D2dRunsOnComputeEngine) {
  Device dev(tiny_spec(), ExecutionMode::Phantom);
  Stream st = dev.create_stream();
  DeviceMatrix a = dev.allocate(256, 256);
  DeviceMatrix b = dev.allocate(256, 256);
  dev.copy_d2d(b, a, st);
  const auto& e = dev.trace().events().front();
  EXPECT_EQ(e.resource, Resource::Compute);
  EXPECT_EQ(e.kind, OpKind::CopyD2D);
  EXPECT_EQ(e.bytes, 256 * 256 * 4);
}

TEST(Schedule, TransferBytesAreFp32EvenForFp16Storage) {
  Device dev(tiny_spec(), ExecutionMode::Phantom);
  Stream st = dev.create_stream();
  DeviceMatrix h = dev.allocate(128, 128, StoragePrecision::FP16);
  dev.copy_h2d(h, HostConstRef::phantom(128, 128), st);
  EXPECT_EQ(dev.trace().bytes_h2d(), 128 * 128 * 4);
  // But on-device staging copies move the stored width.
  DeviceMatrix h2 = dev.allocate(128, 128, StoragePrecision::FP16);
  dev.copy_d2d(h2, h, st);
  EXPECT_EQ(dev.trace().bytes_d2d(), 128 * 128 * 2);
}

TEST(Schedule, CustomComputeOpRunsBodyAndCharges) {
  Device dev(tiny_spec(), ExecutionMode::Real);
  Stream st = dev.create_stream();
  bool ran = false;
  dev.custom_compute(st, 0.25, 1000, OpKind::Panel, "test panel",
                     [&]() { ran = true; });
  EXPECT_TRUE(ran);
  const auto& e = dev.trace().events().front();
  EXPECT_EQ(e.kind, OpKind::Panel);
  EXPECT_DOUBLE_EQ(e.end - e.start, 0.25);
  EXPECT_EQ(e.flops, 1000);
  // Phantom mode skips the body.
  Device ph(tiny_spec(), ExecutionMode::Phantom);
  Stream st2 = ph.create_stream();
  bool ran2 = false;
  ph.custom_compute(st2, 0.1, 0, OpKind::Custom, "skip", [&]() { ran2 = true; });
  EXPECT_FALSE(ran2);
}

TEST(Schedule, EmptyRefOpsAreNoops) {
  Device dev(tiny_spec(), ExecutionMode::Phantom);
  Stream st = dev.create_stream();
  DeviceMatrix a = dev.allocate(8, 8);
  dev.copy_h2d(DeviceMatrixRef(a, 0, 0, 0, 8), HostConstRef::phantom(0, 8), st);
  EXPECT_TRUE(dev.trace().empty());
}

TEST(Device, TrsmKindsSolveCorrectly) {
  Device dev(tiny_spec(), ExecutionMode::Real);
  Stream st = dev.create_stream();
  const index_t n = 12;
  const index_t nrhs = 3;

  // Build an upper triangle with safe diagonal and a unit-lower triangle.
  la::Matrix upper = la::random_uniform(n, n, 31);
  for (index_t j = 0; j < n; ++j) {
    upper(j, j) = 2.0f + std::abs(upper(j, j));
    for (index_t i = j + 1; i < n; ++i) upper(i, j) = 0.0f;
  }
  la::Matrix x_true = la::random_uniform(n, nrhs, 32);

  // LeftUpper: U x = b.
  la::Matrix b(n, nrhs);
  blas::gemm(Op::NoTrans, Op::NoTrans, n, nrhs, n, 1.0f, upper.data(),
             upper.ld(), x_true.data(), x_true.ld(), 0.0f, b.data(), b.ld());
  auto tri = dev.allocate(n, n);
  dev.upload(tri, upper.view());
  auto rhs = dev.allocate(n, nrhs);
  dev.upload(rhs, b.view());
  dev.trsm(Device::TrsmKind::LeftUpper, tri, rhs, blas::GemmPrecision::FP32,
           st);
  la::Matrix got = dev.download(rhs);
  EXPECT_LT(la::relative_difference(got.view(), x_true.view()), 1e-4);

  // LeftUpperTrans: Uᵀ x = b2.
  la::Matrix b2(n, nrhs);
  blas::gemm(Op::Trans, Op::NoTrans, n, nrhs, n, 1.0f, upper.data(),
             upper.ld(), x_true.data(), x_true.ld(), 0.0f, b2.data(),
             b2.ld());
  dev.upload(rhs, b2.view());
  dev.trsm(Device::TrsmKind::LeftUpperTrans, tri, rhs,
           blas::GemmPrecision::FP32, st);
  got = dev.download(rhs);
  EXPECT_LT(la::relative_difference(got.view(), x_true.view()), 1e-4);

  // Shape validation and cost model.
  auto bad = dev.allocate(n + 1, nrhs);
  EXPECT_THROW(dev.trsm(Device::TrsmKind::LeftUpper, tri, bad,
                        blas::GemmPrecision::FP32, st),
               InvalidArgument);
  const auto& e = dev.trace().events().back();
  EXPECT_EQ(e.kind, OpKind::Trsm);
  EXPECT_EQ(e.flops, static_cast<flops_t>(n) * n * nrhs);
}

TEST(Schedule, UploadDownloadTestAids) {
  Device dev(tiny_spec(), ExecutionMode::Real);
  DeviceMatrix d = dev.allocate(5, 5, StoragePrecision::FP16);
  la::Matrix m = la::random_uniform(5, 5, 9);
  dev.upload(d, m.view());
  la::Matrix back = dev.download(d);
  for (index_t j = 0; j < 5; ++j) {
    for (index_t i = 0; i < 5; ++i) {
      EXPECT_EQ(back(i, j), float(half(m(i, j)))); // fp16 storage rounding
    }
  }
  // No simulated time was consumed.
  EXPECT_TRUE(dev.trace().empty());
}

} // namespace
} // namespace rocqr::sim
