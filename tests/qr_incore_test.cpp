// In-core Gram-Schmidt family: correctness, stability ordering, precision.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

#include "common/error.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "qr/incore.hpp"

namespace rocqr::qr {
namespace {

using blas::GemmPrecision;

using Factorizer = QrFactors (*)(la::ConstMatrixView);

QrFactors run_blocked(la::ConstMatrixView a) {
  return blocked_cgs(a, 8);
}
QrFactors run_recursive(la::ConstMatrixView a) {
  return recursive_cgs(a, 4);
}
QrFactors run_tsqr(la::ConstMatrixView a) {
  return tsqr(a, 16); // small leaves force a multi-level tree
}

struct AlgoCase {
  const char* name;
  Factorizer fn;
};

class IncoreQrTest
    : public ::testing::TestWithParam<
          std::tuple<AlgoCase, std::tuple<index_t, index_t>>> {};

TEST_P(IncoreQrTest, FactorsRandomMatrix) {
  const auto [algo, shape] = GetParam();
  const auto [m, n] = shape;
  la::Matrix a = la::random_normal(m, n, 1234);
  const QrFactors f = algo.fn(a.view());

  ASSERT_EQ(f.q.rows(), m);
  ASSERT_EQ(f.q.cols(), n);
  ASSERT_EQ(f.r.rows(), n);
  EXPECT_TRUE(la::is_upper_triangular(f.r.view())) << algo.name;
  EXPECT_LT(la::qr_residual(a.view(), f.q.view(), f.r.view()), 1e-5)
      << algo.name;
  // Gaussian tall matrices are well conditioned: Q should be orthonormal to
  // a few ulps times sqrt(mn).
  EXPECT_LT(la::orthogonality_error(f.q.view()), 1e-4) << algo.name;
  // CGS produces positive diagonal R (norms), making the factorization
  // unique — pin that convention.
  for (index_t j = 0; j < n; ++j) EXPECT_GT(f.r(j, j), 0.0f) << algo.name;
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, IncoreQrTest,
    ::testing::Combine(
        ::testing::Values(AlgoCase{"cgs", cgs}, AlgoCase{"mgs", mgs},
                          AlgoCase{"cgs2", cgs2},
                          AlgoCase{"blocked", run_blocked},
                          AlgoCase{"recursive", run_recursive},
                          AlgoCase{"cholesky_qr", cholesky_qr},
                          AlgoCase{"cholesky_qr2", cholesky_qr2},
                          AlgoCase{"householder", householder},
                          AlgoCase{"givens", givens},
                          AlgoCase{"tsqr", run_tsqr}),
        ::testing::Values(std::tuple<index_t, index_t>{1, 1},
                          std::tuple<index_t, index_t>{7, 5},
                          std::tuple<index_t, index_t>{32, 32},
                          std::tuple<index_t, index_t>{100, 40},
                          std::tuple<index_t, index_t>{65, 33},
                          std::tuple<index_t, index_t>{200, 64})),
    [](const auto& param_info) {
      const auto& shape = std::get<1>(param_info.param);
      return std::string(std::get<0>(param_info.param).name) + "_" +
             std::to_string(std::get<0>(shape)) + "x" +
             std::to_string(std::get<1>(shape));
    });

TEST(IncoreQr, AllVariantsAgreeOnWellConditionedInput) {
  // Same A, unique factorization (positive diagonal) => all variants agree
  // up to rounding.
  la::Matrix a = la::random_normal(60, 24, 7);
  const QrFactors ref = mgs(a.view());
  for (const auto& f :
       {cgs(a.view()), cgs2(a.view()), blocked_cgs(a.view(), 8),
        recursive_cgs(a.view(), 4), cholesky_qr2(a.view()),
        householder(a.view()), givens(a.view())}) {
    EXPECT_LT(la::relative_difference(f.q.view(), ref.q.view()), 1e-3);
    EXPECT_LT(la::relative_difference(f.r.view(), ref.r.view()), 1e-3);
  }
}

TEST(IncoreQr, TsqrMatchesHouseholderAcrossTreeShapes) {
  la::Matrix a = la::random_normal(200, 24, 23);
  const QrFactors ref = householder(a.view());
  // Leaf sizes that exercise: single leaf, even trees, odd (pass-through)
  // trees, and a ragged final leaf.
  for (const index_t rb : {512, 100, 64, 50, 30, 24}) {
    const QrFactors f = tsqr(a.view(), rb);
    EXPECT_LT(la::relative_difference(f.q.view(), ref.q.view()), 1e-4)
        << "rb=" << rb;
    EXPECT_LT(la::relative_difference(f.r.view(), ref.r.view()), 1e-4)
        << "rb=" << rb;
    EXPECT_LT(la::qr_residual(a.view(), f.q.view(), f.r.view()), 1e-5)
        << "rb=" << rb;
  }
}

TEST(IncoreQr, TsqrSingleLeafDegeneratesToHouseholder) {
  // m <= row_block: the tree is one leaf, so tsqr IS a (sign-normalized)
  // Householder QR — the exact degenerate case the OOC fleet driver hits
  // with one device.
  la::Matrix a = la::random_normal(48, 20, 41);
  const QrFactors f = tsqr(a.view(), 64);
  const QrFactors ref = householder(a.view());
  EXPECT_LT(la::relative_difference(f.q.view(), ref.q.view()), 1e-6);
  EXPECT_LT(la::relative_difference(f.r.view(), ref.r.view()), 1e-6);
}

TEST(IncoreQr, TsqrOddLeafCountExercisesPassThrough) {
  // 160 rows at row_block 32 -> 5 leaves: every reduction level carries a
  // lone trailing node whose R (and coefficient) passes through unmerged.
  la::Matrix a = la::random_normal(160, 16, 43);
  const QrFactors f = tsqr(a.view(), 32);
  const QrFactors ref = householder(a.view());
  EXPECT_LT(la::relative_difference(f.q.view(), ref.q.view()), 1e-4);
  EXPECT_LT(la::relative_difference(f.r.view(), ref.r.view()), 1e-4);
  EXPECT_LT(la::qr_residual(a.view(), f.q.view(), f.r.view()), 1e-5);
}

TEST(IncoreQr, TsqrAbsorbsShortTailIntoLastLeaf) {
  // m = 3*row_block + tail with 0 < tail < n: a tail leaf shorter than n
  // would have a rank-deficient stacked R, so it must be absorbed into the
  // previous leaf instead of forming its own.
  const index_t n = 24;
  const index_t rb = 40;
  for (const index_t tail : {1, 10, 23}) {
    la::Matrix a = la::random_normal(3 * rb + tail, n, 47);
    const QrFactors f = tsqr(a.view(), rb);
    const QrFactors ref = householder(a.view());
    EXPECT_LT(la::relative_difference(f.r.view(), ref.r.view()), 1e-4)
        << "tail=" << tail;
    EXPECT_LT(la::qr_residual(a.view(), f.q.view(), f.r.view()), 1e-5)
        << "tail=" << tail;
  }
}

TEST(IncoreQr, TsqrSignConventionMatchesHouseholder) {
  // Both pin diag(R) > 0, which is what lets the OOC fleet driver compare
  // its (CGS-leaf) R against the in-core reference without sign fixes.
  la::Matrix a = la::random_normal(128, 20, 53);
  const QrFactors f = tsqr(a.view(), 32);
  const QrFactors ref = householder(a.view());
  for (index_t j = 0; j < 20; ++j) {
    EXPECT_GT(f.r(j, j), 0.0f) << j;
    EXPECT_GT(ref.r(j, j), 0.0f) << j;
  }
  EXPECT_LT(la::relative_difference(f.r.view(), ref.r.view()), 1e-4);
}

TEST(IncoreQr, TsqrStaysStableWhereCgsFails) {
  // TSQR inherits Householder's unconditional stability — the property the
  // Gram-Schmidt family trades away for GEMM-friendliness.
  la::Matrix a = la::random_with_condition(240, 24, 1e4, 29);
  const double e_tsqr = la::orthogonality_error(tsqr(a.view(), 48).q.view());
  const double e_cgs = la::orthogonality_error(cgs(a.view()).q.view());
  EXPECT_LT(e_tsqr, 1e-4);
  EXPECT_GT(e_cgs, 10 * e_tsqr);
}

TEST(IncoreQr, HouseholderAndGivensAreUnconditionallyStable) {
  // The §3.1 comparison across the three QR families: on a cond=1e4 matrix
  // the orthogonal-transformation methods keep Q orthonormal to fp32
  // roundoff, CGS visibly does not.
  la::Matrix a = la::random_with_condition(160, 32, 1e4, 19);
  const double e_house = la::orthogonality_error(householder(a.view()).q.view());
  const double e_givens = la::orthogonality_error(givens(a.view()).q.view());
  const double e_cgs = la::orthogonality_error(cgs(a.view()).q.view());
  EXPECT_LT(e_house, 1e-4);
  EXPECT_LT(e_givens, 1e-4);
  EXPECT_GT(e_cgs, 10 * e_house);
  // Residuals are all fine — the difference is purely orthogonality.
  const QrFactors h = householder(a.view());
  EXPECT_LT(la::qr_residual(a.view(), h.q.view(), h.r.view()), 1e-5);
}

TEST(IncoreQr, StabilityOrderingOnIllConditionedMatrix) {
  // cond ~ 1e3: CGS loses orthogonality like cond^2 * eps, MGS like
  // cond * eps, CGS2 stays near eps. The ordering is the textbook result
  // the paper's §3.1.1 refers to.
  la::Matrix a = la::random_with_condition(120, 30, 1e3, 11);
  const double e_cgs = la::orthogonality_error(cgs(a.view()).q.view());
  const double e_mgs = la::orthogonality_error(mgs(a.view()).q.view());
  const double e_cgs2 = la::orthogonality_error(cgs2(a.view()).q.view());
  EXPECT_LT(e_cgs2, 1e-4);
  EXPECT_LE(e_cgs2, e_mgs * 2.0);
  EXPECT_LT(e_mgs, e_cgs);
  // All still reconstruct A.
  for (const auto& f : {cgs(a.view()), mgs(a.view()), cgs2(a.view())}) {
    EXPECT_LT(la::qr_residual(a.view(), f.q.view(), f.r.view()), 1e-4);
  }
}

TEST(IncoreQr, RecursiveMatchesBaseCaseExactlyAtSmallSizes) {
  la::Matrix a = la::random_normal(20, 3, 3);
  const QrFactors rec = recursive_cgs(a.view(), 8); // n < base: pure CGS
  const QrFactors direct = cgs(a.view());
  EXPECT_EQ(la::relative_difference(rec.q.view(), direct.q.view()), 0.0);
  EXPECT_EQ(la::relative_difference(rec.r.view(), direct.r.view()), 0.0);
}

TEST(IncoreQr, RecursiveInplaceWritesCallerStorage) {
  la::Matrix a = la::random_normal(40, 16, 5);
  la::Matrix aq = la::materialize(a.view());
  la::Matrix r(16, 16);
  recursive_cgs_inplace(aq.view(), r.view(), 4);
  EXPECT_LT(la::qr_residual(a.view(), aq.view(), r.view()), 1e-5);
  EXPECT_TRUE(la::is_upper_triangular(r.view()));
}

TEST(IncoreQr, Fp16PrecisionDegradesGracefully) {
  la::Matrix a = la::random_normal(128, 32, 9);
  const QrFactors f32 = recursive_cgs(a.view(), 8, GemmPrecision::FP32);
  const QrFactors f16 = recursive_cgs(a.view(), 8, GemmPrecision::FP16_FP32);
  const double res32 = la::qr_residual(a.view(), f32.q.view(), f32.r.view());
  const double res16 = la::qr_residual(a.view(), f16.q.view(), f16.r.view());
  EXPECT_LT(res32, 1e-5);
  // fp16-input GEMM updates: residual grows but stays at half-precision
  // levels (the HPDC'20 result that recursion keeps CGS usable on TC).
  EXPECT_LT(res16, 5e-3);
  EXPECT_GT(res16, res32);
}

TEST(IncoreQr, BlockedHandlesBlockBoundaryCases) {
  la::Matrix a = la::random_normal(50, 20, 13);
  for (index_t block : {1, 3, 7, 20, 64}) {
    const QrFactors f = blocked_cgs(a.view(), block);
    EXPECT_LT(la::qr_residual(a.view(), f.q.view(), f.r.view()), 1e-5)
        << "block=" << block;
  }
}

TEST(IncoreQr, RejectsDependentColumnsAndBadShapes) {
  // An exactly zero column has no direction at all: hard failure.
  la::Matrix with_zero = la::random_normal(8, 3, 21);
  for (index_t i = 0; i < 8; ++i) with_zero(i, 1) = 0.0f;
  EXPECT_THROW(cgs(with_zero.view()), InvalidArgument);
  EXPECT_THROW(mgs(with_zero.view()), InvalidArgument);
  // Exactly parallel columns: after projection only rounding noise remains.
  // Like reference Gram-Schmidt codes we do not guess a tolerance — the
  // result is a (documented) garbage direction, visible as a huge R-entry
  // ratio, not an exception.
  la::Matrix dependent(8, 2);
  for (index_t i = 0; i < 8; ++i) {
    dependent(i, 0) = 1.0f + 0.1f * static_cast<float>(i);
    dependent(i, 1) = 2.0f * dependent(i, 0);
  }
  try {
    const QrFactors f = cgs(dependent.view());
    EXPECT_GT(f.r(0, 0) / std::max(f.r(1, 1), 1e-30f), 1e5f);
  } catch (const InvalidArgument&) {
    // Projection happened to cancel exactly: also a valid outcome.
  }
  la::Matrix wide(3, 5);
  EXPECT_THROW(cgs(wide.view()), InvalidArgument);
  EXPECT_THROW(recursive_cgs(wide.view()), InvalidArgument);
  la::Matrix ok = la::random_normal(8, 4, 1);
  EXPECT_THROW(blocked_cgs(ok.view(), 0), InvalidArgument);
  EXPECT_THROW(recursive_cgs(ok.view(), 0), InvalidArgument);
}

TEST(IncoreQr, CholeskyQr2RestoresOrthogonality) {
  la::Matrix a = la::random_with_condition(200, 24, 100.0, 17);
  const double e1 = la::orthogonality_error(cholesky_qr(a.view()).q.view());
  const double e2 = la::orthogonality_error(cholesky_qr2(a.view()).q.view());
  EXPECT_LT(e2, e1);
  EXPECT_LT(e2, 1e-4);
}

TEST(IncoreQr, HilbertMatrixStressesCgs) {
  // Hilbert columns are nearly dependent; CGS2 must still produce an
  // orthonormal basis while plain CGS visibly degrades.
  la::Matrix h = la::hilbert(64, 8);
  const QrFactors f2 = cgs2(h.view());
  EXPECT_LT(la::orthogonality_error(f2.q.view()), 1e-3);
  EXPECT_LT(la::qr_residual(h.view(), f2.q.view(), f2.r.view()), 1e-4);
  const QrFactors f1 = cgs(h.view());
  EXPECT_GT(la::orthogonality_error(f1.q.view()),
            la::orthogonality_error(f2.q.view()));
}

} // namespace
} // namespace rocqr::qr
