// The central simulator contract: ExecutionMode::Phantom computes exactly
// the schedule that ExecutionMode::Real does — event for event, timestamp
// for timestamp. This is what justifies running the paper-scale experiments
// with phantom buffers.
#include <gtest/gtest.h>

#include "la/generate.hpp"
#include "lu/ooc_cholesky.hpp"
#include "lu/ooc_lu.hpp"
#include "ooc/gemm_engines.hpp"
#include "ooc/operand.hpp"
#include "qr/factorize.hpp"
#include "sim/device.hpp"

namespace rocqr {
namespace {

using sim::Device;
using sim::ExecutionMode;

sim::DeviceSpec spec() {
  sim::DeviceSpec s = sim::DeviceSpec::v100_32gb();
  s.memory_capacity = 256LL << 20;
  return s;
}

void expect_identical_traces(const sim::Trace& real, const sim::Trace& phantom) {
  ASSERT_EQ(real.size(), phantom.size());
  const auto& re = real.events();
  const auto& pe = phantom.events();
  for (size_t i = 0; i < re.size(); ++i) {
    EXPECT_EQ(re[i].name, pe[i].name) << i;
    EXPECT_EQ(re[i].kind, pe[i].kind) << i;
    EXPECT_EQ(re[i].resource, pe[i].resource) << i;
    EXPECT_EQ(re[i].stream, pe[i].stream) << i;
    EXPECT_DOUBLE_EQ(re[i].start, pe[i].start) << i << " " << re[i].name;
    EXPECT_DOUBLE_EQ(re[i].end, pe[i].end) << i << " " << re[i].name;
    EXPECT_EQ(re[i].bytes, pe[i].bytes) << i;
    EXPECT_EQ(re[i].flops, pe[i].flops) << i;
  }
}

TEST(PhantomRealEquivalence, OocGemmEngines) {
  const index_t m = 96;
  const index_t k = 160;
  const index_t n = 80;
  la::Matrix a = la::random_uniform(k, m, 1);
  la::Matrix b = la::random_uniform(k, n, 2);
  la::Matrix c(m, n);

  Device real(spec(), ExecutionMode::Real);
  Device phantom(spec(), ExecutionMode::Phantom);
  ooc::OocGemmOptions opts;
  opts.blocksize = 32;
  opts.ramp_up = true;
  opts.ramp_start = 8;
  ooc::inner_product_recursive(real, ooc::Operand::on_host(a.view()),
                               ooc::Operand::on_host(b.view()), c.view(),
                               opts);
  ooc::inner_product_recursive(
      phantom, ooc::Operand::on_host(sim::HostConstRef::phantom(k, m)),
      ooc::Operand::on_host(sim::HostConstRef::phantom(k, n)),
      sim::HostMutRef::phantom(m, n), opts);
  expect_identical_traces(real.trace(), phantom.trace());
}

TEST(PhantomRealEquivalence, RecursiveQr) {
  const index_t m = 128;
  const index_t n = 96;
  la::Matrix a = la::random_normal(m, n, 3);
  la::Matrix r(n, n);
  qr::QrOptions opts;
  opts.blocksize = 32;
  opts.panel_base = 8;
  opts.ramp_up = true;
  opts.ramp_start = 8;

  Device real(spec(), ExecutionMode::Real);
  qr::factorize(qr::QrProblem{
      {&real}, a.view(), r.view(), qr::Algorithm::Recursive, opts});

  Device phantom(spec(), ExecutionMode::Phantom);
  auto pa = sim::HostMutRef::phantom(m, n);
  auto pr = sim::HostMutRef::phantom(n, n);
  qr::factorize(
      qr::QrProblem{{&phantom}, pa, pr, qr::Algorithm::Recursive, opts});
  expect_identical_traces(real.trace(), phantom.trace());
}

TEST(PhantomRealEquivalence, BlockingQr) {
  const index_t m = 120;
  const index_t n = 72;
  la::Matrix a = la::random_normal(m, n, 4);
  la::Matrix r(n, n);
  qr::QrOptions opts;
  opts.blocksize = 24;
  opts.panel_base = 8;

  Device real(spec(), ExecutionMode::Real);
  qr::factorize(qr::QrProblem{
      {&real}, a.view(), r.view(), qr::Algorithm::Blocking, opts});

  Device phantom(spec(), ExecutionMode::Phantom);
  auto pa = sim::HostMutRef::phantom(m, n);
  auto pr = sim::HostMutRef::phantom(n, n);
  qr::factorize(
      qr::QrProblem{{&phantom}, pa, pr, qr::Algorithm::Blocking, opts});
  expect_identical_traces(real.trace(), phantom.trace());
}

TEST(PhantomRealEquivalence, LuAndCholesky) {
  const index_t n = 96;
  lu::FactorOptions opts;
  opts.blocksize = 32;
  opts.panel_base = 8;

  {
    la::Matrix a = la::random_diagonally_dominant(n, 5);
    Device real(spec(), ExecutionMode::Real);
    lu::recursive_ooc_lu(real, a.view(), opts);
    Device phantom(spec(), ExecutionMode::Phantom);
    auto pa = sim::HostMutRef::phantom(n, n);
    lu::recursive_ooc_lu(phantom, pa, opts);
    expect_identical_traces(real.trace(), phantom.trace());
  }
  {
    la::Matrix a = la::random_spd(n, 6);
    Device real(spec(), ExecutionMode::Real);
    lu::blocking_ooc_cholesky(real, a.view(), opts);
    Device phantom(spec(), ExecutionMode::Phantom);
    auto pa = sim::HostMutRef::phantom(n, n);
    lu::blocking_ooc_cholesky(phantom, pa, opts);
    expect_identical_traces(real.trace(), phantom.trace());
  }
}

} // namespace
} // namespace rocqr
