// Mixed-algorithm colocation through qr::detail::run_batch: Tiled,
// Blocking and LeftLooking jobs fused into one per-device task graph.
// Pins the batch-vs-solo bitwise numerics contract for every algorithm,
// the colocated-makespan win over serial execution, per-job stats
// attribution, and checkpoint-boundary preemption with bit-identical
// resume through qr::resume.
#include <gtest/gtest.h>

#include "leak_check.hpp"

#include <stdexcept>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "qr/checkpoint.hpp"
#include "qr/factorize.hpp"
#include "qr/tiled_qr.hpp"
#include "sim/device.hpp"

namespace rocqr {
namespace {

using sim::Device;
using sim::ExecutionMode;

sim::DeviceSpec test_spec(bytes_t capacity = 512LL << 20) {
  sim::DeviceSpec s = sim::DeviceSpec::v100_32gb();
  s.memory_capacity = capacity;
  return s;
}

qr::QrOptions base_options(index_t blocksize) {
  qr::QrOptions opts;
  opts.blocksize = blocksize;
  opts.panel_base = 8;
  opts.precision = blas::GemmPrecision::FP32;
  return opts;
}

bool bitwise_equal(const la::Matrix& x, const la::Matrix& y) {
  for (index_t j = 0; j < x.cols(); ++j) {
    for (index_t i = 0; i < x.rows(); ++i) {
      if (x(i, j) != y(i, j)) return false;
    }
  }
  return true;
}

struct SoloRun {
  la::Matrix q;
  la::Matrix r;
};

/// Uninterrupted single-job reference through the public driver API.
SoloRun run_solo(const la::Matrix& a, qr::Algorithm alg,
                 const qr::QrOptions& opts) {
  Device dev(test_spec(), ExecutionMode::Real);
  SoloRun run{la::materialize(a.view()), la::Matrix(a.cols(), a.cols())};
  qr::QrProblem p{{&dev}, run.q.view(), run.r.view(), alg, opts};
  qr::factorize(p);
  return run;
}

class MixedBatchSoloEquivalence
    : public ::testing::TestWithParam<std::pair<const char*, qr::Algorithm>> {
};

TEST_P(MixedBatchSoloEquivalence, SingleJobBatchMatchesSoloBitwise) {
  // run_batch's node program for each algorithm issues the same GEMMs with
  // the same k-extents as the solo driver, so a one-job batch must
  // reproduce the solo factorization bit for bit — not approximately.
  const auto [name, alg] = GetParam();
  const index_t m = 96, n = 48;
  la::Matrix a = la::random_normal(m, n, 301);
  const qr::QrOptions opts = base_options(16);
  const SoloRun ref = run_solo(a, alg, opts);

  la::Matrix q = la::materialize(a.view());
  la::Matrix r(n, n);
  Device dev(test_spec(), ExecutionMode::Real);
  qr::detail::run_batch(dev,
                        {qr::detail::BatchJob{name, q.view(), r.view(), opts,
                                              "j0."}});
  EXPECT_TRUE(bitwise_equal(q, ref.q)) << name;
  EXPECT_TRUE(bitwise_equal(r, ref.r)) << name;
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, MixedBatchSoloEquivalence,
    ::testing::Values(std::pair<const char*, qr::Algorithm>{
                          "tiled", qr::Algorithm::Tiled},
                      std::pair<const char*, qr::Algorithm>{
                          "blocking", qr::Algorithm::Blocking},
                      std::pair<const char*, qr::Algorithm>{
                          "left", qr::Algorithm::LeftLooking}));

TEST(MixedBatch, ColocationDoesNotPerturbAnyJobsNumerics) {
  // The strong form of the contract: colocated with *other* algorithms'
  // interleaved nodes, each job still matches its solo run bitwise —
  // interleaving reorders independent operations, never an accumulation.
  const index_t m = 96;
  la::Matrix a0 = la::random_normal(m, 48, 311);
  la::Matrix a1 = la::random_normal(m, 64, 312);
  la::Matrix a2 = la::random_normal(m, 32, 313);
  const qr::QrOptions opts = base_options(16);
  const SoloRun ref0 = run_solo(a0, qr::Algorithm::Tiled, opts);
  const SoloRun ref1 = run_solo(a1, qr::Algorithm::Blocking, opts);
  const SoloRun ref2 = run_solo(a2, qr::Algorithm::LeftLooking, opts);

  la::Matrix q0 = la::materialize(a0.view()), r0(48, 48);
  la::Matrix q1 = la::materialize(a1.view()), r1(64, 64);
  la::Matrix q2 = la::materialize(a2.view()), r2(32, 32);
  Device dev(test_spec(), ExecutionMode::Real);
  const std::vector<qr::QrStats> stats = qr::detail::run_batch(
      dev,
      {qr::detail::BatchJob{"tiled", q0.view(), r0.view(), opts, "j0."},
       qr::detail::BatchJob{"blocking", q1.view(), r1.view(), opts, "j1."},
       qr::detail::BatchJob{"left", q2.view(), r2.view(), opts, "j2."}});
  EXPECT_EQ(dev.live_allocations(), 0);

  EXPECT_TRUE(bitwise_equal(q0, ref0.q));
  EXPECT_TRUE(bitwise_equal(r0, ref0.r));
  EXPECT_TRUE(bitwise_equal(q1, ref1.q));
  EXPECT_TRUE(bitwise_equal(r1, ref1.r));
  EXPECT_TRUE(bitwise_equal(q2, ref2.q));
  EXPECT_TRUE(bitwise_equal(r2, ref2.r));

  // Per-job attribution: the label prefix splits the shared trace.
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_EQ(stats[0].panels, 3); // 48 cols at b=16
  EXPECT_EQ(stats[1].panels, 4); // 64 cols at b=16
  EXPECT_EQ(stats[2].panels, 2); // 32 cols at b=16
  for (const qr::QrStats& s : stats) {
    EXPECT_GT(s.bytes_h2d, 0);
    EXPECT_GT(s.total_seconds, 0.0);
  }
}

TEST(MixedBatch, ColocatedTiledPlusBlockingBeatsSerial) {
  // The point of mixed colocation: one job's transfers overlap the other's
  // compute, so the fused graph's makespan beats running the two jobs back
  // to back on the same device.
  qr::QrOptions opts;
  opts.blocksize = 1 << 12;

  const auto solo = [&](const char* algorithm) {
    Device dev(sim::DeviceSpec::v100_32gb(), ExecutionMode::Phantom);
    auto a = sim::HostMutRef::phantom(1 << 15, 1 << 14);
    auto r = sim::HostMutRef::phantom(1 << 14, 1 << 14);
    qr::detail::run_batch(
        dev, {qr::detail::BatchJob{algorithm, a, r, opts, ""}});
    dev.synchronize();
    return dev.makespan();
  };
  const double serial = solo("tiled") + solo("blocking");

  Device dev(sim::DeviceSpec::v100_32gb(), ExecutionMode::Phantom);
  auto a0 = sim::HostMutRef::phantom(1 << 15, 1 << 14);
  auto r0 = sim::HostMutRef::phantom(1 << 14, 1 << 14);
  auto a1 = sim::HostMutRef::phantom(1 << 15, 1 << 14);
  auto r1 = sim::HostMutRef::phantom(1 << 14, 1 << 14);
  qr::detail::run_batch(
      dev, {qr::detail::BatchJob{"tiled", a0, r0, opts, "j0."},
            qr::detail::BatchJob{"blocking", a1, r1, opts, "j1."}});
  dev.synchronize();
  const double colocated = dev.makespan();

  EXPECT_LT(colocated, serial);
}

/// Models serve::Scheduler's preemption: the sink that raises out of the
/// driver at a checkpoint boundary, after the snapshot has been taken.
struct PreemptAfter : qr::CheckpointSink {
  explicit PreemptAfter(int limit) : limit_(limit) {}
  void write(const qr::Checkpoint& cp) override {
    last = cp;
    if (++count >= limit_) throw std::runtime_error("preempted");
  }
  qr::Checkpoint last;
  int count = 0;

 private:
  int limit_;
};

TEST(MixedBatch, PreemptAtCheckpointBoundaryResumesBitIdentical) {
  // A blocking job colocated with a tiled job is preempted at its first
  // checkpoint boundary; resuming the snapshot solo through qr::resume
  // must land on the uninterrupted solo result bit for bit — the batch
  // prefix and the solo suffix compose exactly.
  const index_t m = 96, n = 64;
  la::Matrix a0 = la::random_normal(m, n, 321);     // blocking, preempted
  la::Matrix a1 = la::random_normal(m, 48, 322);    // tiled, along for the ride
  const qr::QrOptions opts = base_options(16);
  const SoloRun ref = run_solo(a0, qr::Algorithm::Blocking, opts);

  PreemptAfter sink(2); // let two panels land, preempt at the second
  qr::QrOptions cp_opts = opts;
  cp_opts.checkpoint_sink = &sink;
  la::Matrix q0 = la::materialize(a0.view()), r0(n, n);
  la::Matrix q1 = la::materialize(a1.view()), r1(48, 48);
  {
    Device dev(test_spec(), ExecutionMode::Real);
    EXPECT_THROW(
        qr::detail::run_batch(
            dev,
            {qr::detail::BatchJob{"blocking", q0.view(), r0.view(), cp_opts,
                                  "j0."},
             qr::detail::BatchJob{"tiled", q1.view(), r1.view(), opts,
                                  "j1."}}),
        std::runtime_error);
  }
  ASSERT_EQ(sink.count, 2);
  EXPECT_EQ(sink.last.driver, "blocking");
  EXPECT_EQ(sink.last.units_done, 2);

  la::Matrix q_res(m, n), r_res(n, n);
  Device dev(test_spec(), ExecutionMode::Real);
  qr::QrProblem p{{&dev}, q_res.view(), r_res.view(), qr::Algorithm::Blocking,
                  opts};
  qr::resume(p, sink.last);
  EXPECT_TRUE(bitwise_equal(q_res, ref.q));
  EXPECT_TRUE(bitwise_equal(r_res, ref.r));
}

TEST(MixedBatch, ResumeUnitsSkipsTheCompletedPrefixInBatch) {
  // The other direction of the serve flow: a checkpointed solo job is
  // re-dispatched *into* a colocated batch with resume_units set; the
  // batch replays only the remaining panels and finishes bit-identically.
  const index_t m = 96, n = 64;
  la::Matrix a0 = la::random_normal(m, n, 331);
  la::Matrix a1 = la::random_normal(m, 32, 332);
  const qr::QrOptions opts = base_options(16);
  const SoloRun ref = run_solo(a0, qr::Algorithm::Blocking, opts);

  struct KeepAll : qr::CheckpointSink {
    void write(const qr::Checkpoint& cp) override { all.push_back(cp); }
    std::vector<qr::Checkpoint> all;
  } sink;
  qr::QrOptions cp_opts = opts;
  cp_opts.checkpoint_sink = &sink;
  cp_opts.checkpoint_every = 2;
  {
    la::Matrix q = la::materialize(a0.view()), r(n, n);
    Device dev(test_spec(), ExecutionMode::Real);
    qr::QrProblem p{{&dev}, q.view(), r.view(), qr::Algorithm::Blocking,
                    cp_opts};
    qr::factorize(p);
  }
  ASSERT_GE(sink.all.size(), 2u); // units 2 and 4 at checkpoint_every=2
  const qr::Checkpoint& cp = sink.all.front(); // a strict prefix: 2 of 4
  ASSERT_EQ(cp.units_done, 2);

  // Restore the host prefix exactly as serve::restore_host does, then
  // hand the job to a mixed batch with resume_units.
  la::Matrix q0(m, n), r0(n, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      q0(i, j) = cp.a[static_cast<size_t>(i) + static_cast<size_t>(j) * m];
    }
  }
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      r0(i, j) = cp.r[static_cast<size_t>(i) + static_cast<size_t>(j) * n];
    }
  }
  qr::QrOptions res_opts = opts;
  res_opts.resume_units = cp.units_done;
  la::Matrix q1 = la::materialize(a1.view()), r1(32, 32);
  Device dev(test_spec(), ExecutionMode::Real);
  qr::detail::run_batch(
      dev, {qr::detail::BatchJob{"blocking", q0.view(), r0.view(), res_opts,
                                 "j0."},
            qr::detail::BatchJob{"tiled", q1.view(), r1.view(), opts,
                                 "j1."}});
  EXPECT_TRUE(bitwise_equal(q0, ref.q));
  EXPECT_TRUE(bitwise_equal(r0, ref.r));
  EXPECT_LT(la::qr_residual(a1.view(), q1.view(), r1.view()), 1e-4);
}

TEST(MixedBatch, RejectsUnknownAlgorithmAndMixedPrecision) {
  Device dev(test_spec(), ExecutionMode::Phantom);
  auto a = sim::HostMutRef::phantom(64, 32);
  auto r = sim::HostMutRef::phantom(32, 32);
  const qr::QrOptions opts = base_options(16);

  // No node program lowers the fleet/recursive drivers (yet).
  EXPECT_THROW(qr::detail::run_batch(
                   dev, {qr::detail::BatchJob{"recursive", a, r, opts, ""}}),
               InvalidArgument);

  // Colocated jobs share one graph and therefore one gemm precision.
  qr::QrOptions fp16 = opts;
  fp16.precision = blas::GemmPrecision::FP16_FP32;
  EXPECT_THROW(
      qr::detail::run_batch(
          dev, {qr::detail::BatchJob{"tiled", a, r, opts, "j0."},
                qr::detail::BatchJob{"tiled", a, r, fp16, "j1."}}),
      InvalidArgument);
}

} // namespace
} // namespace rocqr
