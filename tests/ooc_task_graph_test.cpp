// TaskGraph executor: deterministic list scheduling onto the three-stream
// device, stage-typed node contexts, WAR/region edges, incremental runs,
// and cycle detection.
#include <gtest/gtest.h>

#include "leak_check.hpp"

#include <string>
#include <vector>

#include "common/error.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "ooc/task_graph.hpp"
#include "sim/device.hpp"
#include "sim/scoped_matrix.hpp"

namespace rocqr::ooc {
namespace {

using sim::Device;
using sim::DeviceMatrixRef;
using sim::ExecutionMode;
using sim::ScopedMatrix;
using sim::StoragePrecision;

Device phantom_device() {
  return Device(sim::DeviceSpec::v100_32gb(), ExecutionMode::Phantom);
}

OocGemmOptions test_options() {
  OocGemmOptions opts;
  opts.blocksize = 32;
  opts.precision = blas::GemmPrecision::FP32; // exact match vs host GEMM
  return opts;
}

/// Index of the first trace event whose name matches, or npos.
size_t find_event(const Device& dev, const std::string& name) {
  const auto& events = dev.trace().events();
  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i].name == name) return i;
  }
  return static_cast<size_t>(-1);
}

TEST(TaskGraph, RunsAMoveInComputeMoveOutChainInRealMode) {
  // y = a * x through the graph: the numeric result proves the node bodies
  // ran in dependency order.
  const index_t n = 16;
  la::Matrix a = la::random_normal(n, n, 11);
  la::Matrix x = la::random_normal(n, n, 12);
  la::Matrix y(n, n);

  Device dev(sim::DeviceSpec::v100_32gb(), ExecutionMode::Real);
  {
    TaskGraph g(dev, test_options(), "test chain");
    ScopedMatrix da(dev, n, n, StoragePrecision::FP32, "tg.a");
    ScopedMatrix dx(dev, n, n, StoragePrecision::FP32, "tg.x");
    ScopedMatrix dy(dev, n, n, StoragePrecision::FP32, "tg.y");

    const TaskId in_a = g.add(TaskStage::MoveIn, "in a", [&](TaskCtx& c) {
      c.h2d(da.get(), sim::HostConstRef(a.view()), "h2d a");
    });
    const TaskId in_x = g.add(TaskStage::MoveIn, "in x", [&](TaskCtx& c) {
      c.h2d(dx.get(), sim::HostConstRef(x.view()), "h2d x");
    });
    const TaskId mul = g.add(
        TaskStage::Compute, "mul",
        [&](TaskCtx& c) {
          c.gemm(blas::Op::NoTrans, blas::Op::NoTrans, 1.0f, da.get(),
                 dx.get(), 0.0f, dy.get(), "gemm ax");
        },
        {in_a, in_x});
    g.add(
        TaskStage::MoveOut, "out y",
        [&](TaskCtx& c) {
          c.d2h(sim::HostMutRef(y.view()), dy.get(), "d2h y");
        },
        {mul});
    g.run();
    dev.synchronize();
    EXPECT_NE(g.plan_description().find("4 node(s)"), std::string::npos);
  }
  dev.synchronize();

  la::Matrix ref(n, n);
  blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, n, n, n, 1.0f, a.data(),
             a.ld(), x.data(), x.ld(), 0.0f, ref.data(), ref.ld());
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) EXPECT_EQ(y(i, j), ref(i, j));
  }
  EXPECT_EQ(dev.live_allocations(), 0);
}

TEST(TaskGraph, ReadyNodesEnqueueInPriorityOrder) {
  Device dev = phantom_device();
  TaskGraph g(dev, test_options());
  ScopedMatrix buf(dev, 8, 8, StoragePrecision::FP32, "tg.buf");
  // Three independent computes added in reverse priority order.
  for (int p : {3, 1, 2}) {
    g.add(
        TaskStage::Compute, "c" + std::to_string(p),
        [&, p](TaskCtx& c) {
          c.gemm(blas::Op::NoTrans, blas::Op::NoTrans, 1.0f, buf.get(),
                 buf.get(), 0.0f, buf.get(), "gemm p" + std::to_string(p));
        },
        {}, p);
  }
  g.run();
  dev.synchronize();
  EXPECT_LT(find_event(dev, "gemm p1"), find_event(dev, "gemm p2"));
  EXPECT_LT(find_event(dev, "gemm p2"), find_event(dev, "gemm p3"));
}

TEST(TaskGraph, CrossStreamDependencyOrdersSimulatedTime) {
  // The compute must start at or after the move-in's end (event edge), and
  // the move-out after the compute — even though each runs on its own
  // engine.
  Device dev = phantom_device();
  TaskGraph g(dev, test_options());
  ScopedMatrix buf(dev, 64, 64, StoragePrecision::FP32, "tg.buf");
  const TaskId in = g.add(TaskStage::MoveIn, "in", [&](TaskCtx& c) {
    c.h2d(buf.get(), sim::HostConstRef::phantom(64, 64), "h2d b");
  });
  const TaskId mul = g.add(
      TaskStage::Compute, "mul",
      [&](TaskCtx& c) {
        c.gemm(blas::Op::NoTrans, blas::Op::NoTrans, 1.0f, buf.get(),
               buf.get(), 0.0f, buf.get(), "gemm b");
      },
      {in});
  g.add(
      TaskStage::MoveOut, "out",
      [&](TaskCtx& c) {
        c.d2h(sim::HostMutRef::phantom(64, 64), buf.get(), "d2h b");
      },
      {mul});
  g.run();
  dev.synchronize();

  const auto& ev = dev.trace().events();
  const auto& h2d = ev[find_event(dev, "h2d b")];
  const auto& gemm = ev[find_event(dev, "gemm b")];
  const auto& d2h = ev[find_event(dev, "d2h b")];
  EXPECT_GE(gemm.start, h2d.end);
  EXPECT_GE(d2h.start, gemm.end);
}

TEST(TaskGraph, IncrementalRunsEnqueueOnlyNewNodes) {
  Device dev = phantom_device();
  TaskGraph g(dev, test_options());
  ScopedMatrix buf(dev, 8, 8, StoragePrecision::FP32, "tg.buf");
  const TaskId first = g.add(TaskStage::MoveIn, "in", [&](TaskCtx& c) {
    c.h2d(buf.get(), sim::HostConstRef::phantom(8, 8), "h2d 1");
  });
  g.run();
  const size_t after_first = dev.trace().size();
  EXPECT_GT(after_first, 0u);
  EXPECT_TRUE(g.done(first).valid());

  // The second segment depends on the already-enqueued first: allowed, and
  // only the new node runs.
  g.add(
      TaskStage::Compute, "c",
      [&](TaskCtx& c) {
        c.gemm(blas::Op::NoTrans, blas::Op::NoTrans, 1.0f, buf.get(),
               buf.get(), 0.0f, buf.get(), "gemm 2");
      },
      {first});
  g.run();
  dev.synchronize();
  EXPECT_NE(find_event(dev, "gemm 2"), static_cast<size_t>(-1));
}

TEST(TaskGraph, DetectsDependencyCycles) {
  Device dev = phantom_device();
  TaskGraph g(dev, test_options());
  const TaskId a = g.add(TaskStage::Compute, "a", nullptr);
  const TaskId b = g.add(TaskStage::Compute, "b", nullptr, {a});
  g.add_dep(a, b); // a -> b -> a
  EXPECT_THROW(g.run(), InvalidArgument);
}

TEST(TaskGraph, RejectsStageMisuse) {
  Device dev = phantom_device();
  TaskGraph g(dev, test_options());
  ScopedMatrix buf(dev, 8, 8, StoragePrecision::FP32, "tg.buf");
  g.add(TaskStage::MoveIn, "bad", [&](TaskCtx& c) {
    c.d2h(sim::HostMutRef::phantom(8, 8), buf.get(), "d2h from move-in");
  });
  EXPECT_THROW(g.run(), InvalidArgument);
}

TEST(TaskGraph, RejectsUnknownAndForwardDeps) {
  Device dev = phantom_device();
  TaskGraph g(dev, test_options());
  EXPECT_THROW(g.add(TaskStage::Compute, "x", nullptr, {5}), InvalidArgument);
  const TaskId a = g.add(TaskStage::Compute, "a", nullptr);
  EXPECT_THROW(g.add_dep(a, 99), InvalidArgument);
  g.run();
  // Adding a dep to an already-enqueued node cannot change its schedule.
  EXPECT_THROW(g.add_dep(a, a), InvalidArgument);
}

TEST(TaskGraph, InputRegionGatesMoveInOnIntersectingProducers) {
  // A producer event covering rows [0, 64) of the streamed input: a move-in
  // reading rows [32, 48) must wait for it; one reading rows [64, 96) must
  // not.
  Device dev = phantom_device();
  ScopedMatrix staging(dev, 8, 8, StoragePrecision::FP32, "tg.stage");
  const sim::Stream producer_stream = dev.create_stream();
  dev.custom_compute(producer_stream, 1.0, 0, sim::OpKind::Custom,
                     "producer");
  sim::Event produced = dev.create_event();
  dev.record_event(produced, producer_stream);

  OocGemmOptions opts = test_options();
  opts.streamed_input_regions.push_back(
      RegionEvent{Slab{0, 64}, Slab{0, 64}, produced});
  TaskGraph g(dev, opts);
  ScopedMatrix buf(dev, 8, 8, StoragePrecision::FP32, "tg.buf");
  const TaskId hit = g.add(TaskStage::MoveIn, "hit", [&](TaskCtx& c) {
    c.h2d(buf.get(), sim::HostConstRef::phantom(8, 8), "h2d hit");
  });
  g.set_input_region(hit, Slab{32, 16}, Slab{0, 8});
  const TaskId miss = g.add(TaskStage::MoveIn, "miss", [&](TaskCtx& c) {
    c.h2d(buf.get(), sim::HostConstRef::phantom(8, 8), "h2d miss");
  });
  g.set_input_region(miss, Slab{64, 32}, Slab{0, 8});
  g.run();
  dev.synchronize();

  const auto& ev = dev.trace().events();
  const auto& producer = ev[find_event(dev, "producer")];
  const auto& gated = ev[find_event(dev, "h2d hit")];
  EXPECT_GE(gated.start, producer.end);

  // A compute node cannot carry an input region.
  const TaskId c = g.add(TaskStage::Compute, "c", nullptr);
  EXPECT_THROW(g.set_input_region(c, Slab{0, 8}, Slab{0, 8}),
               InvalidArgument);
}

TEST(TaskGraph, DoneEventsBridgeToOtherGraphs) {
  // The done(id) event of one graph gates a node of a second graph via
  // TaskCtx::wait — the cross-graph DAG edge serve's colocated batches use.
  Device dev = phantom_device();
  ScopedMatrix buf(dev, 8, 8, StoragePrecision::FP32, "tg.buf");
  TaskGraph g1(dev, test_options());
  const TaskId p = g1.add(TaskStage::Compute, "produce", [&](TaskCtx& c) {
    c.gemm(blas::Op::NoTrans, blas::Op::NoTrans, 1.0f, buf.get(), buf.get(),
           0.0f, buf.get(), "gemm produce");
  });
  g1.run();

  TaskGraph g2(dev, test_options());
  g2.add(TaskStage::MoveOut, "consume", [&](TaskCtx& c) {
    c.wait(g1.done(p));
    c.d2h(sim::HostMutRef::phantom(8, 8), buf.get(), "d2h consume");
  });
  g2.run();
  dev.synchronize();

  const auto& ev = dev.trace().events();
  EXPECT_GE(ev[find_event(dev, "d2h consume")].start,
            ev[find_event(dev, "gemm produce")].end);
  EXPECT_THROW(g1.done(42), InvalidArgument);
}

} // namespace
} // namespace rocqr::ooc
