// Left-looking OOC QR: numerics against the right-looking drivers and the
// movement/shape tradeoff it embodies.
#include <gtest/gtest.h>

#include "leak_check.hpp"

#include "common/error.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "qr/factorize.hpp"
#include "qr/incore.hpp"
#include "sim/device.hpp"

namespace rocqr::qr {
namespace {

using sim::Device;
using sim::ExecutionMode;

sim::DeviceSpec test_spec(bytes_t capacity = 512LL << 20) {
  sim::DeviceSpec s = sim::DeviceSpec::v100_32gb();
  s.memory_capacity = capacity;
  return s;
}

TEST(LeftLookingQr, FactorsCorrectlyAcrossShapes) {
  for (const auto& [m, n, b] :
       {std::tuple<index_t, index_t, index_t>{96, 96, 32},
        std::tuple<index_t, index_t, index_t>{200, 120, 32},
        std::tuple<index_t, index_t, index_t>{150, 33, 16},
        std::tuple<index_t, index_t, index_t>{64, 16, 64}}) {
    la::Matrix a = la::random_normal(m, n, 400 + m);
    Device dev(test_spec(), ExecutionMode::Real);
    QrOptions opts;
    opts.blocksize = b;
    opts.panel_base = 8;
    opts.precision = blas::GemmPrecision::FP32;
    la::Matrix q = la::materialize(a.view());
    la::Matrix r(n, n);
    const QrStats stats = factorize(
        QrProblem{{&dev}, q.view(), r.view(), Algorithm::LeftLooking, opts});
    EXPECT_LT(la::qr_residual(a.view(), q.view(), r.view()), 1e-4)
        << m << "x" << n << " b=" << b;
    EXPECT_TRUE(la::is_upper_triangular(r.view()));
    EXPECT_GT(stats.panels, 0);
    EXPECT_EQ(dev.live_allocations(), 0);
  }
}

TEST(LeftLookingQr, MatchesRightLookingFactors) {
  // Block classic Gram-Schmidt either way: identical factors up to fp32
  // summation-order noise.
  la::Matrix a = la::random_normal(160, 96, 55);
  QrOptions opts;
  opts.blocksize = 32;
  opts.panel_base = 8;
  opts.precision = blas::GemmPrecision::FP32;

  Device d1(test_spec(), ExecutionMode::Real);
  la::Matrix ql = la::materialize(a.view());
  la::Matrix rl(96, 96);
  factorize(
      QrProblem{{&d1}, ql.view(), rl.view(), Algorithm::LeftLooking, opts});

  Device d2(test_spec(), ExecutionMode::Real);
  la::Matrix qr_ = la::materialize(a.view());
  la::Matrix rr(96, 96);
  factorize(QrProblem{{&d2}, qr_.view(), rr.view(), Algorithm::Blocking, opts});

  EXPECT_LT(la::relative_difference(ql.view(), qr_.view()), 1e-4);
  EXPECT_LT(la::relative_difference(rl.view(), rr.view()), 1e-4);
}

TEST(LeftLookingQr, MovesFarFewerBytesThanRightLooking) {
  // The SOLAR rationale: the trailing matrix is never streamed out and back.
  auto dev_l = Device(sim::DeviceSpec::v100_32gb(), ExecutionMode::Phantom);
  dev_l.model().install_paper_calibration();
  auto dev_r = Device(sim::DeviceSpec::v100_32gb(), ExecutionMode::Phantom);
  dev_r.model().install_paper_calibration();
  QrOptions opts;
  opts.blocksize = 16384;
  auto a1 = sim::HostMutRef::phantom(131072, 131072);
  auto r1 = sim::HostMutRef::phantom(131072, 131072);
  const QrStats left = factorize(
      QrProblem{{&dev_l}, a1, r1, Algorithm::LeftLooking, opts});
  auto a2 = sim::HostMutRef::phantom(131072, 131072);
  auto r2 = sim::HostMutRef::phantom(131072, 131072);
  const QrStats right = factorize(
      QrProblem{{&dev_r}, a2, r2, Algorithm::Blocking, opts});

  EXPECT_LT(left.bytes_h2d, right.bytes_h2d);
  EXPECT_LT(left.bytes_d2h, 0.5 * right.bytes_d2h);
  // The model's ordering on the V100: left-looking's movement savings beat
  // right-looking blocking even despite its skinny TN GEMMs...
  EXPECT_LT(left.total_seconds, right.total_seconds);
  // ...but the recursive algorithm still beats both: it gets the small
  // movement AND the near-peak GEMM shapes at once.
  auto dev_rec = Device(sim::DeviceSpec::v100_32gb(), ExecutionMode::Phantom);
  dev_rec.model().install_paper_calibration();
  auto a3 = sim::HostMutRef::phantom(131072, 131072);
  auto r3 = sim::HostMutRef::phantom(131072, 131072);
  const QrStats rec = factorize(
      QrProblem{{&dev_rec}, a3, r3, Algorithm::Recursive, opts});
  EXPECT_LT(rec.total_seconds, left.total_seconds);
}

TEST(LeftLookingQr, WinsOnTheDiskBoundary) {
  // On the 1996 disk-CPU node (no shape penalty, precious write bandwidth)
  // the classic left-looking formulation is the right choice — exactly why
  // SOLAR used it.
  QrOptions opts;
  opts.blocksize = 512;
  auto dev_l = Device(sim::DeviceSpec::disk_cpu_1996(), ExecutionMode::Phantom);
  auto a1 = sim::HostMutRef::phantom(8192, 8192);
  auto r1 = sim::HostMutRef::phantom(8192, 8192);
  const QrStats left = factorize(
      QrProblem{{&dev_l}, a1, r1, Algorithm::LeftLooking, opts});
  auto dev_r = Device(sim::DeviceSpec::disk_cpu_1996(), ExecutionMode::Phantom);
  auto a2 = sim::HostMutRef::phantom(8192, 8192);
  auto r2 = sim::HostMutRef::phantom(8192, 8192);
  QrOptions ropts = opts;
  ropts.staging_buffer = false; // era-appropriate baseline
  const QrStats right = factorize(
      QrProblem{{&dev_r}, a2, r2, Algorithm::Blocking, ropts});
  EXPECT_LT(left.total_seconds, right.total_seconds);
}

TEST(LeftLookingQr, RejectsBadInputs) {
  Device dev(test_spec(), ExecutionMode::Phantom);
  QrOptions opts;
  auto wide_a = sim::HostMutRef::phantom(10, 20);
  auto r = sim::HostMutRef::phantom(20, 20);
  EXPECT_THROW(factorize(QrProblem{
      {&dev}, wide_a, r, Algorithm::LeftLooking, opts}), InvalidArgument);
  auto a = sim::HostMutRef::phantom(20, 10);
  auto bad_r = sim::HostMutRef::phantom(5, 5);
  EXPECT_THROW(factorize(QrProblem{
      {&dev}, a, bad_r, Algorithm::LeftLooking, opts}), InvalidArgument);
}

} // namespace
} // namespace rocqr::qr
