// Global test environment asserting that no ScopedMatrix destructor ever
// swallowed a failed free (sim/scoped_matrix.hpp records those on the
// `device_leaked_frees` counter instead of throwing). Engine tests include
// this header so a leak anywhere in a suite fails the whole binary.
#pragma once

#include <gtest/gtest.h>

#include "common/telemetry.hpp"

namespace rocqr::testing {

class DeviceLeakCheckEnvironment : public ::testing::Environment {
 public:
  void SetUp() override { counter().reset(); }
  void TearDown() override {
    EXPECT_EQ(counter().value(), 0)
        << "ScopedMatrix recorded failed device frees during this suite";
  }

  static telemetry::Counter& counter() {
    return telemetry::MetricsRegistry::global().counter("device_leaked_frees");
  }
};

namespace detail {
inline ::testing::Environment* const kDeviceLeakCheck =
    ::testing::AddGlobalTestEnvironment(new DeviceLeakCheckEnvironment);
} // namespace detail

} // namespace rocqr::testing
