// Schedule-identity golden checks for the OOC engines and drivers.
//
// Each case runs a fixed configuration through one engine (Phantom mode),
// canonicalizes the resulting trace window — operation name, kind, engine,
// exact start/end times, bytes, flops; stream ids are dropped so the check
// is invariant to stream numbering — and diffs it against a committed
// golden. The goldens were generated once at the pre-pipeline-executor
// commit, so any refactor of the streaming orchestration that shifts an
// event, a byte, or a prefetch counter fails here immediately.
//
// Regenerate (only when a schedule change is *intended*) with:
//   ROCQR_UPDATE_GOLDENS=1 ./tests/schedule_golden_test
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/telemetry.hpp"
#include "lu/ooc_cholesky.hpp"
#include "lu/ooc_lu.hpp"
#include "ooc/gemm_engines.hpp"
#include "ooc/operand.hpp"
#include "ooc/trsm_engine.hpp"
#include "qr/factorize.hpp"
#include "sim/device.hpp"

#ifndef ROCQR_GOLDEN_DIR
#define ROCQR_GOLDEN_DIR "."
#endif

namespace {

using rocqr::index_t;
using rocqr::ooc::OocGemmOptions;
using rocqr::ooc::Operand;
using rocqr::sim::Device;
using rocqr::sim::ExecutionMode;
using rocqr::sim::HostConstRef;
using rocqr::sim::HostMutRef;

rocqr::sim::DeviceSpec golden_spec(rocqr::bytes_t capacity = 256LL << 20) {
  rocqr::sim::DeviceSpec s = rocqr::sim::DeviceSpec::v100_32gb();
  s.memory_capacity = capacity;
  return s;
}

/// name|kind|engine|start|end|bytes|flops per event, times in hexfloat so
/// the comparison is bit-exact yet the file stays human-diffable.
std::string canonical_trace(const Device& dev) {
  std::ostringstream os;
  os << std::hexfloat;
  for (const rocqr::sim::TraceEvent& e : dev.trace().events()) {
    os << e.name << '|' << rocqr::sim::to_string(e.kind) << '|'
       << rocqr::sim::to_string(e.resource) << '|' << e.start << '|' << e.end
       << '|' << e.bytes << '|' << e.flops << '\n';
  }
  return os.str();
}

std::int64_t counter_value(const char* name) {
  return rocqr::telemetry::MetricsRegistry::global().counter(name).value();
}

/// Compares `actual` against goldens/<name>.trace, or rewrites the golden
/// when ROCQR_UPDATE_GOLDENS is set.
void compare_or_update(const std::string& name, const std::string& actual) {
  const std::string path = std::string(ROCQR_GOLDEN_DIR) + "/" + name +
                           ".trace";
  if (std::getenv("ROCQR_UPDATE_GOLDENS") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << " (run with ROCQR_UPDATE_GOLDENS=1)";
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string expected = buf.str();
  if (expected != actual) {
    // Locate the first differing line for a readable failure.
    std::istringstream ea(expected);
    std::istringstream aa(actual);
    std::string el;
    std::string al;
    int line = 0;
    while (true) {
      ++line;
      const bool eok = static_cast<bool>(std::getline(ea, el));
      const bool aok = static_cast<bool>(std::getline(aa, al));
      if (!eok && !aok) break;
      if (el != al || eok != aok) {
        FAIL() << name << ": schedule diverges from golden at line " << line
               << "\n  golden: " << (eok ? el : "<eof>")
               << "\n  actual: " << (aok ? al : "<eof>");
      }
      el.clear();
      al.clear();
    }
    FAIL() << name << ": trace differs from golden (same lines, different "
                      "layout?)";
  }
}

/// Runs `body` on a fresh phantom device and compares the canonical trace
/// plus the slab-prefetch counter deltas against goldens/<name>.trace.
void check_golden(const std::string& name, rocqr::bytes_t capacity,
                  const std::function<void(Device&)>& body) {
  Device dev(golden_spec(capacity), ExecutionMode::Phantom);
  const std::int64_t hits0 = counter_value("ooc.slab_prefetch_hits");
  const std::int64_t miss0 = counter_value("ooc.slab_prefetch_misses");
  body(dev);
  dev.synchronize();
  std::ostringstream os;
  os << canonical_trace(dev);
  os << "counter|ooc.slab_prefetch_hits|"
     << counter_value("ooc.slab_prefetch_hits") - hits0 << '\n';
  os << "counter|ooc.slab_prefetch_misses|"
     << counter_value("ooc.slab_prefetch_misses") - miss0 << '\n';
  compare_or_update(name, os.str());
}

/// Fleet variant: runs `body` over `ndev` fresh phantom devices and pins
/// the concatenation of their canonical traces under one "device|i" header
/// per device. The cross-device reduction-tree order — which device merges
/// which R factor, and when — is part of the golden.
void check_fleet_golden(
    const std::string& name, rocqr::bytes_t capacity, int ndev,
    const std::function<void(std::vector<Device*>&)>& body) {
  std::vector<std::unique_ptr<Device>> fleet;
  std::vector<Device*> ptrs;
  for (int i = 0; i < ndev; ++i) {
    fleet.push_back(std::make_unique<Device>(golden_spec(capacity),
                                             ExecutionMode::Phantom));
    ptrs.push_back(fleet.back().get());
  }
  body(ptrs);
  std::ostringstream os;
  for (int i = 0; i < ndev; ++i) {
    ptrs[i]->synchronize();
    os << "device|" << i << '\n' << canonical_trace(*ptrs[i]);
  }
  compare_or_update(name, os.str());
}

OocGemmOptions small_opts(index_t blocksize) {
  OocGemmOptions o;
  o.blocksize = blocksize;
  return o;
}

TEST(ScheduleGolden, InnerRecursive) {
  check_golden("inner_recursive", 256LL << 20, [](Device& dev) {
    OocGemmOptions o = small_opts(512);
    o.pipeline_depth = 2;
    rocqr::ooc::inner_product_recursive(
        dev, Operand::on_host(HostConstRef::phantom(3000, 256)),
        Operand::on_host(HostConstRef::phantom(3000, 300)),
        HostMutRef::phantom(256, 300), o);
  });
}

TEST(ScheduleGolden, InnerRecursiveSplitRamp) {
  check_golden("inner_recursive_split_ramp", 256LL << 20, [](Device& dev) {
    OocGemmOptions o = small_opts(512);
    o.c_panel_cols = 128; // two accumulator slots + per-panel move-outs
    o.ramp_up = true;
    o.ramp_start = 128;
    o.pipeline_depth = 3;
    rocqr::ooc::inner_product_recursive(
        dev, Operand::on_host(HostConstRef::phantom(4000, 192)),
        Operand::on_host(HostConstRef::phantom(4000, 384)),
        HostMutRef::phantom(192, 384), o);
  });
}

TEST(ScheduleGolden, InnerBlocking) {
  check_golden("inner_blocking", 256LL << 20, [](Device& dev) {
    OocGemmOptions o = small_opts(256);
    o.pipeline_depth = 3;
    rocqr::ooc::inner_product_blocking(
        dev, Operand::on_host(HostConstRef::phantom(2000, 128)),
        Operand::on_host(HostConstRef::phantom(2000, 700)),
        HostMutRef::phantom(128, 700), o);
  });
}

TEST(ScheduleGolden, OuterRecursive) {
  check_golden("outer_recursive", 256LL << 20, [](Device& dev) {
    const OocGemmOptions o = small_opts(512);
    rocqr::ooc::outer_product_recursive(
        dev, Operand::on_host(HostConstRef::phantom(2000, 128)),
        Operand::on_host(HostConstRef::phantom(128, 300)),
        HostConstRef::phantom(2000, 300), HostMutRef::phantom(2000, 300), o);
  });
}

TEST(ScheduleGolden, OuterRecursiveTrapezoidNoStaging) {
  check_golden("outer_recursive_trapezoid", 256LL << 20, [](Device& dev) {
    OocGemmOptions o = small_opts(256);
    o.outer_opa = rocqr::blas::Op::Trans;
    o.upper_trapezoid_slabs = true;
    o.staging_buffer = false;
    rocqr::ooc::outer_product_recursive(
        dev, Operand::on_host(HostConstRef::phantom(96, 1024)),
        Operand::on_host(HostConstRef::phantom(96, 1024)),
        HostConstRef::phantom(1024, 1024), HostMutRef::phantom(1024, 1024),
        o);
  });
}

TEST(ScheduleGolden, OuterColwise) {
  check_golden("outer_colwise", 256LL << 20, [](Device& dev) {
    const OocGemmOptions o = small_opts(512);
    rocqr::ooc::outer_product_colwise(
        dev, Operand::on_host(HostConstRef::phantom(300, 128)),
        Operand::on_host(HostConstRef::phantom(128, 2000)),
        HostConstRef::phantom(300, 2000), HostMutRef::phantom(300, 2000), o);
  });
}

TEST(ScheduleGolden, OuterBlockingTriangular) {
  check_golden("outer_blocking_triangular", 256LL << 20, [](Device& dev) {
    OocGemmOptions o = small_opts(512);
    o.tile_cols = 256;
    o.outer_opa = rocqr::blas::Op::Trans;
    o.upper_triangle_tiles_only = true;
    rocqr::ooc::outer_product_blocking(
        dev, Operand::on_host(HostConstRef::phantom(96, 1500)),
        Operand::on_host(HostConstRef::phantom(96, 1500)),
        HostConstRef::phantom(1500, 1500), HostMutRef::phantom(1500, 1500),
        o);
  });
}

TEST(ScheduleGolden, OuterBlockingSynchronous) {
  check_golden("outer_blocking_synchronous", 256LL << 20, [](Device& dev) {
    OocGemmOptions o = small_opts(512);
    o.tile_cols = 512;
    o.synchronous = true;
    o.staging_buffer = false;
    rocqr::ooc::outer_product_blocking(
        dev, Operand::on_host(HostConstRef::phantom(1200, 96)),
        Operand::on_host(HostConstRef::phantom(96, 1024)),
        HostConstRef::phantom(1200, 1024), HostMutRef::phantom(1200, 1024),
        o);
  });
}

TEST(ScheduleGolden, Trsm) {
  check_golden("trsm", 256LL << 20, [](Device& dev) {
    const OocGemmOptions o = small_opts(256);
    rocqr::ooc::ooc_trsm(dev, rocqr::ooc::TriSolveKind::LowerUnit,
                         HostConstRef::phantom(600, 600),
                         HostConstRef::phantom(600, 800),
                         HostMutRef::phantom(600, 800), o);
  });
}

TEST(ScheduleGolden, TrsmUpperBackSubst) {
  check_golden("trsm_upper", 256LL << 20, [](Device& dev) {
    const OocGemmOptions o = small_opts(256);
    rocqr::ooc::ooc_trsm(dev, rocqr::ooc::TriSolveKind::Upper,
                         HostConstRef::phantom(700, 700),
                         HostConstRef::phantom(700, 500),
                         HostMutRef::phantom(700, 500), o);
  });
}

TEST(ScheduleGolden, BlockingQr) {
  check_golden("blocking_qr", 256LL << 20, [](Device& dev) {
    rocqr::qr::QrOptions o;
    o.blocksize = 256;
    rocqr::qr::factorize(
        rocqr::qr::QrProblem{{&dev},
                             HostMutRef::phantom(2048, 1024),
                             HostMutRef::phantom(1024, 1024),
                             rocqr::qr::Algorithm::Blocking, o});
  });
}

TEST(ScheduleGolden, RecursiveQr) {
  check_golden("recursive_qr", 256LL << 20, [](Device& dev) {
    rocqr::qr::QrOptions o;
    o.blocksize = 256;
    rocqr::qr::factorize(
        rocqr::qr::QrProblem{{&dev},
                             HostMutRef::phantom(2048, 1024),
                             HostMutRef::phantom(1024, 1024),
                             rocqr::qr::Algorithm::Recursive, o});
  });
}

TEST(ScheduleGolden, RecursiveQrSmallMemory) {
  check_golden("recursive_qr_small_memory", 24LL << 20, [](Device& dev) {
    rocqr::qr::QrOptions o;
    o.blocksize = 256;
    rocqr::qr::factorize(
        rocqr::qr::QrProblem{{&dev},
                             HostMutRef::phantom(2048, 1024),
                             HostMutRef::phantom(1024, 1024),
                             rocqr::qr::Algorithm::Recursive, o});
  });
}

TEST(ScheduleGolden, LeftLookingQr) {
  check_golden("left_looking_qr", 256LL << 20, [](Device& dev) {
    rocqr::qr::QrOptions o;
    o.blocksize = 256;
    rocqr::qr::factorize(
        rocqr::qr::QrProblem{{&dev},
                             HostMutRef::phantom(1024, 768),
                             HostMutRef::phantom(768, 768),
                             rocqr::qr::Algorithm::LeftLooking, o});
  });
}

TEST(ScheduleGolden, TiledQrTaskGraph) {
  // Tiled CGS expressed on the TaskGraph executor: panel k+1 factors while
  // panel k's trailing updates drain, and that interleaving is pinned here.
  check_golden("tiled_qr", 256LL << 20, [](Device& dev) {
    rocqr::qr::QrOptions o;
    o.blocksize = 256;
    rocqr::qr::factorize(
        rocqr::qr::QrProblem{{&dev},
                             HostMutRef::phantom(2048, 1024),
                             HostMutRef::phantom(1024, 1024),
                             rocqr::qr::Algorithm::Tiled, o});
  });
}

TEST(ScheduleGolden, TsqrFleetReductionTree) {
  // DAG-overlapped TSQR: a reduction-tree node fires as soon as both child
  // R factors exist instead of waiting on a full-fleet barrier, so the
  // merge order across devices is part of the pinned schedule.
  check_fleet_golden("tsqr_fleet", 256LL << 20, 4,
                     [](std::vector<Device*>& fleet) {
                       rocqr::qr::QrOptions o;
                       o.blocksize = 256;
                       rocqr::qr::factorize(
                           rocqr::qr::QrProblem{fleet,
                                                HostMutRef::phantom(8192, 512),
                                                HostMutRef::phantom(512, 512),
                                                rocqr::qr::Algorithm::Tsqr, o});
                     });
}

TEST(ScheduleGolden, RecursiveLu) {
  check_golden("recursive_lu", 256LL << 20, [](Device& dev) {
    rocqr::lu::FactorOptions o;
    o.blocksize = 256;
    rocqr::lu::recursive_ooc_lu(dev, HostMutRef::phantom(1024, 768), o);
  });
}

TEST(ScheduleGolden, BlockingLu) {
  check_golden("blocking_lu", 256LL << 20, [](Device& dev) {
    rocqr::lu::FactorOptions o;
    o.blocksize = 256;
    rocqr::lu::blocking_ooc_lu(dev, HostMutRef::phantom(1024, 768), o);
  });
}

TEST(ScheduleGolden, BlockingCholesky) {
  check_golden("blocking_cholesky", 256LL << 20, [](Device& dev) {
    rocqr::lu::FactorOptions o;
    o.blocksize = 256;
    rocqr::lu::blocking_ooc_cholesky(dev, HostMutRef::phantom(1024, 1024), o);
  });
}

TEST(ScheduleGolden, RecursiveCholesky) {
  check_golden("recursive_cholesky", 256LL << 20, [](Device& dev) {
    rocqr::lu::FactorOptions o;
    o.blocksize = 256;
    rocqr::lu::recursive_ooc_cholesky(dev, HostMutRef::phantom(1024, 1024),
                                      o);
  });
}

} // namespace
