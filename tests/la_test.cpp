// Matrix containers/views, generators, norms, QR metrics, Cholesky.
#include <gtest/gtest.h>

#include <cmath>

#include "blas/gemm.hpp"
#include "common/error.hpp"
#include "la/cholesky.hpp"
#include "la/generate.hpp"
#include "la/matrix.hpp"
#include "la/norms.hpp"

namespace rocqr {
namespace {

TEST(Matrix, ConstructionAndIndexing) {
  la::Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.ld(), 3);
  EXPECT_FALSE(m.empty());
  m(2, 3) = 5.0f;
  EXPECT_FLOAT_EQ(m.data()[2 + 3 * 3], 5.0f);
  la::Matrix empty;
  EXPECT_TRUE(empty.empty());
}

TEST(Matrix, ViewsShareStorage) {
  la::Matrix m(4, 4);
  la::MatrixView v = m.view();
  v(1, 2) = 9.0f;
  EXPECT_FLOAT_EQ(m(1, 2), 9.0f);
  la::ConstMatrixView cv = m.view();
  EXPECT_FLOAT_EQ(cv(1, 2), 9.0f);
}

TEST(Matrix, BlockViewsAreCorrectlyOffset) {
  la::Matrix m(6, 6);
  for (index_t j = 0; j < 6; ++j) {
    for (index_t i = 0; i < 6; ++i) m(i, j) = static_cast<float>(10 * i + j);
  }
  la::MatrixView b = m.block(2, 3, 3, 2);
  EXPECT_EQ(b.rows(), 3);
  EXPECT_EQ(b.cols(), 2);
  EXPECT_FLOAT_EQ(b(0, 0), 23.0f);
  EXPECT_FLOAT_EQ(b(2, 1), 44.0f);
  // Nested blocks compose.
  la::MatrixView bb = b.block(1, 1, 2, 1);
  EXPECT_FLOAT_EQ(bb(0, 0), 34.0f);
  // columns/rows_range helpers.
  EXPECT_FLOAT_EQ(m.view().columns(2, 2)(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(m.view().rows_range(1, 2)(0, 0), 10.0f);
}

TEST(Matrix, BlockOutOfRangeThrows) {
  la::Matrix m(4, 4);
  EXPECT_THROW(m.view().block(2, 2, 3, 1), InvalidArgument);
  EXPECT_THROW(m.view().block(0, 0, 5, 1), InvalidArgument);
  EXPECT_THROW(m.view().block(-1, 0, 1, 1), InvalidArgument);
}

TEST(Matrix, MaterializeAndIdentity) {
  la::Matrix m(5, 5);
  m(2, 2) = 3.0f;
  la::Matrix copy = la::materialize(m.block(1, 1, 3, 3));
  EXPECT_EQ(copy.rows(), 3);
  EXPECT_FLOAT_EQ(copy(1, 1), 3.0f);
  la::Matrix eye = la::identity(4);
  EXPECT_FLOAT_EQ(eye(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(eye(1, 0), 0.0f);
  EXPECT_NEAR(la::frobenius_norm(eye.view()), 2.0, 1e-12);
}

TEST(Generate, RandomMatricesAreDeterministicPerSeed) {
  la::Matrix a = la::random_uniform(10, 10, 42);
  la::Matrix b = la::random_uniform(10, 10, 42);
  la::Matrix c = la::random_uniform(10, 10, 43);
  EXPECT_EQ(la::relative_difference(a.view(), b.view()), 0.0);
  EXPECT_GT(la::relative_difference(a.view(), c.view()), 0.0);
}

TEST(Generate, UniformBounds) {
  la::Matrix a = la::random_uniform(50, 50, 1);
  EXPECT_LE(la::max_abs(a.view()), 1.0);
  EXPECT_GT(la::max_abs(a.view()), 0.5); // overwhelmingly likely
}

TEST(Generate, NormalHasExpectedScale) {
  la::Matrix a = la::random_normal(100, 100, 2);
  // Frobenius norm of an n x n standard normal matrix concentrates near n.
  EXPECT_NEAR(la::frobenius_norm(a.view()) / 100.0, 1.0, 0.05);
}

TEST(Generate, ConditionNumberIsRealized) {
  // Singular values of A should span [1/cond, 1]: check via extreme column
  // norms of Aᵀ A eigen-bounds proxy — use frobenius/min-col as a loose
  // check, and exact check via the generator's construction at cond=1
  // (orthogonal up to scaling).
  la::Matrix a = la::random_with_condition(40, 10, 1.0, 3);
  // cond == 1 means AᵀA == I.
  la::Matrix gram(10, 10);
  blas::gemm(blas::Op::Trans, blas::Op::NoTrans, 10, 10, 40, 1.0f, a.data(),
             a.ld(), a.data(), a.ld(), 0.0f, gram.data(), gram.ld());
  la::Matrix eye = la::identity(10);
  EXPECT_LT(la::relative_difference(gram.view(), eye.view()), 1e-4);

  la::Matrix b = la::random_with_condition(40, 10, 1e4, 4);
  la::Matrix gram_b(10, 10);
  blas::gemm(blas::Op::Trans, blas::Op::NoTrans, 10, 10, 40, 1.0f, b.data(),
             b.ld(), b.data(), b.ld(), 0.0f, gram_b.data(), gram_b.ld());
  // trace(AᵀA) = sum sigma_i^2: dominated by sigma_max=1, and the smallest
  // singular value should pull the determinant far down — cheap proxy:
  // the largest diagonal entry is O(1), total trace < n.
  double trace = 0.0;
  for (index_t i = 0; i < 10; ++i) trace += static_cast<double>(gram_b(i, i));
  EXPECT_LT(trace, 10.0);
  EXPECT_GT(trace, 1.0);
}

TEST(Generate, ConditionValidatesArguments) {
  EXPECT_THROW(la::random_with_condition(5, 10, 10.0, 1), InvalidArgument);
  EXPECT_THROW(la::random_with_condition(10, 5, 0.5, 1), InvalidArgument);
}

TEST(Generate, HilbertEntries) {
  la::Matrix h = la::hilbert(3, 3);
  EXPECT_FLOAT_EQ(h(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(h(1, 1), 1.0f / 3.0f);
  EXPECT_FLOAT_EQ(h(2, 1), 0.25f);
}

TEST(Norms, FrobeniusMaxAbsOneNorm) {
  la::Matrix m(2, 2);
  m(0, 0) = 3.0f;
  m(1, 0) = -4.0f;
  m(0, 1) = 0.0f;
  m(1, 1) = 2.0f;
  EXPECT_NEAR(la::frobenius_norm(m.view()), std::sqrt(29.0), 1e-6);
  EXPECT_NEAR(la::max_abs(m.view()), 4.0, 1e-12);
  EXPECT_NEAR(la::one_norm(m.view()), 7.0, 1e-12); // column 0: 3+4
}

TEST(Norms, QrResidualZeroForExactFactors) {
  la::Matrix q = la::identity(4);
  la::Matrix r = la::random_uniform(4, 4, 5);
  for (index_t j = 0; j < 4; ++j) {
    for (index_t i = j + 1; i < 4; ++i) r(i, j) = 0.0f;
  }
  // A = Q R = R here.
  EXPECT_NEAR(la::qr_residual(r.view(), q.view(), r.view()), 0.0, 1e-7);
}

TEST(Norms, OrthogonalityErrorDetectsSkew) {
  la::Matrix q = la::identity(3);
  EXPECT_NEAR(la::orthogonality_error(q.view()), 0.0, 1e-12);
  q(0, 1) = 0.1f; // breaks orthogonality
  EXPECT_GT(la::orthogonality_error(q.view()), 0.05);
}

TEST(Norms, IsUpperTriangular) {
  la::Matrix r(3, 3);
  r(0, 0) = 1.0f;
  r(0, 2) = 2.0f;
  EXPECT_TRUE(la::is_upper_triangular(r.view()));
  r(2, 0) = 1e-30f;
  EXPECT_FALSE(la::is_upper_triangular(r.view()));
}

TEST(Cholesky, FactorsSpdMatrix) {
  const index_t n = 8;
  la::Matrix b = la::random_uniform(n, n, 6);
  la::Matrix spd(n, n);
  // spd = BᵀB + n*I is safely positive definite.
  blas::gemm(blas::Op::Trans, blas::Op::NoTrans, n, n, n, 1.0f, b.data(),
             b.ld(), b.data(), b.ld(), 0.0f, spd.data(), spd.ld());
  for (index_t i = 0; i < n; ++i) spd(i, i) += static_cast<float>(n);
  la::Matrix original = la::materialize(spd.view());

  la::cholesky_upper(spd.view());
  EXPECT_TRUE(la::is_upper_triangular(spd.view()));
  la::Matrix recon(n, n);
  blas::gemm(blas::Op::Trans, blas::Op::NoTrans, n, n, n, 1.0f, spd.data(),
             spd.ld(), spd.data(), spd.ld(), 0.0f, recon.data(), recon.ld());
  EXPECT_LT(la::relative_difference(recon.view(), original.view()), 1e-5);
}

TEST(Cholesky, RejectsIndefiniteAndNonSquare) {
  la::Matrix notspd(2, 2);
  notspd(0, 0) = 1.0f;
  notspd(0, 1) = 4.0f;
  notspd(1, 0) = 4.0f;
  notspd(1, 1) = 1.0f; // eigenvalues 5, -3
  EXPECT_THROW(la::cholesky_upper(notspd.view()), InvalidArgument);
  la::Matrix rect(2, 3);
  EXPECT_THROW(la::cholesky_upper(rect.view()), InvalidArgument);
}

} // namespace
} // namespace rocqr
