// Gang-scheduled fleet-wide TSQR jobs in the serve scheduler: admission
// quotes the whole phantom fleet (sum of per-device peaks, shared-link
// contention priced in), dispatch acquires every device atomically without
// deadlocking against backfill, a preempted gang resumes bit-identically,
// and per-device stats roll up through qr::combine_device_stats.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "la/generate.hpp"
#include "leak_check.hpp"
#include "qr/factorize.hpp"
#include "serve/scheduler.hpp"
#include "sim/device.hpp"

namespace rocqr {
namespace {

using serve::AdmissionDecision;
using serve::FleetReport;
using serve::JobReport;
using serve::JobSpec;
using serve::JobState;
using serve::Scheduler;
using serve::ServeConfig;
using sim::Device;
using sim::ExecutionMode;

bool bitwise_equal(const la::Matrix& x, const la::Matrix& y) {
  for (index_t j = 0; j < x.cols(); ++j) {
    for (index_t i = 0; i < x.rows(); ++i) {
      if (x(i, j) != y(i, j)) return false;
    }
  }
  return true;
}

JobSpec tsqr_job(const std::string& name, index_t m, index_t n,
                 index_t blocksize) {
  JobSpec job;
  job.name = name;
  job.algorithm = "tsqr";
  job.m = m;
  job.n = n;
  job.blocksize = blocksize;
  return job;
}

TEST(ServeTsqrAdmission, QuotesFleetWidePeakAndMatchesExecution) {
  ServeConfig cfg;
  cfg.devices = 4;
  Scheduler sched(cfg);
  const AdmissionDecision d =
      sched.submit(tsqr_job("big", 262144, 8192, 8192));
  ASSERT_TRUE(d.admitted) << d.reason;
  EXPECT_GT(d.predicted_seconds, 0);
  EXPECT_GT(d.predicted_peak_bytes, 0);

  const FleetReport rep = sched.run();
  const JobReport& j = rep.jobs.at(static_cast<size_t>(d.job_id));
  ASSERT_EQ(j.state, JobState::Completed);
  EXPECT_EQ(j.attempts, 1);
  // The admission dry run replays on an identical phantom fleet, so a solo
  // gang job's makespan matches the quote exactly.
  EXPECT_NEAR(j.stats.total_seconds, d.predicted_seconds,
              1e-9 * d.predicted_seconds);
  // The quote is the fleet-wide sum of per-device peaks: with 4 leaves in
  // flight it must exceed any single device's contribution (the rollup's
  // max), while the per-device check kept each within the spec.
  EXPECT_GT(d.predicted_peak_bytes, j.stats.peak_device_bytes);
  EXPECT_LE(d.predicted_peak_bytes,
            4 * static_cast<bytes_t>(j.stats.peak_device_bytes));
}

TEST(ServeTsqrAdmission, SharedLinkRaisesThePredictedMakespan) {
  const JobSpec job = tsqr_job("linked", 262144, 8192, 8192);
  double predicted[2] = {0, 0};
  for (int shared = 0; shared < 2; ++shared) {
    ServeConfig cfg;
    cfg.devices = 4;
    cfg.shared_link = shared == 1;
    Scheduler sched(cfg);
    const AdmissionDecision d = sched.submit(job);
    ASSERT_TRUE(d.admitted) << d.reason;
    predicted[shared] = d.predicted_seconds;
  }
  EXPECT_GT(predicted[1], predicted[0]);
}

TEST(ServeTsqrAdmission, PerDeviceBudgetStillRejects) {
  ServeConfig cfg;
  cfg.devices = 4;
  cfg.admission_memory_fraction = 0.0001;
  Scheduler sched(cfg);
  const AdmissionDecision d =
      sched.submit(tsqr_job("hog", 262144, 8192, 8192));
  EXPECT_FALSE(d.admitted);
  EXPECT_NE(d.reason.find("per-device peak"), std::string::npos) << d.reason;
}

TEST(ServeTsqr, GangDrainsAgainstBackfillWithoutPreemption) {
  // Deadlock/starvation regression for the drain barrier: both devices are
  // busy with low-priority work when the gang becomes the top pick, and a
  // third low-priority job is queued as backfill bait. With preemption off
  // the gang must still run (after the running jobs finish naturally) and
  // the bait must not starve it. The old "ready job" event-ordering gate
  // deadlocked here: one device going idle could neither dispatch (fleet
  // not idle) nor be waited out by the still-running job.
  ServeConfig cfg;
  cfg.devices = 2;
  cfg.preemption = false;
  Scheduler sched(cfg);

  std::vector<AdmissionDecision> lows;
  for (int i = 0; i < 3; ++i) {
    JobSpec low;
    low.name = "low" + std::to_string(i);
    low.m = low.n = 32768;
    low.blocksize = 8192;
    low.priority = 1;
    lows.push_back(sched.submit(low));
    ASSERT_TRUE(lows.back().admitted) << lows.back().reason;
  }
  JobSpec gang = tsqr_job("gang", 131072, 8192, 8192);
  gang.priority = 5;
  gang.arrival_after_units = 1;
  const AdmissionDecision gd = sched.submit(gang);
  ASSERT_TRUE(gd.admitted) << gd.reason;

  const FleetReport rep = sched.run();
  EXPECT_EQ(rep.jobs_completed, 4);
  EXPECT_EQ(rep.jobs_failed, 0);
  EXPECT_EQ(rep.jobs_preempted, 0);
  const JobReport& gj = rep.jobs.at(static_cast<size_t>(gd.job_id));
  EXPECT_EQ(gj.state, JobState::Completed);
  EXPECT_EQ(gj.attempts, 1);
}

TEST(ServeTsqr, PreemptedGangResumesBitIdentical) {
  // Real mode, 2 devices: the gang starts first, a late high-priority
  // single-device job forces it to yield at a leaf checkpoint, and the
  // resumed gang must reproduce an uninterrupted fleet factorization bit
  // for bit.
  constexpr index_t kM = 192;
  constexpr index_t kN = 48;
  constexpr index_t kB = 24;

  ServeConfig cfg;
  cfg.devices = 2;
  cfg.mode = ExecutionMode::Real;
  Scheduler sched(cfg);

  qr::QrOptions base;
  base.blocksize = kB;
  base.panel_base = 8;
  base.precision = blas::GemmPrecision::FP32;

  la::Matrix gang_a = la::random_normal(kM, kN, 71);
  la::Matrix gang_a0 = la::materialize(gang_a.view());
  la::Matrix gang_r(kN, kN);
  JobSpec gang = tsqr_job("gang", kM, kN, kB);
  gang.priority = 1;
  gang.precision = blas::GemmPrecision::FP32;
  gang.options = base;
  gang.a = gang_a.view();
  gang.r = gang_r.view();
  const AdmissionDecision gd = sched.submit(gang);
  ASSERT_TRUE(gd.admitted) << gd.reason;

  la::Matrix urgent_a = la::random_normal(kM, kN, 72);
  la::Matrix urgent_r(kN, kN);
  JobSpec urgent;
  urgent.name = "urgent";
  urgent.m = kM;
  urgent.n = kN;
  urgent.algorithm = "recursive";
  urgent.blocksize = kB;
  urgent.precision = blas::GemmPrecision::FP32;
  urgent.priority = 5;
  urgent.arrival_after_units = 1; // opens at the gang's first leaf checkpoint
  urgent.options = base;
  urgent.a = urgent_a.view();
  urgent.r = urgent_r.view();
  const AdmissionDecision ud = sched.submit(urgent);
  ASSERT_TRUE(ud.admitted) << ud.reason;

  const FleetReport rep = sched.run();
  EXPECT_EQ(rep.jobs_completed, 2);
  const JobReport& gj = rep.jobs.at(static_cast<size_t>(gd.job_id));
  ASSERT_EQ(gj.state, JobState::Completed);
  EXPECT_GE(gj.preemptions, 1);
  EXPECT_GE(gj.attempts, 2);
  EXPECT_GE(rep.jobs_preempted, 1);

  // Uninterrupted reference on an identical fresh fleet.
  la::Matrix q_ref = la::materialize(gang_a0.view());
  la::Matrix r_ref(kN, kN);
  std::vector<std::unique_ptr<Device>> fleet;
  std::vector<Device*> ptrs;
  for (int i = 0; i < cfg.devices; ++i) {
    fleet.push_back(std::make_unique<Device>(cfg.spec, ExecutionMode::Real));
    fleet.back()->model().install_paper_calibration();
    ptrs.push_back(fleet.back().get());
  }
  qr::factorize(qr::QrProblem{
      ptrs, q_ref.view(), r_ref.view(), qr::Algorithm::Tsqr, base});
  EXPECT_TRUE(bitwise_equal(gang_a, q_ref));
  EXPECT_TRUE(bitwise_equal(gang_r, r_ref));
}

TEST(ServeTsqr, MixedBatchWithGangCompletes) {
  // A gang mid-batch among single-device jobs: everything completes and
  // the gang's stats cover more than one device's trace window.
  ServeConfig cfg;
  cfg.devices = 4;
  Scheduler sched(cfg);

  for (int i = 0; i < 4; ++i) {
    JobSpec low;
    low.name = "single" + std::to_string(i);
    low.m = low.n = 32768;
    low.blocksize = 8192;
    ASSERT_TRUE(sched.submit(low).admitted);
  }
  JobSpec gang = tsqr_job("gang", 262144, 8192, 8192);
  gang.priority = 2;
  gang.arrival_after_units = 2;
  const AdmissionDecision gd = sched.submit(gang);
  ASSERT_TRUE(gd.admitted) << gd.reason;

  const FleetReport rep = sched.run();
  EXPECT_EQ(rep.jobs_completed, 5);
  EXPECT_EQ(rep.jobs_failed, 0);
  const JobReport& gj = rep.jobs.at(static_cast<size_t>(gd.job_id));
  EXPECT_EQ(gj.state, JobState::Completed);
  EXPECT_GT(gj.stats.events, 0);
}

} // namespace
} // namespace rocqr
