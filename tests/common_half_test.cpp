// IEEE binary16 emulation: the rounding behaviour TensorCore applies to
// GEMM inputs must be bit-exact, so these tests pin it down hard.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "common/half.hpp"
#include "common/rng.hpp"

namespace rocqr {
namespace {

TEST(Half, ZeroRoundTrips) {
  EXPECT_EQ(half(0.0f).bits(), 0x0000u);
  EXPECT_EQ(half(-0.0f).bits(), 0x8000u);
  EXPECT_EQ(float(half(0.0f)), 0.0f);
  EXPECT_TRUE(std::signbit(float(half(-0.0f))));
}

TEST(Half, ExactSmallIntegers) {
  for (int i = -2048; i <= 2048; ++i) {
    EXPECT_EQ(float(half(static_cast<float>(i))), static_cast<float>(i))
        << "integer " << i;
  }
}

TEST(Half, KnownEncodings) {
  EXPECT_EQ(half(1.0f).bits(), 0x3c00u);
  EXPECT_EQ(half(-1.0f).bits(), 0xbc00u);
  EXPECT_EQ(half(2.0f).bits(), 0x4000u);
  EXPECT_EQ(half(0.5f).bits(), 0x3800u);
  EXPECT_EQ(half(65504.0f).bits(), 0x7bffu); // half max
  EXPECT_EQ(half(1.0f / 16777216.0f).bits(), 0x0001u); // 2^-24 smallest subnormal
}

TEST(Half, MaxAndOverflow) {
  EXPECT_EQ(float(half(65504.0f)), 65504.0f);
  // 65519.99 rounds down to half-max; >= 65520 rounds to infinity.
  EXPECT_EQ(half(65519.0f).bits(), 0x7bffu);
  EXPECT_TRUE(isinf(half(65520.0f)));
  EXPECT_TRUE(isinf(half(1e30f)));
  EXPECT_TRUE(isinf(half(-1e30f)));
  EXPECT_EQ(half(-1e30f).bits(), 0xfc00u);
}

TEST(Half, InfinityAndNaN) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(half(inf).bits(), 0x7c00u);
  EXPECT_EQ(half(-inf).bits(), 0xfc00u);
  EXPECT_TRUE(isinf(half(inf)));
  EXPECT_TRUE(isnan(half(std::numeric_limits<float>::quiet_NaN())));
  EXPECT_TRUE(std::isnan(float(half::from_bits(0x7e00))));
  EXPECT_TRUE(std::isinf(float(half::from_bits(0x7c00))));
  EXPECT_FALSE(isfinite(half(inf)));
  EXPECT_TRUE(isfinite(half(1.0f)));
}

TEST(Half, RoundToNearestEvenTies) {
  // 1 + 2^-11 is exactly between 1.0 (mantissa even) and 1+2^-10:
  // ties-to-even keeps 1.0.
  EXPECT_EQ(half(1.0f + 0x1.0p-11f).bits(), half(1.0f).bits());
  // (1 + 2^-10) + 2^-11 ties between odd 0x3c01 and even 0x3c02: rounds up.
  EXPECT_EQ(half(1.0f + 0x1.0p-10f + 0x1.0p-11f).bits(), 0x3c02u);
  // Just above the tie must round up.
  EXPECT_EQ(half(1.0f + 0x1.0p-11f + 0x1.0p-20f).bits(), 0x3c01u);
}

TEST(Half, SubnormalEncodeDecode) {
  // Largest subnormal: 1023 * 2^-24.
  const float largest_sub = 1023.0f * 0x1.0p-24f;
  EXPECT_EQ(half(largest_sub).bits(), 0x03ffu);
  EXPECT_EQ(float(half::from_bits(0x03ff)), largest_sub);
  // Smallest subnormal and halves round correctly.
  EXPECT_EQ(half(0x1.0p-24f).bits(), 0x0001u);
  EXPECT_EQ(half(0x1.0p-25f).bits(), 0x0000u);       // tie to even (zero)
  EXPECT_EQ(half(1.5f * 0x1.0p-25f).bits(), 0x0001u); // above tie
  EXPECT_EQ(half(0x1.0p-26f).bits(), 0x0000u);
  // Negative subnormal keeps its sign.
  EXPECT_EQ(half(-0x1.0p-24f).bits(), 0x8001u);
}

TEST(Half, SubnormalToNormalRounding) {
  // Largest subnormal + half an ulp rounds into the smallest normal.
  const float just_below_normal = (1023.5f) * 0x1.0p-24f;
  EXPECT_EQ(half(just_below_normal).bits(), 0x0400u);
  EXPECT_EQ(float(half::from_bits(0x0400)), 0x1.0p-14f);
}

TEST(Half, AllFiniteBitPatternsRoundTrip) {
  // Every finite half value converts to float and back to the same bits —
  // the fundamental contract of a correctly rounded conversion pair.
  for (std::uint32_t bits = 0; bits <= 0xffffu; ++bits) {
    const half h = half::from_bits(static_cast<std::uint16_t>(bits));
    if (isnan(h)) continue; // NaN payloads may be canonicalized
    const float f = float(h);
    EXPECT_EQ(half(f).bits(), bits) << "bits " << bits;
  }
}

TEST(Half, RoundingIsMonotonic) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const float a = static_cast<float>(rng.uniform(-70000.0, 70000.0));
    const float b = static_cast<float>(rng.uniform(-70000.0, 70000.0));
    const float lo = std::min(a, b);
    const float hi = std::max(a, b);
    EXPECT_LE(float(half(lo)), float(half(hi))) << lo << " vs " << hi;
  }
}

TEST(Half, RoundingErrorWithinHalfUlp) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const float x = static_cast<float>(rng.uniform(-1000.0, 1000.0));
    const float r = float(half(x));
    // Relative error of round-to-nearest is <= 2^-11 for normal halves.
    if (std::fabs(x) >= 0x1.0p-14f) {
      EXPECT_LE(std::fabs(r - x), std::fabs(x) * 0x1.0p-11f) << x;
    }
  }
}

TEST(Half, ArithmeticPromotesToFloat) {
  const half a(1.5f);
  const half b(2.25f);
  EXPECT_EQ(float(a + b), float(half(3.75f)));
  EXPECT_EQ(float(a * b), float(half(1.5f * 2.25f)));
  EXPECT_EQ(float(-a), -1.5f);
  half c(1.0f);
  c += half(1.0f);
  EXPECT_EQ(float(c), 2.0f);
  c *= half(3.0f);
  EXPECT_EQ(float(c), 6.0f);
  c -= half(2.0f);
  EXPECT_EQ(float(c), 4.0f);
  c /= half(4.0f);
  EXPECT_EQ(float(c), 1.0f);
}

TEST(Half, Comparisons) {
  EXPECT_LT(half(1.0f), half(2.0f));
  EXPECT_GT(half(2.0f), half(1.0f));
  EXPECT_EQ(half(1.0f), half(1.0f));
  EXPECT_NE(half(1.0f), half(1.001f));
  EXPECT_LE(half(1.0f), half(1.0f));
  EXPECT_GE(half(1.0f), half(1.0f));
  // -0 == +0 under IEEE comparison semantics.
  EXPECT_EQ(half(-0.0f), half(0.0f));
}

TEST(Half, NumericLimits) {
  using lim = std::numeric_limits<half>;
  EXPECT_EQ(float(lim::max()), 65504.0f);
  EXPECT_EQ(float(lim::min()), 0x1.0p-14f);
  EXPECT_EQ(float(lim::denorm_min()), 0x1.0p-24f);
  EXPECT_EQ(float(lim::epsilon()), 0x1.0p-10f);
  EXPECT_EQ(float(lim::lowest()), -65504.0f);
  EXPECT_TRUE(isinf(lim::infinity()));
  EXPECT_TRUE(isnan(lim::quiet_NaN()));
  EXPECT_EQ(lim::digits, 11);
}

} // namespace
} // namespace rocqr
