// GEMM: blocked kernel vs double-precision reference across shapes,
// transposes, precisions, and alpha/beta combinations.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>
#include <vector>

#include "blas/gemm.hpp"
#include "common/half.hpp"
#include "la/generate.hpp"
#include "la/matrix.hpp"
#include "la/norms.hpp"

namespace rocqr {
namespace {

using blas::GemmPrecision;
using blas::Op;

la::Matrix make_operand(Op op, index_t rows_op, index_t cols_op,
                        std::uint64_t seed) {
  // Stored shape is the transpose of the op-shape for Op::Trans.
  return op == Op::NoTrans ? la::random_uniform(rows_op, cols_op, seed)
                           : la::random_uniform(cols_op, rows_op, seed);
}

class GemmParamTest
    : public ::testing::TestWithParam<std::tuple<
          std::tuple<index_t, index_t, index_t>, Op, Op, GemmPrecision>> {};

TEST_P(GemmParamTest, MatchesReference) {
  const auto [shape, opa, opb, prec] = GetParam();
  const auto [m, n, k] = shape;
  la::Matrix a = make_operand(opa, m, k, 1);
  la::Matrix b = make_operand(opb, k, n, 2);
  la::Matrix c = la::random_uniform(m, n, 3);
  la::Matrix c_ref = la::materialize(c.view());

  const float alpha = 1.25f;
  const float beta = -0.5f;
  blas::gemm(opa, opb, m, n, k, alpha, a.data(), a.ld(), b.data(), b.ld(),
             beta, c.data(), c.ld(), prec);
  blas::gemm_reference(opa, opb, m, n, k, alpha, a.data(), a.ld(), b.data(),
                       b.ld(), beta, c_ref.data(), c_ref.ld(), prec);

  // fp32 accumulation error vs the double-accumulated reference grows with
  // k; elements are O(1) so an absolute k-scaled bound is appropriate.
  const double tol = 1e-6 * std::sqrt(static_cast<double>(k + 1)) * 16.0;
  EXPECT_LT(la::relative_difference(c.view(), c_ref.view()), tol)
      << "m=" << m << " n=" << n << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmParamTest,
    ::testing::Combine(
        ::testing::Values(std::tuple<index_t, index_t, index_t>{1, 1, 1},
                          std::tuple<index_t, index_t, index_t>{5, 3, 4},
                          std::tuple<index_t, index_t, index_t>{16, 16, 16},
                          std::tuple<index_t, index_t, index_t>{33, 17, 55},
                          std::tuple<index_t, index_t, index_t>{64, 1, 128},
                          std::tuple<index_t, index_t, index_t>{1, 64, 128},
                          std::tuple<index_t, index_t, index_t>{96, 80, 112},
                          // Cross the kMC=128 / kKC=256 cache-block edges
                          // and leave ragged kMR/kNR register tiles.
                          std::tuple<index_t, index_t, index_t>{130, 70, 300},
                          std::tuple<index_t, index_t, index_t>{257, 96, 129}),
        ::testing::Values(Op::NoTrans, Op::Trans),
        ::testing::Values(Op::NoTrans, Op::Trans),
        ::testing::Values(GemmPrecision::FP32, GemmPrecision::FP16_FP32)));

TEST(Gemm, BetaZeroIgnoresGarbageC) {
  const index_t n = 8;
  la::Matrix a = la::random_uniform(n, n, 1);
  la::Matrix b = la::random_uniform(n, n, 2);
  la::Matrix c(n, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      c(i, j) = std::numeric_limits<float>::quiet_NaN();
    }
  }
  blas::gemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0f, a.data(), a.ld(),
             b.data(), b.ld(), 0.0f, c.data(), c.ld());
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) EXPECT_FALSE(std::isnan(c(i, j)));
  }
}

TEST(Gemm, AlphaZeroOnlyScalesC) {
  const index_t n = 6;
  la::Matrix a = la::random_uniform(n, n, 1);
  la::Matrix b = la::random_uniform(n, n, 2);
  la::Matrix c = la::random_uniform(n, n, 3);
  la::Matrix expected = la::materialize(c.view());
  blas::gemm(Op::NoTrans, Op::NoTrans, n, n, n, 0.0f, a.data(), a.ld(),
             b.data(), b.ld(), 2.0f, c.data(), c.ld());
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      EXPECT_FLOAT_EQ(c(i, j), 2.0f * expected(i, j));
    }
  }
}

TEST(Gemm, KZeroActsAsScale) {
  la::Matrix c = la::random_uniform(4, 4, 3);
  la::Matrix expected = la::materialize(c.view());
  blas::gemm(Op::NoTrans, Op::NoTrans, 4, 4, 0, 1.0f, nullptr, 4, nullptr, 1,
             0.5f, c.data(), c.ld());
  for (index_t j = 0; j < 4; ++j) {
    for (index_t i = 0; i < 4; ++i) {
      EXPECT_FLOAT_EQ(c(i, j), 0.5f * expected(i, j));
    }
  }
}

TEST(Gemm, EmptyOutputIsNoop) {
  // m == 0 and n == 0 are valid degenerate calls.
  blas::gemm(Op::NoTrans, Op::NoTrans, 0, 4, 4, 1.0f, nullptr, 1, nullptr, 4,
             0.0f, nullptr, 1);
  blas::gemm(Op::NoTrans, Op::NoTrans, 4, 0, 4, 1.0f, nullptr, 4, nullptr, 4,
             0.0f, nullptr, 4);
}

TEST(Gemm, Fp16PathRoundsInputs) {
  // Pick a value with a long mantissa: fp16 rounding must change the result.
  const index_t n = 1;
  la::Matrix a(1, 1);
  la::Matrix b(1, 1);
  la::Matrix c(1, 1);
  a(0, 0) = 1.0009765625f + 0x1.0p-12f; // not representable in fp16
  b(0, 0) = 1.0f;
  blas::gemm(Op::NoTrans, Op::NoTrans, n, n, 1, 1.0f, a.data(), 1, b.data(), 1,
             0.0f, c.data(), 1, blas::GemmPrecision::FP16_FP32);
  EXPECT_EQ(c(0, 0), float(half(a(0, 0))));
  EXPECT_NE(c(0, 0), a(0, 0));
}

TEST(Gemm, SubviewLeadingDimensions) {
  // Operate on an interior block of a larger matrix.
  la::Matrix big = la::random_uniform(10, 10, 4);
  la::Matrix a = la::random_uniform(3, 4, 1);
  la::Matrix b = la::random_uniform(4, 3, 2);
  la::Matrix expected(3, 3);
  blas::gemm(Op::NoTrans, Op::NoTrans, 3, 3, 4, 1.0f, a.data(), a.ld(),
             b.data(), b.ld(), 0.0f, expected.data(), expected.ld());
  float* cptr = &big(2, 5);
  blas::gemm(Op::NoTrans, Op::NoTrans, 3, 3, 4, 1.0f, a.data(), a.ld(),
             b.data(), b.ld(), 0.0f, cptr, big.ld());
  for (index_t j = 0; j < 3; ++j) {
    for (index_t i = 0; i < 3; ++i) {
      EXPECT_FLOAT_EQ(big(2 + i, 5 + j), expected(i, j));
    }
  }
}

TEST(Gemm, RejectsBadArguments) {
  la::Matrix a = la::random_uniform(4, 4, 1);
  EXPECT_THROW(blas::gemm(Op::NoTrans, Op::NoTrans, -1, 4, 4, 1.0f, a.data(),
                          4, a.data(), 4, 0.0f, a.data(), 4),
               InvalidArgument);
  // lda smaller than the stored row count.
  EXPECT_THROW(blas::gemm(Op::NoTrans, Op::NoTrans, 4, 4, 4, 1.0f, a.data(),
                          2, a.data(), 4, 0.0f, a.data(), 4),
               InvalidArgument);
  // Null pointers with nonzero work.
  EXPECT_THROW(blas::gemm(Op::NoTrans, Op::NoTrans, 4, 4, 4, 1.0f, nullptr, 4,
                          a.data(), 4, 0.0f, a.data(), 4),
               InvalidArgument);
}

TEST(Gemm, BaselineKernelMatchesBlocked) {
  // The seed pack-and-multiply kernel survives as the benchmark baseline;
  // both kernels must stay within reference tolerance of each other.
  const index_t m = 150;
  const index_t n = 90;
  const index_t k = 260;
  la::Matrix a = la::random_uniform(m, k, 1);
  la::Matrix b = la::random_uniform(k, n, 2);
  la::Matrix c_blocked = la::random_uniform(m, n, 3);
  la::Matrix c_baseline = la::materialize(c_blocked.view());
  blas::gemm(Op::NoTrans, Op::NoTrans, m, n, k, 1.5f, a.data(), a.ld(),
             b.data(), b.ld(), 0.25f, c_blocked.data(), c_blocked.ld());
  blas::gemm_baseline(Op::NoTrans, Op::NoTrans, m, n, k, 1.5f, a.data(),
                      a.ld(), b.data(), b.ld(), 0.25f, c_baseline.data(),
                      c_baseline.ld());
  const double tol = 1e-6 * std::sqrt(static_cast<double>(k + 1)) * 16.0;
  EXPECT_LT(la::relative_difference(c_blocked.view(), c_baseline.view()), tol);
}

TEST(Gemm, SplittingKIsBitwiseInvariant) {
  // The OOC drivers re-slice one multiply into several k-panels and are
  // tested to produce identical bits; the host kernel must honor that.
  const index_t m = 96;
  const index_t n = 41;
  const index_t k = 300;
  la::Matrix a = la::random_uniform(m, k, 4);
  la::Matrix b = la::random_uniform(k, n, 5);
  la::Matrix c_whole(m, n);
  la::Matrix c_split(m, n);
  blas::gemm(Op::NoTrans, Op::NoTrans, m, n, k, 1.0f, a.data(), a.ld(),
             b.data(), b.ld(), 0.0f, c_whole.data(), c_whole.ld());
  const index_t k1 = 113; // awkward split, not a block multiple
  blas::gemm(Op::NoTrans, Op::NoTrans, m, n, k1, 1.0f, a.data(), a.ld(),
             b.data(), b.ld(), 0.0f, c_split.data(), c_split.ld());
  blas::gemm(Op::NoTrans, Op::NoTrans, m, n, k - k1, 1.0f, &a(0, k1), a.ld(),
             &b(k1, 0), b.ld(), 1.0f, c_split.data(), c_split.ld());
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      EXPECT_EQ(c_whole(i, j), c_split(i, j)) << "i=" << i << " j=" << j;
    }
  }
}

// Regression: calling gemm from inside a parallel_for body used to re-enter
// the global pool's round state and deadlock or corrupt pending_.
TEST(Gemm, CallableFromInsideParallelForBody) {
  const index_t n = 48;
  la::Matrix a = la::random_uniform(n, n, 1);
  la::Matrix b = la::random_uniform(n, n, 2);
  la::Matrix expected(n, n);
  blas::gemm_reference(Op::NoTrans, Op::NoTrans, n, n, n, 1.0f, a.data(),
                       a.ld(), b.data(), b.ld(), 0.0f, expected.data(),
                       expected.ld());
  constexpr index_t kSlots = 8;
  std::vector<la::Matrix> results;
  for (index_t s = 0; s < kSlots; ++s) results.emplace_back(n, n);
  ThreadPool::global().parallel_for(kSlots, [&](index_t s0, index_t s1) {
    for (index_t s = s0; s < s1; ++s) {
      blas::gemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0f, a.data(), a.ld(),
                 b.data(), b.ld(), 0.0f, results[static_cast<size_t>(s)].data(),
                 results[static_cast<size_t>(s)].ld());
    }
  });
  const double tol = 1e-6 * std::sqrt(static_cast<double>(n + 1)) * 16.0;
  for (const auto& r : results) {
    EXPECT_LT(la::relative_difference(r.view(), expected.view()), tol);
  }
}

TEST(Gemm, PackBuffersReusedAcrossCalls) {
  const index_t n = 64;
  la::Matrix a = la::random_uniform(n, n, 1);
  la::Matrix b = la::random_uniform(n, n, 2);
  la::Matrix c(n, n);
  // First call may grow the thread-local pack scratch...
  blas::gemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0f, a.data(), a.ld(),
             b.data(), b.ld(), 0.0f, c.data(), c.ld());
  const std::int64_t warm = blas::gemm_pack_allocations();
  // ...steady state (same or smaller shapes) must not allocate at all.
  for (int round = 0; round < 5; ++round) {
    blas::gemm(Op::NoTrans, Op::Trans, n, n / 2, n, 1.0f, a.data(), a.ld(),
               b.data(), b.ld(), 0.5f, c.data(), c.ld());
  }
  EXPECT_EQ(blas::gemm_pack_allocations(), warm);
}

TEST(Gemm, FlopCountConvention) {
  EXPECT_EQ(blas::gemm_flops(2, 3, 4), 48);
  EXPECT_EQ(blas::gemm_flops(65536, 131072, 65536),
            2LL * 65536 * 131072 * 65536);
}

TEST(Gemm, OpShapeHelpers) {
  EXPECT_EQ(blas::op_rows(Op::NoTrans, 3, 7), 3);
  EXPECT_EQ(blas::op_cols(Op::NoTrans, 3, 7), 7);
  EXPECT_EQ(blas::op_rows(Op::Trans, 3, 7), 7);
  EXPECT_EQ(blas::op_cols(Op::Trans, 3, 7), 3);
}

} // namespace
} // namespace rocqr
