// Level-2 BLAS (gemv/ger) and the condition-number estimator.
#include <gtest/gtest.h>

#include <cmath>

#include "blas/gemm.hpp"
#include "blas/level2.hpp"
#include "common/error.hpp"
#include "la/condition.hpp"
#include "la/generate.hpp"
#include "la/matrix.hpp"
#include "la/norms.hpp"

namespace rocqr {
namespace {

TEST(Gemv, NoTransMatchesGemm) {
  const index_t m = 17;
  const index_t n = 9;
  la::Matrix a = la::random_uniform(m, n, 1);
  la::Matrix x = la::random_uniform(n, 1, 2);
  la::Matrix y = la::random_uniform(m, 1, 3);
  la::Matrix expected = la::materialize(y.view());
  blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, m, 1, n, 1.5f, a.data(),
             a.ld(), x.data(), x.ld(), -0.5f, expected.data(), expected.ld());
  blas::gemv(blas::Op::NoTrans, m, n, 1.5f, a.data(), a.ld(), x.data(), 1,
             -0.5f, y.data(), 1);
  EXPECT_LT(la::relative_difference(y.view(), expected.view()), 1e-6);
}

TEST(Gemv, TransMatchesGemm) {
  const index_t m = 23;
  const index_t n = 11;
  la::Matrix a = la::random_uniform(m, n, 4);
  la::Matrix x = la::random_uniform(m, 1, 5);
  la::Matrix y = la::random_uniform(n, 1, 6);
  la::Matrix expected = la::materialize(y.view());
  blas::gemm(blas::Op::Trans, blas::Op::NoTrans, n, 1, m, 2.0f, a.data(),
             a.ld(), x.data(), x.ld(), 1.0f, expected.data(), expected.ld());
  blas::gemv(blas::Op::Trans, m, n, 2.0f, a.data(), a.ld(), x.data(), 1, 1.0f,
             y.data(), 1);
  EXPECT_LT(la::relative_difference(y.view(), expected.view()), 1e-6);
}

TEST(Gemv, StridedVectors) {
  const index_t m = 4;
  const index_t n = 3;
  la::Matrix a = la::random_uniform(m, n, 7);
  float x[6] = {1, -99, 2, -99, 3, -99};          // incx = 2
  float y[8] = {0, 7, 0, 7, 0, 7, 0, 7};          // incy = 2
  blas::gemv(blas::Op::NoTrans, m, n, 1.0f, a.data(), a.ld(), x, 2, 0.0f, y,
             2);
  for (index_t i = 0; i < m; ++i) {
    float want = 0.0f;
    for (index_t j = 0; j < n; ++j) want += a(i, j) * x[2 * j];
    EXPECT_NEAR(y[2 * i], want, 1e-5);
    EXPECT_FLOAT_EQ(y[2 * i + 1], 7.0f); // untouched
  }
}

TEST(Gemv, BetaZeroClearsGarbage) {
  la::Matrix a = la::random_uniform(3, 3, 8);
  float x[3] = {1, 2, 3};
  float y[3];
  y[0] = std::numeric_limits<float>::quiet_NaN();
  y[1] = y[2] = 0.0f;
  blas::gemv(blas::Op::NoTrans, 3, 3, 1.0f, a.data(), a.ld(), x, 1, 0.0f, y,
             1);
  EXPECT_FALSE(std::isnan(y[0]));
  // Degenerate and invalid shapes.
  blas::gemv(blas::Op::NoTrans, 0, 3, 1.0f, a.data(), 1, x, 1, 0.0f, y, 1);
  EXPECT_THROW(blas::gemv(blas::Op::NoTrans, -1, 3, 1.0f, a.data(), 1, x, 1,
                          0.0f, y, 1),
               InvalidArgument);
}

TEST(Ger, MatchesManualRank1) {
  const index_t m = 5;
  const index_t n = 4;
  la::Matrix a = la::random_uniform(m, n, 9);
  la::Matrix original = la::materialize(a.view());
  float x[5] = {1, 2, 3, 4, 5};
  float y[4] = {-1, 0.5f, 2, 0};
  blas::ger(m, n, 0.5f, x, 1, y, 1, a.data(), a.ld());
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      EXPECT_NEAR(a(i, j), original(i, j) + 0.5f * x[i] * y[j], 1e-6);
    }
  }
  // alpha = 0 is a no-op even with null vectors.
  blas::ger(m, n, 0.0f, nullptr, 1, nullptr, 1, a.data(), a.ld());
}

TEST(Condition, LargestSingularValueOfScaledIdentity) {
  la::Matrix a = la::identity(16);
  for (index_t i = 0; i < 16; ++i) a(i, i) = 3.0f;
  EXPECT_NEAR(la::estimate_largest_singular_value(a.view()), 3.0, 1e-3);
}

TEST(Condition, MatchesConstructedConditionNumber) {
  for (const double cond : {1.0, 10.0, 100.0, 1000.0}) {
    la::Matrix a = la::random_with_condition(120, 24, cond, 42);
    const double est = la::estimate_condition(a.view());
    EXPECT_NEAR(est / cond, 1.0, 0.15) << "cond=" << cond;
  }
}

TEST(Condition, SmallestSingularValueFromTriangularFactor) {
  // Diagonal R: singular values are the diagonal entries.
  la::Matrix r(5, 5);
  const float diag[5] = {4.0f, 2.0f, 1.0f, 0.5f, 0.25f};
  for (index_t i = 0; i < 5; ++i) r(i, i) = diag[i];
  EXPECT_NEAR(la::estimate_smallest_singular_value(r.view()), 0.25, 1e-3);
}

TEST(Condition, RejectsBadInputs) {
  la::Matrix wide(3, 5);
  EXPECT_THROW(la::estimate_largest_singular_value(wide.view()),
               InvalidArgument);
  la::Matrix rect(3, 4);
  EXPECT_THROW(la::estimate_smallest_singular_value(rect.view()),
               InvalidArgument);
  la::Matrix ok = la::random_normal(8, 4, 1);
  EXPECT_THROW(la::estimate_largest_singular_value(ok.view(), 0),
               InvalidArgument);
}

} // namespace
} // namespace rocqr
