// rocqr — command-line driver for the simulator and the OOC factorizations.
//
// Usage:
//   rocqr_cli qr    [--algo recursive|blocking|left|tiled] [--m N] [--n N]
//                   [--blocksize B] [--device NAME] [--capacity-gib G]
//                   [--pageable] [--no-qr-opt] [--no-staging] [--ramp]
//                   [--fp32] [--timeline] [--explain-plan[=dot]]
//                   [--csv FILE] [--chrome FILE]
//   rocqr_cli lu    (same flags; square matrices)
//   rocqr_cli chol  (same flags; square SPD)
//   rocqr_cli tsqr  [--devices N] [--shared-link] [--m N] [--n N] ...
//   rocqr_cli tune  [--algo ...] [--m N] [--n N] [--device NAME]
//   rocqr_cli specs                  # list device presets
//
// Devices: v100-32 (default), v100-16, a100, rtx3080, nvme-cpu, disk-1996.
// All runs are Phantom mode (schedule only), so any size works anywhere.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "common/telemetry.hpp"
#include "la/generate.hpp"
#include "la/matrix.hpp"
#include "lu/ooc_cholesky.hpp"
#include "lu/ooc_lu.hpp"
#include "ooc/gemm_engines.hpp"
#include "qr/autotune.hpp"
#include "qr/checkpoint.hpp"
#include "qr/factorize.hpp"
#include "qr/tsqr_ooc.hpp"
#include "report/table.hpp"
#include "serve/jobs_io.hpp"
#include "serve/scheduler.hpp"
#include "sim/device.hpp"
#include "sim/faults.hpp"
#include "sim/trace_export.hpp"

namespace {

using namespace rocqr;

struct Args {
  std::string command;
  std::map<std::string, std::string> values;
  std::vector<std::string> flags;

  bool has_flag(const std::string& name) const {
    for (const auto& f : flags) {
      if (f == name) return true;
    }
    return false;
  }
  std::string value(const std::string& name, const std::string& fallback) const {
    const auto it = values.find(name);
    return it == values.end() ? fallback : it->second;
  }
  index_t number(const std::string& name, index_t fallback) const {
    const auto it = values.find(name);
    return it == values.end() ? fallback : std::atoll(it->second.c_str());
  }
};

Args parse(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      std::cerr << "unexpected argument: " << token << "\n";
      std::exit(2);
    }
    token = token.substr(2);
    // --opt=value form: split before the value-option lookup.
    std::string inline_value;
    bool has_inline = false;
    if (const size_t eq = token.find('='); eq != std::string::npos) {
      inline_value = token.substr(eq + 1);
      token = token.substr(0, eq);
      has_inline = true;
    }
    // Value options take the next argv entry; everything else is a flag.
    static const char* value_opts[] = {"algo", "m",  "n",       "blocksize",
                                       "device", "capacity-gib", "csv",
                                       "chrome", "trace-json", "metrics-json",
                                       "faults", "checkpoint", "resume",
                                       "checkpoint-every", "jobs", "devices",
                                       "report", "watchdog",
                                       "failure-threshold", "max-fused"};
    bool takes_value = false;
    for (const char* v : value_opts) takes_value |= token == v;
    // --explain-plan is a flag with an optional =dot mode.
    if (token == "explain-plan") {
      if (has_inline && inline_value != "dot") {
        std::cerr << "--explain-plan only accepts the 'dot' mode\n";
        std::exit(2);
      }
      if (has_inline) {
        args.values[token] = inline_value;
      } else {
        args.flags.push_back(token);
      }
      continue;
    }
    if (takes_value) {
      if (has_inline) {
        args.values[token] = inline_value;
      } else if (i + 1 < argc) {
        args.values[token] = argv[++i];
      } else {
        std::cerr << "--" << token << " needs a value\n";
        std::exit(2);
      }
    } else if (has_inline) {
      std::cerr << "--" << token << " does not take a value\n";
      std::exit(2);
    } else {
      args.flags.push_back(token);
    }
  }
  return args;
}

sim::DeviceSpec spec_by_name(const std::string& name) {
  if (name == "v100-32") return sim::DeviceSpec::v100_32gb();
  if (name == "v100-16") return sim::DeviceSpec::v100_16gb();
  if (name == "a100") return sim::DeviceSpec::a100_40gb();
  if (name == "rtx3080") return sim::DeviceSpec::rtx3080_10gb();
  if (name == "nvme-cpu") return sim::DeviceSpec::nvme_cpu_node();
  if (name == "disk-1996") return sim::DeviceSpec::disk_cpu_1996();
  std::cerr << "unknown device '" << name
            << "' (try: v100-32, v100-16, a100, rtx3080, nvme-cpu, "
               "disk-1996)\n";
  std::exit(2);
}

void dump_traces(const sim::Device& dev, const Args& args) {
  if (args.has_flag("timeline")) {
    std::cout << "\n" << dev.trace().render_gantt(110);
  }
  if (const auto it = args.values.find("csv"); it != args.values.end()) {
    std::ofstream os(it->second);
    dev.trace().write_csv(os);
    std::cout << "trace csv written to " << it->second << "\n";
  }
  if (const auto it = args.values.find("chrome"); it != args.values.end()) {
    std::ofstream os(it->second);
    dev.trace().write_chrome_json(os);
    std::cout << "chrome trace written to " << it->second
              << " (load in chrome://tracing)\n";
  }
  if (const auto it = args.values.find("trace-json"); it != args.values.end()) {
    std::ofstream os(it->second);
    sim::write_chrome_trace(os, dev.trace(), &telemetry::SpanLog::global());
    std::cout << "chrome trace (with phase spans) written to " << it->second
              << " (load in chrome://tracing or Perfetto)\n";
  }
  if (const auto it = args.values.find("metrics-json");
      it != args.values.end()) {
    std::ofstream os(it->second);
    telemetry::MetricsRegistry::global().write_json(os);
    std::cout << "metrics snapshot written to " << it->second << "\n";
  }
}

void print_stats(const char* what, const qr::QrStats& stats) {
  std::cout << what << ": " << format_seconds(stats.total_seconds)
            << " simulated\n"
            << "  panel " << format_seconds(stats.panel_seconds) << ", gemm "
            << format_seconds(stats.gemm_seconds) << ", H2D "
            << format_bytes(stats.bytes_h2d) << " ("
            << format_seconds(stats.h2d_seconds) << "), D2H "
            << format_bytes(stats.bytes_d2h) << " ("
            << format_seconds(stats.d2h_seconds) << ")\n"
            << "  sustained " << format_flops_rate(stats.sustained_flops_per_s())
            << ", peak device memory " << format_bytes(stats.peak_device_bytes)
            << "\n";
}

int run_factorization(const Args& args) {
  const bool recursive = args.value("algo", "recursive") == "recursive";
  const index_t n = args.number("n", 131072);
  const index_t m = args.number("m", args.command == "qr" ? n : n);
  const index_t blocksize = args.number("blocksize", 16384);

  sim::DeviceSpec spec = spec_by_name(args.value("device", "v100-32"));
  if (args.values.count("capacity-gib") != 0) {
    spec.memory_capacity = args.number("capacity-gib", 32) * (1LL << 30);
  }
  sim::Device dev(spec, sim::ExecutionMode::Phantom);
  dev.model().install_paper_calibration();
  dev.set_host_memory_pinned(!args.has_flag("pageable"));
  if (const auto it = args.values.find("faults"); it != args.values.end()) {
    dev.install_faults(sim::FaultPlan::parse(it->second));
  }

  std::cout << args.command << " " << format_shape(m, n) << " on " << spec.name
            << " (" << format_bytes(spec.memory_capacity) << "), "
            << args.value("algo", "recursive") << ", b=" << blocksize << "\n";

  if (args.command == "qr") {
    const bool explain = args.has_flag("explain-plan") ||
                         args.values.count("explain-plan") != 0;
    const bool explain_dot = args.value("explain-plan", "") == "dot";
    ooc::PlanLog plan_log;
    qr::QrOptions opts;
    opts.blocksize = blocksize;
    if (explain) opts.plan_log = &plan_log;
    opts.qr_level_opt = !args.has_flag("no-qr-opt");
    opts.staging_buffer = !args.has_flag("no-staging");
    opts.ramp_up = args.has_flag("ramp");
    if (args.has_flag("fp32")) opts.precision = blas::GemmPrecision::FP32;
    opts.abft = args.has_flag("abft");
    opts.check_finite = args.has_flag("check-finite");
    opts.checkpoint_every = args.number("checkpoint-every", 1);
    std::unique_ptr<qr::FileCheckpointSink> sink;
    if (const auto it = args.values.find("checkpoint");
        it != args.values.end()) {
      sink = std::make_unique<qr::FileCheckpointSink>(it->second);
      opts.checkpoint_sink = sink.get();
    }
    auto a = sim::HostMutRef::phantom(m, n);
    auto r = sim::HostMutRef::phantom(n, n);
    const std::string algo = args.value("algo", "recursive");
    const std::optional<qr::Algorithm> alg = qr::parse_algorithm(algo);
    if (!alg || *alg == qr::Algorithm::MultiGpu ||
        *alg == qr::Algorithm::Tsqr) {
      std::cerr << "unknown --algo '" << algo
                << "' (expected recursive, blocking, left or tiled)\n";
      return 2;
    }
    const qr::QrProblem problem{{&dev}, a, r, *alg, opts};
    qr::QrStats stats;
    if (const auto it = args.values.find("resume"); it != args.values.end()) {
      const qr::Checkpoint cp = qr::load_checkpoint_file(it->second);
      std::cout << "resuming " << cp.driver << " QR from unit "
                << cp.units_done << " (" << cp.columns_done
                << " columns done)\n";
      stats = qr::resume(problem, cp);
    } else {
      stats = qr::factorize(problem);
    }
    print_stats("QR", stats);
    if (explain) {
      std::cout << "\nLowered task graphs (--explain-plan"
                << (explain_dot ? "=dot" : "") << "):\n"
                << (explain_dot ? plan_log.dot : plan_log.text);
    }
  } else {
    lu::FactorOptions opts;
    opts.blocksize = blocksize;
    opts.staging_buffer = !args.has_flag("no-staging");
    opts.ramp_up = args.has_flag("ramp");
    if (args.has_flag("fp32")) opts.precision = blas::GemmPrecision::FP32;
    auto a = sim::HostMutRef::phantom(m, n);
    const lu::FactorStats stats =
        args.command == "lu"
            ? (recursive ? lu::recursive_ooc_lu(dev, a, opts)
                         : lu::blocking_ooc_lu(dev, a, opts))
            : (recursive ? lu::recursive_ooc_cholesky(dev, a, opts)
                         : lu::blocking_ooc_cholesky(dev, a, opts));
    print_stats(args.command == "lu" ? "LU" : "Cholesky", stats);
  }
  dump_traces(dev, args);
  return 0;
}

int run_tsqr(const Args& args) {
  const index_t n = args.number("n", 16384);
  const index_t m = args.number("m", 8 * n);
  const index_t blocksize = args.number("blocksize", 16384);
  const int ndev = static_cast<int>(args.number("devices", 4));
  if (ndev < 1) {
    std::cerr << "--devices must be >= 1\n";
    return 2;
  }

  sim::DeviceSpec spec = spec_by_name(args.value("device", "v100-32"));
  if (args.values.count("capacity-gib") != 0) {
    spec.memory_capacity = args.number("capacity-gib", 32) * (1LL << 30);
  }
  auto link = args.has_flag("shared-link")
                  ? std::make_shared<sim::SharedHostLink>()
                  : std::shared_ptr<sim::SharedHostLink>();
  std::vector<std::unique_ptr<sim::Device>> fleet;
  std::vector<sim::Device*> ptrs;
  for (int i = 0; i < ndev; ++i) {
    fleet.push_back(std::make_unique<sim::Device>(
        spec, sim::ExecutionMode::Phantom, link));
    fleet.back()->model().install_paper_calibration();
    fleet.back()->set_host_memory_pinned(!args.has_flag("pageable"));
    ptrs.push_back(fleet.back().get());
  }

  qr::QrOptions opts;
  opts.blocksize = blocksize;
  opts.qr_level_opt = !args.has_flag("no-qr-opt");
  opts.staging_buffer = !args.has_flag("no-staging");
  opts.ramp_up = args.has_flag("ramp");
  if (args.has_flag("fp32")) opts.precision = blas::GemmPrecision::FP32;
  opts.checkpoint_every = args.number("checkpoint-every", 1);
  std::unique_ptr<qr::FileCheckpointSink> sink;
  if (const auto it = args.values.find("checkpoint");
      it != args.values.end()) {
    sink = std::make_unique<qr::FileCheckpointSink>(it->second);
    opts.checkpoint_sink = sink.get();
  }

  const index_t leaves =
      qr::detail::tsqr_leaf_count(m, n, static_cast<size_t>(ndev));
  std::cout << "tsqr " << format_shape(m, n) << " over " << ndev << " x "
            << spec.name << " (" << format_bytes(spec.memory_capacity)
            << " each" << (link ? ", shared host link" : "") << "), "
            << leaves << " leaves, b=" << blocksize << "\n";

  auto a = sim::HostMutRef::phantom(m, n);
  auto r = sim::HostMutRef::phantom(n, n);
  qr::QrStats stats;
  if (const auto it = args.values.find("resume"); it != args.values.end()) {
    const qr::Checkpoint cp = qr::load_checkpoint_file(it->second);
    std::cout << "resuming " << cp.driver << " QR from unit " << cp.units_done
              << "\n";
    stats = qr::resume(qr::QrProblem{ptrs, a, r, qr::Algorithm::Tsqr, opts},
                       cp);
  } else {
    stats =
        qr::factorize(qr::QrProblem{ptrs, a, r, qr::Algorithm::Tsqr, opts});
  }
  print_stats("TSQR", stats);
  dump_traces(*fleet.front(), args);
  return 0;
}

int run_tune(const Args& args) {
  const bool recursive = args.value("algo", "recursive") == "recursive";
  const index_t n = args.number("n", 131072);
  const index_t m = args.number("m", n);
  sim::DeviceSpec spec = spec_by_name(args.value("device", "v100-32"));
  if (args.values.count("capacity-gib") != 0) {
    spec.memory_capacity = args.number("capacity-gib", 32) * (1LL << 30);
  }
  const qr::TuneResult result = qr::tune_blocksize(spec, m, n, recursive);
  report::Table t("blocksize sweep for " + std::string(recursive
                                                           ? "recursive"
                                                           : "blocking") +
                      " QR of " + format_shape(m, n) + " on " + spec.name +
                      ":",
                  {"blocksize", "simulated time", "peak memory"});
  for (const qr::TunePoint& p : result.sweep) {
    t.add_row({std::to_string(p.blocksize),
               p.fits ? format_seconds(p.seconds) : "OOM",
               format_bytes(p.peak_bytes)});
  }
  std::cout << t.render();
  std::cout << "recommended blocksize: " << result.best_blocksize << " ("
            << format_seconds(result.best_seconds) << ")\n";
  return 0;
}

int run_serve(const Args& args) {
  const auto jobs_it = args.values.find("jobs");
  if (jobs_it == args.values.end()) {
    std::cerr << "serve needs --jobs FILE (a JSON array of job objects)\n";
    return 2;
  }
  std::ifstream is(jobs_it->second);
  if (!is) {
    std::cerr << "cannot read jobs file '" << jobs_it->second << "'\n";
    return 2;
  }
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const std::vector<serve::JobSpec> specs =
      serve::parse_jobs_json(buffer.str());

  serve::ServeConfig cfg;
  cfg.spec = spec_by_name(args.value("device", "v100-32"));
  if (args.values.count("capacity-gib") != 0) {
    cfg.spec.memory_capacity = args.number("capacity-gib", 32) * (1LL << 30);
  }
  cfg.devices = static_cast<int>(args.number("devices", 1));
  cfg.mode = args.has_flag("real") ? sim::ExecutionMode::Real
                                   : sim::ExecutionMode::Phantom;
  cfg.shared_link = args.has_flag("shared-link");
  cfg.preemption = !args.has_flag("no-preempt");
  cfg.checkpoint_every = args.number("checkpoint-every", 1);
  if (const auto it = args.values.find("watchdog"); it != args.values.end()) {
    cfg.watchdog_timeout = std::atof(it->second.c_str());
  }
  cfg.device_failure_threshold =
      static_cast<int>(args.number("failure-threshold", 3));
  cfg.max_fused_jobs = static_cast<int>(args.number("max-fused", 1));
  if (const auto it = args.values.find("faults"); it != args.values.end()) {
    cfg.device_faults.assign(static_cast<size_t>(cfg.devices), it->second);
  }

  serve::Scheduler sched(cfg);
  // Real mode needs live host buffers for the fleet's lifetime; one pair
  // per job, seeded by submission index for reproducibility.
  std::vector<std::unique_ptr<la::Matrix>> storage;
  for (size_t i = 0; i < specs.size(); ++i) {
    serve::JobSpec job = specs[i];
    if (cfg.mode == sim::ExecutionMode::Real) {
      storage.push_back(std::make_unique<la::Matrix>(
          la::random_normal(job.m, job.n, 1000 + i)));
      storage.push_back(std::make_unique<la::Matrix>(job.n, job.n));
      job.a = storage[storage.size() - 2]->view();
      job.r = storage[storage.size() - 1]->view();
    }
    const serve::AdmissionDecision d = sched.submit(job);
    std::cout << (d.admitted ? "admitted" : "REJECTED") << " " << job.name
              << " " << format_shape(job.m, job.n);
    if (d.admitted) {
      std::cout << " b=" << d.blocksize << " predicted "
                << format_seconds(d.predicted_seconds) << ", peak "
                << format_bytes(d.predicted_peak_bytes);
    } else {
      std::cout << ": " << d.reason;
    }
    std::cout << "\n";
  }

  const serve::FleetReport rep = sched.run();

  report::Table t("fleet of " + std::to_string(rep.devices) + " x " +
                      cfg.spec.name + ":",
                  {"job", "state", "prio", "b", "attempts", "preempt",
                   "retries", "migr", "device time", "predicted"});
  for (const serve::JobReport& j : rep.jobs) {
    t.add_row({j.name, to_string(j.state), std::to_string(j.priority),
               std::to_string(j.blocksize), std::to_string(j.attempts),
               std::to_string(j.preemptions), std::to_string(j.retries),
               std::to_string(j.migrations),
               format_seconds(j.stats.total_seconds),
               format_seconds(j.predicted_seconds)});
  }
  std::cout << t.render();
  std::cout << "makespan " << format_seconds(rep.makespan_seconds) << ", "
            << rep.jobs_completed << "/" << rep.jobs_admitted
            << " jobs completed, " << rep.jobs_rejected << " rejected, "
            << rep.jobs_preempted << " preemptions, " << rep.job_retries
            << " retries, " << rep.units_completed << " units\n";
  if (!rep.queue_waits.empty()) {
    // Exact simulated queue-wait tail from the per-dispatch record (the
    // telemetry histogram's power-of-two buckets are up to 2x coarser).
    std::cout << "queue wait p50 " << format_seconds(rep.queue_wait_p50)
              << ", p95 " << format_seconds(rep.queue_wait_p95) << ", p99 "
              << format_seconds(rep.queue_wait_p99) << " over "
              << rep.queue_waits.size() << " dispatch(es)\n";
  }
  if (rep.devices_lost > 0 || rep.jobs_shed > 0) {
    std::cout << "fleet degraded: " << rep.devices_lost
              << " device(s) lost, " << rep.jobs_migrated << " migration(s), "
              << rep.jobs_shed << " job(s) shed (health:";
    for (const std::string& h : rep.device_health) std::cout << " " << h;
    std::cout << ")\n";
  }

  if (const auto it = args.values.find("report"); it != args.values.end()) {
    std::ofstream os(it->second);
    serve::write_fleet_report_json(os, rep);
    std::cout << "fleet report written to " << it->second << "\n";
  }
  if (rep.jobs_failed > 0) return 5;
  return rep.jobs_shed > 0 ? 7 : 0;
}

int run_specs() {
  report::Table t("device presets:",
                  {"name", "memory", "TC peak", "fp32 peak", "link"});
  for (const auto& spec :
       {sim::DeviceSpec::v100_32gb(), sim::DeviceSpec::v100_16gb(),
        sim::DeviceSpec::a100_40gb(), sim::DeviceSpec::rtx3080_10gb(),
        sim::DeviceSpec::nvme_cpu_node(), sim::DeviceSpec::disk_cpu_1996()}) {
    t.add_row({spec.name, format_bytes(spec.memory_capacity),
               format_flops_rate(spec.tc_peak_flops),
               format_flops_rate(spec.fp32_peak_flops),
               format_bytes(static_cast<bytes_t>(spec.h2d_bytes_per_s)) +
                   "/s"});
  }
  std::cout << t.render();
  return 0;
}

void usage() {
  std::cout <<
      R"(rocqr_cli — drive the out-of-core factorization simulator

commands:
  qr | lu | chol   simulate one factorization at paper scale
  tsqr             fleet-wide out-of-core TSQR: one huge factorization
                   split across --devices N (supports --shared-link,
                   --checkpoint/--resume; capacity scales with the fleet)
  tune             sweep blocksizes, recommend the fastest
  serve            schedule a batch of QR jobs over a device fleet
  specs            list device presets

common options:
  --algo recursive|blocking|left|tiled
                              (default recursive; left/tiled = QR only)
  --m N --n N                 matrix size (default 131072)
  --blocksize B               panel width (default 16384)
  --device NAME               v100-32 | v100-16 | a100 | rtx3080
  --capacity-gib G            override device memory
  --pageable                  pageable host buffers (half link rate)
  --no-qr-opt --no-staging --ramp --fp32
  --timeline                  print the per-engine Gantt chart
  --explain-plan              print every task graph the driver lowered
                              (node/edge/fence counts); --explain-plan=dot
                              dumps them as Graphviz digraphs (QR only)
  --csv FILE --chrome FILE    export the trace
  --trace-json FILE           Chrome/Perfetto trace with engine, stream and
                              nested phase-span tracks (also --trace-json=FILE)
  --metrics-json FILE         JSON snapshot of the global metrics registry

fault tolerance (QR; see docs/FAULTS.md):
  --faults SPEC               install a seeded fault plan on the device, e.g.
                              "h2d:transient:p=0.01;alloc:oom:after=3;seed=7"
  --abft                      checksum-verify the OOC GEMMs
  --check-finite              scan the host R and Q for non-finite values
                              after the factorization (exit 6 on a hit)
  --checkpoint FILE           write panel-level checkpoints to FILE
  --checkpoint-every K        checkpoint every K panel units (default 1)
  --resume FILE               restart from the checkpoint in FILE

serving (see docs/SERVING.md):
  --jobs FILE                 JSON array of job objects (required; a job with
                              "algorithm": "tsqr" is gang-scheduled across
                              the whole fleet)
  --devices N                 fleet size (default 1)
  --real                      execute numerics (default: phantom schedules)
  --shared-link               one PCIe root complex for the whole fleet
  --no-preempt                disable checkpoint-boundary preemption
  --faults SPEC               install the fault plan on every fleet device
                              ("site:fatal" kills the device permanently —
                              the scheduler migrates its jobs)
  --watchdog SEC              per-op simulated watchdog: an op longer than
                              SEC strikes its device (default off)
  --failure-threshold N       consecutive failed attempts before a device
                              is declared dead (default 3)
  --max-fused K               fuse up to K same-shape deadline-free
                              "blocking" jobs into one batched node program
                              per device (default 1 = off)
  --report FILE               write the JSON fleet report
  exit 0 when every admitted job completes, 5 when any job failed,
  7 when none failed but load-shedding dropped deadline jobs

exit codes:
  0 success            2 usage error          3 invalid configuration
  4 device out of memory                      5 fault budget exhausted
  6 numerical check failed                    7 jobs load-shed (serve)
  1 other error
)";
}

} // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  try {
    if (args.command == "qr" || args.command == "lu" ||
        args.command == "chol") {
      return run_factorization(args);
    }
    if (args.command == "tsqr") return run_tsqr(args);
    if (args.command == "tune") return run_tune(args);
    if (args.command == "serve") return run_serve(args);
    if (args.command == "specs") return run_specs();
    usage();
    return args.command.empty() ? 2 : (args.command == "help" ? 0 : 2);
  } catch (const rocqr::InvalidArgument& e) {
    std::cerr << "error: invalid configuration: " << e.what() << "\n";
    return 3;
  } catch (const rocqr::DeviceOutOfMemory& e) {
    std::cerr << "error: device out of memory: " << e.what() << "\n";
    return 4;
  } catch (const rocqr::FaultBudgetExhausted& e) {
    std::cerr << "error: fault budget exhausted: " << e.what() << "\n";
    return 5;
  } catch (const rocqr::DeviceLost& e) {
    std::cerr << "error: device lost: " << e.what() << "\n";
    return 5;
  } catch (const rocqr::TransferError& e) {
    std::cerr << "error: unrecovered transfer failure: " << e.what() << "\n";
    return 5;
  } catch (const rocqr::NumericalError& e) {
    std::cerr << "error: numerical check failed: " << e.what() << "\n";
    return 6;
  } catch (const rocqr::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
