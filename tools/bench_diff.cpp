// bench_diff — compares a freshly generated bench JSON against a committed
// baseline with a per-metric tolerance, so CI fails loudly when a
// performance metric drifts (regression OR unexplained improvement: both
// mean the committed baseline no longer describes the code).
//
//   bench_diff <baseline.json> <fresh.json> [--tolerance 0.05]
//              [--absolute 1e-9]
//
// Both files are flattened to (path -> number) leaves — e.g.
// "mixes[0].sweep[2].jobs_per_second" — and every numeric leaf of the
// baseline must exist in the fresh file and agree within
//   |fresh - base| <= absolute + tolerance * max(|base|, |fresh|).
// Leaves only present in the fresh file are reported but do not fail (new
// metrics land before their baseline). Non-numeric leaves (strings,
// booleans) are ignored: they are labels, not measurements.
//
// Exit status: 0 = within tolerance, 1 = drifted / missing metric,
// 2 = usage or parse error.
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

namespace {

struct Parser {
  const std::string& text;
  const std::string& file;
  size_t pos = 0;
  std::map<std::string, double> leaves;

  [[noreturn]] void fail(const std::string& what) const {
    std::cerr << "bench_diff: " << file << ": " << what << " at offset "
              << pos << "\n";
    std::exit(2);
  }

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  char peek() {
    skip_ws();
    if (pos >= text.size()) fail("unexpected end of input");
    return text[pos];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + text[pos] + "'");
    }
    ++pos;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos < text.size() && text[pos] != '"') {
      char c = text[pos++];
      if (c == '\\' && pos < text.size()) out.push_back(text[pos++]);
      else out.push_back(c);
    }
    if (pos >= text.size()) fail("unterminated string");
    ++pos;
    return out;
  }

  void parse_value(const std::string& path) {
    const char c = peek();
    if (c == '{') {
      ++pos;
      if (peek() == '}') { ++pos; return; }
      for (;;) {
        const std::string key = parse_string();
        expect(':');
        parse_value(path.empty() ? key : path + "." + key);
        if (peek() == ',') { ++pos; continue; }
        expect('}');
        return;
      }
    }
    if (c == '[') {
      ++pos;
      if (peek() == ']') { ++pos; return; }
      for (size_t i = 0;; ++i) {
        parse_value(path + "[" + std::to_string(i) + "]");
        if (peek() == ',') { ++pos; continue; }
        expect(']');
        return;
      }
    }
    if (c == '"') {
      parse_string(); // label, not a measurement
      return;
    }
    if (text.compare(pos, 4, "true") == 0) { pos += 4; return; }
    if (text.compare(pos, 5, "false") == 0) { pos += 5; return; }
    if (text.compare(pos, 4, "null") == 0) { pos += 4; return; }
    const size_t start = pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '-' || text[pos] == '+' || text[pos] == '.' ||
            text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
    }
    if (pos == start) fail("expected a value");
    const std::string span = text.substr(start, pos - start);
    try {
      size_t parsed = 0;
      const double v = std::stod(span, &parsed);
      if (parsed != span.size()) throw std::invalid_argument("trailing");
      leaves[path] = v;
    } catch (const std::exception&) {
      fail("malformed number '" + span + "'");
    }
  }
};

std::map<std::string, double> flatten_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    std::cerr << "bench_diff: cannot read " << path << "\n";
    std::exit(2);
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  const std::string text = buf.str();
  Parser p{text, path, 0, {}};
  p.parse_value("");
  p.skip_ws();
  if (p.pos != text.size()) p.fail("trailing content");
  return std::move(p.leaves);
}

} // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string fresh_path;
  double tolerance = 0.05;
  double absolute = 1e-9;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "bench_diff: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--tolerance") tolerance = std::atof(value().c_str());
    else if (arg == "--absolute") absolute = std::atof(value().c_str());
    else if (baseline_path.empty()) baseline_path = arg;
    else if (fresh_path.empty()) fresh_path = arg;
    else {
      std::cerr << "bench_diff: unexpected argument " << arg << "\n";
      std::exit(2);
    }
  }
  if (baseline_path.empty() || fresh_path.empty() || tolerance < 0 ||
      absolute < 0) {
    std::cerr << "usage: bench_diff <baseline.json> <fresh.json> "
                 "[--tolerance 0.05] [--absolute 1e-9]\n";
    return 2;
  }

  const auto baseline = flatten_file(baseline_path);
  const auto fresh = flatten_file(fresh_path);

  int drifted = 0;
  int missing = 0;
  int compared = 0;
  for (const auto& [path, base] : baseline) {
    const auto it = fresh.find(path);
    if (it == fresh.end()) {
      std::cerr << "MISSING  " << path << " (baseline " << base
                << ", absent from " << fresh_path << ")\n";
      ++missing;
      continue;
    }
    ++compared;
    const double now = it->second;
    const double limit =
        absolute + tolerance * std::max(std::fabs(base), std::fabs(now));
    if (std::fabs(now - base) > limit) {
      std::cerr << "DRIFT    " << path << ": baseline " << base << " -> "
                << now << " (|delta| " << std::fabs(now - base)
                << " > limit " << limit << ")\n";
      ++drifted;
    }
  }
  int extra = 0;
  for (const auto& [path, now] : fresh) {
    if (baseline.find(path) == baseline.end()) {
      std::cout << "new metric " << path << " = " << now
                << " (not in baseline)\n";
      ++extra;
    }
  }
  std::cout << "bench_diff: " << compared << " metric(s) compared, "
            << drifted << " drifted, " << missing << " missing, " << extra
            << " new (tolerance " << tolerance << ", absolute " << absolute
            << ")\n";
  return (drifted > 0 || missing > 0) ? 1 : 0;
}
