// Out-of-core QR end to end: factor a matrix that does NOT fit on the
// (simulated) accelerator, with real numerics, and show what the device did
// — the per-engine timeline, bytes moved, and the recursive-vs-blocking
// comparison at miniature scale.
//
//   ./build/examples/ooc_qr_demo [rows cols device_KiB]
#include <cstdlib>
#include <iostream>

#include "common/strings.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "qr/factorize.hpp"
#include "sim/device.hpp"

int main(int argc, char** argv) {
  using namespace rocqr;

  const index_t m = argc > 1 ? std::atoll(argv[1]) : 768;
  const index_t n = argc > 2 ? std::atoll(argv[2]) : 512;
  const bytes_t device_bytes =
      (argc > 3 ? std::atoll(argv[3]) : 1024) * 1024; // default 1 MiB

  const bytes_t matrix_bytes = static_cast<bytes_t>(m) * n * 4;
  std::cout << "Matrix: " << format_shape(m, n) << " fp32 ("
            << format_bytes(matrix_bytes) << "), simulated device memory: "
            << format_bytes(device_bytes) << "\n";
  if (matrix_bytes <= device_bytes) {
    std::cout << "(note: matrix fits on the device; shrink device_KiB to "
                 "force out-of-core behaviour)\n";
  }
  std::cout << "\n";

  const la::Matrix a = la::random_normal(m, n, 1);

  // Pick a panel width the device can hold with room for the GEMM pipelines
  // (the panel, its fp32 working set, plus streamed slabs ~ 6 panel-widths).
  index_t blocksize = 8;
  while (blocksize * 2 <= n &&
         static_cast<bytes_t>(m) * blocksize * 2 * 4 * 6 <= device_bytes) {
    blocksize *= 2;
  }
  std::cout << "Chosen QR blocksize: " << blocksize << "\n\n";

  qr::QrOptions opts;
  opts.blocksize = blocksize;
  opts.panel_base = 16;
  opts.precision = blas::GemmPrecision::FP16_FP32; // TensorCore contract

  for (const bool recursive : {false, true}) {
    sim::DeviceSpec spec = sim::DeviceSpec::v100_32gb();
    spec.memory_capacity = device_bytes;
    // Scale link/compute/efficiency knobs to the miniature problem so the
    // computation-vs-movement balance resembles the paper's (where movement
    // threatens to dominate): same story, 5 orders of magnitude smaller.
    spec.h2d_bytes_per_s = 1e9;
    spec.d2h_bytes_per_s = 1e9;
    spec.d2d_bytes_per_s = 64e9;
    spec.tc_peak_flops = 4e12;
    spec.fp32_peak_flops = 0.5e12;
    spec.gemm_dim_halfpoint = 48;
    spec.panel_halfpoint = 500;
    sim::Device dev(spec, sim::ExecutionMode::Real);

    la::Matrix q = la::materialize(a.view());
    la::Matrix r(n, n);
    qr::QrOptions run_opts = opts;
    if (!recursive) run_opts.staging_buffer = false; // conventional baseline
    qr::QrStats stats;
    try {
      stats = recursive
                  ? qr::factorize(qr::QrProblem{
                      {&dev}, q.view(), r.view(), qr::Algorithm::Recursive,
                      run_opts})
                  : qr::factorize(qr::QrProblem{
                      {&dev}, q.view(), r.view(), qr::Algorithm::Blocking,
                      run_opts});
    } catch (const DeviceOutOfMemory& e) {
      std::cerr << "Simulated device too small for this shape: " << e.what()
                << "\nIncrease device_KiB or shrink the matrix.\n";
      return 1;
    }

    std::cout << (recursive ? "=== Recursive OOC QR ===\n"
                            : "=== Blocking OOC QR (conventional) ===\n");
    std::cout << "  simulated time    : " << format_seconds(stats.total_seconds)
              << " (panel " << format_seconds(stats.panel_seconds) << ", gemm "
              << format_seconds(stats.gemm_seconds) << ")\n";
    std::cout << "  data moved        : H2D " << format_bytes(stats.bytes_h2d)
              << ", D2H " << format_bytes(stats.bytes_d2h) << "\n";
    std::cout << "  peak device memory: "
              << format_bytes(stats.peak_device_bytes) << " of "
              << format_bytes(device_bytes) << "\n";
    std::cout << "  sustained rate    : "
              << format_flops_rate(stats.sustained_flops_per_s()) << "\n";
    std::cout << "  residual |A-QR|/|A| = "
              << la::qr_residual(a.view(), q.view(), r.view()) << "\n\n";
    std::cout << dev.trace().render_gantt(100) << "\n";
  }
  return 0;
}
