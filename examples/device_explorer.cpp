// §6 outlook, interactively: how does the recursive-vs-blocking speedup
// change across accelerator generations and memory capacities?
//
//   ./build/examples/device_explorer
#include <iostream>
#include <vector>

#include "common/strings.hpp"
#include "qr/factorize.hpp"
#include "report/table.hpp"
#include "sim/device.hpp"

namespace {

using namespace rocqr;

double total_seconds(bool recursive, const sim::DeviceSpec& spec,
                     index_t blocksize) {
  sim::Device dev(spec, sim::ExecutionMode::Phantom);
  if (spec.name.find("V100") != std::string::npos) {
    dev.model().install_paper_calibration();
  }
  auto a = sim::HostMutRef::phantom(131072, 131072);
  auto r = sim::HostMutRef::phantom(131072, 131072);
  qr::QrOptions opts;
  opts.blocksize = blocksize;
  if (!recursive) opts.staging_buffer = false; // conventional baseline
  const qr::QrStats stats =
      recursive ? qr::factorize(
          qr::QrProblem{{&dev}, a, r, qr::Algorithm::Recursive, opts})
                : qr::factorize(
                    qr::QrProblem{{&dev}, a, r, qr::Algorithm::Blocking, opts});
  return stats.total_seconds;
}

} // namespace

int main() {
  std::cout << "Out-of-core QR of a 131072 x 131072 fp32 matrix (64 GiB)\n"
            << "across simulated accelerators (Phantom mode)\n\n";

  struct Config {
    sim::DeviceSpec spec;
    index_t blocksize;
  };
  // Blocksize shrinks with memory — the blocking algorithm's working set
  // (panel + R12 + streamed slabs) must fit, which is precisely the
  // constraint the paper says cripples it on small-memory cards.
  std::vector<Config> configs = {
      {sim::DeviceSpec::v100_32gb(), 16384},
      {sim::DeviceSpec::v100_16gb(), 8192},
      {sim::DeviceSpec::a100_40gb(), 16384},
      {sim::DeviceSpec::rtx3080_10gb(), 4096},
  };

  report::Table table("", {"device", "blocksize", "blocking QR",
                           "recursive QR", "speedup"});
  for (const Config& cfg : configs) {
    try {
      const double blk = total_seconds(false, cfg.spec, cfg.blocksize);
      const double rec = total_seconds(true, cfg.spec, cfg.blocksize);
      table.add_row({cfg.spec.name, std::to_string(cfg.blocksize),
                     format_seconds(blk), format_seconds(rec),
                     format_fixed(blk / rec, 2) + "x"});
    } catch (const DeviceOutOfMemory&) {
      table.add_row({cfg.spec.name, std::to_string(cfg.blocksize),
                     "OOM", "OOM", "-"});
    }
  }
  std::cout << table.render() << "\n";
  std::cout
      << "The paper's §6 prediction: the faster the compute relative to the\n"
      << "link and the smaller the memory, the bigger recursion's advantage\n"
      << "(A100 and consumer GPUs amplify the effect seen on the V100).\n";
  return 0;
}
