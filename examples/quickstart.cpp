// Quickstart: factor a matrix with the in-core recursive CGS QR and check
// the factorization quality — the 60-second tour of the library.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [rows cols]
#include <cstdlib>
#include <iostream>

#include "common/strings.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "qr/incore.hpp"

int main(int argc, char** argv) {
  using namespace rocqr;

  const index_t m = argc > 1 ? std::atoll(argv[1]) : 512;
  const index_t n = argc > 2 ? std::atoll(argv[2]) : 256;
  if (m < n || n < 1) {
    std::cerr << "usage: quickstart [rows cols] with rows >= cols >= 1\n";
    return 1;
  }

  std::cout << "Factoring a random " << format_shape(m, n)
            << " matrix with recursive classic Gram-Schmidt QR\n\n";
  const la::Matrix a = la::random_normal(m, n, /*seed=*/42);

  // The paper's in-core solver (Zhang et al., HPDC'20): recursive CGS with
  // GEMM-rich updates. FP32 here; see ooc_qr_demo for the TensorCore path.
  const qr::QrFactors f = qr::recursive_cgs(a.view(), /*base=*/32);

  std::cout << "  factorization residual |A - QR|/|A| : "
            << la::qr_residual(a.view(), f.q.view(), f.r.view()) << "\n";
  std::cout << "  loss of orthogonality  |Q'Q - I|_F  : "
            << la::orthogonality_error(f.q.view()) << "\n";
  std::cout << "  R upper triangular                  : "
            << (la::is_upper_triangular(f.r.view()) ? "yes" : "NO") << "\n\n";

  // Compare the numerical stability of the Gram-Schmidt family on an
  // ill-conditioned matrix (cond = 1e4), the §3.1.1 discussion.
  const la::Matrix hard = la::random_with_condition(m, n, 1e4, 7);
  std::cout << "Loss of orthogonality on a cond=1e4 matrix:\n";
  std::cout << "  CGS  : " << la::orthogonality_error(qr::cgs(hard.view()).q.view()) << "\n";
  std::cout << "  MGS  : " << la::orthogonality_error(qr::mgs(hard.view()).q.view()) << "\n";
  std::cout << "  CGS2 : " << la::orthogonality_error(qr::cgs2(hard.view()).q.view()) << "\n";
  return 0;
}
