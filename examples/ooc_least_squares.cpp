// The paper's motivating application, end to end and fully out of core:
// solve min |A x - b| for a tall matrix that exceeds device memory.
//
//   1. recursive OOC QR:      A = Q R             (qr::recursive_ooc_qr)
//   2. OOC inner product:     y = Qᵀ b            (ooc::inner_product_recursive)
//   3. OOC back substitution: x = R⁻¹ y           (ooc::ooc_trsm)
//
//   ./build/examples/ooc_least_squares [rows cols nrhs device_KiB]
#include <cstdlib>
#include <iostream>

#include "blas/gemm.hpp"
#include "common/strings.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "ooc/gemm_engines.hpp"
#include "ooc/operand.hpp"
#include "ooc/trsm_engine.hpp"
#include "qr/factorize.hpp"
#include "sim/device.hpp"

int main(int argc, char** argv) {
  using namespace rocqr;

  const index_t m = argc > 1 ? std::atoll(argv[1]) : 1024;
  const index_t n = argc > 2 ? std::atoll(argv[2]) : 256;
  const index_t nrhs = argc > 3 ? std::atoll(argv[3]) : 4;
  const bytes_t device_bytes = (argc > 4 ? std::atoll(argv[4]) : 640) * 1024;
  if (m < n || n < 1) {
    std::cerr << "usage: ooc_least_squares [rows cols nrhs device_KiB]\n";
    return 1;
  }

  std::cout << "Out-of-core least squares: A " << format_shape(m, n) << " ("
            << format_bytes(static_cast<bytes_t>(m) * n * 4) << "), " << nrhs
            << " right-hand sides, device " << format_bytes(device_bytes)
            << "\n\n";

  la::Matrix a = la::random_with_condition(m, n, 100.0, 5);
  la::Matrix x_true = la::random_uniform(n, nrhs, 6);
  la::Matrix b(m, nrhs);
  blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, m, nrhs, n, 1.0f, a.data(),
             a.ld(), x_true.data(), x_true.ld(), 0.0f, b.data(), b.ld());

  sim::DeviceSpec spec = sim::DeviceSpec::v100_32gb();
  spec.memory_capacity = device_bytes;
  spec.h2d_bytes_per_s = 1e9;
  spec.d2h_bytes_per_s = 1e9;
  spec.tc_peak_flops = 4e12;
  spec.gemm_dim_halfpoint = 48;
  spec.panel_halfpoint = 500;
  sim::Device dev(spec, sim::ExecutionMode::Real);

  index_t blocksize = 8;
  while (blocksize * 2 <= n &&
         static_cast<bytes_t>(m) * blocksize * 2 * 4 * 6 <= device_bytes) {
    blocksize *= 2;
  }

  // 1. Factor (A becomes Q in place).
  qr::QrOptions qopts;
  qopts.blocksize = blocksize;
  qopts.panel_base = 16;
  qopts.precision = blas::GemmPrecision::FP32;
  la::Matrix q = la::materialize(a.view());
  la::Matrix r(n, n);
  const qr::QrStats stats = qr::factorize(qr::QrProblem{
      {&dev}, q.view(), r.view(), qr::Algorithm::Recursive, qopts});
  std::cout << "QR: " << format_seconds(stats.total_seconds)
            << " simulated at blocksize " << blocksize << "\n";

  // 2. y = Qᵀ b, streamed by k-slabs (Q and b never resident together).
  ooc::OocGemmOptions gopts;
  gopts.blocksize = blocksize;
  gopts.precision = blas::GemmPrecision::FP32;
  la::Matrix y(n, nrhs);
  ooc::inner_product_recursive(dev, ooc::Operand::on_host(q.view()),
                               ooc::Operand::on_host(b.view()), y.view(),
                               gopts);

  // 3. x = R⁻¹ y, out of core.
  ooc::ooc_trsm(dev, ooc::TriSolveKind::Upper, r.view(),
                sim::as_const(y.view()), y.view(), gopts);
  dev.synchronize();

  const double err = la::relative_difference(y.view(), x_true.view());
  std::cout << "solve: total " << format_seconds(dev.makespan()) << ", H2D "
            << format_bytes(dev.trace().bytes_h2d()) << ", peak device "
            << format_bytes(dev.memory_peak()) << "\n";
  std::cout << "relative solution error: " << err
            << (err < 1e-3 ? "  — OK\n" : "  — POOR\n");
  return err < 1e-3 ? 0 : 1;
}
