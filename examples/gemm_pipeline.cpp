// A guided tour of the OOC GEMM pipelines at the paper's real scale
// (Phantom mode — schedule only): synchronous vs pipelined execution, the
// §4.1.2 C-buffer optimization and the §4.1.3 ramp-up, each with its
// per-engine timeline.
//
//   ./build/examples/gemm_pipeline
#include <iostream>

#include "common/strings.hpp"
#include "ooc/gemm_engines.hpp"
#include "ooc/operand.hpp"
#include "sim/device.hpp"

namespace {

using namespace rocqr;

sim::Device make_device() {
  sim::Device dev(sim::DeviceSpec::v100_32gb(), sim::ExecutionMode::Phantom);
  dev.model().install_paper_calibration();
  return dev;
}

void show(const char* title, sim::Device& dev) {
  dev.synchronize();
  std::cout << "--- " << title << " ---\n"
            << "total " << format_seconds(dev.makespan()) << ", H2D "
            << format_bytes(dev.trace().bytes_h2d()) << ", D2H "
            << format_bytes(dev.trace().bytes_d2h()) << "\n"
            << dev.trace().render_gantt(100) << "\n";
}

} // namespace

int main() {
  // The paper's largest inner product: R12 = Q1ᵀ·A2 at the top level of the
  // recursive QR of a 131072^2 matrix (Table 1 / Fig 8).
  const auto q1 = sim::HostConstRef::phantom(131072, 65536);
  const auto a2 = sim::HostConstRef::phantom(131072, 65536);
  auto r12 = sim::HostMutRef::phantom(65536, 65536);

  {
    auto dev = make_device();
    ooc::OocGemmOptions opts;
    opts.blocksize = 16384;
    opts.synchronous = true;
    ooc::inner_product_recursive(dev, ooc::Operand::on_host(q1),
                                 ooc::Operand::on_host(a2), r12, opts);
    show("inner product, synchronous (no overlap)", dev);
  }
  {
    auto dev = make_device();
    ooc::OocGemmOptions opts;
    opts.blocksize = 16384;
    ooc::inner_product_recursive(dev, ooc::Operand::on_host(q1),
                                 ooc::Operand::on_host(a2), r12, opts);
    show("inner product, pipelined (k-slabs, C resident)", dev);
  }
  {
    auto dev = make_device();
    ooc::OocGemmOptions opts;
    opts.blocksize = 16384;
    opts.ramp_up = true;
    ooc::inner_product_recursive(dev, ooc::Operand::on_host(q1),
                                 ooc::Operand::on_host(a2), r12, opts);
    show("inner product, pipelined + ramp-up (4.1.3)", dev);
  }

  // The matching outer product: A2 -= Q1·R12 (Table 2 / Fig 10).
  const auto a_op = sim::HostConstRef::phantom(131072, 65536);
  const auto b_op = sim::HostConstRef::phantom(65536, 65536);
  const auto c_in = sim::HostConstRef::phantom(131072, 65536);
  auto c_out = sim::HostMutRef::phantom(131072, 65536);
  {
    auto dev = make_device();
    ooc::OocGemmOptions opts;
    opts.blocksize = 8192;
    opts.staging_buffer = false;
    ooc::outer_product_recursive(dev, ooc::Operand::on_host(a_op),
                                 ooc::Operand::on_host(b_op), c_in, c_out,
                                 opts);
    show("outer product, single C buffer (move-out serializes move-in)", dev);
  }
  {
    auto dev = make_device();
    ooc::OocGemmOptions opts;
    opts.blocksize = 8192;
    ooc::outer_product_recursive(dev, ooc::Operand::on_host(a_op),
                                 ooc::Operand::on_host(b_op), c_in, c_out,
                                 opts);
    show("outer product, extra C working space (4.1.2)", dev);
  }
  return 0;
}
