// Out-of-core randomized SVD demo: sketch the dominant spectrum of a matrix
// bigger than the (simulated) device, with real numerics, and compare the
// recovered singular values to the ground truth the generator planted.
//
//   ./build/examples/ooc_rsvd_demo [rows cols rank]
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "common/strings.hpp"
#include "la/generate.hpp"
#include "report/table.hpp"
#include "sim/device.hpp"
#include "svd/ooc_rsvd.hpp"

int main(int argc, char** argv) {
  using namespace rocqr;

  const index_t m = argc > 1 ? std::atoll(argv[1]) : 1200;
  const index_t n = argc > 2 ? std::atoll(argv[2]) : 400;
  const index_t rank = argc > 3 ? std::atoll(argv[3]) : 10;
  const double cond = 1e4; // geometric spectrum sigma_j = cond^(-j/(n-1))

  std::cout << "Randomized SVD of a " << format_shape(m, n)
            << " matrix with a known geometric spectrum (cond " << cond
            << "), rank " << rank << "\n\n";
  const la::Matrix a = la::random_with_condition(m, n, cond, 11);

  sim::DeviceSpec spec = sim::DeviceSpec::v100_32gb();
  spec.memory_capacity = 2 << 20; // 2 MiB device: A (1.8 MiB) plus workspace cannot fit
  spec.h2d_bytes_per_s = 1e9;
  spec.d2h_bytes_per_s = 1e9;
  spec.tc_peak_flops = 4e12;
  spec.gemm_dim_halfpoint = 48;
  spec.panel_halfpoint = 500;
  sim::Device dev(spec, sim::ExecutionMode::Real);

  svd::RsvdOptions opts;
  opts.rank = rank;
  opts.oversample = 8;
  opts.power_iterations = 2;
  opts.blocksize = 64;
  opts.precision = blas::GemmPrecision::FP32;
  const svd::RsvdResult r = svd::ooc_randomized_svd(dev, a.view(), opts);

  report::Table t("", {"j", "sigma (recovered)", "sigma (planted)", "ratio"});
  double worst = 0.0;
  for (index_t j = 0; j < rank; ++j) {
    const double truth = std::pow(cond, -static_cast<double>(j) / (n - 1.0));
    const double got = r.sigma[static_cast<size_t>(j)];
    worst = std::max(worst, std::fabs(got / truth - 1.0));
    t.add_row({std::to_string(j), format_fixed(got, 5), format_fixed(truth, 5),
               format_fixed(got / truth, 4)});
  }
  std::cout << t.render();
  std::cout << "\nsimulated time " << format_seconds(r.seconds) << ", H2D "
            << format_bytes(r.bytes_h2d) << " (matrix itself is "
            << format_bytes(static_cast<bytes_t>(m) * n * 4)
            << "; device holds only " << format_bytes(spec.memory_capacity)
            << ")\nworst singular-value error: " << format_fixed(100 * worst, 2)
            << "%" << (worst < 0.05 ? "  — OK\n" : "  — POOR\n");
  return worst < 0.05 ? 0 : 1;
}
