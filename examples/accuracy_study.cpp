// Numerical accuracy study across the QR families and precisions — the
// HPDC'20 accuracy angle the paper builds on: how far can classic
// Gram-Schmidt with fp16-input GEMMs be pushed before reorthogonalization
// or an orthogonal-transform method is needed?
//
//   ./build/examples/accuracy_study
#include <iostream>

#include "common/strings.hpp"
#include "la/condition.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "qr/incore.hpp"
#include "report/table.hpp"

namespace {

using namespace rocqr;

std::string sci(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1e", v);
  return buf;
}

} // namespace

int main() {
  const index_t m = 512;
  const index_t n = 96;
  std::cout << "Loss of orthogonality |Q'Q - I|_F of a " << format_shape(m, n)
            << " matrix across condition numbers\n(fp32 arithmetic; rcgs-16 "
               "uses fp16-input GEMM updates, the TensorCore contract)\n\n";

  report::Table t("", {"cond(A)", "est.", "cgs", "mgs", "cgs2", "rcgs",
                       "rcgs-16", "householder", "tsqr"});
  for (const double cond : {1e1, 1e2, 1e3, 1e4, 1e5}) {
    la::Matrix a = la::random_with_condition(m, n, cond, 97);
    const auto err = [&](const qr::QrFactors& f) {
      return sci(la::orthogonality_error(f.q.view()));
    };
    std::string estimated = "-";
    try {
      // The Gram-matrix-based estimator runs out of fp32 range near 1e4.
      estimated = sci(la::estimate_condition(a.view()));
    } catch (const Error&) {
    }
    t.add_row({sci(cond), estimated,
               err(qr::cgs(a.view())), err(qr::mgs(a.view())),
               err(qr::cgs2(a.view())), err(qr::recursive_cgs(a.view(), 16)),
               err(qr::recursive_cgs(a.view(), 16,
                                     blas::GemmPrecision::FP16_FP32)),
               err(qr::householder(a.view())), err(qr::tsqr(a.view(), 128))});
  }
  std::cout << t.render();

  std::cout
      << "\nReading: CGS degrades like cond^2*eps and MGS like cond*eps\n"
         "(textbook); CGS2 and Householder stay at roundoff. Recursive CGS\n"
         "tracks CGS in fp32; with fp16-input GEMM updates it adds a ~3e-3\n"
         "floor — usable for well-conditioned panels, which is why the\n"
         "paper's pipeline (and ours) offers CGS2/CholeskyQR2 panels as the\n"
         "stability escape hatch (QrOptions::panel_algorithm).\n";
  return 0;
}
