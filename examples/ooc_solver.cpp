// End-to-end out-of-core linear solver: factor a dense system that does not
// fit on the (simulated) device with the recursive OOC LU, then solve
// L (U x) = b with two out-of-core triangular solves — the paper's §6
// future-work machinery assembled into an application.
//
//   ./build/examples/ooc_solver [n nrhs device_KiB]
#include <cstdlib>
#include <iostream>

#include "common/strings.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "lu/incore.hpp"
#include "lu/ooc_lu.hpp"
#include "ooc/trsm_engine.hpp"
#include "sim/device.hpp"

int main(int argc, char** argv) {
  using namespace rocqr;

  const index_t n = argc > 1 ? std::atoll(argv[1]) : 640;
  const index_t nrhs = argc > 2 ? std::atoll(argv[2]) : 8;
  const bytes_t device_bytes =
      (argc > 3 ? std::atoll(argv[3]) : 768) * 1024;

  std::cout << "Solving A x = b with A " << format_shape(n, n) << " fp32 ("
            << format_bytes(static_cast<bytes_t>(n) * n * 4)
            << "), device memory " << format_bytes(device_bytes) << "\n\n";

  // Diagonally dominant system (safe for LU without pivoting) with a known
  // solution.
  la::Matrix a = la::random_diagonally_dominant(n, 7);
  la::Matrix x_true = la::random_uniform(n, nrhs, 8);
  la::Matrix b(n, nrhs);
  blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, n, nrhs, n, 1.0f, a.data(),
             a.ld(), x_true.data(), x_true.ld(), 0.0f, b.data(), b.ld());

  sim::DeviceSpec spec = sim::DeviceSpec::v100_32gb();
  spec.memory_capacity = device_bytes;
  spec.h2d_bytes_per_s = 1e9;
  spec.d2h_bytes_per_s = 1e9;
  spec.tc_peak_flops = 4e12;
  spec.gemm_dim_halfpoint = 48;
  spec.panel_halfpoint = 500;
  sim::Device dev(spec, sim::ExecutionMode::Real);

  index_t blocksize = 8;
  while (blocksize * 2 <= n &&
         static_cast<bytes_t>(n) * blocksize * 2 * 4 * 6 <= device_bytes) {
    blocksize *= 2;
  }

  // 1. Factor out of core (A becomes the combined L\U factor in place).
  lu::FactorOptions opts;
  opts.blocksize = blocksize;
  opts.panel_base = 16;
  opts.precision = blas::GemmPrecision::FP32;
  la::Matrix factor = la::materialize(a.view());
  const lu::FactorStats stats = lu::recursive_ooc_lu(dev, factor.view(), opts);
  std::cout << "factorization: " << format_seconds(stats.total_seconds)
            << " simulated (blocksize " << blocksize << ", peak device use "
            << format_bytes(stats.peak_device_bytes) << ")\n";

  // 2. Forward solve L y = b, then back solve U x = y — both out of core.
  ooc::OocGemmOptions topts;
  topts.blocksize = blocksize;
  topts.precision = blas::GemmPrecision::FP32;
  la::Matrix x = la::materialize(b.view());
  ooc::ooc_trsm(dev, ooc::TriSolveKind::LowerUnit, factor.view(),
                sim::as_const(x.view()), x.view(), topts);
  ooc::ooc_trsm(dev, ooc::TriSolveKind::Upper, factor.view(),
                sim::as_const(x.view()), x.view(), topts);
  dev.synchronize();

  const double err = la::relative_difference(x.view(), x_true.view());
  std::cout << "solve: total simulated time "
            << format_seconds(dev.makespan()) << ", H2D "
            << format_bytes(dev.trace().bytes_h2d()) << ", D2H "
            << format_bytes(dev.trace().bytes_d2h()) << "\n";
  std::cout << "relative solution error: " << err
            << (err < 1e-3 ? "  — OK\n" : "  — POOR\n");
  return err < 1e-3 ? 0 : 1;
}
