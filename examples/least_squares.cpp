// Domain application: polynomial least-squares fitting via QR — one of the
// workloads the paper's introduction motivates (orthogonalization / linear
// least squares on accelerators).
//
// Fits a degree-d polynomial to noisy samples of a known function using
// A = QR, then x = R^{-1} Qᵀ b, and reports the recovered coefficients.
//
//   ./build/examples/least_squares [samples degree]
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "blas/gemm.hpp"
#include "blas/trsm.hpp"
#include "common/rng.hpp"
#include "la/matrix.hpp"
#include "qr/incore.hpp"

int main(int argc, char** argv) {
  using namespace rocqr;

  const index_t samples = argc > 1 ? std::atoll(argv[1]) : 2000;
  const index_t degree = argc > 2 ? std::atoll(argv[2]) : 4;
  const index_t n = degree + 1;
  if (samples < n) {
    std::cerr << "need samples >= degree + 1\n";
    return 1;
  }

  // Ground truth: y = 2 - x + 0.5 x^2 - 0.25 x^3 ... (alternating halving),
  // sampled on [-1, 1] with Gaussian noise.
  std::vector<double> truth(static_cast<size_t>(n));
  double coef = 2.0;
  for (index_t j = 0; j < n; ++j) {
    truth[static_cast<size_t>(j)] = coef;
    coef *= -0.5;
  }

  la::Matrix a(samples, n); // Vandermonde design matrix
  la::Matrix b(samples, 1);
  Rng rng(2024);
  for (index_t i = 0; i < samples; ++i) {
    const double x = -1.0 + 2.0 * static_cast<double>(i) / (samples - 1);
    double pow_x = 1.0;
    double y = 0.0;
    for (index_t j = 0; j < n; ++j) {
      a(i, j) = static_cast<float>(pow_x);
      y += truth[static_cast<size_t>(j)] * pow_x;
      pow_x *= x;
    }
    b(i, 0) = static_cast<float>(y + 0.01 * rng.normal());
  }

  // Solve min |Ax - b| via CGS2 QR (reorthogonalized: the Vandermonde basis
  // is ill-conditioned and plain CGS would lose digits).
  const qr::QrFactors f = qr::cgs2(a.view());

  // x = R^{-1} (Qᵀ b)
  la::Matrix qtb(n, 1);
  blas::gemm(blas::Op::Trans, blas::Op::NoTrans, n, 1, samples, 1.0f,
             f.q.data(), f.q.ld(), b.data(), b.ld(), 0.0f, qtb.data(),
             qtb.ld());
  blas::trsm_left_upper(n, 1, f.r.data(), f.r.ld(), qtb.data(), qtb.ld());

  std::cout << "Recovered polynomial coefficients (truth in parentheses):\n";
  double worst = 0.0;
  for (index_t j = 0; j < n; ++j) {
    const double got = static_cast<double>(qtb(j, 0));
    const double want = truth[static_cast<size_t>(j)];
    worst = std::max(worst, std::fabs(got - want));
    std::cout << "  x^" << j << " : " << got << "  (" << want << ")\n";
  }
  std::cout << "\nmax coefficient error: " << worst
            << (worst < 0.05 ? "  — fit OK\n" : "  — fit poor!\n");
  return worst < 0.05 ? 0 : 1;
}
