#include "sim/trace_export.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

namespace rocqr::sim {

namespace {

/// Minimal JSON string escaping (trace op names are plain ASCII, but a
/// custom op label could contain anything).
std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// One duration ("ph":"X") event staged for sorted emission.
struct DurationEvent {
  sim_time_t start = 0;
  sim_time_t dur = 0;
  int pid = 0;
  int tid = 0;
  std::string name;
  std::string cat;
  std::string args; ///< rendered JSON object, may be empty
};

constexpr int kEnginePid = 0;
constexpr int kStreamPid = 1;
constexpr int kPhasePid = 2;

void emit_metadata(std::ostream& os, bool& first, int pid, int tid,
                   const char* what, const std::string& name) {
  if (!first) os << ",\n";
  first = false;
  os << R"(    {"name": ")" << what << R"(", "ph": "M", "pid": )" << pid;
  if (tid >= 0) os << R"(, "tid": )" << tid;
  os << R"(, "args": {"name": ")" << escape_json(name) << R"("}})";
}

} // namespace

void write_chrome_trace(std::ostream& os, const Trace& trace,
                        const telemetry::SpanLog* spans) {
  const auto& events = trace.events();

  std::vector<DurationEvent> out;
  out.reserve(2 * events.size());
  int max_stream = -1;
  for (const TraceEvent& e : events) {
    DurationEvent d;
    d.start = e.start;
    d.dur = e.end - e.start;
    d.name = e.name;
    d.cat = to_string(e.kind);
    d.args = R"({"stream": )" + std::to_string(e.stream) + R"(, "bytes": )" +
             std::to_string(e.bytes) + R"(, "flops": )" +
             std::to_string(e.flops) + "}";
    d.pid = kEnginePid;
    d.tid = static_cast<int>(e.resource);
    out.push_back(d);
    d.pid = kStreamPid;
    d.tid = e.stream;
    out.push_back(std::move(d));
    max_stream = std::max(max_stream, e.stream);
  }

  std::vector<telemetry::SpanRecord> span_records;
  if (spans != nullptr) span_records = spans->snapshot();
  for (const telemetry::SpanRecord& r : span_records) {
    // A span covers the sim-time extent of the trace events enqueued inside
    // it; spans that enqueued nothing have no timeline footprint.
    const size_t from = static_cast<size_t>(r.begin_cursor);
    const size_t to = std::min(static_cast<size_t>(r.end_cursor),
                               events.size());
    if (from >= to) continue;
    sim_time_t start = events[from].start;
    sim_time_t end = events[from].end;
    for (size_t i = from + 1; i < to; ++i) {
      start = std::min(start, events[i].start);
      end = std::max(end, events[i].end);
    }
    DurationEvent d;
    d.start = start;
    d.dur = end - start;
    d.pid = kPhasePid;
    d.tid = r.depth;
    d.name = r.name;
    d.cat = "phase";
    d.args = R"({"trace_events": )" + std::to_string(to - from) +
             R"(, "span_id": )" + std::to_string(r.id) + R"(, "parent": )" +
             std::to_string(r.parent) + "}";
    out.push_back(std::move(d));
  }

  // chrome://tracing tolerates unordered input but the machine-readable
  // contract is nicer sorted; ties keep engine before stream track.
  std::stable_sort(out.begin(), out.end(),
                   [](const DurationEvent& a, const DurationEvent& b) {
                     return a.start < b.start;
                   });

  const auto old_precision = os.precision(15);
  os << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
  bool first = true;
  emit_metadata(os, first, kEnginePid, -1, "process_name", "engines");
  emit_metadata(os, first, kStreamPid, -1, "process_name", "streams");
  const Resource lanes[] = {Resource::H2D, Resource::Compute, Resource::D2H};
  for (Resource lane : lanes) {
    emit_metadata(os, first, kEnginePid, static_cast<int>(lane), "thread_name",
                  to_string(lane));
  }
  for (int s = 0; s <= max_stream; ++s) {
    emit_metadata(os, first, kStreamPid, s, "thread_name",
                  "stream " + std::to_string(s));
  }
  if (!span_records.empty()) {
    emit_metadata(os, first, kPhasePid, -1, "process_name", "phases");
  }
  for (const DurationEvent& d : out) {
    if (!first) os << ",\n";
    first = false;
    // Timestamps in microseconds, as the format requires.
    os << R"(    {"name": ")" << escape_json(d.name) << R"(", "cat": ")"
       << d.cat << R"(", "ph": "X", "ts": )" << d.start * 1e6 << R"(, "dur": )"
       << d.dur * 1e6 << R"(, "pid": )" << d.pid << R"(, "tid": )" << d.tid;
    if (!d.args.empty()) os << R"(, "args": )" << d.args;
    os << "}";
  }
  os << "\n  ]\n}\n";
  os.precision(old_precision);
}

} // namespace rocqr::sim
