#include "sim/trace.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "common/telemetry.hpp"
#include "sim/trace_export.hpp"

namespace rocqr::sim {

namespace {

/// Process-wide movement counters, interned once (registry lookup is a map
/// walk under a mutex — too heavy for the per-event path).
struct TraceMetrics {
  telemetry::Counter& bytes_h2d;
  telemetry::Counter& bytes_d2h;
  telemetry::Counter& bytes_d2d;
  telemetry::Counter& flops;
  telemetry::Counter& events;

  static TraceMetrics& get() {
    auto& reg = telemetry::MetricsRegistry::global();
    static TraceMetrics* m = new TraceMetrics{
        reg.counter("sim.bytes_h2d"), reg.counter("sim.bytes_d2h"),
        reg.counter("sim.bytes_d2d"), reg.counter("sim.flops"),
        reg.counter("sim.trace_events")};
    return *m;
  }
};

} // namespace

const char* to_string(Resource r) {
  switch (r) {
    case Resource::H2D: return "H2D";
    case Resource::Compute: return "Compute";
    case Resource::D2H: return "D2H";
  }
  return "?";
}

const char* to_string(OpKind k) {
  switch (k) {
    case OpKind::CopyH2D: return "copy_h2d";
    case OpKind::CopyD2H: return "copy_d2h";
    case OpKind::CopyD2D: return "copy_d2d";
    case OpKind::Gemm: return "gemm";
    case OpKind::Trsm: return "trsm";
    case OpKind::Panel: return "panel_qr";
    case OpKind::Custom: return "custom";
  }
  return "?";
}

void Trace::add(TraceEvent event) {
  ROCQR_CHECK(event.end >= event.start, "Trace::add: negative duration");
  TraceMetrics& metrics = TraceMetrics::get();
  switch (event.kind) {
    case OpKind::CopyH2D:
      bytes_h2d_ += event.bytes;
      metrics.bytes_h2d.add(event.bytes);
      break;
    case OpKind::CopyD2H:
      bytes_d2h_ += event.bytes;
      metrics.bytes_d2h.add(event.bytes);
      break;
    case OpKind::CopyD2D:
      bytes_d2d_ += event.bytes;
      metrics.bytes_d2d.add(event.bytes);
      break;
    default: break;
  }
  flops_ += event.flops;
  metrics.flops.add(event.flops);
  metrics.events.increment();
  events_.push_back(std::move(event));
}

void Trace::clear() {
  events_.clear();
  bytes_h2d_ = bytes_d2h_ = bytes_d2d_ = 0;
  flops_ = 0;
}

sim_time_t Trace::makespan() const {
  sim_time_t latest = 0;
  for (const auto& e : events_) latest = std::max(latest, e.end);
  return latest;
}

sim_time_t Trace::busy_seconds(Resource r) const {
  sim_time_t total = 0;
  for (const auto& e : events_) {
    if (e.resource == r) total += e.end - e.start;
  }
  return total;
}

double Trace::overlap_ratio() const {
  const double copy_time = busy_seconds(Resource::H2D) + busy_seconds(Resource::D2H);
  if (copy_time <= 0) return 1.0;
  const double exposed = makespan() - busy_seconds(Resource::Compute);
  return std::clamp(1.0 - exposed / copy_time, 0.0, 1.0);
}

std::string Trace::render_gantt(int width) const {
  ROCQR_CHECK(width >= 10, "render_gantt: width too small");
  const sim_time_t total = makespan();
  std::ostringstream os;
  if (total <= 0 || events_.empty()) {
    os << "(empty trace)\n";
    return os.str();
  }
  const char kind_char[] = {'h', 'd', 'x', 'G', 'T', 'P', 'c'};
  const Resource lanes[] = {Resource::H2D, Resource::Compute, Resource::D2H};
  for (Resource lane : lanes) {
    std::string row(static_cast<size_t>(width), '.');
    for (const auto& e : events_) {
      if (e.resource != lane) continue;
      int c0 = static_cast<int>(std::floor(e.start / total * width));
      int c1 = static_cast<int>(std::ceil(e.end / total * width));
      c0 = std::clamp(c0, 0, width - 1);
      c1 = std::clamp(c1, c0 + 1, width);
      const char ch = kind_char[static_cast<int>(e.kind)];
      for (int c = c0; c < c1; ++c) row[static_cast<size_t>(c)] = ch;
    }
    os << pad_right(to_string(lane), 8) << "|" << row << "|\n";
  }
  os << pad_right("", 8) << " 0" << pad_left(format_seconds(total), width - 2)
     << "\n";
  os << "  h=move-in  G=gemm  T=trsm  P=panel  x=device copy  d=move-out\n";
  os << "  makespan " << format_seconds(total) << ", compute busy "
     << format_seconds(busy_seconds(Resource::Compute)) << ", H2D busy "
     << format_seconds(busy_seconds(Resource::H2D)) << ", D2H busy "
     << format_seconds(busy_seconds(Resource::D2H)) << ", overlap "
     << format_fixed(100.0 * overlap_ratio(), 1) << "%\n";
  return os.str();
}

void Trace::write_chrome_json(std::ostream& os) const {
  // Full exporter (engine + stream tracks, span tree) lives in
  // sim/trace_export.cpp; this member is the spanless convenience form.
  write_chrome_trace(os, *this, nullptr);
}

EngineStats engine_stats_from_trace(const Trace& trace, size_t from,
                                    size_t to, std::string_view name_prefix) {
  const auto& events = trace.events();
  to = std::min(to, events.size());
  EngineStats s;
  bool first = true;
  for (size_t i = from; i < to; ++i) {
    const TraceEvent& e = events[i];
    if (!name_prefix.empty() &&
        std::string_view(e.name).substr(0, name_prefix.size()) != name_prefix) {
      continue;
    }
    if (first) {
      s.first_start = e.start;
      s.last_end = e.end;
      first = false;
    } else {
      s.first_start = std::min(s.first_start, e.start);
      s.last_end = std::max(s.last_end, e.end);
    }
    const sim_time_t dur = e.end - e.start;
    switch (e.resource) {
      case Resource::H2D: s.h2d_seconds += dur; break;
      case Resource::D2H: s.d2h_seconds += dur; break;
      case Resource::Compute: s.compute_seconds += dur; break;
    }
    switch (e.kind) {
      case OpKind::CopyH2D: s.bytes_h2d += e.bytes; break;
      case OpKind::CopyD2H: s.bytes_d2h += e.bytes; break;
      case OpKind::CopyD2D:
        s.bytes_d2d += e.bytes;
        s.d2d_seconds += dur;
        break;
      case OpKind::Panel:
        s.panel_seconds += dur;
        ++s.panels;
        break;
      case OpKind::Gemm:
      case OpKind::Trsm: // triangular solves count as update work
        s.gemm_seconds += dur;
        break;
      case OpKind::Custom: break;
    }
    s.flops += e.flops;
    ++s.events;
  }
  s.total_seconds = first ? 0 : s.last_end - s.first_start;
  return s;
}

void Trace::write_csv(std::ostream& os) const {
  os << "id,name,kind,resource,stream,start,end,bytes,flops\n";
  for (const auto& e : events_) {
    os << e.id << "," << e.name << "," << to_string(e.kind) << ","
       << to_string(e.resource) << "," << e.stream << "," << e.start << ","
       << e.end << "," << e.bytes << "," << e.flops << "\n";
  }
}

} // namespace rocqr::sim
