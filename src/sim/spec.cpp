#include "sim/spec.hpp"

namespace rocqr::sim {

DeviceSpec DeviceSpec::v100_32gb() { return DeviceSpec{}; }

DeviceSpec DeviceSpec::v100_16gb() {
  DeviceSpec s;
  s.name = "V100-PCIe-16GB-limit";
  s.memory_capacity = 16LL * (1LL << 30);
  return s;
}

DeviceSpec DeviceSpec::a100_40gb() {
  DeviceSpec s;
  s.name = "A100-PCIe-40GB";
  s.memory_capacity = 40LL * (1LL << 30);
  s.h2d_bytes_per_s = 24.0e9; // PCIe gen4
  s.d2h_bytes_per_s = 24.0e9;
  s.d2d_bytes_per_s = 1500.0e9;
  s.tc_peak_flops = 312.0e12;
  s.fp32_peak_flops = 19.5e12;
  return s;
}

DeviceSpec DeviceSpec::nvme_cpu_node() {
  DeviceSpec s;
  s.name = "NVMe<->CPU-128GB";
  s.memory_capacity = 128LL * (1LL << 30);
  s.h2d_bytes_per_s = 3.5e9; // NVMe read
  s.d2h_bytes_per_s = 2.5e9; // NVMe write
  s.d2d_bytes_per_s = 100e9; // in-RAM copies
  s.copy_latency_s = 60e-6;  // I/O submission
  s.kernel_latency_s = 2e-6;
  s.tc_peak_flops = 6.0e12;   // AMX/bf16-class matrix units
  s.fp32_peak_flops = 3.0e12; // AVX-512 fp32
  // CPU matrix units saturate at much smaller tiles than TensorCore.
  s.gemm_dim_halfpoint = 256.0;
  s.tn_aspect_exponent = 0.15;
  s.panel_halfpoint = 5000.0;
  return s;
}

DeviceSpec DeviceSpec::disk_cpu_1996() {
  DeviceSpec s;
  s.name = "Disk<->CPU-1996";
  s.memory_capacity = 256LL * (1LL << 20);
  s.h2d_bytes_per_s = 10e6;
  s.d2h_bytes_per_s = 8e6;
  s.d2d_bytes_per_s = 200e6;
  s.copy_latency_s = 10e-3; // seeks
  s.kernel_latency_s = 1e-6;
  s.tc_peak_flops = 1.0e9; // no matrix engine: both paths scalar-ish
  s.fp32_peak_flops = 0.5e9;
  // A cache-blocked 1996 DGEMM is near peak from tiny tiles on, and
  // tall-skinny shapes cost nothing special — shape effects are a matrix-
  // accelerator phenomenon.
  s.gemm_dim_halfpoint = 16.0;
  s.tn_aspect_exponent = 0.02;
  s.panel_halfpoint = 200.0;
  return s;
}

DeviceSpec DeviceSpec::rtx3080_10gb() {
  DeviceSpec s;
  s.name = "RTX3080-10GB";
  s.memory_capacity = 10LL * (1LL << 30);
  s.h2d_bytes_per_s = 12.0e9;
  s.d2h_bytes_per_s = 12.0e9;
  s.d2d_bytes_per_s = 700.0e9;
  s.tc_peak_flops = 119.0e12; // fp16 with fp32 accumulate on GA102
  s.fp32_peak_flops = 29.8e12;
  return s;
}

} // namespace rocqr::sim
