#include "sim/perf_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace rocqr::sim {

PerfModel::PerfModel(DeviceSpec spec) : spec_(std::move(spec)) {
  ROCQR_CHECK(spec_.h2d_bytes_per_s > 0 && spec_.d2h_bytes_per_s > 0 &&
                  spec_.d2d_bytes_per_s > 0,
              "PerfModel: bandwidths must be positive");
  ROCQR_CHECK(spec_.tc_peak_flops > 0 && spec_.fp32_peak_flops > 0,
              "PerfModel: peak rates must be positive");
}

sim_time_t PerfModel::h2d_seconds(bytes_t bytes) const {
  ROCQR_CHECK(bytes >= 0, "h2d_seconds: negative byte count");
  return spec_.copy_latency_s +
         static_cast<double>(bytes) / spec_.h2d_bytes_per_s;
}

sim_time_t PerfModel::d2h_seconds(bytes_t bytes) const {
  ROCQR_CHECK(bytes >= 0, "d2h_seconds: negative byte count");
  return spec_.copy_latency_s +
         static_cast<double>(bytes) / spec_.d2h_bytes_per_s;
}

sim_time_t PerfModel::d2d_seconds(bytes_t bytes) const {
  ROCQR_CHECK(bytes >= 0, "d2d_seconds: negative byte count");
  return spec_.kernel_latency_s +
         static_cast<double>(bytes) / spec_.d2d_bytes_per_s;
}

double PerfModel::smooth_gemm_rate(blas::Op opa, index_t m, index_t n,
                                   index_t k,
                                   blas::GemmPrecision precision) const {
  const double peak = precision == blas::GemmPrecision::FP16_FP32
                          ? spec_.tc_peak_flops
                          : spec_.fp32_peak_flops;
  const auto s = [&](index_t d) {
    return static_cast<double>(d) /
           (static_cast<double>(d) + spec_.gemm_dim_halfpoint);
  };
  double eff = s(m) * s(n) * s(k);
  // Reduction-heavy transposed-A GEMMs (the QR "inner products") lose
  // efficiency when the reduction dimension dwarfs the output tile: the
  // paper measures 52.6 TFLOP/s for 16384x16384x131072 vs ~100 for
  // square-ish shapes (§5.1.1).
  if (opa == blas::Op::Trans) {
    const double aspect =
        static_cast<double>(k) / static_cast<double>(std::min(m, n));
    if (aspect > 1.0) eff *= std::pow(aspect, -spec_.tn_aspect_exponent);
  }
  return peak * eff;
}

double PerfModel::gemm_rate(blas::Op opa, index_t m, index_t n, index_t k,
                            blas::GemmPrecision precision) const {
  ROCQR_CHECK(m > 0 && n > 0 && k > 0, "gemm_rate: dimensions must be positive");
  if (precision == blas::GemmPrecision::FP16_FP32) {
    const GemmShapeKey key{opa == blas::Op::Trans, m, n, k};
    if (const auto it = overrides_.find(key); it != overrides_.end()) {
      return it->second;
    }
  }
  return smooth_gemm_rate(opa, m, n, k, precision);
}

sim_time_t PerfModel::gemm_seconds(blas::Op opa, index_t m, index_t n,
                                   index_t k,
                                   blas::GemmPrecision precision) const {
  const double flops = static_cast<double>(blas::gemm_flops(m, n, k));
  return spec_.kernel_latency_s + flops / gemm_rate(opa, m, n, k, precision);
}

double PerfModel::panel_rate(index_t m, index_t n) const {
  ROCQR_CHECK(m > 0 && n > 0, "panel_rate: dimensions must be positive");
  // Panel factorization is a chain of slim GEMMs and vector ops; the paper's
  // in-core solver sustains 26 TFLOP/s at m=65536 and 31 at m=262144
  // (Table 4). A single saturation curve in m reproduces both points.
  return spec_.tc_peak_flops * spec_.panel_frac * static_cast<double>(m) /
         (static_cast<double>(m) + spec_.panel_halfpoint);
}

sim_time_t PerfModel::panel_seconds(index_t m, index_t n) const {
  // CGS panel QR performs 2 m n^2 flops (explicit Q).
  const double flops = 2.0 * static_cast<double>(m) * static_cast<double>(n) *
                       static_cast<double>(n);
  return spec_.kernel_latency_s + flops / panel_rate(m, n);
}

sim_time_t PerfModel::trsm_seconds(index_t m, index_t n,
                                   blas::GemmPrecision precision) const {
  ROCQR_CHECK(m > 0 && n > 0, "trsm_seconds: dimensions must be positive");
  const double flops =
      static_cast<double>(m) * static_cast<double>(m) * static_cast<double>(n);
  const double rate =
      0.5 * smooth_gemm_rate(blas::Op::NoTrans, m, n, m, precision);
  return spec_.kernel_latency_s + flops / rate;
}

void PerfModel::set_gemm_rate_override(const GemmShapeKey& key,
                                       double flops_per_s) {
  ROCQR_CHECK(flops_per_s > 0, "set_gemm_rate_override: rate must be positive");
  overrides_[key] = flops_per_s;
}

void PerfModel::install_paper_calibration() {
  // Table 1 (inner products, op(A) = Aᵀ):
  //  - recursive per-slab GEMM 65536x65536, k-slab 16384 -> 99.9 TFLOP/s
  //  - blocking per-slab GEMM 16384x16384, k = 131072   -> 52.6 TFLOP/s
  set_gemm_rate_override({true, 65536, 65536, 16384}, 99.9e12);
  set_gemm_rate_override({true, 16384, 16384, 131072}, 52.6e12);
  // Table 2 (outer products, no transpose):
  //  - recursive row-slab 8192 x 65536 x 65536  -> 107.6 TFLOP/s
  //  - blocking C-tile 16384 x 16384 x 16384    -> 98.8 TFLOP/s
  set_gemm_rate_override({false, 8192, 65536, 65536}, 107.6e12);
  set_gemm_rate_override({false, 16384, 16384, 16384}, 98.8e12);
  // Fig 11 (blocking outer product at QR blocksize 8192, 32768^2 C tiles):
  // 170 ms for 2*32768^2*8192 flops -> 103.5 TFLOP/s.
  set_gemm_rate_override({false, 32768, 32768, 8192}, 103.5e12);
}

} // namespace rocqr::sim
