// Offset-based device memory allocator with a hard capacity.
//
// A real first-fit free-list (not a simple counter) so that the simulation
// honours fragmentation: an OOC schedule that would fragment a 32 GB card
// will fail here too, which is part of what limits the blocking algorithm's
// blocksize (§3.3.1).
#pragma once

#include <map>

#include "common/types.hpp"

namespace rocqr::sim {

class DeviceAllocator {
 public:
  explicit DeviceAllocator(bytes_t capacity);

  /// Returns the offset of a block of `size` bytes (first fit).
  /// Throws DeviceOutOfMemory if no free block is large enough.
  bytes_t allocate(bytes_t size);

  /// Frees a block previously returned by allocate (throws ResourceError on
  /// double free / unknown offset). Coalesces with free neighbours.
  void free(bytes_t offset);

  bytes_t capacity() const { return capacity_; }
  bytes_t used() const { return used_; }
  bytes_t peak_used() const { return peak_used_; }
  bytes_t free_bytes() const { return capacity_ - used_; }
  bytes_t largest_free_block() const;
  int live_allocations() const { return static_cast<int>(live_.size()); }

 private:
  bytes_t capacity_;
  bytes_t used_ = 0;
  bytes_t peak_used_ = 0;
  std::map<bytes_t, bytes_t> free_list_; // offset -> size, disjoint, sorted
  std::map<bytes_t, bytes_t> live_;      // offset -> size
};

} // namespace rocqr::sim
