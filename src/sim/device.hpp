// The simulated accelerator: memory, streams, events, async operations.
//
// Execution model (mirrors how a host thread drives a CUDA device):
//  - The host enqueues asynchronous operations on streams in program order.
//  - Each operation occupies exactly one engine: the H2D link, the D2H link,
//    or the compute engine (GEMM / panel kernels / device-to-device copies).
//  - An operation starts when (a) the previous op on its stream finished,
//    (b) every event it waits on has completed, (c) its engine is free, and
//    (d) the host had already enqueued it (host time advances only at
//    synchronize() calls — enqueueing is free, like CUDA async launches).
//  - Durations come from the PerfModel. Because the host enqueues in program
//    order and engines are FIFO, scheduling each op greedily at enqueue time
//    is exact (list scheduling == hardware behaviour).
//
// In ExecutionMode::Real, device matrices carry actual fp32 storage and every
// operation also executes numerically on the host, so the identical
// orchestration code is verifiable end to end. In ExecutionMode::Phantom,
// buffers are metadata-only and only the schedule is computed — this is how
// paper-scale (131072^2) experiments run on a laptop.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "blas/gemm.hpp"
#include "common/types.hpp"
#include "la/matrix.hpp"
#include "sim/memory.hpp"
#include "sim/perf_model.hpp"
#include "sim/trace.hpp"

namespace rocqr::sim {

enum class ExecutionMode {
  Real,    ///< buffers hold data; ops execute numerically
  Phantom, ///< metadata only; schedule/time/bytes are still exact
};

/// Element width of device-resident storage. The paper's code keeps GEMM
/// operands in fp16 on the device (that is what TensorCore consumes and what
/// makes the working set fit) while PCIe transfers carry fp32.
enum class StoragePrecision { FP32, FP16 };

inline bytes_t element_bytes(StoragePrecision p) {
  return p == StoragePrecision::FP32 ? 4 : 2;
}

/// Host-side matrix operand of a transfer. `data == nullptr` marks a phantom
/// host matrix (allowed only in ExecutionMode::Phantom).
struct HostConstRef {
  const float* data = nullptr;
  index_t rows = 0;
  index_t cols = 0;
  index_t ld = 1;

  HostConstRef() = default;
  HostConstRef(const float* d, index_t r, index_t c, index_t l)
      : data(d), rows(r), cols(c), ld(l) {}
  HostConstRef(la::ConstMatrixView v)
      : data(v.data()), rows(v.rows()), cols(v.cols()), ld(v.ld()) {}
  HostConstRef(la::MatrixView v)
      : data(v.data()), rows(v.rows()), cols(v.cols()), ld(v.ld()) {}

  /// Shape-only phantom host matrix.
  static HostConstRef phantom(index_t rows, index_t cols) {
    return HostConstRef(nullptr, rows, cols, rows > 0 ? rows : 1);
  }
};

struct HostMutRef {
  float* data = nullptr;
  index_t rows = 0;
  index_t cols = 0;
  index_t ld = 1;

  HostMutRef() = default;
  HostMutRef(float* d, index_t r, index_t c, index_t l)
      : data(d), rows(r), cols(c), ld(l) {}
  HostMutRef(la::MatrixView v)
      : data(v.data()), rows(v.rows()), cols(v.cols()), ld(v.ld()) {}

  static HostMutRef phantom(index_t rows, index_t cols) {
    return HostMutRef(nullptr, rows, cols, rows > 0 ? rows : 1);
  }
};

/// Read-only view of a mutable host ref.
inline HostConstRef as_const(const HostMutRef& m) {
  return HostConstRef(m.data, m.rows, m.cols, m.ld);
}

class Device;
class FaultInjector;
class FaultPlan;

/// Joins every device and aligns all their host clocks to the global
/// makespan — the multi-device barrier (cudaDeviceSynchronize over all
/// devices from the one orchestrating host thread).
void synchronize_all(const std::vector<Device*>& devices);

/// Opaque stream handle (FIFO of device operations).
struct Stream {
  int id = -1;
  bool valid() const { return id >= 0; }
};

/// Opaque event handle (cross-stream dependency marker).
struct Event {
  int id = -1;
  bool valid() const { return id >= 0; }
};

/// Handle to a device-resident matrix (column-major, ld == rows).
class DeviceMatrix {
 public:
  DeviceMatrix() = default;

  bool valid() const { return id_ >= 0; }
  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  StoragePrecision precision() const { return precision_; }
  std::int64_t id() const { return id_; }
  bytes_t bytes() const {
    return static_cast<bytes_t>(rows_) * cols_ * element_bytes(precision_);
  }

 private:
  friend class Device;
  std::int64_t id_ = -1;
  index_t rows_ = 0;
  index_t cols_ = 0;
  StoragePrecision precision_ = StoragePrecision::FP32;
};

/// A rectangular sub-block of a device matrix (what operations act on).
struct DeviceMatrixRef {
  DeviceMatrixRef() = default;
  /// Whole-matrix ref (implicit: ops take refs, callers usually have handles).
  DeviceMatrixRef(const DeviceMatrix& m)
      : matrix(m), row0(0), col0(0), rows(m.rows()), cols(m.cols()) {}
  DeviceMatrixRef(const DeviceMatrix& m, index_t i0, index_t j0, index_t r,
                  index_t c)
      : matrix(m), row0(i0), col0(j0), rows(r), cols(c) {}

  DeviceMatrixRef block(index_t i0, index_t j0, index_t r, index_t c) const {
    return DeviceMatrixRef(matrix, row0 + i0, col0 + j0, r, c);
  }

  DeviceMatrix matrix;
  index_t row0 = 0;
  index_t col0 = 0;
  index_t rows = 0;
  index_t cols = 0;
};

/// Host-side PCIe link state shared by several devices behind one root
/// complex / switch. Passing the same SharedHostLink to multiple Devices
/// serializes their host transfers per direction — the standard first-order
/// model of multi-GPU PCIe contention (the regime BLASX/cuBLASXt schedule
/// around, §2.2). Devices without a shared link own dedicated lanes.
struct SharedHostLink {
  sim_time_t h2d_free = 0;
  sim_time_t d2h_free = 0;
};

class Device {
 public:
  Device(DeviceSpec spec, ExecutionMode mode,
         std::shared_ptr<SharedHostLink> shared_link = nullptr);

  const DeviceSpec& spec() const { return model_.spec(); }
  ExecutionMode mode() const { return mode_; }
  PerfModel& model() { return model_; }
  const PerfModel& model() const { return model_; }

  /// Installs a seeded fault-injection plan (sim/faults.hpp): subsequent
  /// allocate/copy/gemm calls consult it and fail or corrupt on command.
  /// An empty plan removes injection. The fault-free fast path stays a
  /// single null-pointer check, so schedules and byte counts are unchanged
  /// when no plan is installed.
  void install_faults(const FaultPlan& plan);
  FaultInjector* fault_injector() const { return faults_.get(); }

  /// True after a `fatal` fault fired: the device is permanently lost.
  /// Every subsequent enqueue (allocate/copy/gemm/trsm/custom_compute)
  /// throws rocqr::DeviceLost. free()/synchronize()/download stay usable so
  /// RAII cleanup and post-mortem inspection never throw from destructors.
  bool dead() const { return dead_; }

  /// Whether host buffers are treated as pinned (default) or pageable.
  /// Pageable transfers run at spec().pageable_bandwidth_factor of the link
  /// rate — the knob behind the paper's "pinned memory" remark (§3.3.1).
  void set_host_memory_pinned(bool pinned) { host_pinned_ = pinned; }
  bool host_memory_pinned() const { return host_pinned_; }

  // --- Memory --------------------------------------------------------------

  /// Allocates a rows x cols device matrix. Throws DeviceOutOfMemory.
  DeviceMatrix allocate(index_t rows, index_t cols,
                        StoragePrecision precision = StoragePrecision::FP32,
                        std::string label = "");
  void free(DeviceMatrix& m);

  bytes_t memory_used() const { return allocator_.used(); }
  bytes_t memory_peak() const { return allocator_.peak_used(); }
  bytes_t memory_capacity() const { return allocator_.capacity(); }
  int live_allocations() const { return allocator_.live_allocations(); }

  // --- Streams & events ----------------------------------------------------

  Stream create_stream();
  Event create_event();
  /// Event completes when all work enqueued on `s` so far completes.
  void record_event(Event e, Stream s);
  /// Future work on `s` waits for the event (which must have been recorded).
  void wait_event(Stream s, Event e);

  /// Host blocks until the stream drains (advances the simulated host clock).
  void synchronize(Stream s);
  /// Host blocks until the whole device drains.
  void synchronize();

  /// Advances this device's view of the host clock (used by multi-device
  /// drivers: the one host thread that just joined device A cannot enqueue
  /// on device B "in the past").
  void advance_host_clock(sim_time_t t) { host_time_ = std::max(host_time_, t); }

  /// Simulated host clock (seconds since Device construction).
  sim_time_t now() const { return host_time_; }
  /// Latest completion time over everything enqueued so far.
  sim_time_t makespan() const;

  // --- Operations (asynchronous, FIFO per stream) ---------------------------

  /// PCIe H2D transfer of an fp32 payload (rows*cols*4 bytes). If the
  /// destination storage is FP16, elements are rounded on arrival (the
  /// device-side convert kernel of the paper's pipeline).
  void copy_h2d(DeviceMatrixRef dst, HostConstRef src, Stream s,
                std::string name = "h2d");

  /// PCIe D2H transfer; payload is fp32 (rows*cols*4 bytes).
  void copy_d2h(HostMutRef dst, DeviceMatrixRef src, Stream s,
                std::string name = "d2h");

  /// On-device copy (staging-buffer trick). Runs on the compute engine.
  void copy_d2d(DeviceMatrixRef dst, DeviceMatrixRef src, Stream s,
                std::string name = "d2d");

  /// C = alpha * op(A)*op(B) + beta * C on the compute engine. Duration from
  /// the PerfModel; numerics executed in Real mode.
  void gemm(blas::Op opa, blas::Op opb, float alpha, DeviceMatrixRef a,
            DeviceMatrixRef b, float beta, DeviceMatrixRef c,
            blas::GemmPrecision precision, Stream s, std::string name = "gemm");

  /// Triangular-solve kinds used by the LU / Cholesky drivers and solvers.
  enum class TrsmKind {
    LeftLowerUnit,  ///< X := L⁻¹ B with L unit lower triangular (LU panels)
    LeftUpperTrans, ///< X := R⁻ᵀ B with R upper triangular (Cholesky panels)
    LeftUpper,      ///< X := U⁻¹ B with U upper triangular (back substitution)
  };

  /// In-place triangular solve on the compute engine: `b` (m x n) is
  /// overwritten with the solution against the m x m triangle `tri`.
  /// Precision selects the modeled rate; numerics run in fp32 (triangular
  /// solves are not TensorCore ops on real hardware either).
  void trsm(TrsmKind kind, DeviceMatrixRef tri, DeviceMatrixRef b,
            blas::GemmPrecision precision, Stream s, std::string name = "trsm");

  /// Generic compute-engine operation with caller-supplied cost and optional
  /// Real-mode body (used by the panel factorization in src/qr).
  void custom_compute(Stream s, sim_time_t seconds, flops_t flops, OpKind kind,
                      std::string name, const std::function<void()>& body = {});

  // --- Batched operations ---------------------------------------------------
  //
  // One engine occupancy covering many same-direction sub-operations: the
  // batched serving path coalesces K same-shape jobs into a single
  // H2D / compute / D2H launch, paying the fixed per-op latency once instead
  // of K times. Duration is sum(solo durations) - (K-1) * latency; bytes and
  // flops sum. Real-mode numerics run the identical per-entry bodies in entry
  // order, so results are bit-identical to K solo operations.

  /// One H2D sub-transfer of a batched move-in.
  struct H2dBatchEntry {
    DeviceMatrixRef dst;
    HostConstRef src;
  };

  /// One D2H sub-transfer of a batched move-out.
  struct D2hBatchEntry {
    HostMutRef dst;
    DeviceMatrixRef src;
  };

  /// One independent GEMM of a batched (block-diagonal) compute launch.
  struct GemmBatchEntry {
    blas::Op opa = blas::Op::NoTrans;
    blas::Op opb = blas::Op::NoTrans;
    float alpha = 1.0f;
    DeviceMatrixRef a;
    DeviceMatrixRef b;
    float beta = 0.0f;
    DeviceMatrixRef c;
  };

  /// Fused H2D transfer: one link occupancy, one fault site, K payloads.
  void copy_h2d_batched(const std::vector<H2dBatchEntry>& entries, Stream s,
                        std::string name = "h2d_batched");

  /// Fused D2H transfer (symmetric to copy_h2d_batched).
  void copy_d2h_batched(const std::vector<D2hBatchEntry>& entries, Stream s,
                        std::string name = "d2h_batched");

  /// Block-diagonal GEMM: K independent products in one compute-engine
  /// launch (one kernel-launch latency amortized across the batch).
  void gemm_batched(const std::vector<GemmBatchEntry>& entries,
                    blas::GemmPrecision precision, Stream s,
                    std::string name = "gemm_batched");

  // --- Introspection ---------------------------------------------------------

  const Trace& trace() const { return trace_; }

  /// Real-mode test/debug aids: immediate, not part of the simulation.
  /// (Also used as the numerical body of custom compute ops, e.g. the panel
  /// factorization, which download-compute-upload on enqueue.)
  la::Matrix download(const DeviceMatrix& m) const;
  la::Matrix download(const DeviceMatrixRef& ref) const;
  void upload(const DeviceMatrix& m, la::ConstMatrixView v);
  void upload(const DeviceMatrixRef& ref, la::ConstMatrixView v);

 private:
  struct Buffer {
    bytes_t offset = 0;
    index_t rows = 0;
    index_t cols = 0;
    StoragePrecision precision = StoragePrecision::FP32;
    std::vector<float> data; // Real mode only
    std::string label;
  };

  struct Resolved {
    float* ptr = nullptr; // null in Phantom mode
    index_t ld = 0;
  };

  /// Schedules an op: computes start/end, updates engine & stream clocks,
  /// records the trace event. Returns the op id.
  std::int64_t schedule(Resource resource, OpKind kind, Stream s,
                        sim_time_t duration, bytes_t bytes, flops_t flops,
                        std::string name);

  Buffer& buffer_for(const DeviceMatrix& m, const char* what);
  const Buffer& buffer_for(const DeviceMatrix& m, const char* what) const;
  Resolved resolve(const DeviceMatrixRef& ref, const char* what);
  void validate_stream(Stream s, const char* what) const;
  void round_fp16_block(const DeviceMatrixRef& ref);
  /// Throws DeviceLost if the device is dead (every enqueue entry point).
  void ensure_alive(const char* what) const;
  /// Marks the device dead and throws DeviceLost for the op that killed it.
  [[noreturn]] void die(const char* site, const std::string& name);

  PerfModel model_;
  ExecutionMode mode_;
  DeviceAllocator allocator_;
  Trace trace_;

  std::unordered_map<std::int64_t, Buffer> buffers_;
  std::int64_t next_buffer_id_ = 0;
  std::int64_t next_op_id_ = 0;

  std::vector<sim_time_t> stream_tail_;
  std::vector<sim_time_t> event_time_;
  std::vector<bool> event_recorded_;
  sim_time_t engine_free_[3] = {0, 0, 0}; // indexed by Resource
  std::shared_ptr<SharedHostLink> shared_link_;
  std::shared_ptr<FaultInjector> faults_; // null when no plan is installed
  sim_time_t host_time_ = 0;
  bool host_pinned_ = true;
  bool dead_ = false;
};

} // namespace rocqr::sim
