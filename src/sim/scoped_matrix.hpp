// RAII ownership for device matrices: frees on scope exit, so drivers and
// engines cannot leak device memory when an allocation mid-sequence throws
// DeviceOutOfMemory. Move-only; release() hands the raw handle onward (the
// keep_c pattern).
#pragma once

#include <string>
#include <utility>

#include "common/telemetry.hpp"
#include "sim/device.hpp"

namespace rocqr::sim {

class ScopedMatrix {
 public:
  ScopedMatrix() = default;
  ScopedMatrix(Device& dev, index_t rows, index_t cols,
               StoragePrecision precision = StoragePrecision::FP32,
               std::string label = "")
      : dev_(&dev),
        matrix_(dev.allocate(rows, cols, precision, std::move(label))) {}

  /// Adopts an already-allocated matrix.
  ScopedMatrix(Device& dev, DeviceMatrix matrix)
      : dev_(&dev), matrix_(matrix) {}

  ScopedMatrix(const ScopedMatrix&) = delete;
  ScopedMatrix& operator=(const ScopedMatrix&) = delete;

  ScopedMatrix(ScopedMatrix&& other) noexcept
      : dev_(other.dev_), matrix_(other.matrix_) {
    other.dev_ = nullptr;
    other.matrix_ = DeviceMatrix();
  }
  ScopedMatrix& operator=(ScopedMatrix&& other) noexcept {
    if (this != &other) {
      reset();
      dev_ = other.dev_;
      matrix_ = other.matrix_;
      other.dev_ = nullptr;
      other.matrix_ = DeviceMatrix();
    }
    return *this;
  }

  ~ScopedMatrix() { reset(); }

  /// Frees the matrix now (no-op if empty or released).
  void reset() noexcept {
    if (dev_ != nullptr && matrix_.valid()) {
      try {
        dev_->free(matrix_);
      } catch (...) {
        // Destruction must not throw; a failed free here means the handle
        // was already invalidated elsewhere. Count it instead of swallowing
        // silently — engine tests assert `device_leaked_frees` stays zero
        // (tests/leak_check.hpp).
        telemetry::MetricsRegistry::global()
            .counter("device_leaked_frees")
            .increment();
      }
    }
    dev_ = nullptr;
    matrix_ = DeviceMatrix();
  }

  /// Gives up ownership and returns the raw handle (the keep_c pattern).
  DeviceMatrix release() {
    DeviceMatrix m = matrix_;
    dev_ = nullptr;
    matrix_ = DeviceMatrix();
    return m;
  }

  bool valid() const { return matrix_.valid(); }
  const DeviceMatrix& get() const { return matrix_; }
  DeviceMatrix& get() { return matrix_; }
  operator DeviceMatrixRef() const { return DeviceMatrixRef(matrix_); }

 private:
  Device* dev_ = nullptr;
  DeviceMatrix matrix_{};
};

} // namespace rocqr::sim
