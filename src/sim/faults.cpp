#include "sim/faults.hpp"

#include <cstdlib>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"
#include "common/telemetry.hpp"

namespace rocqr::sim {

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::string trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

FaultSite parse_site(const std::string& s, const std::string& clause) {
  if (s == "h2d") return FaultSite::H2D;
  if (s == "d2h") return FaultSite::D2H;
  if (s == "alloc") return FaultSite::Alloc;
  if (s == "compute") return FaultSite::Compute;
  throw InvalidArgument("FaultPlan: unknown site '" + s + "' in clause '" +
                        clause + "' (expected h2d|d2h|alloc|compute)");
}

FaultKind parse_kind(const std::string& s, const std::string& clause) {
  if (s == "transient") return FaultKind::Transient;
  if (s == "oom") return FaultKind::Oom;
  if (s == "corrupt") return FaultKind::Corrupt;
  if (s == "fatal") return FaultKind::Fatal;
  throw InvalidArgument("FaultPlan: unknown kind '" + s + "' in clause '" +
                        clause + "' (expected transient|oom|corrupt|fatal)");
}

bool kind_fits_site(FaultSite site, FaultKind kind) {
  switch (kind) {
    case FaultKind::Transient:
      return site == FaultSite::H2D || site == FaultSite::D2H;
    case FaultKind::Oom:
      return site == FaultSite::Alloc;
    case FaultKind::Corrupt:
      return site == FaultSite::Compute;
    case FaultKind::Fatal:
      return true; // permanent loss can strike any operation
  }
  return false;
}

std::int64_t parse_u64_param(const std::string& value, const char* key,
                             const std::string& clause) {
  if (value.empty() ||
      value.find_first_not_of("0123456789") != std::string::npos) {
    throw InvalidArgument(std::string("FaultPlan: '") + key +
                          "' needs a non-negative integer, got '" + value +
                          "' in clause '" + clause + "'");
  }
  errno = 0;
  const long long v = std::strtoll(value.c_str(), nullptr, 10);
  if (errno != 0) {
    throw InvalidArgument(std::string("FaultPlan: '") + key +
                          "' out of range in clause '" + clause + "'");
  }
  return static_cast<std::int64_t>(v);
}

double parse_prob(const std::string& value, const std::string& clause) {
  char* end = nullptr;
  errno = 0;
  const double p = std::strtod(value.c_str(), &end);
  if (value.empty() || end == nullptr || *end != '\0' || errno != 0 ||
      !(p >= 0.0 && p <= 1.0)) {
    throw InvalidArgument("FaultPlan: 'p' must be a probability in [0, 1], "
                          "got '" +
                          value + "' in clause '" + clause + "'");
  }
  return p;
}

} // namespace

const char* to_string(FaultSite site) {
  switch (site) {
    case FaultSite::H2D: return "h2d";
    case FaultSite::D2H: return "d2h";
    case FaultSite::Alloc: return "alloc";
    case FaultSite::Compute: return "compute";
  }
  return "?";
}

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::Transient: return "transient";
    case FaultKind::Oom: return "oom";
    case FaultKind::Corrupt: return "corrupt";
    case FaultKind::Fatal: return "fatal";
  }
  return "?";
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  for (const std::string& raw : split(spec, ';')) {
    const std::string clause = trim(raw);
    if (clause.empty()) continue; // tolerate trailing/duplicated ';'
    if (clause.rfind("seed=", 0) == 0) {
      plan.seed = static_cast<std::uint64_t>(
          parse_u64_param(clause.substr(5), "seed", clause));
      continue;
    }
    const std::vector<std::string> parts = split(clause, ':');
    if (parts.size() < 2 || parts.size() > 3) {
      throw InvalidArgument(
          "FaultPlan: clause '" + clause +
          "' must be site:kind[:params] or seed=N (see docs/FAULTS.md)");
    }
    FaultRule rule;
    rule.site = parse_site(trim(parts[0]), clause);
    rule.kind = parse_kind(trim(parts[1]), clause);
    if (!kind_fits_site(rule.site, rule.kind)) {
      throw InvalidArgument(std::string("FaultPlan: kind '") +
                            sim::to_string(rule.kind) +
                            "' is not valid at site '" +
                            sim::to_string(rule.site) + "' in clause '" +
                            clause + "'");
    }
    if (parts.size() == 3) {
      for (const std::string& raw_param : split(parts[2], ',')) {
        const std::string param = trim(raw_param);
        const size_t eq = param.find('=');
        if (eq == std::string::npos) {
          throw InvalidArgument("FaultPlan: parameter '" + param +
                                "' is not key=value in clause '" + clause +
                                "'");
        }
        const std::string key = param.substr(0, eq);
        const std::string value = param.substr(eq + 1);
        if (key == "p") {
          rule.probability = parse_prob(value, clause);
        } else if (key == "after") {
          rule.first_op = parse_u64_param(value, "after", clause) + 1;
        } else if (key == "op") {
          rule.first_op = parse_u64_param(value, "op", clause);
          ROCQR_CHECK(rule.first_op >= 1,
                      "FaultPlan: 'op' ordinals are 1-based ('" + clause +
                          "')");
        } else if (key == "count") {
          rule.count = parse_u64_param(value, "count", clause);
          ROCQR_CHECK(rule.count >= 1,
                      "FaultPlan: 'count' must be >= 1 ('" + clause + "')");
        } else {
          throw InvalidArgument("FaultPlan: unknown parameter '" + key +
                                "' in clause '" + clause +
                                "' (expected p|after|op|count)");
        }
      }
    }
    if ((rule.probability >= 0.0) == (rule.first_op >= 1)) {
      throw InvalidArgument(
          "FaultPlan: clause '" + clause +
          "' needs exactly one trigger: p=<prob> or op=<N>/after=<N>");
    }
    plan.rules.push_back(rule);
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::ostringstream os;
  for (const FaultRule& r : rules) {
    os << sim::to_string(r.site) << ':' << sim::to_string(r.kind) << ':';
    if (r.probability >= 0.0) {
      os << "p=" << std::setprecision(17) << r.probability;
    } else {
      os << "op=" << r.first_op;
    }
    if (r.count >= 1) os << ",count=" << r.count;
    os << ';';
  }
  os << "seed=" << seed;
  return os.str();
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), rule_rng_(plan_.seed),
      payload_rng_(plan_.seed ^ 0x9e3779b97f4a7c15ull),
      rule_fired_(plan_.rules.size(), 0),
      injected_counter_(
          &telemetry::MetricsRegistry::global().counter("faults_injected")) {}

bool FaultInjector::fire(FaultSite site) {
  const std::int64_t op = ++seen_[static_cast<int>(site)];
  bool fired = false;
  for (size_t i = 0; i < plan_.rules.size(); ++i) {
    const FaultRule& rule = plan_.rules[i];
    if (rule.site != site) continue;
    if (rule.probability >= 0.0) {
      // Draw for every probabilistic rule on every matching op — even after
      // a hit — so the random stream consumed is a function of the op
      // sequence alone and runs stay reproducible.
      const bool hit = rule_rng_.next_double() < rule.probability;
      const bool budget_left = rule.count < 0 || rule_fired_[i] < rule.count;
      if (hit && budget_left && !fired) {
        ++rule_fired_[i];
        fired = true;
        last_fired_kind_ = rule.kind;
      }
    } else if (!fired) {
      const std::int64_t n = rule.count < 0 ? 1 : rule.count;
      if (op >= rule.first_op && op < rule.first_op + n) {
        ++rule_fired_[i];
        fired = true;
        last_fired_kind_ = rule.kind;
      }
    }
  }
  if (fired) {
    ++fired_total_;
    injected_counter_->increment();
  }
  return fired;
}

} // namespace rocqr::sim
