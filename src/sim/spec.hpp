// DeviceSpec: the parameters of the simulated accelerator.
//
// Presets are calibrated against the paper's testbed (V100-PCIe 32 GB,
// CUDA 10.1, pinned host memory) and against the outlook discussion in §6
// (A100, RTX-30 class).
#pragma once

#include <string>

#include "common/types.hpp"

namespace rocqr::sim {

struct DeviceSpec {
  std::string name = "V100-PCIe-32GB";

  /// Device memory capacity in bytes (hard allocation limit).
  bytes_t memory_capacity = 32LL * (1LL << 30);

  /// Host->device and device->host link bandwidths, bytes/second, with
  /// *pinned* host memory (the paper: "around 12GB/s if using pinned
  /// memory"). The two directions are independent engines (PCIe is full
  /// duplex), which is what lets move-out hide under move-in (§3.3).
  double h2d_bytes_per_s = 13.0e9;
  double d2h_bytes_per_s = 13.0e9;

  /// Bandwidth multiplier when the host buffers are pageable: the driver
  /// must bounce through an internal pinned buffer, roughly halving
  /// throughput on PCIe-3 systems.
  double pageable_bandwidth_factor = 0.5;

  /// On-device copy bandwidth (staging-buffer trick, §4.1.2).
  double d2d_bytes_per_s = 800.0e9;

  /// Fixed per-operation launch/driver latencies in seconds.
  double copy_latency_s = 10e-6;
  double kernel_latency_s = 8e-6;

  /// Peak TensorCore (fp16-in/fp32-acc) and CUDA-core (fp32) GEMM rates.
  double tc_peak_flops = 112.0e12;
  double fp32_peak_flops = 14.0e12;

  /// Shape-efficiency knobs for the GEMM rate model; see PerfModel.
  double gemm_dim_halfpoint = 900.0;   ///< s(d) = d/(d + halfpoint)
  double tn_aspect_exponent = 0.3;     ///< reduction-heavy TN penalty
  /// Effective in-core panel-QR rate fraction: rate = tc_peak * panel_frac *
  /// m/(m + panel_halfpoint). Calibrated to Table 4 (26-31 TFLOP/s).
  double panel_frac = 0.30;
  double panel_halfpoint = 20000.0;

  // --- Presets -------------------------------------------------------------

  /// The paper's testbed.
  static DeviceSpec v100_32gb();
  /// The paper's "limit memory to 16 GB" experiment (Figs 14/15).
  static DeviceSpec v100_16gb();
  /// §6 outlook: A100 — ~2.7x faster TensorCore, same-order link speed.
  static DeviceSpec a100_40gb();
  /// §6 outlook: consumer RTX-30 class — smaller memory, slower link.
  static DeviceSpec rtx3080_10gb();

  /// Disk-CPU out-of-core (the paper's abstract and §2.1 heritage): the
  /// "device" is a 128 GiB RAM + AVX-512 CPU node and the "slow tier" an
  /// NVMe array — the same fast/slow boundary, different constants. Every
  /// driver in this library runs unchanged against it.
  static DeviceSpec nvme_cpu_node();

  /// The 1996 SOLAR configuration (§2.1): ~1 GFLOP/s workstation with a
  /// striped-disk backing store. Included for the era comparison.
  static DeviceSpec disk_cpu_1996();
};

} // namespace rocqr::sim
