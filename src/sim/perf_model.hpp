// PerfModel: maps operation shapes to simulated durations.
//
// Two layers:
//  1. A smooth analytic model — copy time = latency + bytes/bandwidth; GEMM
//     rate = peak * s(m)s(n)s(k) with s(d) = d/(d+h), plus a reduction-aspect
//     penalty (k/min(m,n))^-p for transposed-A ("inner product") GEMMs, which
//     reproduces the paper's observation that tall-skinny TN GEMMs cannot run
//     near TensorCore peak (52.6 vs 99.9 TFLOP/s, §5.1.1).
//  2. Exact per-shape overrides calibrated to the paper's measured rates for
//     the published benchmark shapes, so the tables reproduce quantitatively.
//     The smooth model covers every other shape (sweeps, other devices).
#pragma once

#include <map>
#include <tuple>

#include "blas/gemm.hpp"
#include "common/types.hpp"
#include "sim/spec.hpp"

namespace rocqr::sim {

/// GEMM shape key for calibration overrides. `ta` = A transposed.
struct GemmShapeKey {
  bool ta = false;
  index_t m = 0;
  index_t n = 0;
  index_t k = 0;

  auto operator<=>(const GemmShapeKey&) const = default;
};

class PerfModel {
 public:
  explicit PerfModel(DeviceSpec spec);

  const DeviceSpec& spec() const { return spec_; }

  /// PCIe transfer durations (fp32 payloads).
  sim_time_t h2d_seconds(bytes_t bytes) const;
  sim_time_t d2h_seconds(bytes_t bytes) const;
  /// On-device copy (staging-buffer moves).
  sim_time_t d2d_seconds(bytes_t bytes) const;

  /// Sustained GEMM rate in flop/s for op(A)[m x k] * op(B)[k x n].
  double gemm_rate(blas::Op opa, index_t m, index_t n, index_t k,
                   blas::GemmPrecision precision) const;

  sim_time_t gemm_seconds(blas::Op opa, index_t m, index_t n, index_t k,
                          blas::GemmPrecision precision) const;

  /// In-core recursive-CGS panel factorization of an m x n panel
  /// (the LATER solver the paper reuses). Calibrated to Table 4.
  double panel_rate(index_t m, index_t n) const;
  sim_time_t panel_seconds(index_t m, index_t n) const;

  /// Triangular solve of an m x m system against n right-hand sides
  /// (m² n flops). Triangular kernels sustain roughly half the rate of the
  /// equally-shaped GEMM on matrix accelerators.
  sim_time_t trsm_seconds(index_t m, index_t n,
                          blas::GemmPrecision precision) const;

  /// Pin the sustained rate (flop/s) for one exact TC-GEMM shape.
  void set_gemm_rate_override(const GemmShapeKey& key, double flops_per_s);

  /// Installs the paper's measured V100 rates (Tables 1 and 2).
  void install_paper_calibration();

 private:
  double smooth_gemm_rate(blas::Op opa, index_t m, index_t n, index_t k,
                          blas::GemmPrecision precision) const;

  DeviceSpec spec_;
  std::map<GemmShapeKey, double> overrides_;
};

} // namespace rocqr::sim
