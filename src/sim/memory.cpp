#include "sim/memory.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace rocqr::sim {

DeviceAllocator::DeviceAllocator(bytes_t capacity) : capacity_(capacity) {
  ROCQR_CHECK(capacity > 0, "DeviceAllocator: capacity must be positive");
  free_list_[0] = capacity;
}

bytes_t DeviceAllocator::allocate(bytes_t size) {
  ROCQR_CHECK(size > 0, "DeviceAllocator::allocate: size must be positive");
  // 256-byte alignment, like cudaMalloc.
  const bytes_t aligned = (size + 255) / 256 * 256;
  for (auto it = free_list_.begin(); it != free_list_.end(); ++it) {
    if (it->second < aligned) continue;
    const bytes_t offset = it->first;
    const bytes_t remaining = it->second - aligned;
    free_list_.erase(it);
    if (remaining > 0) free_list_[offset + aligned] = remaining;
    live_[offset] = aligned;
    used_ += aligned;
    peak_used_ = std::max(peak_used_, used_);
    return offset;
  }
  throw DeviceOutOfMemory("device OOM: requested " + format_bytes(aligned) +
                          ", free " + format_bytes(free_bytes()) +
                          " (largest block " +
                          format_bytes(largest_free_block()) + ") of " +
                          format_bytes(capacity_));
}

void DeviceAllocator::free(bytes_t offset) {
  const auto it = live_.find(offset);
  if (it == live_.end()) {
    throw ResourceError("DeviceAllocator::free: unknown or double-freed offset");
  }
  bytes_t size = it->second;
  used_ -= size;
  live_.erase(it);

  // Insert into the free list and coalesce with both neighbours.
  auto next = free_list_.upper_bound(offset);
  if (next != free_list_.end() && offset + size == next->first) {
    size += next->second;
    next = free_list_.erase(next);
  }
  if (next != free_list_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second == offset) {
      prev->second += size;
      return;
    }
  }
  free_list_[offset] = size;
}

bytes_t DeviceAllocator::largest_free_block() const {
  bytes_t best = 0;
  for (const auto& [offset, size] : free_list_) best = std::max(best, size);
  return best;
}

} // namespace rocqr::sim
