#include "sim/device.hpp"

#include <algorithm>
#include <cmath>

#include "blas/transform.hpp"
#include "blas/trsm.hpp"
#include "common/error.hpp"
#include "common/half.hpp"
#include "common/telemetry.hpp"
#include "sim/faults.hpp"

namespace rocqr::sim {

namespace {

void check_ref_bounds(const DeviceMatrixRef& ref, const char* what) {
  ROCQR_CHECK(ref.matrix.valid(), std::string(what) + ": invalid device matrix");
  ROCQR_CHECK(ref.row0 >= 0 && ref.col0 >= 0 && ref.rows >= 0 && ref.cols >= 0,
              std::string(what) + ": negative ref geometry");
  ROCQR_CHECK(ref.row0 + ref.rows <= ref.matrix.rows() &&
                  ref.col0 + ref.cols <= ref.matrix.cols(),
              std::string(what) + ": ref exceeds matrix bounds");
}

} // namespace

Device::Device(DeviceSpec spec, ExecutionMode mode,
               std::shared_ptr<SharedHostLink> shared_link)
    : model_(std::move(spec)), mode_(mode),
      allocator_(model_.spec().memory_capacity),
      shared_link_(std::move(shared_link)) {}

void Device::install_faults(const FaultPlan& plan) {
  faults_ = plan.empty() ? nullptr : std::make_shared<FaultInjector>(plan);
}

void Device::ensure_alive(const char* what) const {
  if (dead_) {
    throw DeviceLost(std::string(what) +
                     ": device is dead (a fatal fault fired earlier)");
  }
}

void Device::die(const char* site, const std::string& name) {
  dead_ = true;
  throw DeviceLost(std::string("injected fault: ") + site + ":fatal on '" +
                   name + "' — device is permanently lost");
}

DeviceMatrix Device::allocate(index_t rows, index_t cols,
                              StoragePrecision precision, std::string label) {
  ROCQR_CHECK(rows > 0 && cols > 0, "Device::allocate: dimensions must be positive");
  ensure_alive("Device::allocate");
  if (faults_ && faults_->fire(FaultSite::Alloc)) {
    if (faults_->last_fired_kind() == FaultKind::Fatal) die("alloc", label);
    throw DeviceOutOfMemory(
        "injected fault: alloc:oom at alloc op #" +
        std::to_string(faults_->ops_seen(FaultSite::Alloc)) +
        (label.empty() ? "" : " ('" + label + "')"));
  }
  const bytes_t bytes = static_cast<bytes_t>(rows) * cols * element_bytes(precision);
  Buffer buf;
  buf.offset = allocator_.allocate(bytes);
  buf.rows = rows;
  buf.cols = cols;
  buf.precision = precision;
  buf.label = std::move(label);
  if (mode_ == ExecutionMode::Real) {
    buf.data.assign(static_cast<size_t>(rows) * static_cast<size_t>(cols), 0.0f);
  }
  DeviceMatrix m;
  m.id_ = next_buffer_id_++;
  m.rows_ = rows;
  m.cols_ = cols;
  m.precision_ = precision;
  buffers_.emplace(m.id_, std::move(buf));
  return m;
}

void Device::free(DeviceMatrix& m) {
  Buffer& buf = buffer_for(m, "Device::free");
  allocator_.free(buf.offset);
  buffers_.erase(m.id());
  m.id_ = -1;
}

Device::Buffer& Device::buffer_for(const DeviceMatrix& m, const char* what) {
  ROCQR_CHECK(m.valid(), std::string(what) + ": invalid device matrix handle");
  const auto it = buffers_.find(m.id());
  if (it == buffers_.end()) {
    throw ResourceError(std::string(what) + ": device matrix was freed");
  }
  return it->second;
}

const Device::Buffer& Device::buffer_for(const DeviceMatrix& m,
                                         const char* what) const {
  ROCQR_CHECK(m.valid(), std::string(what) + ": invalid device matrix handle");
  const auto it = buffers_.find(m.id());
  if (it == buffers_.end()) {
    throw ResourceError(std::string(what) + ": device matrix was freed");
  }
  return it->second;
}

Device::Resolved Device::resolve(const DeviceMatrixRef& ref, const char* what) {
  check_ref_bounds(ref, what);
  Buffer& buf = buffer_for(ref.matrix, what);
  Resolved r;
  r.ld = buf.rows;
  if (mode_ == ExecutionMode::Real) {
    r.ptr = buf.data.data() + ref.row0 + ref.col0 * buf.rows;
  }
  return r;
}

Stream Device::create_stream() {
  Stream s;
  s.id = static_cast<int>(stream_tail_.size());
  stream_tail_.push_back(host_time_);
  return s;
}

Event Device::create_event() {
  Event e;
  e.id = static_cast<int>(event_time_.size());
  event_time_.push_back(0);
  event_recorded_.push_back(false);
  return e;
}

void Device::validate_stream(Stream s, const char* what) const {
  ROCQR_CHECK(s.valid() && s.id < static_cast<int>(stream_tail_.size()),
              std::string(what) + ": invalid stream");
}

void Device::record_event(Event e, Stream s) {
  validate_stream(s, "record_event");
  ROCQR_CHECK(e.valid() && e.id < static_cast<int>(event_time_.size()),
              "record_event: invalid event");
  event_time_[static_cast<size_t>(e.id)] = stream_tail_[static_cast<size_t>(s.id)];
  event_recorded_[static_cast<size_t>(e.id)] = true;
}

void Device::wait_event(Stream s, Event e) {
  validate_stream(s, "wait_event");
  ROCQR_CHECK(e.valid() && e.id < static_cast<int>(event_time_.size()),
              "wait_event: invalid event");
  if (!event_recorded_[static_cast<size_t>(e.id)]) {
    throw ResourceError(
        "wait_event: event was never recorded (the simulator requires "
        "record-before-wait program order)");
  }
  auto& tail = stream_tail_[static_cast<size_t>(s.id)];
  tail = std::max(tail, event_time_[static_cast<size_t>(e.id)]);
}

void Device::synchronize(Stream s) {
  validate_stream(s, "synchronize");
  host_time_ = std::max(host_time_, stream_tail_[static_cast<size_t>(s.id)]);
}

void Device::synchronize() { host_time_ = std::max(host_time_, makespan()); }

sim_time_t Device::makespan() const {
  sim_time_t latest = host_time_;
  for (const sim_time_t t : stream_tail_) latest = std::max(latest, t);
  return latest;
}

std::int64_t Device::schedule(Resource resource, OpKind kind, Stream s,
                              sim_time_t duration, bytes_t bytes, flops_t flops,
                              std::string name) {
  validate_stream(s, "schedule");
  ROCQR_CHECK(duration >= 0, "schedule: negative duration");
  // Host transfers contend on the shared PCIe link when one is attached.
  sim_time_t* engine_ptr = &engine_free_[static_cast<int>(resource)];
  if (shared_link_ != nullptr) {
    if (resource == Resource::H2D) engine_ptr = &shared_link_->h2d_free;
    if (resource == Resource::D2H) engine_ptr = &shared_link_->d2h_free;
  }
  auto& engine = *engine_ptr;
  auto& tail = stream_tail_[static_cast<size_t>(s.id)];
  const sim_time_t start = std::max({host_time_, tail, engine});
  const sim_time_t end = start + duration;
  tail = end;
  engine = end;

  TraceEvent ev;
  ev.id = next_op_id_++;
  ev.name = std::move(name);
  ev.kind = kind;
  ev.resource = resource;
  ev.stream = s.id;
  ev.start = start;
  ev.end = end;
  ev.bytes = bytes;
  ev.flops = flops;
  trace_.add(std::move(ev));
  return next_op_id_ - 1;
}

void Device::round_fp16_block(const DeviceMatrixRef& ref) {
  const Resolved r = resolve(ref, "round_fp16_block");
  if (r.ptr == nullptr) return;
  blas::round_to_half(ref.rows, ref.cols, r.ptr, r.ld);
}

void Device::copy_h2d(DeviceMatrixRef dst, HostConstRef src, Stream s,
                      std::string name) {
  check_ref_bounds(dst, "copy_h2d");
  ROCQR_CHECK(dst.rows == src.rows && dst.cols == src.cols,
              "copy_h2d: shape mismatch");
  if (dst.rows == 0 || dst.cols == 0) return;
  ensure_alive("copy_h2d");
  // Injected transfer failures throw before schedule(): a failed enqueue
  // consumes no engine time (the caller's retry backoff models the cost).
  if (faults_ && faults_->fire(FaultSite::H2D)) {
    if (faults_->last_fired_kind() == FaultKind::Fatal) die("h2d", name);
    throw TransferError("injected fault: h2d:transient on '" + name +
                        "' (h2d op #" +
                        std::to_string(faults_->ops_seen(FaultSite::H2D)) +
                        ")");
  }
  // PCIe payload is fp32 regardless of device-resident precision.
  const bytes_t bytes = static_cast<bytes_t>(dst.rows) * dst.cols * 4;
  const double scale =
      host_pinned_ ? 1.0 : 1.0 / model_.spec().pageable_bandwidth_factor;
  schedule(Resource::H2D, OpKind::CopyH2D, s, model_.h2d_seconds(bytes) * scale,
           bytes, 0, std::move(name));
  if (mode_ == ExecutionMode::Real) {
    if (src.data == nullptr) {
      throw PhantomDataError("copy_h2d: phantom host source in Real mode");
    }
    const Resolved d = resolve(dst, "copy_h2d");
    blas::copy_matrix(dst.rows, dst.cols, src.data, src.ld, d.ptr, d.ld);
    if (dst.matrix.precision() == StoragePrecision::FP16) {
      blas::round_to_half(dst.rows, dst.cols, d.ptr, d.ld);
    }
  }
}

void Device::copy_d2h(HostMutRef dst, DeviceMatrixRef src, Stream s,
                      std::string name) {
  check_ref_bounds(src, "copy_d2h");
  ROCQR_CHECK(dst.rows == src.rows && dst.cols == src.cols,
              "copy_d2h: shape mismatch");
  if (src.rows == 0 || src.cols == 0) return;
  ensure_alive("copy_d2h");
  if (faults_ && faults_->fire(FaultSite::D2H)) {
    if (faults_->last_fired_kind() == FaultKind::Fatal) die("d2h", name);
    throw TransferError("injected fault: d2h:transient on '" + name +
                        "' (d2h op #" +
                        std::to_string(faults_->ops_seen(FaultSite::D2H)) +
                        ")");
  }
  const bytes_t bytes = static_cast<bytes_t>(src.rows) * src.cols * 4;
  const double scale =
      host_pinned_ ? 1.0 : 1.0 / model_.spec().pageable_bandwidth_factor;
  schedule(Resource::D2H, OpKind::CopyD2H, s, model_.d2h_seconds(bytes) * scale,
           bytes, 0, std::move(name));
  if (mode_ == ExecutionMode::Real) {
    if (dst.data == nullptr) {
      throw PhantomDataError("copy_d2h: phantom host destination in Real mode");
    }
    const Resolved sv = resolve(src, "copy_d2h");
    blas::copy_matrix(src.rows, src.cols, sv.ptr, sv.ld, dst.data, dst.ld);
  }
}

void Device::copy_d2d(DeviceMatrixRef dst, DeviceMatrixRef src, Stream s,
                      std::string name) {
  check_ref_bounds(dst, "copy_d2d");
  check_ref_bounds(src, "copy_d2d");
  ROCQR_CHECK(dst.rows == src.rows && dst.cols == src.cols,
              "copy_d2d: shape mismatch");
  if (src.rows == 0 || src.cols == 0) return;
  ensure_alive("copy_d2d");
  const bytes_t bytes = static_cast<bytes_t>(src.rows) * src.cols *
                        element_bytes(src.matrix.precision());
  schedule(Resource::Compute, OpKind::CopyD2D, s, model_.d2d_seconds(bytes),
           bytes, 0, std::move(name));
  if (mode_ == ExecutionMode::Real) {
    const Resolved sv = resolve(src, "copy_d2d");
    const Resolved dv = resolve(dst, "copy_d2d");
    blas::copy_matrix(src.rows, src.cols, sv.ptr, sv.ld, dv.ptr, dv.ld);
    if (dst.matrix.precision() == StoragePrecision::FP16) {
      blas::round_to_half(dst.rows, dst.cols, dv.ptr, dv.ld);
    }
  }
}

void Device::gemm(blas::Op opa, blas::Op opb, float alpha, DeviceMatrixRef a,
                  DeviceMatrixRef b, float beta, DeviceMatrixRef c,
                  blas::GemmPrecision precision, Stream s, std::string name) {
  check_ref_bounds(a, "gemm");
  check_ref_bounds(b, "gemm");
  check_ref_bounds(c, "gemm");
  const index_t m = blas::op_rows(opa, a.rows, a.cols);
  const index_t k = blas::op_cols(opa, a.rows, a.cols);
  const index_t n = blas::op_cols(opb, b.rows, b.cols);
  ROCQR_CHECK(blas::op_rows(opb, b.rows, b.cols) == k,
              "gemm: inner dimension mismatch");
  ROCQR_CHECK(c.rows == m && c.cols == n, "gemm: C shape mismatch");
  if (m == 0 || n == 0) return;
  ensure_alive("gemm");

  // Compute-site faults corrupt (rather than abort) the op: silent data
  // corruption is the failure mode ABFT checksums exist for. In Phantom
  // mode there is nothing to corrupt, but the op still counts and fires so
  // plans behave identically across modes. A fatal compute fault instead
  // kills the device before the op is scheduled.
  const bool fired = faults_ && faults_->fire(FaultSite::Compute);
  if (fired && faults_->last_fired_kind() == FaultKind::Fatal) {
    die("compute", name);
  }
  const bool corrupt =
      fired && faults_->last_fired_kind() == FaultKind::Corrupt;
  const flops_t flops = blas::gemm_flops(m, n, k);
  // Attribute flops by problem shape: the paper's engines live or die by
  // whether their GEMMs are reduction-dominated (k-split inner products),
  // output-dominated (outer-product updates) or near-square (peak-rate).
  const index_t mn_max = std::max(m, n);
  const char* shape_class = k >= 4 * mn_max     ? "gemm_flops.reduction"
                            : mn_max >= 4 * k   ? "gemm_flops.outer"
                                                : "gemm_flops.square";
  telemetry::MetricsRegistry::global()
      .counter(std::string("sim.") + shape_class)
      .add(flops);
  schedule(Resource::Compute, OpKind::Gemm, s,
           model_.gemm_seconds(opa, m, n, k, precision), 0, flops,
           std::move(name));
  if (mode_ == ExecutionMode::Real) {
    const Resolved av = resolve(a, "gemm");
    const Resolved bv = resolve(b, "gemm");
    const Resolved cv = resolve(c, "gemm");
    blas::gemm(opa, opb, m, n, k, alpha, av.ptr, av.ld, bv.ptr, bv.ld, beta,
               cv.ptr, cv.ld, precision);
    if (c.matrix.precision() == StoragePrecision::FP16) {
      blas::round_to_half(c.rows, c.cols, cv.ptr, cv.ld);
    }
    if (corrupt) {
      // Perturb one output element by several orders of magnitude more than
      // the fp16-rounding noise an ABFT checksum must tolerate.
      Rng& rng = faults_->payload_rng();
      float& v = cv.ptr[rng.below(m) + rng.below(n) * cv.ld];
      v += 1.0e4f * (1.0f + std::fabs(v));
    }
  }
}

void Device::trsm(TrsmKind kind, DeviceMatrixRef tri, DeviceMatrixRef b,
                  blas::GemmPrecision precision, Stream s, std::string name) {
  check_ref_bounds(tri, "trsm");
  check_ref_bounds(b, "trsm");
  ROCQR_CHECK(tri.rows == tri.cols, "trsm: triangle must be square");
  ROCQR_CHECK(b.rows == tri.rows, "trsm: B row count must match triangle");
  if (b.rows == 0 || b.cols == 0) return;
  ensure_alive("trsm");

  const flops_t flops =
      static_cast<flops_t>(b.rows) * b.rows * b.cols;
  schedule(Resource::Compute, OpKind::Trsm, s,
           model_.trsm_seconds(b.rows, b.cols, precision), 0, flops,
           std::move(name));
  if (mode_ == ExecutionMode::Real) {
    const Resolved tv = resolve(tri, "trsm");
    const Resolved bv = resolve(b, "trsm");
    switch (kind) {
      case TrsmKind::LeftLowerUnit:
        blas::trsm_left_lower(b.rows, b.cols, /*unit_diagonal=*/true, tv.ptr,
                              tv.ld, bv.ptr, bv.ld);
        break;
      case TrsmKind::LeftUpperTrans:
        blas::trsm_left_upper_trans(b.rows, b.cols, tv.ptr, tv.ld, bv.ptr,
                                    bv.ld);
        break;
      case TrsmKind::LeftUpper:
        blas::trsm_left_upper(b.rows, b.cols, tv.ptr, tv.ld, bv.ptr, bv.ld);
        break;
    }
    if (b.matrix.precision() == StoragePrecision::FP16) {
      blas::round_to_half(b.rows, b.cols, bv.ptr, bv.ld);
    }
  }
}

void Device::custom_compute(Stream s, sim_time_t seconds, flops_t flops,
                            OpKind kind, std::string name,
                            const std::function<void()>& body) {
  ensure_alive("custom_compute");
  schedule(Resource::Compute, kind, s, seconds, 0, flops, std::move(name));
  if (mode_ == ExecutionMode::Real && body) body();
}

void Device::copy_h2d_batched(const std::vector<H2dBatchEntry>& entries,
                              Stream s, std::string name) {
  bytes_t bytes = 0;
  sim_time_t duration = 0;
  int live = 0;
  for (const H2dBatchEntry& e : entries) {
    check_ref_bounds(e.dst, "copy_h2d_batched");
    ROCQR_CHECK(e.dst.rows == e.src.rows && e.dst.cols == e.src.cols,
                "copy_h2d_batched: shape mismatch");
    if (e.dst.rows == 0 || e.dst.cols == 0) continue;
    const bytes_t b = static_cast<bytes_t>(e.dst.rows) * e.dst.cols * 4;
    bytes += b;
    duration += model_.h2d_seconds(b);
    ++live;
  }
  if (live == 0) return;
  ensure_alive("copy_h2d_batched");
  // One fused transfer is one fault site: a transient aborts the whole
  // enqueue (the caller's retry replays every payload), a fatal kills the
  // device — exactly the solo copy_h2d contract, counted once.
  if (faults_ && faults_->fire(FaultSite::H2D)) {
    if (faults_->last_fired_kind() == FaultKind::Fatal) die("h2d", name);
    throw TransferError("injected fault: h2d:transient on '" + name +
                        "' (h2d op #" +
                        std::to_string(faults_->ops_seen(FaultSite::H2D)) +
                        ")");
  }
  // The fixed link-turnaround latency is paid once for the fused transfer,
  // not per payload: sum(solo) - (K-1) * latency.
  duration -= static_cast<sim_time_t>(live - 1) * model_.spec().copy_latency_s;
  const double scale =
      host_pinned_ ? 1.0 : 1.0 / model_.spec().pageable_bandwidth_factor;
  schedule(Resource::H2D, OpKind::CopyH2D, s, duration * scale, bytes, 0,
           std::move(name));
  if (mode_ == ExecutionMode::Real) {
    for (const H2dBatchEntry& e : entries) {
      if (e.dst.rows == 0 || e.dst.cols == 0) continue;
      if (e.src.data == nullptr) {
        throw PhantomDataError(
            "copy_h2d_batched: phantom host source in Real mode");
      }
      const Resolved d = resolve(e.dst, "copy_h2d_batched");
      blas::copy_matrix(e.dst.rows, e.dst.cols, e.src.data, e.src.ld, d.ptr,
                        d.ld);
      if (e.dst.matrix.precision() == StoragePrecision::FP16) {
        blas::round_to_half(e.dst.rows, e.dst.cols, d.ptr, d.ld);
      }
    }
  }
}

void Device::copy_d2h_batched(const std::vector<D2hBatchEntry>& entries,
                              Stream s, std::string name) {
  bytes_t bytes = 0;
  sim_time_t duration = 0;
  int live = 0;
  for (const D2hBatchEntry& e : entries) {
    check_ref_bounds(e.src, "copy_d2h_batched");
    ROCQR_CHECK(e.dst.rows == e.src.rows && e.dst.cols == e.src.cols,
                "copy_d2h_batched: shape mismatch");
    if (e.src.rows == 0 || e.src.cols == 0) continue;
    const bytes_t b = static_cast<bytes_t>(e.src.rows) * e.src.cols * 4;
    bytes += b;
    duration += model_.d2h_seconds(b);
    ++live;
  }
  if (live == 0) return;
  ensure_alive("copy_d2h_batched");
  if (faults_ && faults_->fire(FaultSite::D2H)) {
    if (faults_->last_fired_kind() == FaultKind::Fatal) die("d2h", name);
    throw TransferError("injected fault: d2h:transient on '" + name +
                        "' (d2h op #" +
                        std::to_string(faults_->ops_seen(FaultSite::D2H)) +
                        ")");
  }
  duration -= static_cast<sim_time_t>(live - 1) * model_.spec().copy_latency_s;
  const double scale =
      host_pinned_ ? 1.0 : 1.0 / model_.spec().pageable_bandwidth_factor;
  schedule(Resource::D2H, OpKind::CopyD2H, s, duration * scale, bytes, 0,
           std::move(name));
  if (mode_ == ExecutionMode::Real) {
    for (const D2hBatchEntry& e : entries) {
      if (e.src.rows == 0 || e.src.cols == 0) continue;
      if (e.dst.data == nullptr) {
        throw PhantomDataError(
            "copy_d2h_batched: phantom host destination in Real mode");
      }
      const Resolved sv = resolve(e.src, "copy_d2h_batched");
      blas::copy_matrix(e.src.rows, e.src.cols, sv.ptr, sv.ld, e.dst.data,
                        e.dst.ld);
    }
  }
}

void Device::gemm_batched(const std::vector<GemmBatchEntry>& entries,
                          blas::GemmPrecision precision, Stream s,
                          std::string name) {
  sim_time_t duration = 0;
  flops_t flops = 0;
  int live = 0;
  for (const GemmBatchEntry& e : entries) {
    check_ref_bounds(e.a, "gemm_batched");
    check_ref_bounds(e.b, "gemm_batched");
    check_ref_bounds(e.c, "gemm_batched");
    const index_t m = blas::op_rows(e.opa, e.a.rows, e.a.cols);
    const index_t k = blas::op_cols(e.opa, e.a.rows, e.a.cols);
    const index_t n = blas::op_cols(e.opb, e.b.rows, e.b.cols);
    ROCQR_CHECK(blas::op_rows(e.opb, e.b.rows, e.b.cols) == k,
                "gemm_batched: inner dimension mismatch");
    ROCQR_CHECK(e.c.rows == m && e.c.cols == n,
                "gemm_batched: C shape mismatch");
    if (m == 0 || n == 0) continue;
    const flops_t f = blas::gemm_flops(m, n, k);
    flops += f;
    duration += model_.gemm_seconds(e.opa, m, n, k, precision);
    const index_t mn_max = std::max(m, n);
    const char* shape_class = k >= 4 * mn_max   ? "gemm_flops.reduction"
                              : mn_max >= 4 * k ? "gemm_flops.outer"
                                                : "gemm_flops.square";
    telemetry::MetricsRegistry::global()
        .counter(std::string("sim.") + shape_class)
        .add(f);
    ++live;
  }
  if (live == 0) return;
  ensure_alive("gemm_batched");
  const bool fired = faults_ && faults_->fire(FaultSite::Compute);
  if (fired && faults_->last_fired_kind() == FaultKind::Fatal) {
    die("compute", name);
  }
  const bool corrupt =
      fired && faults_->last_fired_kind() == FaultKind::Corrupt;
  // One kernel-launch latency for the block-diagonal batch.
  duration -=
      static_cast<sim_time_t>(live - 1) * model_.spec().kernel_latency_s;
  schedule(Resource::Compute, OpKind::Gemm, s, duration, 0, flops,
           std::move(name));
  if (mode_ == ExecutionMode::Real) {
    bool first = true;
    for (const GemmBatchEntry& e : entries) {
      const index_t m = blas::op_rows(e.opa, e.a.rows, e.a.cols);
      const index_t k = blas::op_cols(e.opa, e.a.rows, e.a.cols);
      const index_t n = blas::op_cols(e.opb, e.b.rows, e.b.cols);
      if (m == 0 || n == 0) continue;
      const Resolved av = resolve(e.a, "gemm_batched");
      const Resolved bv = resolve(e.b, "gemm_batched");
      const Resolved cv = resolve(e.c, "gemm_batched");
      blas::gemm(e.opa, e.opb, m, n, k, e.alpha, av.ptr, av.ld, bv.ptr, bv.ld,
                 e.beta, cv.ptr, cv.ld, precision);
      if (e.c.matrix.precision() == StoragePrecision::FP16) {
        blas::round_to_half(e.c.rows, e.c.cols, cv.ptr, cv.ld);
      }
      if (corrupt && first) {
        Rng& rng = faults_->payload_rng();
        float& v = cv.ptr[rng.below(m) + rng.below(n) * cv.ld];
        v += 1.0e4f * (1.0f + std::fabs(v));
      }
      first = false;
    }
  }
}

void synchronize_all(const std::vector<Device*>& devices) {
  sim_time_t latest = 0;
  for (Device* dev : devices) {
    ROCQR_CHECK(dev != nullptr, "synchronize_all: null device");
    dev->synchronize();
    latest = std::max(latest, dev->now());
  }
  for (Device* dev : devices) dev->advance_host_clock(latest);
}

la::Matrix Device::download(const DeviceMatrix& m) const {
  const Buffer& buf = buffer_for(m, "download");
  if (mode_ != ExecutionMode::Real) {
    throw PhantomDataError("download: device is in Phantom mode");
  }
  la::Matrix out(buf.rows, buf.cols);
  blas::copy_matrix(buf.rows, buf.cols, buf.data.data(), buf.rows, out.data(),
                    out.ld());
  return out;
}

void Device::upload(const DeviceMatrix& m, la::ConstMatrixView v) {
  upload(DeviceMatrixRef(m), v);
}

la::Matrix Device::download(const DeviceMatrixRef& ref) const {
  check_ref_bounds(ref, "download");
  const Buffer& buf = buffer_for(ref.matrix, "download");
  if (mode_ != ExecutionMode::Real) {
    throw PhantomDataError("download: device is in Phantom mode");
  }
  la::Matrix out(ref.rows, ref.cols);
  blas::copy_matrix(ref.rows, ref.cols,
                    buf.data.data() + ref.row0 + ref.col0 * buf.rows,
                    buf.rows, out.data(), out.ld());
  return out;
}

void Device::upload(const DeviceMatrixRef& ref, la::ConstMatrixView v) {
  check_ref_bounds(ref, "upload");
  Buffer& buf = buffer_for(ref.matrix, "upload");
  if (mode_ != ExecutionMode::Real) {
    throw PhantomDataError("upload: device is in Phantom mode");
  }
  ROCQR_CHECK(v.rows() == ref.rows && v.cols() == ref.cols,
              "upload: shape mismatch");
  float* dst = buf.data.data() + ref.row0 + ref.col0 * buf.rows;
  blas::copy_matrix(v.rows(), v.cols(), v.data(), v.ld(), dst, buf.rows);
  if (buf.precision == StoragePrecision::FP16) {
    blas::round_to_half(ref.rows, ref.cols, dst, buf.rows);
  }
}

} // namespace rocqr::sim
