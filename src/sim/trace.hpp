// Execution trace of the simulated device: one interval per operation.
//
// This is the reproduction's counterpart of the paper's timeline figures
// (Figs 7-15): per-engine Gantt rows for H2D, compute, and D2H, plus byte
// and flop counters for the data-movement tables.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace rocqr::sim {

/// The three contended engines of the device (+Host for sync markers).
enum class Resource { H2D, Compute, D2H };

enum class OpKind { CopyH2D, CopyD2H, CopyD2D, Gemm, Trsm, Panel, Custom };

const char* to_string(Resource r);
const char* to_string(OpKind k);

struct TraceEvent {
  std::int64_t id = 0;
  std::string name;
  OpKind kind = OpKind::Custom;
  Resource resource = Resource::Compute;
  int stream = 0;
  sim_time_t start = 0;
  sim_time_t end = 0;
  bytes_t bytes = 0;
  flops_t flops = 0;
};

class Trace {
 public:
  void add(TraceEvent event);
  void clear();

  const std::vector<TraceEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  /// Latest end time over all events (0 when empty).
  sim_time_t makespan() const;

  /// Total busy time of one engine (its intervals never overlap).
  sim_time_t busy_seconds(Resource r) const;

  /// Bytes moved per direction.
  bytes_t bytes_h2d() const { return bytes_h2d_; }
  bytes_t bytes_d2h() const { return bytes_d2h_; }
  bytes_t bytes_d2d() const { return bytes_d2d_; }
  flops_t total_flops() const { return flops_; }

  /// Fraction of copy time hidden under other engines' activity:
  /// 1 - (makespan - busy(Compute)) / (busy(H2D) + busy(D2H)), clamped to
  /// [0,1]. Equals 1 when communication is perfectly overlapped.
  double overlap_ratio() const;

  /// ASCII Gantt chart with one lane per engine, `width` columns wide.
  std::string render_gantt(int width = 100) const;

  /// CSV: id,name,kind,resource,stream,start,end,bytes,flops
  void write_csv(std::ostream& os) const;

  /// Chrome tracing JSON (load in chrome://tracing or Perfetto): one
  /// complete ("ph":"X") event per operation, one track per engine.
  void write_chrome_json(std::ostream& os) const;

  /// Number of events recorded so far (use as a window anchor).
  size_t size() const { return events_.size(); }

 private:
  std::vector<TraceEvent> events_;
  bytes_t bytes_h2d_ = 0;
  bytes_t bytes_d2h_ = 0;
  bytes_t bytes_d2d_ = 0;
  flops_t flops_ = 0;
};

/// Aggregate view of a contiguous window of trace events — used to report
/// the cost of one OOC operation out of a longer run.
struct TraceSummary {
  sim_time_t first_start = 0;
  sim_time_t last_end = 0;
  sim_time_t span() const { return last_end - first_start; }
  sim_time_t h2d_busy = 0;
  sim_time_t d2h_busy = 0;
  sim_time_t compute_busy = 0;
  bytes_t bytes_h2d = 0;
  bytes_t bytes_d2h = 0;
  bytes_t bytes_d2d = 0;
  flops_t flops = 0;
  int events = 0;
};

/// Summarizes events [from, to) of the trace (to = npos means "to the end").
TraceSummary summarize(const Trace& trace, size_t from = 0,
                       size_t to = static_cast<size_t>(-1));

} // namespace rocqr::sim
