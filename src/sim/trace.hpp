// Execution trace of the simulated device: one interval per operation.
//
// This is the reproduction's counterpart of the paper's timeline figures
// (Figs 7-15): per-engine Gantt rows for H2D, compute, and D2H, plus byte
// and flop counters for the data-movement tables.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace rocqr::sim {

/// The three contended engines of the device (+Host for sync markers).
enum class Resource { H2D, Compute, D2H };

enum class OpKind { CopyH2D, CopyD2H, CopyD2D, Gemm, Trsm, Panel, Custom };

const char* to_string(Resource r);
const char* to_string(OpKind k);

struct TraceEvent {
  std::int64_t id = 0;
  std::string name;
  OpKind kind = OpKind::Custom;
  Resource resource = Resource::Compute;
  int stream = 0;
  sim_time_t start = 0;
  sim_time_t end = 0;
  bytes_t bytes = 0;
  flops_t flops = 0;
};

class Trace {
 public:
  void add(TraceEvent event);
  void clear();

  const std::vector<TraceEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  /// Latest end time over all events (0 when empty).
  sim_time_t makespan() const;

  /// Total busy time of one engine (its intervals never overlap).
  sim_time_t busy_seconds(Resource r) const;

  /// Bytes moved per direction.
  bytes_t bytes_h2d() const { return bytes_h2d_; }
  bytes_t bytes_d2h() const { return bytes_d2h_; }
  bytes_t bytes_d2d() const { return bytes_d2d_; }
  flops_t total_flops() const { return flops_; }

  /// Fraction of copy time hidden under other engines' activity:
  /// 1 - (makespan - busy(Compute)) / (busy(H2D) + busy(D2H)), clamped to
  /// [0,1]. Equals 1 when communication is perfectly overlapped.
  double overlap_ratio() const;

  /// ASCII Gantt chart with one lane per engine, `width` columns wide.
  std::string render_gantt(int width = 100) const;

  /// CSV: id,name,kind,resource,stream,start,end,bytes,flops
  void write_csv(std::ostream& os) const;

  /// Chrome tracing JSON (load in chrome://tracing or Perfetto): one
  /// complete ("ph":"X") event per operation, one track per engine and one
  /// per stream. Convenience wrapper over sim::write_chrome_trace (see
  /// sim/trace_export.hpp), which can additionally render the phase-span
  /// tree collected via telemetry::SpanLog.
  void write_chrome_json(std::ostream& os) const;

  /// Number of events recorded so far (use as a window anchor).
  size_t size() const { return events_.size(); }

 private:
  std::vector<TraceEvent> events_;
  bytes_t bytes_h2d_ = 0;
  bytes_t bytes_d2h_ = 0;
  bytes_t bytes_d2d_ = 0;
  flops_t flops_ = 0;
};

/// The one aggregate view of a contiguous window of trace events. Every
/// engine and driver statistic (the former OocGemmStats summary and QrStats)
/// derives from this single struct via engine_stats_from_trace, so there is
/// exactly one place counters are accumulated.
///
/// Naming convention (uniform with the Trace accessors): byte counters are
/// `bytes_<direction>`, busy times are `<engine>_seconds`.
struct EngineStats {
  // Window extent.
  sim_time_t first_start = 0;
  sim_time_t last_end = 0;
  sim_time_t total_seconds = 0; ///< last_end - first_start (window makespan)
  sim_time_t span() const { return total_seconds; }

  // Per-engine busy time.
  sim_time_t h2d_seconds = 0;     ///< H2D link busy
  sim_time_t d2h_seconds = 0;     ///< D2H link busy
  sim_time_t compute_seconds = 0; ///< compute engine busy (all kinds)

  // Compute-engine breakdown by operation kind.
  sim_time_t panel_seconds = 0; ///< panel factorizations
  sim_time_t gemm_seconds = 0;  ///< GEMMs and triangular solves
  sim_time_t d2d_seconds = 0;   ///< staging copies

  // Volumes.
  bytes_t bytes_h2d = 0;
  bytes_t bytes_d2h = 0;
  bytes_t bytes_d2d = 0;
  flops_t flops = 0;

  bytes_t peak_device_bytes = 0; ///< filled by drivers (not trace-derived)
  index_t panels = 0;            ///< panel factorizations in the window
  int events = 0;                ///< trace events in the window

  double sustained_flops_per_s() const {
    return total_seconds > 0 ? static_cast<double>(flops) / total_seconds
                             : 0.0;
  }
};

/// Derives EngineStats from the trace events [from, to) (to = npos means
/// "to the end"). With a non-empty `name_prefix`, only events whose name
/// starts with the prefix contribute — per-job attribution when several
/// factorizations interleave on one device (qr/tiled_qr). All windowed
/// aggregates in the repo route through this one deriver.
EngineStats engine_stats_from_trace(const Trace& trace, size_t from,
                                    size_t to, std::string_view name_prefix);
inline EngineStats engine_stats_from_trace(const Trace& trace, size_t from = 0,
                                           size_t to = static_cast<size_t>(-1)) {
  return engine_stats_from_trace(trace, from, to, {});
}

/// Historic name for the windowed aggregate; same type, same deriver.
using TraceSummary = EngineStats;

/// Summarizes events [from, to) of the trace (to = npos means "to the end").
inline TraceSummary summarize(const Trace& trace, size_t from = 0,
                              size_t to = static_cast<size_t>(-1)) {
  return engine_stats_from_trace(trace, from, to);
}

} // namespace rocqr::sim
