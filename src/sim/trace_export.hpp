// Machine-readable export of the simulated timeline: Chrome-trace/Perfetto
// JSON for the trace (the paper's Gantt figures, Figs 7-15, loadable in
// chrome://tracing), plus the glue binding telemetry spans to a device's
// trace window.
//
// Track layout of the exported file:
//   pid 0 "engines"  — one thread per Resource (H2D, Compute, D2H); the
//                      hardware-occupancy view, intervals never overlap
//                      within a track.
//   pid 1 "streams"  — one thread per stream id; the program-order view.
//   pid 2 "phases"   — the span tree, one thread per nesting depth; each
//                      span covers [earliest start, latest end) of the trace
//                      events enqueued inside it.
#pragma once

#include <iosfwd>

#include "common/telemetry.hpp"
#include "sim/device.hpp"
#include "sim/trace.hpp"

namespace rocqr::sim {

/// Writes the trace (and, when `spans` is non-null, its phase-span tree) as
/// a Chrome tracing JSON object. Events are emitted in nondecreasing-`ts`
/// order; timestamps are microseconds of simulated time.
void write_chrome_trace(std::ostream& os, const Trace& trace,
                        const telemetry::SpanLog* spans = nullptr);

/// RAII phase span bound to a device's trace: the cursor is the trace event
/// count, so the span window is exactly the events enqueued in scope.
///
///   { TraceSpan span(dev, "qr.panel"); ... enqueue panel ops ... }
///
/// Spans land in telemetry::SpanLog::global(); nesting follows C++ scope.
class TraceSpan {
 public:
  TraceSpan(const Device& dev, std::string name)
      : span_(std::move(name),
              [&dev] { return static_cast<std::uint64_t>(dev.trace().size()); }) {}

 private:
  telemetry::Span span_;
};

} // namespace rocqr::sim
