// Deterministic, seeded fault injection for the simulated device.
//
// Long out-of-core runs stream terabytes over one PCIe link; the dominant
// operational risks are transient transfer failures, device OOM under
// contention, and silent compute corruption. This header models all three
// as a FaultPlan — a list of rules parsed from a compact spec string —
// that a Device executes at its operation entry points:
//
//   h2d:transient:p=0.01;alloc:oom:after=3;compute:corrupt:op=12;seed=7
//
// Grammar (clauses separated by ';'):
//   clause  := site ':' kind [':' params] | 'seed=' uint64
//   site    := 'h2d' | 'd2h' | 'alloc' | 'compute'
//   kind    := 'transient' (h2d/d2h) | 'oom' (alloc) | 'corrupt' (compute)
//              | 'fatal' (any site)
//   params  := param (',' param)*
//   param   := 'p=' prob | 'after=' uint | 'op=' uint | 'count=' uint
//
// Per-rule semantics (each rule keeps its own fire budget; op ordinals are
// 1-based and counted per site across the whole device lifetime):
//   p=x      every op at the site fails with probability x (seeded, so the
//            sequence of failures is a pure function of plan + op order);
//            'count' caps total fires (default: unlimited).
//   op=N     ops N .. N+count-1 fail (count defaults to 1).
//   after=N  the first N ops succeed, then the next 'count' fail — sugar
//            for op=N+1.
//
// Determinism: one FaultInjector owns one Rng seeded from the plan; a
// probabilistic rule draws exactly once per op at its site, so two runs
// with the same plan and the same op sequence inject identical faults.
//
// What fires as what (see Device): h2d/d2h -> rocqr::TransferError thrown
// before the op is scheduled (a failed enqueue consumes no engine time);
// alloc -> rocqr::DeviceOutOfMemory; compute -> one element of the GEMM
// output perturbed after the numerics run (Real mode; Phantom only counts).
// A 'fatal' rule models permanent device loss: valid at every site
// (spec grammar `site:fatal[:after=N|op=N|p=x][,count=N]`), it marks the
// Device dead — the firing op and every subsequent op throw
// rocqr::DeviceLost, which no retry or degradation path absorbs.
// Every fire bumps the `faults_injected` telemetry counter.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace rocqr::telemetry {
class Counter;
} // namespace rocqr::telemetry

namespace rocqr::sim {

enum class FaultSite : int { H2D = 0, D2H = 1, Alloc = 2, Compute = 3 };
enum class FaultKind { Transient, Oom, Corrupt, Fatal };

constexpr int kFaultSiteCount = 4;

const char* to_string(FaultSite site);
const char* to_string(FaultKind kind);

/// One clause of a plan. Exactly one of `probability` (>= 0) or `first_op`
/// (>= 1) is active; `count` is the fire budget (-1 = default: 1 for
/// deterministic rules, unlimited for probabilistic ones).
struct FaultRule {
  FaultSite site = FaultSite::H2D;
  FaultKind kind = FaultKind::Transient;
  double probability = -1.0;
  std::int64_t first_op = -1;
  std::int64_t count = -1;
};

class FaultPlan {
 public:
  /// Parses the spec grammar above. Throws InvalidArgument on malformed
  /// clauses, unknown sites/kinds, site-incompatible kinds, p outside
  /// [0, 1], or zero/negative ordinals.
  static FaultPlan parse(const std::string& spec);

  bool empty() const { return rules.empty(); }

  /// Canonical spec string that parses back to an equal plan.
  std::string to_string() const;

  std::vector<FaultRule> rules;
  std::uint64_t seed = 0x5eedfa17u;
};

/// Executes a plan against a stream of per-site operations. Owned by a
/// Device (install_faults); one instance per device so multi-device runs
/// inject independently.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Called once per operation at `site`; true means the device must fail
  /// this op. Counts the op, evaluates every matching rule in plan order,
  /// and charges the first rule that fires. When several kinds share a
  /// site (e.g. compute:corrupt and compute:fatal), last_fired_kind()
  /// tells the device which one won.
  bool fire(FaultSite site);

  /// Kind of the rule charged by the most recent fire() that returned true.
  /// Only meaningful immediately after such a call.
  FaultKind last_fired_kind() const { return last_fired_kind_; }

  /// Ops observed at `site` so far (including the one currently firing).
  std::int64_t ops_seen(FaultSite site) const {
    return seen_[static_cast<int>(site)];
  }

  /// Total faults fired over the injector's lifetime.
  std::int64_t faults_fired() const { return fired_total_; }

  const FaultPlan& plan() const { return plan_; }

  /// Deterministic stream for fault payloads (e.g. which GEMM output
  /// element to corrupt). Separate draws from the per-op rule draws.
  Rng& payload_rng() { return payload_rng_; }

 private:
  FaultPlan plan_;
  Rng rule_rng_;
  Rng payload_rng_;
  std::int64_t seen_[kFaultSiteCount] = {};
  std::vector<std::int64_t> rule_fired_;
  std::int64_t fired_total_ = 0;
  FaultKind last_fired_kind_ = FaultKind::Transient;
  telemetry::Counter* injected_counter_;
};

} // namespace rocqr::sim
