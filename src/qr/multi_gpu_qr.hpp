// Multi-GPU out-of-core QR — the data-parallel port a BLASX/cuBLASXt-era
// system would write: panels factor on device 0, the trailing inner/outer
// products partition the trailing columns across all devices (each streams
// its own copy of the panel — the replication cost real multi-GPU BLAS
// pays), and the devices coordinate through host barriers between phases.
#pragma once

#include <vector>

#include "qr/options.hpp"
#include "sim/device.hpp"

namespace rocqr::qr {

/// Factors `a` (m x n host, becomes Q) with `r` receiving R, distributing
/// the per-iteration trailing updates across `devices`. With one device it
/// degenerates to a blocking_ooc_qr with phase barriers. Pass devices
/// constructed with a SharedHostLink to model PCIe contention.
QrStats multi_gpu_blocking_qr(const std::vector<sim::Device*>& devices,
                              sim::HostMutRef a, sim::HostMutRef r,
                              const QrOptions& opts);

} // namespace rocqr::qr
