// Multi-GPU out-of-core QR — the data-parallel port a BLASX/cuBLASXt-era
// system would write: panels factor on device 0, the trailing inner/outer
// products partition the trailing columns across all devices (each streams
// its own copy of the panel — the replication cost real multi-GPU BLAS
// pays), and the devices coordinate through host barriers between phases.
#pragma once

#include <vector>

#include "qr/options.hpp"
#include "sim/device.hpp"

namespace rocqr::qr {

namespace detail {

/// Factors `a` (m x n host, becomes Q) with `r` receiving R, distributing
/// the per-iteration trailing updates across `devices`. With one device it
/// degenerates to the blocking driver with phase barriers. Pass devices
/// constructed with a SharedHostLink to model PCIe contention. Internal
/// entry — callers go through qr::factorize (Algorithm::MultiGpu).
QrStats run_multi_gpu(const std::vector<sim::Device*>& devices,
                      sim::HostMutRef a, sim::HostMutRef r,
                      const QrOptions& opts);

} // namespace detail

/// Aggregates per-device trace-window stats into one fleet view: busy
/// times, bytes, flops, panels and event counts sum; peak_device_bytes is
/// the max. The wall clock [first_start, last_end] (and total_seconds, the
/// fleet makespan) spans exactly the devices that recorded at least one
/// event — an idle device's zero-initialized window must not drag
/// first_start to 0 and inflate the makespan, but its sums (all zero) and
/// its peak bytes still contribute. All windows empty => zero span. Used by
/// multi_gpu_blocking_qr and the serve::Scheduler fleet report.
QrStats combine_device_stats(const std::vector<QrStats>& per_device);

} // namespace rocqr::qr
