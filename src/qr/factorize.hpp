// Unified QR driver front end — the one way to factorize.
//
// Mirrors PR 2's ooc::GemmProblem redesign: callers describe the problem
// once in a plain `QrProblem` aggregate (devices, A, R, algorithm,
// options) and hand it to `qr::factorize`. The historical per-driver free
// functions (blocking_ooc_qr, left_looking_ooc_qr, recursive_ooc_qr,
// multi_gpu_blocking_qr, tsqr_ooc_qr) went through a [[deprecated]] cycle
// and are now removed; docs/API.md keeps the migration table.
//
//   sim::Device dev(spec);
//   qr::QrProblem p{{&dev}, a.view(), r.view(), qr::Algorithm::Recursive,
//                   opts};
//   qr::QrStats stats = qr::factorize(p);
//
// `qr::resume` is the matching single entry for checkpoint restart,
// dispatching on the checkpoint's driver tag (the resume_ooc_qr overloads
// are likewise removed).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "qr/checkpoint.hpp"
#include "qr/options.hpp"
#include "sim/device.hpp"

namespace rocqr::qr {

/// Which driver runs the factorization. Blocking / LeftLooking / Recursive
/// / Tiled are single-device (problem.devices must have exactly one entry);
/// MultiGpu and Tsqr use the whole fleet.
enum class Algorithm {
  Blocking,    ///< right-looking fixed-panel baseline (Fig 1)
  LeftLooking, ///< lazy-projection, minimal movement (SOLAR §2.1)
  Recursive,   ///< the paper's recursive driver (Eq. 2 / Fig 2)
  MultiGpu,    ///< data-parallel trailing updates across the fleet
  Tsqr,        ///< fleet-wide TSQR over row-block leaves
  Tiled,       ///< tiled CGS on the TaskGraph executor (Buttari-style DAG)
};

/// Stable lowercase tag ("blocking", "left", "recursive", "multi_gpu",
/// "tsqr", "tiled") — the serve/jobs-JSON and checkpoint driver vocabulary.
const char* to_string(Algorithm a);

/// Inverse of to_string; nullopt for unknown names.
std::optional<Algorithm> parse_algorithm(std::string_view name);

/// Everything qr::factorize needs, in one descriptor. A plain aggregate:
/// designated or positional initialization both read naturally.
struct QrProblem {
  /// The device fleet. Single-device algorithms require size() == 1.
  std::vector<sim::Device*> devices;
  /// m x n host input (m >= n); holds Q on return. Phantom refs allowed in
  /// Phantom mode.
  sim::HostMutRef a;
  /// n x n host output receiving the upper-triangular R.
  sim::HostMutRef r;
  Algorithm algorithm = Algorithm::Recursive;
  QrOptions options;
};

/// Factors problem.a (Q in place) with problem.r receiving R, using the
/// selected driver. Validates options and the devices/algorithm pairing;
/// throws InvalidArgument on mismatch.
QrStats factorize(const QrProblem& problem);

/// Restarts a factorization from `cp`: restores the host A/R data (Real
/// mode), then re-runs the driver named by the *checkpoint's* tag —
/// problem.algorithm is ignored, the checkpoint knows what produced it —
/// with resume_units = cp.units_done so the completed schedule prefix is
/// skipped. problem.a/r must have the checkpoint's dimensions and
/// problem.options.blocksize must match the checkpointed blocksize (unit
/// numbering depends on it; 0 adopts the checkpoint's). Bit-identical to
/// the uninterrupted run in Real mode.
QrStats resume(const QrProblem& problem, const Checkpoint& cp);

} // namespace rocqr::qr
