// Conventional blocking out-of-core QR factorization (Fig 1) — the paper's
// baseline. Fixed panel width b; per iteration: panel factorization on the
// device, OOC inner product with the panel resident, OOC outer product with
// C tiled.
#pragma once

#include "qr/options.hpp"
#include "sim/device.hpp"

namespace rocqr::qr {

namespace detail {

/// Factors the host matrix in `a` (m x n, m >= n): on return `a` holds Q
/// (orthonormal columns) and `r` (n x n) holds the upper-triangular R.
/// In Phantom mode both refs may be phantom and only the schedule runs.
/// Internal entry — callers go through qr::factorize (Algorithm::Blocking).
QrStats run_blocking(sim::Device& dev, sim::HostMutRef a, sim::HostMutRef r,
                     const QrOptions& opts);

} // namespace detail

} // namespace rocqr::qr
