#include "qr/blocking_qr.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "ooc/gemm_engines.hpp"
#include "ooc/operand.hpp"
#include "ooc/pipeline.hpp"
#include "ooc/resilience.hpp"
#include "qr/driver_util.hpp"
#include "qr/host_tracker.hpp"
#include "qr/panel.hpp"
#include "sim/scoped_matrix.hpp"
#include "sim/trace_export.hpp"

namespace rocqr::qr {

using ooc::Operand;
using sim::Device;
using sim::DeviceMatrix;
using sim::Event;
using sim::HostMutRef;
using sim::ScopedMatrix;
using sim::StoragePrecision;

QrStats detail::run_blocking(Device& dev, HostMutRef a, HostMutRef r,
                             const QrOptions& opts) {
  opts.validate();
  const index_t m = a.rows;
  const index_t n = a.cols;
  ROCQR_CHECK(m >= n && n >= 1, "blocking_ooc_qr: need m >= n >= 1");
  ROCQR_CHECK(r.rows == n && r.cols == n, "blocking_ooc_qr: R must be n x n");
  const index_t b = std::min(opts.blocksize, n);

  const size_t window = dev.trace().size();
  sim::TraceSpan qr_span(dev, "blocking_qr");
  detail::HostWriteTracker tracker(n);
  ooc::SlabPipeline pipe(dev, detail::gemm_options(opts));

  // Each panel iteration is one checkpoint/resume unit: a resumed run skips
  // the first opts.resume_units iterations entirely (their Q columns and R
  // rows were restored onto the host from the checkpoint).
  index_t units = 0;
  for (index_t j0 = 0; j0 < n; j0 += b) {
    const index_t w = std::min(b, n - j0);
    if (units < opts.resume_units) {
      ++units;
      continue;
    }
    sim::TraceSpan iter_span(dev, "panel_iter j0=" + std::to_string(j0));

    // 1. Panel move-in. With the QR-level optimization, row chunks start as
    // soon as the previous trailing update's matching move-outs complete.
    ScopedMatrix panel(dev, m, w, StoragePrecision::FP32, "qr.panel");
    ooc::TaskPlan stage;
    stage.move_in = [&](ooc::MoveInCtx& ctx) {
      detail::move_in_panel(ctx, panel.get(),
                            ooc::host_block(sim::as_const(a), 0, j0, m, w),
                            tracker, j0, w, opts);
    };
    const Event panel_in = pipe.run_task(stage).moved_in;

    // 2. In-core panel factorization (recursive CGS on the device), then
    // 3. move R_ii and the factored Q panel back. With the optimization on,
    // these move-outs overlap the trailing GEMMs' move-ins.
    ScopedMatrix r_dev(dev, w, w, StoragePrecision::FP32, "qr.Rii");
    ooc::TaskPlan factor;
    factor.compute_waits = {panel_in};
    factor.compute = [&](ooc::ComputeCtx& ctx) {
      panel_qr_device(dev, panel.get(), r_dev.get(), ctx.stream(), opts);
    };
    factor.move_out = [&](ooc::MoveOutCtx& ctx) {
      ctx.d2h(ooc::host_block(r, j0, j0, w, w),
              sim::DeviceMatrixRef(r_dev.get()), "d2h Rii");
      ctx.d2h(ooc::host_block(a, 0, j0, m, w),
              sim::DeviceMatrixRef(panel.get()), "d2h Q panel");
    };
    const ooc::TaskResult factored = pipe.run_task(factor);
    const Event panel_done = factored.computed;
    const Event q_out = factored.moved_out;
    tracker.record(ooc::Slab{j0, w}, q_out);
    if (!opts.qr_level_opt) dev.synchronize();

    const index_t rest = n - j0 - w;
    if (rest > 0) {
      // Fine-grained §4.2 pipelining: streamed reads of the trailing
      // columns wait only on the previous update's writes they intersect
      // (translated into the trailing submatrix's local coordinates).
      std::vector<ooc::RegionEvent> local_regions;
      if (opts.qr_level_opt) {
        for (const ooc::RegionEvent& re : tracker.regions_for(j0 + w, rest)) {
          local_regions.push_back(ooc::RegionEvent{
              re.rows, ooc::Slab{re.cols.offset - (j0 + w), re.cols.width},
              re.event});
        }
      }

      // 4. Inner product R12 = Q1ᵀ·A2, panel resident, B streamed in
      // b-column slabs; R12 stays resident for the outer product.
      ooc::OocGemmOptions gi = detail::gemm_options(opts);
      gi.blocksize = std::min(b, rest);
      if (local_regions.empty()) {
        gi.host_input_ready = tracker.events_for(j0 + w, rest);
      } else {
        gi.streamed_input_regions = local_regions;
      }
      DeviceMatrix r12;
      const auto inner = ooc::inner_product_blocking(
          dev, Operand::on_device(panel.get(), panel_done),
          Operand::on_host(ooc::host_block(sim::as_const(a), 0, j0 + w, m,
                                           rest)),
          ooc::host_block(r, j0, j0 + w, w, rest), gi, &r12);
      if (!opts.qr_level_opt) dev.synchronize();

      // 5. Outer product A2 -= Q1·R12, both factors resident, C tiled.
      ooc::OocGemmOptions go = detail::gemm_options(opts);
      const bytes_t residents = panel.get().bytes() + r12.bytes();
      const index_t tile = opts.outer_tile_rows > 0
                               ? opts.outer_tile_rows
                               : detail::plan_tile_edge(dev, residents, opts);
      go.blocksize = std::min(tile, m);
      go.tile_cols = opts.outer_tile_cols > 0 ? std::min(opts.outer_tile_cols, rest)
                                              : std::min(tile, rest);
      go.ramp_up = false; // tiles are square; the ramp applies to slabs
      if (local_regions.empty()) {
        go.host_input_ready = tracker.events_for(j0 + w, rest);
      } else {
        go.streamed_input_regions = local_regions;
      }
      const auto outer = ooc::outer_product_blocking(
          dev, Operand::on_device(panel.get(), panel_done),
          Operand::on_device(r12, inner.device_result_ready),
          ooc::host_block(sim::as_const(a), 0, j0 + w, m, rest),
          ooc::host_block(a, 0, j0 + w, m, rest), go);

      // Re-base the engine's region events (relative to the trailing
      // submatrix) onto absolute host coordinates for the tracker.
      std::vector<ooc::RegionEvent> regions;
      regions.reserve(outer.output_ready.size());
      for (const ooc::RegionEvent& re : outer.output_ready) {
        regions.push_back(ooc::RegionEvent{
            re.rows, ooc::Slab{re.cols.offset + j0 + w, re.cols.width},
            re.event});
      }
      tracker.record(ooc::Slab{j0 + w, rest}, outer.done, std::move(regions));
      if (!opts.qr_level_opt) dev.synchronize();
      dev.free(r12);
    }
    panel.reset();
    r_dev.reset();

    ++units;
    detail::maybe_checkpoint(dev, "blocking", a, r, opts, j0 + w, units);
  }

  dev.synchronize();
  return stats_from_trace(dev.trace(), window, dev.memory_peak());
}

} // namespace rocqr::qr
