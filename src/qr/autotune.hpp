// Blocksize autotuning via phantom-mode dry runs.
//
// Because Phantom execution computes the exact schedule of a configuration
// in milliseconds, tuning is just "simulate every candidate and take the
// argmin" — no measurement noise, no hardware time. This is the practical
// payoff of the simulator for a library user: ask the model which blocksize
// to use for a given device and problem before touching real data.
#pragma once

#include <vector>

#include "qr/options.hpp"
#include "sim/spec.hpp"

namespace rocqr::qr {

struct TunePoint {
  index_t blocksize = 0;
  sim_time_t seconds = 0; ///< simulated end-to-end time
  bool fits = false;      ///< false = device OOM at this blocksize
  /// Peak device bytes of the dry run (the high-water mark reached before
  /// the failing allocation when !fits). Admission control sizes jobs by it.
  bytes_t peak_bytes = 0;
};

struct TuneResult {
  index_t best_blocksize = 0;
  sim_time_t best_seconds = 0;
  bytes_t best_peak_bytes = 0;      ///< peak device bytes of the winner
  std::vector<TunePoint> sweep;     ///< every candidate evaluated
};

/// Simulates the full OOC QR of an m x n matrix on `spec` and returns the
/// fastest feasible blocksize. Candidates are the powers of two
/// min_blocksize·2^k clamped to [1, min(max_blocksize, n)], plus the
/// clamped upper end itself as a tail candidate — so a non-power-of-two n
/// still tries the full-width panel b = n, and n < min_blocksize yields the
/// single candidate b = n instead of an empty sweep. Throws
/// DeviceOutOfMemory (naming the device, its capacity, and the candidate
/// range) only when every candidate OOMs. `base` carries the other options
/// (precision, optimizations, algorithm choice via `recursive`).
TuneResult tune_blocksize(const sim::DeviceSpec& spec, index_t m, index_t n,
                          bool recursive, QrOptions base = {},
                          index_t min_blocksize = 1024,
                          index_t max_blocksize = 65536);

} // namespace rocqr::qr
