// Blocksize autotuning via phantom-mode dry runs.
//
// Because Phantom execution computes the exact schedule of a configuration
// in milliseconds, tuning is just "simulate every candidate and take the
// argmin" — no measurement noise, no hardware time. This is the practical
// payoff of the simulator for a library user: ask the model which blocksize
// to use for a given device and problem before touching real data.
#pragma once

#include <vector>

#include "qr/options.hpp"
#include "sim/spec.hpp"

namespace rocqr::qr {

struct TunePoint {
  index_t blocksize = 0;
  sim_time_t seconds = 0; ///< simulated end-to-end time
  bool fits = false;      ///< false = device OOM at this blocksize
};

struct TuneResult {
  index_t best_blocksize = 0;
  sim_time_t best_seconds = 0;
  std::vector<TunePoint> sweep; ///< every candidate evaluated
};

/// Simulates the full OOC QR of an m x n matrix on `spec` for every
/// power-of-two blocksize in [min_blocksize, max_blocksize] (clamped to n)
/// and returns the fastest feasible one. `base` carries the other options
/// (precision, optimizations, algorithm choice via `recursive`).
TuneResult tune_blocksize(const sim::DeviceSpec& spec, index_t m, index_t n,
                          bool recursive, QrOptions base = {},
                          index_t min_blocksize = 1024,
                          index_t max_blocksize = 65536);

} // namespace rocqr::qr
