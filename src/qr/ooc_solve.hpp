// Out-of-core least squares — the paper's motivating application as a
// library operation: factor, apply Qᵀ, back-substitute, all streamed.
#pragma once

#include "ooc/gemm_engines.hpp"
#include "qr/options.hpp"
#include "sim/device.hpp"

namespace rocqr::qr {

/// y := Qᵀ b for a host-resident Q (m x n) and b (m x nrhs), streamed in
/// k-slabs (the recursive inner-product engine): neither matrix needs to
/// fit the device.
ooc::OocGemmStats ooc_apply_qt(sim::Device& dev, sim::HostConstRef q,
                               sim::HostConstRef b, sim::HostMutRef y,
                               const ooc::OocGemmOptions& opts);

struct OocLsStats {
  QrStats factor;            ///< the QR factorization's costs
  sim_time_t total_seconds;  ///< factorization + apply + solve makespan
};

/// Solves min |A x - b| fully out of core: recursive OOC QR of `a` (which
/// becomes Q in place), `r` receives R, then x = R⁻¹ Qᵀ b via the streamed
/// apply and the out-of-core back substitution. `x` must be n x nrhs;
/// b is m x nrhs. All host buffers may be phantom in Phantom mode.
OocLsStats ooc_least_squares(sim::Device& dev, sim::HostMutRef a,
                             sim::HostMutRef r, sim::HostConstRef b,
                             sim::HostMutRef x, const QrOptions& opts);

} // namespace rocqr::qr
