#include "qr/recursive_qr.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "ooc/gemm_engines.hpp"
#include "ooc/operand.hpp"
#include "ooc/pipeline.hpp"
#include "ooc/resilience.hpp"
#include "qr/driver_util.hpp"
#include "qr/host_tracker.hpp"
#include "qr/panel.hpp"
#include "sim/scoped_matrix.hpp"
#include "sim/trace_export.hpp"

namespace rocqr::qr {

using ooc::Operand;
using sim::Device;
using sim::DeviceMatrix;
using sim::Event;
using sim::HostMutRef;
using sim::ScopedMatrix;
using sim::StoragePrecision;

namespace {

struct DriverState {
  Device& dev;
  HostMutRef a;
  HostMutRef r;
  const QrOptions& opts;
  detail::HostWriteTracker tracker;
  ooc::SlabPipeline& pipe;
  // Checkpoint/resume bookkeeping. A "unit" is a recursion leaf (streamed
  // panel or resident subtree); the schedule visits leaves left to right and
  // every node-level update sits at a fixed position in that sequence, so a
  // resumed run replays the recursion, skips the first `skip_units` leaves,
  // and executes a node's update iff the leaf counter has caught up — the
  // checkpoint captured exactly the updates enqueued before its leaf.
  index_t units = 0;
  index_t skip_units = 0;
};

std::vector<Event> merge_events(std::vector<Event> lhs,
                                const std::vector<Event>& rhs) {
  lhs.insert(lhs.end(), rhs.begin(), rhs.end());
  return lhs;
}

/// Deepest recursion level: stream the panel in, factor in core, stream Q
/// and R_ii out (overlapping neighbours when the QR-level opt is on).
void factor_panel(DriverState& st, index_t j0, index_t w) {
  Device& dev = st.dev;
  if (st.units < st.skip_units) { // leaf restored from the checkpoint
    ++st.units;
    return;
  }
  sim::TraceSpan span(dev, "factor_panel j0=" + std::to_string(j0));
  const index_t m = st.a.rows;

  ScopedMatrix panel(dev, m, w, StoragePrecision::FP32, "rqr.panel");
  ooc::TaskPlan stage;
  stage.move_in = [&](ooc::MoveInCtx& ctx) {
    detail::move_in_panel(ctx, panel.get(),
                          ooc::host_block(sim::as_const(st.a), 0, j0, m, w),
                          st.tracker, j0, w, st.opts);
  };
  const Event panel_in = st.pipe.run_task(stage).moved_in;

  ScopedMatrix r_dev(dev, w, w, StoragePrecision::FP32, "rqr.Rii");
  ooc::TaskPlan factor;
  factor.compute_waits = {panel_in};
  factor.compute = [&](ooc::ComputeCtx& ctx) {
    panel_qr_device(dev, panel.get(), r_dev.get(), ctx.stream(), st.opts);
  };
  factor.move_out = [&](ooc::MoveOutCtx& ctx) {
    ctx.d2h(ooc::host_block(st.r, j0, j0, w, w),
            sim::DeviceMatrixRef(r_dev.get()), "d2h Rii");
    ctx.d2h(ooc::host_block(st.a, 0, j0, m, w),
            sim::DeviceMatrixRef(panel.get()), "d2h Q panel");
  };
  const Event q_out = st.pipe.run_task(factor).moved_out;
  st.tracker.record(ooc::Slab{j0, w}, q_out);
  if (!st.opts.qr_level_opt) dev.synchronize();

  panel.reset();
  r_dev.reset();

  ++st.units;
  detail::maybe_checkpoint(dev, "recursive", st.a, st.r, st.opts, j0 + w,
                           st.units);
}

/// Picks the C column split for the recursive inner product so the fp32
/// accumulator plus the streamed-slab pool fits the memory budget.
/// Returns 0 for "unsplit".
index_t plan_inner_c_split(const DriverState& st, index_t h, index_t rest) {
  if (st.opts.inner_c_panel > 0) {
    return st.opts.inner_c_panel >= rest ? 0 : st.opts.inner_c_panel;
  }
  const double budget = static_cast<double>(st.dev.memory_capacity()) *
                        st.opts.memory_budget_fraction;
  const double depth = static_cast<double>(st.opts.pipeline_depth);
  const double bs = static_cast<double>(std::min(st.opts.blocksize, st.a.rows));
  const double in_bytes =
      st.opts.precision == blas::GemmPrecision::FP16_FP32 ? 2.0 : 4.0;
  const auto fits = [&](index_t cp) {
    const double c_bytes = static_cast<double>(h) * static_cast<double>(cp) * 4.0;
    const double slab_bytes = depth * bs *
                              (static_cast<double>(h) + static_cast<double>(cp)) *
                              in_bytes;
    const double c_slots = cp == rest ? 1.0 : 2.0; // split => two accumulators
    return c_slots * c_bytes + slab_bytes <= budget;
  };
  if (fits(rest)) return 0;
  index_t cp = rest;
  while (cp > st.opts.blocksize && !fits(cp)) {
    cp = (cp + 1) / 2;
    // Round up to a panel multiple to keep slabs aligned.
    cp = std::min(rest,
                  (cp + st.opts.blocksize - 1) / st.opts.blocksize *
                      st.opts.blocksize);
    if (fits(cp)) break;
    if (cp <= st.opts.blocksize) break;
  }
  return std::min(cp, rest);
}

/// Whether R12 (h x rest fp32) can remain resident through the outer product
/// alongside the outer product's own working set.
bool plan_keep_r12(const DriverState& st, index_t h, index_t rest,
                   index_t c_split) {
  if (!st.opts.qr_level_opt || c_split != 0) return false;
  const double budget = static_cast<double>(st.dev.memory_capacity()) *
                        st.opts.memory_budget_fraction;
  const double depth = static_cast<double>(st.opts.pipeline_depth);
  const double bs = static_cast<double>(std::min(st.opts.blocksize, st.a.rows));
  const double in_bytes =
      st.opts.precision == blas::GemmPrecision::FP16_FP32 ? 2.0 : 4.0;
  const double r12_bytes = static_cast<double>(h) * static_cast<double>(rest) * 4.0;
  const double a_slabs = depth * bs * static_cast<double>(h) * in_bytes;
  const double c_slabs =
      (st.opts.staging_buffer ? 2.0 : 1.0) * bs * static_cast<double>(rest) * 4.0;
  return r12_bytes + a_slabs + c_slabs <= budget;
}

/// Column-panel width for the outer product when the full R12 cannot stay
/// resident next to the slab pools (small-memory devices): B streams in
/// per-panel pieces and A is re-streamed once per panel. 0 = unsplit.
index_t plan_outer_n_split(const DriverState& st, index_t h, index_t rest) {
  const double budget = static_cast<double>(st.dev.memory_capacity()) *
                        st.opts.memory_budget_fraction;
  const double depth = static_cast<double>(st.opts.pipeline_depth);
  const double bs = static_cast<double>(std::min(st.opts.blocksize, st.a.rows));
  const double in_bytes =
      st.opts.precision == blas::GemmPrecision::FP16_FP32 ? 2.0 : 4.0;
  const auto fits = [&](index_t np) {
    const double b_bytes = static_cast<double>(h) * static_cast<double>(np) * in_bytes;
    const double a_slabs = depth * bs * static_cast<double>(h) * in_bytes;
    const double c_slabs = (st.opts.staging_buffer ? 2.0 : 1.0) * bs *
                           static_cast<double>(np) * 4.0;
    return b_bytes + a_slabs + c_slabs <= budget;
  };
  if (fits(rest)) return 0;
  index_t np = rest;
  while (np > st.opts.blocksize && !fits(np)) {
    np = (np + 1) / 2;
    np = std::min(rest, (np + st.opts.blocksize - 1) / st.opts.blocksize *
                            st.opts.blocksize);
    if (np <= st.opts.blocksize) break;
  }
  return std::min(np, rest);
}

/// Whether the whole m x w subtree can be factored resident: the fp32 block
/// plus its largest internal R12 must fit comfortably (leaving room for the
/// neighbouring pipelines' buffers).
bool plan_resident_subtree(const DriverState& st, index_t w) {
  if (!st.opts.qr_level_opt || !st.opts.resident_subtrees) return false;
  // Only the "small GEMM" levels the paper targets: wider subtrees stream
  // better through the k-split engines (their GEMMs are near peak).
  if (w > 4 * st.opts.blocksize) return false;
  const double budget = static_cast<double>(st.dev.memory_capacity()) * 0.70;
  const double a_bytes =
      static_cast<double>(st.a.rows) * static_cast<double>(w) * 4.0;
  const double r12_bytes =
      static_cast<double>(w / 2) * static_cast<double>(w - w / 2) * 4.0;
  return a_bytes + r12_bytes <= budget;
}

/// On-device recursion over the resident block's columns [c0, c0+wl):
/// panels factor in place, level GEMMs stay on the device, R blocks stream
/// out as they are produced (ctx.emit drains them while compute continues).
void device_recurse(DriverState& st, ooc::ComputeCtx& ctx,
                    const DeviceMatrix& block, index_t j0, index_t c0,
                    index_t wl) {
  Device& dev = st.dev;
  const index_t m = st.a.rows;
  const index_t b = st.opts.blocksize;
  const index_t panels = (wl + b - 1) / b;
  if (panels <= 1) {
    ScopedMatrix rii(dev, wl, wl, StoragePrecision::FP32, "rqr.res.Rii");
    panel_qr_device(dev, sim::DeviceMatrixRef(block, 0, c0, m, wl),
                    sim::DeviceMatrixRef(rii.get()), ctx.stream(), st.opts);
    ctx.emit(ooc::host_block(st.r, j0 + c0, j0 + c0, wl, wl),
             sim::DeviceMatrixRef(rii.get()), "d2h Rii");
    return;
  }
  const index_t h = (panels / 2) * b;
  const index_t rest = wl - h;
  device_recurse(st, ctx, block, j0, c0, h);

  ScopedMatrix r12(dev, h, rest, StoragePrecision::FP32, "rqr.res.R12");
  ctx.gemm(blas::Op::Trans, blas::Op::NoTrans, 1.0f,
           sim::DeviceMatrixRef(block, 0, c0, m, h),
           sim::DeviceMatrixRef(block, 0, c0 + h, m, rest), 0.0f,
           sim::DeviceMatrixRef(r12.get()), "resident R12");
  ctx.emit(ooc::host_block(st.r, j0 + c0, j0 + c0 + h, h, rest),
           sim::DeviceMatrixRef(r12.get()), "d2h R12");
  ctx.gemm(blas::Op::NoTrans, blas::Op::NoTrans, -1.0f,
           sim::DeviceMatrixRef(block, 0, c0, m, h),
           sim::DeviceMatrixRef(r12.get()), 1.0f,
           sim::DeviceMatrixRef(block, 0, c0 + h, m, rest),
           "resident update");
  r12.reset();

  device_recurse(st, ctx, block, j0, c0 + h, rest);
}

/// Factors columns [j0, j0+w) entirely on the device: one move-in, the full
/// recursion resident, one Q move-out.
void factor_resident_subtree(DriverState& st, index_t j0, index_t w) {
  Device& dev = st.dev;
  if (st.units < st.skip_units) { // leaf restored from the checkpoint
    ++st.units;
    return;
  }
  sim::TraceSpan span(dev, "resident_subtree j0=" + std::to_string(j0));
  const index_t m = st.a.rows;
  ScopedMatrix block(dev, m, w, StoragePrecision::FP32, "rqr.subtree");
  ooc::TaskPlan stage;
  stage.move_in = [&](ooc::MoveInCtx& ctx) {
    detail::move_in_panel(ctx, block.get(),
                          ooc::host_block(sim::as_const(st.a), 0, j0, m, w),
                          st.tracker, j0, w, st.opts);
  };
  const Event moved_in = st.pipe.run_task(stage).moved_in;

  ooc::TaskPlan factor;
  factor.compute_waits = {moved_in};
  factor.compute = [&](ooc::ComputeCtx& ctx) {
    device_recurse(st, ctx, block.get(), j0, 0, w);
  };
  factor.move_out = [&](ooc::MoveOutCtx& ctx) {
    ctx.d2h(ooc::host_block(st.a, 0, j0, m, w),
            sim::DeviceMatrixRef(block.get()), "d2h Q subtree");
  };
  const Event q_out = st.pipe.run_task(factor).moved_out;
  st.tracker.record(ooc::Slab{j0, w}, q_out);
  block.reset();

  ++st.units;
  detail::maybe_checkpoint(dev, "recursive", st.a, st.r, st.opts, j0 + w,
                           st.units);
}

void recurse(DriverState& st, index_t j0, index_t w) {
  Device& dev = st.dev;
  const index_t b = st.opts.blocksize;
  const index_t panels = (w + b - 1) / b;
  if (panels <= 1) {
    factor_panel(st, j0, w);
    return;
  }
  if (plan_resident_subtree(st, w)) {
    factor_resident_subtree(st, j0, w);
    return;
  }
  sim::TraceSpan span(dev, "recurse j0=" + std::to_string(j0) +
                               " w=" + std::to_string(w));
  // Split at panel granularity: left half gets floor(panels/2) panels.
  const index_t h = (panels / 2) * b;
  const index_t rest = w - h;

  // 1. Factor the left half recursively.
  recurse(st, j0, h);

  // On resume, this node's update replays only once the leaf counter has
  // caught up with the checkpoint (see DriverState) — a skipped update was
  // already applied to the restored host data.
  if (st.units >= st.skip_units) {
    const index_t m = st.a.rows;
    ooc::OocGemmOptions gi = detail::gemm_options(st.opts);
    gi.blocksize = std::min(st.opts.blocksize, m);
    gi.c_panel_cols = plan_inner_c_split(st, h, rest);
    gi.host_input_ready = merge_events(st.tracker.events_for(j0, h),
                                       st.tracker.events_for(j0 + h, rest));
    const bool keep = plan_keep_r12(st, h, rest, gi.c_panel_cols);

    // 2. Inner product: R12 = Q1ᵀ·A2, both streamed from the host in k-slabs,
    // C accumulating on the device (split along columns only if memory-bound).
    DeviceMatrix r12;
    const auto inner = ooc::inner_product_recursive(
        dev,
        Operand::on_host(ooc::host_block(sim::as_const(st.a), 0, j0, m, h)),
        Operand::on_host(ooc::host_block(sim::as_const(st.a), 0, j0 + h, m,
                                         rest)),
        ooc::host_block(st.r, j0, j0 + h, h, rest), gi,
        keep ? &r12 : nullptr);
    if (!st.opts.qr_level_opt) dev.synchronize();

    // 3. Outer product: A2 -= Q1·R12, B resident (kept from the inner product
    // when it fits — the QR-level optimization — else re-staged from the
    // host, which requires the inner product's move-out to finish first).
    // On small-memory devices even a re-staged full R12 may not fit; then the
    // update runs over column panels, re-streaming Q1 once per panel.
    ooc::OocGemmOptions go = detail::gemm_options(st.opts);
    go.blocksize = std::min(st.opts.blocksize, m);
    go.host_input_ready = merge_events(st.tracker.events_for(j0, h),
                                       st.tracker.events_for(j0 + h, rest));
    if (!keep) go.host_input_ready.push_back(inner.done);

    const index_t n_split = keep ? 0 : plan_outer_n_split(st, h, rest);
    std::vector<ooc::RegionEvent> regions;
    sim::Event outer_done{};
    for (const ooc::Slab panel :
         ooc::slab_partition(rest, n_split > 0 ? n_split : rest)) {
      const Operand b_operand =
          keep ? Operand::on_device(r12, inner.device_result_ready)
               : Operand::on_host(ooc::host_block(sim::as_const(st.r), j0,
                                                  j0 + h + panel.offset, h,
                                                  panel.width));
      const auto outer = ooc::outer_product_recursive(
          dev,
          Operand::on_host(ooc::host_block(sim::as_const(st.a), 0, j0, m, h)),
          b_operand,
          ooc::host_block(sim::as_const(st.a), 0, j0 + h + panel.offset, m,
                          panel.width),
          ooc::host_block(st.a, 0, j0 + h + panel.offset, m, panel.width), go);
      for (const ooc::RegionEvent& re : outer.output_ready) {
        regions.push_back(ooc::RegionEvent{
            re.rows,
            ooc::Slab{re.cols.offset + j0 + h + panel.offset, re.cols.width},
            re.event});
      }
      outer_done = outer.done;
    }
    if (keep) dev.free(r12);

    st.tracker.record(ooc::Slab{j0 + h, rest}, outer_done, std::move(regions));
    if (!st.opts.qr_level_opt) dev.synchronize();
  }

  // 4. Factor the updated right half recursively.
  recurse(st, j0 + h, rest);
}

} // namespace

QrStats detail::run_recursive(Device& dev, HostMutRef a, HostMutRef r,
                              const QrOptions& opts, bool sync_at_end) {
  opts.validate();
  const index_t m = a.rows;
  const index_t n = a.cols;
  ROCQR_CHECK(m >= n && n >= 1, "recursive_ooc_qr: need m >= n >= 1");
  ROCQR_CHECK(r.rows == n && r.cols == n, "recursive_ooc_qr: R must be n x n");

  const size_t window = dev.trace().size();
  sim::TraceSpan qr_span(dev, "recursive_qr");
  ooc::SlabPipeline pipe(dev, detail::gemm_options(opts));
  DriverState st{dev, a, r, opts, detail::HostWriteTracker(n), pipe};
  st.skip_units = opts.resume_units;
  recurse(st, 0, n);
  if (sync_at_end) dev.synchronize();
  return stats_from_trace(dev.trace(), window, dev.memory_peak());
}

} // namespace rocqr::qr
