#include "qr/multi_gpu_qr.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "ooc/gemm_engines.hpp"
#include "ooc/operand.hpp"
#include "ooc/slab_schedule.hpp"
#include "qr/driver_util.hpp"
#include "qr/panel.hpp"

namespace rocqr::qr {

using ooc::Operand;
using sim::Device;
using sim::DeviceMatrix;
using sim::Event;
using sim::HostMutRef;
using sim::StoragePrecision;
using sim::Stream;

namespace {

/// Summarizes each device's trace window and hands the per-device stats to
/// the public aggregator.
QrStats combine_stats(const std::vector<Device*>& devices,
                      const std::vector<size_t>& windows) {
  std::vector<QrStats> per_device;
  per_device.reserve(devices.size());
  for (size_t d = 0; d < devices.size(); ++d) {
    per_device.push_back(stats_from_trace(devices[d]->trace(), windows[d],
                                          devices[d]->memory_peak()));
  }
  return combine_device_stats(per_device);
}

} // namespace

QrStats combine_device_stats(const std::vector<QrStats>& per_device) {
  QrStats total;
  sim_time_t first = 0;
  sim_time_t last = 0;
  bool any = false;
  for (const QrStats& s : per_device) {
    total.panel_seconds += s.panel_seconds;
    total.gemm_seconds += s.gemm_seconds;
    total.d2d_seconds += s.d2d_seconds;
    total.h2d_seconds += s.h2d_seconds;
    total.d2h_seconds += s.d2h_seconds;
    total.compute_seconds += s.compute_seconds;
    total.bytes_h2d += s.bytes_h2d;
    total.bytes_d2h += s.bytes_d2h;
    total.bytes_d2d += s.bytes_d2d;
    total.flops += s.flops;
    total.panels += s.panels;
    total.events += s.events;
    total.peak_device_bytes =
        std::max(total.peak_device_bytes, s.peak_device_bytes);
    // Empty windows carry first_start == last_end == 0, which is a default
    // value, not a real interval: folding it into the span would pull
    // first_start back to device construction time and report an inflated
    // fleet makespan. They contribute sums (zeros) and peak bytes only.
    if (s.events == 0) continue;
    if (!any) {
      first = s.first_start;
      last = s.last_end;
      any = true;
    } else {
      first = std::min(first, s.first_start);
      last = std::max(last, s.last_end);
    }
  }
  total.first_start = first;
  total.last_end = last;
  total.total_seconds = any ? last - first : 0;
  return total;
}

QrStats detail::run_multi_gpu(const std::vector<Device*>& devices,
                              HostMutRef a, HostMutRef r,
                              const QrOptions& opts) {
  ROCQR_CHECK(!devices.empty(), "multi_gpu_blocking_qr: no devices");
  for (Device* dev : devices) {
    ROCQR_CHECK(dev != nullptr, "multi_gpu_blocking_qr: null device");
  }
  opts.validate();
  const index_t m = a.rows;
  const index_t n = a.cols;
  ROCQR_CHECK(m >= n && n >= 1, "multi_gpu_blocking_qr: need m >= n >= 1");
  ROCQR_CHECK(r.rows == n && r.cols == n,
              "multi_gpu_blocking_qr: R must be n x n");
  const index_t b = std::min(opts.blocksize, n);
  const auto g = static_cast<index_t>(devices.size());

  std::vector<size_t> windows;
  for (Device* dev : devices) windows.push_back(dev->trace().size());

  Device& dev0 = *devices.front();
  Stream pan_in = dev0.create_stream();
  Stream comp = dev0.create_stream();
  Stream pan_out = dev0.create_stream();

  for (index_t j0 = 0; j0 < n; j0 += b) {
    const index_t w = std::min(b, n - j0);

    // 1. Panel on device 0 (all devices are at a common barrier, so plain
    // enqueue order carries the cross-device dependencies).
    DeviceMatrix panel = dev0.allocate(m, w, StoragePrecision::FP32,
                                       "mgqr.panel");
    dev0.copy_h2d(panel, ooc::host_block(sim::as_const(a), 0, j0, m, w),
                  pan_in, "h2d panel");
    Event panel_in = dev0.create_event();
    dev0.record_event(panel_in, pan_in);
    DeviceMatrix r_dev = dev0.allocate(w, w, StoragePrecision::FP32,
                                       "mgqr.Rii");
    dev0.wait_event(comp, panel_in);
    panel_qr_device(dev0, panel, r_dev, comp, opts);
    Event panel_done = dev0.create_event();
    dev0.record_event(panel_done, comp);
    dev0.wait_event(pan_out, panel_done);
    dev0.copy_d2h(ooc::host_block(r, j0, j0, w, w), r_dev, pan_out,
                  "d2h Rii");
    dev0.copy_d2h(ooc::host_block(a, 0, j0, m, w), panel, pan_out,
                  "d2h Q panel");
    dev0.free(panel);
    dev0.free(r_dev);
    sim::synchronize_all(devices); // Q1 is on the host for everyone

    const index_t rest = n - j0 - w;
    if (rest == 0) continue;

    // 2. Column shares: device d owns a contiguous, block-aligned slice of
    // the trailing columns and runs its own inner + outer pipeline on it.
    const index_t blocks = (rest + b - 1) / b;
    index_t c0 = 0;
    std::vector<DeviceMatrix> replicas(devices.size());
    std::vector<DeviceMatrix> r12s(devices.size());
    for (index_t d = 0; d < g; ++d) {
      const index_t share_blocks = (blocks * (d + 1)) / g - (blocks * d) / g;
      const index_t cw = std::min(share_blocks * b, rest - c0);
      if (cw <= 0) continue;
      Device& dev = *devices[static_cast<size_t>(d)];

      // Replicate the panel once per device (fp16 streamed input).
      Stream in = dev.create_stream();
      replicas[static_cast<size_t>(d)] =
          dev.allocate(m, w, StoragePrecision::FP16, "mgqr.Qrep");
      dev.copy_h2d(replicas[static_cast<size_t>(d)],
                   ooc::host_block(sim::as_const(a), 0, j0, m, w), in,
                   "h2d Q replica");
      Event q_ready = dev.create_event();
      dev.record_event(q_ready, in);

      ooc::OocGemmOptions gi = detail::gemm_options(opts);
      gi.blocksize = std::min(b, cw);
      const auto inner = ooc::inner_product_blocking(
          dev,
          Operand::on_device(replicas[static_cast<size_t>(d)], q_ready),
          Operand::on_host(
              ooc::host_block(sim::as_const(a), 0, j0 + w + c0, m, cw)),
          ooc::host_block(r, j0, j0 + w + c0, w, cw), gi,
          &r12s[static_cast<size_t>(d)]);

      ooc::OocGemmOptions go = detail::gemm_options(opts);
      const index_t tile = opts.outer_tile_rows > 0
                               ? opts.outer_tile_rows
                               : detail::plan_tile_edge(
                                     dev,
                                     replicas[static_cast<size_t>(d)].bytes() +
                                         r12s[static_cast<size_t>(d)].bytes(),
                                     opts);
      go.blocksize = std::min(tile, m);
      go.tile_cols = std::min(tile, cw);
      go.ramp_up = false;
      ooc::outer_product_blocking(
          dev,
          Operand::on_device(replicas[static_cast<size_t>(d)], q_ready),
          Operand::on_device(r12s[static_cast<size_t>(d)],
                             inner.device_result_ready),
          ooc::host_block(sim::as_const(a), 0, j0 + w + c0, m, cw),
          ooc::host_block(a, 0, j0 + w + c0, m, cw), go);
      c0 += cw;
    }
    ROCQR_CHECK(c0 == rest, "multi_gpu_blocking_qr: shares do not tile");

    // 3. Barrier: next iteration's panel reads columns some other device
    // may have updated.
    sim::synchronize_all(devices);
    for (index_t d = 0; d < g; ++d) {
      if (replicas[static_cast<size_t>(d)].valid()) {
        devices[static_cast<size_t>(d)]->free(replicas[static_cast<size_t>(d)]);
      }
      if (r12s[static_cast<size_t>(d)].valid()) {
        devices[static_cast<size_t>(d)]->free(r12s[static_cast<size_t>(d)]);
      }
    }
  }

  sim::synchronize_all(devices);
  return combine_stats(devices, windows);
}

} // namespace rocqr::qr
