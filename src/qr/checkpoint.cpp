#include "qr/checkpoint.hpp"

#include <array>
#include <fstream>
#include <istream>
#include <ostream>

#include <cstdint>
#include <cstdio>

#include "common/error.hpp"
#include "qr/blocking_qr.hpp"
#include "qr/left_looking_qr.hpp"
#include "qr/recursive_qr.hpp"
#include "qr/tiled_qr.hpp"
#include "qr/tsqr_ooc.hpp"

namespace rocqr::qr {

namespace {

constexpr const char* kMagic = "rocqr-checkpoint v2";
constexpr const char* kMagicV1 = "rocqr-checkpoint v1";

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) over raw bytes. Table built
/// once; this is the integrity check on the checkpoint float payload.
std::uint32_t crc32_update(std::uint32_t crc, const void* data, size_t len) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

std::uint32_t payload_crc(const Checkpoint& cp) {
  std::uint32_t crc = 0;
  crc = crc32_update(crc, cp.a.data(), cp.a.size() * sizeof(float));
  crc = crc32_update(crc, cp.r.data(), cp.r.size() * sizeof(float));
  return crc;
}

void write_floats(std::ostream& os, const std::vector<float>& v) {
  if (!v.empty()) {
    os.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(float)));
  }
}

std::vector<float> read_floats(std::istream& is, size_t count) {
  std::vector<float> v(count);
  if (count > 0) {
    is.read(reinterpret_cast<char*>(v.data()),
            static_cast<std::streamsize>(count * sizeof(float)));
    ROCQR_CHECK(is.good(), "checkpoint: truncated float payload");
  }
  return v;
}

/// Copies a contiguous column-major snapshot into a strided host ref.
void restore_block(sim::HostMutRef dst, const std::vector<float>& src) {
  for (index_t j = 0; j < dst.cols; ++j) {
    for (index_t i = 0; i < dst.rows; ++i) {
      dst.data[i + j * dst.ld] =
          src[static_cast<size_t>(i) + static_cast<size_t>(j) * dst.rows];
    }
  }
}

} // namespace

void write_checkpoint(std::ostream& os, const Checkpoint& cp) {
  os << kMagic << "\n"
     << cp.driver << "\n"
     << cp.m << " " << cp.n << " " << cp.blocksize << " " << cp.columns_done
     << " " << cp.units_done << " " << cp.leaves << " " << cp.a.size() << " "
     << cp.r.size() << " " << payload_crc(cp) << "\n";
  write_floats(os, cp.a);
  write_floats(os, cp.r);
  ROCQR_CHECK(os.good(), "checkpoint: write failed");
}

Checkpoint read_checkpoint(std::istream& is) {
  std::string magic;
  std::getline(is, magic);
  const bool v1 = magic == kMagicV1;
  ROCQR_CHECK(magic == kMagic || v1,
              "checkpoint: bad magic '" + magic + "' (expected '" +
                  std::string(kMagic) + "')");
  Checkpoint cp;
  std::getline(is, cp.driver);
  ROCQR_CHECK(cp.driver == "blocking" || cp.driver == "recursive" ||
                  cp.driver == "left" || cp.driver == "tsqr" ||
                  cp.driver == "tiled",
              "checkpoint: unknown driver '" + cp.driver + "'");
  size_t a_count = 0;
  size_t r_count = 0;
  std::uint32_t stored_crc = 0;
  is >> cp.m >> cp.n >> cp.blocksize >> cp.columns_done >> cp.units_done;
  if (!v1) is >> cp.leaves;
  is >> a_count >> r_count;
  if (!v1) is >> stored_crc;
  ROCQR_CHECK(is.good(), "checkpoint: malformed header");
  ROCQR_CHECK(cp.m >= cp.n && cp.n >= 1 && cp.blocksize >= 1 &&
                  cp.columns_done >= 0 && cp.columns_done <= cp.n &&
                  cp.units_done >= 0 && cp.leaves >= 0,
              "checkpoint: header values out of range");
  const size_t mn = static_cast<size_t>(cp.m) * static_cast<size_t>(cp.n);
  const size_t nn = static_cast<size_t>(cp.n) * static_cast<size_t>(cp.n);
  if (cp.driver == "tsqr") {
    // The tsqr R payload is the stacked per-leaf workspace: k * n x n for
    // some leaf count k bounded by m / n (or the caller's single n x n R in
    // a unit-0 snapshot, which is the k == 1 case of the same rule).
    const size_t max_leaves =
        static_cast<size_t>(cp.m) / static_cast<size_t>(cp.n);
    ROCQR_CHECK((a_count == 0 && r_count == 0) ||
                    (a_count == mn && nn > 0 && r_count % nn == 0 &&
                     r_count / nn >= 1 && r_count / nn <= max_leaves),
                "checkpoint: tsqr payload sizes do not match the dimensions");
  } else {
    ROCQR_CHECK((a_count == 0 && r_count == 0) ||
                    (a_count == mn && r_count == nn),
                "checkpoint: payload sizes do not match the dimensions");
  }
  is.get(); // the newline terminating the header
  cp.a = read_floats(is, a_count);
  cp.r = read_floats(is, r_count);
  if (!v1) {
    const std::uint32_t actual = payload_crc(cp);
    if (actual != stored_crc) {
      throw InvalidArgument(
          "checkpoint: payload CRC mismatch (stored " +
          std::to_string(stored_crc) + ", computed " + std::to_string(actual) +
          ") — the checkpoint is corrupt or truncated; refusing to resume");
    }
  }
  return cp;
}

void FileCheckpointSink::write(const Checkpoint& cp) {
  // Serialize to a sidecar and rename into place: a crash or injected
  // fault mid-write must not destroy the previous good checkpoint (the
  // whole point of having one).
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    ROCQR_CHECK(os.is_open(),
                "checkpoint: cannot open '" + tmp + "' for writing");
    write_checkpoint(os, cp);
    os.flush();
    ROCQR_CHECK(os.good(), "checkpoint: write to '" + tmp + "' failed");
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw InvalidArgument("checkpoint: cannot rename '" + tmp + "' to '" +
                          path_ + "'");
  }
}

Checkpoint load_checkpoint_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  ROCQR_CHECK(is.is_open(), "checkpoint: cannot open '" + path + "'");
  return read_checkpoint(is);
}

QrStats detail::resume_impl(const std::vector<sim::Device*>& devices,
                            const Checkpoint& cp, sim::HostMutRef a,
                            sim::HostMutRef r, QrOptions opts) {
  ROCQR_CHECK(!devices.empty(), "qr::resume: no devices");
  ROCQR_CHECK(a.rows == cp.m && a.cols == cp.n,
              "qr::resume: A shape does not match the checkpoint");
  ROCQR_CHECK(r.rows == cp.n && r.cols == cp.n,
              "qr::resume: R shape does not match the checkpoint");
  // The unit numbering is a function of the panel partition, so the resumed
  // run must replay the exact schedule the checkpoint was cut from.
  ROCQR_CHECK(opts.blocksize == cp.blocksize,
              "qr::resume: blocksize differs from the checkpointed run");

  if (cp.driver == "tsqr") {
    const std::vector<float>* r_stack = nullptr;
    if (a.data != nullptr) {
      ROCQR_CHECK(!cp.a.empty(),
                  "qr::resume: Real-mode resume needs a checkpoint with "
                  "host snapshots (this one is schedule-only)");
      restore_block(a, cp.a);
      if (cp.units_done == 0) {
        // Unit-0 snapshot of the pristine inputs: cp.r is the caller's R.
        const size_t nn =
            static_cast<size_t>(cp.n) * static_cast<size_t>(cp.n);
        ROCQR_CHECK(cp.r.size() == nn,
                    "qr::resume: unit-0 tsqr checkpoint must carry the "
                    "caller's n x n R");
        restore_block(r, cp.r);
      } else {
        r_stack = &cp.r; // stacked per-leaf workspace; the driver validates
      }
    }
    opts.resume_units = cp.units_done;
    // Pin the checkpointed leaf partition so a shrunk fleet (migration after
    // device loss) replays the same row blocks. v1 checkpoints carry no leaf
    // count; mid-run ones still imply it through the stacked-R workspace.
    index_t leaves = cp.leaves;
    if (leaves == 0 && cp.units_done > 0 && !cp.r.empty()) {
      const size_t nn = static_cast<size_t>(cp.n) * static_cast<size_t>(cp.n);
      leaves = static_cast<index_t>(cp.r.size() / nn);
    }
    return detail::run_tsqr(devices, a, r, opts, r_stack, leaves);
  }

  ROCQR_CHECK(devices.size() == 1,
              "qr::resume: a '" + cp.driver +
                  "' checkpoint resumes on exactly one device");
  sim::Device& dev = *devices.front();
  if (a.data != nullptr) {
    ROCQR_CHECK(!cp.a.empty(),
                "qr::resume: Real-mode resume needs a checkpoint with "
                "host snapshots (this one is schedule-only)");
    restore_block(a, cp.a);
    restore_block(r, cp.r);
  }
  opts.resume_units = cp.units_done;
  if (cp.driver == "blocking") return detail::run_blocking(dev, a, r, opts);
  if (cp.driver == "recursive") return detail::run_recursive(dev, a, r, opts);
  if (cp.driver == "left") return detail::run_left_looking(dev, a, r, opts);
  if (cp.driver == "tiled") return detail::run_tiled(dev, a, r, opts);
  throw InvalidArgument("qr::resume: unknown driver '" + cp.driver + "'");
}

} // namespace rocqr::qr
