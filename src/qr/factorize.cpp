#include "qr/factorize.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/telemetry.hpp"
#include "qr/blocking_qr.hpp"
#include "qr/left_looking_qr.hpp"
#include "qr/multi_gpu_qr.hpp"
#include "qr/recursive_qr.hpp"
#include "qr/tiled_qr.hpp"
#include "qr/tsqr_ooc.hpp"

namespace rocqr::qr {

const char* to_string(Algorithm a) {
  switch (a) {
    case Algorithm::Blocking: return "blocking";
    case Algorithm::LeftLooking: return "left";
    case Algorithm::Recursive: return "recursive";
    case Algorithm::MultiGpu: return "multi_gpu";
    case Algorithm::Tsqr: return "tsqr";
    case Algorithm::Tiled: return "tiled";
  }
  return "?";
}

std::optional<Algorithm> parse_algorithm(std::string_view name) {
  if (name == "blocking") return Algorithm::Blocking;
  if (name == "left") return Algorithm::LeftLooking;
  if (name == "recursive") return Algorithm::Recursive;
  if (name == "multi_gpu") return Algorithm::MultiGpu;
  if (name == "tsqr") return Algorithm::Tsqr;
  if (name == "tiled") return Algorithm::Tiled;
  return std::nullopt;
}

namespace {

bool fleet_algorithm(Algorithm a) {
  return a == Algorithm::MultiGpu || a == Algorithm::Tsqr;
}

void validate_devices(const QrProblem& p) {
  ROCQR_CHECK(!p.devices.empty(), "qr::factorize: no devices");
  for (sim::Device* d : p.devices) {
    ROCQR_CHECK(d != nullptr, "qr::factorize: null device in the fleet");
  }
  if (!fleet_algorithm(p.algorithm)) {
    ROCQR_CHECK(p.devices.size() == 1,
                std::string("qr::factorize: algorithm '") +
                    to_string(p.algorithm) +
                    "' runs on exactly one device (got " +
                    std::to_string(p.devices.size()) + ")");
  }
}

void check_host_finite(sim::HostMutRef mat, const char* which) {
  for (index_t j = 0; j < mat.cols; ++j) {
    for (index_t i = 0; i < mat.rows; ++i) {
      const float v = mat.data[i + j * mat.ld];
      if (!std::isfinite(v)) {
        telemetry::MetricsRegistry::global()
            .counter("qr.nonfinite_detected")
            .increment();
        throw NumericalError(
            std::string("qr: non-finite value in ") + which + " at (" +
            std::to_string(i) + ", " + std::to_string(j) +
            ") after factorization (QrOptions::check_finite)");
      }
    }
  }
}

/// QrOptions::check_finite guard: scans the host outputs (R first — it is
/// small and where corruption concentrates — then Q) once the driver is done.
void maybe_check_finite(const QrProblem& problem) {
  if (!problem.options.check_finite) return;
  if (problem.r.data != nullptr) check_host_finite(problem.r, "R");
  if (problem.a.data != nullptr) check_host_finite(problem.a, "Q");
}

QrStats run_driver(const QrProblem& problem) {
  switch (problem.algorithm) {
    case Algorithm::Blocking:
      return detail::run_blocking(*problem.devices.front(), problem.a,
                                  problem.r, problem.options);
    case Algorithm::LeftLooking:
      return detail::run_left_looking(*problem.devices.front(), problem.a,
                                      problem.r, problem.options);
    case Algorithm::Recursive:
      return detail::run_recursive(*problem.devices.front(), problem.a,
                                   problem.r, problem.options);
    case Algorithm::MultiGpu:
      return detail::run_multi_gpu(problem.devices, problem.a, problem.r,
                                   problem.options);
    case Algorithm::Tsqr:
      return detail::run_tsqr(problem.devices, problem.a, problem.r,
                              problem.options, nullptr);
    case Algorithm::Tiled:
      return detail::run_tiled(*problem.devices.front(), problem.a,
                               problem.r, problem.options);
  }
  throw InvalidArgument("qr::factorize: unknown algorithm");
}

} // namespace

QrStats factorize(const QrProblem& problem) {
  validate_devices(problem);
  const QrStats stats = run_driver(problem);
  maybe_check_finite(problem);
  return stats;
}

QrStats resume(const QrProblem& problem, const Checkpoint& cp) {
  ROCQR_CHECK(!problem.devices.empty(), "qr::resume: no devices");
  for (sim::Device* d : problem.devices) {
    ROCQR_CHECK(d != nullptr, "qr::resume: null device in the fleet");
  }
  QrOptions opts = problem.options;
  if (opts.blocksize == 0) opts.blocksize = cp.blocksize;
  const QrStats stats = detail::resume_impl(problem.devices, cp, problem.a,
                                            problem.r, std::move(opts));
  maybe_check_finite(problem);
  return stats;
}

} // namespace rocqr::qr
