// Device-side panel factorization (the in-core recursive CGS of the LATER
// project, which the paper uses unchanged for both algorithms).
#pragma once

#include <string>
#include <vector>

#include "qr/options.hpp"
#include "sim/device.hpp"

namespace rocqr::qr {

/// Enqueues the in-core panel factorization on `stream`.
/// `aq` (m x w, fp32 device block) holds the panel on entry and Q on exit;
/// `r` (w x w, fp32 device block) receives the panel's R factor.
/// The cost is modeled by PerfModel::panel_seconds (one compute-engine op:
/// the in-core solver saturates the device, so its internals do not need to
/// be scheduled individually); in Real mode the numerics run via
/// recursive_cgs_inplace with the selected GEMM precision.
/// `name_prefix` prepends the trace op name — per-job attribution when
/// several factorizations share one device (qr/tiled_qr.hpp).
void panel_qr_device(sim::Device& dev, sim::DeviceMatrixRef aq,
                     sim::DeviceMatrixRef r, sim::Stream stream,
                     const QrOptions& opts,
                     const std::string& name_prefix = "");

/// One panel of a batched panel launch: the (m x w) panel block and its
/// (w x w) R destination.
struct PanelBatchEntry {
  sim::DeviceMatrixRef aq;
  sim::DeviceMatrixRef r;
};

/// Fused panel factorization of K same-shape panels in one compute-engine
/// launch: one kernel latency amortized across the batch, per-entry numerics
/// identical (and in entry order identical) to K solo panel_qr_device calls,
/// so Real-mode results are bit-identical. All entries must share m and w.
void panel_qr_device_batched(sim::Device& dev,
                             const std::vector<PanelBatchEntry>& entries,
                             sim::Stream stream, const QrOptions& opts,
                             const std::string& name);

} // namespace rocqr::qr
