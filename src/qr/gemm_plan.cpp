#include "qr/gemm_plan.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace rocqr::qr {

std::vector<GemmShape> blocked_qr_gemm_plan(index_t m, index_t n, index_t b) {
  ROCQR_CHECK(m >= n && n >= 1 && b >= 1, "blocked_qr_gemm_plan: bad sizes");
  std::vector<GemmShape> plan;
  for (index_t j0 = 0; j0 < n; j0 += b) {
    const index_t w = std::min(b, n - j0);
    const index_t rest = n - j0 - w;
    if (rest == 0) continue;
    plan.push_back(GemmShape{blas::Op::Trans, w, rest, m});    // R12 = Q1ᵀA2
    plan.push_back(GemmShape{blas::Op::NoTrans, m, rest, w});  // A2 -= Q1 R12
  }
  return plan;
}

namespace {

void recurse_plan(index_t m, index_t j0, index_t w, index_t base,
                  std::vector<GemmShape>& plan) {
  if (w <= base) return; // panel leaf: no top-level GEMMs
  const index_t h = w / 2;
  recurse_plan(m, j0, h, base, plan);
  plan.push_back(GemmShape{blas::Op::Trans, h, w - h, m});
  plan.push_back(GemmShape{blas::Op::NoTrans, m, w - h, h});
  recurse_plan(m, j0 + h, w - h, base, plan);
}

} // namespace

std::vector<GemmShape> recursive_qr_gemm_plan(index_t m, index_t n,
                                              index_t base) {
  ROCQR_CHECK(m >= n && n >= 1 && base >= 1,
              "recursive_qr_gemm_plan: bad sizes");
  std::vector<GemmShape> plan;
  recurse_plan(m, 0, n, base, plan);
  return plan;
}

sim_time_t plan_seconds(const std::vector<GemmShape>& plan,
                        const sim::PerfModel& model,
                        blas::GemmPrecision precision) {
  sim_time_t total = 0;
  for (const GemmShape& g : plan) {
    total += model.gemm_seconds(g.opa, g.m, g.n, g.k, precision);
  }
  return total;
}

flops_t plan_flops(const std::vector<GemmShape>& plan) {
  flops_t total = 0;
  for (const GemmShape& g : plan) total += g.flops();
  return total;
}

} // namespace rocqr::qr
