// Fleet-wide out-of-core TSQR (communication-avoiding QR across devices).
//
// The tall matrix is split into one row block per device; each device
// factors its block locally with the recursive OOC driver (the paper's
// Eq. 2 solver, slab-pipelined), the per-leaf R factors are reduced
// pairwise up a binary tree of small in-core Householder QRs, and a
// reconstruction sweep pushes n x n coefficient blocks back down the tree
// to form Q out of core. Capacity therefore scales with *fleet* memory:
// a matrix no single device can hold factors as long as each row block's
// working set fits its device. In simulated time the leaf factorizations
// overlap freely (each device has its own clock); the tree serializes only
// on the actual R-factor dependencies, modeled as cross-device host-clock
// joins plus real H2D/D2H transfers of the stacked R factors (so a
// SharedHostLink fleet sees the contention).
//
// Checkpoint/preemption boundaries sit at leaf-factorization granularity:
// with a CheckpointSink installed, the driver snapshots A plus the stacked
// R workspace after every completed leaf under the "tsqr" driver tag, and
// qr::resume (factorize.hpp) replays the schedule
// skipping the completed leaves — bit-identical to an uninterrupted run,
// because leaves are independent and the tree/reconstruction always runs
// after the last leaf on identical inputs.
#pragma once

#include <vector>

#include "qr/options.hpp"
#include "sim/device.hpp"

namespace rocqr::qr {

namespace detail {

/// Resume-capable entry used by qr::resume's "tsqr" dispatch:
/// `resume_r_stack`, when non-null, is the checkpointed stacked R workspace
/// (leaves*n x n column-major floats) restoring the R factors of the
/// opts.resume_units already-completed leaves. Real-mode resumes with
/// resume_units > 0 require it; fresh runs pass nullptr.
///
/// `resume_leaves` > 0 pins the leaf partition to the checkpointed run's
/// leaf count instead of deriving it from the current fleet size — the
/// shrunk-fleet migration path: a 4-leaf checkpoint resumed on 3 surviving
/// devices keeps its 4-leaf row partition (leaves map onto devices
/// round-robin), so completed leaves stay valid and the result is
/// bit-identical to an uninterrupted 4-leaf run. 0 = derive from the fleet.
QrStats run_tsqr(const std::vector<sim::Device*>& devices, sim::HostMutRef a,
                 sim::HostMutRef r, const QrOptions& opts,
                 const std::vector<float>* resume_r_stack,
                 index_t resume_leaves = 0);

/// Number of TSQR leaves (row blocks) a fleet of `fleet_size` devices uses
/// for an m x n factorization: min(fleet_size, m / n), so every leaf has at
/// least n rows. Exposed for admission control and tests.
index_t tsqr_leaf_count(index_t m, index_t n, size_t fleet_size);

} // namespace detail

} // namespace rocqr::qr
