#include "qr/options.hpp"

#include "common/error.hpp"

namespace rocqr::qr {

void QrOptions::validate() const {
  ROCQR_CHECK(blocksize > 0, "QrOptions: blocksize must be positive");
  ROCQR_CHECK(panel_base > 0, "QrOptions: panel_base must be positive");
  ROCQR_CHECK(pipeline_depth >= 1, "QrOptions: pipeline_depth must be >= 1");
  // The ramp knobs only participate in the schedule when ramp-up is on, so a
  // small-blocksize run with the default ramp_start stays valid.
  if (ramp_up) {
    ROCQR_CHECK(ramp_start > 0, "QrOptions: ramp_start must be positive");
    ROCQR_CHECK(ramp_start <= blocksize,
                "QrOptions: ramp_start must not exceed blocksize");
  }
  ROCQR_CHECK(memory_budget_fraction > 0.0 && memory_budget_fraction <= 1.0,
              "QrOptions: memory_budget_fraction must be in (0, 1]");
  ROCQR_CHECK(outer_tile_rows >= 0,
              "QrOptions: outer_tile_rows must be non-negative");
  ROCQR_CHECK(outer_tile_cols >= 0,
              "QrOptions: outer_tile_cols must be non-negative");
  ROCQR_CHECK(inner_c_panel >= 0,
              "QrOptions: inner_c_panel must be non-negative");
  ROCQR_CHECK(transfer_max_attempts >= 1,
              "QrOptions: transfer_max_attempts must be >= 1");
  ROCQR_CHECK(transfer_backoff_seconds >= 0.0,
              "QrOptions: transfer_backoff_seconds must be non-negative");
  ROCQR_CHECK(checkpoint_every >= 1,
              "QrOptions: checkpoint_every must be >= 1");
  ROCQR_CHECK(resume_units >= 0,
              "QrOptions: resume_units must be non-negative");
}

QrStats stats_from_trace(const sim::Trace& trace, size_t from,
                         bytes_t peak_device_bytes,
                         std::string_view name_prefix) {
  QrStats s = sim::engine_stats_from_trace(trace, from,
                                           static_cast<size_t>(-1),
                                           name_prefix);
  s.peak_device_bytes = peak_device_bytes;
  return s;
}

} // namespace rocqr::qr
