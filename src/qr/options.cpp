#include "qr/options.hpp"

#include <algorithm>

namespace rocqr::qr {

QrStats stats_from_trace(const sim::Trace& trace, size_t from,
                         bytes_t peak_device_bytes) {
  QrStats s;
  s.peak_device_bytes = peak_device_bytes;
  const auto& events = trace.events();
  sim_time_t first = 0;
  sim_time_t last = 0;
  bool any = false;
  for (size_t i = from; i < events.size(); ++i) {
    const sim::TraceEvent& e = events[i];
    const sim_time_t dur = e.end - e.start;
    if (!any) {
      first = e.start;
      last = e.end;
      any = true;
    } else {
      first = std::min(first, e.start);
      last = std::max(last, e.end);
    }
    switch (e.kind) {
      case sim::OpKind::Panel:
        s.panel_seconds += dur;
        ++s.panels;
        break;
      case sim::OpKind::Gemm:
      case sim::OpKind::Trsm: // triangular solves count as update work
        s.gemm_seconds += dur;
        break;
      case sim::OpKind::CopyD2D:
        s.d2d_seconds += dur;
        break;
      case sim::OpKind::CopyH2D:
        s.h2d_seconds += dur;
        s.h2d_bytes += e.bytes;
        break;
      case sim::OpKind::CopyD2H:
        s.d2h_seconds += dur;
        s.d2h_bytes += e.bytes;
        break;
      case sim::OpKind::Custom:
        break;
    }
    s.flops += e.flops;
  }
  s.total_seconds = any ? last - first : 0;
  return s;
}

} // namespace rocqr::qr
