#include "qr/incore.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "blas/level1.hpp"
#include "blas/level2.hpp"
#include "blas/transform.hpp"
#include "blas/trsm.hpp"
#include "common/error.hpp"
#include "la/cholesky.hpp"

namespace rocqr::qr {

namespace {

void check_tall(la::ConstMatrixView a, const char* what) {
  ROCQR_CHECK(a.rows() >= a.cols() && a.cols() >= 1,
              std::string(what) + ": need m >= n >= 1");
}

/// Normalizes column j of q, writing the norm to r(j,j).
/// Throws on (numerically) dependent columns.
void normalize_column(la::MatrixView q, la::MatrixView r, index_t j) {
  const double norm = blas::nrm2(q.rows(), &q(0, j), 1);
  ROCQR_CHECK(norm > 0.0, "gram-schmidt: linearly dependent column");
  r(j, j) = static_cast<float>(norm);
  blas::scal(q.rows(), static_cast<float>(1.0 / norm), &q(0, j), 1);
}

} // namespace

QrFactors cgs(la::ConstMatrixView a) {
  check_tall(a, "cgs");
  const index_t m = a.rows();
  const index_t n = a.cols();
  QrFactors f{la::materialize(a), la::Matrix(n, n)};
  la::MatrixView q = f.q.view();
  la::MatrixView r = f.r.view();
  for (index_t j = 0; j < n; ++j) {
    // CGS: all projection coefficients come from the *original* column a_j,
    // computed against the already-orthonormal q_0..q_{j-1} in one sweep —
    // one transposed GEMV for the coefficients, one GEMV for the update
    // (the level-2 formulation that blocking/recursion later lift to GEMM).
    blas::gemv(blas::Op::Trans, m, j, 1.0f, q.data(), q.ld(), &a(0, j), 1,
               0.0f, &r(0, j), 1);
    blas::gemv(blas::Op::NoTrans, m, j, -1.0f, q.data(), q.ld(), &r(0, j), 1,
               1.0f, &q(0, j), 1);
    normalize_column(q, r, j);
  }
  return f;
}

QrFactors mgs(la::ConstMatrixView a) {
  check_tall(a, "mgs");
  const index_t m = a.rows();
  const index_t n = a.cols();
  QrFactors f{la::materialize(a), la::Matrix(n, n)};
  la::MatrixView q = f.q.view();
  la::MatrixView r = f.r.view();
  for (index_t i = 0; i < n; ++i) {
    normalize_column(q, r, i);
    // MGS: as soon as q_i exists, remove its component from every later
    // column (the interleaved evaluation order of §3.1.1).
    for (index_t j = i + 1; j < n; ++j) {
      const float rij =
          static_cast<float>(blas::dot(m, &q(0, i), 1, &q(0, j), 1));
      r(i, j) = rij;
      blas::axpy(m, -rij, &q(0, i), 1, &q(0, j), 1);
    }
  }
  return f;
}

QrFactors cgs2(la::ConstMatrixView a) {
  check_tall(a, "cgs2");
  const index_t m = a.rows();
  const index_t n = a.cols();
  QrFactors f{la::materialize(a), la::Matrix(n, n)};
  la::MatrixView q = f.q.view();
  la::MatrixView r = f.r.view();
  std::vector<float> coef(static_cast<size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    // Two CGS projection passes; coefficients of both accumulate into R.
    for (int pass = 0; pass < 2; ++pass) {
      blas::gemv(blas::Op::Trans, m, j, 1.0f, q.data(), q.ld(), &q(0, j), 1,
                 0.0f, coef.data(), 1);
      blas::gemv(blas::Op::NoTrans, m, j, -1.0f, q.data(), q.ld(),
                 coef.data(), 1, 1.0f, &q(0, j), 1);
      for (index_t i = 0; i < j; ++i) {
        r(i, j) += coef[static_cast<size_t>(i)];
      }
    }
    normalize_column(q, r, j);
  }
  return f;
}

QrFactors blocked_cgs(la::ConstMatrixView a, index_t block,
                      blas::GemmPrecision precision) {
  check_tall(a, "blocked_cgs");
  ROCQR_CHECK(block >= 1, "blocked_cgs: block must be >= 1");
  const index_t m = a.rows();
  const index_t n = a.cols();
  QrFactors f{la::materialize(a), la::Matrix(n, n)};
  la::MatrixView q = f.q.view();
  la::MatrixView r = f.r.view();

  for (index_t j0 = 0; j0 < n; j0 += block) {
    const index_t w = std::min(block, n - j0);
    // Panel factorization (plain CGS on the current panel).
    {
      QrFactors pf = cgs(q.block(0, j0, m, w));
      blas::copy_matrix(m, w, pf.q.data(), pf.q.ld(), &q(0, j0), q.ld());
      blas::copy_matrix(w, w, pf.r.data(), pf.r.ld(), &r(j0, j0), r.ld());
    }
    const index_t rest = n - j0 - w;
    if (rest == 0) continue;
    // R12 = Q1ᵀ A2 (inner product), then A2 -= Q1 R12 (outer product).
    blas::gemm(blas::Op::Trans, blas::Op::NoTrans, w, rest, m, 1.0f,
               &q(0, j0), q.ld(), &q(0, j0 + w), q.ld(), 0.0f,
               &r(j0, j0 + w), r.ld(), precision);
    blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, m, rest, w, -1.0f,
               &q(0, j0), q.ld(), &r(j0, j0 + w), r.ld(), 1.0f,
               &q(0, j0 + w), q.ld(), precision);
  }
  return f;
}

void recursive_cgs_inplace(la::MatrixView aq, la::MatrixView r, index_t base,
                           blas::GemmPrecision precision) {
  ROCQR_CHECK(aq.rows() >= aq.cols() && aq.cols() >= 1,
              "recursive_cgs_inplace: need m >= n >= 1");
  ROCQR_CHECK(r.rows() >= aq.cols() && r.cols() >= aq.cols(),
              "recursive_cgs_inplace: R too small");
  ROCQR_CHECK(base >= 1, "recursive_cgs_inplace: base must be >= 1");
  const index_t m = aq.rows();
  const index_t n = aq.cols();
  if (n <= base) {
    QrFactors pf = cgs(aq);
    blas::copy_matrix(m, n, pf.q.data(), pf.q.ld(), aq.data(), aq.ld());
    blas::copy_matrix(n, n, pf.r.data(), pf.r.ld(), r.data(), r.ld());
    return;
  }
  const index_t h = n / 2;
  la::MatrixView a1 = aq.block(0, 0, m, h);
  la::MatrixView a2 = aq.block(0, h, m, n - h);
  recursive_cgs_inplace(a1, r.block(0, 0, h, h), base, precision);
  // R12 = Q1ᵀ A2
  la::MatrixView r12 = r.block(0, h, h, n - h);
  blas::gemm(blas::Op::Trans, blas::Op::NoTrans, h, n - h, m, 1.0f, a1.data(),
             a1.ld(), a2.data(), a2.ld(), 0.0f, r12.data(), r12.ld(),
             precision);
  // A2 -= Q1 R12
  blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, m, n - h, h, -1.0f,
             a1.data(), a1.ld(), r12.data(), r12.ld(), 1.0f, a2.data(),
             a2.ld(), precision);
  recursive_cgs_inplace(a2, r.block(h, h, n - h, n - h), base, precision);
}

QrFactors recursive_cgs(la::ConstMatrixView a, index_t base,
                        blas::GemmPrecision precision) {
  check_tall(a, "recursive_cgs");
  QrFactors f{la::materialize(a), la::Matrix(a.cols(), a.cols())};
  recursive_cgs_inplace(f.q.view(), f.r.view(), base, precision);
  return f;
}

namespace {

/// Flips column signs so that diag(R) > 0 — making the factorization match
/// the Gram-Schmidt convention (norms are positive), hence unique and
/// directly comparable across algorithms.
void normalize_signs(la::MatrixView q, la::MatrixView r) {
  const index_t n = r.cols();
  for (index_t j = 0; j < n; ++j) {
    if (r(j, j) >= 0.0f) continue;
    for (index_t c = j; c < n; ++c) r(j, c) = -r(j, c);
    for (index_t i = 0; i < q.rows(); ++i) q(i, j) = -q(i, j);
  }
}

} // namespace

QrFactors householder(la::ConstMatrixView a) {
  check_tall(a, "householder");
  const index_t m = a.rows();
  const index_t n = a.cols();
  la::Matrix work = la::materialize(a);
  la::MatrixView w = work.view();
  // Reflector vectors, stored column by column (v(j) = 1 implied is NOT
  // used; we store the full normalized v for clarity over packing).
  la::Matrix vs(m, n);
  std::vector<double> v(static_cast<size_t>(m));

  for (index_t j = 0; j < n; ++j) {
    // Build v = x + sign(x0)|x| e1 over the trailing rows.
    const index_t len = m - j;
    double norm = 0.0;
    for (index_t i = 0; i < len; ++i) {
      const double x = static_cast<double>(w(j + i, j));
      v[static_cast<size_t>(i)] = x;
      norm += x * x;
    }
    norm = std::sqrt(norm);
    ROCQR_CHECK(norm > 0.0, "householder: zero column");
    const double alpha = v[0] >= 0.0 ? -norm : norm;
    v[0] -= alpha;
    double vtv = 0.0;
    for (index_t i = 0; i < len; ++i) {
      vtv += v[static_cast<size_t>(i)] * v[static_cast<size_t>(i)];
    }
    for (index_t i = 0; i < len; ++i) {
      vs(j + i, j) = static_cast<float>(v[static_cast<size_t>(i)]);
    }
    vs(j, j) = static_cast<float>(v[0]); // keep full v; vtv via recompute
    if (vtv > 0.0) {
      const double scale = 2.0 / vtv;
      // Apply H = I - scale v vᵀ to the trailing block of A.
      for (index_t c = j; c < n; ++c) {
        double vta = 0.0;
        for (index_t i = 0; i < len; ++i) {
          vta += v[static_cast<size_t>(i)] * static_cast<double>(w(j + i, c));
        }
        const double f = scale * vta;
        for (index_t i = 0; i < len; ++i) {
          w(j + i, c) = static_cast<float>(static_cast<double>(w(j + i, c)) -
                                           f * v[static_cast<size_t>(i)]);
        }
      }
    }
    w(j, j) = static_cast<float>(alpha); // exact, avoids cancellation noise
    for (index_t i = j + 1; i < m; ++i) w(i, j) = 0.0f;
  }

  // R = leading n x n upper triangle of the transformed matrix.
  QrFactors f{la::Matrix(m, n), la::Matrix(n, n)};
  blas::copy_matrix(n, n, work.data(), work.ld(), f.r.data(), f.r.ld());
  blas::zero_lower_triangle(n, n, f.r.data(), f.r.ld());

  // Thin Q = H_0 H_1 ... H_{n-1} * [I_n; 0], applied in reverse order.
  la::MatrixView q = f.q.view();
  for (index_t j = 0; j < n; ++j) q(j, j) = 1.0f;
  for (index_t j = n - 1; j >= 0; --j) {
    const index_t len = m - j;
    double vtv = 0.0;
    for (index_t i = 0; i < len; ++i) {
      const double x = static_cast<double>(vs(j + i, j));
      v[static_cast<size_t>(i)] = x;
      vtv += x * x;
    }
    if (vtv == 0.0) continue;
    const double scale = 2.0 / vtv;
    for (index_t c = 0; c < n; ++c) {
      double vtq = 0.0;
      for (index_t i = 0; i < len; ++i) {
        vtq += v[static_cast<size_t>(i)] * static_cast<double>(q(j + i, c));
      }
      const double f2 = scale * vtq;
      for (index_t i = 0; i < len; ++i) {
        q(j + i, c) = static_cast<float>(static_cast<double>(q(j + i, c)) -
                                         f2 * v[static_cast<size_t>(i)]);
      }
    }
  }
  normalize_signs(f.q.view(), f.r.view());
  return f;
}

QrFactors givens(la::ConstMatrixView a) {
  check_tall(a, "givens");
  const index_t m = a.rows();
  const index_t n = a.cols();
  la::Matrix work = la::materialize(a);
  la::MatrixView w = work.view();
  la::Matrix g_acc = la::identity(m); // accumulates G_k ... G_1
  la::MatrixView g = g_acc.view();

  for (index_t j = 0; j < n; ++j) {
    for (index_t i = m - 1; i > j; --i) {
      const double x = static_cast<double>(w(i - 1, j));
      const double y = static_cast<double>(w(i, j));
      if (y == 0.0) continue;
      const double r = std::hypot(x, y);
      const double c = x / r;
      const double s = y / r;
      // Rotate rows (i-1, i) of both the working matrix and the accumulator.
      const auto rotate = [&](la::MatrixView mat, index_t from_col) {
        for (index_t col = from_col; col < mat.cols(); ++col) {
          const double top = static_cast<double>(mat(i - 1, col));
          const double bot = static_cast<double>(mat(i, col));
          mat(i - 1, col) = static_cast<float>(c * top + s * bot);
          mat(i, col) = static_cast<float>(-s * top + c * bot);
        }
      };
      rotate(w, j);
      rotate(g, 0);
      w(i, j) = 0.0f; // exact zero by construction
    }
    ROCQR_CHECK(w(j, j) != 0.0f, "givens: rank-deficient column");
  }

  QrFactors f{la::Matrix(m, n), la::Matrix(n, n)};
  blas::copy_matrix(n, n, work.data(), work.ld(), f.r.data(), f.r.ld());
  blas::zero_lower_triangle(n, n, f.r.data(), f.r.ld());
  // Q = (G_k...G_1)ᵀ restricted to the first n columns: Q(i, j) = g(j, i).
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) f.q(i, j) = g(j, i);
  }
  normalize_signs(f.q.view(), f.r.view());
  return f;
}

QrFactors tsqr(la::ConstMatrixView a, index_t row_block) {
  check_tall(a, "tsqr");
  ROCQR_CHECK(row_block >= 1, "tsqr: row_block must be positive");
  const index_t m = a.rows();
  const index_t n = a.cols();
  const index_t rb = std::max(row_block, n);

  // Leaf factorizations: independent Householder QRs of the row blocks.
  // Every leaf must have at least n rows; a short tail is absorbed into the
  // preceding leaf.
  std::vector<la::Matrix> leaf_qs;
  std::vector<la::Matrix> level; // current level's R factors
  index_t leaf_r0 = 0;
  while (leaf_r0 < m) {
    index_t rows = std::min(rb, m - leaf_r0);
    const index_t tail = m - leaf_r0 - rows;
    if (tail > 0 && tail < n) rows += tail;
    QrFactors leaf = householder(a.block(leaf_r0, 0, rows, n));
    leaf_qs.push_back(std::move(leaf.q));
    level.push_back(std::move(leaf.r));
    leaf_r0 += rows;
  }
  const size_t leaves = level.size();

  // Reduction tree: pairwise QR of stacked R factors. Keep each pair's Q
  // (2n x n) for the reconstruction sweep.
  std::vector<std::vector<la::Matrix>> pair_qs; // per level, per pair
  while (level.size() > 1) {
    std::vector<la::Matrix> next;
    std::vector<la::Matrix> qs;
    for (size_t i = 0; i + 1 < level.size(); i += 2) {
      la::Matrix stacked(2 * n, n);
      blas::copy_matrix(n, n, level[i].data(), level[i].ld(), stacked.data(),
                        stacked.ld());
      blas::copy_matrix(n, n, level[i + 1].data(), level[i + 1].ld(),
                        &stacked(n, 0), stacked.ld());
      QrFactors pair = householder(stacked.view());
      qs.push_back(std::move(pair.q));
      next.push_back(std::move(pair.r));
    }
    if (level.size() % 2 == 1) {
      // Odd node passes through unchanged (marked by an empty pair Q).
      qs.push_back(la::Matrix());
      next.push_back(std::move(level.back()));
    }
    pair_qs.push_back(std::move(qs));
    level = std::move(next);
  }

  QrFactors f{la::Matrix(m, n), la::Matrix(n, n)};
  blas::copy_matrix(n, n, level[0].data(), level[0].ld(), f.r.data(),
                    f.r.ld());

  // Reconstruction: push coefficient matrices C (n x n) down the tree;
  // each pair splits its parent's C through the two halves of its Q.
  std::vector<la::Matrix> coef(1);
  coef[0] = la::identity(n);
  for (auto it = pair_qs.rbegin(); it != pair_qs.rend(); ++it) {
    std::vector<la::Matrix> child_coef;
    size_t parent = 0;
    for (const la::Matrix& pq : *it) {
      const la::Matrix& c = coef[parent++];
      if (pq.empty()) { // pass-through node
        child_coef.push_back(la::materialize(c.view()));
        continue;
      }
      la::Matrix top(n, n);
      la::Matrix bottom(n, n);
      blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, n, n, n, 1.0f,
                 pq.data(), pq.ld(), c.data(), c.ld(), 0.0f, top.data(),
                 top.ld());
      blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, n, n, n, 1.0f,
                 &pq(n, 0), pq.ld(), c.data(), c.ld(), 0.0f, bottom.data(),
                 bottom.ld());
      child_coef.push_back(std::move(top));
      child_coef.push_back(std::move(bottom));
    }
    coef = std::move(child_coef);
  }
  ROCQR_CHECK(coef.size() == leaves, "tsqr: reconstruction shape mismatch");

  // Q rows of leaf i = local Q_i times its coefficient block.
  index_t r0 = 0;
  for (size_t i = 0; i < leaves; ++i) {
    const la::Matrix& lq = leaf_qs[i];
    const index_t rows = lq.rows();
    blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, rows, n, n, 1.0f,
               lq.data(), lq.ld(), coef[i].data(), coef[i].ld(), 0.0f,
               &f.q(r0, 0), f.q.ld());
    r0 += rows;
  }
  ROCQR_CHECK(r0 == m, "tsqr: leaf rows do not tile the matrix");
  return f;
}

QrFactors cholesky_qr(la::ConstMatrixView a) {
  check_tall(a, "cholesky_qr");
  const index_t m = a.rows();
  const index_t n = a.cols();
  QrFactors f{la::materialize(a), la::Matrix(n, n)};
  blas::syrk_upper_t(n, m, 1.0f, a.data(), a.ld(), 0.0f, f.r.data(),
                     f.r.ld());
  la::cholesky_upper(f.r.view());
  blas::trsm_right_upper(m, n, f.r.data(), f.r.ld(), f.q.data(), f.q.ld());
  return f;
}

QrFactors cholesky_qr2(la::ConstMatrixView a) {
  QrFactors first = cholesky_qr(a);
  QrFactors second = cholesky_qr(first.q.view());
  // R = R2 * R1; both upper triangular, so is the product.
  la::Matrix r(first.r.rows(), first.r.cols());
  blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, r.rows(), r.cols(),
             r.rows(), 1.0f, second.r.data(), second.r.ld(), first.r.data(),
             first.r.ld(), 0.0f, r.data(), r.ld());
  blas::zero_lower_triangle(r.rows(), r.cols(), r.data(), r.ld());
  return QrFactors{std::move(second.q), std::move(r)};
}

} // namespace rocqr::qr
