#include "qr/panel.hpp"

#include "common/error.hpp"
#include "qr/incore.hpp"

namespace rocqr::qr {

void panel_qr_device(sim::Device& dev, sim::DeviceMatrixRef aq,
                     sim::DeviceMatrixRef r, sim::Stream stream,
                     const QrOptions& opts, const std::string& name_prefix) {
  ROCQR_CHECK(aq.matrix.valid() && r.matrix.valid(),
              "panel_qr_device: invalid matrix");
  const index_t m = aq.rows;
  const index_t w = aq.cols;
  ROCQR_CHECK(m >= w && w >= 1, "panel_qr_device: need m >= w >= 1");
  ROCQR_CHECK(r.rows == w && r.cols == w, "panel_qr_device: R must be w x w");

  // CGS2 and CholeskyQR2 orthogonalize twice: double the panel flops at the
  // same sustained rate.
  const double flops_factor =
      opts.panel_algorithm == PanelAlgorithm::RecursiveCgs ? 1.0 : 2.0;
  const sim_time_t seconds = dev.model().panel_seconds(m, w) * flops_factor;
  const flops_t flops =
      static_cast<flops_t>(flops_factor * 2.0 * static_cast<double>(m) * w * w);
  dev.custom_compute(
      stream, seconds, flops, sim::OpKind::Panel,
      name_prefix + "panel_qr " + std::to_string(m) + "x" + std::to_string(w),
      [&]() {
        la::Matrix host_panel = dev.download(aq);
        la::Matrix host_r(w, w);
        switch (opts.panel_algorithm) {
          case PanelAlgorithm::RecursiveCgs:
            recursive_cgs_inplace(host_panel.view(), host_r.view(),
                                  opts.panel_base, opts.precision);
            break;
          case PanelAlgorithm::Cgs2: {
            QrFactors f = cgs2(host_panel.view());
            host_panel = std::move(f.q);
            host_r = std::move(f.r);
            break;
          }
          case PanelAlgorithm::CholeskyQr2: {
            QrFactors f = cholesky_qr2(host_panel.view());
            host_panel = std::move(f.q);
            host_r = std::move(f.r);
            break;
          }
        }
        dev.upload(aq, host_panel.view());
        dev.upload(r, host_r.view());
      });
}

} // namespace rocqr::qr
