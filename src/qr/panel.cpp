#include "qr/panel.hpp"

#include "common/error.hpp"
#include "qr/incore.hpp"

namespace rocqr::qr {

void panel_qr_device(sim::Device& dev, sim::DeviceMatrixRef aq,
                     sim::DeviceMatrixRef r, sim::Stream stream,
                     const QrOptions& opts, const std::string& name_prefix) {
  ROCQR_CHECK(aq.matrix.valid() && r.matrix.valid(),
              "panel_qr_device: invalid matrix");
  const index_t m = aq.rows;
  const index_t w = aq.cols;
  ROCQR_CHECK(m >= w && w >= 1, "panel_qr_device: need m >= w >= 1");
  ROCQR_CHECK(r.rows == w && r.cols == w, "panel_qr_device: R must be w x w");

  // CGS2 and CholeskyQR2 orthogonalize twice: double the panel flops at the
  // same sustained rate.
  const double flops_factor =
      opts.panel_algorithm == PanelAlgorithm::RecursiveCgs ? 1.0 : 2.0;
  const sim_time_t seconds = dev.model().panel_seconds(m, w) * flops_factor;
  const flops_t flops =
      static_cast<flops_t>(flops_factor * 2.0 * static_cast<double>(m) * w * w);
  dev.custom_compute(
      stream, seconds, flops, sim::OpKind::Panel,
      name_prefix + "panel_qr " + std::to_string(m) + "x" + std::to_string(w),
      [&]() {
        la::Matrix host_panel = dev.download(aq);
        la::Matrix host_r(w, w);
        switch (opts.panel_algorithm) {
          case PanelAlgorithm::RecursiveCgs:
            recursive_cgs_inplace(host_panel.view(), host_r.view(),
                                  opts.panel_base, opts.precision);
            break;
          case PanelAlgorithm::Cgs2: {
            QrFactors f = cgs2(host_panel.view());
            host_panel = std::move(f.q);
            host_r = std::move(f.r);
            break;
          }
          case PanelAlgorithm::CholeskyQr2: {
            QrFactors f = cholesky_qr2(host_panel.view());
            host_panel = std::move(f.q);
            host_r = std::move(f.r);
            break;
          }
        }
        dev.upload(aq, host_panel.view());
        dev.upload(r, host_r.view());
      });
}

void panel_qr_device_batched(sim::Device& dev,
                             const std::vector<PanelBatchEntry>& entries,
                             sim::Stream stream, const QrOptions& opts,
                             const std::string& name) {
  ROCQR_CHECK(!entries.empty(), "panel_qr_device_batched: empty batch");
  const index_t m = entries.front().aq.rows;
  const index_t w = entries.front().aq.cols;
  ROCQR_CHECK(m >= w && w >= 1, "panel_qr_device_batched: need m >= w >= 1");
  for (const PanelBatchEntry& e : entries) {
    ROCQR_CHECK(e.aq.matrix.valid() && e.r.matrix.valid(),
                "panel_qr_device_batched: invalid matrix");
    ROCQR_CHECK(e.aq.rows == m && e.aq.cols == w,
                "panel_qr_device_batched: panels must share one shape");
    ROCQR_CHECK(e.r.rows == w && e.r.cols == w,
                "panel_qr_device_batched: R must be w x w");
  }
  const double flops_factor =
      opts.panel_algorithm == PanelAlgorithm::RecursiveCgs ? 1.0 : 2.0;
  const auto k = static_cast<double>(entries.size());
  // K solo launches minus (K-1) amortized kernel latencies.
  const sim_time_t seconds =
      dev.model().panel_seconds(m, w) * flops_factor * k -
      (k - 1.0) * dev.model().spec().kernel_latency_s;
  const flops_t flops = static_cast<flops_t>(
      flops_factor * 2.0 * static_cast<double>(m) * w * w * k);
  dev.custom_compute(
      stream, seconds, flops, sim::OpKind::Panel, name, [&]() {
        for (const PanelBatchEntry& e : entries) {
          la::Matrix host_panel = dev.download(e.aq);
          la::Matrix host_r(w, w);
          switch (opts.panel_algorithm) {
            case PanelAlgorithm::RecursiveCgs:
              recursive_cgs_inplace(host_panel.view(), host_r.view(),
                                    opts.panel_base, opts.precision);
              break;
            case PanelAlgorithm::Cgs2: {
              QrFactors f = cgs2(host_panel.view());
              host_panel = std::move(f.q);
              host_r = std::move(f.r);
              break;
            }
            case PanelAlgorithm::CholeskyQr2: {
              QrFactors f = cholesky_qr2(host_panel.view());
              host_panel = std::move(f.q);
              host_r = std::move(f.r);
              break;
            }
          }
          dev.upload(e.aq, host_panel.view());
          dev.upload(e.r, host_r.view());
        }
      });
}

} // namespace rocqr::qr
