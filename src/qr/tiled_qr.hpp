// Tiled CGS QR on the TaskGraph executor (Buttari-style DAG lookahead),
// plus the mixed-algorithm batch front end serve colocation runs on.
//
// The tiled driver splits the matrix into full-height column tiles of
// opts.blocksize. Step k streams every trailing tile A_j through the device
// and applies the block-MGS update R_kj = Q_k^T A_j; A_j -= Q_k R_kj —
// except tile k+1, which stays device-resident and factors in place the
// moment its own update lands (`panel_qr_device`). Expressed as a task
// graph, panel k+1's factorization carries a smaller priority key than step
// k's remaining far-tile updates, so it enqueues — and on the FIFO compute
// engine runs — while those updates are still moving in and draining out:
// the lookahead of Buttari et al. ("Parallel Tiled QR Factorization for
// Multicore Architectures"). Versus the bulk-synchronous recursive driver
// the tiled schedule also moves fewer bytes at small tile counts: the
// resident tile skips one host round trip per step and R rows leave the
// device directly (see bench/tiled_qr_lookahead, BENCH_tiled_qr.json).
//
// `run_batch` fuses SEVERAL factorizations — tiled, blocking, or
// left-looking, mixed freely — into ONE task graph on one device: every
// job's algorithm is expressed as a node program over the shared
// three-stream schedule, so one job's transfers overlap another's computes
// regardless of algorithm. The blocking and left-looking programs perform
// bitwise the same arithmetic as their solo SlabPipeline drivers (same
// GEMM operand precisions and k-extents, elementwise fp16 conversions), so
// a job preempted from a batch resumes solo — or vice versa — with
// bit-identical results (pinned by tests/qr_mixed_batch_test.cpp).
//
// Checkpoints use the per-algorithm driver tags ("tiled", "blocking",
// "left"). Tiled unit u = "tiles 0..u-1 factored, with the trailing
// updates of steps 0..u-2 applied to host A"; blocking unit u = "u panels
// factored and their trailing updates applied"; left-looking unit u =
// "u panels projected and factored". With a sink installed the graph runs
// in per-round segments so every boundary is a consistent snapshot; resume
// (qr::resume, or a new batch with opts.resume_units) restores the host
// arrays and replays from the boundary — bit-identical, pinned by
// tests/qr_tiled_test.cpp and tests/qr_mixed_batch_test.cpp.
#pragma once

#include <string>
#include <vector>

#include "qr/options.hpp"
#include "sim/device.hpp"

namespace rocqr::qr::detail {

/// One factorization of a colocated batch. `algorithm` selects the node
/// program ("tiled", "blocking", or "left" — the qr::Algorithm string tags
/// of the single-device drivers). `label` prefixes every trace op name
/// ("j0." ...), which is how per-job stats are attributed when several
/// jobs share one device (serve multi-tenancy).
struct BatchJob {
  std::string algorithm;
  sim::HostMutRef a;
  sim::HostMutRef r;
  QrOptions opts;
  std::string label;
};

/// Runs `jobs` as ONE task graph on `dev`, interleaving their move-in /
/// compute / move-out nodes on the shared three-stream schedule so one
/// job's transfers overlap another's computes. The graph-level transfer
/// retry / ABFT configuration comes from jobs[0].opts — colocated jobs
/// must agree on precision and fault knobs (serve builds them from one
/// ServeConfig). Returns per-job stats (trace window filtered by each
/// job's label). Internal entry — solo callers go through qr::factorize.
std::vector<QrStats> run_batch(sim::Device& dev,
                               const std::vector<BatchJob>& jobs);

/// Single-job convenience wrapper around run_batch's tiled program.
QrStats run_tiled(sim::Device& dev, sim::HostMutRef a, sim::HostMutRef r,
                  const QrOptions& opts);

/// Fuses K same-shape, same-precision "blocking" jobs into ONE node program
/// of block-diagonal batched operations: per panel iteration the fused graph
/// issues a single batched move-in, one batched panel kernel, one batched
/// inner/outer GEMM pair per trailing panel and one batched move-out — each
/// covering all K jobs — instead of K per-job rounds, so the fixed per-op
/// latencies (link turnaround, kernel launch) are paid once per round. The
/// per-entry numerics are the exact solo bodies in job order, so every job's
/// R (and Q) is bit-identical to a solo run (pinned by
/// tests/qr_fused_batch_test.cpp), and checkpoints carry the solo "blocking"
/// driver tag: a job preempted from a fused batch resumes solo or fused.
/// Requires: every job algorithm "blocking", identical m/n/blocksize/
/// precision/panel algorithm, equal resume_units, abft off. Returned
/// per-job stats are an even 1/K split of the fused window's volume
/// aggregates (exact, since the jobs are identical in shape and arithmetic).
std::vector<QrStats> run_fused_batch(sim::Device& dev,
                                     const std::vector<BatchJob>& jobs);

} // namespace rocqr::qr::detail
