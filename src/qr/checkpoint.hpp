// Panel-level checkpoint/restart for the OOC QR drivers (docs/FAULTS.md).
//
// A checkpoint captures the factorization state after a completed "unit" of
// work — a panel iteration in the blocking and left-looking drivers, a
// recursion leaf (panel or resident subtree) in the recursive driver — plus
// a full snapshot of the host A (partially factored, Q columns in place) and
// R matrices in Real mode. Because Real-mode numerics execute eagerly and
// deterministically at enqueue (independent of the modeled clocks), a
// factorization resumed from a checkpoint reproduces the uninterrupted
// result bit for bit: the driver replays its schedule, skipping the units
// the checkpoint already covers, and continues on the restored host data.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "qr/options.hpp"
#include "sim/device.hpp"

namespace rocqr::qr {

struct Checkpoint {
  /// Driver that wrote the checkpoint: "blocking", "recursive", "left" or
  /// "tsqr" (the fleet-wide driver; its units are completed leaf
  /// factorizations and its R payload is the stacked per-leaf R workspace).
  std::string driver;
  index_t m = 0;
  index_t n = 0;
  index_t blocksize = 0;
  /// Columns fully factored (Q on the host, R rows written).
  index_t columns_done = 0;
  /// Completed schedule units; resume skips exactly this many.
  index_t units_done = 0;
  /// "tsqr" only: leaf count of the run that wrote the checkpoint. Resume
  /// pins the leaf partition to this value even when the fleet has shrunk
  /// (dead device), so completed leaves keep their row blocks and the
  /// result stays bit-identical to an uninterrupted run at this layout.
  /// 0 = unpinned (pre-v2 checkpoints and non-tsqr drivers).
  index_t leaves = 0;
  /// Host snapshots, column-major ld == rows. Empty in Phantom mode (the
  /// schedule replay alone reproduces a phantom run).
  std::vector<float> a;
  std::vector<float> r;
};

/// Serializes `cp` as a text header ("rocqr-checkpoint v2", driver, dims,
/// leaf count, payload CRC32) followed by the raw float payload of A then R.
/// The CRC covers the payload bytes, so bit rot and truncation are detected
/// at read time (tmp-and-rename only protects against crash-mid-write).
void write_checkpoint(std::ostream& os, const Checkpoint& cp);

/// Inverse of write_checkpoint; throws rocqr::InvalidArgument on a malformed
/// stream or a payload CRC mismatch. v1 checkpoints (no leaf count, no CRC)
/// are still accepted with leaves = 0 and no integrity check.
Checkpoint read_checkpoint(std::istream& is);

/// Destination for driver checkpoints. Implementations must copy what they
/// need: the driver reuses its snapshot buffers between writes.
class CheckpointSink {
 public:
  virtual ~CheckpointSink() = default;
  virtual void write(const Checkpoint& cp) = 0;
};

/// Keeps the most recent checkpoint in memory (plus a write count) — the
/// kill-and-resume tests' sink.
class MemoryCheckpointSink : public CheckpointSink {
 public:
  void write(const Checkpoint& cp) override {
    last_ = cp;
    ++count_;
  }
  const Checkpoint& last() const { return last_; }
  bool has_checkpoint() const { return count_ > 0; }
  int count() const { return count_; }

 private:
  Checkpoint last_;
  int count_ = 0;
};

/// Serializes every checkpoint to `path`. Writes are atomic with respect to
/// crashes: the new checkpoint is serialized to `path + ".tmp"` and renamed
/// into place only once complete, so a failure mid-write (crash, injected
/// fault, full disk) leaves the previous good checkpoint untouched.
class FileCheckpointSink : public CheckpointSink {
 public:
  explicit FileCheckpointSink(std::string path) : path_(std::move(path)) {}
  void write(const Checkpoint& cp) override;
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Reads the checkpoint stored at `path`.
Checkpoint load_checkpoint_file(const std::string& path);

namespace detail {

/// The one resume implementation behind qr::resume (factorize.hpp):
/// restores the host A/R data (Real mode), then re-runs the driver named
/// by the checkpoint's tag with opts.resume_units = cp.units_done so the
/// completed prefix of the schedule is skipped. "tsqr" checkpoints resume
/// the fleet-wide driver (restoring the stacked R workspace of the
/// completed leaves); every other tag requires exactly one device. `a`/`r`
/// must have the checkpoint's dimensions; opts.blocksize must match the
/// checkpointed blocksize (the unit numbering depends on it).
QrStats resume_impl(const std::vector<sim::Device*>& devices,
                    const Checkpoint& cp, sim::HostMutRef a,
                    sim::HostMutRef r, QrOptions opts);

} // namespace detail

} // namespace rocqr::qr
