#include "qr/driver_util.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"
#include "ooc/operand.hpp"

namespace rocqr::qr::detail {

void move_in_panel(sim::Device& dev, const sim::DeviceMatrix& panel,
                   sim::HostConstRef a_cols, sim::Stream in,
                   const HostWriteTracker& tracker, index_t j0, index_t w,
                   bool fine_grained) {
  ROCQR_CHECK(panel.rows() == a_cols.rows && panel.cols() == w &&
                  a_cols.cols == w,
              "move_in_panel: shape mismatch");
  const index_t m = panel.rows();

  if (fine_grained) {
    const auto regions = tracker.regions_for(j0, w);
    if (!regions.empty()) {
      // Group the writer's region events by row slab; a chunk may depend on
      // several column tiles covering the panel's columns.
      std::map<index_t, std::pair<index_t, std::vector<sim::Event>>> rows;
      for (const ooc::RegionEvent& r : regions) {
        auto& slot = rows[r.rows.offset];
        slot.first = r.rows.width;
        slot.second.push_back(r.event);
      }
      // The chunked path is only valid if the row slabs tile [0, m) exactly.
      index_t covered = 0;
      for (const auto& [offset, slot] : rows) {
        if (offset != covered) break;
        covered += slot.first;
      }
      if (covered == m) {
        for (const auto& [offset, slot] : rows) {
          for (const sim::Event& e : slot.second) dev.wait_event(in, e);
          dev.copy_h2d(
              sim::DeviceMatrixRef(panel, offset, 0, slot.first, w),
              ooc::host_block(a_cols, offset, 0, slot.first, w), in,
              "h2d panel rows " + std::to_string(offset));
        }
        return;
      }
    }
  }

  for (const sim::Event& e : tracker.events_for(j0, w)) {
    dev.wait_event(in, e);
  }
  dev.copy_h2d(panel, a_cols, in, "h2d panel");
}

ooc::OocGemmOptions gemm_options(const QrOptions& opts) {
  ooc::OocGemmOptions g;
  g.blocksize = opts.blocksize;
  g.ramp_up = opts.ramp_up;
  g.ramp_start = opts.ramp_start;
  g.staging_buffer = opts.staging_buffer;
  g.pipeline_depth = opts.pipeline_depth;
  g.precision = opts.precision;
  return g;
}

index_t plan_tile_edge(const sim::Device& dev, bytes_t resident_bytes,
                       const QrOptions& opts) {
  const double budget =
      static_cast<double>(dev.memory_capacity()) *
          opts.memory_budget_fraction -
      static_cast<double>(resident_bytes);
  // Two fp32 tiles in flight (working + staging), at half the remaining
  // budget so the streamed-input pools of the neighbouring operations fit.
  for (index_t t = 32768; t >= 64; t /= 2) {
    const double need = 2.0 * static_cast<double>(t) * static_cast<double>(t) * 4.0;
    if (need <= budget * 0.5) return t;
  }
  return 32;
}

} // namespace rocqr::qr::detail
