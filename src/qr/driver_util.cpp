#include "qr/driver_util.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"
#include "common/telemetry.hpp"
#include "ooc/operand.hpp"
#include "ooc/resilience.hpp"
#include "sim/trace_export.hpp"

namespace rocqr::qr::detail {

void move_in_panel(ooc::MoveInCtx& ctx, const sim::DeviceMatrix& panel,
                   sim::HostConstRef a_cols, const HostWriteTracker& tracker,
                   index_t j0, index_t w, const QrOptions& opts) {
  ROCQR_CHECK(panel.rows() == a_cols.rows && panel.cols() == w &&
                  a_cols.cols == w,
              "move_in_panel: shape mismatch");
  const index_t m = panel.rows();

  if (opts.qr_level_opt) {
    const auto regions = tracker.regions_for(j0, w);
    if (!regions.empty()) {
      // Group the writer's region events by row slab; a chunk may depend on
      // several column tiles covering the panel's columns.
      std::map<index_t, std::pair<index_t, std::vector<sim::Event>>> rows;
      for (const ooc::RegionEvent& r : regions) {
        auto& slot = rows[r.rows.offset];
        slot.first = r.rows.width;
        slot.second.push_back(r.event);
      }
      // The chunked path is only valid if the row slabs tile [0, m) exactly.
      index_t covered = 0;
      for (const auto& [offset, slot] : rows) {
        if (offset != covered) break;
        covered += slot.first;
      }
      if (covered == m) {
        for (const auto& [offset, slot] : rows) {
          for (const sim::Event& e : slot.second) ctx.wait(e);
          ctx.h2d(sim::DeviceMatrixRef(panel, offset, 0, slot.first, w),
                  ooc::host_block(a_cols, offset, 0, slot.first, w),
                  "h2d panel rows " + std::to_string(offset));
        }
        return;
      }
    }
  }

  for (const sim::Event& e : tracker.events_for(j0, w)) {
    ctx.wait(e);
  }
  ctx.h2d(sim::DeviceMatrixRef(panel), a_cols, "h2d panel");
}

ooc::OocGemmOptions gemm_options(const QrOptions& opts) {
  ooc::OocGemmOptions g;
  g.blocksize = opts.blocksize;
  g.ramp_up = opts.ramp_up;
  g.ramp_start = opts.ramp_start;
  g.staging_buffer = opts.staging_buffer;
  g.pipeline_depth = opts.pipeline_depth;
  g.precision = opts.precision;
  g.transfer_max_attempts = opts.transfer_max_attempts;
  g.transfer_backoff_seconds = opts.transfer_backoff_seconds;
  g.degrade_on_oom = opts.degrade_on_oom;
  g.abft = opts.abft;
  g.plan_log = opts.plan_log;
  return g;
}

void maybe_checkpoint(sim::Device& dev, const char* driver,
                      sim::HostMutRef a, sim::HostMutRef r,
                      const QrOptions& opts, index_t columns_done,
                      index_t units_done, index_t leaves) {
  if (opts.checkpoint_sink == nullptr) return;
  if (units_done % opts.checkpoint_every != 0) return;
  sim::TraceSpan span(dev, "checkpoint units=" + std::to_string(units_done));
  // Drain the pipelines so every completed unit's Q/R rows have landed on
  // the host; the snapshot is then a consistent factorization prefix.
  dev.synchronize();
  Checkpoint cp;
  cp.driver = driver;
  cp.m = a.rows;
  cp.n = a.cols;
  cp.blocksize = opts.blocksize;
  cp.columns_done = columns_done;
  cp.units_done = units_done;
  cp.leaves = leaves;
  if (a.data != nullptr) {
    cp.a.resize(static_cast<size_t>(a.rows) * static_cast<size_t>(a.cols));
    for (index_t j = 0; j < a.cols; ++j) {
      for (index_t i = 0; i < a.rows; ++i) {
        cp.a[static_cast<size_t>(i) + static_cast<size_t>(j) * a.rows] =
            a.data[i + j * a.ld];
      }
    }
    cp.r.resize(static_cast<size_t>(r.rows) * static_cast<size_t>(r.cols));
    for (index_t j = 0; j < r.cols; ++j) {
      for (index_t i = 0; i < r.rows; ++i) {
        cp.r[static_cast<size_t>(i) + static_cast<size_t>(j) * r.rows] =
            r.data[i + j * r.ld];
      }
    }
  }
  opts.checkpoint_sink->write(cp);
  telemetry::MetricsRegistry::global().counter("checkpoints_written").increment();
}

index_t plan_tile_edge(const sim::Device& dev, bytes_t resident_bytes,
                       const QrOptions& opts) {
  const double budget =
      static_cast<double>(dev.memory_capacity()) *
          opts.memory_budget_fraction -
      static_cast<double>(resident_bytes);
  // Two fp32 tiles in flight (working + staging), at half the remaining
  // budget so the streamed-input pools of the neighbouring operations fit.
  for (index_t t = 32768; t >= 64; t /= 2) {
    const double need = 2.0 * static_cast<double>(t) * static_cast<double>(t) * 4.0;
    if (need <= budget * 0.5) return t;
  }
  return 32;
}

} // namespace rocqr::qr::detail
