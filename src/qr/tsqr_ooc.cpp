#include "qr/tsqr_ooc.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "blas/gemm.hpp"
#include "common/error.hpp"
#include "la/matrix.hpp"
#include "ooc/gemm_engines.hpp"
#include "ooc/operand.hpp"
#include "ooc/resilience.hpp"
#include "qr/driver_util.hpp"
#include "qr/incore.hpp"
#include "qr/multi_gpu_qr.hpp"
#include "qr/recursive_qr.hpp"

namespace rocqr::qr {

using ooc::Operand;
using sim::Device;
using sim::DeviceMatrix;
using sim::HostConstRef;
using sim::HostMutRef;
using sim::StoragePrecision;
using sim::Stream;

namespace {

/// A reduction-tree node: where its R factor lives in the stacked workspace
/// (row offset slot*n), which device's clock/engines represent it, and the
/// simulated time its R factor reaches host memory — the DAG edge a parent
/// pair waits on (instead of a full-fleet barrier).
struct Node {
  index_t slot = 0;
  size_t dev = 0;
  sim_time_t ready = 0;
};

/// Row partition: leaf d gets rows [offsets[d], offsets[d+1]). Every leaf
/// has at least n rows because the leaf count is capped at m / n; the
/// remainder rows are spread one-per-leaf from the front (the analogue of
/// the in-core tsqr's short-tail absorption — no leaf is ever thinner
/// than n).
std::vector<index_t> leaf_offsets(index_t m, index_t leaves) {
  std::vector<index_t> offsets(static_cast<size_t>(leaves) + 1, 0);
  const index_t base = m / leaves;
  const index_t rem = m % leaves;
  for (index_t d = 0; d < leaves; ++d) {
    offsets[static_cast<size_t>(d) + 1] =
        offsets[static_cast<size_t>(d)] + base + (d < rem ? 1 : 0);
  }
  return offsets;
}

/// Copies workspace rows [slot*n, slot*n + n) x n into a dense host matrix.
void read_slot(const HostMutRef& work, index_t slot, index_t n,
               la::MatrixView dst, index_t dst_r0) {
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      dst(dst_r0 + i, j) = work.data[slot * n + i + j * work.ld];
    }
  }
}

} // namespace

namespace detail {

index_t tsqr_leaf_count(index_t m, index_t n, size_t fleet_size) {
  return std::min<index_t>(static_cast<index_t>(fleet_size), m / n);
}

QrStats run_tsqr(const std::vector<Device*>& devices, HostMutRef a,
                 HostMutRef r, const QrOptions& opts,
                 const std::vector<float>* resume_r_stack,
                 index_t resume_leaves) {
  ROCQR_CHECK(!devices.empty(), "tsqr_ooc_qr: no devices");
  for (Device* dev : devices) {
    ROCQR_CHECK(dev != nullptr, "tsqr_ooc_qr: null device");
  }
  opts.validate();
  const index_t m = a.rows;
  const index_t n = a.cols;
  ROCQR_CHECK(m >= n && n >= 1, "tsqr_ooc_qr: need m >= n >= 1");
  ROCQR_CHECK(r.rows == n && r.cols == n, "tsqr_ooc_qr: R must be n x n");
  // A resumed run keeps the checkpoint's leaf partition even if the fleet
  // shrank (device loss): leaves map onto the surviving devices round-robin
  // below, and since Real-mode numerics depend only on the row partition and
  // blocksize — never on which device hosts a leaf — the result stays
  // bit-identical to the uninterrupted run.
  const index_t leaves = resume_leaves > 0
                             ? resume_leaves
                             : tsqr_leaf_count(m, n, devices.size());
  ROCQR_CHECK(leaves <= m / n,
              "tsqr_ooc_qr: leaf count exceeds m / n (checkpoint from a "
              "different shape?)");
  ROCQR_CHECK(opts.resume_units <= leaves,
              "tsqr_ooc_qr: resume_units exceeds the leaf count (checkpoint "
              "from a different fleet size or shape?)");
  const bool phantom = a.data == nullptr;
  const std::vector<index_t> offsets = leaf_offsets(m, leaves);

  std::vector<size_t> windows;
  windows.reserve(devices.size());
  for (Device* dev : devices) windows.push_back(dev->trace().size());

  // The fleet-wide factorization begins at the latest device clock: a
  // device that idled earlier cannot start its leaf in the simulated past
  // (it matters when a scheduler hands over a fleet whose clocks diverged).
  double start = 0;
  for (Device* dev : devices) start = std::max(start, dev->now());
  for (Device* dev : devices) dev->advance_host_clock(start);

  // Stacked R workspace: leaf d's R factor lives in rows [d*n, (d+1)*n).
  // The reduction tree overwrites parent slots in place; checkpoints
  // snapshot the whole stack so a resume restores every completed leaf's R.
  la::Matrix work_storage;
  HostMutRef work = HostMutRef::phantom(leaves * n, n);
  if (!phantom) {
    work_storage = la::Matrix(leaves * n, n);
    work = HostMutRef(work_storage.view());
    if (opts.resume_units > 0) {
      const size_t expected = static_cast<size_t>(leaves) *
                              static_cast<size_t>(n) * static_cast<size_t>(n);
      ROCQR_CHECK(resume_r_stack != nullptr &&
                      resume_r_stack->size() == expected,
                  "tsqr_ooc_qr: Real-mode resume needs the checkpointed R "
                  "stack for the completed leaves");
      for (index_t j = 0; j < n; ++j) {
        for (index_t i = 0; i < leaves * n; ++i) {
          work.data[i + j * work.ld] =
              (*resume_r_stack)[static_cast<size_t>(i) +
                                static_cast<size_t>(j) *
                                    static_cast<size_t>(leaves * n)];
        }
      }
    }
  }

  // --- Leaf factorizations --------------------------------------------------
  // Each device factors its row block with the recursive OOC driver; in
  // simulated time the leaves overlap (independent device clocks). Leaves
  // completed by a previous attempt (opts.resume_units) are skipped whole:
  // their Q rows and R slots were restored from the checkpoint.
  //
  // Without a checkpoint sink the run is a pure DAG: a leaf's R is "ready"
  // the moment its last R write-back lands on the host (d2h Rii / R12 /
  // streamed R blocks), typically well before the leaf's Q panels finish
  // draining — so a tree pair can fire while both children are still
  // writing Q. With a sink, each leaf ends on a synchronize so the
  // checkpoint is a consistent snapshot; that preserves PR 6's
  // bulk-synchronous schedule (and its bit-identical resume) exactly.
  const bool overlap = opts.checkpoint_sink == nullptr;
  std::vector<sim_time_t> leaf_r_time(static_cast<size_t>(leaves), start);
  std::vector<sim_time_t> leaf_end_time(static_cast<size_t>(leaves), start);
  QrOptions leaf_opts = opts;
  leaf_opts.checkpoint_sink = nullptr;
  leaf_opts.resume_units = 0;
  for (index_t d = opts.resume_units; d < leaves; ++d) {
    Device& dev = *devices[static_cast<size_t>(d) % devices.size()];
    const index_t r0 = offsets[static_cast<size_t>(d)];
    const index_t rows = offsets[static_cast<size_t>(d) + 1] - r0;
    HostMutRef a_d = ooc::host_block(a, r0, 0, rows, n);
    HostMutRef r_d = ooc::host_block(work, d * n, 0, n, n);
    const size_t w0 = dev.trace().size();
    detail::run_recursive(dev, a_d, r_d, leaf_opts, /*sync_at_end=*/!overlap);
    if (overlap) {
      const auto& events = dev.trace().events();
      sim_time_t r_t = start;
      sim_time_t end_t = start;
      for (size_t i = w0; i < events.size(); ++i) {
        const sim::TraceEvent& e = events[i];
        end_t = std::max(end_t, e.end);
        if (e.kind == sim::OpKind::CopyD2H &&
            e.name.rfind("d2h Q", 0) != 0) {
          r_t = std::max(r_t, e.end);
        }
      }
      leaf_r_time[static_cast<size_t>(d)] = r_t;
      leaf_end_time[static_cast<size_t>(d)] = end_t;
    } else {
      dev.synchronize();
      qr::detail::maybe_checkpoint(dev, "tsqr", a, work, opts,
                                   /*columns_done=*/0, /*units_done=*/d + 1,
                                   leaves);
      leaf_r_time[static_cast<size_t>(d)] = dev.now();
      leaf_end_time[static_cast<size_t>(d)] = dev.now();
    }
  }

  // --- Reduction tree -------------------------------------------------------
  // Pairwise QR of stacked R factors, mirroring the in-core qr::tsqr tree
  // (odd node passes through). Each pair is charged to the lower child's
  // device: its host clock first joins the sibling's clock (the cross-device
  // dependency), then the stacked 2n x n factor moves H2D — through the
  // shared link, if the fleet has one — the small Householder QR runs as a
  // panel-kind compute op, and the merged R moves back D2H into the parent
  // slot.
  std::vector<std::vector<Node>> levels(1);
  for (index_t d = 0; d < leaves; ++d) {
    levels[0].push_back(Node{d, static_cast<size_t>(d) % devices.size(),
                             leaf_r_time[static_cast<size_t>(d)]});
  }
  std::vector<std::vector<la::Matrix>> pair_qs; // per level, per parent node
  while (levels.back().size() > 1) {
    const std::vector<Node>& level = levels.back();
    std::vector<Node> next;
    std::vector<la::Matrix> qs;
    for (size_t i = 0; i + 1 < level.size(); i += 2) {
      const Node c0 = level[i];
      const Node c1 = level[i + 1];
      Device& dev = *devices[c0.dev];
      // The pair's only data dependency is both children's R factors being
      // on the host — join the host clock to that instant, not to the
      // sibling device's full drain.
      if (overlap) {
        dev.advance_host_clock(std::max(c0.ready, c1.ready));
      } else {
        dev.advance_host_clock(devices[c1.dev]->now());
      }

      la::Matrix stacked_host;
      HostConstRef stacked_ref = HostConstRef::phantom(2 * n, n);
      if (!phantom) {
        stacked_host = la::Matrix(2 * n, n);
        read_slot(work, c0.slot, n, stacked_host.view(), 0);
        read_slot(work, c1.slot, n, stacked_host.view(), n);
        stacked_ref = HostConstRef(stacked_host.view());
      }

      Stream s = dev.create_stream();
      DeviceMatrix stacked =
          dev.allocate(2 * n, n, StoragePrecision::FP32, "tsqr.rstack");
      DeviceMatrix merged =
          dev.allocate(n, n, StoragePrecision::FP32, "tsqr.rmerge");
      ooc::detail::copy_h2d_retry(dev, stacked, stacked_ref, s, "h2d R stack",
                                  opts.transfer_max_attempts,
                                  opts.transfer_backoff_seconds);
      la::Matrix pair_q;
      const auto nf = static_cast<double>(n);
      dev.custom_compute(
          s, dev.model().panel_seconds(2 * n, n),
          static_cast<flops_t>(4.0 * nf * nf * nf), sim::OpKind::Panel,
          "tsqr pair qr " + std::to_string(2 * n) + "x" + std::to_string(n),
          [&]() {
            QrFactors f = householder(dev.download(stacked).view());
            pair_q = std::move(f.q);
            dev.upload(merged, f.r.view());
          });
      ooc::detail::copy_d2h_retry(dev,
                                  ooc::host_block(work, c0.slot * n, 0, n, n),
                                  merged, s, "d2h R merged",
                                  opts.transfer_max_attempts,
                                  opts.transfer_backoff_seconds);
      // The merged R is host-visible at the d2h's end; that timestamp is
      // the parent node's ready edge (no per-pair barrier in overlap mode).
      sim_time_t merged_ready = dev.trace().events().back().end;
      dev.free(stacked);
      dev.free(merged);
      if (!overlap) {
        dev.synchronize();
        merged_ready = dev.now();
      }
      qs.push_back(std::move(pair_q));
      next.push_back(Node{c0.slot, c0.dev, merged_ready});
    }
    if (level.size() % 2 == 1) {
      qs.push_back(la::Matrix()); // pass-through node: empty pair Q
      next.push_back(level.back());
    }
    pair_qs.push_back(std::move(qs));
    levels.push_back(std::move(next));
  }

  // The root R is the factorization's R.
  const Node root = levels.back().front();
  if (!phantom) {
    for (index_t j = 0; j < n; ++j) {
      for (index_t i = 0; i < n; ++i) {
        r.data[i + j * r.ld] = work.data[root.slot * n + i + j * work.ld];
      }
    }
  }

  // --- Reconstruction sweep -------------------------------------------------
  // Coefficient matrices C (n x n) walk back down the tree: each pair node
  // splits its parent's C through the two halves of its pair Q (two n^3
  // GEMMs, charged to the node's device; the children's clocks join it so
  // the leaf sweeps start only when their coefficients exist). Finally each
  // leaf forms its Q rows out of core: A_d := A_d * C_d streamed in row
  // slabs with C_d resident (beta = 0, so no C move-in).
  if (leaves > 1) {
    std::vector<la::Matrix> coef(1);
    std::vector<sim_time_t> coef_time(1, start);
    if (!phantom) coef[0] = la::identity(n);
    for (size_t lvl = pair_qs.size(); lvl-- > 0;) {
      const std::vector<Node>& child_nodes = levels[lvl];
      const std::vector<Node>& split_nodes = levels[lvl + 1];
      std::vector<la::Matrix> child_coef;
      std::vector<sim_time_t> child_time;
      size_t child = 0;
      for (size_t p = 0; p < pair_qs[lvl].size(); ++p) {
        const la::Matrix& pq = pair_qs[lvl][p];
        // Structural pass-through test (a lone trailing child), valid in
        // both modes — in Phantom every pair Q is an empty placeholder.
        const bool pass_through = child + 2 > child_nodes.size();
        if (pass_through) {
          if (!phantom) {
            child_coef.push_back(la::materialize(coef[p].view()));
          } else {
            child_coef.emplace_back();
          }
          child_time.push_back(coef_time[p]);
          ++child;
          continue;
        }
        const Node c0 = child_nodes[child];
        const Node c1 = child_nodes[child + 1];
        Device& dev = *devices[c0.dev];
        // The split needs the parent's coefficient and this pair's Q (both
        // host-side); the pair Q is covered by the pair node's ready edge.
        if (overlap) {
          dev.advance_host_clock(
              std::max(coef_time[p], split_nodes[p].ready));
        }
        const auto nf = static_cast<double>(n);
        dev.custom_compute(
            dev.create_stream(),
            2 * dev.model().gemm_seconds(blas::Op::NoTrans, n, n, n,
                                         blas::GemmPrecision::FP32),
            static_cast<flops_t>(4.0 * nf * nf * nf), sim::OpKind::Gemm,
            "tsqr coef split " + std::to_string(n) + "x" + std::to_string(n));
        sim_time_t split_done = dev.trace().events().back().end;
        if (!overlap) {
          dev.synchronize();
          devices[c1.dev]->advance_host_clock(dev.now());
          split_done = dev.now();
        }
        child_time.push_back(split_done);
        child_time.push_back(split_done);
        if (!phantom) {
          const la::Matrix& c = coef[p];
          la::Matrix top(n, n);
          la::Matrix bottom(n, n);
          blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, n, n, n, 1.0f,
                     pq.data(), pq.ld(), c.data(), c.ld(), 0.0f, top.data(),
                     top.ld());
          blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, n, n, n, 1.0f,
                     &pq(n, 0), pq.ld(), c.data(), c.ld(), 0.0f,
                     bottom.data(), bottom.ld());
          child_coef.push_back(std::move(top));
          child_coef.push_back(std::move(bottom));
        } else {
          child_coef.emplace_back();
          child_coef.emplace_back();
        }
        child += 2;
      }
      ROCQR_CHECK(child == child_nodes.size(),
                  "tsqr_ooc_qr: coefficient walk does not tile the level");
      coef = std::move(child_coef);
      coef_time = std::move(child_time);
    }
    ROCQR_CHECK(coef.size() == static_cast<size_t>(leaves),
                "tsqr_ooc_qr: reconstruction shape mismatch");

    for (index_t d = 0; d < leaves; ++d) {
      Device& dev = *devices[static_cast<size_t>(d) % devices.size()];
      // A leaf's sweep needs its coefficient and its own Q rows fully
      // drained to the host; in overlap mode neither implied a barrier, so
      // join the clock to both edges here.
      if (overlap) {
        dev.advance_host_clock(std::max(coef_time[static_cast<size_t>(d)],
                                        leaf_end_time[static_cast<size_t>(d)]));
      }
      const index_t r0 = offsets[static_cast<size_t>(d)];
      const index_t rows = offsets[static_cast<size_t>(d) + 1] - r0;
      HostMutRef q_d = ooc::host_block(a, r0, 0, rows, n);
      HostConstRef c_d =
          phantom ? HostConstRef::phantom(n, n)
                  : HostConstRef(coef[static_cast<size_t>(d)].view());
      ooc::OocGemmOptions go = qr::detail::gemm_options(opts);
      go.alpha = 1.0f;
      go.beta = 0.0f; // write-only C: the A slab move-in IS the Q-local read
      go.ramp_up = false;
      go.blocksize = std::min(opts.blocksize, rows);
      ooc::outer_product_recursive(dev, Operand::on_host(sim::as_const(q_d)),
                                   Operand::on_host(c_d), sim::as_const(q_d),
                                   q_d, go);
    }
  }

  sim::synchronize_all(devices);
  std::vector<QrStats> per_device;
  per_device.reserve(devices.size());
  for (size_t d = 0; d < devices.size(); ++d) {
    per_device.push_back(stats_from_trace(devices[d]->trace(), windows[d],
                                          devices[d]->memory_peak()));
  }
  return combine_device_stats(per_device);
}

} // namespace detail

} // namespace rocqr::qr
