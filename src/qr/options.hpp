// Options and statistics for the out-of-core QR drivers.
#pragma once

#include "blas/gemm.hpp"
#include "common/types.hpp"
#include "sim/trace.hpp"

namespace rocqr::ooc {
struct PlanLog;
}

namespace rocqr::qr {

class CheckpointSink;

/// In-core solver used for the device panel factorization. The paper (via
/// HPDC'20) uses recursive CGS; CGS2 and CholeskyQR2 are included as
/// stability ablations — both do ~2x the panel flops for much better
/// orthogonality on ill-conditioned panels.
enum class PanelAlgorithm { RecursiveCgs, Cgs2, CholeskyQr2 };

struct QrOptions {
  /// QR blocksize b: panel width for both algorithms, streamed-slab width
  /// for the OOC GEMMs (the paper couples them the same way).
  index_t blocksize = 16384;
  blas::GemmPrecision precision = blas::GemmPrecision::FP16_FP32;
  PanelAlgorithm panel_algorithm = PanelAlgorithm::RecursiveCgs;

  /// §4.2 QR-level optimizations: keep small results resident across BLAS
  /// calls, overlap panel move-out with GEMM move-ins and vice versa.
  /// Off inserts a full device synchronization between phases.
  bool qr_level_opt = true;
  /// §4.1.3 blocksize ramp-up inside the OOC GEMMs.
  bool ramp_up = false;
  index_t ramp_start = 2048;
  /// §4.1.2 staging buffer for outer-product move-outs.
  bool staging_buffer = true;
  int pipeline_depth = 2;

  /// Column width below which the in-core recursive CGS switches to plain
  /// CGS (Real-mode numerics only; no effect on the schedule).
  index_t panel_base = 32;

  /// Blocking driver: trailing-update C tile shape; 0 = plan from memory.
  index_t outer_tile_rows = 0;
  index_t outer_tile_cols = 0;
  /// Recursive driver: inner-product C column split; 0 = plan from memory.
  index_t inner_c_panel = 0;

  /// Recursive driver, §4.2's first optimization in full: when a whole
  /// recursion subtree (all m rows x w columns) fits on the device, factor
  /// it entirely resident — panels and level GEMMs operate on device data
  /// with no intermediate host round-trips; only the final Q and the R
  /// blocks stream out. Subject to qr_level_opt and the memory plan.
  bool resident_subtrees = true;

  /// Fraction of device memory the planner is allowed to commit (head-room
  /// for the allocator's alignment and cross-phase overlap).
  double memory_budget_fraction = 0.92;

  // --- Fault tolerance (docs/FAULTS.md) ------------------------------------
  /// Transfer retry budget per individual copy (1 = no retries) and the
  /// initial backoff charged to the host clock per retry (doubles each time).
  int transfer_max_attempts = 4;
  double transfer_backoff_seconds = 1e-3;
  /// On DeviceOutOfMemory inside an OOC engine, re-plan with a halved slab
  /// schedule instead of failing (counted as `slab_degradations`).
  bool degrade_on_oom = true;
  /// Opt-in ABFT column-sum checksums on the OOC GEMMs: detects injected
  /// compute corruption and recomputes the affected slab.
  bool abft = false;
  /// When set, the driver writes a panel-level checkpoint every
  /// `checkpoint_every` completed units (panels / recursion leaves). Not
  /// owned. qr::resume() restarts from such a checkpoint.
  CheckpointSink* checkpoint_sink = nullptr;
  index_t checkpoint_every = 1;
  /// Internal (set by qr::resume): number of already-completed panel
  /// units to skip when replaying the factorization schedule.
  index_t resume_units = 0;
  /// Opt-in output guard: after the driver returns, qr::factorize/resume
  /// scan the host R (then Q) for non-finite values and throw
  /// rocqr::NumericalError on the first hit, bumping the
  /// `qr.nonfinite_detected` counter. Catches silent poisoning (e.g. an
  /// injected `corrupt` fault with ABFT disabled) at the API boundary
  /// instead of letting NaNs escape into a caller's pipeline. Real mode
  /// only (Phantom runs carry no element data to scan).
  bool check_finite = false;

  /// When non-null, every task graph the driver runs (the drivers and all
  /// their OOC engine calls lower onto ooc::TaskGraph) reports its lowered
  /// form here on teardown — node counts per stage, edge/fence-edge counts,
  /// and a Graphviz digraph. Surfaced by rocqr_cli and the benches behind
  /// --explain-plan[=dot]. Not owned; single-threaded use only.
  ooc::PlanLog* plan_log = nullptr;

  /// Checks every field against its documented domain and throws
  /// rocqr::InvalidArgument on the first violation. All drivers call this on
  /// entry, so a bad configuration fails uniformly at the API boundary
  /// instead of asserting deep inside the memory planner.
  void validate() const;
};

/// The factorization aggregate is the unified trace-window statistic shared
/// with the OOC engines — one deriver (sim::engine_stats_from_trace), no
/// duplicated counter logic. See sim/trace.hpp for the field list; byte
/// counters follow the Trace naming convention (`bytes_h2d`, not the former
/// `h2d_bytes`).
using EngineStats = sim::EngineStats;
using QrStats = sim::EngineStats;

/// Builds QrStats from the device trace window [from, end). A non-empty
/// `name_prefix` restricts the aggregate to events whose name starts with
/// the prefix — per-job attribution for colocated factorizations
/// (qr/tiled_qr.hpp labels).
QrStats stats_from_trace(const sim::Trace& trace, size_t from,
                         bytes_t peak_device_bytes,
                         std::string_view name_prefix = {});

} // namespace rocqr::qr
