#include "qr/refine.hpp"

#include <cmath>

#include "blas/transform.hpp"
#include "blas/trsm.hpp"
#include "common/error.hpp"
#include "la/norms.hpp"
#include "qr/incore.hpp"

namespace rocqr::qr {

RefineResult ls_solve_refined(la::ConstMatrixView a, la::ConstMatrixView b,
                              blas::GemmPrecision factor_precision,
                              int max_iterations, double tolerance) {
  ROCQR_CHECK(a.rows() >= a.cols() && a.cols() >= 1,
              "ls_solve_refined: need m >= n >= 1");
  ROCQR_CHECK(b.rows() == a.rows() && b.cols() >= 1,
              "ls_solve_refined: rhs shape mismatch");
  ROCQR_CHECK(max_iterations >= 0, "ls_solve_refined: negative iterations");
  const index_t m = a.rows();
  const index_t n = a.cols();
  const index_t nrhs = b.cols();

  // Low-precision factorization (the expensive, accelerator-bound part).
  const QrFactors f = recursive_cgs(a, /*base=*/32, factor_precision);

  RefineResult result{la::Matrix(n, nrhs), 0, 0.0};
  la::Matrix residual = la::materialize(b);     // r = b - A x, x = 0
  la::Matrix correction(n, nrhs);
  double prev_norm = 0.0;

  for (int it = 0; it <= max_iterations; ++it) {
    // dx = R⁻¹ Qᵀ r, computed in fp32.
    blas::gemm(blas::Op::Trans, blas::Op::NoTrans, n, nrhs, m, 1.0f,
               f.q.data(), f.q.ld(), residual.data(), residual.ld(), 0.0f,
               correction.data(), correction.ld());
    blas::trsm_left_upper(n, nrhs, f.r.data(), f.r.ld(), correction.data(),
                          correction.ld());
    for (index_t j = 0; j < nrhs; ++j) {
      for (index_t i = 0; i < n; ++i) {
        result.x(i, j) += correction(i, j);
      }
    }
    result.iterations = it + 1;

    // Fresh residual r = b - A x in fp32 (never through the fp16 path).
    blas::copy_matrix(m, nrhs, b.data(), b.ld(), residual.data(),
                      residual.ld());
    blas::gemm(blas::Op::NoTrans, blas::Op::NoTrans, m, nrhs, n, -1.0f,
               a.data(), a.ld(), result.x.data(), result.x.ld(), 1.0f,
               residual.data(), residual.ld());

    // Convergence on the normal-equations residual |Aᵀ r| (the LS
    // optimality measure; |r| itself does not go to zero).
    la::Matrix atr(n, nrhs);
    blas::gemm(blas::Op::Trans, blas::Op::NoTrans, n, nrhs, m, 1.0f, a.data(),
               a.ld(), residual.data(), residual.ld(), 0.0f, atr.data(),
               atr.ld());
    const double norm = la::frobenius_norm(atr.view());
    result.final_residual_norm = norm;
    if (norm <= tolerance) break;
    if (it > 0 && norm >= 0.5 * prev_norm) break; // stagnation
    prev_norm = norm;
  }
  return result;
}

} // namespace rocqr::qr
