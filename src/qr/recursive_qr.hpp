// Recursive out-of-core QR factorization (Eq. 2 / Fig 2) — the paper's
// contribution. Columns are split in half recursively; only the deepest
// level factors panels, every other level performs two large OOC GEMMs
// whose streamed dimensions grow with the level, so the dominant GEMMs are
// compute-bound on TensorCore regardless of the panel blocksize.
#pragma once

#include "qr/options.hpp"
#include "sim/device.hpp"

namespace rocqr::qr {

namespace detail {

/// Factors the host matrix in `a` (m x n, m >= n): on return `a` holds Q
/// and `r` (n x n) the upper-triangular R. Phantom refs allowed in Phantom
/// mode. The recursion splits at panel granularity (opts.blocksize).
/// `sync_at_end` controls the final host/device join: the TSQR leaf path
/// passes false so the reduction tree can overlap the leaf's draining
/// move-outs (the enqueued schedule and the numerics are identical either
/// way; only the host clock differs). Internal entry — callers go through
/// qr::factorize (Algorithm::Recursive).
QrStats run_recursive(sim::Device& dev, sim::HostMutRef a, sim::HostMutRef r,
                      const QrOptions& opts, bool sync_at_end = true);

} // namespace detail

} // namespace rocqr::qr
