// Shared pieces of the two OOC QR drivers.
#pragma once

#include <string>

#include "ooc/gemm_engines.hpp"
#include "ooc/pipeline.hpp"
#include "qr/checkpoint.hpp"
#include "qr/host_tracker.hpp"
#include "qr/options.hpp"
#include "sim/device.hpp"

namespace rocqr::qr::detail {

/// Moves the host panel columns `a_cols` (m x w) into the device matrix
/// `panel` through the pipeline's move-in stage (which supplies transfer
/// retry per opts — docs/FAULTS.md).
///
/// With opts.qr_level_opt and per-row-slab completion events available from
/// the previous trailing update, each row chunk of the panel waits only on
/// the move-outs it actually reads — so the head of the panel transfer
/// overlaps the tail of the update's move-out (§4.2, "the last move-out
/// operation can be overlapped by moving in the first few columns of the
/// panel"). Otherwise a coarse wait on all writers of those columns is used.
void move_in_panel(ooc::MoveInCtx& ctx, const sim::DeviceMatrix& panel,
                   sim::HostConstRef a_cols, const HostWriteTracker& tracker,
                   index_t j0, index_t w, const QrOptions& opts);

/// Builds the per-call OOC GEMM options from the QR options (including the
/// fault-tolerance knobs, which pass through unchanged).
ooc::OocGemmOptions gemm_options(const QrOptions& opts);

/// Writes a panel-level checkpoint if opts.checkpoint_sink is set and
/// `units_done` is a multiple of opts.checkpoint_every. Synchronizes the
/// device first so the host A/R snapshots are consistent, then counts the
/// write on `checkpoints_written`. No-op (and zero-overhead) without a sink.
/// `leaves` (tsqr only) records the run's leaf partition so a shrunk-fleet
/// resume can pin it; other drivers pass 0.
void maybe_checkpoint(sim::Device& dev, const char* driver,
                      sim::HostMutRef a, sim::HostMutRef r,
                      const QrOptions& opts, index_t columns_done,
                      index_t units_done, index_t leaves = 0);

/// Largest power-of-two C tile edge for the blocking trailing update that
/// fits the memory left after the resident operands (double-buffered fp32
/// tiles at half the remaining budget).
index_t plan_tile_edge(const sim::Device& dev, bytes_t resident_bytes,
                       const QrOptions& opts);

} // namespace rocqr::qr::detail
