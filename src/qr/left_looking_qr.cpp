#include "qr/left_looking_qr.hpp"

#include <algorithm>
#include <vector>

#include "blas/gemm.hpp"
#include "common/error.hpp"
#include "ooc/operand.hpp"
#include "ooc/slab_schedule.hpp"
#include "qr/panel.hpp"
#include "sim/trace_export.hpp"

namespace rocqr::qr {

using blas::Op;
using sim::Device;
using sim::DeviceMatrix;
using sim::DeviceMatrixRef;
using sim::Event;
using sim::HostMutRef;
using sim::StoragePrecision;
using sim::Stream;

QrStats left_looking_ooc_qr(Device& dev, HostMutRef a, HostMutRef r,
                            const QrOptions& opts) {
  opts.validate();
  const index_t m = a.rows;
  const index_t n = a.cols;
  ROCQR_CHECK(m >= n && n >= 1, "left_looking_ooc_qr: need m >= n >= 1");
  ROCQR_CHECK(r.rows == n && r.cols == n,
              "left_looking_ooc_qr: R must be n x n");
  const index_t b = std::min(opts.blocksize, n);

  const size_t window = dev.trace().size();
  sim::TraceSpan qr_span(dev, "left_looking_qr");
  Stream in = dev.create_stream();
  Stream comp = dev.create_stream();
  Stream out = dev.create_stream();

  const auto panels = ooc::slab_partition(n, b);
  std::vector<Event> q_on_host(panels.size());

  // Streamed-Q double buffer plus a reusable R-block scratch.
  const int depth = std::max(1, opts.pipeline_depth);
  const StoragePrecision q_storage =
      opts.precision == blas::GemmPrecision::FP16_FP32
          ? StoragePrecision::FP16
          : StoragePrecision::FP32;
  std::vector<DeviceMatrix> buf_q(static_cast<size_t>(depth));
  for (int d = 0; d < depth; ++d) {
    buf_q[static_cast<size_t>(d)] = dev.allocate(m, b, q_storage, "llqr.Qj");
  }
  DeviceMatrix r_blk = dev.allocate(b, b, StoragePrecision::FP32, "llqr.Rblk");

  std::vector<Event> proj_done; // per streamed panel, guards buffer reuse
  for (size_t i = 0; i < panels.size(); ++i) {
    const ooc::Slab panel = panels[i];

    // The panel's columns are still ORIGINAL data (left-looking writes each
    // column block exactly once), so the move-in has no dependencies.
    DeviceMatrix p = dev.allocate(m, panel.width, StoragePrecision::FP32,
                                  "llqr.panel");
    dev.copy_h2d(p, ooc::host_block(sim::as_const(a), 0, panel.offset, m,
                                    panel.width),
                 in, "h2d panel " + std::to_string(i));
    Event p_in = dev.create_event();
    dev.record_event(p_in, in);
    dev.wait_event(comp, p_in);

    // Lazy application of every previous panel's projection.
    Event r_blk_drained{}; // last d2h of the shared R-block scratch
    for (size_t j = 0; j < i; ++j) {
      const ooc::Slab prev = panels[j];
      const size_t slot = proj_done.size() % static_cast<size_t>(depth);
      if (proj_done.size() >= static_cast<size_t>(depth)) {
        dev.wait_event(in,
                       proj_done[proj_done.size() - static_cast<size_t>(depth)]);
      }
      dev.wait_event(in, q_on_host[j]); // Q_j must have landed on the host
      dev.copy_h2d(DeviceMatrixRef(buf_q[slot], 0, 0, m, prev.width),
                   ooc::host_block(sim::as_const(a), 0, prev.offset, m,
                                   prev.width),
                   in, "h2d Q" + std::to_string(j));
      Event q_in = dev.create_event();
      dev.record_event(q_in, in);
      dev.wait_event(comp, q_in);

      // R(j, i) = Q_jᵀ P ; P -= Q_j R(j, i) — the skinny GEMM pair. The
      // shared R scratch must have drained to the host first.
      if (r_blk_drained.valid()) dev.wait_event(comp, r_blk_drained);
      const DeviceMatrixRef q_ref(buf_q[slot], 0, 0, m, prev.width);
      const DeviceMatrixRef r_ref(r_blk, 0, 0, prev.width, panel.width);
      dev.gemm(Op::Trans, Op::NoTrans, 1.0f, q_ref, p, 0.0f, r_ref,
               opts.precision, comp, "proj R");
      dev.gemm(Op::NoTrans, Op::NoTrans, -1.0f, q_ref, r_ref, 1.0f, p,
               opts.precision, comp, "proj update");
      Event g = dev.create_event();
      dev.record_event(g, comp);
      proj_done.push_back(g);

      dev.wait_event(out, g);
      dev.copy_d2h(ooc::host_block(r, prev.offset, panel.offset, prev.width,
                                   panel.width),
                   r_ref, out, "d2h R block");
      r_blk_drained = dev.create_event();
      dev.record_event(r_blk_drained, out);
    }

    // In-core factorization of the fully projected panel.
    DeviceMatrix rii = dev.allocate(panel.width, panel.width,
                                    StoragePrecision::FP32, "llqr.Rii");
    panel_qr_device(dev, p, rii, comp, opts);
    Event factored = dev.create_event();
    dev.record_event(factored, comp);
    dev.wait_event(out, factored);
    dev.copy_d2h(ooc::host_block(r, panel.offset, panel.offset, panel.width,
                                 panel.width),
                 rii, out, "d2h Rii");
    dev.copy_d2h(ooc::host_block(a, 0, panel.offset, m, panel.width), p, out,
                 "d2h Q panel");
    q_on_host[i] = dev.create_event();
    dev.record_event(q_on_host[i], out);

    dev.free(p);
    dev.free(rii);
  }

  for (auto& buf : buf_q) dev.free(buf);
  dev.free(r_blk);
  dev.synchronize();
  return stats_from_trace(dev.trace(), window, dev.memory_peak());
}

} // namespace rocqr::qr
