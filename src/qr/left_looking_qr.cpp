#include "qr/left_looking_qr.hpp"

#include <algorithm>
#include <vector>

#include "blas/gemm.hpp"
#include "common/error.hpp"
#include "ooc/operand.hpp"
#include "ooc/pipeline.hpp"
#include "ooc/resilience.hpp"
#include "ooc/slab_schedule.hpp"
#include "qr/driver_util.hpp"
#include "qr/panel.hpp"
#include "sim/scoped_matrix.hpp"
#include "sim/trace_export.hpp"

namespace rocqr::qr {

using blas::Op;
using sim::Device;
using sim::DeviceMatrixRef;
using sim::Event;
using sim::HostMutRef;
using sim::ScopedMatrix;
using sim::StoragePrecision;

QrStats detail::run_left_looking(Device& dev, HostMutRef a, HostMutRef r,
                                 const QrOptions& opts) {
  opts.validate();
  const index_t m = a.rows;
  const index_t n = a.cols;
  ROCQR_CHECK(m >= n && n >= 1, "left_looking_ooc_qr: need m >= n >= 1");
  ROCQR_CHECK(r.rows == n && r.cols == n,
              "left_looking_ooc_qr: R must be n x n");
  const index_t b = std::min(opts.blocksize, n);

  const size_t window = dev.trace().size();
  sim::TraceSpan qr_span(dev, "left_looking_qr");
  ooc::SlabPipeline pipe(dev, detail::gemm_options(opts));

  const auto panels = ooc::slab_partition(n, b);
  std::vector<Event> q_on_host(panels.size());

  // Streamed-Q double buffer plus a reusable R-block scratch.
  const int depth = std::max(1, opts.pipeline_depth);
  const StoragePrecision q_storage =
      opts.precision == blas::GemmPrecision::FP16_FP32
          ? StoragePrecision::FP16
          : StoragePrecision::FP32;
  std::vector<ScopedMatrix> buf_q;
  buf_q.reserve(static_cast<size_t>(depth));
  for (int d = 0; d < depth; ++d) {
    buf_q.emplace_back(dev, m, b, q_storage, "llqr.Qj");
  }
  ScopedMatrix r_blk(dev, b, b, StoragePrecision::FP32, "llqr.Rblk");

  // Each panel is one checkpoint/resume unit. A skipped panel's Q columns
  // were restored onto the host, but its q_on_host event must still exist
  // (recorded on an idle stream) so later panels' projections can wait on it.
  index_t units = 0;
  size_t proj_count = 0; // projections enqueued so far, across all panels
  for (size_t i = 0; i < panels.size(); ++i) {
    const ooc::Slab panel = panels[i];
    if (units < opts.resume_units) {
      q_on_host[i] = pipe.record_input_marker();
      ++units;
      continue;
    }

    // The panel's columns are still ORIGINAL data (left-looking writes each
    // column block exactly once), so the move-in has no dependencies.
    ScopedMatrix p(dev, m, panel.width, StoragePrecision::FP32, "llqr.panel");
    ooc::TaskPlan stage;
    stage.move_in = [&](ooc::MoveInCtx& ctx) {
      ctx.h2d(sim::DeviceMatrixRef(p.get()),
              ooc::host_block(sim::as_const(a), 0, panel.offset, m,
                              panel.width),
              "h2d panel " + std::to_string(i));
    };
    const Event p_in = pipe.run_task(stage).moved_in;

    // Lazy application of every previous panel's projection: one slab step
    // per already-factored panel. The streamed-Q pool fence spans panels
    // through the pipeline's global compute history, so the double buffer
    // rotates exactly as one long loop; the shared R scratch drains behind
    // a single-slot compute fence before the next step's beta=0 GEMM.
    if (i > 0) {
      ooc::SlabPlan proj;
      proj.label = "llqr.proj";
      proj.steps = static_cast<index_t>(i);
      proj.input_slots = depth;
      proj.count_prefetch = false; // the Q ring is not a prefetch pool
      proj.output_fence = ooc::OutputFence::Compute;
      proj.output_slots = 1;
      proj.resident_ready = {p_in};
      proj.move_in = [&](ooc::MoveInCtx& ctx, index_t s) {
        const size_t j = static_cast<size_t>(s);
        const ooc::Slab prev = panels[j];
        const size_t slot = (proj_count + j) % static_cast<size_t>(depth);
        ctx.wait(q_on_host[j]); // Q_j must have landed on the host
        ctx.h2d(DeviceMatrixRef(buf_q[slot].get(), 0, 0, m, prev.width),
                ooc::host_block(sim::as_const(a), 0, prev.offset, m,
                                prev.width),
                "h2d Q" + std::to_string(j));
      };
      proj.compute = [&](ooc::ComputeCtx& ctx, index_t s) {
        const size_t j = static_cast<size_t>(s);
        const ooc::Slab prev = panels[j];
        const size_t slot = (proj_count + j) % static_cast<size_t>(depth);
        // R(j, i) = Q_jᵀ P ; P -= Q_j R(j, i) — the skinny GEMM pair.
        const DeviceMatrixRef q_ref(buf_q[slot].get(), 0, 0, m, prev.width);
        const DeviceMatrixRef r_ref(r_blk.get(), 0, 0, prev.width,
                                    panel.width);
        ctx.gemm(Op::Trans, Op::NoTrans, 1.0f, q_ref,
                 DeviceMatrixRef(p.get()), 0.0f, r_ref, "proj R");
        ctx.gemm(Op::NoTrans, Op::NoTrans, -1.0f, q_ref, r_ref, 1.0f,
                 DeviceMatrixRef(p.get()), "proj update");
      };
      proj.move_out = [&](ooc::MoveOutCtx& ctx, index_t s) {
        const ooc::Slab prev = panels[static_cast<size_t>(s)];
        ctx.d2h(ooc::host_block(r, prev.offset, panel.offset, prev.width,
                                panel.width),
                DeviceMatrixRef(r_blk.get(), 0, 0, prev.width, panel.width),
                "d2h R block");
      };
      pipe.run(proj);
      proj_count += i;
    }

    // In-core factorization of the fully projected panel.
    ScopedMatrix rii(dev, panel.width, panel.width, StoragePrecision::FP32,
                     "llqr.Rii");
    ooc::TaskPlan factor;
    factor.compute_waits = {p_in};
    factor.compute = [&](ooc::ComputeCtx& ctx) {
      panel_qr_device(dev, p.get(), rii.get(), ctx.stream(), opts);
    };
    factor.move_out = [&](ooc::MoveOutCtx& ctx) {
      ctx.d2h(ooc::host_block(r, panel.offset, panel.offset, panel.width,
                              panel.width),
              sim::DeviceMatrixRef(rii.get()), "d2h Rii");
      ctx.d2h(ooc::host_block(a, 0, panel.offset, m, panel.width),
              sim::DeviceMatrixRef(p.get()), "d2h Q panel");
    };
    q_on_host[i] = pipe.run_task(factor).moved_out;

    p.reset();
    rii.reset();

    ++units;
    detail::maybe_checkpoint(dev, "left", a, r, opts,
                             panel.offset + panel.width, units);
  }

  for (auto& buf : buf_q) buf.reset();
  r_blk.reset();
  dev.synchronize();
  return stats_from_trace(dev.trace(), window, dev.memory_peak());
}

} // namespace rocqr::qr
