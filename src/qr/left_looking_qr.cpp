#include "qr/left_looking_qr.hpp"

#include <algorithm>
#include <vector>

#include "blas/gemm.hpp"
#include "common/error.hpp"
#include "ooc/operand.hpp"
#include "ooc/resilience.hpp"
#include "ooc/slab_schedule.hpp"
#include "qr/driver_util.hpp"
#include "qr/panel.hpp"
#include "sim/scoped_matrix.hpp"
#include "sim/trace_export.hpp"

namespace rocqr::qr {

using blas::Op;
using sim::Device;
using sim::DeviceMatrix;
using sim::DeviceMatrixRef;
using sim::Event;
using sim::HostMutRef;
using sim::ScopedMatrix;
using sim::StoragePrecision;
using sim::Stream;

QrStats left_looking_ooc_qr(Device& dev, HostMutRef a, HostMutRef r,
                            const QrOptions& opts) {
  opts.validate();
  const index_t m = a.rows;
  const index_t n = a.cols;
  ROCQR_CHECK(m >= n && n >= 1, "left_looking_ooc_qr: need m >= n >= 1");
  ROCQR_CHECK(r.rows == n && r.cols == n,
              "left_looking_ooc_qr: R must be n x n");
  const index_t b = std::min(opts.blocksize, n);

  const size_t window = dev.trace().size();
  sim::TraceSpan qr_span(dev, "left_looking_qr");
  Stream in = dev.create_stream();
  Stream comp = dev.create_stream();
  Stream out = dev.create_stream();

  const auto panels = ooc::slab_partition(n, b);
  std::vector<Event> q_on_host(panels.size());

  // Streamed-Q double buffer plus a reusable R-block scratch.
  const int depth = std::max(1, opts.pipeline_depth);
  const StoragePrecision q_storage =
      opts.precision == blas::GemmPrecision::FP16_FP32
          ? StoragePrecision::FP16
          : StoragePrecision::FP32;
  std::vector<ScopedMatrix> buf_q;
  buf_q.reserve(static_cast<size_t>(depth));
  for (int d = 0; d < depth; ++d) {
    buf_q.emplace_back(dev, m, b, q_storage, "llqr.Qj");
  }
  ScopedMatrix r_blk(dev, b, b, StoragePrecision::FP32, "llqr.Rblk");

  // Each panel is one checkpoint/resume unit. A skipped panel's Q columns
  // were restored onto the host, but its q_on_host event must still exist
  // (recorded on an idle stream) so later panels' projections can wait on it.
  index_t units = 0;
  std::vector<Event> proj_done; // per streamed panel, guards buffer reuse
  for (size_t i = 0; i < panels.size(); ++i) {
    const ooc::Slab panel = panels[i];
    if (units < opts.resume_units) {
      q_on_host[i] = dev.create_event();
      dev.record_event(q_on_host[i], in);
      ++units;
      continue;
    }

    // The panel's columns are still ORIGINAL data (left-looking writes each
    // column block exactly once), so the move-in has no dependencies.
    ScopedMatrix p(dev, m, panel.width, StoragePrecision::FP32, "llqr.panel");
    ooc::detail::copy_h2d_retry(
        dev, sim::DeviceMatrixRef(p.get()),
        ooc::host_block(sim::as_const(a), 0, panel.offset, m, panel.width),
        in, "h2d panel " + std::to_string(i), opts.transfer_max_attempts,
        opts.transfer_backoff_seconds);
    Event p_in = dev.create_event();
    dev.record_event(p_in, in);
    dev.wait_event(comp, p_in);

    // Lazy application of every previous panel's projection.
    Event r_blk_drained{}; // last d2h of the shared R-block scratch
    for (size_t j = 0; j < i; ++j) {
      const ooc::Slab prev = panels[j];
      const size_t slot = proj_done.size() % static_cast<size_t>(depth);
      if (proj_done.size() >= static_cast<size_t>(depth)) {
        dev.wait_event(in,
                       proj_done[proj_done.size() - static_cast<size_t>(depth)]);
      }
      dev.wait_event(in, q_on_host[j]); // Q_j must have landed on the host
      ooc::detail::copy_h2d_retry(
          dev, DeviceMatrixRef(buf_q[slot].get(), 0, 0, m, prev.width),
          ooc::host_block(sim::as_const(a), 0, prev.offset, m, prev.width),
          in, "h2d Q" + std::to_string(j), opts.transfer_max_attempts,
          opts.transfer_backoff_seconds);
      Event q_in = dev.create_event();
      dev.record_event(q_in, in);
      dev.wait_event(comp, q_in);

      // R(j, i) = Q_jᵀ P ; P -= Q_j R(j, i) — the skinny GEMM pair. The
      // shared R scratch must have drained to the host first.
      if (r_blk_drained.valid()) dev.wait_event(comp, r_blk_drained);
      const DeviceMatrixRef q_ref(buf_q[slot].get(), 0, 0, m, prev.width);
      const DeviceMatrixRef r_ref(r_blk.get(), 0, 0, prev.width, panel.width);
      const ooc::OocGemmOptions g_opts = detail::gemm_options(opts);
      ooc::detail::checked_gemm(dev, g_opts, Op::Trans, Op::NoTrans, 1.0f,
                                q_ref, DeviceMatrixRef(p.get()), 0.0f, r_ref,
                                comp, "proj R");
      ooc::detail::checked_gemm(dev, g_opts, Op::NoTrans, Op::NoTrans, -1.0f,
                                q_ref, r_ref, 1.0f, DeviceMatrixRef(p.get()),
                                comp, "proj update");
      Event g = dev.create_event();
      dev.record_event(g, comp);
      proj_done.push_back(g);

      dev.wait_event(out, g);
      ooc::detail::copy_d2h_retry(
          dev,
          ooc::host_block(r, prev.offset, panel.offset, prev.width,
                          panel.width),
          r_ref, out, "d2h R block", opts.transfer_max_attempts,
          opts.transfer_backoff_seconds);
      r_blk_drained = dev.create_event();
      dev.record_event(r_blk_drained, out);
    }

    // In-core factorization of the fully projected panel.
    ScopedMatrix rii(dev, panel.width, panel.width, StoragePrecision::FP32,
                     "llqr.Rii");
    panel_qr_device(dev, p.get(), rii.get(), comp, opts);
    Event factored = dev.create_event();
    dev.record_event(factored, comp);
    dev.wait_event(out, factored);
    ooc::detail::copy_d2h_retry(
        dev,
        ooc::host_block(r, panel.offset, panel.offset, panel.width,
                        panel.width),
        sim::DeviceMatrixRef(rii.get()), out, "d2h Rii",
        opts.transfer_max_attempts, opts.transfer_backoff_seconds);
    ooc::detail::copy_d2h_retry(
        dev, ooc::host_block(a, 0, panel.offset, m, panel.width),
        sim::DeviceMatrixRef(p.get()), out, "d2h Q panel",
        opts.transfer_max_attempts, opts.transfer_backoff_seconds);
    q_on_host[i] = dev.create_event();
    dev.record_event(q_on_host[i], out);

    p.reset();
    rii.reset();

    ++units;
    detail::maybe_checkpoint(dev, "left", a, r, opts,
                             panel.offset + panel.width, units);
  }

  for (auto& buf : buf_q) buf.reset();
  r_blk.reset();
  dev.synchronize();
  return stats_from_trace(dev.trace(), window, dev.memory_peak());
}

} // namespace rocqr::qr
