// In-core QR factorizations based on the Gram-Schmidt process.
//
// These run on the host and serve two roles: (1) the Real-mode body of the
// simulated device's panel factorization (the paper reuses the recursive
// CGS solver of Zhang et al., HPDC'20 — `recursive_cgs` here), and (2)
// reference oracles for the out-of-core drivers in tests.
//
// All functions factor A (m x n, m >= n) into Q (m x n, orthonormal columns,
// written over / into `q`) and R (n x n upper triangular). GemmPrecision
// selects fp32 or the TensorCore fp16-input contract for the block updates.
#pragma once

#include "blas/gemm.hpp"
#include "la/matrix.hpp"

namespace rocqr::qr {

struct QrFactors {
  la::Matrix q;
  la::Matrix r;
};

/// Classic Gram-Schmidt, column at a time (row-by-row evaluation of Eq. 1).
QrFactors cgs(la::ConstMatrixView a);

/// Modified Gram-Schmidt (better stability, less parallelism — §3.1.1).
QrFactors mgs(la::ConstMatrixView a);

/// CGS with full reorthogonalization ("CGS2": twice is enough).
QrFactors cgs2(la::ConstMatrixView a);

/// Blocked classic Gram-Schmidt with panel width `b` (Fig 1's algorithm run
/// in core): CGS on each panel, GEMM projections for the trailing columns.
QrFactors blocked_cgs(la::ConstMatrixView a, index_t block,
                      blas::GemmPrecision precision = blas::GemmPrecision::FP32);

/// Recursive classic Gram-Schmidt (Eq. 2 run in core; the LATER panel
/// solver): split columns in half, factor left, project, update, factor
/// right. `base` is the column count below which plain CGS takes over.
QrFactors recursive_cgs(la::ConstMatrixView a, index_t base = 32,
                        blas::GemmPrecision precision = blas::GemmPrecision::FP32);

/// In-place recursive CGS working on caller storage: `aq` holds A on entry
/// and Q on exit; `r` (n x n) receives R. Used as the device panel body.
void recursive_cgs_inplace(la::MatrixView aq, la::MatrixView r,
                           index_t base = 32,
                           blas::GemmPrecision precision = blas::GemmPrecision::FP32);

/// Householder QR with explicit Q formation — the unconditionally stable
/// reference among §3.1's three families (Gram-Schmidt, Householder,
/// Givens). Used as the accuracy gold standard in tests and studies.
QrFactors householder(la::ConstMatrixView a);

/// Givens-rotation QR with explicit Q — the third §3.1 family. O(mn²)
/// rotations; mainly of interest for sparse/structured updates, included
/// for completeness of the background comparison.
QrFactors givens(la::ConstMatrixView a);

/// TSQR (communication-avoiding QR): row blocks are factored independently
/// and their R factors reduced pairwise up a binary tree; Q is rebuilt on
/// the way down. The standard Householder-stable alternative for the tall
/// matrices this paper targets — included as the comparison point the
/// Gram-Schmidt family is traded against. `row_block` is the leaf height
/// (clamped to at least the column count).
QrFactors tsqr(la::ConstMatrixView a, index_t row_block = 256);

/// CholeskyQR (R from chol(AᵀA), Q = A R⁻¹) — an alternative panel
/// orthogonalization included for comparison benches.
QrFactors cholesky_qr(la::ConstMatrixView a);

/// CholeskyQR2 (one repetition, restores orthogonality for mild cond(A)).
QrFactors cholesky_qr2(la::ConstMatrixView a);

} // namespace rocqr::qr
