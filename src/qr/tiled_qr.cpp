#include "qr/tiled_qr.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>

#include "common/error.hpp"
#include "ooc/engine_util.hpp"
#include "ooc/operand.hpp"
#include "ooc/task_graph.hpp"
#include "qr/driver_util.hpp"
#include "qr/panel.hpp"
#include "sim/scoped_matrix.hpp"
#include "sim/trace_export.hpp"

namespace rocqr::qr::detail {

namespace {

using ooc::TaskCtx;
using ooc::TaskGraph;
using ooc::TaskId;
using ooc::TaskStage;
using sim::Device;
using sim::DeviceMatrixRef;
using sim::HostMutRef;
using sim::ScopedMatrix;
using sim::StoragePrecision;

constexpr TaskId kNone = -1;

std::string idx(index_t k, index_t j) {
  return std::to_string(k) + "," + std::to_string(j);
}

/// Rotating device-buffer pool. Acquiring a slot hands back its index; the
/// recorded `last_uses` nodes are the WAR edges the slot's next writer must
/// depend on (the old output-fence taxonomy, now explicit graph edges).
struct SlotPool {
  std::vector<ScopedMatrix> bufs;

  void add(ScopedMatrix buf) {
    bufs.push_back(std::move(buf));
    last_uses_.emplace_back();
  }
  size_t acquire() {
    const size_t s = next_;
    next_ = (next_ + 1) % bufs.size();
    return s;
  }
  /// Appends slot s's outstanding readers to `deps` — the WAR edges its
  /// next writer takes.
  void depend(size_t s, std::vector<TaskId>& deps) const {
    deps.insert(deps.end(), last_uses_[s].begin(), last_uses_[s].end());
  }
  /// Records the nodes currently reading slot s (replacing prior uses —
  /// the new readers already depend on the old ones transitively).
  void use(size_t s, std::vector<TaskId> ids) {
    last_uses_[s] = std::move(ids);
  }

 private:
  std::vector<std::vector<TaskId>> last_uses_;
  size_t next_ = 0;
};

/// The node program of one factorization inside a (possibly colocated)
/// batch. Programs build their DAG segment by segment so the checkpointing
/// caller can run round-by-round; solo runs add every segment and run once.
/// One checkpoint/resume *unit* per completed segment, under the program's
/// driver tag — the same unit vocabulary as the solo drivers, so a job
/// preempted from a batch resumes solo (and vice versa).
class Program {
 public:
  Program(TaskGraph& graph, const BatchJob& job) : g_(graph), job_(job) {}
  virtual ~Program() = default;

  Program(const Program&) = delete;
  Program& operator=(const Program&) = delete;

  const BatchJob& job() const { return job_; }

  /// Checkpoint driver tag ("tiled" / "blocking" / "left") — what
  /// qr::resume dispatches on.
  virtual const char* driver_tag() const = 0;
  virtual void allocate(Device& dev) = 0;
  /// First segment (resume positioning and any staging). Returns true when
  /// it completed a new unit (a checkpoint boundary).
  virtual bool begin() = 0;
  /// Adds the next segment; false once the factorization is fully built.
  virtual bool add_step() = 0;
  virtual index_t units_done() const = 0;
  virtual index_t columns_done() const = 0;

 protected:
  TaskGraph& g_;
  const BatchJob& job_;
};

/// Tiled CGS: step k streams every trailing tile through the device while
/// tile k+1 factors in place as soon as its own update lands (Buttari-style
/// lookahead via priority keys). One unit = one factored tile.
class TiledProgram : public Program {
 public:
  TiledProgram(TaskGraph& graph, const BatchJob& job)
      : Program(graph, job), a_(job.a), r_(job.r) {
    m_ = a_.rows;
    n_ = a_.cols;
    ROCQR_CHECK(m_ >= n_ && n_ >= 1, "tiled_qr: need m >= n >= 1");
    ROCQR_CHECK(r_.rows == n_ && r_.cols == n_, "tiled_qr: R must be n x n");
    b_ = std::min(job.opts.blocksize, n_);
    tiles_ = (n_ + b_ - 1) / b_;
  }

  const char* driver_tag() const override { return "tiled"; }
  index_t units_done() const override { return units_; }
  index_t columns_done() const override { return std::min(units_ * b_, n_); }

  /// Device working set: two role-swapping resident tiles, up to two
  /// streaming slots for far tiles, and a rotating pool of b x b R tiles.
  void allocate(Device& dev) override {
    const std::string& l = job_.label;
    big_.add(ScopedMatrix(dev, m_, b_, StoragePrecision::FP32,
                          l + "tiled tile a"));
    if (tiles_ > 1) {
      big_.add(ScopedMatrix(dev, m_, b_, StoragePrecision::FP32,
                            l + "tiled tile b"));
    }
    const index_t far_slots = std::min<index_t>(2, tiles_ - 2);
    for (index_t s = 0; s < far_slots; ++s) {
      stream_.add(ScopedMatrix(dev, m_, b_, StoragePrecision::FP32,
                               l + "tiled stream " + std::to_string(s)));
    }
    const index_t r_slots = std::min<index_t>(4, tiles_ + 1);
    for (index_t s = 0; s < r_slots; ++s) {
      rtiles_.add(ScopedMatrix(dev, b_, b_, StoragePrecision::FP32,
                               l + "tiled r " + std::to_string(s)));
    }
  }

  /// First segment: stage the starting tile. A fresh run factors tile 0;
  /// a resume (opts.resume_units = u > 0) re-stages the already-factored
  /// Q_{u-1} and goes straight to step u-1.
  bool begin() override {
    const index_t u = std::min(job_.opts.resume_units, tiles_);
    k_ = u > 0 ? u - 1 : 0;
    units_ = std::max<index_t>(u, 0);
    if (u >= tiles_) return false; // everything already factored
    const index_t t = k_;
    const std::int64_t p = prio(t, 0);
    const TaskId stage = g_.add(
        TaskStage::MoveIn, job_.label + "stage " + std::to_string(t),
        [this, t](TaskCtx& c) {
          c.h2d(tile_buf(t), host_tile_const(t),
                job_.label + "h2d tile " + std::to_string(t));
        },
        {}, p);
    if (u > 0) {
      // The staged tile is already Q_{u-1}: no factor, no emit. Updates of
      // step u-1 depend on the staging transfer instead.
      fac_ = stage;
      emit_ = kNone;
      return false;
    }
    fac_ = add_factor(t, {stage}, p);
    emit_ = add_emit(t, fac_, p);
    units_ = 1;
    return true;
  }

  /// Adds step k (updates by Q_k plus the factorization of tile k+1) and
  /// advances. Returns false once every tile is factored.
  bool add_step() override {
    if (k_ >= tiles_ - 1) return false;
    const index_t k = k_;
    const index_t wk = width(k);
    std::vector<TaskId> q_readers;
    TaskId next_fac = kNone;
    TaskId next_emit = kNone;
    for (index_t j = k + 1; j < tiles_; ++j) {
      const bool resident = j == k + 1;
      const std::int64_t p = prio(k, resident ? 1 : 3);
      const index_t wj = width(j);

      // Move-in of tile j. WAR edges: the resident destination held
      // Q_{k-1}, so wait its readers; a streaming slot waits the move-out
      // that last drained it. Host-order edge: the previous step's
      // writeback of tile j must land before this re-read.
      DeviceMatrixRef dst;
      std::vector<TaskId> in_deps;
      size_t far_slot = 0;
      if (resident) {
        dst = tile_buf(j);
        in_deps = prev_q_readers_;
      } else {
        far_slot = stream_.acquire();
        dst = DeviceMatrixRef(stream_.bufs[far_slot].get())
                  .block(0, 0, m_, wj);
        stream_.depend(far_slot, in_deps);
      }
      if (out_a_.count(j) > 0) in_deps.push_back(out_a_[j]);
      const TaskId in = g_.add(
          TaskStage::MoveIn, job_.label + "in " + idx(k, j),
          [this, dst, j](TaskCtx& c) {
            c.h2d(dst, host_tile_const(j),
                  job_.label + "h2d tile " + std::to_string(j));
          },
          std::move(in_deps), p);

      // Block-MGS update: R_kj = Q_k^T A_j, then A_j -= Q_k R_kj.
      const size_t rs = rtiles_.acquire();
      const DeviceMatrixRef rt =
          DeviceMatrixRef(rtiles_.bufs[rs].get()).block(0, 0, wk, wj);
      std::vector<TaskId> upd_deps{in, fac_};
      rtiles_.depend(rs, upd_deps);
      const DeviceMatrixRef q = tile_buf(k);
      const TaskId upd = g_.add(
          TaskStage::Compute, job_.label + "upd " + idx(k, j),
          [this, q, dst, rt, k, j](TaskCtx& c) {
            c.gemm(blas::Op::Trans, blas::Op::NoTrans, 1.0f, q, dst, 0.0f,
                   rt, job_.label + "gemm qta " + idx(k, j));
            c.gemm(blas::Op::NoTrans, blas::Op::NoTrans, -1.0f, q, rt, 1.0f,
                   dst, job_.label + "gemm upd " + idx(k, j));
          },
          std::move(upd_deps), p);
      q_readers.push_back(upd);

      // R row writeback.
      const TaskId outr = g_.add(
          TaskStage::MoveOut, job_.label + "outR " + idx(k, j),
          [this, rt, k, j](TaskCtx& c) {
            c.d2h(ooc::host_block(r_, offset(k), offset(j), rt.rows, rt.cols),
                  rt, job_.label + "d2h R " + idx(k, j));
          },
          {upd}, p);
      rtiles_.use(rs, {outr});

      if (resident) {
        // The tile that just absorbed its update factors in place — the
        // lookahead: priority (k, 2) beats the far updates' (k, 3), so the
        // panel runs on the compute engine while they stream.
        const std::int64_t pf = prio(k, 2);
        next_fac = add_factor(j, {upd}, pf);
        next_emit = add_emit(j, next_fac, pf);
      } else {
        const TaskId outa = g_.add(
            TaskStage::MoveOut, job_.label + "outA " + idx(k, j),
            [this, dst, j](TaskCtx& c) {
              c.d2h(host_tile(j), dst,
                    job_.label + "d2h tile " + std::to_string(j));
            },
            {upd}, p);
        stream_.use(far_slot, {outa});
        out_a_[j] = outa;
      }
    }
    prev_q_readers_ = std::move(q_readers);
    if (emit_ != kNone) prev_q_readers_.push_back(emit_);
    fac_ = next_fac;
    emit_ = next_emit;
    ++k_;
    units_ = k_ + 1;
    return true;
  }

 private:
  index_t width(index_t t) const { return std::min(b_, n_ - t * b_); }
  index_t offset(index_t t) const { return t * b_; }
  DeviceMatrixRef tile_buf(index_t t) {
    return DeviceMatrixRef(big_.bufs[static_cast<size_t>(t) & 1].get())
        .block(0, 0, m_, width(t));
  }
  sim::HostConstRef host_tile_const(index_t t) const {
    return ooc::host_block(sim::as_const(a_), 0, offset(t), m_, width(t));
  }
  sim::HostMutRef host_tile(index_t t) const {
    return ooc::host_block(a_, 0, offset(t), m_, width(t));
  }
  /// Priority key: (step, phase) with phase 1 = the resident tile's
  /// move-in/update, 2 = the next panel factorization, 3 = far tiles.
  std::int64_t prio(index_t k, std::int64_t phase) const {
    return 4 * static_cast<std::int64_t>(k) + phase;
  }

  TaskId add_factor(index_t t, std::vector<TaskId> deps, std::int64_t p) {
    const size_t rs = rtiles_.acquire();
    rtiles_.depend(rs, deps);
    const index_t w = width(t);
    fac_r_slot_ = rs;
    fac_r_ref_ = DeviceMatrixRef(rtiles_.bufs[rs].get()).block(0, 0, w, w);
    const DeviceMatrixRef aq = tile_buf(t);
    const DeviceMatrixRef rt = fac_r_ref_;
    return g_.add(
        TaskStage::Compute, job_.label + "fac " + std::to_string(t),
        [this, aq, rt](TaskCtx& c) {
          panel_qr_device(c.device(), aq, rt, c.stream(), job_.opts,
                          job_.label);
        },
        std::move(deps), p);
  }

  TaskId add_emit(index_t t, TaskId fac, std::int64_t p) {
    const index_t w = width(t);
    const DeviceMatrixRef rt = fac_r_ref_;
    const DeviceMatrixRef q = tile_buf(t);
    const TaskId id = g_.add(
        TaskStage::MoveOut, job_.label + "emit " + std::to_string(t),
        [this, rt, q, t, w](TaskCtx& c) {
          c.d2h(ooc::host_block(r_, offset(t), offset(t), w, w), rt,
                job_.label + "d2h R " + idx(t, t));
          c.d2h(host_tile(t), q,
                job_.label + "d2h Q " + std::to_string(t));
        },
        {fac}, p);
    rtiles_.use(fac_r_slot_, {id});
    return id;
  }

  HostMutRef a_;
  HostMutRef r_;
  index_t m_ = 0;
  index_t n_ = 0;
  index_t b_ = 0;
  index_t tiles_ = 0;
  index_t k_ = 0;
  index_t units_ = 0;
  SlotPool big_;
  SlotPool stream_;
  SlotPool rtiles_;
  TaskId fac_ = kNone;
  TaskId emit_ = kNone;
  size_t fac_r_slot_ = 0;
  DeviceMatrixRef fac_r_ref_;
  std::vector<TaskId> prev_q_readers_;
  std::map<index_t, TaskId> out_a_;
};

/// Right-looking fixed-panel CGS as a node program: factor panel i, then
/// stream every trailing panel through the device twice — once in the GEMM
/// input storage width for the inner product R12 = Q^T B (k = m, fixed),
/// once as the fp32 accumulator tile of the outer update C -= Q R12
/// (k = w, fixed) — exactly the solo driver's double-streaming. Because
/// every output element comes from ONE gemm whose k-extent is independent
/// of the panel/tile partition, and fp16 conversions are elementwise, the
/// arithmetic is bitwise identical to the solo SlabPipeline driver: a job
/// preempted here resumes solo (tag "blocking") bit-identically. One unit
/// = one panel iteration (panel factored + trailing updates applied).
class BlockingProgram : public Program {
 public:
  BlockingProgram(TaskGraph& graph, const BatchJob& job)
      : Program(graph, job), a_(job.a), r_(job.r) {
    m_ = a_.rows;
    n_ = a_.cols;
    ROCQR_CHECK(m_ >= n_ && n_ >= 1, "blocking batch: need m >= n >= 1");
    ROCQR_CHECK(r_.rows == n_ && r_.cols == n_,
                "blocking batch: R must be n x n");
    b_ = std::min(job.opts.blocksize, n_);
    panels_ = (n_ + b_ - 1) / b_;
  }

  const char* driver_tag() const override { return "blocking"; }
  index_t units_done() const override { return units_; }
  index_t columns_done() const override { return std::min(units_ * b_, n_); }

  /// Working set: a panel double buffer, streaming slots for the trailing
  /// panels' inner-product input (GEMM storage width) and outer-product
  /// accumulator (fp32), and a rotating pool of b x b R tiles.
  void allocate(Device& dev) override {
    const std::string& l = job_.label;
    const StoragePrecision in_prec =
        ooc::detail::input_storage(gemm_options(job_.opts));
    const index_t panel_slots = std::min<index_t>(2, panels_);
    for (index_t s = 0; s < panel_slots; ++s) {
      panel_.add(ScopedMatrix(dev, m_, b_, StoragePrecision::FP32,
                              l + "blk panel " + std::to_string(s)));
    }
    const index_t trail_slots = std::min<index_t>(2, panels_ - 1);
    for (index_t s = 0; s < trail_slots; ++s) {
      bstream_.add(ScopedMatrix(dev, m_, b_, in_prec,
                                l + "blk b " + std::to_string(s)));
      cstream_.add(ScopedMatrix(dev, m_, b_, StoragePrecision::FP32,
                                l + "blk c " + std::to_string(s)));
    }
    const index_t r_slots = std::min<index_t>(4, panels_ + 1);
    for (index_t s = 0; s < r_slots; ++s) {
      rtiles_.add(ScopedMatrix(dev, b_, b_, StoragePrecision::FP32,
                               l + "blk r " + std::to_string(s)));
    }
  }

  /// Resume positioning only: the skipped panels' Q columns and R rows
  /// were restored onto the host, and right-looking trailing updates for
  /// completed units are already applied there — nothing to stage.
  bool begin() override {
    i_ = std::min(job_.opts.resume_units, panels_);
    units_ = i_;
    return false;
  }

  /// Adds panel iteration i: move-in + factor + emit, then the trailing
  /// inner/outer update pair per remaining panel.
  bool add_step() override {
    if (i_ >= panels_) return false;
    const index_t i = i_;
    const index_t w = width(i);
    const std::string& l = job_.label;
    const std::int64_t p = prio(i, 0);

    // Panel move-in. WAR edge: this slot held panel i-2, wait its readers.
    // Host-order edge: panel i's columns were last written by the previous
    // iteration's trailing writeback.
    const size_t ps = static_cast<size_t>(i) % panel_.bufs.size();
    const DeviceMatrixRef pd =
        DeviceMatrixRef(panel_.bufs[ps].get()).block(0, 0, m_, w);
    std::vector<TaskId> in_deps;
    panel_.depend(ps, in_deps);
    if (out_a_.count(i) > 0) in_deps.push_back(out_a_[i]);
    const TaskId inp = g_.add(
        TaskStage::MoveIn, l + "inP " + std::to_string(i),
        [this, pd, i](TaskCtx& c) {
          c.h2d(pd, host_panel_const(i),
                job_.label + "h2d panel " + std::to_string(i));
        },
        std::move(in_deps), p);

    // In-core panel factorization (recursive CGS on the device), R_ii into
    // a rotating b x b tile, then the Q panel and R_ii writebacks.
    const size_t rs = rtiles_.acquire();
    const DeviceMatrixRef rii =
        DeviceMatrixRef(rtiles_.bufs[rs].get()).block(0, 0, w, w);
    std::vector<TaskId> fac_deps{inp};
    rtiles_.depend(rs, fac_deps);
    const TaskId fac = g_.add(
        TaskStage::Compute, l + "fac " + std::to_string(i),
        [this, pd, rii](TaskCtx& c) {
          panel_qr_device(c.device(), pd, rii, c.stream(), job_.opts,
                          job_.label);
        },
        std::move(fac_deps), p);
    const TaskId emit = g_.add(
        TaskStage::MoveOut, l + "emit " + std::to_string(i),
        [this, rii, pd, i, w](TaskCtx& c) {
          c.d2h(ooc::host_block(r_, offset(i), offset(i), w, w), rii,
                job_.label + "d2h Rii " + std::to_string(i));
          c.d2h(host_panel(i), pd,
                job_.label + "d2h Q " + std::to_string(i));
        },
        {fac}, p);
    rtiles_.use(rs, {emit});
    std::vector<TaskId> panel_readers{emit};

    // Trailing updates, one panel-width column slab at a time.
    for (index_t j = i + 1; j < panels_; ++j) {
      const index_t wj = width(j);
      const std::int64_t pt = prio(i, 1);

      // Inner-product input slab (GEMM storage width — fp16 on the
      // TensorCore path, halving the streamed bytes like the solo engine).
      const size_t bs = bstream_.acquire();
      const DeviceMatrixRef bd =
          DeviceMatrixRef(bstream_.bufs[bs].get()).block(0, 0, m_, wj);
      std::vector<TaskId> inb_deps;
      bstream_.depend(bs, inb_deps);
      if (out_a_.count(j) > 0) inb_deps.push_back(out_a_[j]);
      const TaskId inb = g_.add(
          TaskStage::MoveIn, l + "inB " + idx(i, j),
          [this, bd, j](TaskCtx& c) {
            c.h2d(bd, host_panel_const(j),
                  job_.label + "h2d b " + std::to_string(j));
          },
          std::move(inb_deps), pt);

      // R12 = Q^T B over the full column height (k = m).
      const size_t rs2 = rtiles_.acquire();
      const DeviceMatrixRef r12 =
          DeviceMatrixRef(rtiles_.bufs[rs2].get()).block(0, 0, w, wj);
      std::vector<TaskId> u1_deps{inb, fac};
      rtiles_.depend(rs2, u1_deps);
      const TaskId upd1 = g_.add(
          TaskStage::Compute, l + "inner " + idx(i, j),
          [this, pd, bd, r12, i, j](TaskCtx& c) {
            c.gemm(blas::Op::Trans, blas::Op::NoTrans, 1.0f, pd, bd, 0.0f,
                   r12, job_.label + "gemm qtb " + idx(i, j));
          },
          std::move(u1_deps), pt);
      bstream_.use(bs, {upd1});
      const TaskId outr = g_.add(
          TaskStage::MoveOut, l + "outR " + idx(i, j),
          [this, r12, i, j](TaskCtx& c) {
            c.d2h(ooc::host_block(r_, offset(i), offset(j), r12.rows,
                                  r12.cols),
                  r12, job_.label + "d2h R " + idx(i, j));
          },
          {upd1}, pt);

      // Fresh fp32 read of the same slab as the beta = 1 accumulator —
      // the solo engines' double-streaming, byte for byte.
      const size_t cs = cstream_.acquire();
      const DeviceMatrixRef cd =
          DeviceMatrixRef(cstream_.bufs[cs].get()).block(0, 0, m_, wj);
      std::vector<TaskId> inc_deps;
      cstream_.depend(cs, inc_deps);
      if (out_a_.count(j) > 0) inc_deps.push_back(out_a_[j]);
      const TaskId inc = g_.add(
          TaskStage::MoveIn, l + "inC " + idx(i, j),
          [this, cd, j](TaskCtx& c) {
            c.h2d(cd, host_panel_const(j),
                  job_.label + "h2d c " + std::to_string(j));
          },
          std::move(inc_deps), pt);
      const TaskId upd2 = g_.add(
          TaskStage::Compute, l + "outer " + idx(i, j),
          [this, pd, r12, cd, i, j](TaskCtx& c) {
            c.gemm(blas::Op::NoTrans, blas::Op::NoTrans, -1.0f, pd, r12,
                   1.0f, cd, job_.label + "gemm upd " + idx(i, j));
          },
          {inc, upd1}, pt);
      rtiles_.use(rs2, {outr, upd2});
      const TaskId outa = g_.add(
          TaskStage::MoveOut, l + "outA " + idx(i, j),
          [this, cd, j](TaskCtx& c) {
            c.d2h(host_panel(j), cd,
                  job_.label + "d2h tile " + std::to_string(j));
          },
          {upd2}, pt);
      cstream_.use(cs, {outa});
      out_a_[j] = outa;
      panel_readers.push_back(upd2);
    }
    panel_.use(ps, std::move(panel_readers));
    ++i_;
    units_ = i_;
    return true;
  }

 private:
  index_t width(index_t t) const { return std::min(b_, n_ - t * b_); }
  index_t offset(index_t t) const { return t * b_; }
  sim::HostConstRef host_panel_const(index_t t) const {
    return ooc::host_block(sim::as_const(a_), 0, offset(t), m_, width(t));
  }
  sim::HostMutRef host_panel(index_t t) const {
    return ooc::host_block(a_, 0, offset(t), m_, width(t));
  }
  /// Priority key: (panel, phase) with phase 0 = panel move-in/factor/emit
  /// and 1 = the trailing updates, so colocated jobs interleave per panel.
  std::int64_t prio(index_t i, std::int64_t phase) const {
    return 4 * static_cast<std::int64_t>(i) + phase;
  }

  HostMutRef a_;
  HostMutRef r_;
  index_t m_ = 0;
  index_t n_ = 0;
  index_t b_ = 0;
  index_t panels_ = 0;
  index_t i_ = 0;
  index_t units_ = 0;
  SlotPool panel_;
  SlotPool bstream_;
  SlotPool cstream_;
  SlotPool rtiles_;
  std::map<index_t, TaskId> out_a_;
};

/// Lazy-projection (left-looking) CGS as a node program: panel i moves in
/// once, absorbs every previous panel's projection (Q_j streamed back in
/// GEMM storage width, R(j,i) = Q_j^T P with k = m then P -= Q_j R(j,i)
/// with k = w_j), factors, and writes Q_i / R_ii out. Same fixed k-extents
/// and elementwise fp16 conversions as the solo driver, so the arithmetic
/// is bitwise identical (resume tag "left"). One unit = one panel.
class LeftLookingProgram : public Program {
 public:
  LeftLookingProgram(TaskGraph& graph, const BatchJob& job)
      : Program(graph, job), a_(job.a), r_(job.r) {
    m_ = a_.rows;
    n_ = a_.cols;
    ROCQR_CHECK(m_ >= n_ && n_ >= 1, "left batch: need m >= n >= 1");
    ROCQR_CHECK(r_.rows == n_ && r_.cols == n_,
                "left batch: R must be n x n");
    b_ = std::min(job.opts.blocksize, n_);
    panels_ = (n_ + b_ - 1) / b_;
  }

  const char* driver_tag() const override { return "left"; }
  index_t units_done() const override { return units_; }
  index_t columns_done() const override { return std::min(units_ * b_, n_); }

  /// Working set: a panel double buffer, a streamed-Q ring of
  /// opts.pipeline_depth slots in GEMM storage width, and single shared
  /// R-block / R_ii scratches (the projection chain serializes on them,
  /// exactly like the solo driver's single-slot compute fence).
  void allocate(Device& dev) override {
    const std::string& l = job_.label;
    const StoragePrecision q_prec =
        ooc::detail::input_storage(gemm_options(job_.opts));
    const index_t panel_slots = std::min<index_t>(2, panels_);
    for (index_t s = 0; s < panel_slots; ++s) {
      panel_.add(ScopedMatrix(dev, m_, b_, StoragePrecision::FP32,
                              l + "ll panel " + std::to_string(s)));
    }
    const int depth = std::max(1, job_.opts.pipeline_depth);
    for (int s = 0; s < depth; ++s) {
      qring_.add(ScopedMatrix(dev, m_, b_, q_prec,
                              l + "ll q " + std::to_string(s)));
    }
    rblk_.add(ScopedMatrix(dev, b_, b_, StoragePrecision::FP32,
                           l + "ll rblk"));
    rii_.add(ScopedMatrix(dev, b_, b_, StoragePrecision::FP32,
                          l + "ll rii"));
  }

  /// Resume positioning: skipped panels' Q columns are on the host already
  /// (restored from the checkpoint), so later projections read them with
  /// no graph dependency.
  bool begin() override {
    i_ = std::min(job_.opts.resume_units, panels_);
    units_ = i_;
    emit_.assign(static_cast<size_t>(panels_), kNone);
    return false;
  }

  /// Adds panel i: move-in, the i previous panels' projections, factor,
  /// emit.
  bool add_step() override {
    if (i_ >= panels_) return false;
    const index_t i = i_;
    const index_t w = width(i);
    const std::string& l = job_.label;

    // The panel's columns are still ORIGINAL data (left-looking writes
    // each column block exactly once), so the move-in has no host-order
    // edge — only the WAR edge on the double-buffer slot.
    const size_t ps = static_cast<size_t>(i) % panel_.bufs.size();
    const DeviceMatrixRef pd =
        DeviceMatrixRef(panel_.bufs[ps].get()).block(0, 0, m_, w);
    std::vector<TaskId> in_deps;
    panel_.depend(ps, in_deps);
    const TaskId inp = g_.add(
        TaskStage::MoveIn, l + "inP " + std::to_string(i),
        [this, pd, i](TaskCtx& c) {
          c.h2d(pd, host_panel_const(i),
                job_.label + "h2d panel " + std::to_string(i));
        },
        std::move(in_deps), prio(i, 0));

    // Lazy application of every previous panel's projection. The single
    // shared R scratch chains them: projection j+1's beta = 0 GEMM waits
    // for projection j's R writeback to drain.
    TaskId last_proj = kNone;
    for (index_t j = 0; j < i; ++j) {
      const index_t wj = width(j);
      const std::int64_t pt = prio(i, 1);
      const size_t qs = qring_.acquire();
      const DeviceMatrixRef qd =
          DeviceMatrixRef(qring_.bufs[qs].get()).block(0, 0, m_, wj);
      std::vector<TaskId> inq_deps;
      qring_.depend(qs, inq_deps);
      // Q_j must have landed on the host — a real graph edge from its
      // emit. A resume-restored panel has none: its data is already there.
      if (emit_[static_cast<size_t>(j)] != kNone) {
        inq_deps.push_back(emit_[static_cast<size_t>(j)]);
      }
      const TaskId inq = g_.add(
          TaskStage::MoveIn, l + "inQ " + idx(i, j),
          [this, qd, j](TaskCtx& c) {
            c.h2d(qd, host_panel_const(j),
                  job_.label + "h2d Q" + std::to_string(j));
          },
          std::move(inq_deps), pt);

      // R(j, i) = Q_j^T P ; P -= Q_j R(j, i) — the skinny GEMM pair.
      const DeviceMatrixRef rb =
          DeviceMatrixRef(rblk_.bufs[0].get()).block(0, 0, wj, w);
      std::vector<TaskId> proj_deps{inq, inp};
      rblk_.depend(0, proj_deps);
      const TaskId proj = g_.add(
          TaskStage::Compute, l + "proj " + idx(i, j),
          [this, qd, pd, rb, i, j](TaskCtx& c) {
            c.gemm(blas::Op::Trans, blas::Op::NoTrans, 1.0f, qd, pd, 0.0f,
                   rb, job_.label + "proj R " + idx(i, j));
            c.gemm(blas::Op::NoTrans, blas::Op::NoTrans, -1.0f, qd, rb,
                   1.0f, pd, job_.label + "proj update " + idx(i, j));
          },
          std::move(proj_deps), pt);
      qring_.use(qs, {proj});
      const TaskId outr = g_.add(
          TaskStage::MoveOut, l + "outR " + idx(i, j),
          [this, rb, i, j](TaskCtx& c) {
            c.d2h(ooc::host_block(r_, offset(j), offset(i), rb.rows,
                                  rb.cols),
                  rb, job_.label + "d2h R block " + idx(i, j));
          },
          {proj}, pt);
      rblk_.use(0, {outr});
      last_proj = proj;
    }

    // In-core factorization of the fully projected panel, then the Q / Rii
    // writebacks. The shared Rii scratch's WAR edge is the previous emit.
    const DeviceMatrixRef rd =
        DeviceMatrixRef(rii_.bufs[0].get()).block(0, 0, w, w);
    std::vector<TaskId> fac_deps{inp};
    if (last_proj != kNone) fac_deps.push_back(last_proj);
    rii_.depend(0, fac_deps);
    const TaskId fac = g_.add(
        TaskStage::Compute, l + "fac " + std::to_string(i),
        [this, pd, rd](TaskCtx& c) {
          panel_qr_device(c.device(), pd, rd, c.stream(), job_.opts,
                          job_.label);
        },
        std::move(fac_deps), prio(i, 2));
    const TaskId emit = g_.add(
        TaskStage::MoveOut, l + "emit " + std::to_string(i),
        [this, rd, pd, i, w](TaskCtx& c) {
          c.d2h(ooc::host_block(r_, offset(i), offset(i), w, w), rd,
                job_.label + "d2h Rii " + std::to_string(i));
          c.d2h(host_panel(i), pd,
                job_.label + "d2h Q " + std::to_string(i));
        },
        {fac}, prio(i, 2));
    rii_.use(0, {emit});
    panel_.use(ps, {emit});
    emit_[static_cast<size_t>(i)] = emit;
    ++i_;
    units_ = i_;
    return true;
  }

 private:
  index_t width(index_t t) const { return std::min(b_, n_ - t * b_); }
  index_t offset(index_t t) const { return t * b_; }
  sim::HostConstRef host_panel_const(index_t t) const {
    return ooc::host_block(sim::as_const(a_), 0, offset(t), m_, width(t));
  }
  sim::HostMutRef host_panel(index_t t) const {
    return ooc::host_block(a_, 0, offset(t), m_, width(t));
  }
  /// Priority key: (panel, phase) with phase 0 = panel move-in, 1 = the
  /// projection sweep, 2 = factor/emit.
  std::int64_t prio(index_t i, std::int64_t phase) const {
    return 4 * static_cast<std::int64_t>(i) + phase;
  }

  HostMutRef a_;
  HostMutRef r_;
  index_t m_ = 0;
  index_t n_ = 0;
  index_t b_ = 0;
  index_t panels_ = 0;
  index_t i_ = 0;
  index_t units_ = 0;
  SlotPool panel_;
  SlotPool qring_;
  SlotPool rblk_;
  SlotPool rii_;
  std::vector<TaskId> emit_;
};

/// Rotating pool of K-wide buffer slots for the fused batch: one slot holds
/// one buffer PER JOB (the jobs advance in lockstep, so a slot's K buffers
/// are always acquired and released together), with the shared node-level
/// WAR bookkeeping of SlotPool.
struct FusedSlotPool {
  std::vector<std::vector<ScopedMatrix>> slots; // [slot][job]

  void add(std::vector<ScopedMatrix> per_job) {
    slots.push_back(std::move(per_job));
    last_uses_.emplace_back();
  }
  size_t acquire() {
    const size_t s = next_;
    next_ = (next_ + 1) % slots.size();
    return s;
  }
  void depend(size_t s, std::vector<TaskId>& deps) const {
    deps.insert(deps.end(), last_uses_[s].begin(), last_uses_[s].end());
  }
  void use(size_t s, std::vector<TaskId> ids) {
    last_uses_[s] = std::move(ids);
  }

 private:
  std::vector<std::vector<TaskId>> last_uses_;
  size_t next_ = 0;
};

/// The fused-batch builder: BlockingProgram's exact node topology and
/// priority keys, with every node body issuing ONE batched device op whose
/// K entries are the solo bodies of the K jobs (see run_fused_batch in
/// tiled_qr.hpp for the contract).
class FusedBlocking {
 public:
  FusedBlocking(TaskGraph& graph, const std::vector<BatchJob>& jobs)
      : g_(graph), jobs_(jobs), opts_(jobs.front().opts) {
    m_ = jobs.front().a.rows;
    n_ = jobs.front().a.cols;
    ROCQR_CHECK(m_ >= n_ && n_ >= 1, "fused batch: need m >= n >= 1");
    b_ = std::min(opts_.blocksize, n_);
    panels_ = (n_ + b_ - 1) / b_;
  }

  index_t units_done() const { return units_; }
  index_t columns_done() const { return std::min(units_ * b_, n_); }

  /// K copies of BlockingProgram's working set, slot-pooled together.
  void allocate(Device& dev) {
    const StoragePrecision in_prec =
        ooc::detail::input_storage(gemm_options(opts_));
    const size_t nj = jobs_.size();
    const auto pool = [&](FusedSlotPool& p, index_t slots, index_t rows,
                          index_t cols, StoragePrecision prec,
                          const char* role) {
      for (index_t s = 0; s < slots; ++s) {
        std::vector<ScopedMatrix> per_job;
        per_job.reserve(nj);
        for (size_t k = 0; k < nj; ++k) {
          per_job.emplace_back(dev, rows, cols, prec,
                               "fused " + std::string(role) + " " +
                                   std::to_string(s) + "." +
                                   std::to_string(k));
        }
        p.add(std::move(per_job));
      }
    };
    pool(panel_, std::min<index_t>(2, panels_), m_, b_,
         StoragePrecision::FP32, "panel");
    pool(bstream_, std::min<index_t>(2, panels_ - 1), m_, b_, in_prec, "b");
    pool(cstream_, std::min<index_t>(2, panels_ - 1), m_, b_,
         StoragePrecision::FP32, "c");
    pool(rtiles_, std::min<index_t>(4, panels_ + 1), b_, b_,
         StoragePrecision::FP32, "r");
  }

  /// Resume positioning only (every job shares one resume_units — the
  /// coalescer only fuses jobs at the same checkpoint boundary).
  void begin() {
    i_ = std::min(opts_.resume_units, panels_);
    units_ = i_;
  }

  /// Adds fused panel iteration i: one batched move-in + batched panel
  /// kernel + batched emit, then one batched inner/outer update pair per
  /// trailing panel.
  bool add_step() {
    if (i_ >= panels_) return false;
    const index_t i = i_;
    const index_t w = width(i);
    const std::int64_t p = prio(i, 0);

    const size_t ps = static_cast<size_t>(i) % panel_.slots.size();
    std::vector<DeviceMatrixRef> pd = slot_refs(panel_, ps, m_, w);
    std::vector<TaskId> in_deps;
    panel_.depend(ps, in_deps);
    if (out_a_.count(i) > 0) in_deps.push_back(out_a_[i]);
    const TaskId inp = g_.add(
        TaskStage::MoveIn, "fused inP " + std::to_string(i),
        [this, pd, i](TaskCtx& c) {
          std::vector<sim::Device::H2dBatchEntry> es;
          es.reserve(pd.size());
          for (size_t k = 0; k < pd.size(); ++k) {
            es.push_back({pd[k], host_panel_const(k, i)});
          }
          c.h2d_batched(es, "fused h2d panel " + std::to_string(i));
        },
        std::move(in_deps), p);

    const size_t rs = rtiles_.acquire();
    std::vector<DeviceMatrixRef> rii = slot_refs(rtiles_, rs, w, w);
    std::vector<TaskId> fac_deps{inp};
    rtiles_.depend(rs, fac_deps);
    const TaskId fac = g_.add(
        TaskStage::Compute, "fused fac " + std::to_string(i),
        [this, pd, rii, w](TaskCtx& c) {
          std::vector<PanelBatchEntry> es;
          es.reserve(pd.size());
          for (size_t k = 0; k < pd.size(); ++k) {
            es.push_back({pd[k], rii[k]});
          }
          panel_qr_device_batched(c.device(), es, c.stream(), opts_,
                                  "fused panel_qr " + std::to_string(m_) +
                                      "x" + std::to_string(w) + " x" +
                                      std::to_string(es.size()));
        },
        std::move(fac_deps), p);
    const TaskId emit = g_.add(
        TaskStage::MoveOut, "fused emit " + std::to_string(i),
        [this, rii, pd, i, w](TaskCtx& c) {
          std::vector<sim::Device::D2hBatchEntry> es;
          es.reserve(2 * pd.size());
          for (size_t k = 0; k < pd.size(); ++k) {
            es.push_back({ooc::host_block(jobs_[k].r, offset(i), offset(i),
                                          w, w),
                          rii[k]});
            es.push_back({host_panel(k, i), pd[k]});
          }
          c.d2h_batched(es, "fused d2h RiiQ " + std::to_string(i));
        },
        {fac}, p);
    rtiles_.use(rs, {emit});
    std::vector<TaskId> panel_readers{emit};

    for (index_t j = i + 1; j < panels_; ++j) {
      const index_t wj = width(j);
      const std::int64_t pt = prio(i, 1);

      const size_t bs = bstream_.acquire();
      std::vector<DeviceMatrixRef> bd = slot_refs(bstream_, bs, m_, wj);
      std::vector<TaskId> inb_deps;
      bstream_.depend(bs, inb_deps);
      if (out_a_.count(j) > 0) inb_deps.push_back(out_a_[j]);
      const TaskId inb = g_.add(
          TaskStage::MoveIn, "fused inB " + idx(i, j),
          [this, bd, j](TaskCtx& c) {
            std::vector<sim::Device::H2dBatchEntry> es;
            es.reserve(bd.size());
            for (size_t k = 0; k < bd.size(); ++k) {
              es.push_back({bd[k], host_panel_const(k, j)});
            }
            c.h2d_batched(es, "fused h2d b " + std::to_string(j));
          },
          std::move(inb_deps), pt);

      const size_t rs2 = rtiles_.acquire();
      std::vector<DeviceMatrixRef> r12 = slot_refs(rtiles_, rs2, w, wj);
      std::vector<TaskId> u1_deps{inb, fac};
      rtiles_.depend(rs2, u1_deps);
      const TaskId upd1 = g_.add(
          TaskStage::Compute, "fused inner " + idx(i, j),
          [this, pd, bd, r12, i, j](TaskCtx& c) {
            std::vector<sim::Device::GemmBatchEntry> es;
            es.reserve(pd.size());
            for (size_t k = 0; k < pd.size(); ++k) {
              es.push_back({blas::Op::Trans, blas::Op::NoTrans, 1.0f, pd[k],
                            bd[k], 0.0f, r12[k]});
            }
            c.gemm_batched(es, "fused gemm qtb " + idx(i, j));
          },
          std::move(u1_deps), pt);
      bstream_.use(bs, {upd1});
      const TaskId outr = g_.add(
          TaskStage::MoveOut, "fused outR " + idx(i, j),
          [this, r12, i, j, w, wj](TaskCtx& c) {
            std::vector<sim::Device::D2hBatchEntry> es;
            es.reserve(r12.size());
            for (size_t k = 0; k < r12.size(); ++k) {
              es.push_back({ooc::host_block(jobs_[k].r, offset(i), offset(j),
                                            w, wj),
                            r12[k]});
            }
            c.d2h_batched(es, "fused d2h R " + idx(i, j));
          },
          {upd1}, pt);

      const size_t cs = cstream_.acquire();
      std::vector<DeviceMatrixRef> cd = slot_refs(cstream_, cs, m_, wj);
      std::vector<TaskId> inc_deps;
      cstream_.depend(cs, inc_deps);
      if (out_a_.count(j) > 0) inc_deps.push_back(out_a_[j]);
      const TaskId inc = g_.add(
          TaskStage::MoveIn, "fused inC " + idx(i, j),
          [this, cd, j](TaskCtx& c) {
            std::vector<sim::Device::H2dBatchEntry> es;
            es.reserve(cd.size());
            for (size_t k = 0; k < cd.size(); ++k) {
              es.push_back({cd[k], host_panel_const(k, j)});
            }
            c.h2d_batched(es, "fused h2d c " + std::to_string(j));
          },
          std::move(inc_deps), pt);
      const TaskId upd2 = g_.add(
          TaskStage::Compute, "fused outer " + idx(i, j),
          [this, pd, r12, cd, i, j](TaskCtx& c) {
            std::vector<sim::Device::GemmBatchEntry> es;
            es.reserve(pd.size());
            for (size_t k = 0; k < pd.size(); ++k) {
              es.push_back({blas::Op::NoTrans, blas::Op::NoTrans, -1.0f,
                            pd[k], r12[k], 1.0f, cd[k]});
            }
            c.gemm_batched(es, "fused gemm upd " + idx(i, j));
          },
          {inc, upd1}, pt);
      rtiles_.use(rs2, {outr, upd2});
      const TaskId outa = g_.add(
          TaskStage::MoveOut, "fused outA " + idx(i, j),
          [this, cd, j](TaskCtx& c) {
            std::vector<sim::Device::D2hBatchEntry> es;
            es.reserve(cd.size());
            for (size_t k = 0; k < cd.size(); ++k) {
              es.push_back({host_panel(k, j), cd[k]});
            }
            c.d2h_batched(es, "fused d2h tile " + std::to_string(j));
          },
          {upd2}, pt);
      cstream_.use(cs, {outa});
      out_a_[j] = outa;
      panel_readers.push_back(upd2);
    }
    panel_.use(ps, std::move(panel_readers));
    ++i_;
    units_ = i_;
    return true;
  }

 private:
  index_t width(index_t t) const { return std::min(b_, n_ - t * b_); }
  index_t offset(index_t t) const { return t * b_; }
  sim::HostConstRef host_panel_const(size_t k, index_t t) const {
    return ooc::host_block(sim::as_const(jobs_[k].a), 0, offset(t), m_,
                           width(t));
  }
  sim::HostMutRef host_panel(size_t k, index_t t) const {
    return ooc::host_block(jobs_[k].a, 0, offset(t), m_, width(t));
  }
  std::int64_t prio(index_t i, std::int64_t phase) const {
    return 4 * static_cast<std::int64_t>(i) + phase;
  }
  std::vector<DeviceMatrixRef> slot_refs(FusedSlotPool& pool, size_t s,
                                         index_t rows, index_t cols) {
    std::vector<DeviceMatrixRef> refs;
    refs.reserve(pool.slots[s].size());
    for (ScopedMatrix& buf : pool.slots[s]) {
      refs.push_back(DeviceMatrixRef(buf.get()).block(0, 0, rows, cols));
    }
    return refs;
  }

  TaskGraph& g_;
  const std::vector<BatchJob>& jobs_;
  const QrOptions& opts_;
  index_t m_ = 0;
  index_t n_ = 0;
  index_t b_ = 0;
  index_t panels_ = 0;
  index_t i_ = 0;
  index_t units_ = 0;
  FusedSlotPool panel_;
  FusedSlotPool bstream_;
  FusedSlotPool cstream_;
  FusedSlotPool rtiles_;
  std::map<index_t, TaskId> out_a_;
};

std::unique_ptr<Program> make_program(TaskGraph& graph, const BatchJob& job) {
  if (job.algorithm == "tiled") {
    return std::make_unique<TiledProgram>(graph, job);
  }
  if (job.algorithm == "blocking") {
    return std::make_unique<BlockingProgram>(graph, job);
  }
  if (job.algorithm == "left") {
    return std::make_unique<LeftLookingProgram>(graph, job);
  }
  throw InvalidArgument("run_batch: no node program for algorithm \"" +
                        job.algorithm + "\"");
}

} // namespace

std::vector<QrStats> run_batch(Device& dev,
                               const std::vector<BatchJob>& jobs) {
  ROCQR_CHECK(!jobs.empty(), "run_batch: no jobs");
  bool any_sink = false;
  bool all_tiled = true;
  for (const BatchJob& job : jobs) {
    job.opts.validate();
    any_sink = any_sink || job.opts.checkpoint_sink != nullptr;
    all_tiled = all_tiled && job.algorithm == "tiled";
    // The graph-level transfer/ABFT configuration comes from jobs[0]; a
    // precision mismatch would silently change another job's arithmetic.
    ROCQR_CHECK(job.opts.precision == jobs.front().opts.precision,
                "run_batch: colocated jobs must share a gemm precision");
  }

  const size_t window = dev.trace().size();
  sim::TraceSpan span(dev, all_tiled ? "tiled_qr" : "qr_batch");
  TaskGraph graph(dev, gemm_options(jobs.front().opts));

  std::vector<std::unique_ptr<Program>> progs;
  progs.reserve(jobs.size());
  for (const BatchJob& job : jobs) {
    progs.push_back(make_program(graph, job));
    progs.back()->allocate(dev);
  }

  if (!any_sink) {
    // No checkpoint boundaries: build the whole DAG and run it once —
    // maximum lookahead across every step (and every colocated job).
    for (auto& p : progs) p->begin();
    bool more = true;
    while (more) {
      more = false;
      for (auto& p : progs) more = p->add_step() || more;
    }
    graph.run();
  } else {
    // Checkpointed: run round-by-round so every boundary is a consistent
    // "u units factored" host snapshot. A round enqueues one segment of
    // EVERY job before the single graph.run(), so colocated jobs still
    // interleave on the engines between checkpoint syncs; only then does
    // each advanced job checkpoint (maybe_checkpoint synchronizes before
    // snapshotting, and is where a serve PreemptSink raises
    // PreemptRequest, unwinding the whole batch). With one job this is
    // exactly the segment-per-segment schedule resume replays.
    std::vector<char> advanced(progs.size(), 0);
    for (size_t i = 0; i < progs.size(); ++i) {
      advanced[i] = progs[i]->begin() ? 1 : 0;
    }
    graph.run();
    for (size_t i = 0; i < progs.size(); ++i) {
      if (!advanced[i]) continue; // resume staging: no new unit to record
      auto& p = progs[i];
      maybe_checkpoint(dev, p->driver_tag(), p->job().a, p->job().r,
                       p->job().opts, p->columns_done(), p->units_done());
    }
    bool more = true;
    while (more) {
      more = false;
      for (size_t i = 0; i < progs.size(); ++i) {
        advanced[i] = progs[i]->add_step() ? 1 : 0;
        more = more || advanced[i] != 0;
      }
      if (!more) break;
      graph.run();
      for (size_t i = 0; i < progs.size(); ++i) {
        if (!advanced[i]) continue;
        auto& p = progs[i];
        maybe_checkpoint(dev, p->driver_tag(), p->job().a, p->job().r,
                         p->job().opts, p->columns_done(), p->units_done());
      }
    }
  }

  dev.synchronize();
  std::vector<QrStats> stats;
  stats.reserve(progs.size());
  for (const auto& p : progs) {
    stats.push_back(stats_from_trace(dev.trace(), window, dev.memory_peak(),
                                     p->job().label));
  }
  return stats;
}

QrStats run_tiled(Device& dev, HostMutRef a, HostMutRef r,
                  const QrOptions& opts) {
  return run_batch(dev, {BatchJob{"tiled", a, r, opts, ""}}).front();
}

std::vector<QrStats> run_fused_batch(Device& dev,
                                     const std::vector<BatchJob>& jobs) {
  ROCQR_CHECK(!jobs.empty(), "run_fused_batch: no jobs");
  const BatchJob& j0 = jobs.front();
  bool any_sink = false;
  for (const BatchJob& job : jobs) {
    job.opts.validate();
    ROCQR_CHECK(job.algorithm == "blocking",
                "run_fused_batch: only \"blocking\" jobs fuse (got \"" +
                    job.algorithm + "\")");
    ROCQR_CHECK(!job.opts.abft,
                "run_fused_batch: abft jobs cannot fuse (the batched GEMM "
                "carries no per-job checksum)");
    ROCQR_CHECK(job.a.rows == j0.a.rows && job.a.cols == j0.a.cols,
                "run_fused_batch: fused jobs must share one shape");
    ROCQR_CHECK(job.r.rows == job.a.cols && job.r.cols == job.a.cols,
                "run_fused_batch: R must be n x n");
    ROCQR_CHECK(job.opts.blocksize == j0.opts.blocksize,
                "run_fused_batch: fused jobs must share a blocksize");
    ROCQR_CHECK(job.opts.precision == j0.opts.precision,
                "run_fused_batch: fused jobs must share a gemm precision");
    ROCQR_CHECK(job.opts.panel_algorithm == j0.opts.panel_algorithm &&
                    job.opts.panel_base == j0.opts.panel_base,
                "run_fused_batch: fused jobs must share a panel algorithm");
    ROCQR_CHECK(job.opts.resume_units == j0.opts.resume_units,
                "run_fused_batch: fused jobs must share a resume position");
    any_sink = any_sink || job.opts.checkpoint_sink != nullptr;
  }

  const size_t window = dev.trace().size();
  sim::TraceSpan span(dev, "qr_fused_batch x" + std::to_string(jobs.size()));
  TaskGraph graph(dev, gemm_options(j0.opts));
  FusedBlocking prog(graph, jobs);
  prog.allocate(dev);
  prog.begin();

  if (!any_sink) {
    while (prog.add_step()) {
    }
    graph.run();
  } else {
    // The jobs advance in lockstep, so one fused round is one checkpoint
    // boundary for every member: after each round's run() the device is
    // synchronized once and every job snapshots (a serve PreemptSink may
    // raise PreemptRequest there, unwinding the whole fused batch; each
    // member's checkpoint carries the solo "blocking" tag so it can resume
    // solo or in a different fusion).
    while (prog.add_step()) {
      graph.run();
      for (const BatchJob& job : jobs) {
        maybe_checkpoint(dev, "blocking", job.a, job.r, job.opts,
                         prog.columns_done(), prog.units_done());
      }
    }
  }

  dev.synchronize();
  // Even 1/K attribution of the fused window's volume aggregates — exact,
  // because the K jobs are identical in shape and arithmetic. Span fields
  // (first_start/last_end/total_seconds) and the device peak stay whole,
  // matching the colocated path's per-member attribution semantics.
  const QrStats whole =
      stats_from_trace(dev.trace(), window, dev.memory_peak());
  QrStats per = whole;
  const auto k = static_cast<double>(jobs.size());
  per.panel_seconds /= k;
  per.gemm_seconds /= k;
  per.d2d_seconds /= k;
  per.h2d_seconds /= k;
  per.d2h_seconds /= k;
  per.compute_seconds /= k;
  per.bytes_h2d = static_cast<bytes_t>(static_cast<double>(whole.bytes_h2d) / k);
  per.bytes_d2h = static_cast<bytes_t>(static_cast<double>(whole.bytes_d2h) / k);
  per.bytes_d2d = static_cast<bytes_t>(static_cast<double>(whole.bytes_d2d) / k);
  per.flops = static_cast<flops_t>(static_cast<double>(whole.flops) / k);
  return std::vector<QrStats>(jobs.size(), per);
}

} // namespace rocqr::qr::detail
